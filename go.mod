module oldelephant

go 1.24
