// Benchmarks that regenerate the paper's evaluation. One benchmark exists
// per table and figure of the paper:
//
//	BenchmarkFigure2/...                — Figure 2, one sub-benchmark per
//	                                      query × strategy at 10% selectivity
//	BenchmarkTableSpeedupRowVsColOpt    — Section 1 table (ColOpt speedup over Row)
//	BenchmarkTableRowMVvsColOpt         — Section 2.1 table (Row(MV) vs ColOpt)
//	BenchmarkTableRowColVsColOpt        — Section 2.2.4 table (Row(Col) vs ColOpt)
//	BenchmarkIndexIntersection          — Section 2.2.3 index-intersection strategy
//	BenchmarkStorageOverheadAblation    — Section 3 storage-layer discussion
//
// Ratios are attached to the benchmark output as custom metrics
// (pages/op, modeled-ms/op, ratio-vs-colopt) so the paper's tables can be
// read directly off `go test -bench`. Set ELEPHANT_BENCH_SF to change the
// scale factor (default 0.01).
package elephant

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"oldelephant/internal/bench"
	"oldelephant/internal/colstore"
	"oldelephant/internal/core/ctable"
	"oldelephant/internal/engine"
	"oldelephant/internal/tpch"
	"oldelephant/internal/value"
)

var (
	benchOnce    sync.Once
	benchHarness *bench.Harness
	benchErr     error
)

func sharedBenchHarness(b *testing.B) *bench.Harness {
	b.Helper()
	benchOnce.Do(func() {
		cfg := bench.DefaultConfig()
		if sf := os.Getenv("ELEPHANT_BENCH_SF"); sf != "" {
			if v, err := strconv.ParseFloat(sf, 64); err == nil && v > 0 {
				cfg.SF = v
			}
		}
		benchHarness, benchErr = bench.NewHarness(cfg)
	})
	if benchErr != nil {
		b.Fatalf("building harness: %v", benchErr)
	}
	return benchHarness
}

// benchMeasurement runs one (query, strategy) point b.N times and reports the
// paper-relevant metrics.
func benchMeasurement(b *testing.B, q bench.QueryID, s bench.Strategy, sel float64) bench.Measurement {
	b.Helper()
	h := sharedBenchHarness(b)
	var last bench.Measurement
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := h.Run(q, s, sel)
		if err != nil {
			b.Fatal(err)
		}
		last = m
	}
	b.StopTimer()
	b.ReportMetric(float64(last.PagesRead), "pages/op")
	b.ReportMetric(float64(last.ModeledDisk.Microseconds())/1000, "modeled-ms/op")
	return last
}

// BenchmarkFigure2 reproduces Figure 2: every query under every strategy.
// Swept queries run at the 10% selectivity point (the full sweep is produced
// by cmd/elephantbench -figure2).
func BenchmarkFigure2(b *testing.B) {
	for _, q := range bench.Queries() {
		for _, s := range bench.Strategies() {
			b.Run(fmt.Sprintf("%s/%s", q, s), func(b *testing.B) {
				benchMeasurement(b, q, s, 0.1)
			})
		}
	}
}

// benchRatioTable runs one of the paper's summary tables, reporting the
// per-query ratio as a custom metric.
func benchRatioTable(b *testing.B, strategy bench.Strategy) {
	h := sharedBenchHarness(b)
	for _, q := range bench.Queries() {
		b.Run(string(q), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				ms, err := h.Run(q, strategy, 0.1)
				if err != nil {
					b.Fatal(err)
				}
				mr, err := h.Run(q, bench.StrategyColOpt, 0.1)
				if err != nil {
					b.Fatal(err)
				}
				ratio = float64(ms.Total) / float64(mr.Total)
			}
			b.ReportMetric(ratio, "ratio-vs-colopt")
		})
	}
}

// BenchmarkTableSpeedupRowVsColOpt reproduces the Section 1 table: how much
// faster the C-store lower bound is than the plain row store.
func BenchmarkTableSpeedupRowVsColOpt(b *testing.B) { benchRatioTable(b, bench.StrategyRow) }

// BenchmarkTableRowMVvsColOpt reproduces the Section 2.1 table.
func BenchmarkTableRowMVvsColOpt(b *testing.B) { benchRatioTable(b, bench.StrategyRowMV) }

// BenchmarkTableRowColVsColOpt reproduces the Section 2.2.4 table.
func BenchmarkTableRowColVsColOpt(b *testing.B) { benchRatioTable(b, bench.StrategyRowCol) }

// BenchmarkIndexIntersection reproduces the Section 2.2.3 discussion of
// "additional index-based strategies": predicates on columns deep in the
// sort order answered by seeking the v indexes of two c-tables independently
// and intersecting, versus scanning.
func BenchmarkIndexIntersection(b *testing.B) {
	db := Open(Options{})
	mustExec := func(q string) {
		if _, err := db.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
	mustExec("CREATE TABLE wide (a INT, b INT, c INT, d INT, PRIMARY KEY (a, b, c, d))")
	var rows []Row
	for i := 0; i < 50000; i++ {
		rows = append(rows, Row{
			value.NewInt(int64(i / 2500)),
			value.NewInt(int64(i / 250 % 10)),
			value.NewInt(int64(i % 100)),
			value.NewInt(int64(i % 61)),
		})
	}
	if err := db.BulkLoad("wide", rows); err != nil {
		b.Fatal(err)
	}
	design, err := db.BuildCTableDesign("w", "SELECT a, b, c, d FROM wide",
		[]string{"a", "b", "c", "d"}, []string{"a", "b", "c", "d"})
	if err != nil {
		b.Fatal(err)
	}
	// The paper's example: predicates on c and d (deep in the sort order).
	// With c-tables the v indexes answer it; a C-store would scan both columns.
	// The band predicate degenerates to an equality when the c column of the
	// design uses the dense representation (runs of length one).
	query := "SELECT COUNT(*) FROM wide WHERE c = 10 AND d = 20"
	band := "TD.f BETWEEN TC.f AND TC.f + TC.c - 1"
	if ct, ok := design.Column("c"); ok && ct.Dense {
		band = "TD.f = TC.f"
	}
	ctQuery := "SELECT COUNT(*) FROM w_c TC, w_d TD WHERE TC.v = 10 AND TD.v = 20 AND " + band
	b.Run("row-store-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			db.ResetBufferPool()
			res, err := db.Query(query)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Stats.IO.PageReads), "pages/op")
		}
	})
	b.Run("ctable-index-intersection", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			db.ResetBufferPool()
			res, err := db.Query(ctQuery)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Stats.IO.PageReads), "pages/op")
		}
	})
}

// BenchmarkStorageOverheadAblation quantifies the Section 3 "storage layer"
// observation: the row store's per-tuple overhead roughly doubles the space
// of c-tables compared with the native compressed columns. It builds the D1
// design with and without the 9-byte tuple header and reports the resulting
// page counts next to the compressed column-store footprint.
func BenchmarkStorageOverheadAblation(b *testing.B) {
	for _, overhead := range []int{0, 9} {
		b.Run(fmt.Sprintf("overhead-%dB", overhead), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := engine.New(engine.Options{TupleOverhead: overhead})
				if err := tpch.NewGenerator(0.002).LoadCore(e); err != nil {
					b.Fatal(err)
				}
				if _, err := ctable.NewBuilder(e).Build("d1", "SELECT l_shipdate, l_suppkey FROM lineitem",
					[]string{"l_shipdate", "l_suppkey"}, []string{"l_shipdate", "l_suppkey"}); err != nil {
					b.Fatal(err)
				}
				ship, err := e.Catalog().Table("d1_l_shipdate")
				if err != nil {
					b.Fatal(err)
				}
				supp, err := e.Catalog().Table("d1_l_suppkey")
				if err != nil {
					b.Fatal(err)
				}
				pages := ship.DataPages() + supp.DataPages()
				res, err := e.Query("SELECT l_shipdate, l_suppkey FROM lineitem")
				if err != nil {
					b.Fatal(err)
				}
				proj, err := colstore.BuildProjection("p1", []string{"l_shipdate", "l_suppkey"},
					[]value.Kind{value.KindDate, value.KindInt}, []string{"l_shipdate", "l_suppkey"}, res.Rows)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(pages), "ctable-pages/op")
				b.ReportMetric(float64(proj.TotalPages()), "cstore-pages/op")
			}
		})
	}
}
