package elephant

import (
	"strings"
	"testing"

	"oldelephant/internal/value"
)

// TestPublicAPIEndToEnd walks the public facade the way the README does:
// open a database, load TPC-H, run a query under all three row-store
// strategies, and check they agree.
func TestPublicAPIEndToEnd(t *testing.T) {
	db := Open(Options{})
	if err := db.LoadTPCH(0.001); err != nil {
		t.Fatal(err)
	}
	q3 := "SELECT l_suppkey, COUNT(*) FROM lineitem WHERE l_shipdate > DATE '1995-06-01' GROUP BY l_suppkey"

	// Plain row store.
	row, err := db.Query(q3)
	if err != nil {
		t.Fatal(err)
	}
	if len(row.Columns) != 2 {
		t.Fatalf("columns = %v", row.Columns)
	}

	// Row(MV): a generalized materialized view answers the query.
	if err := db.CreateMaterializedView("mv23",
		"SELECT l_shipdate, l_suppkey, COUNT(*) AS cnt FROM lineitem GROUP BY l_shipdate, l_suppkey"); err != nil {
		t.Fatal(err)
	}
	mv, usedView, err := db.QueryUsingViews(q3)
	if err != nil {
		t.Fatal(err)
	}
	if !usedView {
		t.Fatal("expected the view to answer Q3")
	}

	// Row(Col): c-tables plus rewriting.
	design, err := db.BuildCTableDesign("d1", "SELECT l_shipdate, l_suppkey FROM lineitem",
		[]string{"l_shipdate", "l_suppkey"}, []string{"l_shipdate", "l_suppkey"})
	if err != nil {
		t.Fatal(err)
	}
	rw := NewRewriter(design)
	rewritten, err := rw.RewriteSQL(q3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rewritten, "d1_l_suppkey") {
		t.Errorf("rewriting does not reference the c-table: %s", rewritten)
	}
	col, err := db.Query(rewritten)
	if err != nil {
		t.Fatal(err)
	}

	if len(row.Rows) != len(mv.Rows) || len(row.Rows) != len(col.Rows) {
		t.Fatalf("strategies disagree: Row=%d Row(MV)=%d Row(Col)=%d", len(row.Rows), len(mv.Rows), len(col.Rows))
	}

	// ColOpt: the compressed projection is a fraction of the row footprint.
	proj, err := db.BuildColumnProjection("p1", "SELECT l_shipdate, l_suppkey FROM lineitem",
		[]string{"l_shipdate", "l_suppkey"}, []value.Kind{value.KindDate, value.KindInt},
		[]string{"l_shipdate", "l_suppkey"})
	if err != nil {
		t.Fatal(err)
	}
	li, err := db.Catalog().Table("lineitem")
	if err != nil {
		t.Fatal(err)
	}
	if proj.TotalPages() >= int64(li.DataPages()) {
		t.Errorf("compressed projection (%d pages) should be smaller than the table (%d pages)",
			proj.TotalPages(), li.DataPages())
	}
}

func TestBenchHarnessViaPublicAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("harness construction in short mode")
	}
	cfg := DefaultBenchConfig()
	cfg.SF = 0.001
	h, err := NewBenchHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	summary, err := h.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(summary, "Q7") {
		t.Errorf("summary incomplete: %s", summary)
	}
}

// TestOpenDirDurableRoundTrip exercises the durable public API on a real
// directory: create, load, close, reopen, verify, and check that the
// materialized-view manager still sees recovered view definitions.
func TestOpenDirDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDir(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, stmt := range []string{
		"CREATE TABLE parts (id INT, kind INT, price FLOAT, PRIMARY KEY (id))",
		"INSERT INTO parts VALUES (1, 0, 9.5), (2, 1, 3.25), (3, 0, 7.0)",
	} {
		if _, err := db.Execute(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	if err := db.CreateMaterializedView("by_kind", "SELECT kind, COUNT(*) AS n FROM parts GROUP BY kind"); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenDir(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	res, err := db2.Query("SELECT id FROM parts ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || res.Rows[2][0].Int() != 3 {
		t.Fatalf("recovered %d rows", len(res.Rows))
	}
	// The recovered view definition still answers queries through the
	// materialized-view manager.
	vres, used, err := db2.QueryUsingViews("SELECT kind, COUNT(*) FROM parts GROUP BY kind")
	if err != nil {
		t.Fatal(err)
	}
	if !used {
		t.Error("recovered materialized view not used for a matching query")
	}
	if len(vres.Rows) != 2 {
		t.Errorf("view query returned %d groups, want 2", len(vres.Rows))
	}
}
