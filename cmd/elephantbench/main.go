// Command elephantbench regenerates the paper's evaluation: Figure 2 and the
// three summary tables, over a freshly generated TPC-H database.
//
// Usage:
//
//	elephantbench -sf 0.01 -figure2            # the seven panels of Figure 2
//	elephantbench -sf 0.01 -table speedup      # Section 1 table (Row vs ColOpt)
//	elephantbench -sf 0.01 -table mv           # Section 2.1 table (Row(MV) vs ColOpt)
//	elephantbench -sf 0.01 -table ctable       # Section 2.2.4 table (Row(Col) vs ColOpt)
//	elephantbench -sf 0.01 -all                # everything
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"oldelephant/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("elephantbench: ")
	var (
		sf      = flag.Float64("sf", 0.01, "TPC-H scale factor (the paper uses 10)")
		figure2 = flag.Bool("figure2", false, "reproduce Figure 2 (all queries, all strategies, selectivity sweep)")
		table   = flag.String("table", "", "reproduce one summary table: speedup, mv or ctable")
		all     = flag.Bool("all", false, "reproduce Figure 2 and every table")
		sels    = flag.String("selectivities", "0.01,0.1,0.5,1.0", "comma-separated selectivities for the swept queries")
	)
	flag.Parse()
	if !*figure2 && *table == "" && !*all {
		flag.Usage()
		os.Exit(2)
	}
	cfg := bench.DefaultConfig()
	cfg.SF = *sf
	cfg.Selectivities = parseSelectivities(*sels)
	fmt.Printf("Loading TPC-H at scale factor %g and building all physical designs...\n", *sf)
	h, err := bench.NewHarness(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Loaded: %d total pages across base tables, views, c-tables.\n\n", h.Engine.TotalDataPages())

	if *figure2 || *all {
		ms, err := h.Figure2()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(bench.FormatFigure2(ms))
	}
	runTable := func(name string) {
		var rows []bench.RatioRow
		var title string
		var err error
		switch name {
		case "speedup":
			rows, err = h.SpeedupTable()
			title = "Section 1 table — Row time / ColOpt time (ColOpt speedup over Row)"
		case "mv":
			rows, err = h.MVTable()
			title = "Section 2.1 table — Row(MV) time / ColOpt time"
		case "ctable":
			rows, err = h.CTableTable()
			title = "Section 2.2.4 table — Row(Col) time / ColOpt time"
		default:
			log.Fatalf("unknown table %q (want speedup, mv or ctable)", name)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(bench.FormatRatioTable(title, rows, false))
	}
	if *all {
		for _, name := range []string{"speedup", "mv", "ctable"} {
			runTable(name)
		}
		return
	}
	if *table != "" {
		runTable(*table)
	}
}

func parseSelectivities(s string) []float64 {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil || v <= 0 || v > 1 {
			log.Fatalf("bad selectivity %q", part)
		}
		out = append(out, v)
	}
	return out
}
