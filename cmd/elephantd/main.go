// Command elephantd runs the query-serving daemon: an engine (optionally
// pre-loaded with TPC-H) behind the server package's session, plan-cache and
// admission-control machinery, speaking the newline-delimited JSON wire
// protocol on a TCP listener.
//
// Usage:
//
//	elephantd -addr :7654 -tpch 0.01 -cores 4 -queue 64 -timeout 5s
//
// Connect with `elephantsql -connect :7654`, or any newline-JSON client:
//
//	{"op":"query","sql":"SELECT COUNT(*) FROM lineitem"}
//
// SIGINT/SIGTERM shut the daemon down gracefully: in-flight queries finish,
// then the final metrics snapshot (QPS, latency percentiles, plan-cache hit
// rate) is printed.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"oldelephant/internal/engine"
	"oldelephant/internal/server"
	"oldelephant/internal/tpch"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("elephantd: ")
	var (
		addr     = flag.String("addr", ":7654", "TCP listen address")
		httpAddr = flag.String("http", "", "observability HTTP listen address serving /metrics (Prometheus), /workload and /debug/pprof (empty = disabled)")
		dataDir  = flag.String("data", "", "durable data directory (empty = in-memory); created if missing, recovered if it holds a previous run")
		sf       = flag.Float64("tpch", 0, "pre-load TPC-H core tables at this scale factor (0 = start empty)")
		cores    = flag.Int("cores", 0, "core budget shared by concurrent queries (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 0, "admission queue bound (0 = default 64)")
		timeout  = flag.Duration("timeout", 0, "default per-query timeout (0 = none)")
		slow     = flag.Duration("slow", 100*time.Millisecond, "slow-query log threshold (runtime-settable via the wire set op's slow_ms)")
		dop      = flag.Int("dop", 1, "default per-query parallelism sessions request from the core budget (clients override with the set op)")
	)
	flag.Parse()

	eng, err := engine.Open(engine.Options{TupleOverhead: -1, DataDir: *dataDir})
	if err != nil {
		log.Fatal(err)
	}
	if *dataDir != "" {
		log.Printf("durable data directory %s (recovered %d tables)", *dataDir, len(eng.Catalog().Tables()))
	}
	if *sf > 0 {
		log.Printf("loading TPC-H at sf=%g...", *sf)
		if err := tpch.NewGenerator(*sf).LoadCore(eng); err != nil {
			log.Fatal(err)
		}
	}
	srv := server.New(eng, server.Options{
		CoreBudget:                *cores,
		MaxQueue:                  *queue,
		DefaultTimeout:            *timeout,
		SlowQueryThreshold:        *slow,
		DefaultSessionParallelism: *dop,
	})

	if *dataDir != "" {
		// Persist the workload log next to the data files so the
		// physical-design advisor can mine it across restarts.
		wlPath := filepath.Join(*dataDir, "workload.jsonl")
		if err := srv.LogWorkloadTo(wlPath); err != nil {
			log.Printf("workload log disabled: %v", err)
		} else {
			log.Printf("workload log at %s", wlPath)
			defer srv.CloseWorkloadLog()
		}
	}
	if *httpAddr != "" {
		hl, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("observability HTTP on %s (/metrics, /workload, /debug/pprof)", hl.Addr())
		hsrv := &http.Server{Handler: srv.HTTPHandler()}
		go hsrv.Serve(hl)
		defer hsrv.Close()
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving on %s", l.Addr())

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		log.Printf("shutting down (draining in-flight queries)...")
		srv.Close()
	}()

	if err := srv.Serve(l); err != nil {
		log.Fatal(err)
	}
	// Final checkpoint: flush dirty pages, write the meta snapshot, truncate
	// the WAL. A kill -9 instead of a clean shutdown would recover the same
	// state from the log.
	if err := eng.Close(); err != nil {
		log.Printf("close: %v", err)
	}
	printSnapshot(srv.Metrics())
}

func printSnapshot(m server.Snapshot) {
	fmt.Printf("served %d queries in %v (%.1f qps, %d errors, %d rejected, %d canceled)\n",
		m.Queries, m.Uptime.Round(time.Millisecond), m.QPS, m.Errors, m.Rejected, m.Canceled)
	fmt.Printf("latency p50 %v  p95 %v  p99 %v  max %v\n",
		m.P50.Round(time.Microsecond), m.P95.Round(time.Microsecond),
		m.P99.Round(time.Microsecond), m.Max.Round(time.Microsecond))
	pc := m.PlanCache
	fmt.Printf("plan cache: %d hits, %d stmt hits, %d misses (%.0f%% hit rate), %d entries\n",
		pc.Hits, pc.StmtHits, pc.Misses, 100*pc.HitRate(), pc.Entries)
	fmt.Printf("io: %d page reads (%d seq / %d rand), %d buffer hits\n",
		m.IO.PageReads, m.IO.SeqReads, m.IO.RandReads, m.IO.CacheHits)
	for _, s := range m.Slow {
		fmt.Printf("slow: %v session=%d rows=%d  %s\n", s.Wall.Round(time.Microsecond), s.Session, s.Rows, s.SQL)
	}
}
