// Command benchjson converts `go test -bench` text output on stdin into a
// machine-readable JSON array on stdout, so CI runs and local A/B sessions
// can check in comparable numbers (see BENCH_7.json) instead of narrating
// them in prose.
//
// Usage:
//
//	go test ./internal/bench -run XXX -bench WideScan -benchtime 10x | benchjson
//
// Each "BenchmarkName  N  1234 ns/op  567 rows/s" line becomes one object:
//
//	{"name": "WideScanProjected/all_16", "iterations": N,
//	 "ns_per_op": 1234, "metrics": {"rows/s": 567}}
//
// Non-benchmark lines are ignored, so the full `go test` output can be piped
// through unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	var results []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		log.Fatal(err)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
}

// parseLine parses one benchmark result line. The format is
// "Benchmark<Name>[-P] <iters> <value> <unit> [<value> <unit>]...".
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the -GOMAXPROCS suffix benchmarks get on multi-core runners.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: name, Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		if fields[i+1] == "ns/op" {
			r.NsPerOp = v
		} else {
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[fields[i+1]] = v
		}
		seen = true
	}
	return r, seen
}
