package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"strings"

	"oldelephant/internal/server"
)

// runClient speaks the elephantd wire protocol interactively: statements
// terminated by ';' are sent as query requests, `\prepare name SQL` and
// `\exec name` drive prepared statements, `\set parallelism N` and
// `\set timeout MS` tune the session, and `\metrics` prints the server's
// live snapshot.
func runClient(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	in := bufio.NewScanner(conn)
	in.Buffer(make([]byte, 64*1024), 16<<20)
	out := bufio.NewWriter(conn)
	enc := json.NewEncoder(out)

	roundTrip := func(req server.Request) (server.Response, error) {
		if err := enc.Encode(req); err != nil {
			return server.Response{}, err
		}
		if err := out.Flush(); err != nil {
			return server.Response{}, err
		}
		if !in.Scan() {
			return server.Response{}, fmt.Errorf("connection closed: %v", in.Err())
		}
		var resp server.Response
		if err := json.Unmarshal(in.Bytes(), &resp); err != nil {
			return server.Response{}, err
		}
		return resp, nil
	}

	fmt.Printf("connected to %s — terminate statements with ';', commands with \\, exit with \\q\n", addr)
	stdin := bufio.NewScanner(os.Stdin)
	stdin.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	fmt.Print("> ")
	for stdin.Scan() {
		line := strings.TrimSpace(stdin.Text())
		switch {
		case line == "\\q" || line == "exit" || line == "quit":
			roundTrip(server.Request{Op: "close"})
			return nil
		case strings.HasPrefix(line, "\\"):
			if err := clientCommand(line, roundTrip); err != nil {
				return err
			}
			fmt.Print("> ")
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if !strings.Contains(line, ";") {
			fmt.Print("... ")
			continue
		}
		stmt := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(buf.String()), ";"))
		buf.Reset()
		resp, err := roundTrip(server.Request{Op: "query", SQL: stmt})
		if err != nil {
			return err
		}
		printResponse(resp)
		fmt.Print("> ")
	}
	return nil
}

// clientCommand handles one backslash command.
func clientCommand(line string, roundTrip func(server.Request) (server.Response, error)) error {
	fields := strings.Fields(line)
	var req server.Request
	switch fields[0] {
	case "\\metrics":
		req = server.Request{Op: "metrics"}
	case "\\ping":
		req = server.Request{Op: "ping"}
	case "\\prepare":
		if len(fields) < 3 {
			fmt.Println("usage: \\prepare name SELECT ...")
			return nil
		}
		sql := strings.TrimSuffix(strings.TrimSpace(strings.Join(fields[2:], " ")), ";")
		req = server.Request{Op: "prepare", Name: fields[1], SQL: sql}
	case "\\exec":
		if len(fields) != 2 {
			fmt.Println("usage: \\exec name")
			return nil
		}
		req = server.Request{Op: "exec", Name: fields[1]}
	case "\\set":
		if len(fields) != 3 {
			fmt.Println("usage: \\set parallelism N | \\set timeout MS")
			return nil
		}
		var n int
		if _, err := fmt.Sscanf(fields[2], "%d", &n); err != nil {
			fmt.Println("not a number:", fields[2])
			return nil
		}
		req = server.Request{Op: "set"}
		if fields[1] == "parallelism" {
			req.Parallelism = &n
		} else {
			req.TimeoutMS = &n
		}
	default:
		fmt.Println("commands: \\metrics \\ping \\prepare name SQL \\exec name \\set parallelism|timeout N \\q")
		return nil
	}
	resp, err := roundTrip(req)
	if err != nil {
		return err
	}
	printResponse(resp)
	return nil
}

// printResponse renders one wire response.
func printResponse(resp server.Response) {
	if !resp.OK {
		fmt.Println("error:", resp.Error)
		return
	}
	if resp.Metrics != nil {
		m := resp.Metrics
		fmt.Printf("%d queries, %.1f qps, %d running / %d queued, %d sessions\n",
			m.Queries, m.QPS, m.Running, m.Queued, m.Sessions)
		fmt.Printf("latency p50 %dus p95 %dus p99 %dus max %dus\n", m.P50US, m.P95US, m.P99US, m.MaxUS)
		fmt.Printf("plan cache %.0f%% hit rate (%d hits / %d misses); io %d page reads\n",
			100*m.CacheRate, m.CacheHits, m.CacheMiss, m.PageReads)
		return
	}
	if len(resp.Columns) > 0 {
		fmt.Println(strings.Join(resp.Columns, " | "))
		fmt.Println(strings.Repeat("-", 4*len(resp.Columns)+8))
		const maxRows = 50
		for i, row := range resp.Rows {
			if i >= maxRows {
				fmt.Printf("... (%d more rows)\n", len(resp.Rows)-maxRows)
				break
			}
			parts := make([]string, len(row))
			for j, v := range row {
				if v == nil {
					parts[j] = "NULL"
				} else {
					parts[j] = fmt.Sprint(v)
				}
			}
			fmt.Println(strings.Join(parts, " | "))
		}
	}
	cached := ""
	if resp.Cached {
		cached = ", plan cached"
	}
	fmt.Printf("(%d rows, %dus%s)\n", resp.RowCount, resp.WallUS, cached)
	if resp.Plan != "" {
		fmt.Println("plan:", resp.Plan)
	}
}
