// Command elephantsql is a small interactive SQL shell. By default it runs
// an in-process engine, optionally pre-loading TPC-H data so the paper's
// queries can be typed directly; it prints the chosen physical plan and I/O
// statistics after every query — the quickest way to see the effect of the
// c-table and materialized-view designs. With -connect it becomes a client
// for a running elephantd instead, speaking the JSON wire protocol (type
// \metrics for the server's live QPS / latency / plan-cache snapshot).
//
// Usage:
//
//	elephantsql -tpch 0.01
//	elephantsql -connect :7654
//	> SELECT l_suppkey, COUNT(*) FROM lineitem WHERE l_shipdate > DATE '1997-01-01' GROUP BY l_suppkey;
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"oldelephant/internal/engine"
	"oldelephant/internal/tpch"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("elephantsql: ")
	var (
		sf      = flag.Float64("tpch", 0, "pre-load TPC-H core tables at this scale factor (0 = start empty)")
		cold    = flag.Bool("cold", true, "reset the buffer pool before every query (cold-cache timings)")
		connect = flag.String("connect", "", "connect to a running elephantd at this address instead of running in-process")
	)
	flag.Parse()
	if *connect != "" {
		if err := runClient(*connect); err != nil {
			log.Fatal(err)
		}
		return
	}
	e := engine.Default()
	if *sf > 0 {
		fmt.Printf("loading TPC-H at sf=%g...\n", *sf)
		if err := tpch.NewGenerator(*sf).LoadCore(e); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("oldelephant SQL shell — terminate statements with ';', exit with \\q")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	fmt.Print("> ")
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if trimmed == "\\q" || trimmed == "exit" || trimmed == "quit" {
			return
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if !strings.Contains(line, ";") {
			fmt.Print("... ")
			continue
		}
		stmt := strings.TrimSpace(buf.String())
		buf.Reset()
		run(e, stmt, *cold)
		fmt.Print("> ")
	}
}

func run(e *engine.Engine, stmt string, cold bool) {
	if cold {
		e.ResetBufferPool()
	}
	res, err := e.Execute(stmt)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if len(res.Columns) > 0 {
		fmt.Println(strings.Join(res.Columns, " | "))
		fmt.Println(strings.Repeat("-", 4*len(res.Columns)+8))
		const maxRows = 50
		for i, row := range res.Rows {
			if i >= maxRows {
				fmt.Printf("... (%d more rows)\n", len(res.Rows)-maxRows)
				break
			}
			parts := make([]string, len(row))
			for j, v := range row {
				parts[j] = v.String()
			}
			fmt.Println(strings.Join(parts, " | "))
		}
	}
	fmt.Printf("(%d rows, %v, %d pages read: %d sequential / %d random)\n",
		res.Stats.RowsReturned, res.Stats.Wall.Round(10_000),
		res.Stats.IO.PageReads, res.Stats.IO.SeqReads, res.Stats.IO.RandReads)
	if res.Plan != "" {
		fmt.Println("plan:", res.Plan)
	}
}
