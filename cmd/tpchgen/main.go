// Command tpchgen generates the TPC-H-shaped data set used by the benchmarks
// and writes it as pipe-separated files (one per table, dbgen-style), so the
// data can be inspected or loaded into other systems.
//
// Usage:
//
//	tpchgen -sf 0.01 -out ./tpch-data
//	tpchgen -sf 0.01 -tables lineitem,orders -out ./tpch-data
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"oldelephant/internal/tpch"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tpchgen: ")
	var (
		sf     = flag.Float64("sf", 0.01, "scale factor")
		out    = flag.String("out", "tpch-data", "output directory")
		tables = flag.String("tables", "", "comma-separated table names (default: all)")
	)
	flag.Parse()
	want := tpch.TableNames()
	if *tables != "" {
		want = strings.Split(*tables, ",")
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	gen := tpch.NewGenerator(*sf)
	for _, table := range want {
		table = strings.TrimSpace(table)
		rows, err := gen.Rows(table)
		if err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(*out, table+".tbl")
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		w := bufio.NewWriter(f)
		for _, row := range rows {
			parts := make([]string, len(row))
			for i, v := range row {
				parts[i] = v.String()
			}
			fmt.Fprintln(w, strings.Join(parts, "|"))
		}
		if err := w.Flush(); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %8d rows  -> %s\n", table, len(rows), path)
	}
}
