// Package elephant is the public API of the reproduction of "Teaching an
// Old Elephant New Tricks" (Nicolas Bruno, CIDR 2009).
//
// The package wraps a from-scratch row-store engine (SQL parser, planner,
// B+-tree storage, vectorized batch-at-a-time executor with a row-at-a-time
// Volcano fallback) and the paper's two techniques for emulating a column
// store inside it without engine changes:
//
//   - materialized views (the Row(MV) strategy of Section 2.1), via
//     CreateMaterializedView and QueryUsingViews;
//   - c-tables plus mechanical query rewriting (the Row(Col) strategy of
//     Section 2.2), via BuildCTableDesign and NewRewriter;
//
// together with the column-store simulator used for the paper's ColOpt lower
// bound and the benchmark harness that regenerates the evaluation
// (Figure 2 and the three summary tables). See README.md for a tour and
// the examples/ directory for runnable programs.
package elephant

import (
	"oldelephant/internal/bench"
	"oldelephant/internal/colstore"
	"oldelephant/internal/core/ctable"
	"oldelephant/internal/core/matview"
	"oldelephant/internal/core/rewrite"
	"oldelephant/internal/engine"
	"oldelephant/internal/server"
	"oldelephant/internal/tpch"
	"oldelephant/internal/value"
)

// DB is a single-process database instance: a row store with clustered and
// secondary covering indexes, a SQL front end and per-query I/O statistics.
type DB struct {
	*engine.Engine
	views *matview.Manager
}

// Options configure a database instance.
type Options struct {
	// TupleOverhead is the per-tuple storage overhead in bytes (default 9,
	// the figure the paper quotes for its row store).
	TupleOverhead int
	// BufferPoolPages bounds the buffer pool; 0 keeps every page resident.
	BufferPoolPages int
	// Vectorized selects batch-at-a-time execution; it is the default, so
	// the zero Options value runs vectorized. Set DisableVectorized to force
	// the row-at-a-time Volcano executor (kept for differential testing).
	Vectorized bool
	// DisableVectorized forces row-at-a-time execution (see Vectorized).
	DisableVectorized bool
	// DisableCompressed keeps batch execution but forces flat (decompressed)
	// vectors: scans stop emitting Const/RLE vectors for sort-prefix columns.
	// Compressed execution is the default; the knob exists for differential
	// testing and flat-vs-compressed comparisons.
	DisableCompressed bool
	// Parallelism is the worker count for morsel-parallel execution of
	// vectorized plans. 0 selects runtime.GOMAXPROCS(0) — the default — and
	// 1 forces serial execution, reproducing single-threaded plans byte for
	// byte. See the README's "Parallel execution" section for the morsel
	// model and its determinism guarantees.
	Parallelism int
	// DataDir roots a durable database: pages live in a checksummed data
	// file, every statement commits through a write-ahead log with group
	// commit, and reopening the directory recovers to the last acknowledged
	// statement (see the README's "Durability" section). Empty keeps the
	// database in memory. Open ignores this field — use OpenDir.
	DataDir string
}

// Open creates an empty database.
func Open(opts Options) *DB {
	if opts.TupleOverhead == 0 {
		opts.TupleOverhead = -1 // engine default
	}
	e := engine.New(engine.Options{
		TupleOverhead:     opts.TupleOverhead,
		BufferPoolPages:   opts.BufferPoolPages,
		Vectorized:        opts.Vectorized,
		DisableVectorized: opts.DisableVectorized,
		DisableCompressed: opts.DisableCompressed,
		Parallelism:       opts.Parallelism,
	})
	return &DB{Engine: e, views: matview.NewManager(e)}
}

// OpenDir creates or reopens a durable database rooted at dir (overriding
// opts.DataDir). Opening replays the write-ahead log, verifies page
// checksums and discards any torn tail, so a database that crashed at an
// arbitrary point recovers every acknowledged statement and nothing partial.
// Call Close to checkpoint and release the files.
func OpenDir(dir string, opts Options) (*DB, error) {
	if opts.TupleOverhead == 0 {
		opts.TupleOverhead = -1 // engine default
	}
	e, err := engine.Open(engine.Options{
		TupleOverhead:     opts.TupleOverhead,
		BufferPoolPages:   opts.BufferPoolPages,
		Vectorized:        opts.Vectorized,
		DisableVectorized: opts.DisableVectorized,
		DisableCompressed: opts.DisableCompressed,
		Parallelism:       opts.Parallelism,
		DataDir:           dir,
	})
	if err != nil {
		return nil, err
	}
	return &DB{Engine: e, views: matview.NewManager(e)}, nil
}

// Close checkpoints a durable database and releases its files; it is a
// no-op for in-memory instances. The DB must not be used afterwards.
func (db *DB) Close() error { return db.Engine.Close() }

// Result is the outcome of a query: column labels, rows, the chosen physical
// plan and execution statistics (wall time, page I/O).
type Result = engine.Result

// Value is a SQL scalar value.
type Value = value.Value

// Row is one result row.
type Row = []value.Value

// LoadTPCH generates and loads the TPC-H tables used by the paper's workload
// (customer, orders, lineitem) at the given scale factor.
func (db *DB) LoadTPCH(scaleFactor float64) error {
	return tpch.NewGenerator(scaleFactor).LoadCore(db.Engine)
}

// LoadTPCHFull generates and loads all eight TPC-H tables.
func (db *DB) LoadTPCHFull(scaleFactor float64) error {
	return tpch.NewGenerator(scaleFactor).LoadAll(db.Engine)
}

// CreateMaterializedView defines and populates a materialized view
// (equivalent to executing CREATE MATERIALIZED VIEW name AS query).
func (db *DB) CreateMaterializedView(name, query string) error {
	return db.views.Create(name, query)
}

// QueryUsingViews answers a SELECT using a matching materialized view when
// one exists (the Row(MV) strategy); the boolean reports whether a view was
// used. Queries that no view can answer fall back to the base tables.
func (db *DB) QueryUsingViews(query string) (*Result, bool, error) {
	return db.views.Query(query)
}

// Views exposes the materialized-view manager for advanced use (refresh,
// inspection of the rewriting).
func (db *DB) Views() *matview.Manager { return db.views }

// CTableDesign is a materialized c-table design (the paper's D1, D2, D4).
type CTableDesign = ctable.Design

// BuildCTableDesign materializes the c-tables for the result of sourceSQL
// sorted by sortColumns (the Row(Col) physical design of Section 2.2.1).
// Each column of the design becomes a table named <name>_<column> with a
// clustered index on f and a covering secondary index on v.
func (db *DB) BuildCTableDesign(name, sourceSQL string, columns, sortColumns []string) (*CTableDesign, error) {
	return ctable.NewBuilder(db.Engine).Build(name, sourceSQL, columns, sortColumns)
}

// Rewriter mechanically translates base-table queries onto a c-table design
// (Section 2.2.2), including the range-collapse optimization of Figure 4(b).
type Rewriter = rewrite.Rewriter

// NewRewriter returns a rewriter for a design built by BuildCTableDesign.
func NewRewriter(design *CTableDesign) *Rewriter { return rewrite.New(design) }

// ColumnProjection is a compressed, column-wise stored projection used to
// compute the paper's ColOpt lower bound.
type ColumnProjection = colstore.Projection

// BuildColumnProjection materializes a compressed column-store projection of
// the result of sourceSQL (RLE / dictionary / raw encodings chosen per column).
func (db *DB) BuildColumnProjection(name, sourceSQL string, columns []string, kinds []value.Kind, sortColumns []string) (*ColumnProjection, error) {
	res, err := db.Engine.Query(sourceSQL)
	if err != nil {
		return nil, err
	}
	return colstore.BuildProjection(name, columns, kinds, sortColumns, res.Rows)
}

// ServerOptions configure the concurrent query-serving layer (core budget,
// admission queue bound, default timeout, slow-query threshold).
type ServerOptions = server.Options

// Server is the concurrent query-serving subsystem: sessions, prepared
// statements over the shared plan cache, admission control and metrics. See
// the server package for the session API and the wire protocol.
type Server = server.Server

// ServerSession is one client's serving-layer state.
type ServerSession = server.Session

// Serve wraps the database in a query server. The engine stays usable
// directly; the server adds sessions, admission control and metrics over the
// same catalog, buffer pool and plan cache. Use srv.Session() for in-process
// clients and srv.Serve(listener) for the TCP JSON protocol (cmd/elephantd
// is exactly that plus flags and signal handling).
func (db *DB) Serve(opts ServerOptions) *Server {
	return server.New(db.Engine, opts)
}

// Prepare parses a SELECT once into a reusable handle whose executions lease
// compiled plans from the shared plan cache (see Engine.QueryPrepared).
func (db *DB) Prepare(sqlText string) (*engine.Prepared, error) {
	return db.Engine.Prepare(sqlText)
}

// Benchmark types re-exported for the harness that reproduces the paper's
// evaluation; see the bench package for details.
type (
	// BenchConfig configures the experiment harness.
	BenchConfig = bench.Config
	// BenchHarness owns the loaded database and all physical designs.
	BenchHarness = bench.Harness
	// Measurement is one (query, strategy, parameter) data point.
	Measurement = bench.Measurement
	// Strategy is one of Row, Row(MV), Row(Col), ColOpt.
	Strategy = bench.Strategy
)

// NewBenchHarness builds the full experimental setup of the paper: TPC-H at
// cfg.SF, the materialized views, the c-table designs D1/D2/D4 and the
// column-store projections for ColOpt.
func NewBenchHarness(cfg BenchConfig) (*BenchHarness, error) { return bench.NewHarness(cfg) }

// DefaultBenchConfig returns the configuration used by the checked-in benchmarks.
func DefaultBenchConfig() BenchConfig { return bench.DefaultConfig() }
