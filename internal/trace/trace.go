// Package trace is the per-query execution tracing substrate behind
// EXPLAIN ANALYZE: a tree of Spans, one per physical operator, each
// accumulating the rows and batches it emitted, the inclusive wall time
// spent inside it, and operator-specific attributes (morsel and worker
// counts for parallel operators, build-side cardinality for hash joins).
//
// Tracing is strictly opt-in and pay-for-use: a query that runs without
// tracing builds no spans at all — the executor wraps operators with timing
// collectors only when a trace is requested (exec.InstrumentPlan), so the
// untraced hot path is unchanged down to the instruction level. Spans are
// written by the single goroutine that drives the plan's root (parallel
// operators report their worker/morsel structure as attributes instead of
// being instrumented internally), so a Span needs no locking; a finished
// trace is immutable and safe to share.
package trace

import (
	"fmt"
	"strings"
	"time"
)

// Attr is one operator-specific annotation on a span (e.g. workers=4,
// build_rows=50000).
type Attr struct {
	Key string `json:"key"`
	Val int64  `json:"val"`
}

// Span records the execution of one operator: identity, cardinality, timing
// and structure. Wall time is inclusive — it covers the operator and
// everything below it, the way EXPLAIN ANALYZE reports times in mainstream
// engines — so a parent's Wall is always >= each child's.
type Span struct {
	// Name identifies the operator, e.g. "SeqScan(lineitem)" or "Sort".
	Name string `json:"name"`
	// Rows is the number of live rows the operator emitted.
	Rows int64 `json:"rows"`
	// Batches is the number of non-empty batches emitted (0 when the
	// operator was driven row-at-a-time).
	Batches int64 `json:"batches,omitempty"`
	// Calls counts Next/NextBatch invocations, including the final
	// end-of-input call.
	Calls int64 `json:"calls,omitempty"`
	// Wall is the inclusive wall time spent in Open/Next/NextBatch/Close.
	Wall time.Duration `json:"wall_ns"`
	// Attrs carries operator-specific counters.
	Attrs []Attr `json:"attrs,omitempty"`
	// Children are the operator's inputs, in plan order.
	Children []*Span `json:"children,omitempty"`
}

// New returns a root span with the given name.
func New(name string) *Span { return &Span{Name: name} }

// Child appends and returns a new child span.
func (s *Span) Child(name string) *Span {
	c := &Span{Name: name}
	s.Children = append(s.Children, c)
	return c
}

// SetAttr records (or overwrites) an operator-specific counter.
func (s *Span) SetAttr(key string, val int64) {
	for i := range s.Attrs {
		if s.Attrs[i].Key == key {
			s.Attrs[i].Val = val
			return
		}
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Val: val})
}

// Attr returns the value of an operator-specific counter.
func (s *Span) Attr(key string) (int64, bool) {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Val, true
		}
	}
	return 0, false
}

// LeafRows sums the rows emitted by the tree's leaf spans — the rows that
// entered the plan from storage. It is the "rows in" figure the workload log
// records next to the result cardinality.
func (s *Span) LeafRows() int64 {
	if len(s.Children) == 0 {
		return s.Rows
	}
	var total int64
	for _, c := range s.Children {
		total += c.LeafRows()
	}
	return total
}

// NumSpans counts the spans in the tree.
func (s *Span) NumSpans() int {
	n := 1
	for _, c := range s.Children {
		n += c.NumSpans()
	}
	return n
}

// line renders one span's annotation.
func (s *Span) line() string {
	var b strings.Builder
	b.WriteString(s.Name)
	fmt.Fprintf(&b, " rows=%d", s.Rows)
	if s.Batches > 0 {
		fmt.Fprintf(&b, " batches=%d", s.Batches)
	}
	fmt.Fprintf(&b, " time=%s", s.Wall.Round(time.Microsecond))
	for _, a := range s.Attrs {
		fmt.Fprintf(&b, " %s=%d", a.Key, a.Val)
	}
	return b.String()
}

// Lines renders the tree as indented annotation lines, root first — the body
// of EXPLAIN ANALYZE's output.
func (s *Span) Lines() []string {
	var out []string
	var walk func(sp *Span, depth int)
	walk = func(sp *Span, depth int) {
		out = append(out, strings.Repeat("  ", depth)+sp.line())
		for _, c := range sp.Children {
			walk(c, depth+1)
		}
	}
	walk(s, 0)
	return out
}

// Format renders the tree as one indented multi-line string.
func (s *Span) Format() string { return strings.Join(s.Lines(), "\n") }

// Summary renders the tree as a compact single line — the form the slow-query
// and workload logs attach to each entry:
//
//	Sort[rows=4 1.2ms](HashAggregate[rows=4 1.1ms](SeqScan(t)[rows=60000 0.9ms]))
func (s *Span) Summary() string {
	var b strings.Builder
	s.summarize(&b)
	return b.String()
}

func (s *Span) summarize(b *strings.Builder) {
	b.WriteString(s.Name)
	fmt.Fprintf(b, "[rows=%d %s]", s.Rows, s.Wall.Round(time.Microsecond))
	if len(s.Children) == 0 {
		return
	}
	b.WriteByte('(')
	for i, c := range s.Children {
		if i > 0 {
			b.WriteByte(' ')
		}
		c.summarize(b)
	}
	b.WriteByte(')')
}
