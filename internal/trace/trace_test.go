package trace

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// buildTree assembles the span shape of a scan → filter → aggregate plan.
func buildTree() *Span {
	root := New("HashAggregate")
	root.Rows = 9
	root.Calls = 10
	root.Wall = 3 * time.Millisecond
	f := root.Child("Filter")
	f.Rows = 500
	f.Calls = 501
	s := f.Child("SeqScan(items)")
	s.Rows = 1000
	s.Batches = 2
	s.Calls = 3
	s.Wall = time.Millisecond
	s.SetAttr("morsels", 4)
	return root
}

func TestTraceSpanTree(t *testing.T) {
	root := buildTree()
	if got := root.NumSpans(); got != 3 {
		t.Fatalf("NumSpans = %d, want 3", got)
	}
	// LeafRows sums leaves only: the scan's 1000 rows, not the interior ops.
	if got := root.LeafRows(); got != 1000 {
		t.Fatalf("LeafRows = %d, want 1000", got)
	}
	scan := root.Children[0].Children[0]
	if v, ok := scan.Attr("morsels"); !ok || v != 4 {
		t.Fatalf("Attr(morsels) = %d,%v, want 4,true", v, ok)
	}
	if _, ok := scan.Attr("absent"); ok {
		t.Fatal("Attr on a missing key reported ok")
	}
}

func TestTraceLinesIndentAndContent(t *testing.T) {
	lines := buildTree().Lines()
	if len(lines) != 3 {
		t.Fatalf("Lines produced %d lines, want 3", len(lines))
	}
	for i, want := range []string{"HashAggregate", "Filter", "SeqScan(items)"} {
		if !strings.Contains(lines[i], want) {
			t.Errorf("line %d = %q, missing %q", i, lines[i], want)
		}
		// Each level indents deeper than its parent.
		indent := len(lines[i]) - len(strings.TrimLeft(lines[i], " "))
		if i > 0 {
			prev := len(lines[i-1]) - len(strings.TrimLeft(lines[i-1], " "))
			if indent <= prev {
				t.Errorf("line %d indent %d not deeper than parent's %d", i, indent, prev)
			}
		}
	}
	if !strings.Contains(lines[0], "rows=9") || !strings.Contains(lines[2], "rows=1000") {
		t.Errorf("row counts missing from lines:\n%s", strings.Join(lines, "\n"))
	}
	if !strings.Contains(lines[2], "morsels=4") {
		t.Errorf("attrs missing from leaf line: %q", lines[2])
	}
}

func TestTraceSummaryCompact(t *testing.T) {
	sum := buildTree().Summary()
	if strings.Contains(sum, "\n") {
		t.Fatalf("Summary is multi-line: %q", sum)
	}
	for _, want := range []string{"HashAggregate", "Filter", "SeqScan(items)", "rows=1000"} {
		if !strings.Contains(sum, want) {
			t.Errorf("Summary %q missing %q", sum, want)
		}
	}
	// Nesting survives: the scan renders inside the filter's parentheses.
	if strings.Index(sum, "Filter") > strings.Index(sum, "SeqScan") {
		t.Errorf("Summary lost nesting order: %q", sum)
	}
}

func TestTraceJSONShape(t *testing.T) {
	b, err := json.Marshal(buildTree())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"name", "rows", "wall_ns", "children"} {
		if _, ok := m[key]; !ok {
			t.Errorf("marshaled span missing %q: %s", key, b)
		}
	}
	var back Span
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.NumSpans() != 3 || back.LeafRows() != 1000 {
		t.Fatalf("round-trip lost structure: spans=%d leafRows=%d", back.NumSpans(), back.LeafRows())
	}
}
