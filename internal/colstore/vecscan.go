package colstore

import (
	"fmt"

	"oldelephant/internal/exec"
	"oldelephant/internal/value"
	"oldelephant/internal/vector"
)

// ProjectionScan exposes a compressed projection as an executor operator: it
// emits batches whose column vectors come straight from the compressed
// segments (RLE runs as RLE vectors, dictionary segments as Dict vectors
// sharing the dictionary, raw segments as zero-copy Flat slices). This is
// what turns the paper's ColOpt bound from a hand-written side path into a
// first-class executor configuration — the same Filter and aggregate
// operators that run row-store plans run the C-store plan, just on compressed
// vectors.
//
// ProjectionScan implements both the row (Operator) and batch
// (BatchOperator) protocols, like every other scan. Projections are an
// in-memory cost model, so the scan performs no pager I/O; the harness keeps
// charging ColOpt its analytic compressed-page count.
type ProjectionScan struct {
	Proj *Projection
	Cols []string
	// FlatVectors forces decompressed (Flat) output vectors. It is the
	// column-store side of the engine's DisableCompressed knob, used by the
	// differential tests and the flat-vs-compressed benchmarks.
	FlatVectors bool

	segs   []*ColumnSegment
	schema []exec.ColumnInfo
	pos    int64 // next 0-based position
	// lo and hi bound the scanned 0-based row range [lo, hi); a full scan
	// covers [0, NumRows). Parallel morsels are ProjectionScan clones over
	// disjoint windows — compressed segments clip per window, so RLE and
	// dictionary morsels cross worker boundaries without decompressing.
	lo, hi int64
}

// NewProjectionScan builds a scan over the given projection columns (nil
// means all, in projection order).
func NewProjectionScan(p *Projection, cols []string, flat bool) (*ProjectionScan, error) {
	if cols == nil {
		cols = p.Columns
	}
	s := &ProjectionScan{Proj: p, Cols: cols, FlatVectors: flat, lo: 0, hi: p.NumRows}
	for _, col := range cols {
		seg, err := p.Segment(col)
		if err != nil {
			return nil, err
		}
		idx := p.ColumnIndex(col)
		if idx < 0 {
			return nil, fmt.Errorf("colstore: projection %q has no column %q", p.Name, col)
		}
		s.segs = append(s.segs, seg)
		s.schema = append(s.schema, exec.ColumnInfo{Name: col, Kind: p.Kinds[idx]})
	}
	return s, nil
}

// Schema implements exec.Operator and exec.BatchOperator.
func (s *ProjectionScan) Schema() []exec.ColumnInfo { return s.schema }

// Open implements exec.Operator and exec.BatchOperator.
func (s *ProjectionScan) Open() error {
	s.pos = s.lo
	return nil
}

// NumScanRows implements exec.Morseler.
func (s *ProjectionScan) NumScanRows() int64 { return s.hi - s.lo }

// Morsels implements exec.Morseler: the projection splits into row windows of
// targetRows rows, each a ProjectionScan clone sharing the compressed
// segments.
func (s *ProjectionScan) Morsels(targetRows int) ([]exec.BatchOperator, bool) {
	if targetRows < 1 {
		targetRows = 1
	}
	n := s.hi - s.lo
	if n <= int64(targetRows) {
		return nil, false
	}
	var out []exec.BatchOperator
	for lo := s.lo; lo < s.hi; lo += int64(targetRows) {
		hi := lo + int64(targetRows)
		if hi > s.hi {
			hi = s.hi
		}
		clone := *s
		clone.lo, clone.hi = lo, hi
		clone.pos = lo
		out = append(out, &clone)
	}
	if len(out) < 2 {
		return nil, false
	}
	return out, true
}

// Close implements exec.Operator and exec.BatchOperator.
func (s *ProjectionScan) Close() error { return nil }

// Next implements exec.Operator (row protocol) for composition with
// row-at-a-time parents; the hot path is NextBatch.
func (s *ProjectionScan) Next() (exec.Row, bool, error) {
	if s.pos >= s.hi {
		return nil, false, nil
	}
	row := make(exec.Row, len(s.segs))
	for i, seg := range s.segs {
		row[i] = seg.Value(s.pos + 1)
	}
	s.pos++
	return row, true, nil
}

// NextBatch implements exec.BatchOperator, emitting compressed vectors
// clipped to the batch window.
func (s *ProjectionScan) NextBatch() (*exec.Batch, bool, error) {
	start := s.pos
	if start >= s.hi {
		return nil, false, nil
	}
	end := start + exec.DefaultBatchSize
	if end > s.hi {
		end = s.hi
	}
	s.pos = end
	cols := make([]*vector.Vector, len(s.segs))
	for i, seg := range s.segs {
		v := seg.vectorWindow(start, end)
		if s.FlatVectors {
			v = vector.NewFlat(v.Flat())
		}
		cols[i] = v
	}
	return exec.NewBatchFromVectors(cols), true, nil
}

// vectorWindow builds the vector for 0-based rows [start, end) of a segment.
func (s *ColumnSegment) vectorWindow(start, end int64) *vector.Vector {
	switch s.Encoding {
	case EncodingRLE:
		// Runs are 1-based and sorted; locate the run containing start and
		// clip runs to the window. A window that lies inside one run becomes
		// a Const vector.
		i := runIndexAt(s.runs, start+1)
		var vals []value.Value
		var ends []int
		for ; i < len(s.runs); i++ {
			r := s.runs[i]
			if r.First > end {
				break
			}
			last := r.First + r.Count - 1
			if last > end {
				last = end
			}
			vals = append(vals, r.Value)
			ends = append(ends, int(last-start))
		}
		if len(vals) == 1 {
			return vector.NewConst(vals[0], int(end-start))
		}
		return vector.NewRLE(vals, ends)
	case EncodingDict:
		return vector.NewDict(s.dict, s.unpackCodes(start, end))
	default:
		return vector.NewFlat(s.raw[start:end])
	}
}
