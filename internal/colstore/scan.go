package colstore

import (
	"fmt"

	"oldelephant/internal/value"
)

// This file implements a deliberately small native executor over compressed
// projections. Since the batch scan (vecscan.go) runs ColOpt queries through
// the shared executor on compressed vectors, this is no longer on any query
// hot path; it remains as (i) an independent test oracle for the executor
// and the row-store strategies, and (ii) a demonstration of the
// late-materialization style of C-store query processing the paper describes
// (operate on positions, and aggregate over run lengths without
// decompressing).

// PositionRange is a contiguous range of 1-based positions [First, Last].
type PositionRange struct {
	First, Last int64
}

// Len returns the number of positions in the range.
func (r PositionRange) Len() int64 {
	if r.Last < r.First {
		return 0
	}
	return r.Last - r.First + 1
}

// SelectRange returns the position ranges of rows whose value in the given
// column lies in [lo, hi]. For RLE columns this touches only run metadata.
func (p *Projection) SelectRange(col string, lo, hi value.Value, loIncl, hiIncl bool) ([]PositionRange, error) {
	seg, err := p.Segment(col)
	if err != nil {
		return nil, err
	}
	var out []PositionRange
	add := func(first, last int64) {
		if len(out) > 0 && out[len(out)-1].Last+1 == first {
			out[len(out)-1].Last = last
			return
		}
		out = append(out, PositionRange{First: first, Last: last})
	}
	switch seg.Encoding {
	case EncodingRLE:
		for _, r := range seg.runs {
			if inRange(r.Value, lo, hi, loIncl, hiIncl) {
				add(r.First, r.First+r.Count-1)
			}
		}
	default:
		for pos := int64(1); pos <= seg.NumRows; pos++ {
			if inRange(seg.Value(pos), lo, hi, loIncl, hiIncl) {
				add(pos, pos)
			}
		}
	}
	return out, nil
}

// AggKind is the aggregate computed by GroupAggregate.
type AggKind int

// Aggregates supported by the native scanner.
const (
	AggCount AggKind = iota
	AggSum
	AggMax
	AggMin
)

// GroupResult is one group produced by GroupAggregate.
type GroupResult struct {
	Key value.Value
	Agg value.Value
}

// GroupAggregate groups the positions in ranges by groupCol and aggregates
// aggCol (ignored for COUNT). It works directly on the compressed segments:
// RLE group columns contribute whole runs at a time.
func (p *Projection) GroupAggregate(ranges []PositionRange, groupCol string, agg AggKind, aggCol string) ([]GroupResult, error) {
	gSeg, err := p.Segment(groupCol)
	if err != nil {
		return nil, err
	}
	var aSeg *ColumnSegment
	if agg != AggCount {
		aSeg, err = p.Segment(aggCol)
		if err != nil {
			return nil, err
		}
	}
	type state struct {
		key   value.Value
		count int64
		sum   float64
		max   value.Value
		min   value.Value
	}
	groups := make(map[string]*state)
	touch := func(key value.Value) *state {
		k := key.String()
		st, ok := groups[k]
		if !ok {
			st = &state{key: key, max: value.Null(), min: value.Null()}
			groups[k] = st
		}
		return st
	}
	addPos := func(pos int64, reps int64) {
		key := gSeg.Value(pos)
		st := touch(key)
		st.count += reps
		if aSeg != nil {
			v := aSeg.Value(pos)
			st.sum += v.Float() * float64(reps)
			if st.max.IsNull() || value.Compare(v, st.max) > 0 {
				st.max = v
			}
			if st.min.IsNull() || value.Compare(v, st.min) < 0 {
				st.min = v
			}
		}
	}
	for _, r := range ranges {
		if gSeg.Encoding == EncodingRLE && agg == AggCount {
			// Count whole (clipped) group runs without visiting positions.
			for _, run := range gSeg.runs {
				first, last := run.First, run.First+run.Count-1
				if last < r.First || first > r.Last {
					continue
				}
				if first < r.First {
					first = r.First
				}
				if last > r.Last {
					last = r.Last
				}
				touch(run.Value).count += last - first + 1
			}
			continue
		}
		for pos := r.First; pos <= r.Last; pos++ {
			addPos(pos, 1)
		}
	}
	out := make([]GroupResult, 0, len(groups))
	for _, st := range groups {
		var v value.Value
		switch agg {
		case AggCount:
			v = value.NewInt(st.count)
		case AggSum:
			v = value.NewFloat(st.sum)
		case AggMax:
			v = st.max
		case AggMin:
			v = st.min
		default:
			return nil, fmt.Errorf("colstore: unsupported aggregate %d", agg)
		}
		out = append(out, GroupResult{Key: st.key, Agg: v})
	}
	sortGroupResults(out)
	return out, nil
}

func sortGroupResults(out []GroupResult) {
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && value.Compare(out[j].Key, out[j-1].Key) < 0; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
}
