package colstore

import (
	"fmt"
	"math/rand"
	"testing"

	"oldelephant/internal/value"
)

// buildD1Like builds a projection shaped like the paper's D1:
// (lineitem | l_shipdate, l_suppkey) with long shipdate runs.
func buildD1Like(t testing.TB, rows int) *Projection {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	var data [][]value.Value
	base := value.MustParseDate("1995-01-01").Int()
	for i := 0; i < rows; i++ {
		data = append(data, []value.Value{
			value.NewDate(base + int64(i%100)),                   // 100 distinct dates
			value.NewInt(int64(rng.Intn(50))),                    // 50 suppliers
			value.NewFloat(float64(1000+rng.Intn(100000)) / 100), // price: mostly distinct
		})
	}
	p, err := BuildProjection("D1", []string{"l_shipdate", "l_suppkey", "l_extendedprice"},
		[]value.Kind{value.KindDate, value.KindInt, value.KindFloat},
		[]string{"l_shipdate", "l_suppkey"}, data)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuildProjectionEncodings(t *testing.T) {
	p := buildD1Like(t, 20000)
	if p.NumRows != 20000 {
		t.Fatalf("NumRows = %d", p.NumRows)
	}
	ship, err := p.Segment("l_shipdate")
	if err != nil {
		t.Fatal(err)
	}
	// The leading sort column has long runs: RLE with 100 runs.
	if ship.Encoding != EncodingRLE {
		t.Errorf("l_shipdate encoding = %v, want RLE", ship.Encoding)
	}
	if len(ship.Runs()) != 100 {
		t.Errorf("l_shipdate runs = %d, want 100", len(ship.Runs()))
	}
	supp, _ := p.Segment("l_suppkey")
	// Second sort column: runs are short (200 rows per date / 50 suppliers),
	// so either RLE over ~few-row runs or a dictionary; both compress well.
	if supp.CompressedBytes >= ship.NumRows*4 {
		t.Errorf("l_suppkey did not compress: %d bytes", supp.CompressedBytes)
	}
	price, _ := p.Segment("l_extendedprice")
	if price.Encoding == EncodingRLE {
		t.Errorf("high-cardinality unsorted column should not be RLE")
	}
	// The price column must be much larger than the shipdate column — this
	// asymmetry is what drives the paper's Q7-vs-ColOpt result.
	if price.CompressedBytes < 20*ship.CompressedBytes {
		t.Errorf("price (%d bytes) should dwarf shipdate (%d bytes)", price.CompressedBytes, ship.CompressedBytes)
	}
	if p.TotalCompressedBytes() <= 0 || p.TotalPages() <= 0 {
		t.Error("totals should be positive")
	}
	if p.ColumnIndex("l_suppkey") != 1 || p.ColumnIndex("nope") != -1 {
		t.Error("ColumnIndex wrong")
	}
}

func TestBuildProjectionErrors(t *testing.T) {
	if _, err := BuildProjection("p", []string{"a"}, nil, nil, nil); err == nil {
		t.Error("mismatched kinds should fail")
	}
	if _, err := BuildProjection("p", []string{"a"}, []value.Kind{value.KindInt}, []string{"b"}, nil); err == nil {
		t.Error("unknown sort column should fail")
	}
	if _, err := BuildProjection("p", []string{"a"}, []value.Kind{value.KindInt}, nil,
		[][]value.Value{{value.NewInt(1), value.NewInt(2)}}); err == nil {
		t.Error("wrong arity rows should fail")
	}
	p, err := BuildProjection("p", []string{"a"}, []value.Kind{value.KindInt}, []string{"a"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumRows != 0 {
		t.Error("empty projection should have zero rows")
	}
	frac, err := p.LeadingRangeFraction(value.NewInt(1), value.Null(), true, true)
	if err != nil || frac != 0 {
		t.Errorf("empty projection fraction = %v, %v", frac, err)
	}
	if _, err := p.Segment("missing"); err == nil {
		t.Error("missing segment should fail")
	}
	if _, err := p.ColOptPages([]string{"missing"}, 1); err == nil {
		t.Error("ColOptPages of missing column should fail")
	}
}

func TestSegmentValueAccess(t *testing.T) {
	p := buildD1Like(t, 5000)
	for _, col := range p.Columns {
		seg, _ := p.Segment(col)
		if !seg.Value(0).IsNull() || !seg.Value(seg.NumRows+1).IsNull() {
			t.Errorf("%s: out-of-range positions should be NULL", col)
		}
		if seg.Value(1).IsNull() || seg.Value(seg.NumRows).IsNull() {
			t.Errorf("%s: valid positions should have values", col)
		}
	}
	// Values in the leading column are non-decreasing (projection is sorted).
	ship, _ := p.Segment("l_shipdate")
	prev := ship.Value(1)
	for pos := int64(2); pos <= ship.NumRows; pos += 97 {
		v := ship.Value(pos)
		if value.Compare(v, prev) < 0 {
			t.Fatal("leading column not sorted")
		}
		prev = v
	}
}

func TestLeadingRangeFractionAndColOpt(t *testing.T) {
	p := buildD1Like(t, 10000)
	base := value.MustParseDate("1995-01-01").Int()
	// Dates 0..99, uniform: > day 49 is half the rows.
	frac, err := p.LeadingRangeFraction(value.NewDate(base+49), value.Null(), false, true)
	if err != nil {
		t.Fatal(err)
	}
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("fraction = %f, want about 0.5", frac)
	}
	full, _ := p.LeadingRangeFraction(value.Null(), value.Null(), true, true)
	if full != 1 {
		t.Errorf("open range fraction = %f", full)
	}
	none, _ := p.LeadingRangeFraction(value.NewDate(base+1000), value.Null(), true, true)
	if none != 0 {
		t.Errorf("empty range fraction = %f", none)
	}
	// ColOpt pages scale with the fraction and with the set of columns.
	all, err := p.ColOptPages([]string{"l_shipdate", "l_suppkey", "l_extendedprice"}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	half, _ := p.ColOptPages([]string{"l_shipdate", "l_suppkey", "l_extendedprice"}, 0.5)
	one, _ := p.ColOptPages([]string{"l_shipdate"}, 1.0)
	if half > all || one > all {
		t.Errorf("ColOpt pages inconsistent: all=%d half=%d one=%d", all, half, one)
	}
	if all <= 0 || half <= 0 || one <= 0 {
		t.Error("ColOpt pages should be positive")
	}
	// Clamping.
	clamped, _ := p.ColOptPages([]string{"l_shipdate"}, 1.5)
	if clamped != one {
		t.Errorf("fraction above 1 should clamp: %d vs %d", clamped, one)
	}
	zero, _ := p.ColOptPages([]string{"l_shipdate"}, 0)
	if zero != 0 {
		t.Errorf("fraction 0 should cost 0 pages, got %d", zero)
	}
}

func TestSelectRangeAndGroupAggregate(t *testing.T) {
	// Small deterministic projection for exact assertions.
	var rows [][]value.Value
	for d := 0; d < 10; d++ {
		for s := 0; s < 4; s++ {
			for k := 0; k < 5; k++ {
				rows = append(rows, []value.Value{
					value.NewInt(int64(d)),
					value.NewInt(int64(s)),
					value.NewFloat(float64(d*100 + s)),
				})
			}
		}
	}
	p, err := BuildProjection("t", []string{"d", "s", "p"},
		[]value.Kind{value.KindInt, value.KindInt, value.KindFloat},
		[]string{"d", "s"}, rows)
	if err != nil {
		t.Fatal(err)
	}
	// d > 7 selects d in {8, 9}: 40 contiguous positions.
	ranges, err := p.SelectRange("d", value.NewInt(7), value.Null(), false, true)
	if err != nil {
		t.Fatal(err)
	}
	var totalPos int64
	for _, r := range ranges {
		totalPos += r.Len()
	}
	if totalPos != 40 {
		t.Fatalf("selected %d positions, want 40", totalPos)
	}
	// COUNT group by s over the selection: each s appears 10 times.
	groups, err := p.GroupAggregate(ranges, "s", AggCount, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 4 {
		t.Fatalf("groups = %d", len(groups))
	}
	for _, g := range groups {
		if g.Agg.Int() != 10 {
			t.Errorf("group %v count = %v, want 10", g.Key, g.Agg)
		}
	}
	// MAX(p) group by s over everything.
	allRange := []PositionRange{{First: 1, Last: p.NumRows}}
	maxGroups, err := p.GroupAggregate(allRange, "s", AggMax, "p")
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range maxGroups {
		want := float64(900 + g.Key.Int())
		if g.Agg.Float() != want {
			t.Errorf("MAX for s=%v is %v, want %v", g.Key, g.Agg, want)
		}
	}
	// SUM and MIN paths.
	sums, err := p.GroupAggregate(allRange, "d", AggSum, "s")
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range sums {
		if g.Agg.Float() != 30 { // sum of s over 4 suppliers x 5 rows = (0+1+2+3)*5
			t.Errorf("SUM for d=%v is %v, want 30", g.Key, g.Agg)
		}
	}
	mins, err := p.GroupAggregate(allRange, "d", AggMin, "p")
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range mins {
		if g.Agg.Float() != float64(g.Key.Int()*100) {
			t.Errorf("MIN for d=%v is %v", g.Key, g.Agg)
		}
	}
	// Range selection on a non-RLE column still works (positions may be sparse).
	priceRanges, err := p.SelectRange("p", value.NewFloat(900), value.Null(), true, true)
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	for _, r := range priceRanges {
		n += r.Len()
	}
	if n != 20 { // d=9 rows
		t.Errorf("price range selected %d positions, want 20", n)
	}
	if _, err := p.SelectRange("missing", value.Null(), value.Null(), true, true); err == nil {
		t.Error("missing column should fail")
	}
	if _, err := p.GroupAggregate(allRange, "missing", AggCount, ""); err == nil {
		t.Error("missing group column should fail")
	}
	if _, err := p.GroupAggregate(allRange, "d", AggSum, "missing"); err == nil {
		t.Error("missing aggregate column should fail")
	}
}

func TestEncodingString(t *testing.T) {
	if EncodingRLE.String() != "RLE" || EncodingDict.String() != "DICT" || EncodingRaw.String() != "RAW" {
		t.Error("encoding names wrong")
	}
	if Encoding(9).String() == "" {
		t.Error("unknown encoding should still render")
	}
}

func TestCompressionBeatsRowStoreFootprint(t *testing.T) {
	// The whole point of the ColOpt baseline: the compressed projection is a
	// small fraction of the row representation.
	p := buildD1Like(t, 30000)
	var rowBytes int64
	rng := rand.New(rand.NewSource(5))
	base := value.MustParseDate("1995-01-01").Int()
	for i := 0; i < 30000; i++ {
		row := []value.Value{
			value.NewDate(base + int64(i%100)),
			value.NewInt(int64(rng.Intn(50))),
			value.NewFloat(float64(1000+rng.Intn(100000)) / 100),
		}
		rowBytes += int64(value.RowSize(row)) + 9
	}
	if p.TotalCompressedBytes()*2 > rowBytes {
		t.Errorf("projection (%d bytes) should be far smaller than rows (%d bytes)",
			p.TotalCompressedBytes(), rowBytes)
	}
	fmt.Fprintf(testingDiscard{}, "compressed=%d raw=%d\n", p.TotalCompressedBytes(), rowBytes)
}

type testingDiscard struct{}

func (testingDiscard) Write(p []byte) (int, error) { return len(p), nil }
