package colstore

import (
	"fmt"
	"math/rand"
	"testing"

	"oldelephant/internal/exec"
	"oldelephant/internal/value"
	"oldelephant/internal/vector"
)

// buildD1Like builds a projection shaped like the paper's D1:
// (lineitem | l_shipdate, l_suppkey) with long shipdate runs.
func buildD1Like(t testing.TB, rows int) *Projection {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	var data [][]value.Value
	base := value.MustParseDate("1995-01-01").Int()
	for i := 0; i < rows; i++ {
		data = append(data, []value.Value{
			value.NewDate(base + int64(i%100)),                   // 100 distinct dates
			value.NewInt(int64(rng.Intn(50))),                    // 50 suppliers
			value.NewFloat(float64(1000+rng.Intn(100000)) / 100), // price: mostly distinct
		})
	}
	p, err := BuildProjection("D1", []string{"l_shipdate", "l_suppkey", "l_extendedprice"},
		[]value.Kind{value.KindDate, value.KindInt, value.KindFloat},
		[]string{"l_shipdate", "l_suppkey"}, data)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuildProjectionEncodings(t *testing.T) {
	p := buildD1Like(t, 20000)
	if p.NumRows != 20000 {
		t.Fatalf("NumRows = %d", p.NumRows)
	}
	ship, err := p.Segment("l_shipdate")
	if err != nil {
		t.Fatal(err)
	}
	// The leading sort column has long runs: RLE with 100 runs.
	if ship.Encoding != EncodingRLE {
		t.Errorf("l_shipdate encoding = %v, want RLE", ship.Encoding)
	}
	if len(ship.Runs()) != 100 {
		t.Errorf("l_shipdate runs = %d, want 100", len(ship.Runs()))
	}
	supp, _ := p.Segment("l_suppkey")
	// Second sort column: runs are short (200 rows per date / 50 suppliers),
	// so either RLE over ~few-row runs or a dictionary; both compress well.
	if supp.CompressedBytes >= ship.NumRows*4 {
		t.Errorf("l_suppkey did not compress: %d bytes", supp.CompressedBytes)
	}
	price, _ := p.Segment("l_extendedprice")
	if price.Encoding == EncodingRLE {
		t.Errorf("high-cardinality unsorted column should not be RLE")
	}
	// The price column must be much larger than the shipdate column — this
	// asymmetry is what drives the paper's Q7-vs-ColOpt result.
	if price.CompressedBytes < 20*ship.CompressedBytes {
		t.Errorf("price (%d bytes) should dwarf shipdate (%d bytes)", price.CompressedBytes, ship.CompressedBytes)
	}
	if p.TotalCompressedBytes() <= 0 || p.TotalPages() <= 0 {
		t.Error("totals should be positive")
	}
	if p.ColumnIndex("l_suppkey") != 1 || p.ColumnIndex("nope") != -1 {
		t.Error("ColumnIndex wrong")
	}
}

func TestBuildProjectionErrors(t *testing.T) {
	if _, err := BuildProjection("p", []string{"a"}, nil, nil, nil); err == nil {
		t.Error("mismatched kinds should fail")
	}
	if _, err := BuildProjection("p", []string{"a"}, []value.Kind{value.KindInt}, []string{"b"}, nil); err == nil {
		t.Error("unknown sort column should fail")
	}
	if _, err := BuildProjection("p", []string{"a"}, []value.Kind{value.KindInt}, nil,
		[][]value.Value{{value.NewInt(1), value.NewInt(2)}}); err == nil {
		t.Error("wrong arity rows should fail")
	}
	p, err := BuildProjection("p", []string{"a"}, []value.Kind{value.KindInt}, []string{"a"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumRows != 0 {
		t.Error("empty projection should have zero rows")
	}
	frac, err := p.LeadingRangeFraction(value.NewInt(1), value.Null(), true, true)
	if err != nil || frac != 0 {
		t.Errorf("empty projection fraction = %v, %v", frac, err)
	}
	if _, err := p.Segment("missing"); err == nil {
		t.Error("missing segment should fail")
	}
	if _, err := p.ColOptPages([]string{"missing"}, 1); err == nil {
		t.Error("ColOptPages of missing column should fail")
	}
}

func TestSegmentValueAccess(t *testing.T) {
	p := buildD1Like(t, 5000)
	for _, col := range p.Columns {
		seg, _ := p.Segment(col)
		if !seg.Value(0).IsNull() || !seg.Value(seg.NumRows+1).IsNull() {
			t.Errorf("%s: out-of-range positions should be NULL", col)
		}
		if seg.Value(1).IsNull() || seg.Value(seg.NumRows).IsNull() {
			t.Errorf("%s: valid positions should have values", col)
		}
	}
	// Values in the leading column are non-decreasing (projection is sorted).
	ship, _ := p.Segment("l_shipdate")
	prev := ship.Value(1)
	for pos := int64(2); pos <= ship.NumRows; pos += 97 {
		v := ship.Value(pos)
		if value.Compare(v, prev) < 0 {
			t.Fatal("leading column not sorted")
		}
		prev = v
	}
}

func TestLeadingRangeFractionAndColOpt(t *testing.T) {
	p := buildD1Like(t, 10000)
	base := value.MustParseDate("1995-01-01").Int()
	// Dates 0..99, uniform: > day 49 is half the rows.
	frac, err := p.LeadingRangeFraction(value.NewDate(base+49), value.Null(), false, true)
	if err != nil {
		t.Fatal(err)
	}
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("fraction = %f, want about 0.5", frac)
	}
	full, _ := p.LeadingRangeFraction(value.Null(), value.Null(), true, true)
	if full != 1 {
		t.Errorf("open range fraction = %f", full)
	}
	none, _ := p.LeadingRangeFraction(value.NewDate(base+1000), value.Null(), true, true)
	if none != 0 {
		t.Errorf("empty range fraction = %f", none)
	}
	// ColOpt pages scale with the fraction and with the set of columns.
	all, err := p.ColOptPages([]string{"l_shipdate", "l_suppkey", "l_extendedprice"}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	half, _ := p.ColOptPages([]string{"l_shipdate", "l_suppkey", "l_extendedprice"}, 0.5)
	one, _ := p.ColOptPages([]string{"l_shipdate"}, 1.0)
	if half > all || one > all {
		t.Errorf("ColOpt pages inconsistent: all=%d half=%d one=%d", all, half, one)
	}
	if all <= 0 || half <= 0 || one <= 0 {
		t.Error("ColOpt pages should be positive")
	}
	// Clamping.
	clamped, _ := p.ColOptPages([]string{"l_shipdate"}, 1.5)
	if clamped != one {
		t.Errorf("fraction above 1 should clamp: %d vs %d", clamped, one)
	}
	zero, _ := p.ColOptPages([]string{"l_shipdate"}, 0)
	if zero != 0 {
		t.Errorf("fraction 0 should cost 0 pages, got %d", zero)
	}
}

func TestSelectRangeAndGroupAggregate(t *testing.T) {
	// Small deterministic projection for exact assertions.
	var rows [][]value.Value
	for d := 0; d < 10; d++ {
		for s := 0; s < 4; s++ {
			for k := 0; k < 5; k++ {
				rows = append(rows, []value.Value{
					value.NewInt(int64(d)),
					value.NewInt(int64(s)),
					value.NewFloat(float64(d*100 + s)),
				})
			}
		}
	}
	p, err := BuildProjection("t", []string{"d", "s", "p"},
		[]value.Kind{value.KindInt, value.KindInt, value.KindFloat},
		[]string{"d", "s"}, rows)
	if err != nil {
		t.Fatal(err)
	}
	// d > 7 selects d in {8, 9}: 40 contiguous positions.
	ranges, err := p.SelectRange("d", value.NewInt(7), value.Null(), false, true)
	if err != nil {
		t.Fatal(err)
	}
	var totalPos int64
	for _, r := range ranges {
		totalPos += r.Len()
	}
	if totalPos != 40 {
		t.Fatalf("selected %d positions, want 40", totalPos)
	}
	// COUNT group by s over the selection: each s appears 10 times.
	groups, err := p.GroupAggregate(ranges, "s", AggCount, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 4 {
		t.Fatalf("groups = %d", len(groups))
	}
	for _, g := range groups {
		if g.Agg.Int() != 10 {
			t.Errorf("group %v count = %v, want 10", g.Key, g.Agg)
		}
	}
	// MAX(p) group by s over everything.
	allRange := []PositionRange{{First: 1, Last: p.NumRows}}
	maxGroups, err := p.GroupAggregate(allRange, "s", AggMax, "p")
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range maxGroups {
		want := float64(900 + g.Key.Int())
		if g.Agg.Float() != want {
			t.Errorf("MAX for s=%v is %v, want %v", g.Key, g.Agg, want)
		}
	}
	// SUM and MIN paths.
	sums, err := p.GroupAggregate(allRange, "d", AggSum, "s")
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range sums {
		if g.Agg.Float() != 30 { // sum of s over 4 suppliers x 5 rows = (0+1+2+3)*5
			t.Errorf("SUM for d=%v is %v, want 30", g.Key, g.Agg)
		}
	}
	mins, err := p.GroupAggregate(allRange, "d", AggMin, "p")
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range mins {
		if g.Agg.Float() != float64(g.Key.Int()*100) {
			t.Errorf("MIN for d=%v is %v", g.Key, g.Agg)
		}
	}
	// Range selection on a non-RLE column still works (positions may be sparse).
	priceRanges, err := p.SelectRange("p", value.NewFloat(900), value.Null(), true, true)
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	for _, r := range priceRanges {
		n += r.Len()
	}
	if n != 20 { // d=9 rows
		t.Errorf("price range selected %d positions, want 20", n)
	}
	if _, err := p.SelectRange("missing", value.Null(), value.Null(), true, true); err == nil {
		t.Error("missing column should fail")
	}
	if _, err := p.GroupAggregate(allRange, "missing", AggCount, ""); err == nil {
		t.Error("missing group column should fail")
	}
	if _, err := p.GroupAggregate(allRange, "d", AggSum, "missing"); err == nil {
		t.Error("missing aggregate column should fail")
	}
}

// forceSegments builds one segment per encoding over the same values, so
// tests can compare the encodings' behavior directly (buildSegment normally
// picks exactly one).
func forceSegments(vals []value.Value, kind value.Kind) map[Encoding]*ColumnSegment {
	n := int64(len(vals))
	// RLE.
	var runs []Run
	for i, v := range vals {
		if len(runs) > 0 && value.Compare(runs[len(runs)-1].Value, v) == 0 {
			runs[len(runs)-1].Count++
			continue
		}
		runs = append(runs, Run{First: int64(i + 1), Value: v, Count: 1})
	}
	rle := &ColumnSegment{Name: "x", Kind: kind, Encoding: EncodingRLE, NumRows: n, runs: runs}
	// Dict with bit-packed codes.
	var dict []value.Value
	codes := make([]uint32, n)
	index := map[string]uint32{}
	for i, v := range vals {
		c, ok := index[v.String()]
		if !ok {
			c = uint32(len(dict))
			index[v.String()] = c
			dict = append(dict, v)
		}
		codes[i] = c
	}
	bits := uint(1)
	for (1 << bits) < len(dict) {
		bits++
	}
	dictSeg := &ColumnSegment{Name: "x", Kind: kind, Encoding: EncodingDict, NumRows: n,
		dict: dict, codeBits: bits, packed: packCodes(codes, bits)}
	// Raw.
	raw := &ColumnSegment{Name: "x", Kind: kind, Encoding: EncodingRaw, NumRows: n,
		raw: append([]value.Value(nil), vals...)}
	return map[Encoding]*ColumnSegment{EncodingRLE: rle, EncodingDict: dictSeg, EncodingRaw: raw}
}

// TestValueRoundTripAcrossEncodings is the encoding round-trip property:
// Value(pos) returns the same value from the RLE, dictionary (bit-packed)
// and raw representation of the same data, at every position. 23 distinct
// values force 5-bit codes, so packed codes straddle word boundaries.
func TestValueRoundTripAcrossEncodings(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	vals := make([]value.Value, 3000)
	cur := int64(0)
	for i := range vals {
		if rng.Intn(3) == 0 {
			cur = int64(rng.Intn(23))
		}
		vals[i] = value.NewInt(cur)
	}
	segs := forceSegments(vals, value.KindInt)
	if segs[EncodingDict].CodeBits() != 5 {
		t.Fatalf("dict code bits = %d, want 5", segs[EncodingDict].CodeBits())
	}
	for pos := int64(1); pos <= int64(len(vals)); pos++ {
		want := vals[pos-1]
		for enc, seg := range segs {
			if got := seg.Value(pos); value.Compare(got, want) != 0 {
				t.Fatalf("%v: Value(%d) = %v, want %v", enc, pos, got, want)
			}
		}
	}
	// Out-of-range positions are NULL on every encoding.
	for enc, seg := range segs {
		if !seg.Value(0).IsNull() || !seg.Value(int64(len(vals))+1).IsNull() {
			t.Errorf("%v: out-of-range position should be NULL", enc)
		}
	}
}

// TestDictCodesAreBitPacked pins the satellite fix: a dictionary segment
// stores bit-packed codes, and its byte accounting matches the packed size
// rather than full 32-bit words.
func TestDictCodesAreBitPacked(t *testing.T) {
	// 40k rows alternating over 16 distinct strings: dictionary wins.
	vals := make([]value.Value, 40000)
	for i := range vals {
		vals[i] = value.NewString(fmt.Sprintf("v%02d", i%16))
	}
	rows := make([][]value.Value, len(vals))
	for i, v := range vals {
		rows[i] = []value.Value{v}
	}
	p, err := BuildProjection("d", []string{"s"}, []value.Kind{value.KindString}, nil, rows)
	if err != nil {
		t.Fatal(err)
	}
	seg, _ := p.Segment("s")
	if seg.Encoding != EncodingDict {
		t.Fatalf("encoding = %v, want DICT", seg.Encoding)
	}
	if seg.CodeBits() != 4 {
		t.Errorf("code bits = %d, want 4 for 16 distinct values", seg.CodeBits())
	}
	// The in-memory packed array must match the accounted packed size to
	// within a word, and be ~8x smaller than full uint32 codes.
	packedBytes := int64(len(seg.packed) * 8)
	accounted := (int64(len(vals))*int64(seg.CodeBits()) + 7) / 8
	if packedBytes < accounted || packedBytes > accounted+16 {
		t.Errorf("packed array = %d bytes, accounted %d", packedBytes, accounted)
	}
	if fullWords := int64(len(vals)) * 4; packedBytes*6 > fullWords {
		t.Errorf("codes are not bit-packed: %d bytes vs %d unpacked", packedBytes, fullWords)
	}
	if seg.DictSize() != 16 {
		t.Errorf("dict size = %d, want 16", seg.DictSize())
	}
}

// TestDictRawThresholdBoundary drives buildSegment to both sides of the
// dict-vs-raw decision: low-cardinality strings pick the dictionary, and
// all-distinct strings (where the dictionary would store every value AND a
// code per row) pick raw.
func TestDictRawThresholdBoundary(t *testing.T) {
	build := func(distinct, n int) Encoding {
		rows := make([][]value.Value, n)
		for i := range rows {
			rows[i] = []value.Value{value.NewString(fmt.Sprintf("value-%06d", i%distinct))}
		}
		p, err := BuildProjection("b", []string{"s"}, []value.Kind{value.KindString}, nil, rows)
		if err != nil {
			t.Fatal(err)
		}
		seg, _ := p.Segment("s")
		return seg.Encoding
	}
	if enc := build(16, 4096); enc != EncodingDict {
		t.Errorf("low-cardinality column encoded %v, want DICT", enc)
	}
	if enc := build(4096, 4096); enc != EncodingRaw {
		t.Errorf("all-distinct column encoded %v, want RAW", enc)
	}
}

// TestSingleRunRLEColumn: a column holding one value everywhere is a single
// RLE run, selects everything in O(1) runs, and scans as a Const vector.
func TestSingleRunRLEColumn(t *testing.T) {
	const n = 5000
	rows := make([][]value.Value, n)
	for i := range rows {
		rows[i] = []value.Value{value.NewInt(7), value.NewInt(int64(i))}
	}
	p, err := BuildProjection("one", []string{"k", "v"},
		[]value.Kind{value.KindInt, value.KindInt}, []string{"k"}, rows)
	if err != nil {
		t.Fatal(err)
	}
	seg, _ := p.Segment("k")
	if seg.Encoding != EncodingRLE || len(seg.Runs()) != 1 {
		t.Fatalf("constant column: encoding %v with %d runs, want RLE with 1", seg.Encoding, len(seg.Runs()))
	}
	ranges, err := p.SelectRange("k", value.NewInt(7), value.NewInt(7), true, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranges) != 1 || ranges[0].Len() != n {
		t.Fatalf("single-run selection = %v", ranges)
	}
	scan, err := NewProjectionScan(p, []string{"k"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := scan.Open(); err != nil {
		t.Fatal(err)
	}
	b, ok, err := scan.NextBatch()
	if err != nil || !ok {
		t.Fatalf("NextBatch: ok=%v err=%v", ok, err)
	}
	if enc := b.Cols[0].Encoding(); enc != vector.Const {
		t.Errorf("single-run window scanned as %v vector, want const", enc)
	}
	scan.Close()
}

// TestProjectionScanEmpty: scanning an empty projection terminates
// immediately on both protocols.
func TestProjectionScanEmpty(t *testing.T) {
	p, err := BuildProjection("e", []string{"a"}, []value.Kind{value.KindInt}, []string{"a"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	scan, err := NewProjectionScan(p, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := exec.DrainBatches(scan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("empty projection scan produced %d rows", len(rows))
	}
	rows, err = exec.Drain(exec.AsRowOperator(scan))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("empty projection row scan produced %d rows", len(rows))
	}
	if _, err := NewProjectionScan(p, []string{"missing"}, false); err == nil {
		t.Error("scan over a missing column should fail")
	}
}

// TestProjectionScanMatchesValue: the batch scan's vectors agree with
// Value(pos) for every encoding, window by window, and the compressed
// encodings survive the window slicing (RLE segment -> RLE/Const vectors,
// dict segment -> Dict vectors, raw -> Flat).
func TestProjectionScanMatchesValue(t *testing.T) {
	p := buildD1Like(t, 5000)
	scan, err := NewProjectionScan(p, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := scan.Open(); err != nil {
		t.Fatal(err)
	}
	defer scan.Close()
	sawCompressed := false
	pos := int64(1)
	for {
		b, ok, err := scan.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		for i := 0; i < b.NumRows(); i++ {
			row := b.Row(i)
			for c, col := range p.Columns {
				seg, _ := p.Segment(col)
				if want := seg.Value(pos + int64(i)); value.Compare(row[c], want) != 0 {
					t.Fatalf("position %d column %s: scan=%v Value=%v", pos+int64(i), col, row[c], want)
				}
			}
		}
		for c := range b.Cols {
			if b.Cols[c].Encoding() != vector.Flat {
				sawCompressed = true
			}
		}
		pos += int64(b.NumRows())
	}
	if pos-1 != p.NumRows {
		t.Fatalf("scan covered %d rows, want %d", pos-1, p.NumRows)
	}
	if !sawCompressed {
		t.Error("compressed projection scan emitted only flat vectors")
	}
}

func TestEncodingString(t *testing.T) {
	if EncodingRLE.String() != "RLE" || EncodingDict.String() != "DICT" || EncodingRaw.String() != "RAW" {
		t.Error("encoding names wrong")
	}
	if Encoding(9).String() == "" {
		t.Error("unknown encoding should still render")
	}
}

func TestCompressionBeatsRowStoreFootprint(t *testing.T) {
	// The whole point of the ColOpt baseline: the compressed projection is a
	// small fraction of the row representation.
	p := buildD1Like(t, 30000)
	var rowBytes int64
	rng := rand.New(rand.NewSource(5))
	base := value.MustParseDate("1995-01-01").Int()
	for i := 0; i < 30000; i++ {
		row := []value.Value{
			value.NewDate(base + int64(i%100)),
			value.NewInt(int64(rng.Intn(50))),
			value.NewFloat(float64(1000+rng.Intn(100000)) / 100),
		}
		rowBytes += int64(value.RowSize(row)) + 9
	}
	if p.TotalCompressedBytes()*2 > rowBytes {
		t.Errorf("projection (%d bytes) should be far smaller than rows (%d bytes)",
			p.TotalCompressedBytes(), rowBytes)
	}
	fmt.Fprintf(testingDiscard{}, "compressed=%d raw=%d\n", p.TotalCompressedBytes(), rowBytes)
}

type testingDiscard struct{}

func (testingDiscard) Write(p []byte) (int, error) { return len(p), nil }
