// Package colstore implements a column-store simulator used as the paper's
// ColOpt baseline: projections stored column by column, each column segment
// compressed with RLE, dictionary or raw encoding, and an accounting of how
// many compressed pages any C-store execution plan would need to read for a
// given query. A small native scanner over the compressed segments doubles
// as a correctness check for the row-store results.
package colstore

import (
	"fmt"
	"math"
	"sort"

	"oldelephant/internal/storage"
	"oldelephant/internal/value"
)

// Encoding identifies how a column segment is compressed.
type Encoding int

// Supported encodings.
const (
	// EncodingRLE stores runs of equal values as (value, count) pairs. It is
	// the encoding the paper's c-tables mirror on the row-store side.
	EncodingRLE Encoding = iota
	// EncodingDict stores a dictionary of distinct values plus bit-packed codes.
	EncodingDict
	// EncodingRaw stores the values back to back with no compression.
	EncodingRaw
)

// String returns the encoding name.
func (e Encoding) String() string {
	switch e {
	case EncodingRLE:
		return "RLE"
	case EncodingDict:
		return "DICT"
	case EncodingRaw:
		return "RAW"
	default:
		return fmt.Sprintf("Encoding(%d)", int(e))
	}
}

// Run is one RLE run: Count repetitions of Value starting at position First
// (1-based, in projection sort order).
type Run struct {
	First int64
	Value value.Value
	Count int64
}

// ColumnSegment is one column of a projection in compressed form.
type ColumnSegment struct {
	Name     string
	Kind     value.Kind
	Encoding Encoding
	NumRows  int64
	// CompressedBytes is the size of the compressed representation; the page
	// count derives from it. For dictionary segments it counts the dictionary
	// plus the bit-packed code array, matching the stored form.
	CompressedBytes int64

	runs []Run         // EncodingRLE
	dict []value.Value // EncodingDict
	// packed holds the dictionary codes bit-packed codeBits per code in
	// little-endian bit order, possibly straddling word boundaries.
	packed   []uint64
	codeBits uint          // EncodingDict: bits per packed code
	raw      []value.Value // EncodingRaw
}

// CodeBits returns the bits per bit-packed dictionary code (0 for non-dict
// segments).
func (s *ColumnSegment) CodeBits() uint { return s.codeBits }

// DictSize returns the number of dictionary entries (0 for non-dict segments).
func (s *ColumnSegment) DictSize() int { return len(s.dict) }

// codeAt unpacks the dictionary code of 0-based row pos0.
func (s *ColumnSegment) codeAt(pos0 int64) uint32 {
	bitPos := uint64(pos0) * uint64(s.codeBits)
	word, off := bitPos>>6, bitPos&63
	v := s.packed[word] >> off
	if off+uint64(s.codeBits) > 64 {
		v |= s.packed[word+1] << (64 - off)
	}
	return uint32(v & (1<<s.codeBits - 1))
}

// unpackCodes unpacks the codes of 0-based rows [start, end) into a fresh
// slice. It is how the batch scan materializes a window of a dictionary
// segment without touching the rest.
func (s *ColumnSegment) unpackCodes(start, end int64) []uint32 {
	out := make([]uint32, end-start)
	for i := range out {
		out[i] = s.codeAt(start + int64(i))
	}
	return out
}

// packCodes bit-packs codes at bits per code.
func packCodes(codes []uint32, bits uint) []uint64 {
	packed := make([]uint64, (uint64(len(codes))*uint64(bits)+63)/64+1)
	for i, c := range codes {
		bitPos := uint64(i) * uint64(bits)
		word, off := bitPos>>6, bitPos&63
		packed[word] |= uint64(c) << off
		if off+uint64(bits) > 64 {
			packed[word+1] |= uint64(c) >> (64 - off)
		}
	}
	return packed
}

// Pages returns the number of storage pages the compressed segment occupies.
func (s *ColumnSegment) Pages() int64 {
	pages := (s.CompressedBytes + storage.PageSize - 1) / storage.PageSize
	if pages < 1 {
		pages = 1
	}
	return pages
}

// Runs returns the RLE runs (nil for non-RLE segments).
func (s *ColumnSegment) Runs() []Run { return s.runs }

// runIndexAt returns the index of the run covering 1-based position pos (or
// len(runs) when pos lies past the last run).
func runIndexAt(runs []Run, pos int64) int {
	return sort.Search(len(runs), func(i int) bool { return runs[i].First+runs[i].Count-1 >= pos })
}

// Value returns the value at 1-based position pos.
func (s *ColumnSegment) Value(pos int64) value.Value {
	switch s.Encoding {
	case EncodingRLE:
		i := runIndexAt(s.runs, pos)
		if i < len(s.runs) && pos >= s.runs[i].First {
			return s.runs[i].Value
		}
		return value.Null()
	case EncodingDict:
		if pos < 1 || pos > s.NumRows {
			return value.Null()
		}
		return s.dict[s.codeAt(pos-1)]
	default:
		if pos < 1 || pos > int64(len(s.raw)) {
			return value.Null()
		}
		return s.raw[pos-1]
	}
}

// Projection is a sorted, column-wise stored materialization of an expression
// over base tables — D1, D2 and D4 in the paper.
type Projection struct {
	Name        string
	Columns     []string
	Kinds       []value.Kind
	SortColumns []string
	NumRows     int64
	segments    map[string]*ColumnSegment
}

// valueBytes is the encoded size of a single value.
func valueBytes(v value.Value) int64 {
	return int64(value.RowSize([]value.Value{v})) - 1 // drop the arity byte
}

// BuildProjection sorts rows by sortCols and compresses every column. The
// encoding is chosen per column the way C-stores do: RLE when the column has
// long runs under the projection's sort order, dictionary encoding for
// low-cardinality columns, raw otherwise.
func BuildProjection(name string, columns []string, kinds []value.Kind, sortCols []string, rows [][]value.Value) (*Projection, error) {
	if len(columns) != len(kinds) {
		return nil, fmt.Errorf("colstore: %d columns but %d kinds", len(columns), len(kinds))
	}
	colIndex := make(map[string]int, len(columns))
	for i, c := range columns {
		colIndex[c] = i
	}
	var sortOrds []int
	for _, sc := range sortCols {
		ord, ok := colIndex[sc]
		if !ok {
			return nil, fmt.Errorf("colstore: sort column %q is not in the projection", sc)
		}
		sortOrds = append(sortOrds, ord)
	}
	for _, row := range rows {
		if len(row) != len(columns) {
			return nil, fmt.Errorf("colstore: row has %d values, want %d", len(row), len(columns))
		}
	}
	sorted := make([][]value.Value, len(rows))
	copy(sorted, rows)
	sort.SliceStable(sorted, func(i, j int) bool {
		for _, ord := range sortOrds {
			cmp := value.Compare(sorted[i][ord], sorted[j][ord])
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	p := &Projection{
		Name:        name,
		Columns:     columns,
		Kinds:       kinds,
		SortColumns: sortCols,
		NumRows:     int64(len(sorted)),
		segments:    make(map[string]*ColumnSegment),
	}
	for i, colName := range columns {
		p.segments[colName] = buildSegment(colName, kinds[i], sorted, i)
	}
	return p, nil
}

// buildSegment picks an encoding for one column and materializes it.
func buildSegment(name string, kind value.Kind, sorted [][]value.Value, ord int) *ColumnSegment {
	seg := &ColumnSegment{Name: name, Kind: kind, NumRows: int64(len(sorted))}
	// Compute RLE runs and the distinct count in one pass.
	var runs []Run
	distinct := make(map[string]int)
	var valueBytesTotal int64
	for pos := int64(1); pos <= int64(len(sorted)); pos++ {
		v := sorted[pos-1][ord]
		valueBytesTotal += valueBytes(v)
		key := v.String()
		distinct[key]++
		if len(runs) > 0 && value.Compare(runs[len(runs)-1].Value, v) == 0 {
			runs[len(runs)-1].Count++
			continue
		}
		runs = append(runs, Run{First: pos, Value: v, Count: 1})
	}
	n := int64(len(sorted))
	if n == 0 {
		seg.Encoding = EncodingRaw
		seg.CompressedBytes = 0
		return seg
	}
	// Candidate sizes.
	var runValueBytes int64
	for _, r := range runs {
		runValueBytes += valueBytes(r.Value)
	}
	rleBytes := runValueBytes + int64(len(runs))*4 // value + 32-bit count per run
	var dictValueBytes int64
	for k := range distinct {
		dictValueBytes += int64(len(k)) + 2
	}
	bits := int64(1)
	for (int64(1) << bits) < int64(len(distinct)) {
		bits++
	}
	dictBytes := dictValueBytes + (n*bits+7)/8
	rawBytes := valueBytesTotal

	min := rleBytes
	seg.Encoding = EncodingRLE
	if dictBytes < min {
		min = dictBytes
		seg.Encoding = EncodingDict
	}
	if rawBytes < min {
		min = rawBytes
		seg.Encoding = EncodingRaw
	}
	seg.CompressedBytes = min
	switch seg.Encoding {
	case EncodingRLE:
		seg.runs = runs
	case EncodingDict:
		dictVals := make([]value.Value, 0, len(distinct))
		seen := make(map[string]uint32)
		codes := make([]uint32, n)
		for i := int64(0); i < n; i++ {
			v := sorted[i][ord]
			k := v.String()
			code, ok := seen[k]
			if !ok {
				code = uint32(len(dictVals))
				seen[k] = code
				dictVals = append(dictVals, v)
			}
			codes[i] = code
		}
		seg.dict = dictVals
		seg.codeBits = uint(bits)
		seg.packed = packCodes(codes, seg.codeBits)
	case EncodingRaw:
		vals := make([]value.Value, n)
		for i := int64(0); i < n; i++ {
			vals[i] = sorted[i][ord]
		}
		seg.raw = vals
	}
	return seg
}

// Segment returns a column segment by name.
func (p *Projection) Segment(col string) (*ColumnSegment, error) {
	s, ok := p.segments[col]
	if !ok {
		return nil, fmt.Errorf("colstore: projection %q has no column %q", p.Name, col)
	}
	return s, nil
}

// TotalCompressedBytes is the size of all segments.
func (p *Projection) TotalCompressedBytes() int64 {
	var total int64
	for _, s := range p.segments {
		total += s.CompressedBytes
	}
	return total
}

// TotalPages is the page count of all segments.
func (p *Projection) TotalPages() int64 {
	var total int64
	for _, s := range p.segments {
		total += s.Pages()
	}
	return total
}

// LeadingRangeFraction returns the fraction of the projection's rows whose
// leading sort column lies in [lo, hi] (NULL bounds are open; bounds are
// interpreted per the inclusive flags). Because the projection is sorted on
// that column, the qualifying rows are contiguous, which is what makes the
// ColOpt accounting per-column proportional.
func (p *Projection) LeadingRangeFraction(lo, hi value.Value, loIncl, hiIncl bool) (float64, error) {
	if len(p.SortColumns) == 0 {
		return 1, fmt.Errorf("colstore: projection %q has no sort columns", p.Name)
	}
	seg, err := p.Segment(p.SortColumns[0])
	if err != nil {
		return 1, err
	}
	if p.NumRows == 0 {
		return 0, nil
	}
	if seg.Encoding != EncodingRLE {
		// Fall back to scanning positions (dictionary/raw leading columns are
		// rare: the leading sort column always has runs).
		var count int64
		for pos := int64(1); pos <= seg.NumRows; pos++ {
			if inRange(seg.Value(pos), lo, hi, loIncl, hiIncl) {
				count++
			}
		}
		return float64(count) / float64(p.NumRows), nil
	}
	var count int64
	for _, r := range seg.runs {
		if inRange(r.Value, lo, hi, loIncl, hiIncl) {
			count += r.Count
		}
	}
	return float64(count) / float64(p.NumRows), nil
}

func inRange(v, lo, hi value.Value, loIncl, hiIncl bool) bool {
	if !lo.IsNull() {
		cmp := value.Compare(v, lo)
		if cmp < 0 || (cmp == 0 && !loIncl) {
			return false
		}
	}
	if !hi.IsNull() {
		cmp := value.Compare(v, hi)
		if cmp > 0 || (cmp == 0 && !hiIncl) {
			return false
		}
	}
	return true
}

// ColOptPages returns the number of compressed pages any C-store plan must
// read to fetch `fraction` of each of the given columns. This is the paper's
// ColOpt lower bound: no filtering, grouping or aggregation is charged.
func (p *Projection) ColOptPages(cols []string, fraction float64) (int64, error) {
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 1 {
		fraction = 1
	}
	var total int64
	for _, c := range cols {
		seg, err := p.Segment(c)
		if err != nil {
			return 0, err
		}
		pages := int64(math.Ceil(float64(seg.Pages()) * fraction))
		if pages < 1 && fraction > 0 {
			pages = 1
		}
		total += pages
	}
	return total, nil
}

// ColumnIndex returns the position of a column in the projection, or -1.
func (p *Projection) ColumnIndex(col string) int {
	for i, c := range p.Columns {
		if c == col {
			return i
		}
	}
	return -1
}
