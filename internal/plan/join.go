package plan

import (
	"fmt"
	"strings"

	"oldelephant/internal/catalog"
	"oldelephant/internal/exec"
	"oldelephant/internal/expr"
	"oldelephant/internal/sql"
)

// joinedRelation is the running result of left-deep join planning.
type joinedRelation struct {
	op       exec.Operator
	sc       *scope
	ordering []int
	estRows  float64
	desc     string
	names    map[string]bool // source names included so far
}

// bandBound is one side of an index-seekable join constraint on the inner
// table's leading key column, expressed over the outer row.
type bandBound struct {
	loExpr, hiExpr sql.Expr
	loIncl, hiIncl bool
	equality       bool
}

// joinSources combines the planned FROM sources left to right, choosing a
// join algorithm per step:
//
//   - an index-nested-loop join when a join conjunct constrains the leading
//     key column of the next source's clustered or secondary index with
//     bounds computed from the rows seen so far (this is the band join the
//     paper's c-table rewritings rely on), and either the predicate is a
//     range (hash joins cannot handle it) or the outer is estimated to be
//     small — or the query hints OPTION(LOOP JOIN);
//   - a hash join for equality predicates (OPTION(HASH JOIN) forces it);
//   - a merge join when hinted via OPTION(MERGE JOIN), sorting inputs as needed;
//   - a nested-loop join as the fallback.
func (p *Planner) joinSources(sources []*plannedSource, joinConjuncts []sql.Expr, hints []string) (*joinedRelation, error) {
	cur := &joinedRelation{
		op:       sources[0].op,
		sc:       sources[0].sc,
		ordering: sources[0].ordering,
		estRows:  sources[0].estRows,
		desc:     sources[0].desc,
		names:    map[string]bool{sources[0].name: true},
	}
	consumed := make([]bool, len(joinConjuncts))
	for i := 1; i < len(sources); i++ {
		s := sources[i]
		// Conjuncts that become available once s joins the relation.
		var avail []sql.Expr
		var availIdx []int
		for ci, c := range joinConjuncts {
			if consumed[ci] {
				continue
			}
			srcs := p.conjunctSources(c, sources)
			if !srcs[s.name] {
				continue
			}
			ok := true
			for name := range srcs {
				if name != s.name && !cur.names[name] {
					ok = false
					break
				}
			}
			if ok {
				avail = append(avail, c)
				availIdx = append(availIdx, ci)
			}
		}
		next, err := p.joinPair(cur, s, avail, hints)
		if err != nil {
			return nil, err
		}
		for _, ci := range availIdx {
			consumed[ci] = true
		}
		next.names = cur.names
		next.names[s.name] = true
		cur = next
	}
	// Any conjunct not yet consumed must now be resolvable over the full row.
	var leftovers []sql.Expr
	for ci, c := range joinConjuncts {
		if !consumed[ci] {
			leftovers = append(leftovers, c)
		}
	}
	if len(leftovers) > 0 {
		pred, err := bindConjuncts(leftovers, cur.sc)
		if err != nil {
			return nil, err
		}
		cur.op = exec.NewFilter(cur.op, pred)
		cur.desc = "Filter(" + cur.desc + ")"
	}
	return cur, nil
}

// conjunctSources resolves which planned sources a conjunct references, using
// the per-source scopes (aliases and column names).
func (p *Planner) conjunctSources(c sql.Expr, sources []*plannedSource) map[string]bool {
	bySource := make(map[string]*scope, len(sources))
	for _, s := range sources {
		bySource[s.name] = s.sc
	}
	return exprSources(c, bySource)
}

// joinPair joins the running relation with the next source.
func (p *Planner) joinPair(cur *joinedRelation, s *plannedSource, avail []sql.Expr, hints []string) (*joinedRelation, error) {
	combined := cur.sc.concat(s.sc)

	// Equality keys over (cur, s). Conjuncts consumed as hash-join keys are
	// excluded from the hash-join residual: the typed-key match enforces the
	// identical SQL equality (NULL keys never match inside the operators), so
	// re-evaluating them per matched row would only burn the probe hot path.
	var leftKeys, rightKeys []int
	keyConjunct := make([]bool, len(avail))
	for ci, c := range avail {
		be, ok := c.(*sql.BinExpr)
		if !ok || be.Op != "=" {
			continue
		}
		lRef, lOK := be.L.(*sql.ColRef)
		rRef, rOK := be.R.(*sql.ColRef)
		if !lOK || !rOK {
			continue
		}
		if cur.sc.has(lRef) && s.sc.has(rRef) {
			lo, _ := cur.sc.resolve(lRef)
			ro, _ := s.sc.resolve(rRef)
			leftKeys = append(leftKeys, lo)
			rightKeys = append(rightKeys, ro)
			keyConjunct[ci] = true
		} else if cur.sc.has(rRef) && s.sc.has(lRef) {
			lo, _ := cur.sc.resolve(rRef)
			ro, _ := s.sc.resolve(lRef)
			leftKeys = append(leftKeys, lo)
			rightKeys = append(rightKeys, ro)
			keyConjunct[ci] = true
		}
	}
	var hashResidualAST []sql.Expr
	for ci, c := range avail {
		if !keyConjunct[ci] {
			hashResidualAST = append(hashResidualAST, c)
		}
	}

	// Index-nested-loop candidacy with s as the inner side.
	band, bandIdx := p.findBandAccess(cur, s, avail)

	overhead := p.Catalog.TupleOverhead()
	forceLoop := hasHint(hints, "LOOP JOIN")
	forceHash := hasHint(hints, "HASH JOIN")
	forceMerge := hasHint(hints, "MERGE JOIN")

	useINL := false
	if band != nil && !forceHash && !forceMerge {
		if forceLoop {
			useINL = true
		} else if !band.equality {
			// Range (band) predicates cannot be hash- or merge-joined.
			useINL = true
		} else if s.table != nil {
			innerPages := s.table.Stats.EstimatedDataPages(overhead)
			if cur.estRows*4 < innerPages {
				useINL = true
			}
		}
	}

	if useINL {
		var idx *catalog.Index
		if bandIdx != nil && !bandIdx.Clustered {
			idx = bandIdx
		}
		loExprs, hiExprs, err := bindBandBounds(band, cur.sc)
		if err != nil {
			return nil, err
		}
		spec := exec.InnerSeekSpec{
			Table:   s.table,
			Index:   idx,
			LoExprs: loExprs,
			HiExprs: hiExprs,
			LoIncl:  band.loIncl,
			HiIncl:  band.hiIncl,
			Cols:    s.tableOrds,
		}
		// Residual: every available conjunct plus the inner table's own
		// single-table predicates (the planned access path of s is bypassed).
		residualAST := append(append([]sql.Expr(nil), avail...), s.pushed...)
		residual, err := bindConjuncts(residualAST, combined)
		if err != nil {
			return nil, err
		}
		join, err := exec.NewIndexNestedLoopJoin(cur.op, spec, residual)
		if err != nil {
			return nil, err
		}
		est := cur.estRows * 10
		if band.equality {
			est = cur.estRows * joinFanout(s)
		}
		target := "clustered"
		if idx != nil {
			target = idx.Name
		}
		return &joinedRelation{
			op:       join,
			sc:       combined,
			ordering: cur.ordering, // outer order is preserved
			estRows:  est,
			desc:     fmt.Sprintf("IndexNLJoin(%s, %s via %s)", cur.desc, s.table.Name, target),
		}, nil
	}

	if forceMerge && len(leftKeys) > 0 {
		leftOp, leftOrdered := cur.op, orderedOnPrefix(cur.ordering, leftKeys)
		if !leftOrdered {
			leftOp = exec.NewSort(leftOp, sortKeysFor(leftKeys))
		}
		rightOp, rightOrdered := s.op, orderedOnPrefix(s.ordering, rightKeys)
		if !rightOrdered {
			rightOp = exec.NewSort(rightOp, sortKeysFor(rightKeys))
		}
		residual, err := p.joinResidual(avail, combined)
		if err != nil {
			return nil, err
		}
		join, err := exec.NewMergeJoin(leftOp, rightOp, leftKeys, rightKeys, residual)
		if err != nil {
			return nil, err
		}
		return &joinedRelation{
			op:       join,
			sc:       combined,
			ordering: leftKeys,
			estRows:  equiJoinEstimate(cur, s),
			desc:     fmt.Sprintf("MergeJoin(%s, %s)", cur.desc, s.desc),
		}, nil
	}

	if len(leftKeys) > 0 {
		residual, err := p.joinResidual(hashResidualAST, combined)
		if err != nil {
			return nil, err
		}
		// The hash-join algorithm has two executors: the batch-native
		// VectorizedHashJoin (typed keys, batch probe, morsel-parallel build)
		// for vectorized engines, and the row-at-a-time HashJoin kept as the
		// row engine's oracle. Same algorithm, same plan description.
		var join exec.Operator
		if p.DisableVectorized {
			join, err = exec.NewHashJoin(cur.op, s.op, leftKeys, rightKeys, residual)
		} else {
			join, err = exec.NewVectorizedHashJoin(cur.op, s.op, leftKeys, rightKeys, residual)
		}
		if err != nil {
			return nil, err
		}
		return &joinedRelation{
			op:       join,
			sc:       combined,
			ordering: cur.ordering, // probe side streams in order
			estRows:  equiJoinEstimate(cur, s),
			desc:     fmt.Sprintf("HashJoin(%s, %s)", cur.desc, s.desc),
		}, nil
	}

	// Fallback: nested loops with the full predicate.
	pred, err := bindConjuncts(avail, combined)
	if err != nil {
		return nil, err
	}
	join := exec.NewNestedLoopJoin(cur.op, s.op, pred)
	return &joinedRelation{
		op:       join,
		sc:       combined,
		ordering: cur.ordering,
		estRows:  cur.estRows * s.estRows,
		desc:     fmt.Sprintf("NestedLoopJoin(%s, %s)", cur.desc, s.desc),
	}, nil
}

// joinResidual binds conjuncts as a residual predicate over the combined row.
// Hash joins receive only the conjuncts not consumed as typed keys (the key
// match enforces equality exactly, NULLs included); merge joins keep the full
// list, which re-checks equality harmlessly on that hint-only path.
func (p *Planner) joinResidual(avail []sql.Expr, combined *scope) (expr.Expr, error) {
	return bindConjuncts(avail, combined)
}

// joinFanout estimates the average number of inner matches per outer row for
// an equality INL join.
func joinFanout(s *plannedSource) float64 {
	if s.table == nil || s.table.Stats.RowCount == 0 {
		return 1
	}
	lead := 0
	if s.table.IsClustered() {
		lead = s.table.Clustered.KeyColumns[0]
	}
	d := float64(s.table.Stats.DistinctCount(lead))
	if d <= 0 {
		return 1
	}
	f := float64(s.table.Stats.RowCount) / d
	if f < 1 {
		return 1
	}
	return f
}

func equiJoinEstimate(cur *joinedRelation, s *plannedSource) float64 {
	est := cur.estRows
	if s.estRows > est {
		est = s.estRows
	}
	return est
}

// orderedOnPrefix reports whether ordering starts with exactly the given keys.
func orderedOnPrefix(ordering, keys []int) bool {
	if len(ordering) < len(keys) {
		return false
	}
	for i, k := range keys {
		if ordering[i] != k {
			return false
		}
	}
	return true
}

// findBandAccess looks for join conjuncts that constrain the leading key
// column of one of s's indexes (clustered first, then secondary) with bounds
// computable from the current relation's row. It returns the collected bound
// and the index to probe (nil index result means no band access is possible;
// a returned *catalog.Index with Clustered=true represents the clustered index).
func (p *Planner) findBandAccess(cur *joinedRelation, s *plannedSource, avail []sql.Expr) (*bandBound, *catalog.Index) {
	if s.table == nil {
		return nil, nil
	}
	var candidates []*catalog.Index
	if s.table.IsClustered() {
		candidates = append(candidates, s.table.Clustered)
	}
	candidates = append(candidates, s.table.Secondary...)
	for _, idx := range candidates {
		lead := idx.KeyColumns[0]
		b := p.collectBandBound(cur, s, avail, lead)
		if b != nil {
			return b, idx
		}
	}
	return nil, nil
}

// collectBandBound gathers lower/upper bounds on s.<leadOrd> from the
// available conjuncts, where the bounding expressions reference only columns
// of the current relation (or constants).
func (p *Planner) collectBandBound(cur *joinedRelation, s *plannedSource, avail []sql.Expr, leadOrd int) *bandBound {
	isInnerLead := func(e sql.Expr) bool {
		ref, ok := e.(*sql.ColRef)
		if !ok {
			return false
		}
		if ref.Table != "" && !strings.EqualFold(ref.Table, s.name) {
			return false
		}
		if !s.sc.has(ref) {
			return false
		}
		return s.table.ColumnIndex(ref.Column) == leadOrd
	}
	outerOnly := func(e sql.Expr) bool {
		bySource := map[string]*scope{s.name: s.sc, "": cur.sc}
		srcs := exprSources(e, map[string]*scope{s.name: s.sc})
		if srcs[s.name] {
			return false
		}
		_ = bySource
		// Must bind against the current scope.
		_, err := bindExpr(e, cur.sc)
		return err == nil
	}
	b := &bandBound{}
	found := false
	for _, c := range avail {
		switch e := c.(type) {
		case *sql.BetweenExpr:
			if e.Not || !isInnerLead(e.E) || !outerOnly(e.Lo) || !outerOnly(e.Hi) {
				continue
			}
			b.loExpr, b.hiExpr = e.Lo, e.Hi
			b.loIncl, b.hiIncl = true, true
			found = true
		case *sql.BinExpr:
			op := e.Op
			var inner, outer sql.Expr
			if isInnerLead(e.L) && outerOnly(e.R) {
				inner, outer = e.L, e.R
			} else if isInnerLead(e.R) && outerOnly(e.L) {
				inner, outer = e.R, e.L
				op = flipOp(op)
			} else {
				continue
			}
			_ = inner
			switch op {
			case "=":
				b.loExpr, b.hiExpr = outer, outer
				b.loIncl, b.hiIncl = true, true
				b.equality = true
				found = true
			case ">":
				b.loExpr, b.loIncl = outer, false
				found = true
			case ">=":
				b.loExpr, b.loIncl = outer, true
				found = true
			case "<":
				b.hiExpr, b.hiIncl = outer, false
				found = true
			case "<=":
				b.hiExpr, b.hiIncl = outer, true
				found = true
			}
		}
	}
	if !found {
		return nil
	}
	return b
}

// bindBandBounds binds the bound expressions of a band access over the outer scope.
func bindBandBounds(b *bandBound, outer *scope) (lo, hi []expr.Expr, err error) {
	if b.loExpr != nil {
		e, err := bindExpr(b.loExpr, outer)
		if err != nil {
			return nil, nil, err
		}
		lo = []expr.Expr{e}
	}
	if b.hiExpr != nil {
		e, err := bindExpr(b.hiExpr, outer)
		if err != nil {
			return nil, nil, err
		}
		hi = []expr.Expr{e}
	}
	return lo, hi, nil
}
