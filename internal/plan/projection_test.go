package plan

import (
	"testing"

	"oldelephant/internal/exec"
)

// accessCols digs through the single-input operator chain of a plan and
// returns the projected column set of the access path at the bottom.
func accessCols(t *testing.T, op exec.Operator) []int {
	t.Helper()
	for {
		switch o := op.(type) {
		case *exec.SeqScan:
			return o.Cols
		case *exec.ClusteredSeek:
			return o.Cols
		case *exec.IndexSeek:
			return o.Cols
		case *exec.Filter:
			op = o.Input
		case *exec.Project:
			op = o.Input
		case *exec.Limit:
			op = o.Input
		case *exec.Sort:
			op = o.Input
		case *exec.StreamAggregate:
			op = o.Input
		case *exec.HashAggregate:
			op = o.Input
		case *exec.RowSource:
			return accessCols(t, exec.AsRowOperator(o.Input))
		default:
			t.Fatalf("unexpected operator %T while walking to the access path", op)
			return nil
		}
	}
}

// TestProjectionPushdownMinimalCols pins that every access path receives the
// minimal base-table column set a query touches — the contract the projected
// tuple decode depends on: a scan that is handed all ordinals decodes the
// whole tuple and the skip-decode machinery never fires.
func TestProjectionPushdownMinimalCols(t *testing.T) {
	c := newTestCatalog(t)
	cases := []struct {
		query string
		want  int
	}{
		// SeqScan: kind (predicate) + amount (aggregate) of 4 columns.
		{"SELECT SUM(amount) FROM events WHERE kind = 'click'", 2},
		// ClusteredSeek: user_id and amount are output, and day stays
		// projected because the planner keeps the pushed range's predicate as
		// a residual filter — 3 of 4 columns, never the whole row.
		{"SELECT user_id, amount FROM events WHERE day = DATE '2008-03-01'", 3},
		// Covering IndexSeek: equality on user_id, amount included.
		{"SELECT user_id, amount FROM events WHERE user_id = 7", 2},
		// Single-column aggregate over a scan.
		{"SELECT MIN(amount) FROM events", 1},
	}
	for _, tc := range cases {
		p := planFor(t, c, tc.query)
		cols := accessCols(t, p.Root)
		if len(cols) != tc.want {
			t.Errorf("%q: access path projects %d columns %v, want %d\nplan: %s",
				tc.query, len(cols), cols, tc.want, p.Explain)
		}
	}
}
