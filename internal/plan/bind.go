// Package plan turns parsed SQL statements into executable operator trees.
// It performs name resolution, access-path selection (scan vs. clustered
// seek vs. secondary-index seek), join planning (hash, merge, nested-loop
// and band-capable index-nested-loop joins), aggregation planning (hash vs.
// stream) and final projection/ordering, guided by simple cardinality
// estimates from catalog statistics and by query hints.
package plan

import (
	"fmt"
	"strings"

	"oldelephant/internal/expr"
	"oldelephant/internal/sql"
	"oldelephant/internal/value"
)

// scopeColumn is one column visible while binding expressions.
type scopeColumn struct {
	Qualifier string // source alias (lower case), may be empty
	Name      string // column name (lower case)
	Kind      value.Kind
}

// scope is an ordered list of visible columns; ordinals index rows produced
// by the operator the scope describes.
type scope struct {
	cols []scopeColumn
}

func (s *scope) add(qualifier, name string, kind value.Kind) {
	s.cols = append(s.cols, scopeColumn{
		Qualifier: strings.ToLower(qualifier),
		Name:      strings.ToLower(name),
		Kind:      kind,
	})
}

// concat returns a scope holding this scope's columns followed by o's.
func (s *scope) concat(o *scope) *scope {
	out := &scope{cols: make([]scopeColumn, 0, len(s.cols)+len(o.cols))}
	out.cols = append(out.cols, s.cols...)
	out.cols = append(out.cols, o.cols...)
	return out
}

// resolve finds the ordinal of a column reference. Unqualified names must be
// unambiguous across the scope.
func (s *scope) resolve(ref *sql.ColRef) (int, error) {
	q := strings.ToLower(ref.Table)
	n := strings.ToLower(ref.Column)
	found := -1
	for i, c := range s.cols {
		if c.Name != n {
			continue
		}
		if q != "" && c.Qualifier != q {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("plan: ambiguous column reference %q", ref.String())
		}
		found = i
	}
	if found < 0 {
		return 0, fmt.Errorf("plan: unknown column %q", ref.String())
	}
	return found, nil
}

// has reports whether the reference resolves in this scope unambiguously.
func (s *scope) has(ref *sql.ColRef) bool {
	_, err := s.resolve(ref)
	return err == nil
}

// bindExpr converts an AST expression to a bound executable expression over
// the scope. Aggregate function calls are rejected; they are handled by the
// aggregation planner with a dedicated post-aggregation scope.
func bindExpr(e sql.Expr, sc *scope) (expr.Expr, error) {
	switch t := e.(type) {
	case *sql.ColRef:
		ord, err := sc.resolve(t)
		if err != nil {
			return nil, err
		}
		return expr.NewColumn(ord, t.String()), nil
	case *sql.Literal:
		return expr.NewConst(t.Val), nil
	case *sql.BinExpr:
		l, err := bindExpr(t.L, sc)
		if err != nil {
			return nil, err
		}
		r, err := bindExpr(t.R, sc)
		if err != nil {
			return nil, err
		}
		op, err := binaryOp(t.Op)
		if err != nil {
			return nil, err
		}
		l, r = coerceComparison(op, l, r, sc)
		return expr.NewBinary(op, l, r), nil
	case *sql.NotExpr:
		inner, err := bindExpr(t.E, sc)
		if err != nil {
			return nil, err
		}
		return &expr.Not{E: inner}, nil
	case *sql.BetweenExpr:
		v, err := bindExpr(t.E, sc)
		if err != nil {
			return nil, err
		}
		lo, err := bindExpr(t.Lo, sc)
		if err != nil {
			return nil, err
		}
		hi, err := bindExpr(t.Hi, sc)
		if err != nil {
			return nil, err
		}
		_, lo = coercePair(v, lo, sc)
		_, hi = coercePair(v, hi, sc)
		b := &expr.Between{E: v, Lo: lo, Hi: hi}
		if t.Not {
			return &expr.Not{E: b}, nil
		}
		return b, nil
	case *sql.InExpr:
		v, err := bindExpr(t.E, sc)
		if err != nil {
			return nil, err
		}
		list := make([]expr.Expr, len(t.List))
		for i, item := range t.List {
			bi, err := bindExpr(item, sc)
			if err != nil {
				return nil, err
			}
			_, bi = coercePair(v, bi, sc)
			list[i] = bi
		}
		in := &expr.InList{E: v, List: list}
		if t.Not {
			return &expr.Not{E: in}, nil
		}
		return in, nil
	case *sql.IsNullExpr:
		v, err := bindExpr(t.E, sc)
		if err != nil {
			return nil, err
		}
		return &expr.IsNull{E: v, Negate: t.Not}, nil
	case *sql.FuncCall:
		return nil, fmt.Errorf("plan: aggregate or function %q not allowed in this context", t.Name)
	default:
		return nil, fmt.Errorf("plan: unsupported expression %T", e)
	}
}

func binaryOp(op string) (expr.BinaryOp, error) {
	switch op {
	case "+":
		return expr.OpAdd, nil
	case "-":
		return expr.OpSub, nil
	case "*":
		return expr.OpMul, nil
	case "/":
		return expr.OpDiv, nil
	case "=":
		return expr.OpEq, nil
	case "<>", "!=":
		return expr.OpNe, nil
	case "<":
		return expr.OpLt, nil
	case "<=":
		return expr.OpLe, nil
	case ">":
		return expr.OpGt, nil
	case ">=":
		return expr.OpGe, nil
	case "AND":
		return expr.OpAnd, nil
	case "OR":
		return expr.OpOr, nil
	default:
		return 0, fmt.Errorf("plan: unsupported operator %q", op)
	}
}

// coerceComparison upgrades string literals compared against DATE columns to
// date constants, so `l_shipdate > '1995-06-01'` behaves like the DATE form.
func coerceComparison(op expr.BinaryOp, l, r expr.Expr, sc *scope) (expr.Expr, expr.Expr) {
	if !op.IsComparison() {
		return l, r
	}
	l2, r2 := coercePair(l, r, sc)
	r3, l3 := coercePair(r2, l2, sc)
	return l3, r3
}

// coercePair coerces the constant `c` to DATE when `col` is a DATE column and
// the constant is a parseable string. Returns possibly-updated (col, c).
func coercePair(col, c expr.Expr, sc *scope) (expr.Expr, expr.Expr) {
	colRef, okCol := col.(*expr.Column)
	constRef, okConst := c.(*expr.Const)
	if !okCol || !okConst {
		return col, c
	}
	if colRef.Index >= len(sc.cols) || sc.cols[colRef.Index].Kind != value.KindDate {
		return col, c
	}
	if constRef.Val.Kind != value.KindString {
		return col, c
	}
	if d, err := value.ParseDate(constRef.Val.S); err == nil {
		return col, expr.NewConst(d)
	}
	return col, c
}

// exprSources returns the set of source names (lower-cased aliases)
// referenced by an AST expression, resolving unqualified references through
// the provided per-source scopes. Unknown columns resolve to no source and
// are reported by later binding.
func exprSources(e sql.Expr, bySource map[string]*scope) map[string]bool {
	out := make(map[string]bool)
	collectSources(e, bySource, out)
	return out
}

func collectSources(e sql.Expr, bySource map[string]*scope, out map[string]bool) {
	switch t := e.(type) {
	case nil:
	case *sql.ColRef:
		if t.Table != "" {
			out[strings.ToLower(t.Table)] = true
			return
		}
		for name, sc := range bySource {
			if sc.has(t) {
				out[name] = true
			}
		}
	case *sql.Literal:
	case *sql.BinExpr:
		collectSources(t.L, bySource, out)
		collectSources(t.R, bySource, out)
	case *sql.NotExpr:
		collectSources(t.E, bySource, out)
	case *sql.BetweenExpr:
		collectSources(t.E, bySource, out)
		collectSources(t.Lo, bySource, out)
		collectSources(t.Hi, bySource, out)
	case *sql.InExpr:
		collectSources(t.E, bySource, out)
		for _, item := range t.List {
			collectSources(item, bySource, out)
		}
	case *sql.IsNullExpr:
		collectSources(t.E, bySource, out)
	case *sql.FuncCall:
		for _, a := range t.Args {
			collectSources(a, bySource, out)
		}
	}
}

// splitConjunctsAST flattens an AST predicate into AND-connected conjuncts.
func splitConjunctsAST(e sql.Expr) []sql.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*sql.BinExpr); ok && b.Op == "AND" {
		return append(splitConjunctsAST(b.L), splitConjunctsAST(b.R)...)
	}
	return []sql.Expr{e}
}

// collectAggregates walks an expression and appends every aggregate function
// call found (in left-to-right order) to the accumulator.
func collectAggregates(e sql.Expr, acc *[]*sql.FuncCall) {
	switch t := e.(type) {
	case nil:
	case *sql.FuncCall:
		if t.IsAggregate() {
			*acc = append(*acc, t)
			return
		}
		for _, a := range t.Args {
			collectAggregates(a, acc)
		}
	case *sql.BinExpr:
		collectAggregates(t.L, acc)
		collectAggregates(t.R, acc)
	case *sql.NotExpr:
		collectAggregates(t.E, acc)
	case *sql.BetweenExpr:
		collectAggregates(t.E, acc)
		collectAggregates(t.Lo, acc)
		collectAggregates(t.Hi, acc)
	case *sql.InExpr:
		collectAggregates(t.E, acc)
		for _, item := range t.List {
			collectAggregates(item, acc)
		}
	case *sql.IsNullExpr:
		collectAggregates(t.E, acc)
	}
}

// hasAggregate reports whether the expression contains an aggregate call.
func hasAggregate(e sql.Expr) bool {
	var acc []*sql.FuncCall
	collectAggregates(e, &acc)
	return len(acc) > 0
}
