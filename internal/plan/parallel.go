package plan

import (
	"oldelephant/internal/exec"
)

// ParallelRowThreshold is the scan cardinality below which parallelization is
// not attempted: small scans finish in well under the cost of spinning up a
// worker pool, and morsel partitioning needs enough rows to balance.
const ParallelRowThreshold = 8192

// Parallelize rewrites a compiled operator tree for morsel-driven execution
// with the given number of workers. It finds pipelines — a partitionable
// scan under a stack of stateless Filter/Project operators, closed by a
// pipeline breaker (aggregate, sort) or by the plan root — and replaces each
// with its parallel form: per-worker pipeline clones over morsels, merged by
// ParallelMerge (row streams, morsel order), partial-aggregate combining
// (Hash/StreamAggregate), or an ordered K-way merge (Sort). Joins and their
// subtrees stay serial: their inputs may be re-opened per outer row, which a
// worker pool must not be.
//
// The rewrite preserves results exactly — merges re-establish serial order,
// so a parallel plan is distinguishable from its serial form only by float
// aggregation rounding (partials fold in morsel order) — and workers <= 1
// returns the tree untouched, byte-for-byte the serial plan. rewrote reports
// whether any pipeline actually went parallel, so callers can annotate the
// plan they display.
func Parallelize(root exec.Operator, workers int) (out exec.Operator, rewrote bool) {
	if workers <= 1 {
		return root, false
	}
	return parallelizeOp(root, workers)
}

func parallelizeOp(op exec.Operator, workers int) (exec.Operator, bool) {
	switch t := op.(type) {
	case *exec.Filter:
		if par, ok := tryParallelPipeline(t, workers); ok {
			return par, true
		}
		return op, rewriteInput(&t.Input, workers)
	case *exec.Project:
		if par, ok := tryParallelPipeline(t, workers); ok {
			return par, true
		}
		return op, rewriteInput(&t.Input, workers)
	case *exec.Limit:
		return op, rewriteInput(&t.Input, workers)
	case *exec.Sort:
		if stack, src, ok := pipelineChain(t.Input); ok {
			if par, ok := exec.NewParallelSort(src, pipelineBuilder(stack), t.Keys, workers); ok {
				return par, true
			}
		}
		return op, rewriteInput(&t.Input, workers)
	case *exec.HashAggregate:
		if stack, src, ok := pipelineChain(t.Input); ok {
			if par, ok := exec.NewParallelHashAggregate(src, pipelineBuilder(stack), t.GroupBy, t.Aggs, workers); ok {
				return par, true
			}
		}
		return op, rewriteInput(&t.Input, workers)
	case *exec.StreamAggregate:
		if stack, src, ok := pipelineChain(t.Input); ok {
			if par, ok := exec.NewParallelStreamAggregate(src, pipelineBuilder(stack), t.GroupBy, t.Aggs, workers); ok {
				return par, true
			}
		}
		return op, rewriteInput(&t.Input, workers)
	default:
		// Joins, scans, values, subquery bridges: leave the subtree serial.
		return op, false
	}
}

// rewriteInput parallelizes a container operator's input in place.
func rewriteInput(input *exec.Operator, workers int) bool {
	out, rewrote := parallelizeOp(*input, workers)
	*input = out
	return rewrote
}

// tryParallelPipeline replaces a bare Filter/Project stack over a
// partitionable scan (no breaker in between) with a ParallelMerge.
func tryParallelPipeline(top exec.Operator, workers int) (exec.Operator, bool) {
	stack, src, ok := pipelineChain(top)
	if !ok {
		return nil, false
	}
	return exec.NewParallelMerge(src, pipelineBuilder(stack), workers)
}

// pipelineChain decomposes op into the stack of stateless operators
// (outermost first) sitting on a partitionable source big enough to bother
// parallelizing. ok is false when the chain bottoms out anywhere else (a
// join, an aggregate, a non-partitionable scan) or below the cardinality
// threshold.
func pipelineChain(op exec.Operator) (stack []exec.Operator, src exec.Morseler, ok bool) {
	for {
		switch t := op.(type) {
		case *exec.Filter:
			stack = append(stack, t)
			op = t.Input
		case *exec.Project:
			stack = append(stack, t)
			op = t.Input
		default:
			m, isMorseler := op.(exec.Morseler)
			if !isMorseler || m.NumScanRows() < ParallelRowThreshold {
				return nil, nil, false
			}
			return stack, m, true
		}
	}
}

// pipelineBuilder returns the PipelineFunc that re-instantiates the stateless
// stack over a morsel. Clones share the (immutable) expression trees but own
// all iteration state.
func pipelineBuilder(stack []exec.Operator) exec.PipelineFunc {
	if len(stack) == 0 {
		return nil
	}
	return func(src exec.BatchOperator) exec.BatchOperator {
		op := exec.AsRowOperator(src)
		for i := len(stack) - 1; i >= 0; i-- {
			switch t := stack[i].(type) {
			case *exec.Filter:
				op = exec.NewFilter(op, t.Pred)
			case *exec.Project:
				op = exec.NewProject(op, t.Exprs, t.Names)
			}
		}
		return exec.AsBatchOperator(op)
	}
}
