package plan

import (
	"oldelephant/internal/exec"
)

// ParallelRowThreshold is the scan cardinality below which parallelization is
// not attempted: small scans finish in well under the cost of spinning up a
// worker pool, and morsel partitioning needs enough rows to balance.
const ParallelRowThreshold = 8192

// Parallelize rewrites a compiled operator tree for morsel-driven execution
// with the given number of workers. It finds pipelines — a partitionable
// scan under a stack of stateless Filter/Project operators and vectorized
// hash joins, closed by a pipeline breaker (aggregate, sort) or by the plan
// root — and replaces each with its parallel form: per-worker pipeline clones
// over morsels, merged by ParallelMerge (row streams, morsel order),
// partial-aggregate combining (Hash/StreamAggregate), or an ordered K-way
// merge (Sort). A vectorized hash join is no longer a breaker: the probe-side
// pipeline parallelizes through it (per-morsel clones share one built hash
// table), and its build side is configured to hash morsel-parallel into
// per-worker partitions merged in morsel order. The row-at-a-time joins
// (NestedLoop, Merge, IndexNestedLoop, and the oracle HashJoin) and their
// subtrees stay serial: their inputs may be re-opened per outer row, which a
// worker pool must not be.
//
// The rewrite preserves results exactly — merges re-establish serial order,
// so a parallel plan is distinguishable from its serial form only by float
// aggregation rounding (partials fold in morsel order) — and workers <= 1
// returns the tree untouched, byte-for-byte the serial plan. rewrote reports
// whether any pipeline or join build actually went parallel, so callers can
// annotate the plan they display.
func Parallelize(root exec.Operator, workers int) (out exec.Operator, rewrote bool) {
	if workers <= 1 {
		return root, false
	}
	builds := configureJoinBuilds(root, workers)
	out, rewrote = parallelizeOp(root, workers)
	return out, rewrote || builds
}

func parallelizeOp(op exec.Operator, workers int) (exec.Operator, bool) {
	switch t := op.(type) {
	case *exec.Filter:
		if par, ok := tryParallelPipeline(t, workers); ok {
			return par, true
		}
		return op, rewriteInput(&t.Input, workers)
	case *exec.Project:
		if par, ok := tryParallelPipeline(t, workers); ok {
			return par, true
		}
		return op, rewriteInput(&t.Input, workers)
	case *exec.Limit:
		return op, rewriteInput(&t.Input, workers)
	case *exec.Sort:
		if stack, src, ok := pipelineChain(t.Input); ok {
			if par, ok := exec.NewParallelSort(src, pipelineBuilder(stack), t.Keys, workers); ok {
				return par, true
			}
		}
		return op, rewriteInput(&t.Input, workers)
	case *exec.HashAggregate:
		if stack, src, ok := pipelineChain(t.Input); ok {
			if par, ok := exec.NewParallelHashAggregate(src, pipelineBuilder(stack), t.GroupBy, t.Aggs, workers); ok {
				return par, true
			}
		}
		return op, rewriteInput(&t.Input, workers)
	case *exec.StreamAggregate:
		if stack, src, ok := pipelineChain(t.Input); ok {
			if par, ok := exec.NewParallelStreamAggregate(src, pipelineBuilder(stack), t.GroupBy, t.Aggs, workers); ok {
				return par, true
			}
		}
		return op, rewriteInput(&t.Input, workers)
	case *exec.VectorizedHashJoin:
		// A join directly under a non-pipeline parent (Limit, another join's
		// build, the root): its own probe pipeline may still parallelize.
		if par, ok := tryParallelPipeline(t, workers); ok {
			return par, true
		}
		return op, rewriteInput(&t.Probe, workers)
	default:
		// Row joins, scans, values, subquery bridges: leave the subtree serial.
		return op, false
	}
}

// containerInput returns the single input of a pass-through container
// operator (Filter/Project/Limit/Sort/aggregates). Tree walks that only need
// to descend — not rewrite per type — share it, so adding a container
// operator means touching one place, not every walk.
func containerInput(op exec.Operator) (exec.Operator, bool) {
	switch t := op.(type) {
	case *exec.Filter:
		return t.Input, true
	case *exec.Project:
		return t.Input, true
	case *exec.Limit:
		return t.Input, true
	case *exec.Sort:
		return t.Input, true
	case *exec.HashAggregate:
		return t.Input, true
	case *exec.StreamAggregate:
		return t.Input, true
	default:
		return nil, false
	}
}

// configureJoinBuilds walks the tree before the pipeline rewrite and asks
// every vectorized hash join to build its hash table morsel-parallel when its
// build side decomposes into a pipeline over a partitionable scan. It runs on
// the original operators, so joins later absorbed into probe-side morsel
// pipelines (whose clones share the original's build state) are configured
// too. It reports whether any build was parallelized.
func configureJoinBuilds(op exec.Operator, workers int) bool {
	if in, ok := containerInput(op); ok {
		return configureJoinBuilds(in, workers)
	}
	t, ok := op.(*exec.VectorizedHashJoin)
	if !ok {
		return false
	}
	found := configureJoinBuilds(t.Probe, workers)
	// Recurse first so joins nested inside the build side configure their
	// own builds, then decompose this join's build pipeline into per-worker
	// partition hashing. A build side that is not a plain pipeline (an
	// aggregate, a derived table) falls back to the general rewrite, so its
	// own scan still parallelizes and the join drains the rewritten operator
	// (ensure reads the Build field at execution time).
	found = configureJoinBuilds(t.Build, workers) || found
	if stack, src, ok := pipelineChain(t.Build); ok {
		t.SetParallelBuild(src, pipelineBuilder(stack), workers)
		found = true
	} else if rewriteInput(&t.Build, workers) {
		found = true
	}
	return found
}

// rewriteInput parallelizes a container operator's input in place.
func rewriteInput(input *exec.Operator, workers int) bool {
	out, rewrote := parallelizeOp(*input, workers)
	*input = out
	return rewrote
}

// tryParallelPipeline replaces a bare Filter/Project stack over a
// partitionable scan (no breaker in between) with a ParallelMerge.
func tryParallelPipeline(top exec.Operator, workers int) (exec.Operator, bool) {
	stack, src, ok := pipelineChain(top)
	if !ok {
		return nil, false
	}
	return exec.NewParallelMerge(src, pipelineBuilder(stack), workers)
}

// pipelineChain decomposes op into the stack of per-morsel-cloneable
// operators (outermost first) sitting on a partitionable source big enough to
// bother parallelizing: stateless Filter/Project operators plus vectorized
// hash joins, whose clones probe one shared build table so the chain descends
// through their probe side. ok is false when the chain bottoms out anywhere
// else (a row join, an aggregate, a non-partitionable scan) or below the
// cardinality threshold.
func pipelineChain(op exec.Operator) (stack []exec.Operator, src exec.Morseler, ok bool) {
	for {
		switch t := op.(type) {
		case *exec.Filter:
			stack = append(stack, t)
			op = t.Input
		case *exec.Project:
			stack = append(stack, t)
			op = t.Input
		case *exec.VectorizedHashJoin:
			stack = append(stack, t)
			op = t.Probe
		default:
			m, isMorseler := op.(exec.Morseler)
			if !isMorseler || m.NumScanRows() < ParallelRowThreshold {
				return nil, nil, false
			}
			return stack, m, true
		}
	}
}

// pipelineBuilder returns the PipelineFunc that re-instantiates the stateless
// stack over a morsel. Clones share the (immutable) expression trees but own
// all iteration state.
func pipelineBuilder(stack []exec.Operator) exec.PipelineFunc {
	if len(stack) == 0 {
		return nil
	}
	return func(src exec.BatchOperator) exec.BatchOperator {
		op := exec.AsRowOperator(src)
		for i := len(stack) - 1; i >= 0; i-- {
			switch t := stack[i].(type) {
			case *exec.Filter:
				op = exec.NewFilter(op, t.Pred)
			case *exec.Project:
				op = exec.NewProject(op, t.Exprs, t.Names)
			case *exec.VectorizedHashJoin:
				// Per-morsel clone over this morsel's probe pipeline; the hash
				// table is built once and shared across all clones.
				op = t.CloneWithProbe(op)
			}
		}
		return exec.AsBatchOperator(op)
	}
}
