package plan

import (
	"fmt"
	"sort"
	"strings"

	"oldelephant/internal/catalog"
	"oldelephant/internal/exec"
	"oldelephant/internal/expr"
	"oldelephant/internal/sql"
	"oldelephant/internal/value"
)

// plannedSource is one FROM entry after access-path selection (or recursive
// planning, for derived tables). Its scope describes the columns it
// contributes to the join row, in operator output order.
type plannedSource struct {
	name      string // alias, lower case
	table     *catalog.Table
	op        exec.Operator
	sc        *scope
	tableOrds []int // base-table ordinal of each contributed column (base tables only)
	ordering  []int // scope ordinals forming the sort-order prefix of the output
	estRows   float64
	desc      string
	// pushed keeps the single-table conjuncts assigned to this source so a
	// join that bypasses the planned access path (index nested loops) can
	// re-apply them as a residual predicate.
	pushed []sql.Expr
}

// colRange is the sargable constraint collected for one column.
type colRange struct {
	lo, hi         value.Value
	loIncl, hiIncl bool
	hasLo, hasHi   bool
	equality       bool
}

// sargableConstraints extracts per-column constant ranges from conjuncts that
// were pushed down to a single base table.
func sargableConstraints(t *catalog.Table, alias string, conjuncts []sql.Expr) map[int]*colRange {
	out := make(map[int]*colRange)
	get := func(ord int) *colRange {
		if r, ok := out[ord]; ok {
			return r
		}
		r := &colRange{}
		out[ord] = r
		return r
	}
	resolveCol := func(e sql.Expr) (int, bool) {
		ref, ok := e.(*sql.ColRef)
		if !ok {
			return 0, false
		}
		if ref.Table != "" && !strings.EqualFold(ref.Table, alias) {
			return 0, false
		}
		ord := t.ColumnIndex(ref.Column)
		return ord, ord >= 0
	}
	literal := func(e sql.Expr, colOrd int) (value.Value, bool) {
		lit, ok := e.(*sql.Literal)
		if !ok {
			return value.Null(), false
		}
		v := lit.Val
		// Strings compared against DATE columns act as dates.
		if t.Columns[colOrd].Kind == value.KindDate && v.Kind == value.KindString {
			if d, err := value.ParseDate(v.S); err == nil {
				v = d
			}
		}
		return v, true
	}
	apply := func(ord int, op string, v value.Value) {
		r := get(ord)
		switch op {
		case "=":
			r.lo, r.hi = v, v
			r.loIncl, r.hiIncl = true, true
			r.hasLo, r.hasHi = true, true
			r.equality = true
		case ">":
			r.lo, r.loIncl, r.hasLo = v, false, true
		case ">=":
			r.lo, r.loIncl, r.hasLo = v, true, true
		case "<":
			r.hi, r.hiIncl, r.hasHi = v, false, true
		case "<=":
			r.hi, r.hiIncl, r.hasHi = v, true, true
		}
	}
	for _, c := range conjuncts {
		switch e := c.(type) {
		case *sql.BinExpr:
			if e.Op == "=" || e.Op == "<" || e.Op == "<=" || e.Op == ">" || e.Op == ">=" {
				if ord, ok := resolveCol(e.L); ok {
					if v, ok := literal(e.R, ord); ok {
						apply(ord, e.Op, v)
						continue
					}
				}
				if ord, ok := resolveCol(e.R); ok {
					if v, ok := literal(e.L, ord); ok {
						apply(ord, flipOp(e.Op), v)
					}
				}
			}
		case *sql.BetweenExpr:
			if e.Not {
				continue
			}
			if ord, ok := resolveCol(e.E); ok {
				lo, okLo := literal(e.Lo, ord)
				hi, okHi := literal(e.Hi, ord)
				if okLo && okHi {
					apply(ord, ">=", lo)
					apply(ord, "<=", hi)
				}
			}
		}
	}
	return out
}

func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	default:
		return op
	}
}

// rangeSelectivity estimates the fraction of rows selected by a column range.
func rangeSelectivity(t *catalog.Table, ord int, r *colRange) float64 {
	if r.equality {
		return t.Stats.SelectivityEquals(ord)
	}
	lo, hi := value.Null(), value.Null()
	if r.hasLo {
		lo = r.lo
	}
	if r.hasHi {
		hi = r.hi
	}
	return t.Stats.SelectivityRange(ord, lo, hi)
}

// planBaseTable selects the access path for one base-table FROM entry.
//
// The decision follows the textbook cost comparison the paper leans on:
// scanning costs the table's data pages; a clustered seek costs the selected
// fraction of those pages; a covering secondary-index seek costs the selected
// fraction of the (narrower) index pages; a non-covering seek additionally
// pays one random lookup per qualifying row.
func (p *Planner) planBaseTable(t *catalog.Table, alias string, needed []int, pushed []sql.Expr) (*plannedSource, error) {
	if len(needed) == 0 {
		// A table no column of which is referenced still contributes its
		// presence (e.g. COUNT(*) over a cross join); produce its first column.
		needed = []int{0}
	}
	sort.Ints(needed)
	constraints := sargableConstraints(t, alias, pushed)
	overhead := p.Catalog.TupleOverhead()
	dataPages := t.Stats.EstimatedDataPages(overhead)
	rowCount := float64(t.Stats.RowCount)

	selAll := 1.0
	for ord, r := range constraints {
		selAll *= rangeSelectivity(t, ord, r)
	}
	estRows := rowCount * selAll
	if estRows < 1 {
		estRows = 1
	}

	type candidate struct {
		op       exec.Operator
		cost     float64
		ordering []int // table ordinals of the sort prefix
		desc     string
	}
	var best *candidate
	consider := func(c candidate) {
		if best == nil || c.cost < best.cost {
			cc := c
			best = &cc
		}
	}

	// Candidate 1: full scan.
	scanOrdering := []int{}
	if t.IsClustered() {
		scanOrdering = t.Clustered.KeyColumns
	}
	consider(candidate{
		op:       exec.NewSeqScan(t, needed),
		cost:     dataPages,
		ordering: scanOrdering,
		desc:     fmt.Sprintf("SeqScan(%s)", t.Name),
	})

	// Candidate 2: clustered seek on the leading clustered-key column.
	if t.IsClustered() {
		lead := t.Clustered.KeyColumns[0]
		if r, ok := constraints[lead]; ok && (r.hasLo || r.hasHi) {
			sel := rangeSelectivity(t, lead, r)
			var lo, hi []value.Value
			if r.hasLo {
				lo = []value.Value{r.lo}
			}
			if r.hasHi {
				hi = []value.Value{r.hi}
			}
			seek, err := exec.NewClusteredSeek(t, lo, hi, r.loIncl, r.hiIncl, needed)
			if err == nil {
				consider(candidate{
					op:       seek,
					cost:     dataPages*sel + 3, // + root-to-leaf descent
					ordering: t.Clustered.KeyColumns,
					desc: fmt.Sprintf("ClusteredSeek(%s on %s)",
						t.Name, t.Columns[lead].Name),
				})
			}
		}
	}

	// Candidate 3: secondary index seeks.
	for _, idx := range t.Secondary {
		lead := idx.KeyColumns[0]
		r, ok := constraints[lead]
		if !ok || (!r.hasLo && !r.hasHi) {
			continue
		}
		sel := rangeSelectivity(t, lead, r)
		var lo, hi []value.Value
		if r.hasLo {
			lo = []value.Value{r.lo}
		}
		if r.hasHi {
			hi = []value.Value{r.hi}
		}
		seek, err := exec.NewIndexSeek(idx, lo, hi, r.loIncl, r.hiIncl, needed)
		if err != nil {
			continue
		}
		idxPages := estimateIndexPages(idx, overhead)
		var cost float64
		var desc string
		if seek.Covered() {
			cost = idxPages*sel + 3
			desc = fmt.Sprintf("IndexSeek(%s.%s covering)", t.Name, idx.Name)
		} else {
			// Each qualifying row needs a lookup into the base table.
			cost = idxPages*sel + rowCount*sel*2 + 3
			desc = fmt.Sprintf("IndexSeek(%s.%s + lookup)", t.Name, idx.Name)
		}
		consider(candidate{op: seek, cost: cost, ordering: idx.KeyColumns, desc: desc})
	}

	src := &plannedSource{
		name:      strings.ToLower(alias),
		table:     t,
		op:        best.op,
		tableOrds: needed,
		estRows:   estRows,
		desc:      best.desc,
	}
	src.sc = &scope{}
	for _, ord := range needed {
		src.sc.add(alias, t.Columns[ord].Name, t.Columns[ord].Kind)
	}
	// Map the ordering (table ordinals) onto positions within the produced columns.
	for _, keyOrd := range best.ordering {
		pos := -1
		for i, ord := range needed {
			if ord == keyOrd {
				pos = i
				break
			}
		}
		if pos < 0 {
			break
		}
		src.ordering = append(src.ordering, pos)
	}
	// The sort-prefix columns of the chosen access path arrive in key order,
	// so their batches have long runs (and collapse to a single constant under
	// an equality seek) — mark them for compressed vector emission. This is
	// what lets c-table and materialized-view plans run on Const/RLE vectors:
	// their clustered keys are exactly the paper's run structure.
	if !p.DisableCompressed && len(src.ordering) > 0 {
		switch op := best.op.(type) {
		case *exec.SeqScan:
			op.EncodeCols = src.ordering
		case *exec.ClusteredSeek:
			op.EncodeCols = src.ordering
		case *exec.IndexSeek:
			op.EncodeCols = src.ordering
		}
	}
	// Re-apply the pushed predicates as a residual filter: seeks only consume
	// the leading-column range, and re-checking a consumed range is harmless.
	if len(pushed) > 0 {
		pred, err := bindConjuncts(pushed, src.sc)
		if err != nil {
			return nil, err
		}
		if pred != nil {
			src.op = exec.NewFilter(src.op, pred)
			src.desc = fmt.Sprintf("Filter(%s)", src.desc)
		}
	}
	return src, nil
}

// estimateIndexPages approximates the number of leaf pages of a secondary
// index from statistics (share of the base row carried per entry plus
// per-entry key/locator overhead).
func estimateIndexPages(idx *catalog.Index, overhead int) float64 {
	t := idx.Table
	rowBytes := 1.0
	if t.Stats.RowCount > 0 {
		rowBytes = float64(t.Stats.DataBytes) / float64(t.Stats.RowCount)
	}
	frac := float64(len(idx.EntryColumnOrdinals())) / float64(len(t.Columns))
	entryBytes := rowBytes*frac + 12 + float64(overhead)
	pages := float64(t.Stats.RowCount) * entryBytes / (0.95 * 8192)
	if pages < 1 {
		return 1
	}
	return pages
}

// bindConjuncts binds a list of AST conjuncts against a scope and ANDs them.
func bindConjuncts(conjuncts []sql.Expr, sc *scope) (expr.Expr, error) {
	var preds []expr.Expr
	for _, c := range conjuncts {
		b, err := bindExpr(c, sc)
		if err != nil {
			return nil, err
		}
		preds = append(preds, b)
	}
	return expr.And(preds...), nil
}
