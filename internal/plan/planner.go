package plan

import (
	"fmt"
	"sort"
	"strings"

	"oldelephant/internal/catalog"
	"oldelephant/internal/exec"
	"oldelephant/internal/expr"
	"oldelephant/internal/sql"
	"oldelephant/internal/value"
)

// Planner compiles SELECT statements into operator trees against a catalog.
type Planner struct {
	Catalog *catalog.Catalog
	// DisableCompressed stops base-table scans from emitting compressed
	// (Const/RLE) vectors for their sort-prefix columns. Compressed emission
	// is the default; the knob exists for differential testing and
	// row-at-a-time execution, where batches are never produced.
	DisableCompressed bool
	// DisableVectorized makes equi-joins compile to the row-at-a-time
	// HashJoin instead of the default VectorizedHashJoin. The row engine sets
	// it so its plans stay a pure row-at-a-time oracle for differential
	// testing; the physical plan description is identical either way (same
	// algorithm, different pull protocol).
	DisableVectorized bool
}

// NewPlanner returns a planner over the given catalog.
func NewPlanner(cat *catalog.Catalog) *Planner { return &Planner{Catalog: cat} }

// Plan is a compiled query: the root operator, the output column labels, and
// a human-readable description of the chosen physical plan.
type Plan struct {
	Root    exec.Operator
	Columns []string
	Explain string
	EstRows float64
}

// PlanSelect compiles a SELECT statement.
func (p *Planner) PlanSelect(stmt *sql.SelectStmt) (*Plan, error) {
	// Queries without FROM evaluate the select list over a single empty row.
	if len(stmt.From) == 0 {
		return p.planConstantSelect(stmt)
	}

	// Plan derived tables first so their output columns are known, and build
	// the per-source preliminary scopes used to classify predicates.
	srcScopes := make(map[string]*scope)
	subPlans := make(map[string]*Plan)
	var orderNames []string
	for _, ref := range stmt.From {
		name := strings.ToLower(ref.Name())
		if _, dup := srcScopes[name]; dup {
			return nil, fmt.Errorf("plan: duplicate table name or alias %q in FROM", ref.Name())
		}
		orderNames = append(orderNames, name)
		if ref.Subquery != nil {
			sub, err := p.PlanSelect(ref.Subquery)
			if err != nil {
				return nil, fmt.Errorf("plan: derived table %q: %w", ref.Name(), err)
			}
			subPlans[name] = sub
			sc := &scope{}
			for i, col := range sub.Columns {
				kind := value.KindNull
				if i < len(sub.Root.Schema()) {
					kind = sub.Root.Schema()[i].Kind
				}
				sc.add(name, col, kind)
			}
			srcScopes[name] = sc
		} else {
			t, err := p.Catalog.Table(ref.Table)
			if err != nil {
				return nil, err
			}
			sc := &scope{}
			for _, col := range t.Columns {
				sc.add(ref.Name(), col.Name, col.Kind)
			}
			srcScopes[name] = sc
		}
	}

	// Classify WHERE conjuncts: single-source ones are pushed into the
	// source's access path; multi-source ones drive join planning.
	conjuncts := splitConjunctsAST(stmt.Where)
	pushedBySource := make(map[string][]sql.Expr)
	var joinConjuncts []sql.Expr
	var constConjuncts []sql.Expr
	for _, c := range conjuncts {
		if hasAggregate(c) {
			return nil, fmt.Errorf("plan: aggregates are not allowed in WHERE")
		}
		srcs := exprSources(c, srcScopes)
		switch len(srcs) {
		case 0:
			constConjuncts = append(constConjuncts, c)
		case 1:
			for name := range srcs {
				pushedBySource[name] = append(pushedBySource[name], c)
			}
		default:
			joinConjuncts = append(joinConjuncts, c)
		}
	}

	// Column requirements per source: every column referenced anywhere.
	needed := p.neededColumns(stmt, srcScopes)

	// Build planned sources in FROM order.
	var sources []*plannedSource
	for _, ref := range stmt.From {
		name := strings.ToLower(ref.Name())
		if sub, ok := subPlans[name]; ok {
			src := &plannedSource{
				name:    name,
				op:      sub.Root,
				sc:      srcScopes[name],
				estRows: sub.EstRows,
				desc:    fmt.Sprintf("Subquery(%s)", name),
			}
			// Apply single-source predicates over the derived table's output.
			if pushed := pushedBySource[name]; len(pushed) > 0 {
				pred, err := bindConjuncts(pushed, src.sc)
				if err != nil {
					return nil, err
				}
				src.op = exec.NewFilter(src.op, pred)
				src.desc = "Filter(" + src.desc + ")"
			}
			sources = append(sources, src)
			continue
		}
		t, err := p.Catalog.Table(ref.Table)
		if err != nil {
			return nil, err
		}
		src, err := p.planBaseTable(t, ref.Name(), needed[name], pushedBySource[name])
		if err != nil {
			return nil, err
		}
		src.pushed = pushedBySource[name]
		sources = append(sources, src)
	}

	// Join everything left-to-right.
	joined, err := p.joinSources(sources, joinConjuncts, stmt.Hints)
	if err != nil {
		return nil, err
	}

	// Constant-only predicates (no column references).
	if len(constConjuncts) > 0 {
		pred, err := bindConjuncts(constConjuncts, joined.sc)
		if err != nil {
			return nil, err
		}
		joined.op = exec.NewFilter(joined.op, pred)
	}

	return p.finishSelect(stmt, joined)
}

// planConstantSelect handles SELECT lists without a FROM clause.
func (p *Planner) planConstantSelect(stmt *sql.SelectStmt) (*Plan, error) {
	base := exec.NewValuesScan(nil, []exec.Row{{}})
	joined := &joinedRelation{op: base, sc: &scope{}, estRows: 1, desc: "SingleRow"}
	return p.finishSelect(stmt, joined)
}

// neededColumns resolves every column reference in the statement to its
// source and base-table ordinal.
func (p *Planner) neededColumns(stmt *sql.SelectStmt, srcScopes map[string]*scope) map[string][]int {
	needed := make(map[string]map[int]bool)
	addRef := func(ref *sql.ColRef) {
		for name, sc := range srcScopes {
			if ref.Table != "" && !strings.EqualFold(ref.Table, name) {
				continue
			}
			for i, c := range sc.cols {
				if c.Name == strings.ToLower(ref.Column) {
					if needed[name] == nil {
						needed[name] = make(map[int]bool)
					}
					needed[name][i] = true
				}
			}
		}
	}
	var walk func(e sql.Expr)
	walk = func(e sql.Expr) {
		switch t := e.(type) {
		case nil:
		case *sql.ColRef:
			addRef(t)
		case *sql.BinExpr:
			walk(t.L)
			walk(t.R)
		case *sql.NotExpr:
			walk(t.E)
		case *sql.BetweenExpr:
			walk(t.E)
			walk(t.Lo)
			walk(t.Hi)
		case *sql.InExpr:
			walk(t.E)
			for _, i := range t.List {
				walk(i)
			}
		case *sql.IsNullExpr:
			walk(t.E)
		case *sql.FuncCall:
			for _, a := range t.Args {
				walk(a)
			}
		}
	}
	star := false
	for _, item := range stmt.Select {
		if item.Star {
			star = true
			continue
		}
		walk(item.Expr)
	}
	walk(stmt.Where)
	for _, g := range stmt.GroupBy {
		walk(g)
	}
	walk(stmt.Having)
	for _, o := range stmt.OrderBy {
		walk(o.Expr)
	}
	out := make(map[string][]int)
	for name, sc := range srcScopes {
		if star {
			out[name] = allOrdinalsUpTo(len(sc.cols))
			continue
		}
		var ords []int
		for ord := range needed[name] {
			ords = append(ords, ord)
		}
		sort.Ints(ords)
		out[name] = ords
	}
	return out
}

func allOrdinalsUpTo(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// aggBinding records one planned aggregate: its canonical SQL text and its
// output position after the grouping operator.
type aggBinding struct {
	key  string
	spec exec.AggSpec
}

// finishSelect applies aggregation, HAVING, projection, DISTINCT, ORDER BY
// and LIMIT over the joined relation.
func (p *Planner) finishSelect(stmt *sql.SelectStmt, joined *joinedRelation) (*Plan, error) {
	// Gather aggregates from SELECT, HAVING and ORDER BY.
	var aggCalls []*sql.FuncCall
	for _, item := range stmt.Select {
		if !item.Star {
			collectAggregates(item.Expr, &aggCalls)
		}
	}
	collectAggregates(stmt.Having, &aggCalls)
	for _, o := range stmt.OrderBy {
		collectAggregates(o.Expr, &aggCalls)
	}
	needAgg := len(stmt.GroupBy) > 0 || len(aggCalls) > 0

	op := joined.op
	outScope := joined.sc
	explain := joined.desc
	estRows := joined.estRows

	var aggs []aggBinding
	var groupOrds []int
	if needAgg {
		// Resolve GROUP BY columns.
		for _, g := range stmt.GroupBy {
			ref, ok := g.(*sql.ColRef)
			if !ok {
				return nil, fmt.Errorf("plan: GROUP BY supports column references only, got %q", g.String())
			}
			ord, err := joined.sc.resolve(ref)
			if err != nil {
				return nil, err
			}
			groupOrds = append(groupOrds, ord)
		}
		// Deduplicate aggregate calls by their canonical rendering.
		seen := make(map[string]bool)
		for _, fc := range aggCalls {
			key := strings.ToUpper(fc.String())
			if seen[key] {
				continue
			}
			seen[key] = true
			spec, err := p.buildAggSpec(fc, joined.sc)
			if err != nil {
				return nil, err
			}
			aggs = append(aggs, aggBinding{key: key, spec: spec})
		}
		specs := make([]exec.AggSpec, len(aggs))
		for i, a := range aggs {
			specs[i] = a.spec
		}
		// Stream aggregation if the input is already clustered on the group
		// columns (or the user hinted it); hash aggregation otherwise.
		streamOK := groupPrefixOfOrdering(groupOrds, joined.ordering)
		useStream := streamOK
		if hasHint(stmt.Hints, "HASH AGG") {
			useStream = false
		}
		if hasHint(stmt.Hints, "STREAM AGG") && !streamOK {
			op = exec.NewSort(op, sortKeysFor(groupOrds))
			explain = "Sort(" + explain + ")"
			useStream = true
		}
		if useStream {
			op = exec.NewStreamAggregate(op, groupOrds, specs)
			explain = "StreamAggregate(" + explain + ")"
		} else {
			op = exec.NewHashAggregate(op, groupOrds, specs)
			explain = "HashAggregate(" + explain + ")"
		}
		// Post-aggregation scope: group columns keep their names; aggregates
		// are addressable by their canonical text.
		post := &scope{}
		for _, g := range groupOrds {
			post.cols = append(post.cols, joined.sc.cols[g])
		}
		for _, a := range aggs {
			post.add("", a.key, value.KindNull)
		}
		outScope = post
		if len(groupOrds) > 0 {
			estRows = estRows / 10
			if estRows < 1 {
				estRows = 1
			}
		} else {
			estRows = 1
		}
	}

	// HAVING.
	if stmt.Having != nil {
		if !needAgg {
			return nil, fmt.Errorf("plan: HAVING requires GROUP BY or aggregates")
		}
		pred, err := p.bindWithAggregates(stmt.Having, outScope, groupOrds, aggs, joined.sc)
		if err != nil {
			return nil, err
		}
		op = exec.NewFilter(op, pred)
		explain = "Having(" + explain + ")"
	}

	// Final projection.
	var projExprs []expr.Expr
	var names []string
	for _, item := range stmt.Select {
		if item.Star {
			if needAgg {
				return nil, fmt.Errorf("plan: SELECT * cannot be combined with GROUP BY or aggregates")
			}
			for i, c := range joined.sc.cols {
				projExprs = append(projExprs, expr.NewColumn(i, c.Name))
				names = append(names, c.Name)
			}
			continue
		}
		var bound expr.Expr
		var err error
		if needAgg {
			bound, err = p.bindWithAggregates(item.Expr, outScope, groupOrds, aggs, joined.sc)
		} else {
			bound, err = bindExpr(item.Expr, outScope)
		}
		if err != nil {
			return nil, err
		}
		projExprs = append(projExprs, bound)
		names = append(names, outputName(item))
	}
	op = exec.NewProject(op, projExprs, names)
	explain = "Project(" + explain + ")"

	// DISTINCT via grouping on all output columns.
	if stmt.Distinct {
		ords := allOrdinalsUpTo(len(projExprs))
		op = exec.NewHashAggregate(op, ords, nil)
		explain = "Distinct(" + explain + ")"
	}

	// ORDER BY over the projected output.
	if len(stmt.OrderBy) > 0 {
		keys, err := p.bindOrderBy(stmt, names, outScope, groupOrds, aggs, joined.sc, needAgg)
		if err != nil {
			return nil, err
		}
		op = exec.NewSort(op, keys)
		explain = "Sort(" + explain + ")"
	}

	// LIMIT / OFFSET.
	if stmt.Limit >= 0 || stmt.Offset > 0 {
		op = exec.NewLimit(op, stmt.Limit, stmt.Offset)
		explain = "Limit(" + explain + ")"
	}

	return &Plan{Root: op, Columns: names, Explain: explain, EstRows: estRows}, nil
}

// outputName picks the label of a select item.
func outputName(item sql.SelectItem) string {
	if item.Alias != "" {
		return item.Alias
	}
	if ref, ok := item.Expr.(*sql.ColRef); ok {
		return ref.Column
	}
	return item.Expr.String()
}

// buildAggSpec converts an aggregate call into an executable AggSpec bound
// over the pre-aggregation scope.
func (p *Planner) buildAggSpec(fc *sql.FuncCall, sc *scope) (exec.AggSpec, error) {
	spec := exec.AggSpec{Name: fc.String()}
	switch fc.Name {
	case "COUNT":
		if fc.Star {
			spec.Kind = exec.AggCountStar
			return spec, nil
		}
		spec.Kind = exec.AggCount
	case "SUM":
		spec.Kind = exec.AggSum
	case "MIN":
		spec.Kind = exec.AggMin
	case "MAX":
		spec.Kind = exec.AggMax
	case "AVG":
		spec.Kind = exec.AggAvg
	default:
		return spec, fmt.Errorf("plan: unsupported aggregate %q", fc.Name)
	}
	if len(fc.Args) != 1 {
		return spec, fmt.Errorf("plan: aggregate %s expects one argument", fc.Name)
	}
	arg, err := bindExpr(fc.Args[0], sc)
	if err != nil {
		return spec, err
	}
	spec.Arg = arg
	return spec, nil
}

// bindWithAggregates binds an expression that may reference aggregate results
// and group-by columns, against the post-aggregation scope.
func (p *Planner) bindWithAggregates(e sql.Expr, post *scope, groupOrds []int, aggs []aggBinding, pre *scope) (expr.Expr, error) {
	switch t := e.(type) {
	case *sql.FuncCall:
		if t.IsAggregate() {
			key := strings.ToUpper(t.String())
			for i, a := range aggs {
				if a.key == key {
					return expr.NewColumn(len(groupOrds)+i, t.String()), nil
				}
			}
			return nil, fmt.Errorf("plan: aggregate %q not planned", t.String())
		}
		return nil, fmt.Errorf("plan: unsupported function %q", t.Name)
	case *sql.ColRef:
		// Group-by columns are addressable by their pre-aggregation names.
		for i, g := range groupOrds {
			c := pre.cols[g]
			if c.Name == strings.ToLower(t.Column) && (t.Table == "" || strings.ToLower(t.Table) == c.Qualifier) {
				return expr.NewColumn(i, t.String()), nil
			}
		}
		return nil, fmt.Errorf("plan: column %q must appear in GROUP BY or inside an aggregate", t.String())
	case *sql.Literal:
		return expr.NewConst(t.Val), nil
	case *sql.BinExpr:
		l, err := p.bindWithAggregates(t.L, post, groupOrds, aggs, pre)
		if err != nil {
			return nil, err
		}
		r, err := p.bindWithAggregates(t.R, post, groupOrds, aggs, pre)
		if err != nil {
			return nil, err
		}
		op, err := binaryOp(t.Op)
		if err != nil {
			return nil, err
		}
		return expr.NewBinary(op, l, r), nil
	case *sql.NotExpr:
		inner, err := p.bindWithAggregates(t.E, post, groupOrds, aggs, pre)
		if err != nil {
			return nil, err
		}
		return &expr.Not{E: inner}, nil
	case *sql.BetweenExpr:
		v, err := p.bindWithAggregates(t.E, post, groupOrds, aggs, pre)
		if err != nil {
			return nil, err
		}
		lo, err := p.bindWithAggregates(t.Lo, post, groupOrds, aggs, pre)
		if err != nil {
			return nil, err
		}
		hi, err := p.bindWithAggregates(t.Hi, post, groupOrds, aggs, pre)
		if err != nil {
			return nil, err
		}
		return &expr.Between{E: v, Lo: lo, Hi: hi}, nil
	case *sql.IsNullExpr:
		v, err := p.bindWithAggregates(t.E, post, groupOrds, aggs, pre)
		if err != nil {
			return nil, err
		}
		return &expr.IsNull{E: v, Negate: t.Not}, nil
	default:
		return nil, fmt.Errorf("plan: unsupported expression %T after aggregation", e)
	}
}

// bindOrderBy resolves ORDER BY terms against the projected output: by
// 1-based position, by output label, or by matching a select item expression.
func (p *Planner) bindOrderBy(stmt *sql.SelectStmt, names []string, post *scope, groupOrds []int, aggs []aggBinding, pre *scope, needAgg bool) ([]exec.SortKey, error) {
	var keys []exec.SortKey
	for _, o := range stmt.OrderBy {
		ord := -1
		switch t := o.Expr.(type) {
		case *sql.Literal:
			if t.Val.Kind == value.KindInt {
				pos := int(t.Val.I)
				if pos < 1 || pos > len(names) {
					return nil, fmt.Errorf("plan: ORDER BY position %d out of range", pos)
				}
				ord = pos - 1
			}
		case *sql.ColRef:
			for i, n := range names {
				if strings.EqualFold(n, t.Column) {
					ord = i
					break
				}
			}
		}
		if ord < 0 {
			// Fall back to matching the rendering of a select item.
			want := strings.ToUpper(o.Expr.String())
			for i, item := range stmt.Select {
				if !item.Star && strings.ToUpper(item.Expr.String()) == want {
					ord = i
					break
				}
			}
		}
		if ord < 0 {
			return nil, fmt.Errorf("plan: cannot resolve ORDER BY term %q against the select list", o.Expr.String())
		}
		keys = append(keys, exec.SortKey{Col: ord, Desc: o.Desc})
	}
	return keys, nil
}

// groupPrefixOfOrdering reports whether the group columns form (a permutation
// of) a prefix of the input's sort order, which makes streaming aggregation safe.
func groupPrefixOfOrdering(groupOrds, ordering []int) bool {
	if len(groupOrds) == 0 {
		return true
	}
	if len(ordering) < len(groupOrds) {
		return false
	}
	prefix := make(map[int]bool)
	for _, o := range ordering[:len(groupOrds)] {
		prefix[o] = true
	}
	for _, g := range groupOrds {
		if !prefix[g] {
			return false
		}
	}
	return true
}

func sortKeysFor(ords []int) []exec.SortKey {
	keys := make([]exec.SortKey, len(ords))
	for i, o := range ords {
		keys[i] = exec.SortKey{Col: o}
	}
	return keys
}

// hasHint reports whether the hint list contains the given hint text.
func hasHint(hints []string, want string) bool {
	for _, h := range hints {
		if strings.EqualFold(strings.TrimSpace(h), want) {
			return true
		}
	}
	return false
}
