package plan

import (
	"fmt"
	"testing"

	"oldelephant/internal/catalog"
	"oldelephant/internal/exec"
	"oldelephant/internal/storage"
	"oldelephant/internal/value"
)

// newParallelCatalog builds a clustered table large enough to clear the
// parallelization threshold (ParallelRowThreshold rows spread over many leaf
// pages).
func newParallelCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	c := catalog.New(storage.NewPager(0), -1)
	tbl, err := c.CreateTable("big", []catalog.Column{
		{Name: "id", Kind: value.KindInt},
		{Name: "grp", Kind: value.KindInt},
		{Name: "amount", Kind: value.KindFloat},
	}, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]value.Value
	for i := 0; i < 3*ParallelRowThreshold; i++ {
		rows = append(rows, []value.Value{
			value.NewInt(int64(i)),
			value.NewInt(int64(i % 40)),
			value.NewFloat(float64(i % 1000)),
		})
	}
	if err := tbl.BulkLoad(rows); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestParallelizePlacesParallelOperators pins where the rewrite fires: a
// scan-filter-aggregate pipeline becomes a parallel aggregate, a bare
// scan-filter pipeline a ParallelMerge, ORDER BY a ParallelSort under the
// serial Limit, and a sub-threshold table stays serial. Without this pin a
// regression could silently turn every "parallel" differential run back into
// serial-vs-serial.
func TestParallelizePlacesParallelOperators(t *testing.T) {
	c := newParallelCatalog(t)
	cases := []struct {
		query string
		want  string // type of the operator found at/under the rewritten root
	}{
		{"SELECT grp, COUNT(*), SUM(amount) FROM big WHERE amount > 10 GROUP BY grp", "*exec.ParallelHashAggregate"},
		{"SELECT id, amount FROM big WHERE amount > 990", "*exec.ParallelMerge"},
		{"SELECT id, amount FROM big WHERE amount > 990 ORDER BY amount DESC LIMIT 5", "*exec.ParallelSort"},
		{"SELECT id, grp FROM big", "*exec.ParallelMerge"},
	}
	for _, tc := range cases {
		pl := planFor(t, c, tc.query)
		root, rewrote := Parallelize(pl.Root, 4)
		if !rewrote {
			t.Errorf("%s: Parallelize reported no rewrite", tc.query)
		}
		if got := findOperatorType(root, tc.want); !got {
			t.Errorf("%s:\nrewritten plan has no %s (root %T)", tc.query, tc.want, root)
		}
	}

	// Parallelism 1 must return the identical tree, untouched.
	pl := planFor(t, c, cases[0].query)
	if got, rewrote := Parallelize(pl.Root, 1); got != pl.Root || rewrote {
		t.Errorf("Parallelize(root, 1) rebuilt the tree")
	}

	// A streaming aggregate over the clustered order parallelizes with seam
	// merging.
	pl = planFor(t, c, "SELECT id, MAX(amount) FROM big GROUP BY id")
	if _, ok := pl.Root.(*exec.Project); !ok {
		t.Fatalf("expected Project root, got %T", pl.Root)
	}
	root, _ := Parallelize(pl.Root, 4)
	if !findOperatorType(root, "*exec.ParallelStreamAggregate") {
		t.Errorf("stream aggregation did not parallelize: %s", pl.Explain)
	}
}

// TestParallelizeLeavesSmallScansSerial: a table below the threshold keeps
// its serial plan.
func TestParallelizeLeavesSmallScansSerial(t *testing.T) {
	c := catalog.New(storage.NewPager(0), -1)
	tbl, err := c.CreateTable("small", []catalog.Column{
		{Name: "id", Kind: value.KindInt},
		{Name: "grp", Kind: value.KindInt},
	}, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]value.Value
	for i := 0; i < ParallelRowThreshold/2; i++ {
		rows = append(rows, []value.Value{value.NewInt(int64(i)), value.NewInt(int64(i % 5))})
	}
	if err := tbl.BulkLoad(rows); err != nil {
		t.Fatal(err)
	}
	pl := planFor(t, c, "SELECT grp, COUNT(*) FROM small GROUP BY grp")
	root, rewrote := Parallelize(pl.Root, 4)
	if rewrote {
		t.Error("Parallelize reported a rewrite on a sub-threshold scan")
	}
	for _, typ := range []string{"*exec.ParallelHashAggregate", "*exec.ParallelStreamAggregate", "*exec.ParallelMerge", "*exec.ParallelSort"} {
		if findOperatorType(root, typ) {
			t.Errorf("sub-threshold scan was parallelized with %s", typ)
		}
	}
}

// findOperatorType walks the operator tree looking for a node whose dynamic
// type renders as want.
func findOperatorType(op exec.Operator, want string) bool {
	if fmt.Sprintf("%T", op) == want {
		return true
	}
	switch t := op.(type) {
	case *exec.Filter:
		return findOperatorType(t.Input, want)
	case *exec.Project:
		return findOperatorType(t.Input, want)
	case *exec.Limit:
		return findOperatorType(t.Input, want)
	case *exec.Sort:
		return findOperatorType(t.Input, want)
	case *exec.HashAggregate:
		return findOperatorType(t.Input, want)
	case *exec.StreamAggregate:
		return findOperatorType(t.Input, want)
	default:
		return false
	}
}
