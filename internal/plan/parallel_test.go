package plan

import (
	"fmt"
	"testing"

	"oldelephant/internal/catalog"
	"oldelephant/internal/exec"
	"oldelephant/internal/storage"
	"oldelephant/internal/value"
)

// newParallelCatalog builds a clustered table large enough to clear the
// parallelization threshold (ParallelRowThreshold rows spread over many leaf
// pages), plus a small and a large dimension table for join rewrites.
func newParallelCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	c := catalog.New(storage.NewPager(0), -1)
	tbl, err := c.CreateTable("big", []catalog.Column{
		{Name: "id", Kind: value.KindInt},
		{Name: "grp", Kind: value.KindInt},
		{Name: "amount", Kind: value.KindFloat},
	}, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]value.Value
	for i := 0; i < 3*ParallelRowThreshold; i++ {
		rows = append(rows, []value.Value{
			value.NewInt(int64(i)),
			value.NewInt(int64(i % 40)),
			value.NewFloat(float64(i % 1000)),
		})
	}
	if err := tbl.BulkLoad(rows); err != nil {
		t.Fatal(err)
	}
	dims, err := c.CreateTable("dims", []catalog.Column{
		{Name: "dkey", Kind: value.KindInt},
		{Name: "dname", Kind: value.KindInt},
	}, []string{"dkey"})
	if err != nil {
		t.Fatal(err)
	}
	var dimRows [][]value.Value
	for i := 0; i < 40; i++ {
		dimRows = append(dimRows, []value.Value{value.NewInt(int64(i)), value.NewInt(int64(i % 5))})
	}
	if err := dims.BulkLoad(dimRows); err != nil {
		t.Fatal(err)
	}
	bigdims, err := c.CreateTable("bigdims", []catalog.Column{
		{Name: "bkey", Kind: value.KindInt},
		{Name: "bname", Kind: value.KindInt},
	}, []string{"bkey"})
	if err != nil {
		t.Fatal(err)
	}
	var bigDimRows [][]value.Value
	for i := 0; i < 2*ParallelRowThreshold; i++ {
		bigDimRows = append(bigDimRows, []value.Value{value.NewInt(int64(i)), value.NewInt(int64(i % 11))})
	}
	if err := bigdims.BulkLoad(bigDimRows); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestParallelizePlacesParallelOperators pins where the rewrite fires: a
// scan-filter-aggregate pipeline becomes a parallel aggregate, a bare
// scan-filter pipeline a ParallelMerge, ORDER BY a ParallelSort under the
// serial Limit, and a sub-threshold table stays serial. Without this pin a
// regression could silently turn every "parallel" differential run back into
// serial-vs-serial.
func TestParallelizePlacesParallelOperators(t *testing.T) {
	c := newParallelCatalog(t)
	cases := []struct {
		query string
		want  string // type of the operator found at/under the rewritten root
	}{
		{"SELECT grp, COUNT(*), SUM(amount) FROM big WHERE amount > 10 GROUP BY grp", "*exec.ParallelHashAggregate"},
		{"SELECT id, amount FROM big WHERE amount > 990", "*exec.ParallelMerge"},
		{"SELECT id, amount FROM big WHERE amount > 990 ORDER BY amount DESC LIMIT 5", "*exec.ParallelSort"},
		{"SELECT id, grp FROM big", "*exec.ParallelMerge"},
	}
	for _, tc := range cases {
		pl := planFor(t, c, tc.query)
		root, rewrote := Parallelize(pl.Root, 4)
		if !rewrote {
			t.Errorf("%s: Parallelize reported no rewrite", tc.query)
		}
		if got := findOperatorType(root, tc.want); !got {
			t.Errorf("%s:\nrewritten plan has no %s (root %T)", tc.query, tc.want, root)
		}
	}

	// Parallelism 1 must return the identical tree, untouched.
	pl := planFor(t, c, cases[0].query)
	if got, rewrote := Parallelize(pl.Root, 1); got != pl.Root || rewrote {
		t.Errorf("Parallelize(root, 1) rebuilt the tree")
	}

	// A streaming aggregate over the clustered order parallelizes with seam
	// merging.
	pl = planFor(t, c, "SELECT id, MAX(amount) FROM big GROUP BY id")
	if _, ok := pl.Root.(*exec.Project); !ok {
		t.Fatalf("expected Project root, got %T", pl.Root)
	}
	root, _ := Parallelize(pl.Root, 4)
	if !findOperatorType(root, "*exec.ParallelStreamAggregate") {
		t.Errorf("stream aggregation did not parallelize: %s", pl.Explain)
	}
}

// TestParallelizeThroughJoins pins the join rewrite: a vectorized hash join
// is not a pipeline breaker — the probe-side pipeline parallelizes through it
// against the shared build table — and a partitionable build side is
// configured for morsel-parallel hashing.
func TestParallelizeThroughJoins(t *testing.T) {
	c := newParallelCatalog(t)
	cases := []struct {
		query string
		want  string
	}{
		// Join absorbed into a parallel aggregate pipeline.
		{"SELECT dname, COUNT(*), SUM(amount) FROM big, dims WHERE grp = dkey GROUP BY dname", "*exec.ParallelHashAggregate"},
		// Join under a bare filter pipeline.
		{"SELECT id, dname FROM big, dims WHERE grp = dkey AND amount > 990", "*exec.ParallelMerge"},
		// Join under ORDER BY/LIMIT.
		{"SELECT id, amount, dname FROM big, dims WHERE grp = dkey ORDER BY amount DESC, id LIMIT 7", "*exec.ParallelSort"},
	}
	for _, tc := range cases {
		pl := planFor(t, c, tc.query)
		if !findOperatorType(pl.Root, "*exec.VectorizedHashJoin") {
			t.Fatalf("%s: plan has no VectorizedHashJoin: %s", tc.query, pl.Explain)
		}
		root, rewrote := Parallelize(pl.Root, 4)
		if !rewrote {
			t.Errorf("%s: Parallelize reported no rewrite", tc.query)
		}
		if !findOperatorType(root, tc.want) {
			t.Errorf("%s:\nrewritten plan has no %s (root %T)", tc.query, tc.want, root)
		}
		// The join must have been absorbed into the parallel pipeline, not
		// left as a serial stage above it.
		if findOperatorType(root, "*exec.VectorizedHashJoin") {
			t.Errorf("%s: join left outside the parallel pipeline", tc.query)
		}
	}

	// A join whose build side clears the threshold gets a morsel-parallel
	// build; a small build side stays serial.
	pl := planFor(t, c, "SELECT bname, COUNT(*) FROM big, bigdims WHERE grp = bkey GROUP BY bname OPTION(HASH JOIN)")
	join := findVectorizedJoin(pl.Root)
	if join == nil {
		t.Fatalf("big-build query plan has no VectorizedHashJoin: %s", pl.Explain)
	}
	if _, rewrote := Parallelize(pl.Root, 4); !rewrote {
		t.Error("Parallelize reported no rewrite for the big-build join")
	}
	if got := join.BuildParallelism(); got != 4 {
		t.Errorf("big build side: BuildParallelism() = %d, want 4", got)
	}
	pl = planFor(t, c, "SELECT dname, COUNT(*) FROM big, dims WHERE grp = dkey GROUP BY dname")
	join = findVectorizedJoin(pl.Root)
	if join == nil {
		t.Fatal("small-build query plan has no VectorizedHashJoin")
	}
	Parallelize(pl.Root, 4)
	if got := join.BuildParallelism(); got != 1 {
		t.Errorf("small build side: BuildParallelism() = %d, want 1 (below threshold)", got)
	}

	// A build side that is not a plain pipeline — a derived table with its own
	// aggregate — cannot hash into per-worker partitions, but its subtree
	// still rides the general rewrite: the join must end up draining a
	// parallel aggregate.
	pl = planFor(t, c, "SELECT grp, COUNT(*) FROM big, (SELECT bname FROM bigdims GROUP BY bname) d WHERE grp = bname GROUP BY grp")
	join = findVectorizedJoin(pl.Root)
	if join == nil {
		t.Fatalf("derived-build query plan has no VectorizedHashJoin: %s", pl.Explain)
	}
	if _, rewrote := Parallelize(pl.Root, 4); !rewrote {
		t.Error("Parallelize reported no rewrite for the derived-build join")
	}
	if join.BuildParallelism() != 1 {
		t.Errorf("derived build side claims a partitioned parallel build (workers %d)", join.BuildParallelism())
	}
	if !findOperatorType(join.Build, "*exec.ParallelHashAggregate") && !findOperatorType(join.Build, "*exec.ParallelStreamAggregate") {
		t.Errorf("derived build side did not parallelize its aggregate (build %T)", join.Build)
	}
}

// findVectorizedJoin returns the first vectorized hash join in the tree.
func findVectorizedJoin(op exec.Operator) *exec.VectorizedHashJoin {
	if j, ok := op.(*exec.VectorizedHashJoin); ok {
		return j
	}
	if in, ok := containerInput(op); ok {
		return findVectorizedJoin(in)
	}
	return nil
}

// TestParallelizeSeeks pins the range-scan rewrite: a wide clustered-key
// range seek (and a wide covering index seek) partitions into leaf-range
// morsels bounded by the seek's stop key, while a selective seek — the whole
// point of seeking — stays serial.
func TestParallelizeSeeks(t *testing.T) {
	c := newParallelCatalog(t)
	if _, err := c.CreateIndex("big_amount", "big", []string{"amount"}, []string{"grp"}, false); err != nil {
		t.Fatal(err)
	}
	wide := []struct {
		query string
		scan  string // access path expected at the bottom of the pipeline
		want  string
	}{
		// id is the clustered key: a range predicate selecting ~2/3 of the
		// table compiles to a ClusteredSeek that still clears the threshold.
		{"SELECT grp, COUNT(*) FROM big WHERE id > 8192 GROUP BY grp", "*exec.ClusteredSeek", "*exec.ParallelHashAggregate"},
		{"SELECT id, grp FROM big WHERE id > 8192 AND grp = 7", "*exec.ClusteredSeek", "*exec.ParallelMerge"},
		// amount has a covering secondary index: a ~40%-selective range
		// predicate compiles to a covering IndexSeek over ~9800 entries —
		// above the threshold, so the entry range partitions too.
		{"SELECT grp, COUNT(*) FROM big WHERE amount > 600.0 GROUP BY grp", "*exec.IndexSeek", "*exec.ParallelHashAggregate"},
	}
	for _, tc := range wide {
		pl := planFor(t, c, tc.query)
		if !findOperatorType(pl.Root, tc.scan) {
			t.Fatalf("%s: expected a %s access path: %s", tc.query, tc.scan, pl.Explain)
		}
		root, rewrote := Parallelize(pl.Root, 4)
		if !rewrote {
			t.Errorf("%s: wide seek did not parallelize (%s)", tc.query, pl.Explain)
			continue
		}
		if !findOperatorType(root, tc.want) {
			t.Errorf("%s: rewritten plan has no %s (root %T)", tc.query, tc.want, root)
		}
	}
	// A selective equality seek stays serial: its range estimate is far below
	// the threshold.
	pl := planFor(t, c, "SELECT grp, COUNT(*) FROM big WHERE id = 123 GROUP BY grp")
	if !findOperatorType(pl.Root, "*exec.ClusteredSeek") {
		t.Fatalf("selective query lost its seek: %s", pl.Explain)
	}
	if _, rewrote := Parallelize(pl.Root, 4); rewrote {
		t.Error("selective equality seek was parallelized")
	}
}

// TestParallelizeLeavesSmallScansSerial: a table below the threshold keeps
// its serial plan.
func TestParallelizeLeavesSmallScansSerial(t *testing.T) {
	c := catalog.New(storage.NewPager(0), -1)
	tbl, err := c.CreateTable("small", []catalog.Column{
		{Name: "id", Kind: value.KindInt},
		{Name: "grp", Kind: value.KindInt},
	}, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]value.Value
	for i := 0; i < ParallelRowThreshold/2; i++ {
		rows = append(rows, []value.Value{value.NewInt(int64(i)), value.NewInt(int64(i % 5))})
	}
	if err := tbl.BulkLoad(rows); err != nil {
		t.Fatal(err)
	}
	pl := planFor(t, c, "SELECT grp, COUNT(*) FROM small GROUP BY grp")
	root, rewrote := Parallelize(pl.Root, 4)
	if rewrote {
		t.Error("Parallelize reported a rewrite on a sub-threshold scan")
	}
	for _, typ := range []string{"*exec.ParallelHashAggregate", "*exec.ParallelStreamAggregate", "*exec.ParallelMerge", "*exec.ParallelSort"} {
		if findOperatorType(root, typ) {
			t.Errorf("sub-threshold scan was parallelized with %s", typ)
		}
	}
}

// findOperatorType walks the operator tree looking for a node whose dynamic
// type renders as want.
func findOperatorType(op exec.Operator, want string) bool {
	if fmt.Sprintf("%T", op) == want {
		return true
	}
	if in, ok := containerInput(op); ok {
		return findOperatorType(in, want)
	}
	if j, ok := op.(*exec.VectorizedHashJoin); ok {
		return findOperatorType(j.Probe, want)
	}
	return false
}
