package plan

import (
	"strings"
	"testing"

	"oldelephant/internal/catalog"
	"oldelephant/internal/exec"
	"oldelephant/internal/sql"
	"oldelephant/internal/storage"
	"oldelephant/internal/value"
)

// newTestCatalog builds a small clustered table with a covering secondary
// index and enough rows for the cost model to prefer seeks over scans.
func newTestCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	c := catalog.New(storage.NewPager(0), -1)
	tbl, err := c.CreateTable("events", []catalog.Column{
		{Name: "day", Kind: value.KindDate},
		{Name: "user_id", Kind: value.KindInt},
		{Name: "kind", Kind: value.KindString},
		{Name: "amount", Kind: value.KindFloat},
	}, []string{"day", "user_id"})
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]value.Value
	base := value.MustParseDate("2008-01-01").Int()
	for i := 0; i < 5000; i++ {
		kind := "view"
		if i%10 == 0 {
			kind = "click"
		}
		rows = append(rows, []value.Value{
			value.NewDate(base + int64(i%200)),
			value.NewInt(int64(i % 50)),
			value.NewString(kind),
			value.NewFloat(float64(i % 97)),
		})
	}
	if err := tbl.BulkLoad(rows); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateIndex("ix_user", "events", []string{"user_id"}, []string{"amount"}, false); err != nil {
		t.Fatal(err)
	}
	return c
}

func planFor(t *testing.T, c *catalog.Catalog, query string) *Plan {
	t.Helper()
	stmt, err := sql.ParseSelect(query)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlanner(c).PlanSelect(stmt)
	if err != nil {
		t.Fatalf("planning %q: %v", query, err)
	}
	return p
}

func TestScopeResolution(t *testing.T) {
	sc := &scope{}
	sc.add("t", "a", value.KindInt)
	sc.add("u", "a", value.KindInt)
	sc.add("t", "b", value.KindString)
	if ord, err := sc.resolve(&sql.ColRef{Table: "u", Column: "A"}); err != nil || ord != 1 {
		t.Errorf("qualified resolve = %d, %v", ord, err)
	}
	if _, err := sc.resolve(&sql.ColRef{Column: "a"}); err == nil {
		t.Error("ambiguous unqualified reference should fail")
	}
	if ord, err := sc.resolve(&sql.ColRef{Column: "b"}); err != nil || ord != 2 {
		t.Errorf("unqualified resolve = %d, %v", ord, err)
	}
	if _, err := sc.resolve(&sql.ColRef{Column: "zz"}); err == nil {
		t.Error("unknown column should fail")
	}
	joined := sc.concat(&scope{cols: []scopeColumn{{Qualifier: "v", Name: "c"}}})
	if len(joined.cols) != 4 {
		t.Errorf("concat length = %d", len(joined.cols))
	}
}

func TestAccessPathSelection(t *testing.T) {
	c := newTestCatalog(t)
	// Sargable predicate on the clustered leading column -> clustered seek.
	p := planFor(t, c, "SELECT day, user_id FROM events WHERE day = DATE '2008-03-01'")
	if !strings.Contains(p.Explain, "ClusteredSeek") {
		t.Errorf("expected clustered seek, got %s", p.Explain)
	}
	// Equality on the secondary index key, covered -> index seek.
	p = planFor(t, c, "SELECT user_id, amount FROM events WHERE user_id = 7")
	if !strings.Contains(p.Explain, "IndexSeek") {
		t.Errorf("expected covering index seek, got %s", p.Explain)
	}
	// No sargable predicate -> sequential scan.
	p = planFor(t, c, "SELECT COUNT(*) FROM events WHERE kind = 'click'")
	if !strings.Contains(p.Explain, "SeqScan") {
		t.Errorf("expected scan, got %s", p.Explain)
	}
	// Date coercion: string literal compared with a DATE column still seeks.
	p = planFor(t, c, "SELECT day FROM events WHERE day > '2008-06-01'")
	if !strings.Contains(p.Explain, "ClusteredSeek") {
		t.Errorf("expected clustered seek with coerced date, got %s", p.Explain)
	}
}

func TestPlansExecuteCorrectly(t *testing.T) {
	c := newTestCatalog(t)
	p := planFor(t, c, "SELECT user_id, COUNT(*), SUM(amount) FROM events WHERE day >= DATE '2008-01-01' GROUP BY user_id ORDER BY user_id LIMIT 10")
	rows, err := exec.Drain(p.Root)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	if p.Columns[0] != "user_id" {
		t.Errorf("columns = %v", p.Columns)
	}
	for i, r := range rows {
		if r[0].Int() != int64(i) {
			t.Errorf("row %d user_id = %v", i, r[0])
		}
		if r[1].Int() != 100 {
			t.Errorf("group %d count = %v, want 100", i, r[1])
		}
	}
	// Aggregation over the clustered order uses a stream aggregate.
	p = planFor(t, c, "SELECT day, COUNT(*) FROM events GROUP BY day")
	if !strings.Contains(p.Explain, "StreamAggregate") {
		t.Errorf("expected stream aggregate, got %s", p.Explain)
	}
	// Grouping on a non-prefix column falls back to hashing.
	p = planFor(t, c, "SELECT kind, COUNT(*) FROM events GROUP BY kind")
	if !strings.Contains(p.Explain, "HashAggregate") {
		t.Errorf("expected hash aggregate, got %s", p.Explain)
	}
}

// findScanEncodeCols digs the access-path operator out of a plan (behind
// Project/Filter wrappers) and returns its EncodeCols marking.
func findScanEncodeCols(op exec.Operator) []int {
	for {
		switch t := op.(type) {
		case *exec.Project:
			op = t.Input
		case *exec.Filter:
			op = t.Input
		default:
			goto unwrapped
		}
	}
unwrapped:
	switch s := op.(type) {
	case *exec.SeqScan:
		return s.EncodeCols
	case *exec.ClusteredSeek:
		return s.EncodeCols
	case *exec.IndexSeek:
		return s.EncodeCols
	default:
		return nil
	}
}

// TestPlannerMarksCompressedScans: access paths with a sort prefix are marked
// for compressed vector emission by default, and DisableCompressed turns the
// marking off.
func TestPlannerMarksCompressedScans(t *testing.T) {
	c := newTestCatalog(t)
	stmt, err := sql.ParseSelect("SELECT day, user_id FROM events WHERE day = DATE '2008-03-01'")
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlanner(c).PlanSelect(stmt)
	if err != nil {
		t.Fatal(err)
	}
	marked := findScanEncodeCols(p.Root)
	if len(marked) == 0 {
		t.Fatalf("clustered seek not marked for compressed emission (plan %s)", p.Explain)
	}
	if marked[0] != 0 {
		t.Errorf("leading marked position = %d, want 0 (day is the first produced column)", marked[0])
	}
	planner := NewPlanner(c)
	planner.DisableCompressed = true
	p, err = planner.PlanSelect(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if marked := findScanEncodeCols(p.Root); len(marked) != 0 {
		t.Errorf("DisableCompressed planner still marked %v", marked)
	}
}

func TestPlannerErrors(t *testing.T) {
	c := newTestCatalog(t)
	bad := []string{
		"SELECT missing FROM events",
		"SELECT day FROM nope",
		"SELECT day FROM events, events",
		"SELECT day FROM events WHERE SUM(amount) > 1",
		"SELECT day, amount FROM events GROUP BY day",
		"SELECT * FROM events GROUP BY day",
		"SELECT day FROM events HAVING COUNT(*) > 1 ",
		"SELECT day FROM events ORDER BY 99",
	}
	for _, q := range bad {
		stmt, err := sql.ParseSelect(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		if _, err := NewPlanner(c).PlanSelect(stmt); err == nil {
			t.Errorf("expected planning error for %q", q)
		}
	}
	// HAVING without aggregation is rejected at planning time.
	stmt, _ := sql.ParseSelect("SELECT day FROM events GROUP BY day HAVING kind > 'a'")
	if _, err := NewPlanner(c).PlanSelect(stmt); err == nil {
		t.Error("HAVING over non-grouped column should fail")
	}
}

func TestGroupPrefixOfOrdering(t *testing.T) {
	if !groupPrefixOfOrdering(nil, nil) {
		t.Error("empty group-by is always streamable")
	}
	if !groupPrefixOfOrdering([]int{1, 0}, []int{0, 1, 2}) {
		t.Error("permuted prefix should qualify")
	}
	if groupPrefixOfOrdering([]int{2}, []int{0, 1, 2}) {
		t.Error("non-prefix column should not qualify")
	}
	if groupPrefixOfOrdering([]int{0, 1}, []int{0}) {
		t.Error("ordering shorter than group-by should not qualify")
	}
}

func TestSargableConstraints(t *testing.T) {
	c := newTestCatalog(t)
	tbl, _ := c.Table("events")
	conjuncts := []sql.Expr{
		&sql.BinExpr{Op: ">", L: &sql.ColRef{Column: "day"}, R: &sql.Literal{Val: value.MustParseDate("2008-02-01")}},
		&sql.BinExpr{Op: "<=", L: &sql.Literal{Val: value.NewInt(10)}, R: &sql.ColRef{Column: "user_id"}},
		&sql.BetweenExpr{E: &sql.ColRef{Column: "amount"}, Lo: &sql.Literal{Val: value.NewInt(1)}, Hi: &sql.Literal{Val: value.NewInt(5)}},
		// Not sargable: column-to-column comparison.
		&sql.BinExpr{Op: "=", L: &sql.ColRef{Column: "user_id"}, R: &sql.ColRef{Column: "amount"}},
	}
	got := sargableConstraints(tbl, "events", conjuncts)
	if len(got) != 3 {
		t.Fatalf("constraints = %d, want 3", len(got))
	}
	day := got[tbl.ColumnIndex("day")]
	if day == nil || !day.hasLo || day.loIncl {
		t.Errorf("day constraint = %+v", day)
	}
	user := got[tbl.ColumnIndex("user_id")]
	if user == nil || !user.hasLo || !user.loIncl {
		t.Errorf("user_id constraint (flipped <=) = %+v", user)
	}
	amount := got[tbl.ColumnIndex("amount")]
	if amount == nil || !amount.hasLo || !amount.hasHi {
		t.Errorf("amount BETWEEN constraint = %+v", amount)
	}
}
