package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestMetricsCountersGaugesAndFuncs(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_total", "A counter.")
	g := r.NewGauge("test_gauge", "A gauge.")
	r.CounterFunc("test_fn_total", "Sampled counter.", func() int64 { return 42 })
	r.GaugeFunc("test_fn_gauge", "", func() int64 { return -7 })

	c.Inc()
	c.Add(4)
	g.Set(10)
	g.Inc()
	g.Dec()
	g.Add(-3)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP test_total A counter.",
		"# TYPE test_total counter",
		"test_total 5",
		"# TYPE test_gauge gauge",
		"test_gauge 7",
		"test_fn_total 42",
		"test_fn_gauge -7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// A metric registered with empty help must not emit a HELP line.
	if strings.Contains(out, "# HELP test_fn_gauge") {
		t.Errorf("HELP line emitted for help-less metric:\n%s", out)
	}
}

func TestMetricsHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.05, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 55.6; got != want {
		t.Fatalf("Sum = %g, want %g", got, want)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Buckets are cumulative: <=0.1 holds 2, <=1 holds 3, <=10 holds 4, +Inf 5.
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 2`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_sum 55.6",
		"lat_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestMetricsDuplicateNamePanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.NewGauge("dup_total", "")
}

func TestMetricsHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x_total", "").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Fatalf("body missing series:\n%s", rec.Body.String())
	}
}

// TestMetricsConcurrentUpdates hammers one histogram and counter from many
// goroutines while scraping, so `go test -race` proves the lock-free update
// paths and the renderer can interleave.
func TestMetricsConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("hits_total", "")
	h := r.NewHistogram("obs_seconds", "", DurationBuckets)
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(float64(i%100) / 1000)
				if i%500 == 0 {
					var b strings.Builder
					_ = r.WritePrometheus(&b)
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*per)
	}
}
