// Package obs is a dependency-free metrics registry: counters, gauges and
// histograms with atomic updates, plus callback metrics that sample existing
// subsystem statistics (plan cache, WAL, pager, admission control) at scrape
// time instead of requiring those subsystems to push. A Registry renders
// itself in the Prometheus text exposition format (version 0.0.4), so any
// Prometheus-compatible scraper — or curl — can consume it from the
// elephantd HTTP listener.
//
// Update paths are lock-free (one atomic add per Observe/Add), so operators
// and hot loops can record into a shared registry without contention;
// rendering takes no locks beyond the registration list's.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the rendered series to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket cumulative histogram (Prometheus semantics:
// each bucket counts observations <= its upper bound).
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.buckets) {
		h.buckets[i].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		sum := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(sum)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// DurationBuckets is a general-purpose latency bucket ladder in seconds,
// 100µs to ~100s.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100,
}

// metricKind is the TYPE line value for a registered metric.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// metric is one registered series.
type metric struct {
	name string
	help string
	kind metricKind
	// exactly one of these is set
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() int64
}

// Registry holds registered metrics and renders them on demand. Registration
// normally happens at startup; the zero Registry is ready to use.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	names   map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) register(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names == nil {
		r.names = make(map[string]bool)
	}
	if r.names[m.name] {
		panic(fmt.Sprintf("obs: duplicate metric %q", m.name))
	}
	r.names[m.name] = true
	r.metrics = append(r.metrics, m)
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, kind: kindCounter, counter: c})
	return c
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, kind: kindGauge, gauge: g})
	return g
}

// NewHistogram registers and returns a histogram with the given upper bounds
// (ascending; +Inf is implicit).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	h := &Histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds))}
	r.register(&metric{name: name, help: help, kind: kindHistogram, hist: h})
	return h
}

// CounterFunc registers a counter whose value is sampled from fn at scrape
// time — the bridge to subsystems that already keep their own counters
// (plan-cache stats, WAL stats, pager IOStats).
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.register(&metric{name: name, help: help, kind: kindCounter, fn: fn})
}

// GaugeFunc registers a gauge sampled from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	r.register(&metric{name: name, help: help, kind: kindGauge, fn: fn})
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	metrics := make([]*metric, len(r.metrics))
	copy(metrics, r.metrics)
	r.mu.Unlock()
	for _, m := range metrics {
		if m.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.kind); err != nil {
			return err
		}
		var err error
		switch {
		case m.counter != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.counter.Value())
		case m.gauge != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.gauge.Value())
		case m.fn != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.fn())
		case m.hist != nil:
			err = writeHistogram(w, m.name, m.hist)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, h *Histogram) error {
	var cum int64
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(b), cum); err != nil {
			return err
		}
	}
	count := h.Count()
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, count)
	return err
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Handler returns an http.Handler serving the registry in the text exposition
// format — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
