package wal_test

// Crash-recovery harness: run a concurrent insert workload over a durable
// engine on the fault-injecting filesystem, kill the filesystem at every
// mutating-operation boundary, recover (the kernel's page cache flushes an
// arbitrary subset of unsynced writes), reopen, and verify the durability
// contract:
//
//   - every acknowledged statement is fully present;
//   - every statement is atomic — a multi-row INSERT is all-there or
//     all-absent, never partial;
//   - every surviving row is intact (payload matches its key);
//   - the post-recovery data file passes every page checksum.
//
// The tests live in package wal_test (not wal) so they can drive the whole
// engine; the CI crash job selects them with -run Crash.

import (
	"fmt"
	"sync"
	"testing"

	"oldelephant/internal/engine"
	"oldelephant/internal/storage/faultfs"
)

const (
	crashWriters    = 4
	crashStmtsPerG  = 20
	crashKillPoints = 110 // acceptance floor is 100 distinct injection points
)

// crashWorkload opens a durable engine on fs and runs the concurrent insert
// workload: each statement inserts two rows (ids 2s and 2s+1 for statement
// s), so statement atomicity is observable. It returns the statements that
// were acknowledged (their WAL records reported durable). Failures are
// expected — the filesystem may die at any point.
func crashWorkload(fs *faultfs.FS) (acked map[int64]bool, tableAcked bool) {
	acked = make(map[int64]bool)
	eng, err := engine.Open(engine.Options{TupleOverhead: -1, FS: fs})
	if err != nil {
		return acked, false
	}
	defer func() { _ = eng.Close() }()
	if _, err := eng.Execute("CREATE TABLE kv (id INT, payload VARCHAR, PRIMARY KEY (id))"); err != nil {
		return acked, false
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < crashWriters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < crashStmtsPerG; i++ {
				s := int64(g*crashStmtsPerG + i)
				a, b := 2*s, 2*s+1
				stmt := fmt.Sprintf("INSERT INTO kv VALUES (%d, 'r-%d'), (%d, 'r-%d')", a, a, b, b)
				if _, err := eng.Execute(stmt); err != nil {
					return // dead filesystem or discarded commit: stop writing
				}
				mu.Lock()
				acked[s] = true
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	return acked, true
}

// readRows returns every (id, payload) in the recovered table, or nil when
// the table does not exist (a crash before CREATE TABLE became durable).
func readRows(t *testing.T, eng *engine.Engine) map[int64]string {
	t.Helper()
	res, err := eng.Query("SELECT id, payload FROM kv")
	if err != nil {
		if _, terr := eng.Catalog().Table("kv"); terr != nil {
			return nil // table legitimately absent
		}
		t.Fatalf("post-recovery scan failed: %v", err)
	}
	rows := make(map[int64]string, len(res.Rows))
	for _, r := range res.Rows {
		rows[r[0].Int()] = r[1].S
	}
	return rows
}

// verifyRecovered checks the durability contract for one recovered image.
func verifyRecovered(t *testing.T, kill int64, rfs *faultfs.FS, acked map[int64]bool, tableAcked bool) map[int64]string {
	t.Helper()
	eng, err := engine.Open(engine.Options{TupleOverhead: -1, FS: rfs})
	if err != nil {
		t.Fatalf("kill@%d: recovery failed: %v", kill, err)
	}
	defer func() {
		if err := eng.Close(); err != nil {
			t.Fatalf("kill@%d: close after recovery: %v", kill, err)
		}
	}()
	rows := readRows(t, eng)
	if rows == nil {
		if tableAcked {
			t.Fatalf("kill@%d: CREATE TABLE was acknowledged but the table is gone", kill)
		}
		if len(acked) > 0 {
			t.Fatalf("kill@%d: inserts acked without the table surviving", kill)
		}
		return nil
	}
	// Every acknowledged statement is fully present.
	for s := range acked {
		if _, ok := rows[2*s]; !ok {
			t.Fatalf("kill@%d: acked statement %d lost row %d", kill, s, 2*s)
		}
		if _, ok := rows[2*s+1]; !ok {
			t.Fatalf("kill@%d: acked statement %d lost row %d", kill, s, 2*s+1)
		}
	}
	// Every surviving row is intact and its statement is atomic.
	for id, payload := range rows {
		if want := fmt.Sprintf("r-%d", id); payload != want {
			t.Fatalf("kill@%d: row %d has payload %q, want %q", kill, id, payload, want)
		}
		if _, ok := rows[id^1]; !ok {
			t.Fatalf("kill@%d: statement %d is half-present (row %d without %d)", kill, id/2, id, id^1)
		}
	}
	// The recovery checkpoint rewrote the data file; every checksum holds.
	corrupt, err := eng.Pager().VerifyChecksums(rfs, "elephant.data")
	if err != nil {
		t.Fatalf("kill@%d: checksum verification: %v", kill, err)
	}
	if len(corrupt) > 0 {
		t.Fatalf("kill@%d: pages %v fail their checksums after recovery", kill, corrupt)
	}
	return rows
}

// TestCrashRecoveryMatrix is the randomized kill-mid-commit test: it first
// measures the workload's total mutating-op count, then re-runs it killing
// the filesystem at >= 100 distinct operation boundaries spread across the
// whole run (each with a different torn-write/page-cache-loss randomization)
// and verifies the durability contract after every recovery.
func TestCrashRecoveryMatrix(t *testing.T) {
	probe := faultfs.New(0)
	crashWorkload(probe)
	total := probe.OpCount()
	if total < crashKillPoints {
		t.Fatalf("workload performs only %d mutating ops; need >= %d kill points", total, crashKillPoints)
	}
	step := total / crashKillPoints
	if step < 1 {
		step = 1
	}
	points := 0
	for kill := int64(1); kill <= total; kill += step {
		points++
		fs := faultfs.New(kill) // distinct torn-write randomization per point
		fs.SetKillAt(kill)
		acked, tableAcked := crashWorkload(fs)
		rfs := fs.Recovered()
		verifyRecovered(t, kill, rfs, acked, tableAcked)
	}
	if points < 100 {
		t.Fatalf("only %d injection points exercised, want >= 100", points)
	}
	t.Logf("%d injection points across %d mutating ops", points, total)
}

// TestCrashRecoveryIdempotence: recovering the same crash image twice yields
// identical contents (page-image redo is idempotent), and the recovered
// database is row-for-row equal to an in-memory oracle engine replaying the
// statements the recovered image contains.
func TestCrashRecoveryIdempotence(t *testing.T) {
	fs := faultfs.New(42)
	fs.SetKillAt(90) // mid-workload, after the table exists
	acked, tableAcked := crashWorkload(fs)
	crash := fs.Recovered()
	twin := crash.Clone()

	rows1 := verifyRecovered(t, 90, crash, acked, tableAcked)
	rows2 := verifyRecovered(t, 90, twin, acked, tableAcked)
	if len(rows1) != len(rows2) {
		t.Fatalf("two recoveries of one crash image differ: %d vs %d rows", len(rows1), len(rows2))
	}
	for id, payload := range rows1 {
		if rows2[id] != payload {
			t.Fatalf("row %d differs between recoveries: %q vs %q", id, payload, rows2[id])
		}
	}
	if len(rows1) == 0 {
		t.Skip("crash image recovered to an empty database; nothing to cross-check")
	}

	// Differential oracle: an in-memory row-at-a-time engine fed the same
	// statements must serve exactly the same table.
	oracle := engine.New(engine.Options{TupleOverhead: -1, DisableVectorized: true})
	if _, err := oracle.Execute("CREATE TABLE kv (id INT, payload VARCHAR, PRIMARY KEY (id))"); err != nil {
		t.Fatal(err)
	}
	for id, payload := range rows1 {
		if id%2 != 0 {
			continue // statements insert (2s, 2s+1); replay per statement
		}
		stmt := fmt.Sprintf("INSERT INTO kv VALUES (%d, '%s'), (%d, 'r-%d')", id, payload, id+1, id+1)
		if _, err := oracle.Execute(stmt); err != nil {
			t.Fatal(err)
		}
	}
	// Re-open the crash image once more and diff the full ordered result sets.
	eng, err := engine.Open(engine.Options{TupleOverhead: -1, FS: twin})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	got, err := eng.Query("SELECT id, payload FROM kv ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	want, err := oracle.Query("SELECT id, payload FROM kv ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("recovered engine has %d rows, oracle %d", len(got.Rows), len(want.Rows))
	}
	for i := range got.Rows {
		if got.Rows[i][0].Int() != want.Rows[i][0].Int() || got.Rows[i][1].S != want.Rows[i][1].S {
			t.Fatalf("row %d: recovered (%v, %q) vs oracle (%v, %q)", i,
				got.Rows[i][0], got.Rows[i][1].S, want.Rows[i][0], want.Rows[i][1].S)
		}
	}
}
