package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"oldelephant/internal/storage"
	"oldelephant/internal/storage/faultfs"
)

func pageImage(id storage.PageID, fill byte) PageImage {
	data := make([]byte, storage.PageSize)
	for i := range data {
		data[i] = fill
	}
	return PageImage{ID: id, Data: data}
}

func TestWALRoundTrip(t *testing.T) {
	fs := faultfs.New(1)
	w, err := Open(fs, "wal", nil)
	if err != nil {
		t.Fatal(err)
	}
	lsn1 := w.Append([]PageImage{pageImage(1, 0xAA), pageImage(2, 0xBB)}, []byte("meta1"), 1, "stmt one")
	lsn2 := w.Append([]PageImage{pageImage(1, 0xCC)}, []byte("meta2"), 2, "stmt two")
	if lsn2 != lsn1+1 {
		t.Fatalf("lsns not consecutive: %d, %d", lsn1, lsn2)
	}
	if err := w.WaitDurable(lsn2); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var commits []*Commit
	w2, err := Open(fs, "wal", func(c *Commit) error {
		cp := *c
		commits = append(commits, &cp)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(commits) != 2 {
		t.Fatalf("replayed %d commits, want 2", len(commits))
	}
	if commits[0].LSN != lsn1 || commits[1].LSN != lsn2 {
		t.Errorf("replay lsns = %d, %d", commits[0].LSN, commits[1].LSN)
	}
	if len(commits[0].Pages) != 2 || commits[0].Pages[0].Data[0] != 0xAA {
		t.Errorf("commit 1 pages wrong: %d images", len(commits[0].Pages))
	}
	if string(commits[1].Meta) != "meta2" || commits[1].StmtKind != 2 || commits[1].Info != "stmt two" {
		t.Errorf("commit 2 logical fields wrong: %q %d %q", commits[1].Meta, commits[1].StmtKind, commits[1].Info)
	}
	// New appends continue above the replayed LSNs.
	if lsn3 := w2.Append(nil, []byte("m"), 1, "x"); lsn3 != lsn2+1 {
		t.Errorf("post-replay lsn = %d, want %d", lsn3, lsn2+1)
	}
}

func TestWALTornTailDiscarded(t *testing.T) {
	fs := faultfs.New(2)
	w, err := Open(fs, "wal", nil)
	if err != nil {
		t.Fatal(err)
	}
	lsn := w.Append([]PageImage{pageImage(1, 0x11)}, []byte("good"), 1, "ok")
	if err := w.WaitDurable(lsn); err != nil {
		t.Fatal(err)
	}
	goodSize := w.Size()
	w.Close()

	// Corrupt the tail by appending garbage (a torn frame).
	f, err := fs.OpenFile("wal")
	if err != nil {
		t.Fatal(err)
	}
	garbage := make([]byte, 100)
	binary.LittleEndian.PutUint32(garbage[0:4], 92) // plausible length, bad CRC
	if _, err := f.WriteAt(garbage, goodSize); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	n := 0
	w2, err := Open(fs, "wal", func(c *Commit) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if n != 1 {
		t.Fatalf("replayed %d commits, want 1 (torn tail discarded)", n)
	}
	if w2.Size() != goodSize {
		t.Errorf("log size %d after discard, want %d", w2.Size(), goodSize)
	}
}

// TestWALCommitGroupAtomic: a commit group whose commit frame never made it
// to disk must not be applied at all, even though its page frames are intact.
func TestWALCommitGroupAtomic(t *testing.T) {
	fs := faultfs.New(3)
	w, err := Open(fs, "wal", nil)
	if err != nil {
		t.Fatal(err)
	}
	lsn1 := w.Append([]PageImage{pageImage(1, 0x11)}, []byte("one"), 1, "a")
	w.Append([]PageImage{pageImage(2, 0x22)}, []byte("two"), 1, "b")
	if err := w.WaitDurable(lsn1); err != nil { // both become durable (batched)
		t.Fatal(err)
	}
	size := w.Size()
	w.Close()

	// Chop the file mid-way into the second group: keep the first group plus
	// a bit of the second's pages frame.
	f, _ := fs.OpenFile("wal")
	if err := f.Truncate(size - 20); err != nil {
		t.Fatal(err)
	}
	f.Sync()
	f.Close()

	var lsns []int64
	w2, err := Open(fs, "wal", func(c *Commit) error { lsns = append(lsns, c.LSN); return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(lsns) != 1 || lsns[0] != lsn1 {
		t.Fatalf("replayed lsns %v, want just %d", lsns, lsn1)
	}
}

func TestWALGroupCommitBatchesFsyncs(t *testing.T) {
	fs := faultfs.New(4)
	// Without simulated fsync latency there is no window to batch in.
	fs.SetSyncDelay(time.Millisecond)
	w, err := Open(fs, "wal", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	const writers = 8
	const perWriter = 25
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				mu.Lock() // stands in for the engine's writer lock
				lsn := w.Append([]PageImage{pageImage(storage.PageID(g+1), byte(i))}, []byte("m"), 1, fmt.Sprintf("w%d-%d", g, i))
				mu.Unlock()
				if err := w.WaitDurable(lsn); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	s := w.Stats()
	if s.Commits != writers*perWriter {
		t.Fatalf("commits = %d, want %d", s.Commits, writers*perWriter)
	}
	if s.Syncs >= s.Commits {
		t.Errorf("group commit did not batch: %d syncs for %d commits", s.Syncs, s.Commits)
	}
	t.Logf("fsyncs/commit = %.3f (%d syncs, %d commits)", float64(s.Syncs)/float64(s.Commits), s.Syncs, s.Commits)
}

func TestWALSyncFailureDiscardsPending(t *testing.T) {
	fs := faultfs.New(5)
	w, err := Open(fs, "wal", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	lsn1 := w.Append([]PageImage{pageImage(1, 0x01)}, []byte("a"), 1, "a")
	if err := w.WaitDurable(lsn1); err != nil {
		t.Fatal(err)
	}
	fs.FailNextSyncs(1)
	lsn2 := w.Append([]PageImage{pageImage(2, 0x02)}, []byte("b"), 1, "b")
	if err := w.WaitDurable(lsn2); err == nil {
		t.Fatal("expected WaitDurable to fail on injected fsync error")
	}
	if got := w.DiscardedLSN(); got < lsn2 {
		t.Errorf("DiscardedLSN = %d, want >= %d", got, lsn2)
	}
	// A waiter for the discarded LSN gets ErrDiscarded, not a hang.
	if err := w.WaitDurable(lsn2); !errors.Is(err, ErrDiscarded) {
		t.Errorf("re-wait = %v, want ErrDiscarded", err)
	}
	// The log recovers: the next commit succeeds and replay sees exactly the
	// durable commits.
	lsn3 := w.Append([]PageImage{pageImage(3, 0x03)}, []byte("c"), 1, "c")
	if err := w.WaitDurable(lsn3); err != nil {
		t.Fatalf("commit after transient failure: %v", err)
	}
	w.Close()
	var infos []string
	w2, err := Open(fs, "wal", func(c *Commit) error { infos = append(infos, c.Info); return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(infos) != 2 || infos[0] != "a" || infos[1] != "c" {
		t.Errorf("replayed %v, want [a c] (discarded b absent)", infos)
	}
}

func TestWALTruncate(t *testing.T) {
	fs := faultfs.New(6)
	w, err := Open(fs, "wal", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	lsn := w.Append([]PageImage{pageImage(1, 0x01)}, []byte("a"), 1, "a")
	if err := w.WaitDurable(lsn); err != nil {
		t.Fatal(err)
	}
	if err := w.Truncate(); err != nil {
		t.Fatal(err)
	}
	if w.Size() != 0 {
		t.Errorf("size %d after truncate", w.Size())
	}
	// LSNs stay monotonic across truncation.
	if lsn2 := w.Append(nil, []byte("b"), 1, "b"); lsn2 != lsn+1 {
		t.Errorf("post-truncate lsn = %d, want %d", lsn2, lsn+1)
	}
}

func TestWALLargeStatementSplitsFrames(t *testing.T) {
	fs := faultfs.New(7)
	w, err := Open(fs, "wal", nil)
	if err != nil {
		t.Fatal(err)
	}
	// More pages than pagesPerFrame forces multiple kindPages frames.
	images := make([]PageImage, pagesPerFrame+13)
	for i := range images {
		images[i] = pageImage(storage.PageID(i+1), byte(i))
	}
	lsn := w.Append(images, []byte("big"), 3, "bulk")
	if err := w.WaitDurable(lsn); err != nil {
		t.Fatal(err)
	}
	w.Close()
	var got *Commit
	w2, err := Open(fs, "wal", func(c *Commit) error { cp := *c; got = &cp; return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got == nil || len(got.Pages) != len(images) {
		t.Fatalf("replayed commit has %d pages, want %d", len(got.Pages), len(images))
	}
	for i, img := range got.Pages {
		if img.ID != images[i].ID || img.Data[0] != images[i].Data[0] {
			t.Fatalf("page %d mismatch after split-frame replay", i)
		}
	}
}
