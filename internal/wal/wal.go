// Package wal implements the write-ahead log behind the engine's durability:
// physical redo records (full page images) plus logical records (the catalog
// meta snapshot and a commit marker describing the statement), group commit
// with a single fsync leader batching concurrent committers, torn-tail
// detection on replay, and truncation at checkpoints.
//
// On-disk format: a sequence of frames, each
//
//	[4B payload length][4B CRC32-C of payload][payload]
//
// where payload = [1B record kind][8B LSN][body]. One committed statement is
// a *commit group* of three frames sharing an LSN:
//
//	kindPages  body = [4B n] then n × ([8B page id][4B len][page image])
//	kindMeta   body = catalog+views meta snapshot after the statement
//	kindCommit body = [1B statement kind][info string]
//
// Replay applies a group only when all three frames are intact (the commit
// frame is the group's atomicity point); a torn or short tail frame ends
// replay and is discarded by truncating the log back to the last complete
// group. Page-image redo is idempotent, so replaying the same log twice —
// e.g. after a crash during recovery — converges to identical state.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"oldelephant/internal/storage"
)

const (
	kindPages  byte = 1
	kindMeta   byte = 2
	kindCommit byte = 3

	frameHeaderSize = 8
	// maxFrameSize bounds a single frame so a corrupt length field cannot ask
	// replay to allocate gigabytes. Page groups of a huge statement are split
	// into several kindPages frames well below this.
	maxFrameSize = 64 << 20
	// pagesPerFrame bounds how many page images share one kindPages frame.
	pagesPerFrame = 512
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrDiscarded is returned to committers whose statement's log records were
// thrown away because a log write or fsync failed before they became durable.
var ErrDiscarded = errors.New("wal: commit discarded after log write failure")

// PageImage is one physical redo record: the full content of a page.
type PageImage struct {
	ID   storage.PageID
	Data []byte
}

// Commit is one replayed commit group.
type Commit struct {
	LSN      int64
	Pages    []PageImage
	Meta     []byte
	StmtKind byte
	Info     string
}

// Stats counts the group-commit behaviour; the benchmark harness derives
// fsyncs/commit from it.
type Stats struct {
	// Commits is the number of commit groups appended.
	Commits int64
	// Syncs is the number of fsyncs issued by group-commit leaders.
	Syncs int64
	// BytesWritten is the total log bytes written.
	BytesWritten int64
	// Aborts is the number of DiscardPending calls: commit batches dropped
	// after a mid-statement failure instead of being made durable.
	Aborts int64
}

// WAL is the write-ahead log of one engine instance.
//
// Concurrency model: Append runs under the engine's exclusive writer lock, so
// appends are serialized. WaitDurable is called after that lock is released;
// concurrent waiters elect a leader that writes and fsyncs everything pending
// (group commit) while the rest block on their LSN. A failed write or fsync
// discards every pending record — the engine pairs that with rolling back the
// corresponding statements — and fails their waiters with ErrDiscarded.
type WAL struct {
	mu   sync.Mutex
	cond *sync.Cond

	f       storage.File
	nextLSN int64

	// pending is the serialized frames appended but not yet written+synced.
	pending []byte
	// pendingLSN is the highest LSN in pending (0 = none).
	pendingLSN int64
	// durableLSN is the highest LSN known durable on disk.
	durableLSN int64
	// durableOff is the file offset of the end of the durable prefix.
	durableOff int64
	// syncing is true while a leader is inside write+fsync.
	syncing bool
	// discardedBelow fails waiters with LSN <= it (set on write failure).
	discardedBelow int64

	stats Stats
}

// Open opens (or creates) the log at path, replays every complete commit
// group through apply in LSN order, and truncates any torn tail so the next
// append lands at the end of the durable prefix. apply may be nil to discard.
func Open(fsys storage.FS, path string, apply func(c *Commit) error) (*WAL, error) {
	f, err := fsys.OpenFile(path)
	if err != nil {
		return nil, err
	}
	w := &WAL{f: f, nextLSN: 1}
	w.cond = sync.NewCond(&w.mu)
	if err := w.replay(apply); err != nil {
		f.Close()
		return nil, err
	}
	// Drop the torn tail (and position appends) by truncating to the end of
	// the last complete commit group.
	if err := f.Truncate(w.durableOff); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// replay scans the log, applying complete commit groups. It stops at the
// first frame that is short, oversized, or fails its checksum — the torn
// tail — and records the end offset of the last complete group.
func (w *WAL) replay(apply func(c *Commit) error) error {
	size, err := w.f.Size()
	if err != nil {
		return err
	}
	var (
		off     int64
		hdr     [frameHeaderSize]byte
		cur     *Commit
		groupOK int64 // offset after the last applied commit frame
		lastLSN int64
	)
scan:
	for off+frameHeaderSize <= size {
		if _, err := w.f.ReadAt(hdr[:], off); err != nil {
			break
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if n < 9 || n > maxFrameSize || off+frameHeaderSize+int64(n) > size {
			break // torn or garbage length
		}
		payload := make([]byte, n)
		if _, err := w.f.ReadAt(payload, off+frameHeaderSize); err != nil {
			break
		}
		if crc32.Checksum(payload, crcTable) != want {
			break // torn write inside the frame
		}
		kind := payload[0]
		lsn := int64(binary.LittleEndian.Uint64(payload[1:9]))
		body := payload[9:]
		off += frameHeaderSize + int64(n)
		if cur == nil || cur.LSN != lsn {
			cur = &Commit{LSN: lsn}
		}
		switch kind {
		case kindPages:
			images, err := decodePages(body)
			if err != nil {
				break scan // treat a malformed body as a torn tail
			}
			cur.Pages = append(cur.Pages, images...)
		case kindMeta:
			cur.Meta = append([]byte(nil), body...)
		case kindCommit:
			if len(body) < 1 {
				break scan
			}
			cur.StmtKind = body[0]
			cur.Info = string(body[1:])
			if apply != nil {
				if err := apply(cur); err != nil {
					return err
				}
			}
			groupOK = off
			lastLSN = lsn
			cur = nil
		default:
			// Unknown kind: future format. Stop replay here (torn-tail rule).
			break scan
		}
	}
	w.durableOff = groupOK
	w.durableLSN = lastLSN
	w.nextLSN = lastLSN + 1
	return nil
}

func decodePages(body []byte) ([]PageImage, error) {
	if len(body) < 4 {
		return nil, fmt.Errorf("wal: short pages body")
	}
	n := int(binary.LittleEndian.Uint32(body[:4]))
	body = body[4:]
	out := make([]PageImage, 0, n)
	for i := 0; i < n; i++ {
		if len(body) < 12 {
			return nil, fmt.Errorf("wal: short page image header")
		}
		id := storage.PageID(binary.LittleEndian.Uint64(body[0:8]))
		sz := int(binary.LittleEndian.Uint32(body[8:12]))
		body = body[12:]
		if len(body) < sz {
			return nil, fmt.Errorf("wal: short page image")
		}
		out = append(out, PageImage{ID: id, Data: body[:sz]})
		body = body[sz:]
	}
	return out, nil
}

func (w *WAL) appendFrame(kind byte, lsn int64, body []byte) {
	payload := make([]byte, 9+len(body))
	payload[0] = kind
	binary.LittleEndian.PutUint64(payload[1:9], uint64(lsn))
	copy(payload[9:], body)
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	w.pending = append(w.pending, hdr[:]...)
	w.pending = append(w.pending, payload...)
}

// Append serializes one statement's commit group — page images (copied), the
// meta snapshot, and the commit marker — into the pending buffer and returns
// its LSN. It must run under the engine's writer lock (appends are ordered);
// the data is copied immediately, so the caller may mutate pages afterwards.
// Durability happens later, in WaitDurable.
func (w *WAL) Append(pages []PageImage, meta []byte, stmtKind byte, info string) int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	lsn := w.nextLSN
	w.nextLSN++
	for start := 0; start == 0 || start < len(pages); start += pagesPerFrame {
		chunk := pages[start:min(start+pagesPerFrame, len(pages))]
		body := make([]byte, 4, 4+len(chunk)*(12+storage.PageSize))
		binary.LittleEndian.PutUint32(body[:4], uint32(len(chunk)))
		for _, img := range chunk {
			var ph [12]byte
			binary.LittleEndian.PutUint64(ph[0:8], uint64(img.ID))
			binary.LittleEndian.PutUint32(ph[8:12], uint32(len(img.Data)))
			body = append(body, ph[:]...)
			body = append(body, img.Data...)
		}
		w.appendFrame(kindPages, lsn, body)
	}
	w.appendFrame(kindMeta, lsn, meta)
	commitBody := make([]byte, 1+len(info))
	commitBody[0] = stmtKind
	copy(commitBody[1:], info)
	w.appendFrame(kindCommit, lsn, commitBody)
	w.pendingLSN = lsn
	w.stats.Commits++
	return lsn
}

// WaitDurable blocks until the commit group with the given LSN is durable on
// disk, electing the caller as the fsync leader when none is active: the
// leader writes and fsyncs everything pending — batching every concurrent
// committer's records into one fsync (group commit). A write or fsync
// failure discards all pending records (the log is truncated back to its
// durable prefix) and fails every affected waiter; the engine responds by
// rolling back the corresponding statements.
func (w *WAL) WaitDurable(lsn int64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		if lsn <= w.durableLSN {
			return nil
		}
		if lsn <= w.discardedBelow {
			return ErrDiscarded
		}
		if !w.syncing {
			break // become the leader
		}
		w.cond.Wait()
	}
	// Leader: take the pending batch, release the lock while doing I/O so
	// later committers can queue more records behind us.
	batch := w.pending
	batchLSN := w.pendingLSN
	off := w.durableOff
	w.pending = nil
	w.syncing = true
	w.mu.Unlock()

	var err error
	if len(batch) > 0 {
		if _, werr := w.f.WriteAt(batch, off); werr != nil {
			err = werr
		} else if serr := w.f.Sync(); serr != nil {
			err = serr
		}
	}

	w.mu.Lock()
	w.syncing = false
	if err != nil {
		// The batch (and anything queued behind it while we were writing) is
		// no longer trustworthy: drop it all, rewind the file to the durable
		// prefix, and fail every waiter above the durable LSN.
		w.pending = nil
		w.discardedBelow = w.nextLSN - 1
		w.pendingLSN = 0
		_ = w.f.Truncate(w.durableOff)
		w.cond.Broadcast()
		return fmt.Errorf("wal: commit not durable: %w", err)
	}
	if len(batch) > 0 {
		w.stats.Syncs++
		w.stats.BytesWritten += int64(len(batch))
		w.durableOff = off + int64(len(batch))
		w.durableLSN = batchLSN
	}
	w.cond.Broadcast()
	if lsn <= w.durableLSN {
		return nil
	}
	if lsn <= w.discardedBelow {
		return ErrDiscarded
	}
	// A rare race: our own records were taken by an earlier leader whose sync
	// failed after we queued. Loop again via recursion-free retry.
	w.mu.Unlock()
	err = w.WaitDurable(lsn)
	w.mu.Lock()
	return err
}

// SyncAll forces everything appended so far durable (checkpoint step 1).
func (w *WAL) SyncAll() error {
	w.mu.Lock()
	lsn := w.pendingLSN
	if lsn == 0 {
		lsn = w.durableLSN
	}
	w.mu.Unlock()
	if lsn == 0 {
		return nil
	}
	return w.WaitDurable(lsn)
}

// DiscardPending drops all appended-but-not-durable records without writing
// them, failing their waiters. The engine calls it while rolling back the
// corresponding statements after a mid-statement failure.
func (w *WAL) DiscardPending() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.stats.Aborts++
	w.pending = nil
	w.pendingLSN = 0
	w.discardedBelow = w.nextLSN - 1
	_ = w.f.Truncate(w.durableOff)
	w.cond.Broadcast()
}

// Truncate empties the log (checkpoint final step: the data file and meta
// now cover everything the log did). LSNs keep increasing monotonically.
func (w *WAL) Truncate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.pending) > 0 {
		return fmt.Errorf("wal: truncate with pending records")
	}
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.durableOff = 0
	return nil
}

// Size returns the current durable log size in bytes (pending excluded).
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.durableOff
}

// DurableLSN returns the highest LSN known durable.
func (w *WAL) DurableLSN() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.durableLSN
}

// DiscardedLSN returns the highest LSN whose records were discarded after a
// log failure (0 when nothing was ever discarded). Commits at or below it
// never became durable; the engine rolls their statements back.
func (w *WAL) DiscardedLSN() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.discardedBelow
}

// Stats returns a snapshot of the group-commit counters.
func (w *WAL) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// ResetStats zeroes the group-commit counters (benchmark harness use).
func (w *WAL) ResetStats() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.stats = Stats{}
}

// Close closes the log file without syncing.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}
