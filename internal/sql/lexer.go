// Package sql implements the SQL front end of the engine: a lexer, an AST
// and a recursive-descent parser for the subset of SQL used by the paper's
// workload and its rewritings — SELECT with joins (comma-style and JOIN ...
// ON), derived tables, WHERE with AND/OR/BETWEEN/IN, GROUP BY, HAVING,
// ORDER BY, LIMIT, aggregate functions, plus the DDL used by the physical
// designs (CREATE TABLE / INDEX / MATERIALIZED VIEW), INSERT ... VALUES and
// optimizer hints in an OPTION(...) clause.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexer tokens.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokOperator // = <> != < <= > >= + - * / ( ) , . ;
)

// Token is one lexical token with its position (1-based byte offset) for
// error reporting.
type Token struct {
	Kind TokenKind
	Text string // keywords are upper-cased, identifiers keep their case
	Pos  int
}

// keywords recognized by the lexer. Anything else alphanumeric is an identifier.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "ASC": true, "DESC": true, "LIMIT": true,
	"OFFSET": true, "AND": true, "OR": true, "NOT": true, "BETWEEN": true,
	"IN": true, "IS": true, "NULL": true, "AS": true, "CREATE": true,
	"TABLE": true, "INDEX": true, "UNIQUE": true, "CLUSTERED": true,
	"NONCLUSTERED": true, "MATERIALIZED": true, "VIEW": true, "INSERT": true,
	"INTO": true, "VALUES": true, "ON": true, "INCLUDE": true, "PRIMARY": true,
	"KEY": true, "DATE": true, "DROP": true, "DISTINCT": true, "OPTION": true,
	"JOIN": true, "INNER": true, "CROSS": true, "TRUE": true, "FALSE": true,
	"EXPLAIN": true, "ANALYZE": true,
}

// Lex tokenizes a SQL string. It returns an error for unterminated strings
// or unexpected characters.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			// Line comment.
			for i < n && input[i] != '\n' {
				i++
			}
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(input[i])) {
				i++
			}
			word := input[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, Token{Kind: TokKeyword, Text: upper, Pos: start + 1})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: word, Pos: start + 1})
			}
		case c >= '0' && c <= '9':
			start := i
			seenDot := false
			for i < n && (input[i] >= '0' && input[i] <= '9' || (input[i] == '.' && !seenDot)) {
				if input[i] == '.' {
					seenDot = true
				}
				i++
			}
			toks = append(toks, Token{Kind: TokNumber, Text: input[start:i], Pos: start + 1})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated string literal at position %d", start+1)
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Pos: start + 1})
		case strings.ContainsRune("=<>!+-*/(),.;", rune(c)):
			start := i
			op := string(c)
			if i+1 < n {
				two := input[i : i+2]
				if two == "<=" || two == ">=" || two == "<>" || two == "!=" {
					op = two
				}
			}
			i += len(op)
			toks = append(toks, Token{Kind: TokOperator, Text: op, Pos: start + 1})
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at position %d", c, i+1)
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Text: "", Pos: n + 1})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '$'
}
