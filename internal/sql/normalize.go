package sql

import "strings"

// Normalize canonicalizes a SQL statement's text for use as a plan-cache
// key: outside single-quoted string literals it lower-cases ASCII letters,
// collapses every run of whitespace to a single space, and drops "--" line
// comments exactly like the lexer does (a comment and the newline ending it
// normalize to one space, so commented and uncommented spellings of one
// statement share a key while a comment can never swallow differing text
// into an identical key); literals are preserved byte for byte (including
// ” escapes); leading/trailing whitespace and a trailing semicolon are
// dropped. Two spellings of the same statement that differ only in
// keyword/identifier case, whitespace or comments therefore share a cache
// entry, while statements the lexer would tokenize differently never
// collide. It is purely textual — no parsing — so it costs one pass over
// the input.
func Normalize(input string) string {
	var b strings.Builder
	b.Grow(len(input))
	inString := false
	pendingSpace := false
	for i := 0; i < len(input); i++ {
		c := input[i]
		if inString {
			b.WriteByte(c)
			if c == '\'' {
				// A doubled quote stays inside the literal.
				if i+1 < len(input) && input[i+1] == '\'' {
					b.WriteByte('\'')
					i++
				} else {
					inString = false
				}
			}
			continue
		}
		switch {
		case c == '-' && i+1 < len(input) && input[i+1] == '-':
			// Line comment: skip to end of line; the comment (and its
			// terminating newline, if any) reads as whitespace.
			for i < len(input) && input[i] != '\n' {
				i++
			}
			i-- // the loop increment consumes the newline (or ends the input)
			pendingSpace = true
		case c == '\'':
			if pendingSpace && b.Len() > 0 {
				b.WriteByte(' ')
			}
			pendingSpace = false
			inString = true
			b.WriteByte(c)
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			pendingSpace = true
		default:
			if pendingSpace && b.Len() > 0 {
				b.WriteByte(' ')
			}
			pendingSpace = false
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			b.WriteByte(c)
		}
	}
	out := b.String()
	for strings.HasSuffix(out, ";") {
		out = strings.TrimRight(strings.TrimSuffix(out, ";"), " \t\n\r")
	}
	return out
}
