package sql

import (
	"strings"
	"testing"

	"oldelephant/internal/value"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT l_suppkey, COUNT(*) FROM lineitem WHERE l_shipdate > DATE '1995-06-01' -- comment\n GROUP BY l_suppkey;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokKeyword || toks[0].Text != "SELECT" {
		t.Errorf("first token = %+v", toks[0])
	}
	var kinds []TokenKind
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
	}
	if kinds[len(kinds)-1] != TokEOF {
		t.Error("missing EOF token")
	}
	// Strings with escaped quotes.
	toks, err = Lex("'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokString || toks[0].Text != "it's" {
		t.Errorf("escaped string = %+v", toks[0])
	}
	// Errors.
	if _, err := Lex("'unterminated"); err == nil {
		t.Error("unterminated string should fail")
	}
	if _, err := Lex("SELECT @x"); err == nil {
		t.Error("unexpected character should fail")
	}
	// Two-char operators.
	toks, _ = Lex("a <= b >= c <> d != e")
	var ops []string
	for _, tok := range toks {
		if tok.Kind == TokOperator {
			ops = append(ops, tok.Text)
		}
	}
	want := []string{"<=", ">=", "<>", "!="}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("operator %d = %q, want %q", i, ops[i], want[i])
		}
	}
}

func TestParseQ1StyleQuery(t *testing.T) {
	stmt, err := ParseSelect(`
		SELECT l_shipdate, COUNT(*)
		FROM lineitem
		WHERE l_shipdate > DATE '1995-06-01'
		GROUP BY l_shipdate`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Select) != 2 {
		t.Fatalf("select items = %d", len(stmt.Select))
	}
	if fc, ok := stmt.Select[1].Expr.(*FuncCall); !ok || !fc.Star || fc.Name != "COUNT" {
		t.Errorf("second item should be COUNT(*), got %v", stmt.Select[1].Expr)
	}
	if len(stmt.From) != 1 || stmt.From[0].Table != "lineitem" {
		t.Errorf("from = %v", stmt.From)
	}
	be, ok := stmt.Where.(*BinExpr)
	if !ok || be.Op != ">" {
		t.Fatalf("where = %v", stmt.Where)
	}
	lit, ok := be.R.(*Literal)
	if !ok || lit.Val.Kind != value.KindDate {
		t.Errorf("date literal not parsed: %v", be.R)
	}
	if len(stmt.GroupBy) != 1 {
		t.Errorf("group by = %v", stmt.GroupBy)
	}
	if stmt.Limit != -1 {
		t.Errorf("limit should default to -1")
	}
}

func TestParseJoinQueryWithAliases(t *testing.T) {
	stmt, err := ParseSelect(`
		SELECT c_nationkey, SUM(l_extendedprice)
		FROM lineitem, orders, customer
		WHERE l_orderkey = o_orderkey AND o_custkey = c_custkey AND l_returnflag = 'R'
		GROUP BY c_nationkey`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.From) != 3 {
		t.Fatalf("from list = %v", stmt.From)
	}
	// The WHERE clause should be a tree of three conjuncts.
	count := countConjuncts(stmt.Where)
	if count != 3 {
		t.Errorf("conjuncts = %d, want 3", count)
	}
}

func countConjuncts(e Expr) int {
	if b, ok := e.(*BinExpr); ok && b.Op == "AND" {
		return countConjuncts(b.L) + countConjuncts(b.R)
	}
	return 1
}

func TestParseExplicitJoinFoldsIntoWhere(t *testing.T) {
	stmt, err := ParseSelect(`
		SELECT o_orderdate, MAX(l_shipdate)
		FROM lineitem INNER JOIN orders ON l_orderkey = o_orderkey
		WHERE o_orderdate > DATE '1995-01-01'
		GROUP BY o_orderdate`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.From) != 2 {
		t.Fatalf("explicit join should produce two FROM entries, got %d", len(stmt.From))
	}
	if countConjuncts(stmt.Where) != 2 {
		t.Errorf("ON predicate should be merged into WHERE")
	}
	// CROSS JOIN also folds in.
	stmt, err = ParseSelect("SELECT a FROM t1 CROSS JOIN t2")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.From) != 2 {
		t.Errorf("cross join FROM entries = %d", len(stmt.From))
	}
}

func TestParseDerivedTableAndBetween(t *testing.T) {
	// This is the shape of the paper's optimized Q3 rewriting.
	stmt, err := ParseSelect(`
		SELECT T1.v, SUM(T1.c)
		FROM (SELECT MIN(T0.f) AS xMin, MAX(T0.f + T0.c - 1) AS xMax
		      FROM D1_l_shipdate T0 WHERE T0.v > DATE '1995-06-01') T0Agg,
		     D1_l_suppkey T1
		WHERE T1.f BETWEEN T0Agg.xMin AND T0Agg.xMax
		GROUP BY T1.v`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.From) != 2 {
		t.Fatalf("from = %v", stmt.From)
	}
	sub := stmt.From[0]
	if sub.Subquery == nil || sub.Alias != "T0Agg" {
		t.Fatalf("derived table not parsed: %+v", sub)
	}
	if len(sub.Subquery.Select) != 2 {
		t.Errorf("subquery select items = %d", len(sub.Subquery.Select))
	}
	if sub.Subquery.Select[0].Alias != "xMin" {
		t.Errorf("alias = %q", sub.Subquery.Select[0].Alias)
	}
	if _, ok := stmt.Where.(*BetweenExpr); !ok {
		t.Errorf("where should be BETWEEN, got %T", stmt.Where)
	}
	// Derived tables require an alias.
	if _, err := ParseSelect("SELECT x FROM (SELECT 1)"); err == nil {
		t.Error("derived table without alias should fail")
	}
}

func TestParseQualifiedStarsAndAliases(t *testing.T) {
	stmt, err := ParseSelect("SELECT t.a AS x, b y, 3 z FROM tbl t ORDER BY x DESC, y LIMIT 10 OFFSET 2")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Select[0].Alias != "x" || stmt.Select[1].Alias != "y" || stmt.Select[2].Alias != "z" {
		t.Errorf("aliases = %+v", stmt.Select)
	}
	cr, ok := stmt.Select[0].Expr.(*ColRef)
	if !ok || cr.Table != "t" || cr.Column != "a" {
		t.Errorf("qualified ref = %+v", stmt.Select[0].Expr)
	}
	if stmt.From[0].Alias != "t" || stmt.From[0].Name() != "t" {
		t.Errorf("table alias = %+v", stmt.From[0])
	}
	if len(stmt.OrderBy) != 2 || !stmt.OrderBy[0].Desc || stmt.OrderBy[1].Desc {
		t.Errorf("order by = %+v", stmt.OrderBy)
	}
	if stmt.Limit != 10 || stmt.Offset != 2 {
		t.Errorf("limit/offset = %d/%d", stmt.Limit, stmt.Offset)
	}
	if _, err := ParseSelect("SELECT * FROM t"); err != nil {
		t.Errorf("SELECT * should parse: %v", err)
	}
}

func TestParseExpressionsPrecedenceAndLiterals(t *testing.T) {
	stmt, err := ParseSelect("SELECT a + b * 2, -3, 1.5, 'str', NULL, TRUE, FALSE FROM t WHERE NOT a = 1 OR b < 2 AND c IN (1,2,3) AND d IS NOT NULL AND e NOT BETWEEN 1 AND 5 AND f NOT IN (7)")
	if err != nil {
		t.Fatal(err)
	}
	// a + b*2: multiplication binds tighter.
	add, ok := stmt.Select[0].Expr.(*BinExpr)
	if !ok || add.Op != "+" {
		t.Fatalf("expr 0 = %v", stmt.Select[0].Expr)
	}
	if mul, ok := add.R.(*BinExpr); !ok || mul.Op != "*" {
		t.Errorf("precedence wrong: %v", add.R)
	}
	if lit := stmt.Select[1].Expr.(*Literal); lit.Val.Int() != -3 {
		t.Errorf("negative literal = %v", lit.Val)
	}
	if lit := stmt.Select[2].Expr.(*Literal); lit.Val.Float() != 1.5 {
		t.Errorf("float literal = %v", lit.Val)
	}
	if lit := stmt.Select[4].Expr.(*Literal); !lit.Val.IsNull() {
		t.Errorf("NULL literal = %v", lit.Val)
	}
	// OR at top, AND below.
	or, ok := stmt.Where.(*BinExpr)
	if !ok || or.Op != "OR" {
		t.Fatalf("where top = %v", stmt.Where)
	}
	if _, ok := or.L.(*NotExpr); !ok {
		t.Errorf("NOT not parsed: %v", or.L)
	}
	s := stmt.Where.String()
	for _, frag := range []string{"IS NOT NULL", "NOT BETWEEN", "NOT IN"} {
		if !strings.Contains(s, frag) {
			t.Errorf("where rendering missing %q: %s", frag, s)
		}
	}
}

func TestParseHints(t *testing.T) {
	stmt, err := ParseSelect("SELECT a FROM t OPTION(LOOP JOIN, HASH AGG)")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Hints) != 2 || stmt.Hints[0] != "LOOP JOIN" || stmt.Hints[1] != "HASH AGG" {
		t.Errorf("hints = %v", stmt.Hints)
	}
}

func TestParseCreateTable(t *testing.T) {
	stmt, err := Parse(`CREATE TABLE lineitem (
		l_orderkey BIGINT,
		l_suppkey INT,
		l_shipdate DATE,
		l_extendedprice DOUBLE,
		l_comment VARCHAR(44),
		PRIMARY KEY (l_shipdate, l_suppkey))`)
	if err != nil {
		t.Fatal(err)
	}
	ct, ok := stmt.(*CreateTableStmt)
	if !ok {
		t.Fatalf("statement type %T", stmt)
	}
	if ct.Name != "lineitem" || len(ct.Columns) != 5 {
		t.Errorf("create table = %+v", ct)
	}
	if ct.Columns[4].Type != "VARCHAR" {
		t.Errorf("varchar type = %q", ct.Columns[4].Type)
	}
	if len(ct.PrimaryKey) != 2 || ct.PrimaryKey[0] != "l_shipdate" {
		t.Errorf("primary key = %v", ct.PrimaryKey)
	}
	if !strings.Contains(ct.String(), "PRIMARY KEY") {
		t.Errorf("String() = %q", ct.String())
	}
}

func TestParseCreateIndexAndView(t *testing.T) {
	stmt, err := Parse("CREATE UNIQUE INDEX ix_f ON d1_l_shipdate (f) INCLUDE (v, c)")
	if err != nil {
		t.Fatal(err)
	}
	ci := stmt.(*CreateIndexStmt)
	if !ci.Unique || ci.Clustered || ci.Table != "d1_l_shipdate" || len(ci.Include) != 2 {
		t.Errorf("create index = %+v", ci)
	}
	stmt, err = Parse("CREATE CLUSTERED INDEX cx ON t (a, b)")
	if err != nil {
		t.Fatal(err)
	}
	if !stmt.(*CreateIndexStmt).Clustered {
		t.Error("clustered flag lost")
	}
	stmt, err = Parse("CREATE MATERIALIZED VIEW mv23 AS SELECT l_shipdate, l_suppkey, COUNT(*) FROM lineitem GROUP BY l_shipdate, l_suppkey")
	if err != nil {
		t.Fatal(err)
	}
	cv := stmt.(*CreateViewStmt)
	if !cv.Materialized || cv.Name != "mv23" || cv.Query == nil {
		t.Errorf("create view = %+v", cv)
	}
	if !strings.Contains(cv.String(), "MATERIALIZED VIEW mv23") {
		t.Errorf("String() = %q", cv.String())
	}
	stmt, err = Parse("CREATE VIEW v AS SELECT 1")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.(*CreateViewStmt).Materialized {
		t.Error("plain view marked materialized")
	}
}

func TestParseInsertAndDrop(t *testing.T) {
	stmt, err := Parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*InsertStmt)
	if ins.Table != "t" || len(ins.Columns) != 2 || len(ins.Rows) != 2 || len(ins.Rows[0]) != 2 {
		t.Errorf("insert = %+v", ins)
	}
	if !strings.Contains(ins.String(), "INSERT INTO t") {
		t.Errorf("String() = %q", ins.String())
	}
	stmt, err = Parse("INSERT INTO t VALUES (1)")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.(*InsertStmt).Columns) != 0 {
		t.Error("column list should be empty")
	}
	stmt, err = Parse("DROP TABLE t;")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.(*DropTableStmt).Name != "t" {
		t.Error("drop table name wrong")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"UPDATE t SET a = 1",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP",
		"SELECT a b c FROM t",
		"CREATE TABLE t",
		"CREATE TABLE t (a INT", // missing close paren
		"CREATE INDEX i ON t",
		"CREATE UNIQUE TABLE t (a INT)",
		"INSERT INTO t VALUES 1",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t WHERE a BETWEEN 1",
		"SELECT a FROM t WHERE a IN 1",
		"SELECT a FROM t extra_tokens_here 123",
		"SELECT DATE 123 FROM t",
		"SELECT DATE 'not-a-date' FROM t",
		"DROP VIEW v",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("expected parse error for %q", q)
		}
	}
}

func TestStatementStringRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT l_shipdate, COUNT(*) FROM lineitem WHERE l_shipdate > DATE '1995-06-01' GROUP BY l_shipdate",
		"SELECT l_suppkey, MAX(l_shipdate) FROM lineitem, orders WHERE l_orderkey = o_orderkey AND o_orderdate = DATE '1995-03-15' GROUP BY l_suppkey",
		"SELECT T1.v, SUM(T1.c) FROM d1_l_suppkey T1, d1_l_shipdate T0 WHERE T0.v > DATE '1995-06-01' AND T1.f BETWEEN T0.f AND T0.f + T0.c - 1 GROUP BY T1.v",
		"SELECT a, b FROM t WHERE a = 1 ORDER BY b DESC LIMIT 5 OFFSET 1 OPTION(LOOP JOIN)",
	}
	for _, q := range queries {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		rendered := stmt.String()
		// The rendered SQL must itself parse, and render identically (fixpoint).
		stmt2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", rendered, err)
		}
		if stmt2.String() != rendered {
			t.Errorf("round trip not stable:\n  first:  %s\n  second: %s", rendered, stmt2.String())
		}
	}
}
