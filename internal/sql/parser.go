package sql

import (
	"fmt"
	"strconv"
	"strings"

	"oldelephant/internal/value"
)

// Parser is a recursive-descent parser over a token stream.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses a single SQL statement (a trailing semicolon is allowed).
func Parse(input string) (Statement, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(TokOperator, ";")
	if !p.atEOF() {
		return nil, p.errorf("unexpected input after statement: %q", p.peek().Text)
	}
	return stmt, nil
}

// ParseSelect parses a SELECT statement, rejecting any other statement kind.
func ParseSelect(input string) (*SelectStmt, error) {
	stmt, err := Parse(input)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sql: expected a SELECT statement, got %T", stmt)
	}
	return sel, nil
}

func (p *Parser) peek() Token { return p.toks[p.pos] }
func (p *Parser) atEOF() bool { return p.peek().Kind == TokEOF }
func (p *Parser) advance() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *Parser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("sql: parse error near position %d: %s", p.peek().Pos, fmt.Sprintf(format, args...))
}

// accept consumes the next token if it matches kind and (case-insensitive) text.
func (p *Parser) accept(kind TokenKind, text string) bool {
	t := p.peek()
	if t.Kind == kind && strings.EqualFold(t.Text, text) {
		p.advance()
		return true
	}
	return false
}

// acceptKeyword consumes the next token if it is the given keyword.
func (p *Parser) acceptKeyword(kw string) bool { return p.accept(TokKeyword, kw) }

// expect consumes a token of the given kind/text or returns an error.
func (p *Parser) expect(kind TokenKind, text string) error {
	if p.accept(kind, text) {
		return nil
	}
	return p.errorf("expected %q, found %q", text, p.peek().Text)
}

// expectIdent consumes and returns an identifier (keywords are not accepted).
func (p *Parser) expectIdent() (string, error) {
	t := p.peek()
	if t.Kind != TokIdent {
		return "", p.errorf("expected identifier, found %q", t.Text)
	}
	p.advance()
	return t.Text, nil
}

func (p *Parser) parseStatement() (Statement, error) {
	switch {
	case p.peek().Kind == TokKeyword && p.peek().Text == "SELECT":
		return p.parseSelect()
	case p.peek().Kind == TokKeyword && p.peek().Text == "CREATE":
		return p.parseCreate()
	case p.peek().Kind == TokKeyword && p.peek().Text == "INSERT":
		return p.parseInsert()
	case p.peek().Kind == TokKeyword && p.peek().Text == "DROP":
		return p.parseDrop()
	case p.peek().Kind == TokKeyword && p.peek().Text == "EXPLAIN":
		return p.parseExplain()
	default:
		return nil, p.errorf("expected SELECT, CREATE, INSERT, DROP or EXPLAIN, found %q", p.peek().Text)
	}
}

// parseExplain parses EXPLAIN [ANALYZE] <select>.
func (p *Parser) parseExplain() (*ExplainStmt, error) {
	if err := p.expect(TokKeyword, "EXPLAIN"); err != nil {
		return nil, err
	}
	analyze := p.acceptKeyword("ANALYZE")
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	return &ExplainStmt{Analyze: analyze, Query: sel}, nil
}

func (p *Parser) parseSelect() (*SelectStmt, error) {
	if err := p.expect(TokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	stmt.Distinct = p.acceptKeyword("DISTINCT")
	// Select list.
	for {
		if p.accept(TokOperator, "*") {
			stmt.Select = append(stmt.Select, SelectItem{Star: true})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.acceptKeyword("AS") {
				alias, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				item.Alias = alias
			} else if p.peek().Kind == TokIdent {
				item.Alias = p.advance().Text
			}
			stmt.Select = append(stmt.Select, item)
		}
		if !p.accept(TokOperator, ",") {
			break
		}
	}
	// FROM.
	if p.acceptKeyword("FROM") {
		for {
			ref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			stmt.From = append(stmt.From, ref)
			// JOIN ... ON folds into the FROM list with its predicate ANDed
			// into WHERE, which is how the planner treats comma joins too.
			for {
				isJoin := false
				if p.acceptKeyword("INNER") {
					if err := p.expect(TokKeyword, "JOIN"); err != nil {
						return nil, err
					}
					isJoin = true
				} else if p.acceptKeyword("JOIN") {
					isJoin = true
				} else if p.acceptKeyword("CROSS") {
					if err := p.expect(TokKeyword, "JOIN"); err != nil {
						return nil, err
					}
					ref2, err := p.parseTableRef()
					if err != nil {
						return nil, err
					}
					stmt.From = append(stmt.From, ref2)
					continue
				}
				if !isJoin {
					break
				}
				ref2, err := p.parseTableRef()
				if err != nil {
					return nil, err
				}
				stmt.From = append(stmt.From, ref2)
				if err := p.expect(TokKeyword, "ON"); err != nil {
					return nil, err
				}
				cond, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if stmt.Where == nil {
					stmt.Where = cond
				} else {
					stmt.Where = &BinExpr{Op: "AND", L: stmt.Where, R: cond}
				}
			}
			if !p.accept(TokOperator, ",") {
				break
			}
		}
	}
	// WHERE.
	if p.acceptKeyword("WHERE") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if stmt.Where == nil {
			stmt.Where = cond
		} else {
			stmt.Where = &BinExpr{Op: "AND", L: stmt.Where, R: cond}
		}
	}
	// GROUP BY.
	if p.acceptKeyword("GROUP") {
		if err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !p.accept(TokOperator, ",") {
				break
			}
		}
	}
	// HAVING.
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = e
	}
	// ORDER BY.
	if p.acceptKeyword("ORDER") {
		if err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.accept(TokOperator, ",") {
				break
			}
		}
	}
	// LIMIT / OFFSET.
	if p.acceptKeyword("LIMIT") {
		n, err := p.parseIntLiteral()
		if err != nil {
			return nil, err
		}
		stmt.Limit = n
	}
	if p.acceptKeyword("OFFSET") {
		n, err := p.parseIntLiteral()
		if err != nil {
			return nil, err
		}
		stmt.Offset = n
	}
	// OPTION(hint, hint ...).
	if p.acceptKeyword("OPTION") {
		if err := p.expect(TokOperator, "("); err != nil {
			return nil, err
		}
		var words []string
		for {
			t := p.peek()
			if t.Kind == TokOperator && t.Text == ")" {
				break
			}
			if t.Kind == TokOperator && t.Text == "," {
				p.advance()
				if len(words) > 0 {
					stmt.Hints = append(stmt.Hints, strings.Join(words, " "))
					words = nil
				}
				continue
			}
			words = append(words, strings.ToUpper(p.advance().Text))
		}
		if len(words) > 0 {
			stmt.Hints = append(stmt.Hints, strings.Join(words, " "))
		}
		if err := p.expect(TokOperator, ")"); err != nil {
			return nil, err
		}
	}
	return stmt, nil
}

func (p *Parser) parseIntLiteral() (int64, error) {
	t := p.peek()
	if t.Kind != TokNumber {
		return 0, p.errorf("expected number, found %q", t.Text)
	}
	p.advance()
	n, err := strconv.ParseInt(t.Text, 10, 64)
	if err != nil {
		return 0, p.errorf("bad integer %q", t.Text)
	}
	return n, nil
}

func (p *Parser) parseTableRef() (TableRef, error) {
	if p.accept(TokOperator, "(") {
		sub, err := p.parseSelect()
		if err != nil {
			return TableRef{}, err
		}
		if err := p.expect(TokOperator, ")"); err != nil {
			return TableRef{}, err
		}
		ref := TableRef{Subquery: sub}
		p.acceptKeyword("AS")
		alias, err := p.expectIdent()
		if err != nil {
			return TableRef{}, fmt.Errorf("sql: derived table requires an alias: %w", err)
		}
		ref.Alias = alias
		return ref, nil
	}
	name, err := p.expectIdent()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: name}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = alias
	} else if p.peek().Kind == TokIdent {
		ref.Alias = p.advance().Text
	}
	return ref, nil
}

// Expression grammar (lowest to highest precedence):
//
//	orExpr    := andExpr (OR andExpr)*
//	andExpr   := notExpr (AND notExpr)*
//	notExpr   := NOT notExpr | predicate
//	predicate := addExpr [comparison | BETWEEN | IN | IS NULL]
//	addExpr   := mulExpr (("+"|"-") mulExpr)*
//	mulExpr   := unary (("*"|"/") unary)*
//	unary     := "-" unary | primary
//	primary   := literal | funcCall | colRef | "(" expr ")"
func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: "OR", L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: "AND", L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e}, nil
	}
	return p.parsePredicate()
}

func (p *Parser) parsePredicate() (Expr, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	// Comparison operators.
	for _, op := range []string{"=", "<>", "!=", "<=", ">=", "<", ">"} {
		if p.accept(TokOperator, op) {
			right, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			if op == "!=" {
				op = "<>"
			}
			return &BinExpr{Op: op, L: left, R: right}, nil
		}
	}
	negated := false
	if p.peek().Kind == TokKeyword && p.peek().Text == "NOT" {
		// Lookahead for NOT BETWEEN / NOT IN.
		next := p.toks[p.pos+1]
		if next.Kind == TokKeyword && (next.Text == "BETWEEN" || next.Text == "IN") {
			p.advance()
			negated = true
		}
	}
	if p.acceptKeyword("BETWEEN") {
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{E: left, Lo: lo, Hi: hi, Not: negated}, nil
	}
	if p.acceptKeyword("IN") {
		if err := p.expect(TokOperator, "("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.accept(TokOperator, ",") {
				break
			}
		}
		if err := p.expect(TokOperator, ")"); err != nil {
			return nil, err
		}
		return &InExpr{E: left, List: list, Not: negated}, nil
	}
	if p.acceptKeyword("IS") {
		not := p.acceptKeyword("NOT")
		if err := p.expect(TokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{E: left, Not: not}, nil
	}
	return left, nil
}

func (p *Parser) parseAdd() (Expr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(TokOperator, "+"):
			right, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			left = &BinExpr{Op: "+", L: left, R: right}
		case p.accept(TokOperator, "-"):
			right, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			left = &BinExpr{Op: "-", L: left, R: right}
		default:
			return left, nil
		}
	}
}

func (p *Parser) parseMul() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(TokOperator, "*"):
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &BinExpr{Op: "*", L: left, R: right}
		case p.accept(TokOperator, "/"):
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &BinExpr{Op: "/", L: left, R: right}
		default:
			return left, nil
		}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.accept(TokOperator, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negation of literals; otherwise express as 0 - e.
		if lit, ok := e.(*Literal); ok {
			switch lit.Val.Kind {
			case value.KindInt:
				return &Literal{Val: value.NewInt(-lit.Val.I)}, nil
			case value.KindFloat:
				return &Literal{Val: value.NewFloat(-lit.Val.F)}, nil
			}
		}
		return &BinExpr{Op: "-", L: &Literal{Val: value.NewInt(0)}, R: e}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.Kind == TokNumber:
		p.advance()
		if strings.Contains(t.Text, ".") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q", t.Text)
			}
			return &Literal{Val: value.NewFloat(f)}, nil
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", t.Text)
		}
		return &Literal{Val: value.NewInt(n)}, nil
	case t.Kind == TokString:
		p.advance()
		return &Literal{Val: value.NewString(t.Text)}, nil
	case t.Kind == TokKeyword && t.Text == "NULL":
		p.advance()
		return &Literal{Val: value.Null()}, nil
	case t.Kind == TokKeyword && t.Text == "TRUE":
		p.advance()
		return &Literal{Val: value.NewBool(true)}, nil
	case t.Kind == TokKeyword && t.Text == "FALSE":
		p.advance()
		return &Literal{Val: value.NewBool(false)}, nil
	case t.Kind == TokKeyword && t.Text == "DATE":
		p.advance()
		s := p.peek()
		if s.Kind != TokString {
			return nil, p.errorf("DATE must be followed by a 'YYYY-MM-DD' string")
		}
		p.advance()
		d, err := value.ParseDate(s.Text)
		if err != nil {
			return nil, p.errorf("bad date literal %q", s.Text)
		}
		return &Literal{Val: d}, nil
	case t.Kind == TokOperator && t.Text == "(":
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TokOperator, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.Kind == TokIdent || (t.Kind == TokKeyword && isFunctionName(t.Text)):
		p.advance()
		name := t.Text
		// Function call.
		if p.accept(TokOperator, "(") {
			fc := &FuncCall{Name: strings.ToUpper(name)}
			if p.accept(TokOperator, "*") {
				fc.Star = true
			} else if !(p.peek().Kind == TokOperator && p.peek().Text == ")") {
				for {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					fc.Args = append(fc.Args, arg)
					if !p.accept(TokOperator, ",") {
						break
					}
				}
			}
			if err := p.expect(TokOperator, ")"); err != nil {
				return nil, err
			}
			return fc, nil
		}
		// Qualified column reference.
		if p.accept(TokOperator, ".") {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &ColRef{Table: name, Column: col}, nil
		}
		return &ColRef{Column: name}, nil
	default:
		return nil, p.errorf("unexpected token %q in expression", t.Text)
	}
}

// isFunctionName reports whether a keyword can also start a function call
// (none of the reserved keywords are function names in this subset, but the
// hook keeps the parser extensible).
func isFunctionName(string) bool { return false }

func (p *Parser) parseCreate() (Statement, error) {
	if err := p.expect(TokKeyword, "CREATE"); err != nil {
		return nil, err
	}
	unique := p.acceptKeyword("UNIQUE")
	clustered := false
	if p.acceptKeyword("CLUSTERED") {
		clustered = true
	} else {
		p.acceptKeyword("NONCLUSTERED")
	}
	switch {
	case p.acceptKeyword("TABLE"):
		if unique || clustered {
			return nil, p.errorf("UNIQUE/CLUSTERED apply to indexes, not tables")
		}
		return p.parseCreateTable()
	case p.acceptKeyword("INDEX"):
		return p.parseCreateIndex(unique, clustered)
	case p.acceptKeyword("MATERIALIZED"):
		if err := p.expect(TokKeyword, "VIEW"); err != nil {
			return nil, err
		}
		return p.parseCreateView(true)
	case p.acceptKeyword("VIEW"):
		return p.parseCreateView(false)
	default:
		return nil, p.errorf("expected TABLE, INDEX or VIEW after CREATE")
	}
}

func (p *Parser) parseCreateTable() (Statement, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expect(TokOperator, "("); err != nil {
		return nil, err
	}
	stmt := &CreateTableStmt{Name: name}
	for {
		if p.acceptKeyword("PRIMARY") {
			if err := p.expect(TokKeyword, "KEY"); err != nil {
				return nil, err
			}
			cols, err := p.parseIdentList()
			if err != nil {
				return nil, err
			}
			stmt.PrimaryKey = cols
		} else {
			colName, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			typeTok := p.peek()
			if typeTok.Kind != TokIdent && typeTok.Kind != TokKeyword {
				return nil, p.errorf("expected type after column %q", colName)
			}
			p.advance()
			typ := strings.ToUpper(typeTok.Text)
			// Consume optional length arguments like VARCHAR(25).
			if p.accept(TokOperator, "(") {
				for !p.accept(TokOperator, ")") {
					if p.atEOF() {
						return nil, p.errorf("unterminated type arguments")
					}
					p.advance()
				}
			}
			stmt.Columns = append(stmt.Columns, ColumnDef{Name: colName, Type: typ})
		}
		if !p.accept(TokOperator, ",") {
			break
		}
	}
	if err := p.expect(TokOperator, ")"); err != nil {
		return nil, err
	}
	return stmt, nil
}

func (p *Parser) parseIdentList() ([]string, error) {
	if err := p.expect(TokOperator, "("); err != nil {
		return nil, err
	}
	var out []string
	for {
		id, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		out = append(out, id)
		if !p.accept(TokOperator, ",") {
			break
		}
	}
	if err := p.expect(TokOperator, ")"); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *Parser) parseCreateIndex(unique, clustered bool) (Statement, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expect(TokKeyword, "ON"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	cols, err := p.parseIdentList()
	if err != nil {
		return nil, err
	}
	stmt := &CreateIndexStmt{Name: name, Table: table, Columns: cols, Unique: unique, Clustered: clustered}
	if p.acceptKeyword("INCLUDE") {
		inc, err := p.parseIdentList()
		if err != nil {
			return nil, err
		}
		stmt.Include = inc
	}
	return stmt, nil
}

func (p *Parser) parseCreateView(materialized bool) (Statement, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expect(TokKeyword, "AS"); err != nil {
		return nil, err
	}
	query, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	return &CreateViewStmt{Name: name, Materialized: materialized, Query: query}, nil
}

func (p *Parser) parseInsert() (Statement, error) {
	if err := p.expect(TokKeyword, "INSERT"); err != nil {
		return nil, err
	}
	if err := p.expect(TokKeyword, "INTO"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: table}
	if p.peek().Kind == TokOperator && p.peek().Text == "(" {
		cols, err := p.parseIdentList()
		if err != nil {
			return nil, err
		}
		stmt.Columns = cols
	}
	if err := p.expect(TokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expect(TokOperator, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(TokOperator, ",") {
				break
			}
		}
		if err := p.expect(TokOperator, ")"); err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, row)
		if !p.accept(TokOperator, ",") {
			break
		}
	}
	return stmt, nil
}

func (p *Parser) parseDrop() (Statement, error) {
	if err := p.expect(TokKeyword, "DROP"); err != nil {
		return nil, err
	}
	if err := p.expect(TokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &DropTableStmt{Name: name}, nil
}
