package sql

import (
	"fmt"
	"strings"

	"oldelephant/internal/value"
)

// Statement is any parsed SQL statement.
type Statement interface {
	stmtNode()
	String() string
}

// Expr is an unbound (name-based) scalar expression in the AST. The planner
// binds it against the query's FROM sources.
type Expr interface {
	exprNode()
	String() string
}

// ColRef references a column, optionally qualified by a table alias.
type ColRef struct {
	Table  string
	Column string
}

func (*ColRef) exprNode() {}

// String implements Expr.
func (c *ColRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

// Literal is a constant value.
type Literal struct {
	Val value.Value
}

func (*Literal) exprNode() {}

// String implements Expr.
func (l *Literal) String() string {
	switch l.Val.Kind {
	case value.KindString:
		return "'" + strings.ReplaceAll(l.Val.S, "'", "''") + "'"
	case value.KindDate:
		return "DATE '" + l.Val.String() + "'"
	default:
		return l.Val.String()
	}
}

// BinExpr is a binary operator application; Op is the SQL spelling
// ("+", "-", "*", "/", "=", "<>", "<", "<=", ">", ">=", "AND", "OR").
type BinExpr struct {
	Op   string
	L, R Expr
}

func (*BinExpr) exprNode() {}

// String implements Expr.
func (b *BinExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// NotExpr negates a predicate.
type NotExpr struct {
	E Expr
}

func (*NotExpr) exprNode() {}

// String implements Expr.
func (n *NotExpr) String() string { return "NOT " + n.E.String() }

// BetweenExpr is e [NOT] BETWEEN lo AND hi.
type BetweenExpr struct {
	E, Lo, Hi Expr
	Not       bool
}

func (*BetweenExpr) exprNode() {}

// String implements Expr.
func (b *BetweenExpr) String() string {
	not := ""
	if b.Not {
		not = "NOT "
	}
	return fmt.Sprintf("(%s %sBETWEEN %s AND %s)", b.E, not, b.Lo, b.Hi)
}

// InExpr is e [NOT] IN (v1, v2, ...).
type InExpr struct {
	E    Expr
	List []Expr
	Not  bool
}

func (*InExpr) exprNode() {}

// String implements Expr.
func (in *InExpr) String() string {
	parts := make([]string, len(in.List))
	for i, e := range in.List {
		parts[i] = e.String()
	}
	not := ""
	if in.Not {
		not = "NOT "
	}
	return fmt.Sprintf("(%s %sIN (%s))", in.E, not, strings.Join(parts, ", "))
}

// IsNullExpr is e IS [NOT] NULL.
type IsNullExpr struct {
	E   Expr
	Not bool
}

func (*IsNullExpr) exprNode() {}

// String implements Expr.
func (i *IsNullExpr) String() string {
	if i.Not {
		return fmt.Sprintf("(%s IS NOT NULL)", i.E)
	}
	return fmt.Sprintf("(%s IS NULL)", i.E)
}

// FuncCall is a function application. The aggregate functions COUNT, SUM,
// MIN, MAX and AVG are the supported ones; COUNT(*) sets Star.
type FuncCall struct {
	Name string // upper case
	Args []Expr
	Star bool
}

func (*FuncCall) exprNode() {}

// String implements Expr.
func (f *FuncCall) String() string {
	if f.Star {
		return f.Name + "(*)"
	}
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	return f.Name + "(" + strings.Join(parts, ", ") + ")"
}

// IsAggregate reports whether the function is one of the aggregate functions.
func (f *FuncCall) IsAggregate() bool {
	switch f.Name {
	case "COUNT", "SUM", "MIN", "MAX", "AVG":
		return true
	}
	return false
}

// SelectItem is one item of the SELECT list.
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool // SELECT *
}

// String renders the item.
func (s SelectItem) String() string {
	if s.Star {
		return "*"
	}
	if s.Alias != "" {
		return s.Expr.String() + " AS " + s.Alias
	}
	return s.Expr.String()
}

// TableRef is one entry of the FROM clause: either a base table (possibly
// aliased) or a derived table (subquery with a mandatory alias).
type TableRef struct {
	Table    string
	Alias    string
	Subquery *SelectStmt
}

// String renders the reference.
func (t TableRef) String() string {
	if t.Subquery != nil {
		return "(" + t.Subquery.String() + ") " + t.Alias
	}
	if t.Alias != "" && !strings.EqualFold(t.Alias, t.Table) {
		return t.Table + " " + t.Alias
	}
	return t.Table
}

// Name returns the name the reference is known by in the query (alias if given).
func (t TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// OrderItem is one ORDER BY term.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Distinct bool
	Select   []SelectItem
	From     []TableRef
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int64 // -1 when absent
	Offset   int64
	Hints    []string // contents of OPTION(...), upper-cased, comma-separated items
}

func (*SelectStmt) stmtNode() {}

// String renders the statement back to SQL (normalized).
func (s *SelectStmt) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	items := make([]string, len(s.Select))
	for i, it := range s.Select {
		items[i] = it.String()
	}
	sb.WriteString(strings.Join(items, ", "))
	if len(s.From) > 0 {
		sb.WriteString(" FROM ")
		froms := make([]string, len(s.From))
		for i, f := range s.From {
			froms[i] = f.String()
		}
		sb.WriteString(strings.Join(froms, ", "))
	}
	if s.Where != nil {
		sb.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		parts := make([]string, len(s.GroupBy))
		for i, g := range s.GroupBy {
			parts[i] = g.String()
		}
		sb.WriteString(" GROUP BY " + strings.Join(parts, ", "))
	}
	if s.Having != nil {
		sb.WriteString(" HAVING " + s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		parts := make([]string, len(s.OrderBy))
		for i, o := range s.OrderBy {
			parts[i] = o.Expr.String()
			if o.Desc {
				parts[i] += " DESC"
			}
		}
		sb.WriteString(" ORDER BY " + strings.Join(parts, ", "))
	}
	if s.Limit >= 0 {
		sb.WriteString(fmt.Sprintf(" LIMIT %d", s.Limit))
	}
	if s.Offset > 0 {
		sb.WriteString(fmt.Sprintf(" OFFSET %d", s.Offset))
	}
	if len(s.Hints) > 0 {
		sb.WriteString(" OPTION(" + strings.Join(s.Hints, ", ") + ")")
	}
	return sb.String()
}

// ColumnDef is one column of a CREATE TABLE statement.
type ColumnDef struct {
	Name string
	Type string // INT, BIGINT, FLOAT, DOUBLE, VARCHAR, TEXT, DATE, BOOL
}

// CreateTableStmt creates a table; PrimaryKey columns become the clustered key.
type CreateTableStmt struct {
	Name       string
	Columns    []ColumnDef
	PrimaryKey []string
}

func (*CreateTableStmt) stmtNode() {}

// String implements Statement.
func (c *CreateTableStmt) String() string {
	cols := make([]string, len(c.Columns))
	for i, col := range c.Columns {
		cols[i] = col.Name + " " + col.Type
	}
	s := "CREATE TABLE " + c.Name + " (" + strings.Join(cols, ", ")
	if len(c.PrimaryKey) > 0 {
		s += ", PRIMARY KEY (" + strings.Join(c.PrimaryKey, ", ") + ")"
	}
	return s + ")"
}

// CreateIndexStmt creates a secondary (or clustered) index with optional
// INCLUDE columns, mirroring SQL Server's covering-index syntax.
type CreateIndexStmt struct {
	Name      string
	Table     string
	Columns   []string
	Include   []string
	Unique    bool
	Clustered bool
}

func (*CreateIndexStmt) stmtNode() {}

// String implements Statement.
func (c *CreateIndexStmt) String() string {
	var sb strings.Builder
	sb.WriteString("CREATE ")
	if c.Unique {
		sb.WriteString("UNIQUE ")
	}
	if c.Clustered {
		sb.WriteString("CLUSTERED ")
	}
	sb.WriteString("INDEX " + c.Name + " ON " + c.Table + " (" + strings.Join(c.Columns, ", ") + ")")
	if len(c.Include) > 0 {
		sb.WriteString(" INCLUDE (" + strings.Join(c.Include, ", ") + ")")
	}
	return sb.String()
}

// CreateViewStmt creates a (materialized) view defined by a SELECT.
type CreateViewStmt struct {
	Name         string
	Materialized bool
	Query        *SelectStmt
}

func (*CreateViewStmt) stmtNode() {}

// String implements Statement.
func (c *CreateViewStmt) String() string {
	kind := "VIEW"
	if c.Materialized {
		kind = "MATERIALIZED VIEW"
	}
	return "CREATE " + kind + " " + c.Name + " AS " + c.Query.String()
}

// InsertStmt inserts literal rows into a table.
type InsertStmt struct {
	Table   string
	Columns []string
	Rows    [][]Expr
}

func (*InsertStmt) stmtNode() {}

// String implements Statement.
func (i *InsertStmt) String() string {
	var sb strings.Builder
	sb.WriteString("INSERT INTO " + i.Table)
	if len(i.Columns) > 0 {
		sb.WriteString(" (" + strings.Join(i.Columns, ", ") + ")")
	}
	sb.WriteString(" VALUES ")
	rows := make([]string, len(i.Rows))
	for r, row := range i.Rows {
		vals := make([]string, len(row))
		for c, v := range row {
			vals[c] = v.String()
		}
		rows[r] = "(" + strings.Join(vals, ", ") + ")"
	}
	sb.WriteString(strings.Join(rows, ", "))
	return sb.String()
}

// DropTableStmt drops a table.
type DropTableStmt struct {
	Name string
}

func (*DropTableStmt) stmtNode() {}

// String implements Statement.
func (d *DropTableStmt) String() string { return "DROP TABLE " + d.Name }

// ExplainStmt explains a SELECT: plan text only, or — with Analyze — the plan
// executed with tracing on, annotated with per-operator rows and wall time.
type ExplainStmt struct {
	Analyze bool
	Query   *SelectStmt
}

func (*ExplainStmt) stmtNode() {}

// String implements Statement.
func (e *ExplainStmt) String() string {
	if e.Analyze {
		return "EXPLAIN ANALYZE " + e.Query.String()
	}
	return "EXPLAIN " + e.Query.String()
}
