package engine

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"oldelephant/internal/sql"
	"oldelephant/internal/value"
)

// newCachedEngine builds an engine with a populated table and the plan cache
// enabled (optionally bounded).
func newCachedEngine(t *testing.T, cacheSize, rows int) *Engine {
	t.Helper()
	e := New(Options{TupleOverhead: -1, PlanCacheSize: cacheSize})
	if _, err := e.Execute("CREATE TABLE items (id INT, grp INT, amount FLOAT, PRIMARY KEY (id))"); err != nil {
		t.Fatal(err)
	}
	data := make([][]value.Value, rows)
	for i := range data {
		data[i] = []value.Value{
			value.NewInt(int64(i)),
			value.NewInt(int64(i % 7)),
			value.NewFloat(float64(i % 100)),
		}
	}
	if err := e.BulkLoad("items", data); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"SELECT * FROM t", "select * from t"},
		{"  SELECT\t*\n  FROM   t ;", "select * from t"},
		{"select id from T where name = 'MiXeD  Case'", "select id from t where name = 'MiXeD  Case'"},
		{"select 'it''s  A' FROM t", "select 'it''s  A' from t"},
		{"SELECT 1;;", "select 1"},
	}
	for _, c := range cases {
		if got := sql.Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	// Line comments normalize away like the lexer skips them — and can never
	// swallow differing statement text into an identical key (a trailing
	// comment without a newline comments out the rest of the line, so those
	// two spellings parse differently and must key differently).
	if sql.Normalize("SELECT a FROM t -- note\nWHERE b = 1") != "select a from t where b = 1" {
		t.Errorf("comment+newline did not normalize to a space: %q",
			sql.Normalize("SELECT a FROM t -- note\nWHERE b = 1"))
	}
	if sql.Normalize("SELECT a FROM t -- note WHERE b = 1") != "select a from t" {
		t.Errorf("trailing comment was not dropped: %q",
			sql.Normalize("SELECT a FROM t -- note WHERE b = 1"))
	}
	if sql.Normalize("SELECT a FROM t -- note\nWHERE b = 1") == sql.Normalize("SELECT a FROM t -- note WHERE b = 1") {
		t.Error("statements that parse differently share a cache key")
	}
	// The equivalence that matters for the cache: same statement, different
	// spelling, one key; different literals, different keys.
	if sql.Normalize("SELECT grp FROM items") != sql.Normalize("select   GRP from ITEMS;") {
		t.Error("case/whitespace variants of one statement got different keys")
	}
	if sql.Normalize("SELECT 'a' FROM t") == sql.Normalize("SELECT 'A' FROM t") {
		t.Error("distinct string literals collided")
	}
}

// TestPlanCacheHitAndSpellings: the first execution misses, repeats lease the
// compiled plan, and keyword-case/whitespace respellings share the entry.
func TestPlanCacheHitAndSpellings(t *testing.T) {
	e := newCachedEngine(t, 0, 500)
	base := e.PlanCacheStats()
	res, err := e.Query("SELECT grp, COUNT(*) FROM items GROUP BY grp")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PlanCached {
		t.Error("first execution claims a cache hit")
	}
	for _, respelled := range []string{
		"SELECT grp, COUNT(*) FROM items GROUP BY grp",
		"select   grp, count(*) from ITEMS group by grp;",
	} {
		res, err = e.Query(respelled)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Stats.PlanCached {
			t.Errorf("respelled query %q missed the cache", respelled)
		}
		if len(res.Rows) != 7 {
			t.Fatalf("cached execution returned %d rows, want 7", len(res.Rows))
		}
	}
	s := e.PlanCacheStats()
	if hits := s.Hits - base.Hits; hits != 2 {
		t.Errorf("got %d cache hits, want 2", hits)
	}
	if misses := s.Misses - base.Misses; misses != 1 {
		t.Errorf("got %d misses, want 1", misses)
	}
}

// TestPlanCacheKnobKeying: the same SQL at different parallelism (and on
// engines with different executor knobs) must not share plan instances —
// the knobs are part of the key.
func TestPlanCacheKnobKeying(t *testing.T) {
	e := newCachedEngine(t, 0, 20000)
	q := "SELECT grp, COUNT(*) FROM items WHERE amount > 10 GROUP BY grp"
	r1, err := e.QueryWith(QueryOptions{Parallelism: 1}, q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.QueryWith(QueryOptions{Parallelism: 2}, q)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Stats.PlanCached {
		t.Error("parallelism=2 execution leased the parallelism=1 plan")
	}
	if r1.Plan == r2.Plan {
		t.Errorf("expected distinct plan annotations, both %q", r1.Plan)
	}
	// Same parallelism again: now it hits, and executes the parallel form.
	r3, err := e.QueryWith(QueryOptions{Parallelism: 2}, q)
	if err != nil {
		t.Fatal(err)
	}
	if !r3.Stats.PlanCached {
		t.Error("repeat parallelism=2 execution missed the cache")
	}
	if r3.Plan != r2.Plan {
		t.Errorf("cached parallel plan %q != first parallel plan %q", r3.Plan, r2.Plan)
	}
}

// TestPlanCacheInvalidation: any mutating statement clears the cache, and
// the next execution replans against the new state.
func TestPlanCacheInvalidation(t *testing.T) {
	e := newCachedEngine(t, 0, 500)
	q := "SELECT COUNT(*) FROM items"
	if _, err := e.Query(q); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.PlanCached {
		t.Fatal("warm-up did not populate the cache")
	}
	if got := res.Rows[0][0].Int(); got != 500 {
		t.Fatalf("count = %d, want 500", got)
	}
	if _, err := e.Execute("INSERT INTO items (id, grp, amount) VALUES (1000, 1, 1.5)"); err != nil {
		t.Fatal(err)
	}
	res, err = e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PlanCached {
		t.Error("execution after INSERT leased a stale plan")
	}
	if got := res.Rows[0][0].Int(); got != 501 {
		t.Errorf("count after insert = %d, want 501", got)
	}
	s := e.PlanCacheStats()
	if s.Invalidations == 0 {
		t.Error("no invalidation recorded")
	}
}

// TestPlanCacheLRUEviction: a capacity-bounded cache drops the least
// recently used statement.
func TestPlanCacheLRUEviction(t *testing.T) {
	e := newCachedEngine(t, 2, 100)
	queries := []string{
		"SELECT COUNT(*) FROM items WHERE grp = 0",
		"SELECT COUNT(*) FROM items WHERE grp = 1",
		"SELECT COUNT(*) FROM items WHERE grp = 2",
	}
	for _, q := range queries {
		if _, err := e.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	s := e.PlanCacheStats()
	if s.Entries != 2 {
		t.Errorf("cache holds %d entries, want capacity 2", s.Entries)
	}
	if s.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", s.Evictions)
	}
	// queries[0] was evicted (LRU); queries[2] is resident.
	res, err := e.Query(queries[2])
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.PlanCached {
		t.Error("most recent statement was evicted")
	}
	res, err = e.Query(queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PlanCached {
		t.Error("least recently used statement survived eviction")
	}
}

// TestPlanCacheConcurrentSameQuery: many goroutines running the identical
// statement lease distinct plan instances (or replan from the shared AST)
// and all produce the correct result.
func TestPlanCacheConcurrentSameQuery(t *testing.T) {
	e := newCachedEngine(t, 0, 2000)
	q := "SELECT grp, COUNT(*) FROM items GROUP BY grp"
	want, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 16
	const iters = 20
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				res, err := e.Query(q)
				if err != nil {
					errs <- err
					return
				}
				if len(res.Rows) != len(want.Rows) {
					errs <- fmt.Errorf("got %d rows, want %d", len(res.Rows), len(want.Rows))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestPreparedStatement: a prepared handle executes correctly, hits the plan
// cache on repeats, and keeps working (replanning, not reparsing) across an
// invalidation.
func TestPreparedStatement(t *testing.T) {
	e := newCachedEngine(t, 0, 500)
	p, err := e.Prepare("SELECT grp, COUNT(*) FROM items WHERE amount > 50 GROUP BY grp")
	if err != nil {
		t.Fatal(err)
	}
	r1, err := e.QueryPrepared(QueryOptions{}, p)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.QueryPrepared(QueryOptions{}, p)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Stats.PlanCached {
		t.Error("second prepared execution missed the cache")
	}
	if len(r1.Rows) != len(r2.Rows) {
		t.Errorf("prepared executions disagree: %d vs %d rows", len(r1.Rows), len(r2.Rows))
	}
	if _, err := e.Execute("INSERT INTO items (id, grp, amount) VALUES (2000, 3, 99.0)"); err != nil {
		t.Fatal(err)
	}
	r3, err := e.QueryPrepared(QueryOptions{}, p)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Stats.PlanCached {
		t.Error("prepared execution after invalidation leased a stale plan")
	}
}

// TestQueryTimeout: a context that is already done cancels the query, and a
// generous deadline does not.
func TestQueryTimeout(t *testing.T) {
	e := newCachedEngine(t, 0, 5000)
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.QueryWith(QueryOptions{Ctx: canceled}, "SELECT COUNT(*) FROM items"); err == nil {
		t.Error("canceled context did not abort the query")
	}
	ctx, cancel2 := context.WithTimeout(context.Background(), time.Minute)
	defer cancel2()
	if _, err := e.QueryWith(QueryOptions{Ctx: ctx}, "SELECT COUNT(*) FROM items"); err != nil {
		t.Errorf("query under a generous deadline failed: %v", err)
	}
}
