package engine

import (
	"testing"
)

// TestWarmPlanLeaseAllocations pins the steady-state allocation count of a
// warm plan-cache lease: after the first execution has compiled the plan and
// grown the scan operator's column arena to full batch size, every later
// execution of the same statement reuses both, so its allocation count is a
// small constant — cache-key normalization, the lease, per-batch wrappers and
// the aggregate's single result row — independent of how many rows the scan
// decodes. Re-paying the 32→1024 arena growth ramp per execution, or
// re-allocating column buffers per batch, pushes the count well past the
// bound (the 5000-row scan alone would add thousands).
func TestWarmPlanLeaseAllocations(t *testing.T) {
	e := newCachedEngine(t, 0, 5000)
	const q = "SELECT SUM(amount) FROM items WHERE grp < 5"
	run := func() {
		if _, err := e.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	run() // compile the plan, grow the arena
	run()
	perExec := testing.AllocsPerRun(20, run)
	// Measured steady state is ~75 allocations; 150 leaves headroom for
	// toolchain drift while still catching any per-row or per-ramp regression.
	if perExec > 150 {
		t.Fatalf("warm plan-cache lease allocates %.0f per execution, want a small constant (<=150)", perExec)
	}
}
