package engine

import (
	"testing"
)

// TestVectorizedKnobDefaults pins the Options contract: the zero value runs
// vectorized, DisableVectorized forces the row path, and an explicit
// Vectorized wins over DisableVectorized.
func TestVectorizedKnobDefaults(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		want bool
	}{
		{"zero value", Options{}, true},
		{"default engine", Options{TupleOverhead: -1}, true},
		{"disabled", Options{DisableVectorized: true}, false},
		{"explicit override", Options{Vectorized: true, DisableVectorized: true}, true},
	}
	for _, c := range cases {
		if got := New(c.opts).Vectorized(); got != c.want {
			t.Errorf("%s: Vectorized() = %v, want %v", c.name, got, c.want)
		}
	}
	if !Default().Vectorized() {
		t.Error("Default() engine is not vectorized")
	}
}

// TestCompressedKnobDefaults pins the compressed-execution contract: the zero
// value runs on compressed vectors, DisableCompressed keeps batch execution
// but forces flat vectors, and row-at-a-time engines never claim compression
// (they produce no batches at all).
func TestCompressedKnobDefaults(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		want bool
	}{
		{"zero value", Options{}, true},
		{"default engine", Options{TupleOverhead: -1}, true},
		{"compressed disabled", Options{DisableCompressed: true}, false},
		{"row engine", Options{DisableVectorized: true}, false},
		{"row engine, compression nominally on", Options{DisableVectorized: true, DisableCompressed: false}, false},
	}
	for _, c := range cases {
		if got := New(c.opts).Compressed(); got != c.want {
			t.Errorf("%s: Compressed() = %v, want %v", c.name, got, c.want)
		}
	}
	if !Default().Compressed() {
		t.Error("Default() engine does not run on compressed vectors")
	}
}

// TestVectorizedEngineEquivalence runs a small SQL workload through both
// executor modes end to end (DDL, load, query) and requires identical
// results, including plans and row order.
func TestVectorizedEngineEquivalence(t *testing.T) {
	setup := []string{
		"CREATE TABLE t (a INT, b INT, c FLOAT, d VARCHAR, PRIMARY KEY (a))",
		"CREATE INDEX ix_b ON t (b) INCLUDE (c)",
		"CREATE TABLE u (k INT, label VARCHAR)",
	}
	queries := []string{
		"SELECT COUNT(*) FROM t",
		"SELECT * FROM t WHERE a BETWEEN 10 AND 40",
		"SELECT b, COUNT(*), SUM(c) FROM t WHERE a > 5 GROUP BY b",
		"SELECT d, MIN(a), MAX(c) FROM t GROUP BY d ORDER BY d DESC",
		"SELECT a, b FROM t WHERE b = 3 ORDER BY a LIMIT 7",
		"SELECT DISTINCT b FROM t WHERE c > 50",
		"SELECT b, AVG(c) FROM t WHERE d = 'x' OR b < 2 GROUP BY b",
		"SELECT 1 + 2, 'const'",
		// Equi-joins compile to VectorizedHashJoin on the batch engine and
		// HashJoin on the row engine; results and plan text must be identical.
		"SELECT label, COUNT(*), SUM(c) FROM t, u WHERE b = k GROUP BY label OPTION(HASH JOIN)",
		"SELECT a, label FROM t, u WHERE b = k AND c > 80 ORDER BY a, label LIMIT 25 OPTION(HASH JOIN)",
	}
	build := func(disable bool) *Engine {
		e := New(Options{TupleOverhead: -1, DisableVectorized: disable})
		for _, s := range setup {
			if _, err := e.Execute(s); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 500; i++ {
			ins := "INSERT INTO t VALUES (" +
				itoa(i) + ", " + itoa(i%5) + ", " + itoa(i%100) + ".5, '" + string(rune('w'+i%4)) + "')"
			if _, err := e.Execute(ins); err != nil {
				t.Fatal(err)
			}
		}
		// u holds duplicate join keys (two labels per key 0..4) plus keys that
		// match nothing, so joins fan out and drop rows.
		for i := 0; i < 14; i++ {
			ins := "INSERT INTO u VALUES (" + itoa(i%7) + ", '" + string(rune('p'+i)) + "')"
			if _, err := e.Execute(ins); err != nil {
				t.Fatal(err)
			}
		}
		return e
	}
	vec, row := build(false), build(true)
	for _, q := range queries {
		vres, err := vec.Query(q)
		if err != nil {
			t.Fatalf("vectorized %q: %v", q, err)
		}
		rres, err := row.Query(q)
		if err != nil {
			t.Fatalf("row %q: %v", q, err)
		}
		if vres.Plan != rres.Plan {
			t.Errorf("%q: plans differ: %s vs %s", q, vres.Plan, rres.Plan)
		}
		if len(vres.Rows) != len(rres.Rows) {
			t.Errorf("%q: %d rows vectorized, %d rows row-at-a-time", q, len(vres.Rows), len(rres.Rows))
			continue
		}
		for i := range vres.Rows {
			for j := range vres.Rows[i] {
				v, w := vres.Rows[i][j], rres.Rows[i][j]
				if v.Kind != w.Kind || v.String() != w.String() {
					t.Errorf("%q: row %d col %d: %v (%v) vs %v (%v)", q, i, j, v, v.Kind, w, w.Kind)
				}
			}
		}
	}
}

func itoa(i int) string {
	if i < 0 {
		return "-" + itoa(-i)
	}
	if i < 10 {
		return string(rune('0' + i))
	}
	return itoa(i/10) + string(rune('0'+i%10))
}
