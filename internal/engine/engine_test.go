package engine

import (
	"fmt"
	"strings"
	"testing"

	"oldelephant/internal/value"
)

// mustExec runs a statement and fails the test on error.
func mustExec(t *testing.T, e *Engine, sqlText string) *Result {
	t.Helper()
	res, err := e.Execute(sqlText)
	if err != nil {
		t.Fatalf("Execute(%q): %v", sqlText, err)
	}
	return res
}

// newWorkloadEngine builds a small lineitem/orders/customer database with
// deterministic contents used by most engine tests.
func newWorkloadEngine(t *testing.T) *Engine {
	t.Helper()
	e := Default()
	mustExec(t, e, `CREATE TABLE lineitem (
		l_orderkey BIGINT, l_suppkey INT, l_shipdate DATE,
		l_extendedprice DOUBLE, l_returnflag VARCHAR(1),
		PRIMARY KEY (l_shipdate, l_suppkey))`)
	mustExec(t, e, `CREATE TABLE orders (
		o_orderkey BIGINT, o_custkey INT, o_orderdate DATE,
		PRIMARY KEY (o_orderkey))`)
	mustExec(t, e, `CREATE TABLE customer (
		c_custkey INT, c_nationkey INT,
		PRIMARY KEY (c_custkey))`)

	var custRows, orderRows, liRows [][]value.Value
	for ck := 0; ck < 30; ck++ {
		custRows = append(custRows, []value.Value{value.NewInt(int64(ck)), value.NewInt(int64(ck % 5))})
	}
	for ok := 0; ok < 300; ok++ {
		orderRows = append(orderRows, []value.Value{
			value.NewInt(int64(ok)),
			value.NewInt(int64(ok % 30)),
			value.NewDate(value.MustParseDate("1995-01-01").Int() + int64(ok%200)),
		})
	}
	for i := 0; i < 3000; i++ {
		flag := "N"
		if i%4 == 0 {
			flag = "R"
		}
		liRows = append(liRows, []value.Value{
			value.NewInt(int64(i % 300)),
			value.NewInt(int64(i % 20)),
			value.NewDate(value.MustParseDate("1995-01-01").Int() + int64(i%365)),
			value.NewFloat(float64(100 + i%100)),
			value.NewString(flag),
		})
	}
	if err := e.BulkLoad("customer", custRows); err != nil {
		t.Fatal(err)
	}
	if err := e.BulkLoad("orders", orderRows); err != nil {
		t.Fatal(err)
	}
	if err := e.BulkLoad("lineitem", liRows); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestCreateInsertSelectRoundTrip(t *testing.T) {
	e := Default()
	mustExec(t, e, "CREATE TABLE t (a INT, b VARCHAR(10), c DATE, d DOUBLE, PRIMARY KEY (a))")
	mustExec(t, e, "INSERT INTO t VALUES (2, 'two', DATE '1999-09-09', 2.5), (1, 'one', '1998-01-01', 1)")
	mustExec(t, e, "INSERT INTO t (a, b) VALUES (3, 'three')")
	res := mustExec(t, e, "SELECT a, b, c, d FROM t ORDER BY a")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][0].Int() != 1 || res.Rows[0][1].S != "one" {
		t.Errorf("row 0 = %v", res.Rows[0])
	}
	// String literal coerced to date on insert.
	if res.Rows[0][2].String() != "1998-01-01" {
		t.Errorf("date coercion failed: %v", res.Rows[0][2])
	}
	// Int literal coerced to float column.
	if res.Rows[0][3].Kind != value.KindFloat {
		t.Errorf("float coercion failed: %v", res.Rows[0][3])
	}
	// Unspecified columns are NULL.
	if !res.Rows[2][2].IsNull() || !res.Rows[2][3].IsNull() {
		t.Errorf("missing columns should be NULL: %v", res.Rows[2])
	}
	if res.Columns[0] != "a" || res.Columns[3] != "d" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestDDLErrors(t *testing.T) {
	e := Default()
	mustExec(t, e, "CREATE TABLE t (a INT, PRIMARY KEY (a))")
	cases := []string{
		"CREATE TABLE t (a INT)",                        // duplicate
		"CREATE TABLE u (a BLOB)",                       // unknown type
		"CREATE CLUSTERED INDEX cx ON t (a)",            // clustered index via DDL
		"CREATE INDEX ix ON missing (a)",                // missing table
		"CREATE VIEW v AS SELECT a FROM t",              // non-materialized view
		"INSERT INTO missing VALUES (1)",                // missing table
		"INSERT INTO t VALUES (1, 2)",                   // arity
		"INSERT INTO t (nope) VALUES (1)",               // bad column
		"INSERT INTO t VALUES (a)",                      // non-constant
		"DROP TABLE missing",                            // missing table
		"SELECT nope FROM t",                            // unknown column
		"SELECT a FROM t, t",                            // duplicate alias
		"SELECT a FROM t WHERE COUNT(a) > 1",            // aggregate in WHERE
		"SELECT a FROM t GROUP BY a HAVING b > 1",       // HAVING references non-grouped column
		"SELECT a + SUM(a) FROM t",                      // mixing without GROUP BY on a
		"SELECT * FROM t GROUP BY a",                    // star with grouping
		"SELECT a FROM t ORDER BY nope",                 // unresolvable order by
		"SELECT SUM(a, a) FROM t",                       // aggregate arity
		"SELECT MEDIAN(a) FROM t",                       // unsupported aggregate call
		"SELECT a FROM t GROUP BY a + 1",                // non-column group by
		"SELECT a FROM (SELECT a FROM t) d WHERE x = 1", // unknown col in derived
		"UPDATE t SET a = 1",                            // unsupported statement
	}
	for _, q := range cases {
		if _, err := e.Execute(q); err == nil {
			t.Errorf("expected error for %q", q)
		}
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	e := Default()
	res := mustExec(t, e, "SELECT 1 + 2 AS three, 'x'")
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 3 || res.Rows[0][1].S != "x" {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Columns[0] != "three" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestQ1StyleAggregation(t *testing.T) {
	e := newWorkloadEngine(t)
	res := mustExec(t, e, `
		SELECT l_shipdate, COUNT(*)
		FROM lineitem
		WHERE l_shipdate > DATE '1995-10-01'
		GROUP BY l_shipdate`)
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	total := int64(0)
	for _, r := range res.Rows {
		if r[0].String() <= "1995-10-01" {
			t.Fatalf("group outside range: %v", r[0])
		}
		total += r[1].Int()
	}
	// Verify against a direct count.
	check := mustExec(t, e, "SELECT COUNT(*) FROM lineitem WHERE l_shipdate > DATE '1995-10-01'")
	if check.Rows[0][0].Int() != total {
		t.Errorf("group total %d != direct count %v", total, check.Rows[0][0])
	}
	// The clustered key starts with l_shipdate, so the planner should pick a
	// clustered seek and a streaming aggregate.
	if !strings.Contains(res.Plan, "ClusteredSeek") {
		t.Errorf("plan should use a clustered seek: %s", res.Plan)
	}
	if !strings.Contains(res.Plan, "StreamAggregate") {
		t.Errorf("plan should use a stream aggregate: %s", res.Plan)
	}
}

func TestQ2StyleEqualityAndHashAggregate(t *testing.T) {
	e := newWorkloadEngine(t)
	res := mustExec(t, e, `
		SELECT l_suppkey, COUNT(*)
		FROM lineitem
		WHERE l_shipdate = DATE '1995-03-12'
		GROUP BY l_suppkey`)
	// Grouping on a non-leading column requires a hash aggregate.
	if !strings.Contains(res.Plan, "HashAggregate") {
		t.Errorf("plan = %s", res.Plan)
	}
	var total int64
	for _, r := range res.Rows {
		total += r[1].Int()
	}
	check := mustExec(t, e, "SELECT COUNT(*) FROM lineitem WHERE l_shipdate = DATE '1995-03-12'")
	if check.Rows[0][0].Int() != total {
		t.Errorf("totals differ: %d vs %v", total, check.Rows[0][0])
	}
}

func TestQ7StyleThreeWayJoin(t *testing.T) {
	e := newWorkloadEngine(t)
	res := mustExec(t, e, `
		SELECT c_nationkey, SUM(l_extendedprice)
		FROM lineitem, orders, customer
		WHERE l_orderkey = o_orderkey AND o_custkey = c_custkey AND l_returnflag = 'R'
		GROUP BY c_nationkey`)
	if len(res.Rows) != 5 {
		t.Fatalf("expected 5 nation groups, got %d", len(res.Rows))
	}
	var total float64
	for _, r := range res.Rows {
		total += r[1].Float()
	}
	check := mustExec(t, e, "SELECT SUM(l_extendedprice) FROM lineitem WHERE l_returnflag = 'R'")
	if diff := total - check.Rows[0][0].Float(); diff > 1e-6 || diff < -1e-6 {
		t.Errorf("join total %f != direct total %v", total, check.Rows[0][0])
	}
}

func TestJoinHintsChangeAlgorithm(t *testing.T) {
	e := newWorkloadEngine(t)
	base := "SELECT o_orderdate, MAX(l_shipdate) FROM lineitem, orders WHERE l_orderkey = o_orderkey GROUP BY o_orderdate"
	def := mustExec(t, e, base)
	if !strings.Contains(def.Plan, "HashJoin") {
		t.Errorf("default plan should hash join: %s", def.Plan)
	}
	loop := mustExec(t, e, base+" OPTION(LOOP JOIN)")
	if !strings.Contains(loop.Plan, "IndexNLJoin") {
		t.Errorf("hinted plan should use index nested loops: %s", loop.Plan)
	}
	merge := mustExec(t, e, base+" OPTION(MERGE JOIN)")
	if !strings.Contains(merge.Plan, "MergeJoin") {
		t.Errorf("hinted plan should merge join: %s", merge.Plan)
	}
	// All three produce identical results.
	if len(def.Rows) != len(loop.Rows) || len(def.Rows) != len(merge.Rows) {
		t.Fatalf("row counts differ: %d/%d/%d", len(def.Rows), len(loop.Rows), len(merge.Rows))
	}
	for i := range def.Rows {
		for c := range def.Rows[i] {
			if value.Compare(def.Rows[i][c], loop.Rows[i][c]) != 0 || value.Compare(def.Rows[i][c], merge.Rows[i][c]) != 0 {
				t.Fatalf("row %d differs across join algorithms", i)
			}
		}
	}
	// Aggregation hints.
	ha := mustExec(t, e, "SELECT l_shipdate, COUNT(*) FROM lineitem GROUP BY l_shipdate OPTION(HASH AGG)")
	if !strings.Contains(ha.Plan, "HashAggregate") {
		t.Errorf("HASH AGG hint ignored: %s", ha.Plan)
	}
	sa := mustExec(t, e, "SELECT l_suppkey, COUNT(*) FROM lineitem GROUP BY l_suppkey OPTION(STREAM AGG)")
	if !strings.Contains(sa.Plan, "StreamAggregate") || !strings.Contains(sa.Plan, "Sort") {
		t.Errorf("STREAM AGG hint should sort then stream: %s", sa.Plan)
	}
}

func TestSecondaryIndexIsChosenForSelectivePredicate(t *testing.T) {
	e := newWorkloadEngine(t)
	mustExec(t, e, "CREATE INDEX ix_supp ON lineitem (l_suppkey) INCLUDE (l_extendedprice)")
	res := mustExec(t, e, "SELECT l_suppkey, l_extendedprice FROM lineitem WHERE l_suppkey = 7")
	if !strings.Contains(res.Plan, "IndexSeek") {
		t.Errorf("plan should use the covering secondary index: %s", res.Plan)
	}
	if len(res.Rows) != 150 {
		t.Errorf("rows = %d, want 150", len(res.Rows))
	}
	// When the query needs a column outside the index and selectivity is low,
	// the planner should fall back to scanning.
	res = mustExec(t, e, "SELECT l_returnflag FROM lineitem WHERE l_suppkey >= 0")
	if strings.Contains(res.Plan, "IndexSeek") {
		t.Errorf("unselective non-covering predicate should scan: %s", res.Plan)
	}
}

func TestBandJoinOverCTableShapedData(t *testing.T) {
	e := Default()
	mustExec(t, e, "CREATE TABLE d1_l_shipdate (f BIGINT, v DATE, c BIGINT, PRIMARY KEY (f))")
	mustExec(t, e, "CREATE TABLE d1_l_suppkey (f BIGINT, v INT, c BIGINT, PRIMARY KEY (f))")
	mustExec(t, e, "CREATE INDEX ix_ship_v ON d1_l_shipdate (v) INCLUDE (f, c)")
	var shipRows, suppRows [][]value.Value
	pos := int64(1)
	day := value.MustParseDate("1995-01-01").Int()
	for i := 0; i < 50; i++ { // 50 runs of 20 rows each
		shipRows = append(shipRows, []value.Value{value.NewInt(pos), value.NewDate(day + int64(i)), value.NewInt(20)})
		for j := 0; j < 10; j++ { // suppkey runs of 2 within each date run
			suppRows = append(suppRows, []value.Value{value.NewInt(pos + int64(j*2)), value.NewInt(int64(j)), value.NewInt(2)})
		}
		pos += 20
	}
	if err := e.BulkLoad("d1_l_shipdate", shipRows); err != nil {
		t.Fatal(err)
	}
	if err := e.BulkLoad("d1_l_suppkey", suppRows); err != nil {
		t.Fatal(err)
	}
	// The paper's rewritten Q3: band join + SUM over run lengths.
	res := mustExec(t, e, `
		SELECT T1.v, SUM(T1.c)
		FROM d1_l_shipdate T0, d1_l_suppkey T1
		WHERE T0.v > DATE '1995-02-09'
		  AND T1.f BETWEEN T0.f AND T0.f + T0.c - 1
		GROUP BY T1.v`)
	if !strings.Contains(res.Plan, "IndexNLJoin") {
		t.Errorf("band join should use index nested loops: %s", res.Plan)
	}
	// 1995-02-09 is day 39 (0-based); days 40..49 qualify = 10 runs.
	// Each run has 10 suppkey groups of size 2: SUM(c) per suppkey value = 10*2 = 20.
	if len(res.Rows) != 10 {
		t.Fatalf("groups = %d, want 10", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r[1].Int() != 20 {
			t.Errorf("suppkey %v count = %v, want 20", r[0], r[1])
		}
	}
	// The optimized rewriting with a derived table produces the same answer.
	opt := mustExec(t, e, `
		SELECT T1.v, SUM(T1.c)
		FROM (SELECT MIN(T0.f) AS xMin, MAX(T0.f + T0.c - 1) AS xMax
		      FROM d1_l_shipdate T0 WHERE T0.v > DATE '1995-02-09') T0Agg,
		     d1_l_suppkey T1
		WHERE T1.f BETWEEN T0Agg.xMin AND T0Agg.xMax
		GROUP BY T1.v`)
	if len(opt.Rows) != len(res.Rows) {
		t.Fatalf("optimized rewrite rows = %d, want %d", len(opt.Rows), len(res.Rows))
	}
	for i := range res.Rows {
		if value.Compare(opt.Rows[i][0], res.Rows[i][0]) != 0 || value.Compare(opt.Rows[i][1], res.Rows[i][1]) != 0 {
			t.Errorf("row %d differs between rewrites", i)
		}
	}
}

func TestMaterializedViewCreationAndQuerying(t *testing.T) {
	e := newWorkloadEngine(t)
	mustExec(t, e, `CREATE MATERIALIZED VIEW mv23 AS
		SELECT l_shipdate, l_suppkey, COUNT(*) AS cnt
		FROM lineitem GROUP BY l_shipdate, l_suppkey`)
	def, ok := e.View("MV23")
	if !ok {
		t.Fatal("view definition not recorded")
	}
	if len(def.GroupColumns) != 2 || len(def.AggColumns) != 1 {
		t.Errorf("view def = %+v", def)
	}
	// The view is a queryable clustered table.
	res := mustExec(t, e, "SELECT l_shipdate, SUM(cnt) FROM mv23 WHERE l_shipdate > DATE '1995-10-01' GROUP BY l_shipdate")
	direct := mustExec(t, e, "SELECT l_shipdate, COUNT(*) FROM lineitem WHERE l_shipdate > DATE '1995-10-01' GROUP BY l_shipdate")
	if len(res.Rows) != len(direct.Rows) {
		t.Fatalf("view rows %d, direct rows %d", len(res.Rows), len(direct.Rows))
	}
	for i := range res.Rows {
		if value.Compare(res.Rows[i][1], direct.Rows[i][1]) != 0 {
			t.Errorf("row %d: view %v, direct %v", i, res.Rows[i], direct.Rows[i])
		}
	}
	// Duplicate view names are rejected.
	if _, err := e.Execute("CREATE MATERIALIZED VIEW mv23 AS SELECT l_suppkey FROM lineitem GROUP BY l_suppkey"); err == nil {
		t.Error("duplicate view should fail")
	}
	// Dropping the backing table removes the view definition.
	mustExec(t, e, "DROP TABLE mv23")
	if _, ok := e.View("mv23"); ok {
		t.Error("view definition should be gone after dropping the table")
	}
}

func TestStatsAndColdRuns(t *testing.T) {
	e := newWorkloadEngine(t)
	// Warm run: everything is cached from loading.
	warm := mustExec(t, e, "SELECT COUNT(*) FROM lineitem")
	if warm.Stats.IO.PageReads != 0 {
		t.Errorf("warm run should hit the buffer pool, got %+v", warm.Stats.IO)
	}
	// Cold run: buffer pool reset forces page reads.
	e.ResetBufferPool()
	cold := mustExec(t, e, "SELECT COUNT(*) FROM lineitem")
	if cold.Stats.IO.PageReads == 0 {
		t.Error("cold run should read pages")
	}
	if cold.Stats.RowsReturned != 1 {
		t.Errorf("RowsReturned = %d", cold.Stats.RowsReturned)
	}
	if cold.Stats.Wall <= 0 {
		t.Error("wall time not measured")
	}
	// A selective clustered seek reads far fewer pages than a full scan.
	e.ResetBufferPool()
	seek := mustExec(t, e, "SELECT COUNT(*) FROM lineitem WHERE l_shipdate = DATE '1995-06-06'")
	if seek.Stats.IO.PageReads*3 >= cold.Stats.IO.PageReads {
		t.Errorf("selective seek read %d pages, full scan %d", seek.Stats.IO.PageReads, cold.Stats.IO.PageReads)
	}
	if e.TotalDataPages() == 0 {
		t.Error("TotalDataPages should be positive")
	}
}

func TestDistinctOrderByLimit(t *testing.T) {
	e := newWorkloadEngine(t)
	res := mustExec(t, e, "SELECT DISTINCT l_returnflag FROM lineitem ORDER BY l_returnflag DESC")
	if len(res.Rows) != 2 || res.Rows[0][0].S != "R" || res.Rows[1][0].S != "N" {
		t.Fatalf("distinct rows = %v", res.Rows)
	}
	res = mustExec(t, e, "SELECT l_suppkey, COUNT(*) AS cnt FROM lineitem GROUP BY l_suppkey ORDER BY cnt DESC, 1 LIMIT 3")
	if len(res.Rows) != 3 {
		t.Fatalf("limit rows = %d", len(res.Rows))
	}
	if res.Rows[0][1].Int() < res.Rows[2][1].Int() {
		t.Error("descending order violated")
	}
	// HAVING filters groups.
	res = mustExec(t, e, "SELECT l_suppkey, COUNT(*) FROM lineitem GROUP BY l_suppkey HAVING COUNT(*) > 100")
	for _, r := range res.Rows {
		if r[1].Int() <= 100 {
			t.Errorf("HAVING leaked group %v", r)
		}
	}
}

func TestExplainDoesNotExecute(t *testing.T) {
	e := newWorkloadEngine(t)
	e.ResetBufferPool()
	before := e.Pager().Stats()
	planText, err := e.Explain("SELECT COUNT(*) FROM lineitem")
	if err != nil {
		t.Fatal(err)
	}
	if planText == "" {
		t.Error("empty plan text")
	}
	after := e.Pager().Stats()
	if after.Sub(before).PageReads > 2 {
		t.Errorf("Explain should not scan the table, read %d pages", after.Sub(before).PageReads)
	}
	if _, err := e.Explain("SELECT * FROM missing"); err == nil {
		t.Error("Explain of invalid query should fail")
	}
}

func TestDerivedTableGlobalAggregate(t *testing.T) {
	e := newWorkloadEngine(t)
	res := mustExec(t, e, `
		SELECT d.mx - d.mn
		FROM (SELECT MIN(l_suppkey) AS mn, MAX(l_suppkey) AS mx FROM lineitem) d`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 19 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestBulkLoadValidation(t *testing.T) {
	e := Default()
	mustExec(t, e, "CREATE TABLE t (a INT, b DATE, PRIMARY KEY (a))")
	err := e.BulkLoad("t", [][]value.Value{{value.NewInt(1)}})
	if err == nil {
		t.Error("wrong arity should fail")
	}
	if err := e.BulkLoad("missing", nil); err == nil {
		t.Error("missing table should fail")
	}
	// Coercion of strings to dates during bulk load.
	if err := e.BulkLoad("t", [][]value.Value{{value.NewInt(1), value.NewString("1997-07-07")}}); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, e, "SELECT b FROM t")
	if res.Rows[0][0].Kind != value.KindDate {
		t.Errorf("bulk load coercion failed: %v", res.Rows[0][0])
	}
}

func TestInsertVisibleToSubsequentQueries(t *testing.T) {
	e := newWorkloadEngine(t)
	before := mustExec(t, e, "SELECT COUNT(*) FROM lineitem").Rows[0][0].Int()
	mustExec(t, e, "INSERT INTO lineitem VALUES (1, 2, DATE '1996-06-06', 10.0, 'A')")
	after := mustExec(t, e, "SELECT COUNT(*) FROM lineitem").Rows[0][0].Int()
	if after != before+1 {
		t.Errorf("count %d -> %d", before, after)
	}
	res := mustExec(t, e, "SELECT l_returnflag FROM lineitem WHERE l_returnflag = 'A'")
	if len(res.Rows) != 1 {
		t.Errorf("inserted row not found: %v", res.Rows)
	}
}

func TestQualifiedColumnsAndSelfJoinAliases(t *testing.T) {
	e := newWorkloadEngine(t)
	res := mustExec(t, e, `
		SELECT a.o_orderkey, b.o_orderkey
		FROM orders a, orders b
		WHERE a.o_orderkey = 5 AND b.o_orderkey = a.o_orderkey + 1`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].Int() != 5 || res.Rows[0][1].Int() != 6 {
		t.Errorf("row = %v", res.Rows[0])
	}
}

func fmtRows(rows [][]value.Value) string {
	var sb strings.Builder
	for _, r := range rows {
		sb.WriteString(fmt.Sprint(r))
		sb.WriteString("\n")
	}
	return sb.String()
}
