// Package engine ties the storage, catalog, SQL and planning layers into a
// usable database engine: it executes DDL, INSERT and SELECT statements,
// bulk-loads tables, and reports per-query execution statistics (wall time
// and page I/O) that the benchmark harness converts into modeled disk time.
package engine

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"oldelephant/internal/catalog"
	"oldelephant/internal/exec"
	"oldelephant/internal/plan"
	"oldelephant/internal/sql"
	"oldelephant/internal/storage"
	"oldelephant/internal/value"
)

// Options configure a new engine instance.
type Options struct {
	// BufferPoolPages bounds the buffer pool; 0 means unbounded.
	BufferPoolPages int
	// TupleOverhead is the per-tuple storage overhead in bytes. Negative
	// selects storage.DefaultTupleOverhead (9 bytes, as in the paper).
	TupleOverhead int
	// Vectorized selects batch-at-a-time (MonetDB/X100-style) execution and
	// is the default: the zero Options value runs vectorized. Setting
	// DisableVectorized forces the row-at-a-time Volcano path, kept for
	// differential testing; an explicit Vectorized overrides it.
	Vectorized bool
	// DisableVectorized forces row-at-a-time execution (see Vectorized).
	DisableVectorized bool
	// DisableCompressed forces the vectorized executor to run on flat
	// (decompressed) vectors only: scans stop emitting Const/RLE vectors for
	// sort-prefix columns. Compressed execution is the default; the knob
	// exists for differential testing and the flat-vs-compressed benchmarks.
	DisableCompressed bool
	// Parallelism is the number of workers for morsel-parallel query
	// execution. 0 (the zero value) selects runtime.GOMAXPROCS(0); 1 disables
	// parallel execution entirely, reproducing the serial plans byte for
	// byte. Only vectorized execution parallelizes; the row-at-a-time path
	// always runs serial. Results are deterministic at any worker count, but
	// per-query IOStats are not: concurrent morsel scans interleave their
	// pager reads, so the sequential/random stream classification (and with a
	// bounded buffer pool, the read counts) can vary run to run — measurements
	// that lean on the paper's I/O model should pin Parallelism to 1, as the
	// bench harness does by default.
	Parallelism int
}

// Engine is a single-node, in-process database instance.
type Engine struct {
	pager       *storage.Pager
	cat         *catalog.Catalog
	views       map[string]*ViewDef
	vectorized  bool
	compressed  bool
	parallelism int
}

// ViewDef records a materialized view: its defining query and backing table.
type ViewDef struct {
	Name  string
	Query *sql.SelectStmt
	// Table is the name of the table holding the materialized rows.
	Table string
	// GroupColumns are the output labels that came from GROUP BY columns.
	GroupColumns []string
	// AggColumns are the output labels that came from aggregate expressions,
	// parallel to Aggregates.
	AggColumns []string
	// Aggregates are the defining aggregate calls (canonical SQL text).
	Aggregates []string
}

// New creates an empty engine.
func New(opts Options) *Engine {
	overhead := opts.TupleOverhead
	if overhead < 0 {
		overhead = storage.DefaultTupleOverhead
	}
	pager := storage.NewPager(opts.BufferPoolPages)
	vectorized := opts.Vectorized || !opts.DisableVectorized
	parallelism := opts.Parallelism
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if !vectorized {
		parallelism = 1
	}
	return &Engine{
		pager:       pager,
		cat:         catalog.New(pager, overhead),
		views:       make(map[string]*ViewDef),
		vectorized:  vectorized,
		compressed:  vectorized && !opts.DisableCompressed,
		parallelism: parallelism,
	}
}

// Default returns an engine with the default options used throughout the
// paper reproduction: unbounded buffer pool and 9 bytes of tuple overhead.
func Default() *Engine { return New(Options{TupleOverhead: -1}) }

// Vectorized reports whether the engine executes queries batch-at-a-time.
func (e *Engine) Vectorized() bool { return e.vectorized }

// Compressed reports whether batch scans emit compressed (Const/RLE) vectors.
func (e *Engine) Compressed() bool { return e.compressed }

// Parallelism reports the worker count used for morsel-parallel execution
// (1 means serial).
func (e *Engine) Parallelism() int { return e.parallelism }

// Catalog exposes the engine's catalog.
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// Pager exposes the engine's pager (for I/O accounting).
func (e *Engine) Pager() *storage.Pager { return e.pager }

// Views returns the definitions of all materialized views, keyed by lower-case name.
func (e *Engine) Views() map[string]*ViewDef { return e.views }

// View returns a materialized view definition by name.
func (e *Engine) View(name string) (*ViewDef, bool) {
	v, ok := e.views[strings.ToLower(name)]
	return v, ok
}

// Stats captures the cost of executing one statement.
type Stats struct {
	// Wall is the elapsed wall-clock time of execution (excluding parsing).
	Wall time.Duration
	// IO is the page I/O performed while executing.
	IO storage.IOStats
	// RowsReturned is the number of result rows.
	RowsReturned int
}

// Result is the outcome of executing a statement. DDL statements return no
// rows but still carry statistics.
type Result struct {
	Columns []string
	Rows    []exec.Row
	Plan    string
	Stats   Stats
}

// ResetBufferPool empties the buffer pool so the next query runs cold, the
// way every measurement in the paper is taken.
func (e *Engine) ResetBufferPool() { e.pager.ResetCache() }

// Execute parses and runs one SQL statement (SELECT, INSERT, CREATE TABLE /
// INDEX / MATERIALIZED VIEW, DROP TABLE).
func (e *Engine) Execute(sqlText string) (*Result, error) {
	stmt, err := sql.Parse(sqlText)
	if err != nil {
		return nil, err
	}
	return e.ExecuteStmt(stmt)
}

// ExecuteStmt runs an already-parsed statement.
func (e *Engine) ExecuteStmt(stmt sql.Statement) (*Result, error) {
	switch s := stmt.(type) {
	case *sql.SelectStmt:
		return e.runSelect(s)
	case *sql.CreateTableStmt:
		return e.runCreateTable(s)
	case *sql.CreateIndexStmt:
		return e.runCreateIndex(s)
	case *sql.CreateViewStmt:
		return e.runCreateView(s)
	case *sql.InsertStmt:
		return e.runInsert(s)
	case *sql.DropTableStmt:
		return e.runDropTable(s)
	default:
		return nil, fmt.Errorf("engine: unsupported statement %T", stmt)
	}
}

// Query runs a SELECT statement and returns its result.
func (e *Engine) Query(sqlText string) (*Result, error) {
	stmt, err := sql.ParseSelect(sqlText)
	if err != nil {
		return nil, err
	}
	return e.runSelect(stmt)
}

// QueryStmt runs an already-parsed SELECT.
func (e *Engine) QueryStmt(stmt *sql.SelectStmt) (*Result, error) { return e.runSelect(stmt) }

func (e *Engine) runSelect(stmt *sql.SelectStmt) (*Result, error) {
	planner := plan.NewPlanner(e.cat)
	planner.DisableCompressed = !e.compressed
	planner.DisableVectorized = !e.vectorized
	pl, err := planner.PlanSelect(stmt)
	if err != nil {
		return nil, err
	}
	e.parallelizePlan(pl)
	before := e.pager.Stats()
	start := time.Now()
	var rows []exec.Row
	if e.vectorized {
		rows, err = exec.DrainVectorized(pl.Root)
	} else {
		rows, err = exec.Drain(pl.Root)
	}
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	after := e.pager.Stats()
	return &Result{
		Columns: pl.Columns,
		Rows:    rows,
		Plan:    pl.Explain,
		Stats: Stats{
			Wall:         elapsed,
			IO:           after.Sub(before),
			RowsReturned: len(rows),
		},
	}, nil
}

// parallelizePlan applies the morsel-parallel rewrite to a compiled plan and
// annotates its Explain string when a pipeline actually went parallel, so
// the reported plan matches what executes.
func (e *Engine) parallelizePlan(pl *plan.Plan) {
	if !e.vectorized || e.parallelism <= 1 {
		return
	}
	root, rewrote := plan.Parallelize(pl.Root, e.parallelism)
	pl.Root = root
	if rewrote {
		pl.Explain = fmt.Sprintf("%s [parallel %d]", pl.Explain, e.parallelism)
	}
}

// Explain plans a SELECT and returns the textual plan without executing it,
// including the morsel-parallel rewrite the engine would apply.
func (e *Engine) Explain(sqlText string) (string, error) {
	stmt, err := sql.ParseSelect(sqlText)
	if err != nil {
		return "", err
	}
	planner := plan.NewPlanner(e.cat)
	planner.DisableCompressed = !e.compressed
	planner.DisableVectorized = !e.vectorized
	pl, err := planner.PlanSelect(stmt)
	if err != nil {
		return "", err
	}
	e.parallelizePlan(pl)
	return pl.Explain, nil
}

// columnKind maps a SQL type name to a value kind.
func columnKind(typ string) (value.Kind, error) {
	switch strings.ToUpper(typ) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT", "TINYINT":
		return value.KindInt, nil
	case "FLOAT", "DOUBLE", "REAL", "DECIMAL", "NUMERIC":
		return value.KindFloat, nil
	case "DATE", "DATETIME", "TIMESTAMP":
		return value.KindDate, nil
	case "CHAR", "VARCHAR", "TEXT", "STRING", "NVARCHAR":
		return value.KindString, nil
	case "BOOL", "BOOLEAN", "BIT":
		return value.KindBool, nil
	default:
		return value.KindNull, fmt.Errorf("engine: unsupported column type %q", typ)
	}
}

func (e *Engine) runCreateTable(s *sql.CreateTableStmt) (*Result, error) {
	cols := make([]catalog.Column, len(s.Columns))
	for i, c := range s.Columns {
		kind, err := columnKind(c.Type)
		if err != nil {
			return nil, err
		}
		cols[i] = catalog.Column{Name: c.Name, Kind: kind}
	}
	if _, err := e.cat.CreateTable(s.Name, cols, s.PrimaryKey); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func (e *Engine) runCreateIndex(s *sql.CreateIndexStmt) (*Result, error) {
	if s.Clustered {
		return nil, fmt.Errorf("engine: declare the clustered key as PRIMARY KEY in CREATE TABLE (table %q)", s.Table)
	}
	if _, err := e.cat.CreateIndex(s.Name, s.Table, s.Columns, s.Include, s.Unique); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

// runCreateView materializes the view query into a table clustered on the
// view's group-by columns and records the definition for view matching.
func (e *Engine) runCreateView(s *sql.CreateViewStmt) (*Result, error) {
	if !s.Materialized {
		return nil, fmt.Errorf("engine: only MATERIALIZED views are supported")
	}
	name := strings.ToLower(s.Name)
	if _, exists := e.views[name]; exists {
		return nil, fmt.Errorf("engine: view %q already exists", s.Name)
	}
	res, err := e.runSelect(s.Query)
	if err != nil {
		return nil, err
	}
	// Column kinds come from the first row when available; group-by columns
	// default to their base kinds via the planner schema, aggregates to INT.
	kinds := make([]value.Kind, len(res.Columns))
	for i := range kinds {
		kinds[i] = value.KindInt
	}
	if len(res.Rows) > 0 {
		for i, v := range res.Rows[0] {
			if !v.IsNull() {
				kinds[i] = v.Kind
			}
		}
	}
	cols := make([]catalog.Column, len(res.Columns))
	for i, cname := range res.Columns {
		cols[i] = catalog.Column{Name: cname, Kind: kinds[i]}
	}
	// Identify group-by output columns (they become the clustered key).
	def := &ViewDef{Name: s.Name, Query: s.Query, Table: s.Name}
	groupNames := make(map[string]bool)
	for _, g := range s.Query.GroupBy {
		if ref, ok := g.(*sql.ColRef); ok {
			groupNames[strings.ToLower(ref.Column)] = true
		}
	}
	var clusterKey []string
	for i, item := range s.Query.Select {
		label := res.Columns[i]
		if item.Star {
			continue
		}
		if ref, ok := item.Expr.(*sql.ColRef); ok && groupNames[strings.ToLower(ref.Column)] {
			def.GroupColumns = append(def.GroupColumns, label)
			clusterKey = append(clusterKey, label)
			continue
		}
		def.AggColumns = append(def.AggColumns, label)
		def.Aggregates = append(def.Aggregates, strings.ToUpper(item.Expr.String()))
	}
	tbl, err := e.cat.CreateTable(s.Name, cols, clusterKey)
	if err != nil {
		return nil, err
	}
	if err := tbl.BulkLoad(res.Rows); err != nil {
		return nil, err
	}
	e.views[name] = def
	return &Result{Stats: res.Stats}, nil
}

func (e *Engine) runInsert(s *sql.InsertStmt) (*Result, error) {
	tbl, err := e.cat.Table(s.Table)
	if err != nil {
		return nil, err
	}
	// Map the statement's column list (or the full schema) to table ordinals.
	ords := make([]int, 0, len(tbl.Columns))
	if len(s.Columns) == 0 {
		for i := range tbl.Columns {
			ords = append(ords, i)
		}
	} else {
		for _, cname := range s.Columns {
			ord := tbl.ColumnIndex(cname)
			if ord < 0 {
				return nil, fmt.Errorf("engine: table %q has no column %q", s.Table, cname)
			}
			ords = append(ords, ord)
		}
	}
	start := time.Now()
	before := e.pager.Stats()
	count := 0
	for _, exprRow := range s.Rows {
		if len(exprRow) != len(ords) {
			return nil, fmt.Errorf("engine: INSERT row has %d values, expected %d", len(exprRow), len(ords))
		}
		row := make([]value.Value, len(tbl.Columns))
		for i := range row {
			row[i] = value.Null()
		}
		for i, ast := range exprRow {
			v, err := evalConstExpr(ast)
			if err != nil {
				return nil, err
			}
			row[ords[i]] = coerceValue(v, tbl.Columns[ords[i]].Kind)
		}
		if err := tbl.Insert(row); err != nil {
			return nil, err
		}
		count++
	}
	// Keep dependent materialized views fresh (recompute incrementally is the
	// job of core/matview; the engine only records staleness by design).
	after := e.pager.Stats()
	return &Result{Stats: Stats{Wall: time.Since(start), IO: after.Sub(before), RowsReturned: count}}, nil
}

func (e *Engine) runDropTable(s *sql.DropTableStmt) (*Result, error) {
	if err := e.cat.DropTable(s.Name); err != nil {
		return nil, err
	}
	delete(e.views, strings.ToLower(s.Name))
	return &Result{}, nil
}

// evalConstExpr evaluates an AST expression that must not reference columns.
func evalConstExpr(e sql.Expr) (value.Value, error) {
	switch t := e.(type) {
	case *sql.Literal:
		return t.Val, nil
	case *sql.BinExpr:
		l, err := evalConstExpr(t.L)
		if err != nil {
			return value.Null(), err
		}
		r, err := evalConstExpr(t.R)
		if err != nil {
			return value.Null(), err
		}
		switch t.Op {
		case "+":
			return value.Add(l, r), nil
		case "-":
			return value.Sub(l, r), nil
		case "*":
			return value.Mul(l, r), nil
		case "/":
			return value.Div(l, r), nil
		default:
			return value.Null(), fmt.Errorf("engine: operator %q not allowed in VALUES", t.Op)
		}
	default:
		return value.Null(), fmt.Errorf("engine: VALUES must be constant expressions, got %T", e)
	}
}

// coerceValue converts a literal to the column's kind where a lossless,
// intuitive conversion exists (strings to dates, ints to floats, ...).
func coerceValue(v value.Value, kind value.Kind) value.Value {
	if v.IsNull() || v.Kind == kind {
		return v
	}
	switch kind {
	case value.KindDate:
		if v.Kind == value.KindString {
			if d, err := value.ParseDate(v.S); err == nil {
				return d
			}
		}
		if v.Kind == value.KindInt {
			return value.NewDate(v.I)
		}
	case value.KindFloat:
		if v.Kind == value.KindInt {
			return value.NewFloat(float64(v.I))
		}
	case value.KindInt:
		if v.Kind == value.KindFloat {
			return value.NewInt(int64(v.F))
		}
		if v.Kind == value.KindBool {
			return value.NewInt(v.I)
		}
	case value.KindString:
		return value.NewString(v.String())
	case value.KindBool:
		return value.NewBool(v.Bool())
	}
	return v
}

// BulkLoad loads rows programmatically into a table, coercing each value to
// the column kind. It is the fast path used by the TPC-H loader.
func (e *Engine) BulkLoad(table string, rows [][]value.Value) error {
	tbl, err := e.cat.Table(table)
	if err != nil {
		return err
	}
	coerced := make([][]value.Value, len(rows))
	for i, row := range rows {
		if len(row) != len(tbl.Columns) {
			return fmt.Errorf("engine: bulk load row %d has %d values, expected %d", i, len(row), len(tbl.Columns))
		}
		out := make([]value.Value, len(row))
		for j, v := range row {
			out[j] = coerceValue(v, tbl.Columns[j].Kind)
		}
		coerced[i] = out
	}
	return tbl.BulkLoad(coerced)
}

// TotalDataPages reports the number of allocated pages in the instance,
// a rough proxy for database size on disk.
func (e *Engine) TotalDataPages() int { return e.pager.NumPages() }
