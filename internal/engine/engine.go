// Package engine ties the storage, catalog, SQL and planning layers into a
// usable database engine: it executes DDL, INSERT and SELECT statements,
// bulk-loads tables, and reports per-query execution statistics (wall time
// and page I/O) that the benchmark harness converts into modeled disk time.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"oldelephant/internal/catalog"
	"oldelephant/internal/exec"
	"oldelephant/internal/plan"
	"oldelephant/internal/sql"
	"oldelephant/internal/storage"
	"oldelephant/internal/trace"
	"oldelephant/internal/value"
	"oldelephant/internal/wal"
)

// Options configure a new engine instance.
type Options struct {
	// BufferPoolPages bounds the buffer pool; 0 means unbounded.
	BufferPoolPages int
	// TupleOverhead is the per-tuple storage overhead in bytes. Negative
	// selects storage.DefaultTupleOverhead (9 bytes, as in the paper).
	TupleOverhead int
	// Vectorized selects batch-at-a-time (MonetDB/X100-style) execution and
	// is the default: the zero Options value runs vectorized. Setting
	// DisableVectorized forces the row-at-a-time Volcano path, kept for
	// differential testing; an explicit Vectorized overrides it.
	Vectorized bool
	// DisableVectorized forces row-at-a-time execution (see Vectorized).
	DisableVectorized bool
	// DisableCompressed forces the vectorized executor to run on flat
	// (decompressed) vectors only: scans stop emitting Const/RLE vectors for
	// sort-prefix columns. Compressed execution is the default; the knob
	// exists for differential testing and the flat-vs-compressed benchmarks.
	DisableCompressed bool
	// Parallelism is the number of workers for morsel-parallel query
	// execution. 0 (the zero value) selects runtime.GOMAXPROCS(0); 1 disables
	// parallel execution entirely, reproducing the serial plans byte for
	// byte. Only vectorized execution parallelizes; the row-at-a-time path
	// always runs serial. Results are deterministic at any worker count, but
	// per-query IOStats are not: concurrent morsel scans interleave their
	// pager reads, so the sequential/random stream classification (and with a
	// bounded buffer pool, the read counts) can vary run to run — measurements
	// that lean on the paper's I/O model should pin Parallelism to 1, as the
	// bench harness does by default.
	Parallelism int
	// DisablePlanCache turns the shared plan cache off: every query pays
	// lex/parse/plan/parallelize. The cache is on by default; the knob exists
	// for measurements that must include planning cost on every run (the bench
	// harness) and for differential testing of the cached path.
	DisablePlanCache bool
	// PlanCacheSize bounds the plan cache's distinct-statement capacity
	// (0 selects the default, 256).
	PlanCacheSize int
	// DataDir, when set, makes the engine durable (via Open): pages live in a
	// checksummed data file, commits in a write-ahead log, and recovery runs
	// on open. Empty means in-memory. New ignores it; use Open.
	DataDir string
	// FS overrides the filesystem used for the data file, WAL and meta file
	// (the crash-recovery harness injects faults through it). nil selects the
	// real filesystem rooted at DataDir. New ignores it; use Open.
	FS storage.FS
}

// Engine is a single-node, in-process database instance.
//
// Concurrency: SELECTs may run from any number of goroutines — they share a
// reader lock, the catalog, the buffer pool and the plan cache. Mutating
// statements (DDL, INSERT, bulk loads) take the writer lock, so they wait for
// in-flight queries, run alone, and invalidate the plan cache before queries
// resume. Per-query IOStats remain exact only when one query runs at a time:
// concurrent queries interleave their page accesses in the shared pager, so
// a concurrent query's Stats.IO reflects its share of a mixed stream.
type Engine struct {
	// stateMu is the reader/writer isolation described above: queries hold it
	// shared, mutations exclusive. Internal helpers assume the caller holds
	// the appropriate side and never lock it themselves.
	stateMu     sync.RWMutex
	viewMu      sync.RWMutex
	pager       *storage.Pager
	cat         *catalog.Catalog
	views       map[string]*ViewDef
	vectorized  bool
	compressed  bool
	parallelism int
	plans       *planCache // nil when the plan cache is disabled

	// Durability state (nil/empty for in-memory engines; see durability.go).
	fsys                        storage.FS
	wal                         *wal.WAL
	dataPath, walPath, metaPath string
	// pending holds committed-but-not-yet-durable statements (undo records),
	// guarded by stateMu.
	pending []pendingCommit
}

// ViewDef records a materialized view: its defining query and backing table.
type ViewDef struct {
	Name  string
	Query *sql.SelectStmt
	// Table is the name of the table holding the materialized rows.
	Table string
	// GroupColumns are the output labels that came from GROUP BY columns.
	GroupColumns []string
	// AggColumns are the output labels that came from aggregate expressions,
	// parallel to Aggregates.
	AggColumns []string
	// Aggregates are the defining aggregate calls (canonical SQL text).
	Aggregates []string
}

// New creates an empty in-memory engine. For a durable (file-backed) engine
// use Open.
func New(opts Options) *Engine {
	return newWithPager(opts, storage.NewPager(opts.BufferPoolPages))
}

func newWithPager(opts Options, pager *storage.Pager) *Engine {
	overhead := opts.TupleOverhead
	if overhead < 0 {
		overhead = storage.DefaultTupleOverhead
	}
	vectorized := opts.Vectorized || !opts.DisableVectorized
	parallelism := opts.Parallelism
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if !vectorized {
		parallelism = 1
	}
	e := &Engine{
		pager:       pager,
		cat:         catalog.New(pager, overhead),
		views:       make(map[string]*ViewDef),
		vectorized:  vectorized,
		compressed:  vectorized && !opts.DisableCompressed,
		parallelism: parallelism,
	}
	if !opts.DisablePlanCache {
		e.plans = newPlanCache(opts.PlanCacheSize)
	}
	return e
}

// Default returns an engine with the default options used throughout the
// paper reproduction: unbounded buffer pool and 9 bytes of tuple overhead.
func Default() *Engine { return New(Options{TupleOverhead: -1}) }

// Vectorized reports whether the engine executes queries batch-at-a-time.
func (e *Engine) Vectorized() bool { return e.vectorized }

// Compressed reports whether batch scans emit compressed (Const/RLE) vectors.
func (e *Engine) Compressed() bool { return e.compressed }

// Parallelism reports the worker count used for morsel-parallel execution
// (1 means serial).
func (e *Engine) Parallelism() int { return e.parallelism }

// Catalog exposes the engine's catalog.
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// Pager exposes the engine's pager (for I/O accounting).
func (e *Engine) Pager() *storage.Pager { return e.pager }

// Views returns the definitions of all materialized views, keyed by
// lower-case name. The returned map is a copy: view definitions may be
// created or dropped by a concurrent session, so callers iterate a stable
// snapshot (the *ViewDef values themselves are immutable once created).
func (e *Engine) Views() map[string]*ViewDef {
	e.viewMu.RLock()
	defer e.viewMu.RUnlock()
	out := make(map[string]*ViewDef, len(e.views))
	for k, v := range e.views {
		out[k] = v
	}
	return out
}

// View returns a materialized view definition by name.
func (e *Engine) View(name string) (*ViewDef, bool) {
	e.viewMu.RLock()
	defer e.viewMu.RUnlock()
	v, ok := e.views[strings.ToLower(name)]
	return v, ok
}

// PlanCacheStats returns a snapshot of the shared plan cache's counters
// (zero when the cache is disabled).
func (e *Engine) PlanCacheStats() PlanCacheStats {
	if e.plans == nil {
		return PlanCacheStats{}
	}
	return e.plans.snapshot()
}

// invalidatePlans clears the plan cache; callers hold the writer lock.
func (e *Engine) invalidatePlans() {
	if e.plans != nil {
		e.plans.invalidate()
	}
}

// Stats captures the cost of executing one statement.
type Stats struct {
	// Wall is the elapsed wall-clock time of execution (excluding parsing).
	Wall time.Duration
	// IO is the page I/O performed while executing.
	IO storage.IOStats
	// RowsReturned is the number of result rows.
	RowsReturned int
	// PlanCached reports that the query executed a leased plan-cache instance
	// (lex/parse/plan skipped entirely).
	PlanCached bool
}

// Result is the outcome of executing a statement. DDL statements return no
// rows but still carry statistics.
type Result struct {
	Columns []string
	Rows    []exec.Row
	Plan    string
	Stats   Stats
	// Trace is the per-operator execution trace, set only when the query ran
	// with QueryOptions.Trace (EXPLAIN ANALYZE). The tree is finished and
	// immutable: safe to share, serialize or aggregate.
	Trace *trace.Span
}

// ResetBufferPool empties the buffer pool so the next query runs cold, the
// way every measurement in the paper is taken.
func (e *Engine) ResetBufferPool() { e.pager.ResetCache() }

// Execute parses and runs one SQL statement (SELECT, INSERT, CREATE TABLE /
// INDEX / MATERIALIZED VIEW, DROP TABLE).
func (e *Engine) Execute(sqlText string) (*Result, error) {
	stmt, err := sql.Parse(sqlText)
	if err != nil {
		return nil, err
	}
	return e.ExecuteStmt(stmt)
}

// ExecuteStmt runs an already-parsed statement. SELECTs run under the shared
// reader lock; everything else takes the writer lock, runs alone, and
// invalidates the plan cache (compiled plans embed access paths, morsel page
// runs and cardinalities that any catalog or data change can break). On a
// durable engine the statement is acknowledged only once its WAL records are
// on disk; the fsync wait happens after the writer lock is released, so
// concurrent committers share one fsync (group commit).
func (e *Engine) ExecuteStmt(stmt sql.Statement) (*Result, error) {
	if s, ok := stmt.(*sql.SelectStmt); ok {
		return e.QueryStmt(s)
	}
	if s, ok := stmt.(*sql.ExplainStmt); ok {
		return e.runExplain(s)
	}
	res, lsn, err := e.applyMutation(stmt)
	if err != nil {
		return nil, err
	}
	if lsn > 0 {
		if err := e.waitDurable(lsn); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// applyMutation runs the mutation under the writer lock and, on a durable
// engine, appends its commit group to the WAL (returning the LSN to await).
func (e *Engine) applyMutation(stmt sql.Statement) (*Result, int64, error) {
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	defer e.invalidatePlans()
	kind, info := StmtDDL, stmtLabel(stmt)
	if _, ok := stmt.(*sql.InsertStmt); ok {
		kind = StmtInsert
	}
	return e.mutateLocked(kind, info, func() (*Result, error) {
		switch s := stmt.(type) {
		case *sql.CreateTableStmt:
			return e.runCreateTable(s)
		case *sql.CreateIndexStmt:
			return e.runCreateIndex(s)
		case *sql.CreateViewStmt:
			return e.runCreateView(s)
		case *sql.InsertStmt:
			return e.runInsert(s)
		case *sql.DropTableStmt:
			return e.runDropTable(s)
		default:
			return nil, fmt.Errorf("engine: unsupported statement %T", stmt)
		}
	})
}

// stmtLabel is the short statement description recorded in WAL commit markers.
func stmtLabel(stmt sql.Statement) string {
	switch s := stmt.(type) {
	case *sql.CreateTableStmt:
		return "CREATE TABLE " + s.Name
	case *sql.CreateIndexStmt:
		return "CREATE INDEX " + s.Name
	case *sql.CreateViewStmt:
		return "CREATE VIEW " + s.Name
	case *sql.InsertStmt:
		return "INSERT INTO " + s.Table
	case *sql.DropTableStmt:
		return "DROP TABLE " + s.Name
	default:
		return fmt.Sprintf("%T", stmt)
	}
}

// QueryOptions configure one query execution on top of the engine's
// defaults; the zero value reproduces plain Query.
type QueryOptions struct {
	// Ctx, when non-nil, cancels the query: execution checks it at batch
	// boundaries and a queue/timeout cancellation surfaces as the context's
	// error. nil means run to completion.
	Ctx context.Context
	// Parallelism overrides the engine's morsel-parallel worker count for
	// this query when > 0 — the serving layer's admission control grants each
	// query a slice of the core budget and pins the plan to it.
	Parallelism int
	// NoCache bypasses the plan cache for this query.
	NoCache bool
	// Trace instruments the plan with per-operator collectors and attaches
	// the finished span tree as Result.Trace. Traced executions always bypass
	// the plan cache: the instrumented operator instances must not be leased
	// to later (untraced) executions. When Trace is false no tracing code
	// runs at all — the untraced path is unchanged.
	Trace bool
}

// Query runs a SELECT statement and returns its result.
func (e *Engine) Query(sqlText string) (*Result, error) {
	return e.QueryWith(QueryOptions{}, sqlText)
}

// QueryWith runs a SELECT with per-query options. It is safe to call from
// concurrent goroutines.
func (e *Engine) QueryWith(opts QueryOptions, sqlText string) (*Result, error) {
	e.stateMu.RLock()
	defer e.stateMu.RUnlock()
	norm := ""
	if e.plans != nil && !opts.NoCache {
		norm = sql.Normalize(sqlText)
	}
	return e.execSelect(opts, norm, sqlText, nil)
}

// QueryStmt runs an already-parsed SELECT. Statement-handle executions have
// no normalized text to key the plan cache with, so they always plan.
func (e *Engine) QueryStmt(stmt *sql.SelectStmt) (*Result, error) {
	e.stateMu.RLock()
	defer e.stateMu.RUnlock()
	return e.execSelect(QueryOptions{}, "", "", stmt)
}

// Prepared is a SELECT parsed and normalized once, executable many times.
// The handle itself is immutable and safe to share across sessions; compiled
// plans are leased per execution through the shared plan cache, so repeated
// executions skip lexing, parsing, planning and morsel partitioning.
type Prepared struct {
	// Text is the original statement text.
	Text string
	norm string
	stmt *sql.SelectStmt
}

// Prepare parses a SELECT into a reusable handle.
func (e *Engine) Prepare(sqlText string) (*Prepared, error) {
	stmt, err := sql.ParseSelect(sqlText)
	if err != nil {
		return nil, err
	}
	return &Prepared{Text: sqlText, norm: sql.Normalize(sqlText), stmt: stmt}, nil
}

// QueryPrepared executes a prepared statement. Even when an intervening
// catalog change invalidated the plan cache, the parse is never repaid —
// the handle's statement replans directly.
func (e *Engine) QueryPrepared(opts QueryOptions, p *Prepared) (*Result, error) {
	e.stateMu.RLock()
	defer e.stateMu.RUnlock()
	norm := p.norm
	if e.plans == nil || opts.NoCache {
		norm = ""
	}
	return e.execSelect(opts, norm, "", p.stmt)
}

// execSelect is the shared SELECT path: lease a cached plan (or parse and
// plan), execute, and return the instance to the cache. Callers hold the
// reader lock — or the writer lock for internal selects like view
// materialization. A non-empty norm enables the plan cache; stmt, when
// non-nil, skips parsing.
func (e *Engine) execSelect(opts QueryOptions, norm, sqlText string, stmt *sql.SelectStmt) (*Result, error) {
	par := e.effectiveParallelism(opts.Parallelism)
	useCache := e.plans != nil && norm != "" && !opts.Trace
	var pl *plan.Plan
	cached := false
	key := planKey{sql: norm, vectorized: e.vectorized, compressed: e.compressed, parallelism: par}
	if useCache {
		var cachedStmt *sql.SelectStmt
		pl, cachedStmt = e.plans.acquire(key)
		cached = pl != nil
		if stmt == nil {
			stmt = cachedStmt
		}
	}
	if pl == nil {
		if stmt == nil {
			var err error
			stmt, err = sql.ParseSelect(sqlText)
			if err != nil {
				return nil, err
			}
		}
		planner := plan.NewPlanner(e.cat)
		planner.DisableCompressed = !e.compressed
		planner.DisableVectorized = !e.vectorized
		var err error
		pl, err = planner.PlanSelect(stmt)
		if err != nil {
			return nil, err
		}
		e.parallelizePlan(pl, par)
	}
	var span *trace.Span
	if opts.Trace {
		pl.Root, span = exec.InstrumentPlan(pl.Root)
	}
	res, err := e.executePlan(opts.Ctx, pl)
	if err != nil {
		// The plan instance is discarded, not released: after a failed or
		// canceled execution its operator state is suspect.
		return nil, err
	}
	if useCache {
		e.plans.release(key, stmt, pl)
	}
	res.Stats.PlanCached = cached
	res.Trace = span
	return res, nil
}

// executePlan drains a compiled plan through the engine's pull protocol,
// honoring a cancellation context when one is set.
func (e *Engine) executePlan(ctx context.Context, pl *plan.Plan) (*Result, error) {
	before := e.pager.Stats()
	start := time.Now()
	var rows []exec.Row
	var err error
	switch {
	case ctx != nil && e.vectorized:
		rows, err = exec.DrainVectorizedCtx(ctx, pl.Root)
	case ctx != nil:
		rows, err = exec.DrainCtx(ctx, pl.Root)
	case e.vectorized:
		rows, err = exec.DrainVectorized(pl.Root)
	default:
		rows, err = exec.Drain(pl.Root)
	}
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	after := e.pager.Stats()
	return &Result{
		Columns: pl.Columns,
		Rows:    rows,
		Plan:    pl.Explain,
		Stats: Stats{
			Wall:         elapsed,
			IO:           after.Sub(before),
			RowsReturned: len(rows),
		},
	}, nil
}

// effectiveParallelism resolves a per-query override against the engine
// defaults (the row engine is always serial).
func (e *Engine) effectiveParallelism(override int) int {
	par := e.parallelism
	if override > 0 {
		par = override
	}
	if !e.vectorized {
		par = 1
	}
	return par
}

// parallelizePlan applies the morsel-parallel rewrite to a compiled plan and
// annotates its Explain string when a pipeline actually went parallel, so
// the reported plan matches what executes.
func (e *Engine) parallelizePlan(pl *plan.Plan, workers int) {
	if !e.vectorized || workers <= 1 {
		return
	}
	root, rewrote := plan.Parallelize(pl.Root, workers)
	pl.Root = root
	if rewrote {
		pl.Explain = fmt.Sprintf("%s [parallel %d]", pl.Explain, workers)
	}
}

// runExplain executes an EXPLAIN [ANALYZE] statement. Plain EXPLAIN plans
// the query and returns the plan text as rows; EXPLAIN ANALYZE executes the
// query with tracing on and returns the plan text followed by the annotated
// operator tree (per-operator rows, batches, wall time, worker/morsel counts)
// and an execution summary. Either way the result is a single "plan" string
// column, one line per row, with the structured span tree in Result.Trace
// for ANALYZE.
func (e *Engine) runExplain(s *sql.ExplainStmt) (*Result, error) {
	if !s.Analyze {
		e.stateMu.RLock()
		planner := plan.NewPlanner(e.cat)
		planner.DisableCompressed = !e.compressed
		planner.DisableVectorized = !e.vectorized
		pl, err := planner.PlanSelect(s.Query)
		if err != nil {
			e.stateMu.RUnlock()
			return nil, err
		}
		e.parallelizePlan(pl, e.parallelism)
		e.stateMu.RUnlock()
		return planTextResult(pl.Explain, strings.Split(pl.Explain, "\n")), nil
	}
	e.stateMu.RLock()
	res, err := e.execSelect(QueryOptions{Trace: true}, "", "", s.Query)
	e.stateMu.RUnlock()
	if err != nil {
		return nil, err
	}
	lines := strings.Split(res.Plan, "\n")
	lines = append(lines, res.Trace.Lines()...)
	lines = append(lines, fmt.Sprintf("Execution time: %s  rows returned: %d  page reads: %d",
		res.Stats.Wall.Round(time.Microsecond), res.Stats.RowsReturned, res.Stats.IO.PageReads))
	out := planTextResult(res.Plan, lines)
	out.Trace = res.Trace
	out.Stats = res.Stats
	out.Stats.RowsReturned = len(out.Rows)
	return out, nil
}

// planTextResult wraps annotation lines as a one-column result.
func planTextResult(planText string, lines []string) *Result {
	rows := make([]exec.Row, len(lines))
	for i, line := range lines {
		rows[i] = exec.Row{value.NewString(line)}
	}
	return &Result{Columns: []string{"plan"}, Rows: rows, Plan: planText,
		Stats: Stats{RowsReturned: len(rows)}}
}

// Explain plans a SELECT and returns the textual plan without executing it,
// including the morsel-parallel rewrite the engine would apply.
func (e *Engine) Explain(sqlText string) (string, error) {
	e.stateMu.RLock()
	defer e.stateMu.RUnlock()
	stmt, err := sql.ParseSelect(sqlText)
	if err != nil {
		return "", err
	}
	planner := plan.NewPlanner(e.cat)
	planner.DisableCompressed = !e.compressed
	planner.DisableVectorized = !e.vectorized
	pl, err := planner.PlanSelect(stmt)
	if err != nil {
		return "", err
	}
	e.parallelizePlan(pl, e.parallelism)
	return pl.Explain, nil
}

// columnKind maps a SQL type name to a value kind.
func columnKind(typ string) (value.Kind, error) {
	switch strings.ToUpper(typ) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT", "TINYINT":
		return value.KindInt, nil
	case "FLOAT", "DOUBLE", "REAL", "DECIMAL", "NUMERIC":
		return value.KindFloat, nil
	case "DATE", "DATETIME", "TIMESTAMP":
		return value.KindDate, nil
	case "CHAR", "VARCHAR", "TEXT", "STRING", "NVARCHAR":
		return value.KindString, nil
	case "BOOL", "BOOLEAN", "BIT":
		return value.KindBool, nil
	default:
		return value.KindNull, fmt.Errorf("engine: unsupported column type %q", typ)
	}
}

func (e *Engine) runCreateTable(s *sql.CreateTableStmt) (*Result, error) {
	cols := make([]catalog.Column, len(s.Columns))
	for i, c := range s.Columns {
		kind, err := columnKind(c.Type)
		if err != nil {
			return nil, err
		}
		cols[i] = catalog.Column{Name: c.Name, Kind: kind}
	}
	if _, err := e.cat.CreateTable(s.Name, cols, s.PrimaryKey); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func (e *Engine) runCreateIndex(s *sql.CreateIndexStmt) (*Result, error) {
	if s.Clustered {
		return nil, fmt.Errorf("engine: declare the clustered key as PRIMARY KEY in CREATE TABLE (table %q)", s.Table)
	}
	if _, err := e.cat.CreateIndex(s.Name, s.Table, s.Columns, s.Include, s.Unique); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

// runCreateView materializes the view query into a table clustered on the
// view's group-by columns and records the definition for view matching.
func (e *Engine) runCreateView(s *sql.CreateViewStmt) (*Result, error) {
	if !s.Materialized {
		return nil, fmt.Errorf("engine: only MATERIALIZED views are supported")
	}
	name := strings.ToLower(s.Name)
	if _, exists := e.View(name); exists {
		return nil, fmt.Errorf("engine: view %q already exists", s.Name)
	}
	// The materializing select runs under the writer lock the caller holds;
	// it must not re-enter the locked query path (or the plan cache, which is
	// about to be invalidated).
	res, err := e.execSelect(QueryOptions{}, "", "", s.Query)
	if err != nil {
		return nil, err
	}
	// Column kinds come from the first row when available; group-by columns
	// default to their base kinds via the planner schema, aggregates to INT.
	kinds := make([]value.Kind, len(res.Columns))
	for i := range kinds {
		kinds[i] = value.KindInt
	}
	if len(res.Rows) > 0 {
		for i, v := range res.Rows[0] {
			if !v.IsNull() {
				kinds[i] = v.Kind
			}
		}
	}
	cols := make([]catalog.Column, len(res.Columns))
	for i, cname := range res.Columns {
		cols[i] = catalog.Column{Name: cname, Kind: kinds[i]}
	}
	// Identify group-by output columns (they become the clustered key).
	def := &ViewDef{Name: s.Name, Query: s.Query, Table: s.Name}
	groupNames := make(map[string]bool)
	for _, g := range s.Query.GroupBy {
		if ref, ok := g.(*sql.ColRef); ok {
			groupNames[strings.ToLower(ref.Column)] = true
		}
	}
	var clusterKey []string
	for i, item := range s.Query.Select {
		label := res.Columns[i]
		if item.Star {
			continue
		}
		if ref, ok := item.Expr.(*sql.ColRef); ok && groupNames[strings.ToLower(ref.Column)] {
			def.GroupColumns = append(def.GroupColumns, label)
			clusterKey = append(clusterKey, label)
			continue
		}
		def.AggColumns = append(def.AggColumns, label)
		def.Aggregates = append(def.Aggregates, strings.ToUpper(item.Expr.String()))
	}
	tbl, err := e.cat.CreateTable(s.Name, cols, clusterKey)
	if err != nil {
		return nil, err
	}
	if err := tbl.BulkLoad(res.Rows); err != nil {
		return nil, err
	}
	e.viewMu.Lock()
	e.views[name] = def
	e.viewMu.Unlock()
	return &Result{Stats: res.Stats}, nil
}

func (e *Engine) runInsert(s *sql.InsertStmt) (*Result, error) {
	tbl, err := e.cat.Table(s.Table)
	if err != nil {
		return nil, err
	}
	// Map the statement's column list (or the full schema) to table ordinals.
	ords := make([]int, 0, len(tbl.Columns))
	if len(s.Columns) == 0 {
		for i := range tbl.Columns {
			ords = append(ords, i)
		}
	} else {
		for _, cname := range s.Columns {
			ord := tbl.ColumnIndex(cname)
			if ord < 0 {
				return nil, fmt.Errorf("engine: table %q has no column %q", s.Table, cname)
			}
			ords = append(ords, ord)
		}
	}
	start := time.Now()
	before := e.pager.Stats()
	count := 0
	for _, exprRow := range s.Rows {
		if len(exprRow) != len(ords) {
			return nil, fmt.Errorf("engine: INSERT row has %d values, expected %d", len(exprRow), len(ords))
		}
		row := make([]value.Value, len(tbl.Columns))
		for i := range row {
			row[i] = value.Null()
		}
		for i, ast := range exprRow {
			v, err := evalConstExpr(ast)
			if err != nil {
				return nil, err
			}
			row[ords[i]] = coerceValue(v, tbl.Columns[ords[i]].Kind)
		}
		if err := tbl.Insert(row); err != nil {
			return nil, err
		}
		count++
	}
	// Keep dependent materialized views fresh (recompute incrementally is the
	// job of core/matview; the engine only records staleness by design).
	after := e.pager.Stats()
	return &Result{Stats: Stats{Wall: time.Since(start), IO: after.Sub(before), RowsReturned: count}}, nil
}

func (e *Engine) runDropTable(s *sql.DropTableStmt) (*Result, error) {
	if err := e.cat.DropTable(s.Name); err != nil {
		return nil, err
	}
	e.viewMu.Lock()
	delete(e.views, strings.ToLower(s.Name))
	e.viewMu.Unlock()
	return &Result{}, nil
}

// evalConstExpr evaluates an AST expression that must not reference columns.
func evalConstExpr(e sql.Expr) (value.Value, error) {
	switch t := e.(type) {
	case *sql.Literal:
		return t.Val, nil
	case *sql.BinExpr:
		l, err := evalConstExpr(t.L)
		if err != nil {
			return value.Null(), err
		}
		r, err := evalConstExpr(t.R)
		if err != nil {
			return value.Null(), err
		}
		switch t.Op {
		case "+":
			return value.Add(l, r), nil
		case "-":
			return value.Sub(l, r), nil
		case "*":
			return value.Mul(l, r), nil
		case "/":
			return value.Div(l, r), nil
		default:
			return value.Null(), fmt.Errorf("engine: operator %q not allowed in VALUES", t.Op)
		}
	default:
		return value.Null(), fmt.Errorf("engine: VALUES must be constant expressions, got %T", e)
	}
}

// coerceValue converts a literal to the column's kind where a lossless,
// intuitive conversion exists (strings to dates, ints to floats, ...).
func coerceValue(v value.Value, kind value.Kind) value.Value {
	if v.IsNull() || v.Kind == kind {
		return v
	}
	switch kind {
	case value.KindDate:
		if v.Kind == value.KindString {
			if d, err := value.ParseDate(v.S); err == nil {
				return d
			}
		}
		if v.Kind == value.KindInt {
			return value.NewDate(v.I)
		}
	case value.KindFloat:
		if v.Kind == value.KindInt {
			return value.NewFloat(float64(v.I))
		}
	case value.KindInt:
		if v.Kind == value.KindFloat {
			return value.NewInt(int64(v.F))
		}
		if v.Kind == value.KindBool {
			return value.NewInt(v.I)
		}
	case value.KindString:
		return value.NewString(v.String())
	case value.KindBool:
		return value.NewBool(v.Bool())
	}
	return v
}

// BulkLoad loads rows programmatically into a table, coercing each value to
// the column kind. It is the fast path used by the TPC-H loader. Like every
// mutation it runs exclusively and invalidates the plan cache.
func (e *Engine) BulkLoad(table string, rows [][]value.Value) error {
	_, lsn, err := e.applyBulkLoad(table, rows)
	if err != nil {
		return err
	}
	if lsn > 0 {
		return e.waitDurable(lsn)
	}
	return nil
}

func (e *Engine) applyBulkLoad(table string, rows [][]value.Value) (*Result, int64, error) {
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	defer e.invalidatePlans()
	return e.mutateLocked(StmtBulk, "BULK LOAD "+table, func() (*Result, error) {
		tbl, err := e.cat.Table(table)
		if err != nil {
			return nil, err
		}
		coerced := make([][]value.Value, len(rows))
		for i, row := range rows {
			if len(row) != len(tbl.Columns) {
				return nil, fmt.Errorf("engine: bulk load row %d has %d values, expected %d", i, len(row), len(tbl.Columns))
			}
			out := make([]value.Value, len(row))
			for j, v := range row {
				out[j] = coerceValue(v, tbl.Columns[j].Kind)
			}
			coerced[i] = out
		}
		return &Result{}, tbl.BulkLoad(coerced)
	})
}

// TotalDataPages reports the number of allocated pages in the instance,
// a rough proxy for database size on disk.
func (e *Engine) TotalDataPages() int { return e.pager.NumPages() }
