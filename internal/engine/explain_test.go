package engine

import (
	"fmt"
	"strings"
	"testing"

	"oldelephant/internal/value"
)

// traceTestEngine builds an engine with one populated table.
func traceTestEngine(t *testing.T, rows int) *Engine {
	t.Helper()
	e := New(Options{TupleOverhead: -1})
	if _, err := e.Execute("CREATE TABLE t (id INT, grp INT, amount FLOAT, PRIMARY KEY (id))"); err != nil {
		t.Fatal(err)
	}
	data := make([][]value.Value, rows)
	for i := range data {
		data[i] = []value.Value{
			value.NewInt(int64(i)),
			value.NewInt(int64(i % 7)),
			value.NewFloat(float64(i % 100)),
		}
	}
	if err := e.BulkLoad("t", data); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestTraceExplainPlanOnly(t *testing.T) {
	e := traceTestEngine(t, 100)
	res, err := e.Execute("EXPLAIN SELECT grp, COUNT(*) FROM t WHERE amount > 50 GROUP BY grp")
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Fatal("plain EXPLAIN produced a trace")
	}
	if len(res.Columns) != 1 || res.Columns[0] != "plan" {
		t.Fatalf("columns = %v", res.Columns)
	}
	text := resultText(res)
	for _, want := range []string{"Scan", "Filter"} {
		if !strings.Contains(text, want) {
			t.Errorf("plan text missing %q:\n%s", want, text)
		}
	}
	// Plain EXPLAIN must not execute: no annotation or summary lines.
	if strings.Contains(text, "rows=") || strings.Contains(text, "Execution time") {
		t.Errorf("plain EXPLAIN leaked execution annotations:\n%s", text)
	}
}

func TestTraceExplainAnalyzeAnnotations(t *testing.T) {
	e := traceTestEngine(t, 300)
	res, err := e.Execute("EXPLAIN ANALYZE SELECT grp, COUNT(*) FROM t WHERE amount >= 50 GROUP BY grp")
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("EXPLAIN ANALYZE produced no trace")
	}
	text := resultText(res)
	if !strings.Contains(text, "rows=") || !strings.Contains(text, "Execution time:") {
		t.Fatalf("EXPLAIN ANALYZE output lacks annotations:\n%s", text)
	}
	// The scan leaf saw every row; the root emitted one row per group.
	if got := res.Trace.LeafRows(); got != 300 {
		t.Fatalf("trace leaf rows = %d, want 300", got)
	}
	if got := res.Trace.Rows; got != 7 {
		t.Fatalf("trace root rows = %d, want 7 groups", got)
	}
}

// TestTraceExplainAnalyzeMatchesUntraced is the per-query identity proof:
// the traced execution must return exactly the rows an untraced run returns,
// with the root span's cardinality equal to the result's.
func TestTraceExplainAnalyzeMatchesUntraced(t *testing.T) {
	e := traceTestEngine(t, 500)
	queries := []string{
		"SELECT COUNT(*) FROM t",
		"SELECT grp, SUM(amount) FROM t WHERE amount > 25 GROUP BY grp",
		"SELECT id, amount FROM t WHERE id >= 100 AND id < 120",
		"SELECT id, grp, amount FROM t ORDER BY amount DESC, id LIMIT 13",
	}
	for _, q := range queries {
		plain, err := e.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		traced, err := e.QueryWith(QueryOptions{Trace: true}, q)
		if err != nil {
			t.Fatalf("traced %s: %v", q, err)
		}
		if traced.Trace == nil {
			t.Fatalf("%s: no trace", q)
		}
		if got, want := fmt.Sprint(traced.Rows), fmt.Sprint(plain.Rows); got != want {
			t.Errorf("%s: traced result differs:\n%s\n%s", q, got, want)
		}
		if got, want := traced.Trace.Rows, int64(len(plain.Rows)); got != want {
			t.Errorf("%s: root span rows=%d, result has %d", q, got, want)
		}
	}
}

// TestTraceDoesNotPolluteCache proves traced executions bypass the plan
// cache in both directions: they neither hit a cached plan nor deposit an
// instrumented one for later untraced runs.
func TestTraceDoesNotPolluteCache(t *testing.T) {
	e := New(Options{TupleOverhead: -1, PlanCacheSize: 16})
	if _, err := e.Execute("CREATE TABLE t (id INT, amount FLOAT, PRIMARY KEY (id))"); err != nil {
		t.Fatal(err)
	}
	data := make([][]value.Value, 50)
	for i := range data {
		data[i] = []value.Value{value.NewInt(int64(i)), value.NewFloat(float64(i))}
	}
	if err := e.BulkLoad("t", data); err != nil {
		t.Fatal(err)
	}
	const q = "SELECT COUNT(*) FROM t WHERE amount > 10"
	// Warm the cache, then confirm a traced run doesn't count as a hit.
	if _, err := e.Query(q); err != nil {
		t.Fatal(err)
	}
	before := e.PlanCacheStats()
	traced, err := e.QueryWith(QueryOptions{Trace: true}, q)
	if err != nil {
		t.Fatal(err)
	}
	if traced.Stats.PlanCached {
		t.Fatal("traced run reported a plan-cache hit")
	}
	after := e.PlanCacheStats()
	if after.Hits != before.Hits {
		t.Fatalf("traced run consumed a cached plan: hits %d -> %d", before.Hits, after.Hits)
	}
	// An untraced re-run still hits the cache and carries no trace.
	res, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Fatal("untraced run returned a trace")
	}
	if got := e.PlanCacheStats(); got.Hits != after.Hits+1 {
		t.Fatalf("untraced re-run missed the cache: hits %d -> %d", after.Hits, got.Hits)
	}
}

// resultText joins a one-column plan result into a single string.
func resultText(res *Result) string {
	var b strings.Builder
	for _, row := range res.Rows {
		b.WriteString(row[0].String())
		b.WriteByte('\n')
	}
	return b.String()
}
