package engine

import (
	"fmt"
	"strings"
	"testing"

	"oldelephant/internal/storage/faultfs"
	"oldelephant/internal/value"
)

func openDurable(t *testing.T, fs *faultfs.FS) *Engine {
	t.Helper()
	e, err := Open(Options{TupleOverhead: -1, FS: fs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return e
}

func execAll(t *testing.T, e *Engine, stmts ...string) {
	t.Helper()
	for _, s := range stmts {
		if _, err := e.Execute(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
}

func queryInts(t *testing.T, e *Engine, q string) []int64 {
	t.Helper()
	res, err := e.Query(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	out := make([]int64, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = r[0].Int()
	}
	return out
}

func TestDurableRoundTrip(t *testing.T) {
	fs := faultfs.New(1)
	e := openDurable(t, fs)
	execAll(t, e,
		"CREATE TABLE orders (id INT, cust INT, ref INT, total FLOAT, note VARCHAR, PRIMARY KEY (id))",
		"CREATE INDEX idx_ref ON orders (ref) INCLUDE (total)",
	)
	for i := 0; i < 2000; i++ {
		execAll(t, e, fmt.Sprintf("INSERT INTO orders VALUES (%d, %d, %d, %d.5, 'note-%d')", i, i%10, 1000+i, i, i))
	}
	execAll(t, e, "CREATE MATERIALIZED VIEW cust_totals AS SELECT cust, SUM(total) AS sum_total FROM orders GROUP BY cust")
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen: schema, rows, the secondary index and the view all survive.
	e2 := openDurable(t, fs)
	defer e2.Close()
	ids := queryInts(t, e2, "SELECT id FROM orders ORDER BY id")
	if len(ids) != 2000 || ids[0] != 0 || ids[1999] != 1999 {
		t.Fatalf("recovered %d rows, first=%v", len(ids), ids[:min(3, len(ids))])
	}
	// The secondary index answers a selective query (and is chosen: plan sanity).
	plan, err := e2.Explain("SELECT total FROM orders WHERE ref = 1003")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "idx_ref") {
		t.Errorf("recovered index not used in plan:\n%s", plan)
	}
	got := queryInts(t, e2, "SELECT id FROM orders WHERE ref = 1003")
	if len(got) != 1 || got[0] != 3 {
		t.Errorf("index query returned %v, want [3]", got)
	}
	// The materialized view definition and its backing rows survive.
	if _, ok := e2.View("cust_totals"); !ok {
		t.Fatal("view definition lost across restart")
	}
	vrows := queryInts(t, e2, "SELECT cust FROM cust_totals ORDER BY cust")
	if len(vrows) != 10 {
		t.Errorf("view table has %d groups, want 10", len(vrows))
	}
	// Writes after recovery work and persist again.
	execAll(t, e2, "INSERT INTO orders VALUES (5000, 1, 15000, 1.0, 'late')")
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	e3 := openDurable(t, fs)
	defer e3.Close()
	if n := len(queryInts(t, e3, "SELECT id FROM orders")); n != 2001 {
		t.Errorf("%d rows after second recovery, want 2001", n)
	}
}

// TestDurableFsyncFailureRollsBack: an injected fsync failure fails only the
// statement in flight; the engine stays consistent and serves later writes.
func TestDurableFsyncFailureRollsBack(t *testing.T) {
	fs := faultfs.New(2)
	e := openDurable(t, fs)
	execAll(t, e,
		"CREATE TABLE t (id INT, PRIMARY KEY (id))",
		"INSERT INTO t VALUES (1)",
	)
	fs.FailNextSyncs(1)
	if _, err := e.Execute("INSERT INTO t VALUES (2)"); err == nil {
		t.Fatal("INSERT during fsync failure should error")
	}
	// The failed statement is invisible; the earlier one is intact.
	if got := queryInts(t, e, "SELECT id FROM t ORDER BY id"); len(got) != 1 || got[0] != 1 {
		t.Fatalf("after failed commit: %v, want [1]", got)
	}
	// The engine recovers without restart.
	execAll(t, e, "INSERT INTO t VALUES (3)")
	if got := queryInts(t, e, "SELECT id FROM t ORDER BY id"); len(got) != 2 || got[1] != 3 {
		t.Fatalf("after recovery insert: %v, want [1 3]", got)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// And the discarded row stays gone across a restart.
	e2 := openDurable(t, fs)
	defer e2.Close()
	if got := queryInts(t, e2, "SELECT id FROM t ORDER BY id"); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("after restart: %v, want [1 3]", got)
	}
}

// TestDurableDropTableReusesPages: dropping a table frees its pages; later
// allocations reuse them (the freelist persists across restarts).
func TestDurableDropTableReusesPages(t *testing.T) {
	fs := faultfs.New(3)
	e := openDurable(t, fs)
	execAll(t, e, "CREATE TABLE big (id INT, pad VARCHAR, PRIMARY KEY (id))")
	for i := 0; i < 50; i++ {
		execAll(t, e, fmt.Sprintf("INSERT INTO big VALUES (%d, '%s')", i, strings.Repeat("x", 500)))
	}
	before := e.TotalDataPages()
	execAll(t, e, "DROP TABLE big")
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := openDurable(t, fs)
	defer e2.Close()
	execAll(t, e2, "CREATE TABLE big2 (id INT, pad VARCHAR, PRIMARY KEY (id))")
	for i := 0; i < 50; i++ {
		execAll(t, e2, fmt.Sprintf("INSERT INTO big2 VALUES (%d, '%s')", i, strings.Repeat("y", 500)))
	}
	after := e2.TotalDataPages()
	if after > before+2 {
		t.Errorf("page count grew from %d to %d; freed pages not reused", before, after)
	}
	if got := queryInts(t, e2, "SELECT id FROM big2 ORDER BY id"); len(got) != 50 {
		t.Errorf("big2 has %d rows, want 50", len(got))
	}
}

// TestDurableBulkLoadPersists: the programmatic bulk-load path goes through
// the same WAL commit protocol as SQL statements.
func TestDurableBulkLoadPersists(t *testing.T) {
	fs := faultfs.New(4)
	e := openDurable(t, fs)
	execAll(t, e, "CREATE TABLE t (id INT, name VARCHAR, PRIMARY KEY (id))")
	rows := make([][]value.Value, 1000)
	for i := range rows {
		rows[i] = []value.Value{value.NewInt(int64(i)), value.NewString(fmt.Sprintf("n-%d", i))}
	}
	if err := e.BulkLoad("t", rows); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2 := openDurable(t, fs)
	defer e2.Close()
	got := queryInts(t, e2, "SELECT id FROM t ORDER BY id")
	if len(got) != 1000 || got[999] != 999 {
		t.Fatalf("recovered %d bulk rows", len(got))
	}
}
