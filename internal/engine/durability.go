// Engine durability: the commit path tying statements to the WAL, crash
// recovery on open, and the checkpoint protocol.
//
// Commit protocol (file-backed engines): every mutating statement runs inside
// a pager statement scope that captures undo images. On success the engine
// appends one commit group to the WAL — the full images of every page the
// statement wrote, the post-statement state snapshot (catalog meta, views,
// freelist) and a commit marker — while still holding the writer lock, then
// releases the lock and calls WaitDurable. Group commit happens there:
// concurrent committers batch behind a single fsync leader. The statement is
// acknowledged only after its log records are durable.
//
// If the log write or fsync fails, the WAL discards every pending commit
// group and the engine rolls the corresponding statements back (newest
// first) and restores the pre-state snapshot, so an unacknowledged commit is
// never visible — a transient fsync failure costs the statements in flight,
// not the process.
//
// Recovery on open: load the data file (verifying per-page checksums),
// replay the WAL's complete commit groups over it (physical redo is
// idempotent), install the last committed state snapshot, verify that every
// corrupt data-file page was overwritten by redo or is free, and checkpoint.
//
// Checkpoint: force the WAL durable, flush dirty pages to the data file,
// atomically replace the meta file with the current snapshot, then truncate
// the log. Every crash window in that sequence is safe: until the truncate,
// the WAL still holds (an idempotent superset of) everything the flush wrote.
package engine

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"oldelephant/internal/sql"
	"oldelephant/internal/storage"
	"oldelephant/internal/wal"
)

const (
	dataFileName = "elephant.data"
	walFileName  = "elephant.wal"
	metaFileName = "elephant.meta"

	stateVersion = 1
)

// Statement kinds recorded in WAL commit markers.
const (
	StmtDDL    byte = 1
	StmtInsert byte = 2
	StmtBulk   byte = 3
)

// pendingCommit is a statement whose WAL records are appended but not yet
// durable: enough to roll it back if the log write fails.
type pendingCommit struct {
	lsn     int64
	undo    *storage.StmtUndo
	preMeta []byte // state snapshot from before the statement
}

// Durable reports whether the engine writes a WAL and data file.
func (e *Engine) Durable() bool { return e.wal != nil }

// WALStats returns the group-commit counters (zero for in-memory engines).
func (e *Engine) WALStats() wal.Stats {
	if e.wal == nil {
		return wal.Stats{}
	}
	return e.wal.Stats()
}

// WALSize returns the durable log bytes accumulated since the last
// checkpoint/truncate (0 for in-memory engines) — the "log bytes since
// checkpoint" series exported by the metrics registry.
func (e *Engine) WALSize() int64 {
	if e.wal == nil {
		return 0
	}
	return e.wal.Size()
}

// ResetWALStats zeroes the group-commit counters (benchmark harness use).
func (e *Engine) ResetWALStats() {
	if e.wal != nil {
		e.wal.ResetStats()
	}
}

// Open creates or reopens a durable engine. With a DataDir (or an explicit
// FS for fault-injection tests) the engine recovers from its data file and
// WAL; with neither it degrades to New (a memory-mode engine).
func Open(opts Options) (*Engine, error) {
	fsys := opts.FS
	if fsys == nil {
		if opts.DataDir == "" {
			return New(opts), nil
		}
		if err := os.MkdirAll(opts.DataDir, 0o755); err != nil {
			return nil, err
		}
		fsys = storage.OSFS{}
	}
	dataPath := filepath.Join(opts.DataDir, dataFileName)
	walPath := filepath.Join(opts.DataDir, walFileName)
	metaPath := filepath.Join(opts.DataDir, metaFileName)

	pager, corrupt, err := storage.OpenPagerFile(fsys, dataPath, opts.BufferPoolPages)
	if err != nil {
		return nil, fmt.Errorf("engine: open data file: %w", err)
	}
	e := newWithPager(opts, pager)
	e.fsys = fsys
	e.dataPath, e.walPath, e.metaPath = dataPath, walPath, metaPath

	// The state to install is the checkpointed snapshot unless the WAL holds
	// a newer committed one.
	state, _, err := storage.ReadFileAtomic(fsys, metaPath)
	if err != nil {
		return nil, fmt.Errorf("engine: read meta: %w", err)
	}
	redone := make(map[storage.PageID]bool)
	w, err := wal.Open(fsys, walPath, func(c *wal.Commit) error {
		for _, img := range c.Pages {
			if err := pager.ApplyPageImage(img.ID, img.Data); err != nil {
				return err
			}
			redone[img.ID] = true
		}
		if len(c.Meta) > 0 {
			state = append([]byte(nil), c.Meta...)
		}
		return nil
	})
	if err != nil {
		_ = pager.CloseFile()
		return nil, fmt.Errorf("engine: replay wal: %w", err)
	}
	e.wal = w
	if len(state) > 0 {
		if err := e.restoreState(state); err != nil {
			e.shutdownFiles()
			return nil, fmt.Errorf("engine: restore state: %w", err)
		}
	}
	// A page whose on-disk checksum failed must have been rewritten by redo,
	// or be unreachable (free); otherwise data was lost and opening must fail
	// loudly rather than serve corrupt rows.
	if len(corrupt) > 0 {
		free := make(map[storage.PageID]bool)
		for _, id := range e.pager.FreeList() {
			free[id] = true
		}
		for _, id := range corrupt {
			if !redone[id] && !free[id] {
				e.shutdownFiles()
				return nil, fmt.Errorf("engine: page %d failed its checksum and no log record covers it", id)
			}
		}
	}
	// Checkpoint so the next open starts from a short (empty) log.
	if err := e.Checkpoint(); err != nil {
		e.shutdownFiles()
		return nil, fmt.Errorf("engine: recovery checkpoint: %w", err)
	}
	return e, nil
}

func (e *Engine) shutdownFiles() {
	if e.wal != nil {
		_ = e.wal.Close()
	}
	_ = e.pager.CloseFile()
}

// mutateLocked runs one mutating statement under the writer lock the caller
// holds. In memory mode it just runs fn. In durable mode it wraps fn in a
// statement scope, appends the commit group to the WAL on success (returning
// its LSN for the caller to await after releasing the lock), and rolls back
// on failure so a failed statement leaves no trace.
func (e *Engine) mutateLocked(kind byte, info string, fn func() (*Result, error)) (*Result, int64, error) {
	if e.wal == nil {
		res, err := fn()
		return res, 0, err
	}
	if err := e.reconcileLocked(); err != nil {
		return nil, 0, err
	}
	preMeta := e.encodeState()
	e.pager.BeginStmt()
	res, err := fn()
	undo := e.pager.EndStmt()
	if err == nil {
		var pages []wal.PageImage
		pages, err = e.commitImages(undo)
		if err == nil {
			lsn := e.wal.Append(pages, e.encodeState(), kind, info)
			e.pending = append(e.pending, pendingCommit{lsn: lsn, undo: undo, preMeta: preMeta})
			return res, lsn, nil
		}
	}
	e.pager.Rollback(undo)
	if rerr := e.restoreState(preMeta); rerr != nil {
		return nil, 0, fmt.Errorf("engine: statement failed (%v) and rollback failed: %w", err, rerr)
	}
	return nil, 0, err
}

// commitImages copies the full image of every page the statement wrote.
func (e *Engine) commitImages(undo *storage.StmtUndo) ([]wal.PageImage, error) {
	dirty := undo.Dirty()
	pages := make([]wal.PageImage, 0, len(dirty))
	for _, id := range dirty {
		data, err := e.pager.PageData(id)
		if err != nil {
			return nil, err
		}
		pages = append(pages, wal.PageImage{ID: id, Data: data})
	}
	return pages, nil
}

// waitDurable blocks until the statement's commit group is on disk, then
// reconciles the pending list. Called after the writer lock is released so
// concurrent committers share one fsync (group commit).
func (e *Engine) waitDurable(lsn int64) error {
	err := e.wal.WaitDurable(lsn)
	e.stateMu.Lock()
	rerr := e.reconcileLocked()
	e.stateMu.Unlock()
	if err != nil {
		return err
	}
	return rerr
}

// reconcileLocked settles the pending-commit list against the WAL: durable
// commits are forgotten; discarded commits (a log write failed) are rolled
// back newest-first and the pre-state snapshot of the oldest is restored, so
// the engine returns to the last acknowledged state. Callers hold the writer
// lock; running it at every mutation entry guarantees no new statement ever
// builds on top of a discarded, not-yet-rolled-back one.
func (e *Engine) reconcileLocked() error {
	if e.wal == nil || len(e.pending) == 0 {
		return nil
	}
	durable := e.wal.DurableLSN()
	n := 0
	for n < len(e.pending) && e.pending[n].lsn <= durable {
		n++
	}
	if n > 0 {
		e.pending = append(e.pending[:0], e.pending[n:]...)
	}
	if len(e.pending) == 0 || e.pending[0].lsn > e.wal.DiscardedLSN() {
		return nil
	}
	// Every remaining pending commit was discarded by a log failure (discard
	// always covers all pending appends, and no commit was appended since —
	// mutation entry reconciles first).
	oldest := e.pending[0]
	for i := len(e.pending) - 1; i >= 0; i-- {
		e.pager.Rollback(e.pending[i].undo)
	}
	e.pending = e.pending[:0]
	e.invalidatePlans()
	if err := e.restoreState(oldest.preMeta); err != nil {
		return fmt.Errorf("engine: rollback of discarded commits failed: %w", err)
	}
	return nil
}

// Checkpoint forces the WAL durable, flushes dirty pages to the data file,
// atomically replaces the meta snapshot and truncates the log. No-op for
// memory-mode engines.
func (e *Engine) Checkpoint() error {
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	return e.checkpointLocked()
}

func (e *Engine) checkpointLocked() error {
	if e.wal == nil {
		return nil
	}
	if err := e.wal.SyncAll(); err != nil {
		rerr := e.reconcileLocked()
		if rerr != nil {
			return rerr
		}
		return err
	}
	if err := e.reconcileLocked(); err != nil {
		return err
	}
	if err := e.pager.FlushDirty(); err != nil {
		return fmt.Errorf("engine: checkpoint flush: %w", err)
	}
	if err := storage.WriteFileAtomic(e.fsys, e.metaPath, e.encodeState()); err != nil {
		return fmt.Errorf("engine: checkpoint meta: %w", err)
	}
	return e.wal.Truncate()
}

// Close checkpoints (durable engines) and releases the files. The engine
// must not be used afterwards.
func (e *Engine) Close() error {
	if e.wal == nil {
		return nil
	}
	err := e.Checkpoint()
	if werr := e.wal.Close(); err == nil {
		err = werr
	}
	if perr := e.pager.CloseFile(); err == nil {
		err = perr
	}
	return err
}

// encodeState serializes everything above the pages that recovery needs: the
// catalog meta (schemas, tree roots, heap chains, stats), the pager freelist
// and the materialized-view definitions (as re-parseable SQL).
func (e *Engine) encodeState() []byte {
	buf := []byte{stateVersion}
	cat := e.cat.EncodeMeta()
	buf = binary.AppendUvarint(buf, uint64(len(cat)))
	buf = append(buf, cat...)
	free := e.pager.FreeList()
	buf = binary.AppendUvarint(buf, uint64(len(free)))
	for _, id := range free {
		buf = binary.AppendUvarint(buf, uint64(id))
	}
	views := e.Views()
	names := make([]string, 0, len(views))
	for name := range views {
		names = append(names, name)
	}
	// Deterministic order: recovery replay must be byte-stable.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j-1] > names[j]; j-- {
			names[j-1], names[j] = names[j], names[j-1]
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	appendStr := func(s string) {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	appendStrs := func(ss []string) {
		buf = binary.AppendUvarint(buf, uint64(len(ss)))
		for _, s := range ss {
			appendStr(s)
		}
	}
	for _, name := range names {
		v := views[name]
		appendStr(v.Name)
		appendStr(v.Table)
		appendStr(v.Query.String())
		appendStrs(v.GroupColumns)
		appendStrs(v.AggColumns)
		appendStrs(v.Aggregates)
	}
	return buf
}

// restoreState rebuilds the catalog, freelist and view definitions from an
// encodeState snapshot, over whatever pages the pager currently holds.
func (e *Engine) restoreState(data []byte) error {
	r := stateReader{buf: data}
	if v := r.u8(); v != stateVersion {
		return fmt.Errorf("engine: state version %d not supported", v)
	}
	cat := r.bytes()
	nfree := int(r.uv())
	free := make([]storage.PageID, 0, nfree)
	for i := 0; i < nfree && r.err == nil; i++ {
		free = append(free, storage.PageID(r.uv()))
	}
	nviews := int(r.uv())
	views := make(map[string]*ViewDef, nviews)
	for i := 0; i < nviews && r.err == nil; i++ {
		v := &ViewDef{Name: r.str(), Table: r.str()}
		query := r.str()
		v.GroupColumns = r.strs()
		v.AggColumns = r.strs()
		v.Aggregates = r.strs()
		if r.err != nil {
			break
		}
		stmt, err := sql.ParseSelect(query)
		if err != nil {
			return fmt.Errorf("engine: restore view %q: %w", v.Name, err)
		}
		v.Query = stmt
		views[strings.ToLower(v.Name)] = v
	}
	if r.err != nil {
		return r.err
	}
	if err := e.cat.RestoreMeta(cat); err != nil {
		return err
	}
	e.pager.SetFreeList(free)
	e.viewMu.Lock()
	e.views = views
	e.viewMu.Unlock()
	return nil
}

type stateReader struct {
	buf []byte
	off int
	err error
}

func (r *stateReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("engine: truncated state snapshot at offset %d", r.off)
	}
}

func (r *stateReader) u8() byte {
	if r.err != nil || r.off >= len(r.buf) {
		r.fail()
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *stateReader) uv() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *stateReader) bytes() []byte {
	n := int(r.uv())
	if r.err != nil || r.off+n > len(r.buf) {
		r.fail()
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *stateReader) str() string { return string(r.bytes()) }

func (r *stateReader) strs() []string {
	n := int(r.uv())
	out := make([]string, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, r.str())
	}
	return out
}
