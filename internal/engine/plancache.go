package engine

import (
	"container/list"
	"sync"

	"oldelephant/internal/plan"
	"oldelephant/internal/sql"
)

// The plan cache lets repeated queries skip the lexer, parser, planner and
// morsel partitioning entirely. Compiled operator trees carry iteration
// state, so a plan instance must never execute twice concurrently; instead of
// deep-cloning twenty operator types the cache leases instances: acquire
// removes a compiled plan from the entry's idle pool (a concurrent second
// execution of the same query misses the pool, reuses the cached AST and
// replans), and release returns it after a successful execution. Every
// catalog or design change clears the cache wholesale — compiled plans embed
// physical artifacts (morsel page runs, access paths, cardinalities) that any
// schema or data change can invalidate, and mutations are rare in this
// read-mostly serving model. Acquire/release run under the engine's shared
// (read) lock and invalidation under its exclusive lock, so a stale plan can
// never be leased: a mutation cannot interleave with an in-flight lease.

// planKey identifies a cached plan: the normalized SQL text plus every engine
// knob that changes physical planning or the parallel rewrite.
type planKey struct {
	sql         string
	vectorized  bool
	compressed  bool
	parallelism int
}

// maxIdlePlans bounds each entry's pool of compiled plan instances; under
// higher same-query concurrency the overflow executions replan from the
// cached AST.
const maxIdlePlans = 8

// defaultPlanCacheSize is the default entry (distinct statement) capacity.
const defaultPlanCacheSize = 256

// PlanCacheStats is a snapshot of the plan cache's counters.
type PlanCacheStats struct {
	// Hits counts acquisitions that leased a ready compiled plan.
	Hits int64
	// StmtHits counts acquisitions that found no idle plan instance but
	// reused the cached parse tree (parse skipped, replanned).
	StmtHits int64
	// Misses counts acquisitions that found nothing.
	Misses int64
	// Evictions counts entries dropped by the LRU capacity bound.
	Evictions int64
	// Invalidations counts wholesale clears (catalog/design changes).
	Invalidations int64
	// Entries is the current number of cached statements.
	Entries int
}

// HitRate returns Hits / (Hits + StmtHits + Misses), the fraction of lookups
// that skipped parse, plan and parallelize altogether.
func (s PlanCacheStats) HitRate() float64 {
	total := s.Hits + s.StmtHits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type cacheEntry struct {
	key  planKey
	stmt *sql.SelectStmt
	idle []*plan.Plan
	elem *list.Element
}

// planCache is a shared LRU cache of compiled plans with per-entry instance
// pools. All methods are safe for concurrent use.
type planCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[planKey]*cacheEntry
	lru      *list.List // of *cacheEntry; front = most recently used
	stats    PlanCacheStats
}

func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		capacity = defaultPlanCacheSize
	}
	return &planCache{
		capacity: capacity,
		entries:  make(map[planKey]*cacheEntry),
		lru:      list.New(),
	}
}

// acquire leases a compiled plan for the key. A nil plan with a non-nil stmt
// means the entry's pool was empty but the parse tree is reusable; both nil
// is a full miss.
func (c *planCache) acquire(key planKey) (*plan.Plan, *sql.SelectStmt) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		return nil, nil
	}
	c.lru.MoveToFront(e.elem)
	if n := len(e.idle); n > 0 {
		pl := e.idle[n-1]
		e.idle = e.idle[:n-1]
		c.stats.Hits++
		return pl, e.stmt
	}
	c.stats.StmtHits++
	return nil, e.stmt
}

// release returns a plan instance (and the statement it was compiled from)
// to the cache after a successful execution, creating the entry on first
// release and evicting the least recently used statement beyond capacity.
// Plans whose execution failed must not be released: their operator state is
// suspect, and re-leasing one would replay the failure.
func (c *planCache) release(key planKey, stmt *sql.SelectStmt, pl *plan.Plan) {
	if pl == nil || stmt == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{key: key, stmt: stmt}
		e.elem = c.lru.PushFront(e)
		c.entries[key] = e
		for c.lru.Len() > c.capacity {
			back := c.lru.Back()
			evicted := back.Value.(*cacheEntry)
			c.lru.Remove(back)
			delete(c.entries, evicted.key)
			c.stats.Evictions++
		}
	} else {
		c.lru.MoveToFront(e.elem)
	}
	if len(e.idle) < maxIdlePlans {
		e.idle = append(e.idle, pl)
	}
}

// invalidate drops every cached entry. Called under the engine's exclusive
// lock after any statement that can change the catalog, the data, or a
// physical design.
func (c *planCache) invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) > 0 {
		c.entries = make(map[planKey]*cacheEntry)
		c.lru.Init()
	}
	c.stats.Invalidations++
}

// snapshot returns the current counters.
func (c *planCache) snapshot() PlanCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	return s
}
