package bench

import (
	"fmt"
	"strings"
	"time"

	"oldelephant/internal/colstore"
	"oldelephant/internal/core/rewrite"
	"oldelephant/internal/exec"
	"oldelephant/internal/expr"
	"oldelephant/internal/plan"
	"oldelephant/internal/storage"
	"oldelephant/internal/value"
)

// QueryID names one of the seven workload queries of Figure 1.
type QueryID string

// The seven queries.
const (
	Q1 QueryID = "Q1"
	Q2 QueryID = "Q2"
	Q3 QueryID = "Q3"
	Q4 QueryID = "Q4"
	Q5 QueryID = "Q5"
	Q6 QueryID = "Q6"
	Q7 QueryID = "Q7"
)

// Queries lists the workload in order.
func Queries() []QueryID { return []QueryID{Q1, Q2, Q3, Q4, Q5, Q6, Q7} }

// colOptPlan describes the executor plan that answers a workload query
// directly on the compressed projection: filter one column against the
// query parameter, group by one column, compute one aggregate.
type colOptPlan struct {
	filterCol string
	filterEq  bool // equality filter; false means strictly-greater
	groupCol  string
	agg       exec.AggKind
	aggArg    string // aggregate argument column; "" for COUNT(*)
}

// querySpec describes one workload query: how to build its SQL for a given
// parameter, which c-table design and column projection answer it, which
// columns a C-store plan must read, the ColOpt executor plan, and whether
// the query is swept over selectivities (Figure 2) or has a fixed parameter.
type querySpec struct {
	id          QueryID
	description string
	design      string // D1, D2 or D4
	colOptCols  []string
	swept       bool
	colOpt      colOptPlan
	// paramFor resolves the query parameter for a target selectivity — the
	// single source of truth shared by the SQL strategies and the ColOpt
	// executor plan.
	paramFor func(h *Harness, sel float64) value.Value
	// sqlFor renders the query and its projection fraction for a parameter
	// already resolved by paramFor.
	sqlFor func(h *Harness, d value.Value) (query string, param string, colFraction float64)
}

// resolve computes the spec's parameter once and renders the SQL for it.
func (s querySpec) resolve(h *Harness, sel float64) (d value.Value, query, param string, frac float64) {
	d = s.paramFor(h, sel)
	query, param, frac = s.sqlFor(h, d)
	return d, query, param, frac
}

func (h *Harness) specs() map[QueryID]querySpec {
	return map[QueryID]querySpec{
		Q1: {
			id: Q1, description: "count of items shipped each day after D",
			design: "D1", colOptCols: []string{"l_shipdate"}, swept: true,
			colOpt: colOptPlan{filterCol: "l_shipdate", groupCol: "l_shipdate", agg: exec.AggCountStar},
			paramFor: func(h *Harness, sel float64) value.Value {
				return paramDate(h.dateMin, h.dateMax, sel)
			},
			sqlFor: func(h *Harness, d value.Value) (string, string, float64) {
				q := fmt.Sprintf("SELECT l_shipdate, COUNT(*) FROM lineitem WHERE l_shipdate > DATE '%s' GROUP BY l_shipdate", d)
				return q, d.String(), h.fraction("D1", d)
			},
		},
		Q2: {
			id: Q2, description: "count of items shipped for each supplier on day D",
			design: "D1", colOptCols: []string{"l_shipdate", "l_suppkey"}, swept: false,
			colOpt: colOptPlan{filterCol: "l_shipdate", filterEq: true, groupCol: "l_suppkey", agg: exec.AggCountStar},
			paramFor: func(h *Harness, _ float64) value.Value {
				return h.existingDate("lineitem", "l_shipdate", midDate(h.dateMin, h.dateMax))
			},
			sqlFor: func(h *Harness, d value.Value) (string, string, float64) {
				q := fmt.Sprintf("SELECT l_suppkey, COUNT(*) FROM lineitem WHERE l_shipdate = DATE '%s' GROUP BY l_suppkey", d)
				return q, d.String(), h.eqFraction("D1", d)
			},
		},
		Q3: {
			id: Q3, description: "count of items shipped for each supplier after day D",
			design: "D1", colOptCols: []string{"l_shipdate", "l_suppkey"}, swept: true,
			colOpt: colOptPlan{filterCol: "l_shipdate", groupCol: "l_suppkey", agg: exec.AggCountStar},
			paramFor: func(h *Harness, sel float64) value.Value {
				return paramDate(h.dateMin, h.dateMax, sel)
			},
			sqlFor: func(h *Harness, d value.Value) (string, string, float64) {
				q := fmt.Sprintf("SELECT l_suppkey, COUNT(*) FROM lineitem WHERE l_shipdate > DATE '%s' GROUP BY l_suppkey", d)
				return q, d.String(), h.fraction("D1", d)
			},
		},
		Q4: {
			id: Q4, description: "latest shipdate of items ordered after each day D",
			design: "D2", colOptCols: []string{"o_orderdate", "l_shipdate"}, swept: true,
			colOpt: colOptPlan{filterCol: "o_orderdate", groupCol: "o_orderdate", agg: exec.AggMax, aggArg: "l_shipdate"},
			paramFor: func(h *Harness, sel float64) value.Value {
				return paramDate(h.orderDateMin, h.orderDateMax, sel)
			},
			sqlFor: func(h *Harness, d value.Value) (string, string, float64) {
				q := fmt.Sprintf("SELECT o_orderdate, MAX(l_shipdate) FROM lineitem, orders WHERE l_orderkey = o_orderkey AND o_orderdate > DATE '%s' GROUP BY o_orderdate", d)
				return q, d.String(), h.fraction("D2", d)
			},
		},
		Q5: {
			id: Q5, description: "latest shipdate per supplier for orders made on day D",
			design: "D2", colOptCols: []string{"o_orderdate", "l_suppkey", "l_shipdate"}, swept: false,
			colOpt: colOptPlan{filterCol: "o_orderdate", filterEq: true, groupCol: "l_suppkey", agg: exec.AggMax, aggArg: "l_shipdate"},
			paramFor: func(h *Harness, _ float64) value.Value {
				return h.existingDate("orders", "o_orderdate", midDate(h.orderDateMin, h.orderDateMax))
			},
			sqlFor: func(h *Harness, d value.Value) (string, string, float64) {
				q := fmt.Sprintf("SELECT l_suppkey, MAX(l_shipdate) FROM lineitem, orders WHERE l_orderkey = o_orderkey AND o_orderdate = DATE '%s' GROUP BY l_suppkey", d)
				return q, d.String(), h.eqFraction("D2", d)
			},
		},
		Q6: {
			id: Q6, description: "latest shipdate per supplier for orders made after day D",
			design: "D2", colOptCols: []string{"o_orderdate", "l_suppkey", "l_shipdate"}, swept: true,
			colOpt: colOptPlan{filterCol: "o_orderdate", groupCol: "l_suppkey", agg: exec.AggMax, aggArg: "l_shipdate"},
			paramFor: func(h *Harness, sel float64) value.Value {
				return paramDate(h.orderDateMin, h.orderDateMax, sel)
			},
			sqlFor: func(h *Harness, d value.Value) (string, string, float64) {
				q := fmt.Sprintf("SELECT l_suppkey, MAX(l_shipdate) FROM lineitem, orders WHERE l_orderkey = o_orderkey AND o_orderdate > DATE '%s' GROUP BY l_suppkey", d)
				return q, d.String(), h.fraction("D2", d)
			},
		},
		Q7: {
			id: Q7, description: "lost revenue per nation for returned parts",
			design: "D4", colOptCols: []string{"l_returnflag", "c_nationkey", "l_extendedprice"}, swept: false,
			colOpt: colOptPlan{filterCol: "l_returnflag", filterEq: true, groupCol: "c_nationkey", agg: exec.AggSum, aggArg: "l_extendedprice"},
			paramFor: func(h *Harness, _ float64) value.Value {
				return value.NewString("R")
			},
			sqlFor: func(h *Harness, d value.Value) (string, string, float64) {
				q := fmt.Sprintf("SELECT c_nationkey, SUM(l_extendedprice) FROM lineitem, orders, customer "+
					"WHERE l_orderkey = o_orderkey AND o_custkey = c_custkey AND l_returnflag = '%s' GROUP BY c_nationkey", d.S)
				frac, _ := h.Proj["D4"].LeadingRangeFraction(d, d, true, true)
				return q, d.String(), frac
			},
		},
	}
}

// colIndexIn returns the position of col in cols, or -1.
func colIndexIn(cols []string, col string) int {
	for i, c := range cols {
		if strings.EqualFold(c, col) {
			return i
		}
	}
	return -1
}

// ColOptOperator builds the executor plan that answers a workload query
// directly on the compressed projection: ProjectionScan → Filter →
// HashAggregate, all through the shared BatchOperator protocol on compressed
// vectors (Flat vectors when the harness's DisableCompressed knob is set).
// This replaces the bespoke colstore execution path on the query hot path:
// ColOpt is now just another executor configuration.
func (h *Harness) ColOptOperator(q QueryID, selectivity float64) (exec.BatchOperator, error) {
	spec, ok := h.specs()[q]
	if !ok {
		return nil, fmt.Errorf("bench: unknown query %q", q)
	}
	return h.colOptOperator(spec, spec.paramFor(h, selectivity))
}

// colOptOperator builds the ColOpt plan for an already-resolved parameter.
func (h *Harness) colOptOperator(spec querySpec, param value.Value) (exec.BatchOperator, error) {
	scan, err := colstore.NewProjectionScan(h.Proj[spec.design], spec.colOptCols, h.Config.DisableCompressed)
	if err != nil {
		return nil, err
	}
	cp := spec.colOpt
	fIdx := colIndexIn(spec.colOptCols, cp.filterCol)
	gIdx := colIndexIn(spec.colOptCols, cp.groupCol)
	if fIdx < 0 || gIdx < 0 {
		return nil, fmt.Errorf("bench: %s ColOpt plan references columns outside the projection scan", spec.id)
	}
	op := expr.OpGt
	if cp.filterEq {
		op = expr.OpEq
	}
	pred := expr.NewBinary(op, expr.NewColumn(fIdx, cp.filterCol), expr.NewConst(param))
	filtered := exec.NewFilter(scan, pred)
	agg := exec.AggSpec{Kind: cp.agg, Name: cp.agg.String()}
	if cp.aggArg != "" {
		aIdx := colIndexIn(spec.colOptCols, cp.aggArg)
		if aIdx < 0 {
			return nil, fmt.Errorf("bench: %s ColOpt aggregate argument %q outside the projection scan", spec.id, cp.aggArg)
		}
		agg.Arg = expr.NewColumn(aIdx, cp.aggArg)
	}
	root := exec.Operator(exec.NewHashAggregate(filtered, []int{gIdx}, []exec.AggSpec{agg}))
	// The ColOpt plan rides the same morsel-parallel rewrite as SQL plans:
	// the projection scan partitions into compressed row windows, so RLE and
	// dictionary morsels cross worker boundaries without decompressing.
	root, _ = plan.Parallelize(root, h.Config.Parallelism)
	return exec.AsBatchOperator(root), nil
}

// fraction computes the fraction of a projection's rows whose leading sort
// column is strictly greater than d.
func (h *Harness) fraction(design string, d value.Value) float64 {
	frac, err := h.Proj[design].LeadingRangeFraction(d, value.Null(), false, true)
	if err != nil {
		return 1
	}
	return frac
}

// eqFraction computes the fraction equal to d.
func (h *Harness) eqFraction(design string, d value.Value) float64 {
	frac, err := h.Proj[design].LeadingRangeFraction(d, d, true, true)
	if err != nil {
		return 1
	}
	return frac
}

// Measurement is the outcome of running one query under one strategy.
type Measurement struct {
	Query       QueryID
	Strategy    Strategy
	Selectivity float64
	Param       string
	Rows        int
	Wall        time.Duration
	IO          storage.IOStats
	PagesRead   int64
	// RowsPerSec is the result-row delivery rate (rows returned per
	// wall-clock second), recorded for consumers of Measurement; the
	// row-vs-batch executor throughput comparison itself lives in the
	// microbenchmarks (vector_bench_test.go), which measure scanned rows.
	RowsPerSec  float64
	ModeledDisk time.Duration
	// Total is the modeled end-to-end time: modeled disk time plus the CPU
	// (wall) time of execution. ColOpt by definition has no CPU component.
	Total time.Duration
	Plan  string
	// Matched reports whether Row(MV) found a matching view (always true for
	// the workload; kept for diagnostics).
	Matched bool
}

// strategySQL resolves the SQL text actually executed for one of the
// row-engine strategies: the base-table query for Row, the view rewriting for
// Row(MV), the c-table rewriting for Row(Col). ColOpt has no SQL (it is a
// modeled lower bound).
func (h *Harness) strategySQL(q QueryID, spec querySpec, strategy Strategy, query string) (string, error) {
	switch strategy {
	case StrategyRow:
		return query, nil
	case StrategyRowMV:
		stmtSQL, matched, err := h.Views.RewriteSQL(query)
		if err != nil {
			return "", err
		}
		if !matched {
			return "", fmt.Errorf("bench: no materialized view matches %s", q)
		}
		return stmtSQL, nil
	case StrategyRowCol:
		rw := rewrite.New(h.Designs[spec.design])
		return rw.RewriteSQL(query)
	default:
		return "", fmt.Errorf("bench: unknown strategy %q", strategy)
	}
}

// Run executes one query under one strategy at the given selectivity
// (ignored for the fixed-parameter queries) with a cold buffer pool.
func (h *Harness) Run(q QueryID, strategy Strategy, selectivity float64) (Measurement, error) {
	spec, ok := h.specs()[q]
	if !ok {
		return Measurement{}, fmt.Errorf("bench: unknown query %q", q)
	}
	d, query, param, frac := spec.resolve(h, selectivity)
	m := Measurement{Query: q, Strategy: strategy, Selectivity: selectivity, Param: param, Matched: true}

	if strategy == StrategyColOpt {
		pages, err := h.Proj[spec.design].ColOptPages(spec.colOptCols, frac)
		if err != nil {
			return Measurement{}, err
		}
		// Even the ideal C-store pays one random access to reach the start of
		// each column it reads; the remaining pages stream sequentially.
		cols := int64(len(spec.colOptCols))
		if pages < cols {
			pages = cols
		}
		m.PagesRead = pages
		m.IO = storage.IOStats{PageReads: pages, SeqReads: pages - cols, RandReads: cols}
		m.ModeledDisk = h.Config.Disk.Time(m.IO)
		m.Total = m.ModeledDisk
		// Execute the plan through the shared batch executor on compressed
		// vectors. The modeled disk time stays the comparison metric (the
		// projections live in memory, so the scan performs no pager I/O), but
		// the execution yields real rows — the differential tests hold them
		// against the row engine — and a real CPU wall time.
		op, err := h.colOptOperator(spec, d)
		if err != nil {
			return Measurement{}, err
		}
		start := time.Now()
		rows, err := exec.DrainBatches(op)
		if err != nil {
			return Measurement{}, fmt.Errorf("bench: %s under %s: %w", q, strategy, err)
		}
		m.Wall = time.Since(start)
		m.Rows = len(rows)
		if secs := m.Wall.Seconds(); secs > 0 {
			m.RowsPerSec = float64(m.Rows) / secs
		}
		mode := "compressed vectors"
		if h.Config.DisableCompressed {
			mode = "flat vectors"
		}
		m.Plan = fmt.Sprintf("ColOpt(scan %s of %s, fraction %.4f, %s)",
			strings.Join(spec.colOptCols, ","), spec.design, frac, mode)
		return m, nil
	}

	sqlText, err := h.strategySQL(q, spec, strategy, query)
	if err != nil {
		return Measurement{}, err
	}

	h.Engine.ResetBufferPool()
	res, err := h.Engine.Query(sqlText)
	if err != nil {
		return Measurement{}, fmt.Errorf("bench: %s under %s: %w\nSQL: %s", q, strategy, err, sqlText)
	}
	m.Rows = len(res.Rows)
	m.Wall = res.Stats.Wall
	if secs := m.Wall.Seconds(); secs > 0 {
		m.RowsPerSec = float64(m.Rows) / secs
	}
	m.IO = res.Stats.IO
	m.PagesRead = res.Stats.IO.PageReads
	m.ModeledDisk = h.Config.Disk.Time(res.Stats.IO)
	// The comparison metric is the modeled disk time: the paper's ratios are
	// driven by I/O volume, and the CPU time of this Go interpreter is not
	// comparable to a commercial compiled executor (see EXPERIMENTS.md). Wall
	// time is reported alongside for reference.
	m.Total = m.ModeledDisk
	m.Plan = res.Plan
	return m, nil
}

// RunAll measures every strategy for one query at one selectivity.
func (h *Harness) RunAll(q QueryID, selectivity float64) ([]Measurement, error) {
	var out []Measurement
	for _, s := range Strategies() {
		m, err := h.Run(q, s, selectivity)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// Figure2 reproduces Figure 2: every query, every strategy, swept over the
// configured selectivities (fixed-parameter queries appear once).
func (h *Harness) Figure2() ([]Measurement, error) {
	var out []Measurement
	for _, q := range Queries() {
		spec := h.specs()[q]
		sels := h.Config.Selectivities
		if !spec.swept {
			sels = []float64{0}
		}
		for _, sel := range sels {
			ms, err := h.RunAll(q, sel)
			if err != nil {
				return nil, err
			}
			out = append(out, ms...)
		}
	}
	return out, nil
}

// defaultSelectivity is the sweep point used for the summary ratio tables
// (10%, the middle of the paper's swept range).
const defaultSelectivity = 0.1

// RatioRow is one entry of a per-query ratio table.
type RatioRow struct {
	Query QueryID
	// Ratio is strategy time divided by reference time (values above 1 mean
	// the strategy is slower than the reference).
	Ratio float64
	// StrategyTime and ReferenceTime are the underlying modeled totals.
	StrategyTime, ReferenceTime time.Duration
}

// ratioTable measures both strategies for every query and reports
// strategy/reference total-time ratios.
func (h *Harness) ratioTable(strategy, reference Strategy) ([]RatioRow, error) {
	var out []RatioRow
	for _, q := range Queries() {
		ms, err := h.Run(q, strategy, defaultSelectivity)
		if err != nil {
			return nil, err
		}
		mr, err := h.Run(q, reference, defaultSelectivity)
		if err != nil {
			return nil, err
		}
		ratio := float64(ms.Total) / float64(mr.Total)
		out = append(out, RatioRow{Query: q, Ratio: ratio, StrategyTime: ms.Total, ReferenceTime: mr.Total})
	}
	return out, nil
}

// SpeedupTable reproduces the Section 1 table: the speedup of ColOpt over the
// plain Row strategy per query.
func (h *Harness) SpeedupTable() ([]RatioRow, error) {
	rows, err := h.ratioTable(StrategyRow, StrategyColOpt)
	if err != nil {
		return nil, err
	}
	// Report Row/ColOpt, i.e. how many times faster the C-store lower bound is.
	return rows, nil
}

// MVTable reproduces the Section 2.1 table: Row(MV) relative to ColOpt
// (values below 1 mean the materialized view beats the C-store lower bound).
func (h *Harness) MVTable() ([]RatioRow, error) {
	return h.ratioTable(StrategyRowMV, StrategyColOpt)
}

// CTableTable reproduces the Section 2.2.4 table: Row(Col) slowdown relative
// to ColOpt.
func (h *Harness) CTableTable() ([]RatioRow, error) {
	return h.ratioTable(StrategyRowCol, StrategyColOpt)
}
