package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// FormatFigure2 renders the Figure 2 measurements as one text panel per
// query: rows are parameter points (selectivity / constant), columns are the
// four strategies, cells are modeled total times.
func FormatFigure2(ms []Measurement) string {
	byQuery := make(map[QueryID][]Measurement)
	for _, m := range ms {
		byQuery[m.Query] = append(byQuery[m.Query], m)
	}
	var sb strings.Builder
	for _, q := range Queries() {
		group := byQuery[q]
		if len(group) == 0 {
			continue
		}
		fmt.Fprintf(&sb, "Figure 2 — %s (times are modeled disk + CPU)\n", q)
		fmt.Fprintf(&sb, "%-14s", "selectivity")
		for _, s := range Strategies() {
			fmt.Fprintf(&sb, "%14s", s)
		}
		sb.WriteString("\n")
		points := uniqueSelectivities(group)
		for _, sel := range points {
			label := fmt.Sprintf("%.2f", sel)
			if sel == 0 {
				label = "(fixed)"
			}
			fmt.Fprintf(&sb, "%-14s", label)
			for _, s := range Strategies() {
				m, ok := find(group, s, sel)
				if !ok {
					fmt.Fprintf(&sb, "%14s", "-")
					continue
				}
				fmt.Fprintf(&sb, "%14s", formatDuration(m.Total))
			}
			sb.WriteString("\n")
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func uniqueSelectivities(ms []Measurement) []float64 {
	seen := make(map[float64]bool)
	var out []float64
	for _, m := range ms {
		if !seen[m.Selectivity] {
			seen[m.Selectivity] = true
			out = append(out, m.Selectivity)
		}
	}
	sort.Float64s(out)
	return out
}

func find(ms []Measurement, s Strategy, sel float64) (Measurement, bool) {
	for _, m := range ms {
		if m.Strategy == s && m.Selectivity == sel {
			return m, true
		}
	}
	return Measurement{}, false
}

// FormatRatioTable renders a per-query ratio table in the style of the
// paper's summary tables.
func FormatRatioTable(title string, rows []RatioRow, invert bool) string {
	var sb strings.Builder
	sb.WriteString(title + "\n")
	fmt.Fprintf(&sb, "%-6s%14s%16s%16s\n", "query", "ratio", "strategy", "reference")
	for _, r := range rows {
		ratio := r.Ratio
		label := fmt.Sprintf("%.2fx", ratio)
		if invert && ratio != 0 {
			label = fmt.Sprintf("%.0fx faster", 1/ratio)
		}
		fmt.Fprintf(&sb, "%-6s%14s%16s%16s\n", r.Query, label,
			formatDuration(r.StrategyTime), formatDuration(r.ReferenceTime))
	}
	return sb.String()
}

// formatDuration renders a duration compactly with sensible units.
func formatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// Summary renders the headline comparison of the reproduction: the three
// tables of the paper in order.
func (h *Harness) Summary() (string, error) {
	var sb strings.Builder
	speedup, err := h.SpeedupTable()
	if err != nil {
		return "", err
	}
	sb.WriteString(FormatRatioTable("Section 1 table — Row time / ColOpt time (ColOpt speedup over Row)", speedup, false))
	sb.WriteString("\n")
	mv, err := h.MVTable()
	if err != nil {
		return "", err
	}
	sb.WriteString(FormatRatioTable("Section 2.1 table — Row(MV) time / ColOpt time", mv, false))
	sb.WriteString("\n")
	ct, err := h.CTableTable()
	if err != nil {
		return "", err
	}
	sb.WriteString(FormatRatioTable("Section 2.2.4 table — Row(Col) time / ColOpt time", ct, false))
	return sb.String(), nil
}
