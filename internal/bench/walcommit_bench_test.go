package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"oldelephant/internal/engine"
	"oldelephant/internal/storage/faultfs"
)

// The group-commit benchmark: N writers issue single-row INSERTs against a
// durable engine on the fault-injecting in-memory filesystem with a simulated
// 200µs fsync latency (an NVMe-class device). With one writer every commit
// pays its own fsync; with eight, concurrent commits batch behind one leader
// and fsyncs/commit drops below one — the whole point of group commit.
//
//	go test ./internal/bench -bench GroupCommit -benchtime 2000x
const benchSyncDelay = 200 * time.Microsecond

func BenchmarkGroupCommit(b *testing.B) {
	for _, writers := range []int{1, 8} {
		b.Run(fmt.Sprintf("writers_%d", writers), func(b *testing.B) {
			fs := faultfs.New(1)
			fs.SetSyncDelay(benchSyncDelay)
			eng, err := engine.Open(engine.Options{TupleOverhead: -1, FS: fs})
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			if _, err := eng.Execute("CREATE TABLE log (id INT, note VARCHAR, PRIMARY KEY (id))"); err != nil {
				b.Fatal(err)
			}
			eng.ResetWALStats()
			var next atomic.Int64
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						id := next.Add(1)
						if id > int64(b.N) {
							return
						}
						stmt := fmt.Sprintf("INSERT INTO log VALUES (%d, 'commit-%d')", id, id)
						if _, err := eng.Execute(stmt); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			s := eng.WALStats()
			if s.Commits > 0 {
				b.ReportMetric(float64(s.Syncs)/float64(s.Commits), "fsyncs/commit")
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "commits/s")
		})
	}
}
