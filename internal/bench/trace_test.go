package bench

import (
	"strings"
	"testing"

	"oldelephant/internal/engine"
)

// TestTraceExplainAnalyzeDifferential is the cardinality-honesty proof for
// EXPLAIN ANALYZE: across the full workload (Q1-Q7), serially and
// morsel-parallel, a traced execution must (a) return exactly the rows the
// untraced engine returns and (b) report a root-span row count equal to the
// actual result cardinality. If an instrumented wrapper dropped, duplicated
// or double-counted rows anywhere in the tree, one of the two comparisons
// breaks.
func TestTraceExplainAnalyzeDifferential(t *testing.T) {
	modes := map[string]*Harness{
		"serial":   cachedHarness(t, func(c *Config) {}),
		"parallel": cachedHarness(t, func(c *Config) { c.Parallelism = 2 }),
	}
	compared := 0
	for name, h := range modes {
		parallel := name == "parallel"
		for _, q := range Queries() {
			spec := h.specs()[q]
			sels := h.Config.Selectivities
			if !spec.swept {
				sels = []float64{0}
			}
			for _, sel := range sels {
				_, sqlText, _, _ := spec.resolve(h, sel)
				plain, err := h.Engine.Query(sqlText)
				if err != nil {
					t.Fatalf("%s %s: %v\nSQL: %s", name, q, err, sqlText)
				}
				traced, err := h.Engine.QueryWith(engine.QueryOptions{Trace: true}, sqlText)
				if err != nil {
					t.Fatalf("%s %s traced: %v\nSQL: %s", name, q, err, sqlText)
				}
				if traced.Trace == nil {
					t.Fatalf("%s %s: traced run returned no span tree", name, q)
				}
				// (a) result identity: traced == untraced. Parallel runs fold
				// float partial aggregates in morsel order, so they compare
				// as sorted sets with the differential float tolerance.
				if parallel {
					if msg := sortedRowsApproxEqual(traced.Rows, plain.Rows); msg != "" {
						t.Errorf("%s %s sel=%v: traced results differ: %s", name, q, sel, msg)
					}
				} else if got, want := formatRows(traced.Rows), formatRows(plain.Rows); got != want {
					t.Errorf("%s %s sel=%v: traced results differ\ntraced:\n%s\nuntraced:\n%s",
						name, q, sel, clip(got), clip(want))
				}
				// (b) the root span's reported cardinality is the actual one.
				if got, want := traced.Trace.Rows, int64(len(plain.Rows)); got != want {
					t.Errorf("%s %s sel=%v: root span rows=%d, actual result has %d\ntrace:\n%s",
						name, q, sel, got, want, traced.Trace.Format())
				}
				// Leaves must have seen at least as many rows as survived to
				// the root (plans only filter or aggregate rows away).
				if traced.Trace.LeafRows() < int64(len(plain.Rows)) && !strings.Contains(traced.Trace.Name, "Join") {
					t.Errorf("%s %s sel=%v: leaf rows %d < result rows %d",
						name, q, sel, traced.Trace.LeafRows(), len(plain.Rows))
				}
				compared++
			}
		}
	}
	// Floor: 7 queries × 2 modes, swept queries multiply further.
	if compared < 14 {
		t.Fatalf("only %d (query, mode, selectivity) points compared", compared)
	}
	t.Logf("compared %d (query, mode, selectivity) points", compared)
}

// BenchmarkTraceOverheadUntraced and ...Traced are the tracing A/B pair: the
// same scan-filter-aggregate query on the same engine, with and without a
// trace requested. The untraced side is the number that must not regress
// against a build without this PR (tracing off must cost nothing); the gap
// between the two is the opt-in price of EXPLAIN ANALYZE.
//
//	go test ./internal/bench -run XXX -bench 'TraceOverhead' -benchtime 200x -count 3
func BenchmarkTraceOverheadUntraced(b *testing.B) {
	vec, _ := benchEngines(b)
	runQueryBench(b, vec, scanFilterAggSQL)
}

func BenchmarkTraceOverheadTraced(b *testing.B) {
	vec, _ := benchEngines(b)
	rowsOut := 0
	spans := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := vec.QueryWith(engine.QueryOptions{Trace: true}, scanFilterAggSQL)
		if err != nil {
			b.Fatal(err)
		}
		rowsOut = len(res.Rows)
		spans = res.Trace.NumSpans()
	}
	b.StopTimer()
	if rowsOut == 0 || spans == 0 {
		b.Fatalf("traced benchmark degenerate: rows=%d spans=%d", rowsOut, spans)
	}
	b.ReportMetric(float64(benchRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}
