package bench

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"oldelephant/internal/engine"
	"oldelephant/internal/exec"
	"oldelephant/internal/plan"
)

// Parallel-executor proofs and scaling benchmarks. The differential axis
// (row vs flat vs compressed × serial vs parallel) lives in
// TestVectorizedRowDifferential; this file adds what that matrix cannot see:
// bit-level determinism across repeated parallel runs, exact ordering for
// ORDER BY/LIMIT plans, the parallel ColOpt path, and the worker-count
// scaling microbenchmark.

// parallelItemsEngine caches items-table engines per worker count.
var (
	parItemsMu  sync.Mutex
	parItemsEng = map[int]*engine.Engine{}
)

func parallelItemsEngine(tb testing.TB, workers int) *engine.Engine {
	tb.Helper()
	parItemsMu.Lock()
	defer parItemsMu.Unlock()
	if e, ok := parItemsEng[workers]; ok {
		return e
	}
	e, err := newItemsEngine(engine.Options{Parallelism: workers})
	if err != nil {
		tb.Fatal(err)
	}
	parItemsEng[workers] = e
	return e
}

// TestParallelDeterminism runs every workload query 25 times on the
// parallel harnesses and requires bit-identical results each iteration —
// including float aggregates, which the morsel-order merge makes
// reproducible even though workers race for morsels. Covers both the SQL
// engine path (Row strategy) and the compressed ColOpt executor path. Run
// under -race in CI (the workload below is exactly what the parallel
// operators do concurrently).
func TestParallelDeterminism(t *testing.T) {
	const iterations = 25
	modes, parallel := parallelModes(t)
	for _, mode := range parallel {
		h := modes[mode]
		for _, q := range Queries() {
			spec := h.specs()[q]
			_, query, _, _ := spec.resolve(h, defaultSelectivity)
			var wantSQL, wantCol string
			for i := 0; i < iterations; i++ {
				res, err := h.Engine.Query(query)
				if err != nil {
					t.Fatalf("%s %s iter %d: %v", mode, q, i, err)
				}
				got := formatRows(res.Rows)
				op, err := h.ColOptOperator(q, defaultSelectivity)
				if err != nil {
					t.Fatalf("%s %s iter %d: ColOpt plan: %v", mode, q, i, err)
				}
				colRows, err := exec.DrainBatches(op)
				if err != nil {
					t.Fatalf("%s %s iter %d: ColOpt execution: %v", mode, q, i, err)
				}
				gotCol := formatRows(colRows)
				if i == 0 {
					wantSQL, wantCol = got, gotCol
					continue
				}
				if got != wantSQL {
					t.Fatalf("%s %s: SQL results diverged between iterations 0 and %d:\n%s\nvs\n%s",
						mode, q, i, clip(wantSQL), clip(got))
				}
				if gotCol != wantCol {
					t.Fatalf("%s %s: ColOpt results diverged between iterations 0 and %d:\n%s\nvs\n%s",
						mode, q, i, clip(wantCol), clip(gotCol))
				}
			}
		}
	}
}

// TestParallelJoinDeterminism runs join plans — equi-join + aggregate and
// join + ORDER BY/LIMIT, both with morsel-parallel probe pipelines through
// the shared hash table and a parallel build — 25 times per parallel mode and
// requires bit-identical results each iteration, float sums included: the
// build merges partitions in morsel order and the probe merges emit in morsel
// order, so workers racing for morsels must not be observable.
func TestParallelJoinDeterminism(t *testing.T) {
	const iterations = 25
	probes := []string{
		"SELECT c_nationkey, COUNT(*), SUM(l_extendedprice) FROM lineitem, orders, customer WHERE l_orderkey = o_orderkey AND o_custkey = c_custkey GROUP BY c_nationkey",
		"SELECT l_orderkey, l_linenumber, o_orderdate FROM lineitem, orders WHERE l_orderkey = o_orderkey AND o_orderdate > DATE '1996-06-01' ORDER BY o_orderdate, l_orderkey, l_linenumber LIMIT 200",
	}
	modes, parallel := parallelModes(t)
	for _, mode := range parallel {
		h := modes[mode]
		for _, q := range probes {
			var want string
			for i := 0; i < iterations; i++ {
				res, err := h.Engine.Query(q)
				if err != nil {
					t.Fatalf("%s iter %d: %v\nSQL: %s", mode, i, err, q)
				}
				got := formatRows(res.Rows)
				if i == 0 {
					if len(res.Rows) == 0 {
						t.Fatalf("%s: join determinism probe returned no rows\nSQL: %s", mode, q)
					}
					want = got
					continue
				}
				if got != want {
					t.Fatalf("%s: join results diverged between iterations 0 and %d:\n%s\nvs\n%s\nSQL: %s",
						mode, i, clip(want), clip(got), q)
				}
			}
		}
	}
}

// TestParallelColOptMatchesSerial: the morsel-parallel ColOpt plan — the
// projection scan partitioned into compressed row windows — returns the
// serial compressed plan's result set for every workload query (float sums
// within 1e-9 relative; compressed morsels fold runs in morsel order).
func TestParallelColOptMatchesSerial(t *testing.T) {
	modes, parallel := parallelModes(t)
	serial := modes["compressed-vector"]
	for _, mode := range parallel {
		h := modes[mode]
		if h.Config.DisableCompressed {
			continue
		}
		for _, q := range Queries() {
			sop, err := serial.ColOptOperator(q, defaultSelectivity)
			if err != nil {
				t.Fatal(err)
			}
			want, err := exec.DrainBatches(sop)
			if err != nil {
				t.Fatal(err)
			}
			pop, err := h.ColOptOperator(q, defaultSelectivity)
			if err != nil {
				t.Fatal(err)
			}
			got, err := exec.DrainBatches(pop)
			if err != nil {
				t.Fatalf("%s %s: parallel ColOpt execution: %v", mode, q, err)
			}
			if msg := rowsApproxEqual(got, want); msg != "" {
				t.Errorf("%s %s: parallel ColOpt differs from serial: %s", mode, q, msg)
			}
		}
	}
}

// TestParallelOrderByLimitExactOrder holds parallel plans that promise exact
// ordering to that promise: non-aggregating pipelines (ParallelMerge
// reassembles morsel order) and ORDER BY/LIMIT plans (ParallelSort's K-way
// merge reproduces the serial stable sort, ties included) must match the
// serial engine byte for byte — no sorted-set weakening, no tolerance. The
// probed rows come straight from the scan, so even float columns must be
// bit-identical.
func TestParallelOrderByLimitExactOrder(t *testing.T) {
	serial := parallelItemsEngine(t, 1)
	probes := []string{
		// ParallelMerge: filter pipeline, morsel-order reassembly.
		"SELECT id, supp, price FROM items WHERE price > 950",
		// ParallelSort under a serial Limit.
		"SELECT id, supp, price FROM items WHERE price > 600 ORDER BY price DESC, id LIMIT 100",
		// Heavy duplication on the sort key: stability across morsel seams.
		"SELECT supp, price FROM items WHERE price < 150 ORDER BY supp LIMIT 500",
		// ORDER BY the full scan with OFFSET pagination over the merge.
		"SELECT supp, id FROM items ORDER BY supp, id LIMIT 50 OFFSET 1000",
	}
	for _, workers := range []int{2, 4} {
		par := parallelItemsEngine(t, workers)
		for _, q := range probes {
			want, err := serial.Query(q)
			if err != nil {
				t.Fatalf("serial %q: %v", q, err)
			}
			got, err := par.Query(q)
			if err != nil {
				t.Fatalf("P=%d %q: %v", workers, q, err)
			}
			if g, w := formatRows(got.Rows), formatRows(want.Rows); g != w {
				t.Errorf("P=%d %q: exact order broken\nparallel (%d rows):\n%s\nserial (%d rows):\n%s",
					workers, q, len(got.Rows), clip(g), len(want.Rows), clip(w))
			}
		}
		// Aggregates compare with tolerance (float partials fold in morsel
		// order) but the group order must still be exact.
		agg := "SELECT supp, COUNT(*), SUM(price) FROM items WHERE ship > DATE '1995-03-01' GROUP BY supp"
		want, err := serial.Query(agg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := par.Query(agg)
		if err != nil {
			t.Fatal(err)
		}
		if msg := rowsApproxEqual(got.Rows, want.Rows); msg != "" {
			t.Errorf("P=%d aggregate differs (order-sensitive compare): %s", workers, msg)
		}
	}
}

// TestParallelSerialKnobIdentity pins the Options.Parallelism contract: 1
// (and the row engine, always) runs the serial plans; 0 resolves to
// GOMAXPROCS; the harness default stays serial.
func TestParallelSerialKnobIdentity(t *testing.T) {
	if got := parallelItemsEngine(t, 1).Parallelism(); got != 1 {
		t.Errorf("Parallelism(1) engine reports %d workers", got)
	}
	e := engine.New(engine.Options{TupleOverhead: -1})
	if got, want := e.Parallelism(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("default engine reports %d workers, want GOMAXPROCS=%d", got, want)
	}
	row := engine.New(engine.Options{TupleOverhead: -1, DisableVectorized: true, Parallelism: 8})
	if got := row.Parallelism(); got != 1 {
		t.Errorf("row engine reports %d workers, want 1 (row path is always serial)", got)
	}
	h := cachedHarness(t, func(c *Config) {})
	if got := h.Engine.Parallelism(); got != 1 {
		t.Errorf("default harness engine reports %d workers, want 1", got)
	}
}

// benchParallelColOptPlan is benchColOptPlan after the morsel-parallel
// rewrite: the same scan → filter → aggregate over the 150k-row compressed
// projection, split into row-window morsels for the given worker count.
func benchParallelColOptPlan(tb testing.TB, flat bool, workers int) exec.BatchOperator {
	tb.Helper()
	root, _ := plan.Parallelize(exec.AsRowOperator(benchColOptPlan(tb, flat)), workers)
	return exec.AsBatchOperator(root)
}

// BenchmarkParallelScanFilterAgg is the worker-count scaling benchmark on
// the 150k-row scan-filter-aggregate: the flat-vector SQL path
// (SeqScan morsels over B-tree leaf ranges) and the compressed ColOpt path
// (projection row-window morsels), each at 1/2/4/8 workers.
//
//	go test ./internal/bench -bench ParallelScanFilterAgg
func BenchmarkParallelScanFilterAgg(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("flat/workers-%d", workers), func(b *testing.B) {
			e := parallelItemsEngine(b, workers)
			runQueryBench(b, e, scanFilterAggSQL)
		})
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("compressed/workers-%d", workers), func(b *testing.B) {
			rowsOut := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows, err := exec.DrainBatches(benchParallelColOptPlan(b, false, workers))
				if err != nil {
					b.Fatal(err)
				}
				rowsOut = len(rows)
			}
			b.StopTimer()
			if rowsOut == 0 {
				b.Fatal("benchmark plan returned no rows")
			}
			b.ReportMetric(float64(benchRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// TestParallelScalingPlansAgree keeps the scaling benchmark honest: every
// worker count must return the serial engine's rows for the benchmarked
// query and plan.
func TestParallelScalingPlansAgree(t *testing.T) {
	want, err := parallelItemsEngine(t, 1).Query(scanFilterAggSQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) == 0 {
		t.Fatal("benchmark query returned no rows")
	}
	wantCol, err := exec.DrainBatches(benchColOptPlan(t, false))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := parallelItemsEngine(t, workers).Query(scanFilterAggSQL)
		if err != nil {
			t.Fatal(err)
		}
		if msg := rowsApproxEqual(got.Rows, want.Rows); msg != "" {
			t.Errorf("workers=%d: SQL scaling plan differs from serial: %s", workers, msg)
		}
		gotCol, err := exec.DrainBatches(benchParallelColOptPlan(t, false, workers))
		if err != nil {
			t.Fatal(err)
		}
		if msg := rowsApproxEqual(gotCol, wantCol); msg != "" {
			t.Errorf("workers=%d: ColOpt scaling plan differs from serial: %s", workers, msg)
		}
	}
}
