package bench

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"oldelephant/internal/engine"
	"oldelephant/internal/value"
)

// The hash-join microbenchmarks: the same equi-join scan-filter-aggregate SQL
// over the same loaded tables, compared across the row-at-a-time HashJoin
// (the oracle), the serial VectorizedHashJoin, and the morsel-parallel form
// (probe pipeline through the shared table + parallel build). The probe side
// is fixed at 150k rows; the build side varies in size and key cardinality.
//
//	go test ./internal/bench -bench HashJoin

const joinProbeRows = benchRows // 150k facts

// joinBenchSQL joins every fact to exactly one dim row, filters ~75% of the
// facts and aggregates into a handful of groups — the workload's Q4-Q7 shape.
// OPTION(HASH JOIN) pins the algorithm so the benchmark cannot silently turn
// into an index-nested-loop plan.
const joinBenchSQL = "SELECT grp, COUNT(*), SUM(price) FROM facts, dims " +
	"WHERE k = id AND price < 850 GROUP BY grp OPTION(HASH JOIN)"

// newJoinEngine loads a facts/dims star pair: facts(fid, k, price) with k
// uniform over the dims key range, dims(id, grp, weight) with dimRows
// distinct keys.
func newJoinEngine(opts engine.Options, dimRows int) (*engine.Engine, error) {
	opts.TupleOverhead = -1
	e := engine.New(opts)
	if _, err := e.Execute("CREATE TABLE facts (fid INT, k INT, price FLOAT, PRIMARY KEY (fid))"); err != nil {
		return nil, err
	}
	if _, err := e.Execute("CREATE TABLE dims (id INT, grp INT, weight FLOAT, PRIMARY KEY (id))"); err != nil {
		return nil, err
	}
	facts := make([][]value.Value, joinProbeRows)
	for i := range facts {
		facts[i] = []value.Value{
			value.NewInt(int64(i)),
			value.NewInt(int64(i % dimRows)),
			value.NewFloat(float64(100 + i%1000)),
		}
	}
	if err := e.BulkLoad("facts", facts); err != nil {
		return nil, err
	}
	dims := make([][]value.Value, dimRows)
	for i := range dims {
		dims[i] = []value.Value{
			value.NewInt(int64(i)),
			value.NewInt(int64(i % 25)),
			value.NewFloat(float64(i)),
		}
	}
	if err := e.BulkLoad("dims", dims); err != nil {
		return nil, err
	}
	return e, nil
}

// joinEngineCache memoizes the loaded engines per (row-mode, dims, workers).
var (
	joinEngMu    sync.Mutex
	joinEngCache = map[string]*engine.Engine{}
)

func joinEngine(tb testing.TB, rowMode bool, dimRows, workers int) *engine.Engine {
	tb.Helper()
	key := fmt.Sprintf("row=%v dims=%d p=%d", rowMode, dimRows, workers)
	joinEngMu.Lock()
	defer joinEngMu.Unlock()
	if e, ok := joinEngCache[key]; ok {
		return e
	}
	e, err := newJoinEngine(engine.Options{DisableVectorized: rowMode, Parallelism: workers}, dimRows)
	if err != nil {
		tb.Fatal(err)
	}
	joinEngCache[key] = e
	return e
}

// joinBenchDims are the build-side sizes (and, since keys are unique, key
// cardinalities) the family sweeps: a cache-resident build and one ~1/3 the
// probe size.
var joinBenchDims = []int{1000, 50000}

func BenchmarkHashJoinRow(b *testing.B) {
	for _, dims := range joinBenchDims {
		b.Run(fmt.Sprintf("build-%d", dims), func(b *testing.B) {
			runQueryBench(b, joinEngine(b, true, dims, 1), joinBenchSQL)
		})
	}
}

func BenchmarkHashJoinVectorized(b *testing.B) {
	for _, dims := range joinBenchDims {
		b.Run(fmt.Sprintf("build-%d", dims), func(b *testing.B) {
			runQueryBench(b, joinEngine(b, false, dims, 1), joinBenchSQL)
		})
	}
}

// BenchmarkHashJoinParallel is the worker sweep on the large build side: the
// probe pipeline parallelizes through the join and the build hashes
// morsel-parallel into per-worker partitions.
func BenchmarkHashJoinParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			runQueryBench(b, joinEngine(b, false, 50000, workers), joinBenchSQL)
		})
	}
}

// TestHashJoinBenchPlansAgree keeps the join benchmarks honest: every
// benchmarked configuration must run a hash-join plan and return the
// row-at-a-time engine's rows (serial modes exactly, parallel modes within
// the float-sum tolerance).
func TestHashJoinBenchPlansAgree(t *testing.T) {
	for _, dims := range joinBenchDims {
		want, err := joinEngine(t, true, dims, 1).Query(joinBenchSQL)
		if err != nil {
			t.Fatal(err)
		}
		if len(want.Rows) == 0 {
			t.Fatal("join benchmark query returned no rows")
		}
		if !strings.Contains(want.Plan, "HashJoin") {
			t.Fatalf("join benchmark is not hash-joining: %s", want.Plan)
		}
		got, err := joinEngine(t, false, dims, 1).Query(joinBenchSQL)
		if err != nil {
			t.Fatal(err)
		}
		if got.Plan != want.Plan {
			t.Errorf("dims=%d: vectorized plan differs: %s vs %s", dims, got.Plan, want.Plan)
		}
		if g, w := formatRows(got.Rows), formatRows(want.Rows); g != w {
			t.Errorf("dims=%d: serial vectorized join diverges from row engine:\n%s\nvs\n%s",
				dims, clip(g), clip(w))
		}
	}
	want, err := joinEngine(t, false, 50000, 1).Query(joinBenchSQL)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := joinEngine(t, false, 50000, workers).Query(joinBenchSQL)
		if err != nil {
			t.Fatal(err)
		}
		if msg := rowsApproxEqual(got.Rows, want.Rows); msg != "" {
			t.Errorf("workers=%d: parallel join plan differs from serial: %s", workers, msg)
		}
	}
}
