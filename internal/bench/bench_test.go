package bench

import (
	"strings"
	"testing"
	"time"

	"oldelephant/internal/storage"
	"oldelephant/internal/value"
)

// sharedHarness is built once because loading TPC-H and building three
// physical designs dominates test time.
var sharedHarness *Harness

func harness(t testing.TB) *Harness {
	t.Helper()
	if sharedHarness != nil {
		return sharedHarness
	}
	cfg := DefaultConfig()
	cfg.SF = 0.002
	cfg.Selectivities = []float64{0.1, 0.5}
	h, err := NewHarness(cfg)
	if err != nil {
		t.Fatalf("NewHarness: %v", err)
	}
	sharedHarness = h
	return h
}

func TestDiskModel(t *testing.T) {
	m := DefaultDiskModel()
	io := storage.IOStats{SeqReads: 100, RandReads: 10}
	if m.Time(io) != 100*m.SeqReadPerPage+10*m.RandReadPerPage {
		t.Error("Time arithmetic wrong")
	}
	if m.SeqTime(50) != 50*m.SeqReadPerPage {
		t.Error("SeqTime arithmetic wrong")
	}
}

func TestHarnessSetup(t *testing.T) {
	h := harness(t)
	for _, d := range []string{"D1", "D2", "D4"} {
		if h.Designs[d] == nil || h.Proj[d] == nil {
			t.Fatalf("design %s missing", d)
		}
		if h.Designs[d].NumRows == 0 || h.Proj[d].NumRows == 0 {
			t.Fatalf("design %s is empty", d)
		}
		if h.Designs[d].NumRows != h.Proj[d].NumRows {
			t.Errorf("design %s rows %d != projection rows %d", d, h.Designs[d].NumRows, h.Proj[d].NumRows)
		}
	}
	if len(h.Engine.Views()) != 4 {
		t.Errorf("views = %d, want 4", len(h.Engine.Views()))
	}
	if value.Compare(h.dateMin, h.dateMax) >= 0 {
		t.Error("shipdate range is empty")
	}
}

func TestStrategiesAgreeOnResults(t *testing.T) {
	h := harness(t)
	// For every query, Row, Row(MV) and Row(Col) must return identical row
	// counts (ColOpt is only a bound, it returns no rows).
	for _, q := range Queries() {
		row, err := h.Run(q, StrategyRow, 0.1)
		if err != nil {
			t.Fatalf("%s Row: %v", q, err)
		}
		mv, err := h.Run(q, StrategyRowMV, 0.1)
		if err != nil {
			t.Fatalf("%s Row(MV): %v", q, err)
		}
		col, err := h.Run(q, StrategyRowCol, 0.1)
		if err != nil {
			t.Fatalf("%s Row(Col): %v", q, err)
		}
		if row.Rows != mv.Rows || row.Rows != col.Rows {
			t.Errorf("%s row counts differ: Row=%d Row(MV)=%d Row(Col)=%d", q, row.Rows, mv.Rows, col.Rows)
		}
		if row.Rows == 0 {
			t.Errorf("%s returned no rows; parameter too selective", q)
		}
	}
}

func TestColOptIsCheapestOnSelectiveQueries(t *testing.T) {
	h := harness(t)
	for _, q := range []QueryID{Q1, Q2, Q3} {
		ms, err := h.RunAll(q, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		byStrategy := make(map[Strategy]Measurement)
		for _, m := range ms {
			byStrategy[m.Strategy] = m
		}
		if byStrategy[StrategyColOpt].Total > byStrategy[StrategyRow].Total {
			t.Errorf("%s: ColOpt (%v) should beat Row (%v)", q,
				byStrategy[StrategyColOpt].Total, byStrategy[StrategyRow].Total)
		}
		if byStrategy[StrategyRowMV].PagesRead > byStrategy[StrategyRow].PagesRead {
			t.Errorf("%s: Row(MV) reads more pages than Row", q)
		}
		if byStrategy[StrategyRowCol].PagesRead > byStrategy[StrategyRow].PagesRead {
			t.Errorf("%s: Row(Col) reads more pages than Row", q)
		}
	}
}

func TestPaperShapeHolds(t *testing.T) {
	h := harness(t)
	// Headline shape of the paper's evaluation:
	// (1) ColOpt is orders of magnitude faster than Row on Q1.
	speedup, err := h.SpeedupTable()
	if err != nil {
		t.Fatal(err)
	}
	ratios := make(map[QueryID]float64)
	for _, r := range speedup {
		ratios[r.Query] = r.Ratio
	}
	// At the tiny scale factor used for unit tests the advantage is a small
	// multiple; it grows with scale (see EXPERIMENTS.md for the benchmark runs).
	if ratios[Q1] < 3 {
		t.Errorf("Q1 Row/ColOpt = %.1fx, expected a clear speedup", ratios[Q1])
	}
	if ratios[Q3] < 2 {
		t.Errorf("Q3 Row/ColOpt = %.1fx, expected ColOpt ahead", ratios[Q3])
	}
	// (2) Row(MV) is within a small factor of ColOpt for Q1-Q3 and far better
	// than ColOpt for Q7 (the paper reports 1,400x better).
	mv, err := h.MVTable()
	if err != nil {
		t.Fatal(err)
	}
	mvRatios := make(map[QueryID]float64)
	for _, r := range mv {
		mvRatios[r.Query] = r.Ratio
	}
	for _, q := range []QueryID{Q1, Q2, Q3} {
		if mvRatios[q] > 20 {
			t.Errorf("%s Row(MV)/ColOpt = %.1fx, expected within a small factor", q, mvRatios[q])
		}
	}
	if mvRatios[Q7] > 0.5 {
		t.Errorf("Q7 Row(MV)/ColOpt = %.2fx, expected the view to be much faster than ColOpt", mvRatios[Q7])
	}
	// (3) Row(Col) is within a small constant factor of ColOpt across the board
	// (the paper reports 1.1x-5.6x, average 2.7x).
	ct, err := h.CTableTable()
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, r := range ct {
		sum += r.Ratio
		if r.Ratio > 40 {
			t.Errorf("%s Row(Col)/ColOpt = %.1fx, far outside the paper's range", r.Query, r.Ratio)
		}
	}
	avg := sum / float64(len(ct))
	if avg > 15 {
		t.Errorf("average Row(Col)/ColOpt = %.1fx, expected a small factor", avg)
	}
}

func TestFigure2AndFormatting(t *testing.T) {
	h := harness(t)
	ms, err := h.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	// 4 swept queries x 2 selectivities x 4 strategies + 3 fixed x 4.
	want := 4*2*4 + 3*4
	if len(ms) != want {
		t.Errorf("Figure2 measurements = %d, want %d", len(ms), want)
	}
	text := FormatFigure2(ms)
	for _, q := range Queries() {
		if !strings.Contains(text, string(q)) {
			t.Errorf("Figure 2 output missing %s", q)
		}
	}
	summary, err := h.Summary()
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"Section 1", "Section 2.1", "Section 2.2.4", "Q7"} {
		if !strings.Contains(summary, frag) {
			t.Errorf("summary missing %q", frag)
		}
	}
	// Ratio table rendering with inversion.
	inverted := FormatRatioTable("t", []RatioRow{{Query: Q1, Ratio: 0.5, StrategyTime: time.Second, ReferenceTime: 2 * time.Second}}, true)
	if !strings.Contains(inverted, "faster") {
		t.Errorf("inverted table rendering: %s", inverted)
	}
	if formatDuration(500*time.Nanosecond) == "" || formatDuration(2*time.Second) == "" {
		t.Error("formatDuration failed")
	}
}

func TestRunErrors(t *testing.T) {
	h := harness(t)
	if _, err := h.Run("Q99", StrategyRow, 0.1); err == nil {
		t.Error("unknown query should fail")
	}
	if _, err := h.Run(Q1, Strategy("bogus"), 0.1); err == nil {
		t.Error("unknown strategy should fail")
	}
}

func TestDefaultConfigNormalization(t *testing.T) {
	cfg := Config{SF: 0.001}
	h, err := NewHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Config.Selectivities) == 0 || h.Config.Disk.SeqReadPerPage == 0 {
		t.Error("config defaults not applied")
	}
}
