// Package bench implements the experiment harness that reproduces the
// paper's evaluation: the seven queries of Figure 1 executed under the four
// strategies (Row, Row(MV), Row(Col), ColOpt) over a TPC-H database, with
// the parameter sweeps behind Figure 2 and the three summary tables.
//
// Times are reported two ways: the wall-clock time of the in-memory engine,
// and a modeled disk time derived from the pager's sequential/random page
// counters (the paper's numbers are dominated by I/O volume, which the page
// counters capture exactly). ColOpt is charged only the sequential read of
// the compressed column pages, as in the paper.
package bench

import (
	"fmt"
	"time"

	"oldelephant/internal/colstore"
	"oldelephant/internal/core/ctable"
	"oldelephant/internal/core/matview"
	"oldelephant/internal/engine"
	"oldelephant/internal/storage"
	"oldelephant/internal/tpch"
	"oldelephant/internal/value"
)

// Strategy identifies one of the four evaluated execution strategies.
type Strategy string

// The four strategies of the paper's evaluation.
const (
	StrategyRow    Strategy = "Row"
	StrategyRowMV  Strategy = "Row(MV)"
	StrategyRowCol Strategy = "Row(Col)"
	StrategyColOpt Strategy = "ColOpt"
)

// Strategies lists all strategies in presentation order.
func Strategies() []Strategy {
	return []Strategy{StrategyRow, StrategyRowMV, StrategyRowCol, StrategyColOpt}
}

// DiskModel converts page I/O counts into a modeled disk time. The defaults
// approximate the 7200 RPM SATA drive of the paper's testbed: ~80 MB/s
// sequential bandwidth (≈0.1 ms per 8 KB page) and ~8 ms per random access.
type DiskModel struct {
	SeqReadPerPage  time.Duration
	RandReadPerPage time.Duration
}

// DefaultDiskModel returns the model described above.
func DefaultDiskModel() DiskModel {
	return DiskModel{SeqReadPerPage: 100 * time.Microsecond, RandReadPerPage: 8 * time.Millisecond}
}

// Time converts I/O statistics into modeled disk time.
func (m DiskModel) Time(io storage.IOStats) time.Duration {
	return time.Duration(io.SeqReads)*m.SeqReadPerPage + time.Duration(io.RandReads)*m.RandReadPerPage
}

// SeqTime charges every page read at the sequential rate (used for ColOpt).
func (m DiskModel) SeqTime(pages int64) time.Duration {
	return time.Duration(pages) * m.SeqReadPerPage
}

// Config controls the harness.
type Config struct {
	// SF is the TPC-H scale factor (the paper uses 10; in-memory runs use a
	// small fraction — ratios are what matter).
	SF float64
	// Selectivities are the fractions of the date range swept for Q1, Q3, Q4
	// and Q6 (Figure 2's x axis).
	Selectivities []float64
	// Disk is the I/O time model.
	Disk DiskModel
	// TupleOverhead is the per-tuple overhead of the row store (default 9).
	TupleOverhead int
	// DisableVectorized runs the engine row-at-a-time instead of the default
	// batch-at-a-time executor; used for differential testing and the
	// row-vs-batch microbenchmarks.
	DisableVectorized bool
	// DisableCompressed keeps the batch executor but forces flat
	// (decompressed) vectors everywhere: engine scans stop emitting Const/RLE
	// vectors and the ColOpt projection scan decompresses its segments. Used
	// for differential testing and the flat-vs-compressed microbenchmarks.
	DisableCompressed bool
	// Parallelism is the morsel-parallel worker count applied to both the
	// engine's SQL plans and the ColOpt executor plans. 0 keeps the harness
	// serial (unlike the engine's GOMAXPROCS default: measurements compare
	// against the paper's single-core setting unless parallelism is asked
	// for); values > 1 enable parallel execution.
	Parallelism int
	// PlanCache enables the engine's shared plan cache. Off by default —
	// measurements must pay lex/parse/plan on every run the way every prior
	// number was taken — and turned on by the serving-layer tests and the
	// multi-client throughput benchmark, where plan reuse is the point.
	PlanCache bool
}

// DefaultConfig returns the configuration used by the checked-in benchmarks.
func DefaultConfig() Config {
	return Config{
		SF:            0.01,
		Selectivities: []float64{0.01, 0.1, 0.5, 1.0},
		Disk:          DefaultDiskModel(),
		TupleOverhead: storage.DefaultTupleOverhead,
	}
}

// Harness holds the loaded database, the physical designs of every strategy
// and the column-store projections used for the ColOpt bound.
type Harness struct {
	Config  Config
	Engine  *engine.Engine
	Views   *matview.Manager
	Designs map[string]*ctable.Design
	Proj    map[string]*colstore.Projection

	dateMin, dateMax           value.Value // l_shipdate range
	orderDateMin, orderDateMax value.Value
}

// NewHarness loads TPC-H at the configured scale factor and builds the
// physical designs of all strategies:
//
//	Row      — base tables with primary (clustered) indexes only;
//	Row(MV)  — the generalized materialized views MV1-3, MV4-6 and MV7;
//	Row(Col) — c-table designs D1, D2 and D4 with f/v indexes;
//	ColOpt   — compressed column projections for D1, D2 and D4.
func NewHarness(cfg Config) (*Harness, error) {
	if len(cfg.Selectivities) == 0 {
		cfg.Selectivities = DefaultConfig().Selectivities
	}
	if cfg.Disk == (DiskModel{}) {
		cfg.Disk = DefaultDiskModel()
	}
	if cfg.SF <= 0 {
		cfg.SF = DefaultConfig().SF
	}
	if cfg.Parallelism < 1 {
		cfg.Parallelism = 1
	}
	e := engine.New(engine.Options{
		TupleOverhead:     cfg.TupleOverhead,
		DisableVectorized: cfg.DisableVectorized,
		DisableCompressed: cfg.DisableCompressed,
		Parallelism:       cfg.Parallelism,
		DisablePlanCache:  !cfg.PlanCache,
	})
	gen := tpch.NewGenerator(cfg.SF)
	if err := gen.LoadCore(e); err != nil {
		return nil, err
	}
	h := &Harness{
		Config:  cfg,
		Engine:  e,
		Views:   matview.NewManager(e),
		Designs: make(map[string]*ctable.Design),
		Proj:    make(map[string]*colstore.Projection),
	}
	if err := h.buildDesigns(); err != nil {
		return nil, err
	}
	if err := h.loadDateRanges(); err != nil {
		return nil, err
	}
	return h, nil
}

// projectionSources defines the three projections of the C-store schema the
// paper adopts from the original C-store evaluation.
var projectionSources = map[string]struct {
	sql      string
	columns  []string
	kinds    []value.Kind
	sortCols []string
}{
	"D1": {
		sql:      "SELECT l_shipdate, l_suppkey FROM lineitem",
		columns:  []string{"l_shipdate", "l_suppkey"},
		kinds:    []value.Kind{value.KindDate, value.KindInt},
		sortCols: []string{"l_shipdate", "l_suppkey"},
	},
	"D2": {
		sql:      "SELECT o_orderdate, l_suppkey, l_shipdate FROM lineitem, orders WHERE l_orderkey = o_orderkey",
		columns:  []string{"o_orderdate", "l_suppkey", "l_shipdate"},
		kinds:    []value.Kind{value.KindDate, value.KindInt, value.KindDate},
		sortCols: []string{"o_orderdate", "l_suppkey"},
	},
	"D4": {
		sql:      "SELECT l_returnflag, c_nationkey, l_extendedprice FROM lineitem, orders, customer WHERE l_orderkey = o_orderkey AND o_custkey = c_custkey",
		columns:  []string{"l_returnflag", "c_nationkey", "l_extendedprice"},
		kinds:    []value.Kind{value.KindString, value.KindInt, value.KindFloat},
		sortCols: []string{"l_returnflag"},
	},
}

// viewDefinitions are the generalized materialized views of Section 2.1.
var viewDefinitions = map[string]string{
	// MV for Q1, Q2, Q3 (the paper's MV2,3; it answers Q1 as well).
	"mv23": "SELECT l_shipdate, l_suppkey, COUNT(*) AS cnt FROM lineitem GROUP BY l_shipdate, l_suppkey",
	// MV for Q4 alone (grouped by order date only, so it is tiny — this is why
	// the paper reports Row(MV) beating ColOpt by 250x on Q4).
	"mv4": "SELECT o_orderdate, MAX(l_shipdate) AS maxship, COUNT(*) AS cnt " +
		"FROM lineitem, orders WHERE l_orderkey = o_orderkey GROUP BY o_orderdate",
	// MV for Q5 and Q6 (also matches Q4, but the dedicated view is smaller).
	"mv456": "SELECT o_orderdate, l_suppkey, MAX(l_shipdate) AS maxship, COUNT(*) AS cnt " +
		"FROM lineitem, orders WHERE l_orderkey = o_orderkey GROUP BY o_orderdate, l_suppkey",
	// MV for Q7.
	"mv7": "SELECT c_nationkey, l_returnflag, SUM(l_extendedprice) AS revenue " +
		"FROM lineitem, orders, customer WHERE l_orderkey = o_orderkey AND o_custkey = c_custkey " +
		"GROUP BY l_returnflag, c_nationkey",
}

func (h *Harness) buildDesigns() error {
	builder := ctable.NewBuilder(h.Engine)
	for name, src := range projectionSources {
		design, err := builder.Build(name, src.sql, src.columns, src.sortCols)
		if err != nil {
			return fmt.Errorf("bench: building c-tables for %s: %w", name, err)
		}
		h.Designs[name] = design
		res, err := h.Engine.Query(src.sql)
		if err != nil {
			return err
		}
		proj, err := colstore.BuildProjection(name, src.columns, src.kinds, src.sortCols, res.Rows)
		if err != nil {
			return fmt.Errorf("bench: building projection %s: %w", name, err)
		}
		h.Proj[name] = proj
	}
	for name, def := range viewDefinitions {
		if err := h.Views.Create(name, def); err != nil {
			return fmt.Errorf("bench: creating view %s: %w", name, err)
		}
	}
	return nil
}

func (h *Harness) loadDateRanges() error {
	res, err := h.Engine.Query("SELECT MIN(l_shipdate), MAX(l_shipdate) FROM lineitem")
	if err != nil {
		return err
	}
	h.dateMin, h.dateMax = res.Rows[0][0], res.Rows[0][1]
	res, err = h.Engine.Query("SELECT MIN(o_orderdate), MAX(o_orderdate) FROM orders")
	if err != nil {
		return err
	}
	h.orderDateMin, h.orderDateMax = res.Rows[0][0], res.Rows[0][1]
	return nil
}

// paramDate converts a target selectivity into the date constant D such that
// "column > D" selects roughly that fraction of the column's range.
func paramDate(min, max value.Value, selectivity float64) value.Value {
	if selectivity >= 1 {
		return value.NewDate(min.Int() - 1)
	}
	span := max.Int() - min.Int()
	return value.NewDate(min.Int() + int64(float64(span)*(1-selectivity)))
}

// midDate returns the date at the middle of a column's range (the fixed
// parameter used for the equality queries Q2 and Q5).
func midDate(min, max value.Value) value.Value {
	return value.NewDate((min.Int() + max.Int()) / 2)
}

// existingDate returns the largest value of the column that is <= target, so
// that equality-parameter queries (Q2, Q5) always select at least one row
// even at tiny scale factors.
func (h *Harness) existingDate(table, column string, target value.Value) value.Value {
	q := fmt.Sprintf("SELECT MAX(%s) FROM %s WHERE %s <= DATE '%s'", column, table, column, target)
	res, err := h.Engine.Query(q)
	if err != nil || len(res.Rows) == 0 || res.Rows[0][0].IsNull() {
		return target
	}
	return res.Rows[0][0]
}
