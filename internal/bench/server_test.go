package bench

import (
	"fmt"
	"sync"
	"testing"

	"oldelephant/internal/engine"
	"oldelephant/internal/exec"
	"oldelephant/internal/server"
)

// servingWorkload resolves the SQL of the full 7-query workload across the
// row-engine strategies (Row, Row(MV), Row(Col)) at the given selectivity —
// the statement mix the serving differential replays from every session.
type servedQuery struct {
	name string
	sql  string
}

func servingWorkload(t *testing.T, h *Harness, sel float64) []servedQuery {
	t.Helper()
	var out []servedQuery
	for _, q := range Queries() {
		spec := h.specs()[q]
		_, query, _, _ := spec.resolve(h, sel)
		for _, strat := range []Strategy{StrategyRow, StrategyRowMV, StrategyRowCol} {
			sqlText, err := h.strategySQL(q, spec, strat, query)
			if err != nil {
				t.Fatalf("%s under %s: %v", q, strat, err)
			}
			out = append(out, servedQuery{name: fmt.Sprintf("%s/%s", q, strat), sql: sqlText})
		}
	}
	return out
}

// TestConcurrentServingDifferential is the serving-correctness differential:
// 8 concurrent sessions replay the full 7-query workload under all three SQL
// strategies — mixed prepared/ad-hoc, mixed per-session parallelism — and
// every result must equal the serial single-caller engine's (exact rows;
// floats to 1e-9, since parallel aggregation folds partials in morsel
// order). It runs over one shared engine with the plan cache on, so plan
// leasing, admission, seek/scan morsels and the reader-shared catalog are
// all exercised at once; the -race CI leg runs it under the race detector.
func TestConcurrentServingDifferential(t *testing.T) {
	h := cachedHarness(t, func(c *Config) { c.PlanCache = true })
	const sel = 0.1
	workload := servingWorkload(t, h, sel)

	// Serial expectations from the same engine, single-caller.
	expected := make(map[string][]exec.Row, len(workload))
	for _, wq := range workload {
		res, err := h.Engine.Query(wq.sql)
		if err != nil {
			t.Fatalf("serial %s: %v", wq.name, err)
		}
		expected[wq.name] = res.Rows
	}

	srv := server.New(h.Engine, server.Options{CoreBudget: 8})
	defer srv.Close()

	const sessions = 8
	const rounds = 2
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess, err := srv.Session()
			if err != nil {
				errs <- err
				return
			}
			defer sess.Close()
			// Mixed parallelism: serial, two-worker and four-worker sessions
			// side by side on one shared engine.
			sess.SetParallelism([]int{1, 2, 4, 1}[i%4])
			prepared := i%2 == 0
			if prepared {
				for _, wq := range workload {
					if err := sess.Prepare(wq.name, wq.sql); err != nil {
						errs <- fmt.Errorf("session %d prepare %s: %w", i, wq.name, err)
						return
					}
				}
			}
			for r := 0; r < rounds; r++ {
				for _, wq := range workload {
					var res *engine.Result
					var err error
					if prepared {
						res, err = sess.ExecPrepared(wq.name)
					} else {
						res, err = sess.Query(wq.sql)
					}
					if err != nil {
						errs <- fmt.Errorf("session %d %s: %w", i, wq.name, err)
						return
					}
					if msg := sortedRowsApproxEqual(res.Rows, expected[wq.name]); msg != "" {
						errs <- fmt.Errorf("session %d %s diverged from serial engine: %s", i, wq.name, msg)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	m := srv.Metrics()
	wantQueries := int64(sessions * rounds * len(workload))
	if m.Queries != wantQueries {
		t.Errorf("server metrics counted %d queries, want %d", m.Queries, wantQueries)
	}
	if m.Errors != 0 || m.Rejected != 0 || m.Canceled != 0 {
		t.Errorf("serving differential recorded errors=%d rejected=%d canceled=%d",
			m.Errors, m.Rejected, m.Canceled)
	}
	if m.PlanCache.Hits == 0 {
		t.Error("no plan-cache hits across the replayed workload")
	}
}
