package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"oldelephant/internal/engine"
	"oldelephant/internal/server"
)

// The serving-layer benchmarks: the multi-client load generator that drives
// the throughput numbers (QPS, latency percentiles, plan-cache hit rate),
// and the prepared-vs-cold comparison behind the plan cache's speedup claim.
//
//	go test ./internal/bench -bench 'ServerThroughput|PreparedVsCold'

// benchServerHarness memoizes one plan-cache-enabled harness for the server
// benchmarks (the TPC-H build dominates otherwise).
var (
	benchServerOnce sync.Once
	benchServerH    *Harness
	benchServerErr  error
)

func serverHarness(b *testing.B) *Harness {
	b.Helper()
	benchServerOnce.Do(func() {
		cfg := DefaultConfig()
		cfg.PlanCache = true
		benchServerH, benchServerErr = NewHarness(cfg)
	})
	if benchServerErr != nil {
		b.Fatal(benchServerErr)
	}
	return benchServerH
}

// throughputWorkload is the statement mix the load generator replays: the
// seven workload queries under the Row strategy at 10% selectivity.
func throughputWorkload(b *testing.B, h *Harness) []string {
	b.Helper()
	var out []string
	for _, q := range Queries() {
		spec := h.specs()[q]
		_, query, _, _ := spec.resolve(h, 0.1)
		out = append(out, query)
	}
	return out
}

// BenchmarkServerThroughput is the multi-client load generator: 8 client
// goroutines, each with its own session, replaying the 7-query workload
// round-robin against one server (core budget = GOMAXPROCS, plan cache on).
// One benchmark op is one completed query; reported metrics add the load
// generator's own latency percentiles and the server's plan-cache hit rate.
func BenchmarkServerThroughput(b *testing.B) {
	h := serverHarness(b)
	workload := throughputWorkload(b, h)
	srv := server.New(h.Engine, server.Options{CoreBudget: 0, MaxQueue: 1 << 20})
	defer srv.Close()

	const clients = 8
	var next atomic.Int64
	var mu sync.Mutex
	var lats []time.Duration

	b.ResetTimer()
	b.SetParallelism(clients) // clients goroutines per GOMAXPROCS
	b.RunParallel(func(pb *testing.PB) {
		sess, err := srv.Session()
		if err != nil {
			b.Error(err)
			return
		}
		defer sess.Close()
		var local []time.Duration
		for pb.Next() {
			q := workload[int(next.Add(1))%len(workload)]
			start := time.Now()
			if _, err := sess.Query(q); err != nil {
				b.Error(err)
				return
			}
			local = append(local, time.Since(start))
		}
		mu.Lock()
		lats = append(lats, local...)
		mu.Unlock()
	})
	b.StopTimer()

	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)/secs, "qps")
	}
	m := srv.Metrics()
	b.ReportMetric(m.PlanCache.HitRate(), "cache-hit-rate")
	b.ReportMetric(float64(m.P50.Microseconds()), "p50-us")
	b.ReportMetric(float64(m.P95.Microseconds()), "p95-us")
	b.ReportMetric(float64(m.P99.Microseconds()), "p99-us")
}

// selectiveSeekSQL is the acceptance shape for the plan-cache speedup: an
// equality seek on lineitem's clustered key — a few-row clustered range scan
// whose execution is microseconds, so the lex/parse/plan work the cache
// skips dominates the cold path.
const selectiveSeekSQL = "SELECT l_suppkey, l_shipdate FROM lineitem WHERE l_orderkey = 1984"

// BenchmarkPreparedVsCold compares the cold path (lex+parse+plan+execute,
// plan cache bypassed) against a prepared, plan-cache-hit execution through
// a server session — the speedup prepared statements buy on selective
// queries. Run both and compare ns/op:
//
//	go test ./internal/bench -bench PreparedVsCold
func BenchmarkPreparedVsCold(b *testing.B) {
	h := serverHarness(b)
	sqlText := selectiveSeekSQL
	b.Run("Cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := h.Engine.QueryWith(engine.QueryOptions{NoCache: true}, sqlText); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Prepared", func(b *testing.B) {
		srv := server.New(h.Engine, server.Options{})
		defer srv.Close()
		sess, err := srv.Session()
		if err != nil {
			b.Fatal(err)
		}
		defer sess.Close()
		if err := sess.Prepare("seek", sqlText); err != nil {
			b.Fatal(err)
		}
		if _, err := sess.ExecPrepared("seek"); err != nil { // warm the cache
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := sess.ExecPrepared("seek")
			if err != nil {
				b.Fatal(err)
			}
			if !res.Stats.PlanCached {
				b.Fatal("prepared execution missed the plan cache")
			}
		}
	})
}

// TestPreparedFasterThanCold pins the direction of the plan-cache win
// without a flakiness-prone ratio assertion: the median plan-cache-hit
// execution of the selective seek must not be slower than the median cold
// parse+plan+execute (the benchmark records the actual ratio; the 2x
// acceptance number lives in CHANGES.md).
func TestPreparedFasterThanCold(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	cfg := DefaultConfig()
	cfg.PlanCache = true
	h, err := NewHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sqlText := selectiveSeekSQL
	p, err := h.Engine.Prepare(sqlText)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Engine.QueryPrepared(engine.QueryOptions{}, p); err != nil {
		t.Fatal(err)
	}
	const iters = 41
	median := func(f func() error) time.Duration {
		times := make([]time.Duration, iters)
		for i := range times {
			start := time.Now()
			if err := f(); err != nil {
				t.Fatal(err)
			}
			times[i] = time.Since(start)
		}
		for i := 1; i < len(times); i++ {
			for j := i; j > 0 && times[j] < times[j-1]; j-- {
				times[j], times[j-1] = times[j-1], times[j]
			}
		}
		return times[iters/2]
	}
	cold := median(func() error {
		_, err := h.Engine.QueryWith(engine.QueryOptions{NoCache: true}, sqlText)
		return err
	})
	warm := median(func() error {
		res, err := h.Engine.QueryPrepared(engine.QueryOptions{}, p)
		if err == nil && !res.Stats.PlanCached {
			return fmt.Errorf("prepared execution missed the plan cache")
		}
		return err
	})
	t.Logf("selective seek: cold median %v, prepared median %v (%.1fx)", cold, warm, float64(cold)/float64(warm))
	if warm > cold {
		t.Errorf("prepared median %v slower than cold median %v", warm, cold)
	}
}
