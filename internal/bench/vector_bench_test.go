package bench

import (
	"sync"
	"testing"

	"oldelephant/internal/engine"
	"oldelephant/internal/value"
)

// The row-vs-batch executor microbenchmarks: the same SQL over the same
// loaded table, one engine per executor mode. The workload is the shape the
// vectorized refactor targets — a selection-heavy scan-filter-aggregate
// pipeline — plus a pure aggregation without a filter.
//
//	go test ./internal/bench -bench 'ScanFilterAgg|GroupAgg'

const benchRows = 150000

var (
	benchOnce    sync.Once
	benchVecEng  *engine.Engine
	benchRowEng  *engine.Engine
	benchLoadErr error
)

// benchEngines builds two engines (vectorized and row-at-a-time) holding an
// identical 150k-row table. The load happens once per process.
func benchEngines(tb testing.TB) (vec, row *engine.Engine) {
	tb.Helper()
	benchOnce.Do(func() {
		build := func(disable bool) (*engine.Engine, error) {
			e := engine.New(engine.Options{TupleOverhead: -1, DisableVectorized: disable})
			_, err := e.Execute("CREATE TABLE items (id INT, supp INT, ship DATE, price FLOAT, PRIMARY KEY (id))")
			if err != nil {
				return nil, err
			}
			rows := make([][]value.Value, benchRows)
			base := value.MustParseDate("1995-01-01").Int()
			for i := range rows {
				rows[i] = []value.Value{
					value.NewInt(int64(i)),
					value.NewInt(int64(i % 100)),
					value.NewDate(base + int64(i%365)),
					value.NewFloat(float64(100 + i%1000)),
				}
			}
			if err := e.BulkLoad("items", rows); err != nil {
				return nil, err
			}
			return e, nil
		}
		benchVecEng, benchLoadErr = build(false)
		if benchLoadErr == nil {
			benchRowEng, benchLoadErr = build(true)
		}
	})
	if benchLoadErr != nil {
		tb.Fatal(benchLoadErr)
	}
	return benchVecEng, benchRowEng
}

// scanFilterAggSQL selects ~60% of the table through two conjuncts, then
// groups into 100 groups — the paper-workload shape (Q1/Q3) at larger scale.
const scanFilterAggSQL = "SELECT supp, COUNT(*), SUM(price) FROM items " +
	"WHERE ship > DATE '1995-03-01' AND price < 850 GROUP BY supp"

// groupAggSQL aggregates every row with no filter.
const groupAggSQL = "SELECT supp, SUM(price), MAX(ship), COUNT(*) FROM items GROUP BY supp"

func runQueryBench(b *testing.B, e *engine.Engine, sql string) {
	b.Helper()
	rowsOut := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Query(sql)
		if err != nil {
			b.Fatal(err)
		}
		rowsOut = len(res.Rows)
	}
	b.StopTimer()
	if rowsOut == 0 {
		b.Fatal("benchmark query returned no rows")
	}
	b.ReportMetric(float64(benchRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

func BenchmarkScanFilterAggRow(b *testing.B) {
	_, row := benchEngines(b)
	runQueryBench(b, row, scanFilterAggSQL)
}

func BenchmarkScanFilterAggVectorized(b *testing.B) {
	vec, _ := benchEngines(b)
	runQueryBench(b, vec, scanFilterAggSQL)
}

func BenchmarkGroupAggRow(b *testing.B) {
	_, row := benchEngines(b)
	runQueryBench(b, row, groupAggSQL)
}

func BenchmarkGroupAggVectorized(b *testing.B) {
	vec, _ := benchEngines(b)
	runQueryBench(b, vec, groupAggSQL)
}

// TestBenchQueriesAgree keeps the benchmark honest: both executor modes must
// return identical results for the benchmarked SQL.
func TestBenchQueriesAgree(t *testing.T) {
	vec, row := benchEngines(t)
	for _, sql := range []string{scanFilterAggSQL, groupAggSQL} {
		vres, err := vec.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		rres, err := row.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		if len(vres.Rows) == 0 {
			t.Fatal("benchmark query returned no rows")
		}
		if got, want := formatRows(vres.Rows), formatRows(rres.Rows); got != want {
			t.Fatalf("benchmark query diverges between modes:\n%s\nvs\n%s", clip(got), clip(want))
		}
	}
}
