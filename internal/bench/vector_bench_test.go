package bench

import (
	"sync"
	"testing"

	"oldelephant/internal/colstore"
	"oldelephant/internal/engine"
	"oldelephant/internal/exec"
	"oldelephant/internal/expr"
	"oldelephant/internal/value"
)

// The row-vs-batch executor microbenchmarks: the same SQL over the same
// loaded table, one engine per executor mode. The workload is the shape the
// vectorized refactor targets — a selection-heavy scan-filter-aggregate
// pipeline — plus a pure aggregation without a filter.
//
//	go test ./internal/bench -bench 'ScanFilterAgg|GroupAgg'

const benchRows = 150000

var (
	benchOnce    sync.Once
	benchVecEng  *engine.Engine
	benchRowEng  *engine.Engine
	benchLoadErr error
)

// newItemsEngine builds an engine holding the 150k-row items table under the
// given executor options. Shared by the row-vs-batch benchmarks and the
// parallel scaling benchmarks/tests.
func newItemsEngine(opts engine.Options) (*engine.Engine, error) {
	opts.TupleOverhead = -1
	e := engine.New(opts)
	_, err := e.Execute("CREATE TABLE items (id INT, supp INT, ship DATE, price FLOAT, PRIMARY KEY (id))")
	if err != nil {
		return nil, err
	}
	rows := make([][]value.Value, benchRows)
	base := value.MustParseDate("1995-01-01").Int()
	for i := range rows {
		rows[i] = []value.Value{
			value.NewInt(int64(i)),
			value.NewInt(int64(i % 100)),
			value.NewDate(base + int64(i%365)),
			value.NewFloat(float64(100 + i%1000)),
		}
	}
	if err := e.BulkLoad("items", rows); err != nil {
		return nil, err
	}
	return e, nil
}

// benchEngines builds two engines (vectorized and row-at-a-time) holding an
// identical 150k-row table. The load happens once per process.
func benchEngines(tb testing.TB) (vec, row *engine.Engine) {
	tb.Helper()
	benchOnce.Do(func() {
		// Parallelism pinned to 1: these benchmarks are the serial
		// row-vs-batch comparison; the scaling benchmarks build their own
		// parallel engines.
		benchVecEng, benchLoadErr = newItemsEngine(engine.Options{Parallelism: 1})
		if benchLoadErr == nil {
			benchRowEng, benchLoadErr = newItemsEngine(engine.Options{DisableVectorized: true, Parallelism: 1})
		}
	})
	if benchLoadErr != nil {
		tb.Fatal(benchLoadErr)
	}
	return benchVecEng, benchRowEng
}

// scanFilterAggSQL selects ~60% of the table through two conjuncts, then
// groups into 100 groups — the paper-workload shape (Q1/Q3) at larger scale.
const scanFilterAggSQL = "SELECT supp, COUNT(*), SUM(price) FROM items " +
	"WHERE ship > DATE '1995-03-01' AND price < 850 GROUP BY supp"

// groupAggSQL aggregates every row with no filter.
const groupAggSQL = "SELECT supp, SUM(price), MAX(ship), COUNT(*) FROM items GROUP BY supp"

func runQueryBench(b *testing.B, e *engine.Engine, sql string) {
	b.Helper()
	rowsOut := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Query(sql)
		if err != nil {
			b.Fatal(err)
		}
		rowsOut = len(res.Rows)
	}
	b.StopTimer()
	if rowsOut == 0 {
		b.Fatal("benchmark query returned no rows")
	}
	b.ReportMetric(float64(benchRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

func BenchmarkScanFilterAggRow(b *testing.B) {
	_, row := benchEngines(b)
	runQueryBench(b, row, scanFilterAggSQL)
}

func BenchmarkScanFilterAggVectorized(b *testing.B) {
	vec, _ := benchEngines(b)
	runQueryBench(b, vec, scanFilterAggSQL)
}

func BenchmarkGroupAggRow(b *testing.B) {
	_, row := benchEngines(b)
	runQueryBench(b, row, groupAggSQL)
}

func BenchmarkGroupAggVectorized(b *testing.B) {
	vec, _ := benchEngines(b)
	runQueryBench(b, vec, groupAggSQL)
}

// The flat-vs-compressed executor microbenchmarks: the same
// scan-filter-aggregate plan over the same compressed projection, once on
// compressed (Const/RLE/Dict) vectors and once with every vector
// decompressed at the scan. The projection is RLE-friendly the way the
// paper's D1 is: sorted by (ship, supp), with qty constant within each
// (ship, supp) group so its runs align with the group column's.
//
//	go test ./internal/bench -bench 'ScanFilterAgg'

var (
	projOnce sync.Once
	projData *colstore.Projection
	projErr  error
)

func benchProjectionData(tb testing.TB) *colstore.Projection {
	tb.Helper()
	projOnce.Do(func() {
		base := value.MustParseDate("1995-01-01").Int()
		rows := make([][]value.Value, benchRows)
		for i := range rows {
			day := i % 100
			supp := (i / 100) % 50
			rows[i] = []value.Value{
				value.NewDate(base + int64(day)),
				value.NewInt(int64(supp)),
				value.NewInt(int64((day*7 + supp) % 13)),
			}
		}
		projData, projErr = colstore.BuildProjection("bench",
			[]string{"ship", "supp", "qty"},
			[]value.Kind{value.KindDate, value.KindInt, value.KindInt},
			[]string{"ship", "supp"}, rows)
	})
	if projErr != nil {
		tb.Fatal(projErr)
	}
	return projData
}

// benchColOptPlan builds scan → filter(ship > median) → group supp,
// COUNT(*), SUM(qty) over the benchmark projection.
func benchColOptPlan(tb testing.TB, flat bool) exec.BatchOperator {
	tb.Helper()
	p := benchProjectionData(tb)
	scan, err := colstore.NewProjectionScan(p, []string{"ship", "supp", "qty"}, flat)
	if err != nil {
		tb.Fatal(err)
	}
	mid := value.NewDate(value.MustParseDate("1995-01-01").Int() + 39) // ~60% of rows pass
	pred := expr.NewBinary(expr.OpGt, expr.NewColumn(0, "ship"), expr.NewConst(mid))
	filtered := exec.NewFilter(scan, pred)
	return exec.NewHashAggregate(filtered, []int{1}, []exec.AggSpec{
		{Kind: exec.AggCountStar, Name: "cnt"},
		{Kind: exec.AggSum, Arg: expr.NewColumn(2, "qty"), Name: "sumqty"},
	})
}

func runColOptBench(b *testing.B, flat bool) {
	b.Helper()
	rowsOut := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := exec.DrainBatches(benchColOptPlan(b, flat))
		if err != nil {
			b.Fatal(err)
		}
		rowsOut = len(rows)
	}
	b.StopTimer()
	if rowsOut == 0 {
		b.Fatal("benchmark plan returned no rows")
	}
	b.ReportMetric(float64(benchRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

func BenchmarkScanFilterAggCompressed(b *testing.B) { runColOptBench(b, false) }

func BenchmarkScanFilterAggFlatVectors(b *testing.B) { runColOptBench(b, true) }

// TestCompressedFlatPlansAgree keeps the flat-vs-compressed benchmark honest:
// the two vector modes must return identical results for the benchmarked plan.
func TestCompressedFlatPlansAgree(t *testing.T) {
	compressed, err := exec.DrainBatches(benchColOptPlan(t, false))
	if err != nil {
		t.Fatal(err)
	}
	flat, err := exec.DrainBatches(benchColOptPlan(t, true))
	if err != nil {
		t.Fatal(err)
	}
	if len(compressed) == 0 {
		t.Fatal("benchmark plan returned no rows")
	}
	if got, want := formatRows(compressed), formatRows(flat); got != want {
		t.Fatalf("benchmark plan diverges between vector modes:\n%s\nvs\n%s", clip(got), clip(want))
	}
}

// TestBenchQueriesAgree keeps the benchmark honest: both executor modes must
// return identical results for the benchmarked SQL.
func TestBenchQueriesAgree(t *testing.T) {
	vec, row := benchEngines(t)
	for _, sql := range []string{scanFilterAggSQL, groupAggSQL} {
		vres, err := vec.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		rres, err := row.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		if len(vres.Rows) == 0 {
			t.Fatal("benchmark query returned no rows")
		}
		if got, want := formatRows(vres.Rows), formatRows(rres.Rows); got != want {
			t.Fatalf("benchmark query diverges between modes:\n%s\nvs\n%s", clip(got), clip(want))
		}
	}
}
