package bench

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"oldelephant/internal/exec"
	"oldelephant/internal/value"
)

// executorModes are the three executor configurations the differential tests
// hold against each other: row-at-a-time Volcano, batch execution on flat
// vectors, and batch execution on compressed (Const/RLE/Dict) vectors — the
// default.
func executorModes(t *testing.T) map[string]*Harness {
	t.Helper()
	build := func(mutate func(*Config)) *Harness {
		cfg := DefaultConfig()
		mutate(&cfg)
		h, err := NewHarness(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	modes := map[string]*Harness{
		"row":               build(func(c *Config) { c.DisableVectorized = true }),
		"flat-vector":       build(func(c *Config) { c.DisableCompressed = true }),
		"compressed-vector": build(func(c *Config) {}),
	}
	// Pin the knob contract so a misconfigured harness cannot silently turn
	// the three axes into one.
	if modes["row"].Engine.Vectorized() || modes["row"].Engine.Compressed() {
		t.Fatal("row harness engine is vectorized or compressed")
	}
	if !modes["flat-vector"].Engine.Vectorized() || modes["flat-vector"].Engine.Compressed() {
		t.Fatal("flat-vector harness engine has the wrong knobs")
	}
	if !modes["compressed-vector"].Engine.Vectorized() || !modes["compressed-vector"].Engine.Compressed() {
		t.Fatal("compressed-vector harness engine has the wrong knobs")
	}
	return modes
}

// TestVectorizedRowDifferential is the result-identity proof for the
// vectorized executor across all three executor modes: every workload query
// (Q1-Q7), under every row-engine strategy (Row, Row(MV), Row(Col)) and
// every swept selectivity, must return exactly the same rows — same values,
// same order — from the row engine, the flat-vector engine and the
// compressed-vector engine.
func TestVectorizedRowDifferential(t *testing.T) {
	modes := executorModes(t)
	ref := modes["row"]
	others := []string{"flat-vector", "compressed-vector"}

	strategies := []Strategy{StrategyRow, StrategyRowMV, StrategyRowCol}
	compared := 0
	for _, q := range Queries() {
		spec := ref.specs()[q]
		sels := ref.Config.Selectivities
		if !spec.swept {
			sels = []float64{0}
		}
		for _, sel := range sels {
			// All harnesses hold identical deterministic TPC-H data, so the
			// parameterized SQL resolves identically; assert that too.
			_, refSQL, _, _ := spec.resolve(ref, sel)
			for _, name := range others {
				_, otherSQL, _, _ := modes[name].specs()[q].resolve(modes[name], sel)
				if refSQL != otherSQL {
					t.Fatalf("%s sel=%v: %s harness produced different SQL:\n%s\n%s", q, sel, name, refSQL, otherSQL)
				}
			}
			for _, s := range strategies {
				sqlText, err := ref.strategySQL(q, spec, s, refSQL)
				if err != nil {
					t.Fatalf("%s %s: %v", q, s, err)
				}
				rres, err := ref.Engine.Query(sqlText)
				if err != nil {
					t.Fatalf("%s %s row: %v\nSQL: %s", q, s, err, sqlText)
				}
				for _, name := range others {
					vres, err := modes[name].Engine.Query(sqlText)
					if err != nil {
						t.Fatalf("%s %s %s: %v\nSQL: %s", q, s, name, err, sqlText)
					}
					if vres.Plan != rres.Plan {
						t.Errorf("%s %s sel=%v: %s plan differs:\n%s\n%s", q, s, sel, name, vres.Plan, rres.Plan)
					}
					if got, want := formatRows(vres.Rows), formatRows(rres.Rows); got != want {
						t.Errorf("%s %s sel=%v: %s results differ\n%s (%d rows):\n%s\nrow (%d rows):\n%s",
							q, s, sel, name, name, len(vres.Rows), clip(got), len(rres.Rows), clip(want))
					}
					compared++
				}
			}
		}
	}
	if compared < 2*3*7 {
		t.Fatalf("only %d (query, strategy, selectivity, mode) points compared", compared)
	}
	t.Logf("compared %d (query, strategy, selectivity, mode) points", compared)
}

// TestColOptExecutorDifferential proves the acceptance property for ColOpt:
// the plan running on compressed vectors through the shared BatchOperator
// protocol returns the same result as the row engine's base-table query, for
// every workload query and selectivity — and the same rows again with
// compressed execution force-disabled (flat vectors, identical operator
// tree). Floating-point aggregates are compared with a relative tolerance:
// the projection processes rows in sort order, the row engine in base-table
// order, and float addition is not associative.
func TestColOptExecutorDifferential(t *testing.T) {
	modes := executorModes(t)
	ref := modes["compressed-vector"]
	flat := modes["flat-vector"]
	// The oracle is the row-at-a-time engine: it shares none of the
	// compressed kernels under test, so a bug in run folding or run-wise
	// selection cannot cancel out on both sides of the comparison.
	row := modes["row"]
	compared := 0
	for _, q := range Queries() {
		spec := ref.specs()[q]
		sels := ref.Config.Selectivities
		if !spec.swept {
			sels = []float64{0}
		}
		for _, sel := range sels {
			_, query, _, _ := spec.resolve(ref, sel)
			rowRes, err := row.Engine.Query(query)
			if err != nil {
				t.Fatalf("%s: row query: %v", q, err)
			}
			op, err := ref.ColOptOperator(q, sel)
			if err != nil {
				t.Fatalf("%s: ColOpt plan: %v", q, err)
			}
			colRows, err := exec.DrainBatches(op)
			if err != nil {
				t.Fatalf("%s: ColOpt execution: %v", q, err)
			}
			if msg := rowsApproxEqual(colRows, rowRes.Rows); msg != "" {
				t.Errorf("%s sel=%v: ColOpt result differs from row engine: %s", q, sel, msg)
			}
			// Flat-vector ColOpt processes the identical operator tree in the
			// identical order; only float sums may differ in the last bits
			// (the compressed path folds an RLE run as value*count where the
			// flat path adds per row), so compare with the same tolerance.
			flatOp, err := flat.ColOptOperator(q, sel)
			if err != nil {
				t.Fatalf("%s: flat ColOpt plan: %v", q, err)
			}
			flatRows, err := exec.DrainBatches(flatOp)
			if err != nil {
				t.Fatalf("%s: flat ColOpt execution: %v", q, err)
			}
			if msg := rowsApproxEqual(colRows, flatRows); msg != "" {
				t.Errorf("%s sel=%v: compressed and flat ColOpt differ: %s", q, sel, msg)
			}
			compared++
		}
	}
	if compared < 7 {
		t.Fatalf("only %d (query, selectivity) ColOpt points compared", compared)
	}
	t.Logf("compared %d (query, selectivity) ColOpt points", compared)
}

// rowsApproxEqual compares result sets exactly except for float values,
// which compare with a relative tolerance. It returns "" on match and a
// description of the first mismatch otherwise.
func rowsApproxEqual(got, want []exec.Row) string {
	if len(got) != len(want) {
		return fmt.Sprintf("row counts differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if len(got[i]) != len(want[i]) {
			return fmt.Sprintf("row %d arity differs", i)
		}
		for j := range got[i] {
			g, w := got[i][j], want[i][j]
			if g.Kind == value.KindFloat && w.Kind == value.KindFloat {
				diff := math.Abs(g.F - w.F)
				scale := math.Max(math.Abs(g.F), math.Abs(w.F))
				if diff > 1e-9*math.Max(scale, 1) {
					return fmt.Sprintf("row %d col %d: %v vs %v", i, j, g, w)
				}
				continue
			}
			if g.Kind != w.Kind || value.Compare(g, w) != 0 {
				return fmt.Sprintf("row %d col %d: %v (%v) vs %v (%v)", i, j, g, g.Kind, w, w.Kind)
			}
		}
	}
	return ""
}

// formatRows renders rows (values and order) for exact comparison.
func formatRows(rows [][]value.Value) string {
	var sb strings.Builder
	for _, r := range rows {
		for _, v := range r {
			sb.WriteString(v.Kind.String())
			sb.WriteByte(':')
			sb.WriteString(v.String())
			sb.WriteByte('|')
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func clip(s string) string {
	if len(s) > 2000 {
		return s[:2000] + "...(clipped)"
	}
	return s
}
