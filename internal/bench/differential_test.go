package bench

import (
	"strings"
	"testing"

	"oldelephant/internal/value"
)

// TestVectorizedRowDifferential is the result-identity proof for the
// vectorized executor: every workload query (Q1-Q7), under every row-engine
// strategy (Row, Row(MV), Row(Col)) and every swept selectivity, must return
// exactly the same rows — same values, same order — from the batch-at-a-time
// engine as from the row-at-a-time Volcano engine.
func TestVectorizedRowDifferential(t *testing.T) {
	cfg := DefaultConfig()
	vec, err := NewHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.Engine.Vectorized() {
		t.Fatal("default harness engine is not vectorized")
	}
	rowCfg := cfg
	rowCfg.DisableVectorized = true
	row, err := NewHarness(rowCfg)
	if err != nil {
		t.Fatal(err)
	}
	if row.Engine.Vectorized() {
		t.Fatal("DisableVectorized harness engine is vectorized")
	}

	strategies := []Strategy{StrategyRow, StrategyRowMV, StrategyRowCol}
	compared := 0
	for _, q := range Queries() {
		spec := vec.specs()[q]
		sels := cfg.Selectivities
		if !spec.swept {
			sels = []float64{0}
		}
		for _, sel := range sels {
			// Both harnesses hold identical deterministic TPC-H data, so the
			// parameterized SQL resolves identically; assert that too.
			vecSQL, _, _ := spec.sqlFor(vec, sel)
			rowSQL, _, _ := spec.sqlFor(row, sel)
			if vecSQL != rowSQL {
				t.Fatalf("%s sel=%v: harnesses produced different SQL:\n%s\n%s", q, sel, vecSQL, rowSQL)
			}
			for _, s := range strategies {
				sqlText, err := vec.strategySQL(q, spec, s, vecSQL)
				if err != nil {
					t.Fatalf("%s %s: %v", q, s, err)
				}
				vres, err := vec.Engine.Query(sqlText)
				if err != nil {
					t.Fatalf("%s %s vectorized: %v\nSQL: %s", q, s, err, sqlText)
				}
				rres, err := row.Engine.Query(sqlText)
				if err != nil {
					t.Fatalf("%s %s row: %v\nSQL: %s", q, s, err, sqlText)
				}
				if vres.Plan != rres.Plan {
					t.Errorf("%s %s sel=%v: plans differ:\n%s\n%s", q, s, sel, vres.Plan, rres.Plan)
				}
				if got, want := formatRows(vres.Rows), formatRows(rres.Rows); got != want {
					t.Errorf("%s %s sel=%v: results differ\nvectorized (%d rows):\n%s\nrow (%d rows):\n%s",
						q, s, sel, len(vres.Rows), clip(got), len(rres.Rows), clip(want))
				}
				compared++
			}
		}
	}
	if compared < 3*7 {
		t.Fatalf("only %d (query, strategy, selectivity) points compared", compared)
	}
	t.Logf("compared %d (query, strategy, selectivity) points", compared)
}

// formatRows renders rows (values and order) for exact comparison.
func formatRows(rows [][]value.Value) string {
	var sb strings.Builder
	for _, r := range rows {
		for _, v := range r {
			sb.WriteString(v.Kind.String())
			sb.WriteByte(':')
			sb.WriteString(v.String())
			sb.WriteByte('|')
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func clip(s string) string {
	if len(s) > 2000 {
		return s[:2000] + "...(clipped)"
	}
	return s
}
