package bench

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"

	"oldelephant/internal/exec"
	"oldelephant/internal/value"
)

// harnessCache memoizes the expensive TPC-H harness builds across the
// differential tests; every cached harness holds identical deterministic
// data and is only ever queried, never mutated.
var (
	harnessCacheMu sync.Mutex
	harnessCache   = map[string]*Harness{}
)

func cachedHarness(t *testing.T, mutate func(*Config)) *Harness {
	t.Helper()
	cfg := DefaultConfig()
	mutate(&cfg)
	key := fmt.Sprintf("vec=%v comp=%v par=%d cache=%v", !cfg.DisableVectorized, !cfg.DisableCompressed, cfg.Parallelism, cfg.PlanCache)
	harnessCacheMu.Lock()
	defer harnessCacheMu.Unlock()
	if h, ok := harnessCache[key]; ok {
		return h
	}
	h, err := NewHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	harnessCache[key] = h
	return h
}

// executorModes are the three executor configurations the differential tests
// hold against each other: row-at-a-time Volcano, batch execution on flat
// vectors, and batch execution on compressed (Const/RLE/Dict) vectors — the
// default.
func executorModes(t *testing.T) map[string]*Harness {
	t.Helper()
	modes := map[string]*Harness{
		"row":               cachedHarness(t, func(c *Config) { c.DisableVectorized = true }),
		"flat-vector":       cachedHarness(t, func(c *Config) { c.DisableCompressed = true }),
		"compressed-vector": cachedHarness(t, func(c *Config) {}),
	}
	// Pin the knob contract so a misconfigured harness cannot silently turn
	// the three axes into one.
	if modes["row"].Engine.Vectorized() || modes["row"].Engine.Compressed() {
		t.Fatal("row harness engine is vectorized or compressed")
	}
	if !modes["flat-vector"].Engine.Vectorized() || modes["flat-vector"].Engine.Compressed() {
		t.Fatal("flat-vector harness engine has the wrong knobs")
	}
	if !modes["compressed-vector"].Engine.Vectorized() || !modes["compressed-vector"].Engine.Compressed() {
		t.Fatal("compressed-vector harness engine has the wrong knobs")
	}
	return modes
}

// parallelismAxis is the worker-count sweep of the parallel differential
// tests: serial, two workers, and GOMAXPROCS workers (deduplicated, so on a
// small machine the axis never shrinks below {1, 2}).
func parallelismAxis() []int {
	axis := []int{1, 2}
	if p := runtime.GOMAXPROCS(0); p > 2 {
		axis = append(axis, p)
	}
	return axis
}

// parallelModes extends executorModes with the parallelism axis: for every
// worker count in the sweep, a flat-vector and a compressed-vector harness
// whose engine (and ColOpt plans) run morsel-parallel.
func parallelModes(t *testing.T) (modes map[string]*Harness, parallel []string) {
	t.Helper()
	modes = executorModes(t)
	for _, p := range parallelismAxis() {
		if p == 1 {
			continue // the serial harnesses above
		}
		p := p
		flat := fmt.Sprintf("flat-vector-p%d", p)
		comp := fmt.Sprintf("compressed-vector-p%d", p)
		modes[flat] = cachedHarness(t, func(c *Config) { c.DisableCompressed = true; c.Parallelism = p })
		modes[comp] = cachedHarness(t, func(c *Config) { c.Parallelism = p })
		if got := modes[comp].Engine.Parallelism(); got != p {
			t.Fatalf("parallel harness engine runs %d workers, want %d", got, p)
		}
		parallel = append(parallel, flat, comp)
	}
	sort.Strings(parallel)
	return modes, parallel
}

// TestVectorizedRowDifferential is the result-identity proof for the
// vectorized executor across every executor mode and the parallelism axis:
// every workload query (Q1-Q7), under every row-engine strategy (Row,
// Row(MV), Row(Col)) and every swept selectivity, must return the same
// result set from the row engine, the flat-vector engine and the
// compressed-vector engine — serially and with 2 and GOMAXPROCS morsel
// workers. Serial modes must match exactly (same values, same order);
// parallel modes compare as sorted row sets with a 1e-9 relative float
// tolerance, because parallel partial aggregates fold float sums in morsel
// order (every workload query is unordered — ORDER BY/LIMIT plans are
// covered exact-order by TestParallelOrderByLimitExactOrder).
func TestVectorizedRowDifferential(t *testing.T) {
	modes, parallel := parallelModes(t)
	ref := modes["row"]
	exact := []string{"flat-vector", "compressed-vector"}
	others := append(append([]string{}, exact...), parallel...)

	strategies := []Strategy{StrategyRow, StrategyRowMV, StrategyRowCol}
	compared := 0
	for _, q := range Queries() {
		spec := ref.specs()[q]
		sels := ref.Config.Selectivities
		if !spec.swept {
			sels = []float64{0}
		}
		for _, sel := range sels {
			// All harnesses hold identical deterministic TPC-H data, so the
			// parameterized SQL resolves identically; assert that too.
			_, refSQL, _, _ := spec.resolve(ref, sel)
			for _, name := range others {
				_, otherSQL, _, _ := modes[name].specs()[q].resolve(modes[name], sel)
				if refSQL != otherSQL {
					t.Fatalf("%s sel=%v: %s harness produced different SQL:\n%s\n%s", q, sel, name, refSQL, otherSQL)
				}
			}
			for _, s := range strategies {
				sqlText, err := ref.strategySQL(q, spec, s, refSQL)
				if err != nil {
					t.Fatalf("%s %s: %v", q, s, err)
				}
				rres, err := ref.Engine.Query(sqlText)
				if err != nil {
					t.Fatalf("%s %s row: %v\nSQL: %s", q, s, err, sqlText)
				}
				for _, name := range others {
					vres, err := modes[name].Engine.Query(sqlText)
					if err != nil {
						t.Fatalf("%s %s %s: %v\nSQL: %s", q, s, name, err, sqlText)
					}
					// Parallel engines annotate the plan they actually ran
					// with a " [parallel N]" suffix; underneath it the
					// planner's choice must be identical to the row engine's.
					if stripParallelSuffix(vres.Plan) != rres.Plan {
						t.Errorf("%s %s sel=%v: %s plan differs:\n%s\n%s", q, s, sel, name, vres.Plan, rres.Plan)
					}
					if isParallelMode(name, parallel) {
						if msg := sortedRowsApproxEqual(vres.Rows, rres.Rows); msg != "" {
							t.Errorf("%s %s sel=%v: %s results differ from row engine: %s", q, s, sel, name, msg)
						}
					} else if got, want := formatRows(vres.Rows), formatRows(rres.Rows); got != want {
						t.Errorf("%s %s sel=%v: %s results differ\n%s (%d rows):\n%s\nrow (%d rows):\n%s",
							q, s, sel, name, name, len(vres.Rows), clip(got), len(rres.Rows), clip(want))
					}
					compared++
				}
			}
		}
	}
	// Floor: 7 queries × 3 strategies × (2 serial + at least 2 parallel) modes.
	if compared < 7*3*4 {
		t.Fatalf("only %d (query, strategy, selectivity, mode) points compared", compared)
	}
	t.Logf("compared %d (query, strategy, selectivity, mode) points", compared)
}

// joinDifferentialQueries extends the differential matrix beyond the workload
// specs: explicit join shapes — equi-join + aggregate, join + ORDER BY/LIMIT,
// a three-way join — run verbatim on every executor mode. floatAgg marks
// queries whose parallel runs compare with the float tolerance (parallel
// partial aggregates fold float sums in morsel order); everything else must
// match the row engine exactly, order included, even in parallel.
var joinDifferentialQueries = []struct {
	sql      string
	floatAgg bool
}{
	{"SELECT o_orderdate, COUNT(*), MAX(l_shipdate) FROM lineitem, orders WHERE l_orderkey = o_orderkey GROUP BY o_orderdate", false},
	{"SELECT l_orderkey, l_linenumber, o_orderdate FROM lineitem, orders WHERE l_orderkey = o_orderkey AND o_orderdate > DATE '1996-06-01' ORDER BY o_orderdate, l_orderkey, l_linenumber LIMIT 200", false},
	{"SELECT c_nationkey, COUNT(*), SUM(l_extendedprice) FROM lineitem, orders, customer WHERE l_orderkey = o_orderkey AND o_custkey = c_custkey GROUP BY c_nationkey", true},
	{"SELECT l_suppkey, MAX(l_shipdate) FROM lineitem, orders WHERE l_orderkey = o_orderkey AND o_orderdate > DATE '1994-06-01' GROUP BY l_suppkey ORDER BY 2 DESC, l_suppkey LIMIT 50", false},
}

// TestJoinDifferential is the result-identity proof for the vectorized hash
// join: every join query must return the row engine's result from every
// executor mode — flat and compressed vectors, serial and morsel-parallel
// (where the probe pipeline parallelizes through the join and the build side
// hashes morsel-parallel). The planner's physical choice must also be
// identical across modes.
func TestJoinDifferential(t *testing.T) {
	modes, parallel := parallelModes(t)
	ref := modes["row"]
	others := append([]string{"flat-vector", "compressed-vector"}, parallel...)
	compared := 0
	for _, q := range joinDifferentialQueries {
		rres, err := ref.Engine.Query(q.sql)
		if err != nil {
			t.Fatalf("row engine: %v\nSQL: %s", err, q.sql)
		}
		if len(rres.Rows) == 0 {
			t.Fatalf("join probe returned no rows; fixture is degenerate\nSQL: %s", q.sql)
		}
		for _, name := range others {
			vres, err := modes[name].Engine.Query(q.sql)
			if err != nil {
				t.Fatalf("%s: %v\nSQL: %s", name, err, q.sql)
			}
			if stripParallelSuffix(vres.Plan) != rres.Plan {
				t.Errorf("%s plan differs:\n%s\n%s\nSQL: %s", name, vres.Plan, rres.Plan, q.sql)
			}
			if q.floatAgg && isParallelMode(name, parallel) {
				if msg := rowsApproxEqual(vres.Rows, rres.Rows); msg != "" {
					t.Errorf("%s results differ from row engine: %s\nSQL: %s", name, msg, q.sql)
				}
			} else if got, want := formatRows(vres.Rows), formatRows(rres.Rows); got != want {
				t.Errorf("%s results differ from row engine\n%s (%d rows):\n%s\nrow (%d rows):\n%s\nSQL: %s",
					name, name, len(vres.Rows), clip(got), len(rres.Rows), clip(want), q.sql)
			}
			compared++
		}
	}
	// Floor: 4 join queries × (2 serial + at least 2 parallel) modes.
	if compared < 4*4 {
		t.Fatalf("only %d (query, mode) join points compared", compared)
	}
	t.Logf("compared %d (query, mode) join points", compared)
}

// stripParallelSuffix drops the " [parallel N]" annotation a parallel engine
// appends to the plan it executed.
func stripParallelSuffix(plan string) string {
	if i := strings.LastIndex(plan, " [parallel "); i >= 0 && strings.HasSuffix(plan, "]") {
		return plan[:i]
	}
	return plan
}

func isParallelMode(name string, parallel []string) bool {
	for _, p := range parallel {
		if p == name {
			return true
		}
	}
	return false
}

// sortedRowsApproxEqual compares two result sets as sets: both sides are
// sorted by a canonical full-row order, then compared with rowsApproxEqual's
// float tolerance. Rows are copied, never mutated in place.
func sortedRowsApproxEqual(got, want []exec.Row) string {
	return rowsApproxEqual(sortRowsCanonical(got), sortRowsCanonical(want))
}

func sortRowsCanonical(rows []exec.Row) []exec.Row {
	out := append([]exec.Row(nil), rows...)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for c := 0; c < len(a) && c < len(b); c++ {
			if cmp := value.Compare(a[c], b[c]); cmp != 0 {
				return cmp < 0
			}
		}
		return len(a) < len(b)
	})
	return out
}

// TestColOptExecutorDifferential proves the acceptance property for ColOpt:
// the plan running on compressed vectors through the shared BatchOperator
// protocol returns the same result as the row engine's base-table query, for
// every workload query and selectivity — and the same rows again with
// compressed execution force-disabled (flat vectors, identical operator
// tree). Floating-point aggregates are compared with a relative tolerance:
// the projection processes rows in sort order, the row engine in base-table
// order, and float addition is not associative.
func TestColOptExecutorDifferential(t *testing.T) {
	modes := executorModes(t)
	ref := modes["compressed-vector"]
	flat := modes["flat-vector"]
	// The oracle is the row-at-a-time engine: it shares none of the
	// compressed kernels under test, so a bug in run folding or run-wise
	// selection cannot cancel out on both sides of the comparison.
	row := modes["row"]
	compared := 0
	for _, q := range Queries() {
		spec := ref.specs()[q]
		sels := ref.Config.Selectivities
		if !spec.swept {
			sels = []float64{0}
		}
		for _, sel := range sels {
			_, query, _, _ := spec.resolve(ref, sel)
			rowRes, err := row.Engine.Query(query)
			if err != nil {
				t.Fatalf("%s: row query: %v", q, err)
			}
			op, err := ref.ColOptOperator(q, sel)
			if err != nil {
				t.Fatalf("%s: ColOpt plan: %v", q, err)
			}
			colRows, err := exec.DrainBatches(op)
			if err != nil {
				t.Fatalf("%s: ColOpt execution: %v", q, err)
			}
			if msg := rowsApproxEqual(colRows, rowRes.Rows); msg != "" {
				t.Errorf("%s sel=%v: ColOpt result differs from row engine: %s", q, sel, msg)
			}
			// Flat-vector ColOpt processes the identical operator tree in the
			// identical order; only float sums may differ in the last bits
			// (the compressed path folds an RLE run as value*count where the
			// flat path adds per row), so compare with the same tolerance.
			flatOp, err := flat.ColOptOperator(q, sel)
			if err != nil {
				t.Fatalf("%s: flat ColOpt plan: %v", q, err)
			}
			flatRows, err := exec.DrainBatches(flatOp)
			if err != nil {
				t.Fatalf("%s: flat ColOpt execution: %v", q, err)
			}
			if msg := rowsApproxEqual(colRows, flatRows); msg != "" {
				t.Errorf("%s sel=%v: compressed and flat ColOpt differ: %s", q, sel, msg)
			}
			compared++
		}
	}
	if compared < 7 {
		t.Fatalf("only %d (query, selectivity) ColOpt points compared", compared)
	}
	t.Logf("compared %d (query, selectivity) ColOpt points", compared)
}

// rowsApproxEqual compares result sets exactly except for float values,
// which compare with a relative tolerance. It returns "" on match and a
// description of the first mismatch otherwise.
func rowsApproxEqual(got, want []exec.Row) string {
	if len(got) != len(want) {
		return fmt.Sprintf("row counts differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if len(got[i]) != len(want[i]) {
			return fmt.Sprintf("row %d arity differs", i)
		}
		for j := range got[i] {
			g, w := got[i][j], want[i][j]
			if g.Kind == value.KindFloat && w.Kind == value.KindFloat {
				diff := math.Abs(g.F - w.F)
				scale := math.Max(math.Abs(g.F), math.Abs(w.F))
				if diff > 1e-9*math.Max(scale, 1) {
					return fmt.Sprintf("row %d col %d: %v vs %v", i, j, g, w)
				}
				continue
			}
			if g.Kind != w.Kind || value.Compare(g, w) != 0 {
				return fmt.Sprintf("row %d col %d: %v (%v) vs %v (%v)", i, j, g, g.Kind, w, w.Kind)
			}
		}
	}
	return ""
}

// formatRows renders rows (values and order) for exact comparison.
func formatRows(rows [][]value.Value) string {
	var sb strings.Builder
	for _, r := range rows {
		for _, v := range r {
			sb.WriteString(v.Kind.String())
			sb.WriteByte(':')
			sb.WriteString(v.String())
			sb.WriteByte('|')
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func clip(s string) string {
	if len(s) > 2000 {
		return s[:2000] + "...(clipped)"
	}
	return s
}
