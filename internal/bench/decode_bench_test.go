package bench

import (
	"fmt"
	"sync"
	"testing"

	"oldelephant/internal/engine"
	"oldelephant/internal/value"
)

// The scan-decode microbenchmarks: the same wide-table scan-filter-aggregate
// compared between a two-column projection and a query touching every column,
// plus a hash-join whose build side drains the wide table through a narrow
// projection. A 16-column lineitem-shaped table makes the decode tax visible:
// a row store that decodes all 16 fields to answer a 2-column aggregate pays
// an 8x decode overhead the projected path eliminates.
//
//	go test ./internal/bench -bench 'WideScan|JoinBuildWide'

const wideRows = 60000

// wideDDL is TPC-H lineitem widened to the full 16 columns (the benchmark
// schema the paper's scan-bound queries assume).
const wideDDL = `CREATE TABLE wide (
	l_orderkey BIGINT, l_partkey INT, l_suppkey INT, l_linenumber INT,
	l_quantity DOUBLE, l_extendedprice DOUBLE, l_discount DOUBLE, l_tax DOUBLE,
	l_returnflag VARCHAR(1), l_linestatus VARCHAR(1),
	l_shipdate DATE, l_commitdate DATE, l_receiptdate DATE, l_shipmode VARCHAR(10),
	l_shipinstruct VARCHAR(25), l_comment VARCHAR(44),
	PRIMARY KEY (l_orderkey, l_linenumber))`

var wideShipmodes = []string{"AIR", "RAIL", "TRUCK", "SHIP", "MAIL", "FOB", "REG AIR"}
var wideInstructs = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}

// wideRow generates row i deterministically; dates cluster so the shipdate
// predicate selects roughly half the table.
func wideRow(i int) []value.Value {
	day := int64(9000 + i%730) // 1994-08..1996-08
	return []value.Value{
		value.NewInt(int64(i / 4)),
		value.NewInt(int64(i * 7 % 20000)),
		value.NewInt(int64(i % 100)),
		value.NewInt(int64(i % 4)),
		value.NewFloat(float64(1 + i%50)),
		value.NewFloat(float64(900 + i%100000)),
		value.NewFloat(float64(i%11) / 100),
		value.NewFloat(float64(i%9) / 100),
		value.NewString(string(rune('A' + i%3))),
		value.NewString(string(rune('F' + i%2))),
		value.NewDate(day),
		value.NewDate(day + 30),
		value.NewDate(day + 37),
		value.NewString(wideShipmodes[i%len(wideShipmodes)]),
		value.NewString(wideInstructs[i%len(wideInstructs)]),
		value.NewString(fmt.Sprintf("comment row %d carefully packed", i)),
	}
}

func newWideEngine(opts engine.Options) (*engine.Engine, error) {
	opts.TupleOverhead = -1
	e := engine.New(opts)
	if _, err := e.Execute(wideDDL); err != nil {
		return nil, err
	}
	rows := make([][]value.Value, wideRows)
	for i := range rows {
		rows[i] = wideRow(i)
	}
	if err := e.BulkLoad("wide", rows); err != nil {
		return nil, err
	}
	return e, nil
}

var (
	wideOnce   sync.Once
	wideEng    *engine.Engine
	wideEngErr error
)

func wideEngine(b *testing.B) *engine.Engine {
	b.Helper()
	wideOnce.Do(func() { wideEng, wideEngErr = newWideEngine(engine.Options{}) })
	if wideEngErr != nil {
		b.Fatalf("wide engine: %v", wideEngErr)
	}
	return wideEng
}

// wideTwoColSQL touches 2 of the 16 columns: the paper's scan-filter-aggregate
// shape where decode, not the kernels, is the floor.
const wideTwoColSQL = "SELECT SUM(l_extendedprice) FROM wide WHERE l_shipdate < DATE '1995-08-01'"

// wideAllColSQL touches every column, so the projection covers the whole
// tuple and the scan decodes all 16 fields — the full-decode reference point.
const wideAllColSQL = "SELECT SUM(l_extendedprice), MIN(l_orderkey), MIN(l_partkey), MIN(l_suppkey), " +
	"MIN(l_linenumber), MIN(l_quantity), MIN(l_discount), MIN(l_tax), MIN(l_returnflag), " +
	"MIN(l_linestatus), MIN(l_commitdate), MIN(l_receiptdate), MIN(l_shipmode), " +
	"MIN(l_shipinstruct), MIN(l_comment) FROM wide WHERE l_shipdate < DATE '1995-08-01'"

func runWideQuery(b *testing.B, e *engine.Engine, sql string) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Query(sql)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 1 {
			b.Fatalf("got %d rows, want 1", len(res.Rows))
		}
	}
	b.ReportMetric(float64(wideRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkWideScanProjected is the PR's headline number: a two-column
// scan-filter-aggregate over a 16-column table (projected decode) against the
// same scan forced to touch every column (full decode).
func BenchmarkWideScanProjected(b *testing.B) {
	e := wideEngine(b)
	b.Run("two_of_16", func(b *testing.B) { runWideQuery(b, e, wideTwoColSQL) })
	b.Run("all_16", func(b *testing.B) { runWideQuery(b, e, wideAllColSQL) })
}

// BenchmarkJoinBuildWideProjected drains the wide table as a hash-join build
// side that needs only the key and one payload column — the join-build decode
// path. The probe side is tiny, so the build drain dominates.
func BenchmarkJoinBuildWideProjected(b *testing.B) {
	e := wideEngine(b)
	if !e.Catalog().HasTable("odays") {
		if _, err := e.Execute("CREATE TABLE odays (d_key INT, d_grp INT, PRIMARY KEY (d_key))"); err != nil {
			b.Fatal(err)
		}
		dims := make([][]value.Value, 16)
		for i := range dims {
			dims[i] = []value.Value{value.NewInt(int64(i * 1000)), value.NewInt(int64(i % 4))}
		}
		if err := e.BulkLoad("odays", dims); err != nil {
			b.Fatal(err)
		}
	}
	sql := "SELECT d_grp, SUM(l_extendedprice) FROM odays, wide " +
		"WHERE d_key = l_orderkey GROUP BY d_grp OPTION(HASH JOIN)"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(sql); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(wideRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}
