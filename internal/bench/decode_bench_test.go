package bench

import (
	"fmt"
	"sync"
	"testing"

	"oldelephant/internal/engine"
	"oldelephant/internal/value"
)

// The scan-decode microbenchmarks: the same wide-table scan-filter-aggregate
// compared between a two-column projection and a query touching every column,
// plus a hash-join whose build side drains the wide table through a narrow
// projection. A 16-column lineitem-shaped table makes the decode tax visible:
// a row store that decodes all 16 fields to answer a 2-column aggregate pays
// an 8x decode overhead the projected path eliminates.
//
//	go test ./internal/bench -bench 'WideScan|JoinBuildWide'

const wideRows = 60000

// wideDDL is TPC-H lineitem widened to the full 16 columns (the benchmark
// schema the paper's scan-bound queries assume).
const wideDDL = `CREATE TABLE wide (
	l_orderkey BIGINT, l_partkey INT, l_suppkey INT, l_linenumber INT,
	l_quantity DOUBLE, l_extendedprice DOUBLE, l_discount DOUBLE, l_tax DOUBLE,
	l_returnflag VARCHAR(1), l_linestatus VARCHAR(1),
	l_shipdate DATE, l_commitdate DATE, l_receiptdate DATE, l_shipmode VARCHAR(10),
	l_shipinstruct VARCHAR(25), l_comment VARCHAR(44),
	PRIMARY KEY (l_orderkey, l_linenumber))`

var wideShipmodes = []string{"AIR", "RAIL", "TRUCK", "SHIP", "MAIL", "FOB", "REG AIR"}
var wideInstructs = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}

// wideRow generates row i deterministically; dates cluster so the shipdate
// predicate selects roughly half the table.
func wideRow(i int) []value.Value {
	day := int64(9000 + i%730) // 1994-08..1996-08
	return []value.Value{
		value.NewInt(int64(i / 4)),
		value.NewInt(int64(i * 7 % 20000)),
		value.NewInt(int64(i % 100)),
		value.NewInt(int64(i % 4)),
		value.NewFloat(float64(1 + i%50)),
		value.NewFloat(float64(900 + i%100000)),
		value.NewFloat(float64(i%11) / 100),
		value.NewFloat(float64(i%9) / 100),
		value.NewString(string(rune('A' + i%3))),
		value.NewString(string(rune('F' + i%2))),
		value.NewDate(day),
		value.NewDate(day + 30),
		value.NewDate(day + 37),
		value.NewString(wideShipmodes[i%len(wideShipmodes)]),
		value.NewString(wideInstructs[i%len(wideInstructs)]),
		value.NewString(fmt.Sprintf("comment row %d carefully packed", i)),
	}
}

func newWideEngine(opts engine.Options) (*engine.Engine, error) {
	opts.TupleOverhead = -1
	e := engine.New(opts)
	if _, err := e.Execute(wideDDL); err != nil {
		return nil, err
	}
	rows := make([][]value.Value, wideRows)
	for i := range rows {
		rows[i] = wideRow(i)
	}
	if err := e.BulkLoad("wide", rows); err != nil {
		return nil, err
	}
	return e, nil
}

var (
	wideOnce   sync.Once
	wideEng    *engine.Engine
	wideEngErr error
)

func wideEngine(b *testing.B) *engine.Engine {
	b.Helper()
	wideOnce.Do(func() { wideEng, wideEngErr = newWideEngine(engine.Options{}) })
	if wideEngErr != nil {
		b.Fatalf("wide engine: %v", wideEngErr)
	}
	return wideEng
}

// wideTwoColSQL touches 2 of the 16 columns: the paper's scan-filter-aggregate
// shape where decode, not the kernels, is the floor.
const wideTwoColSQL = "SELECT SUM(l_extendedprice) FROM wide WHERE l_shipdate < DATE '1995-08-01'"

// wideAllColSQL touches every column, so the projection covers the whole
// tuple and the scan decodes all 16 fields — the full-decode reference point.
const wideAllColSQL = "SELECT SUM(l_extendedprice), MIN(l_orderkey), MIN(l_partkey), MIN(l_suppkey), " +
	"MIN(l_linenumber), MIN(l_quantity), MIN(l_discount), MIN(l_tax), MIN(l_returnflag), " +
	"MIN(l_linestatus), MIN(l_commitdate), MIN(l_receiptdate), MIN(l_shipmode), " +
	"MIN(l_shipinstruct), MIN(l_comment) FROM wide WHERE l_shipdate < DATE '1995-08-01'"

func runWideQuery(b *testing.B, e *engine.Engine, sql string) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Query(sql)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 1 {
			b.Fatalf("got %d rows, want 1", len(res.Rows))
		}
	}
	b.ReportMetric(float64(wideRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkWideScanProjected is the PR's headline number: a two-column
// scan-filter-aggregate over a 16-column table (projected decode) against the
// same scan forced to touch every column (full decode).
func BenchmarkWideScanProjected(b *testing.B) {
	e := wideEngine(b)
	b.Run("two_of_16", func(b *testing.B) { runWideQuery(b, e, wideTwoColSQL) })
	b.Run("all_16", func(b *testing.B) { runWideQuery(b, e, wideAllColSQL) })
}

// The string-heavy table: 8 of 9 columns are VARCHAR, split between
// low-cardinality columns (category/status/shipmode-like, where dictionary
// decode collapses per-value work to a code lookup) and high-cardinality ones
// (names/comments, where only an arena can amortize the per-value string
// allocation). It is the benchmark shape for the string decode floor.
const strRows = 40000

const strDDL = `CREATE TABLE strwide (
	s_key BIGINT,
	s_status VARCHAR(1), s_cat VARCHAR(8), s_region VARCHAR(12), s_tag VARCHAR(10),
	s_name VARCHAR(24), s_note VARCHAR(44), s_desc VARCHAR(32), s_alt VARCHAR(16),
	PRIMARY KEY (s_key))`

var strCats = []string{"ALPHA", "BETA", "GAMMA", "DELTA", "EPSILON"}
var strRegions = []string{"AMERICA", "EUROPE", "ASIA", "AFRICA", "MIDDLE EAST", "OCEANIA"}
var strTags = []string{"HOT", "COLD", "WARM", "FROZEN", "MILD", "DRY", "WET", "DAMP"}

func strRow(i int) []value.Value {
	return []value.Value{
		value.NewInt(int64(i)),
		value.NewString(string(rune('A' + i%4))),
		value.NewString(strCats[i%len(strCats)]),
		value.NewString(strRegions[i%len(strRegions)]),
		value.NewString(strTags[i%len(strTags)]),
		value.NewString(fmt.Sprintf("name-%d-%d", i%977, i)),
		value.NewString(fmt.Sprintf("note row %d padded with detail %d", i, i*31%1000)),
		value.NewString(fmt.Sprintf("description %d block %d", i*7%10000, i%64)),
		value.NewString(fmt.Sprintf("alt-%d", i*13%100000)),
	}
}

var (
	strOnce   sync.Once
	strEng    *engine.Engine
	strEngErr error
)

func strEngine(b *testing.B) *engine.Engine {
	b.Helper()
	strOnce.Do(func() {
		opts := engine.Options{TupleOverhead: -1}
		e := engine.New(opts)
		if _, strEngErr = e.Execute(strDDL); strEngErr != nil {
			return
		}
		rows := make([][]value.Value, strRows)
		for i := range rows {
			rows[i] = strRow(i)
		}
		if strEngErr = e.BulkLoad("strwide", rows); strEngErr == nil {
			strEng = e
		}
	})
	if strEngErr != nil {
		b.Fatalf("string engine: %v", strEngErr)
	}
	return strEng
}

// strProjectedSQL touches 3 of the 8 string columns — one low-cardinality
// (dict decode) and two high-cardinality (arena decode).
const strProjectedSQL = "SELECT COUNT(*), MIN(s_name), MAX(s_note) FROM strwide WHERE s_status = 'A'"

// strFullSQL touches every column: the full string-decode reference point.
const strFullSQL = "SELECT COUNT(*), MIN(s_status), MAX(s_cat), MIN(s_region), MAX(s_tag), " +
	"MIN(s_name), MAX(s_note), MIN(s_desc), MAX(s_alt) FROM strwide WHERE s_key >= 0"

// BenchmarkStringScan measures the string decode floor: a projected scan
// touching 3 of 8 varchar columns and a full scan touching all of them, over
// a table where nearly every byte decoded is string data.
func BenchmarkStringScan(b *testing.B) {
	e := strEngine(b)
	run := func(b *testing.B, sql string) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := e.Query(sql)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != 1 {
				b.Fatalf("got %d rows, want 1", len(res.Rows))
			}
		}
		b.ReportMetric(float64(strRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
	}
	b.Run("projected_3_of_9", func(b *testing.B) { run(b, strProjectedSQL) })
	b.Run("full_9", func(b *testing.B) { run(b, strFullSQL) })
}

// BenchmarkJoinBuildWideProjected drains the wide table as a hash-join build
// side that needs only the key and one payload column — the join-build decode
// path. The probe side is tiny, so the build drain dominates.
func BenchmarkJoinBuildWideProjected(b *testing.B) {
	e := wideEngine(b)
	if !e.Catalog().HasTable("odays") {
		if _, err := e.Execute("CREATE TABLE odays (d_key INT, d_grp INT, PRIMARY KEY (d_key))"); err != nil {
			b.Fatal(err)
		}
		dims := make([][]value.Value, 16)
		for i := range dims {
			dims[i] = []value.Value{value.NewInt(int64(i * 1000)), value.NewInt(int64(i % 4))}
		}
		if err := e.BulkLoad("odays", dims); err != nil {
			b.Fatal(err)
		}
	}
	sql := "SELECT d_grp, SUM(l_extendedprice) FROM odays, wide " +
		"WHERE d_key = l_orderkey GROUP BY d_grp OPTION(HASH JOIN)"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(sql); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(wideRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}
