// Package tpch generates deterministic, TPC-H-shaped data at a configurable
// scale factor and loads it into the engine. The generator follows the TPC-H
// schema and value distributions closely enough that the workload of the
// paper (selectivities on dates, supplier counts, return-flag fractions,
// run-length behaviour of sorted columns) behaves like the original
// benchmark, while remaining fully self-contained and offline.
package tpch

import (
	"fmt"
	"math/rand"

	"oldelephant/internal/engine"
	"oldelephant/internal/value"
)

// Scale-factor-1 base cardinalities from the TPC-H specification.
const (
	customersPerSF = 150000
	ordersPerSF    = 1500000
	suppliersPerSF = 10000
	partsPerSF     = 200000
)

// Date range of the TPC-H data set.
var (
	startDate = value.MustParseDate("1992-01-01").Int()
	endDate   = value.MustParseDate("1998-08-02").Int()
	// currentDate is the TPC-H "current date" used for return flags.
	currentDate = value.MustParseDate("1995-06-17").Int()
)

// Generator produces the TPC-H tables at a given scale factor.
type Generator struct {
	// SF is the scale factor (1.0 = 6M lineitem rows). Fractional scale
	// factors are supported and are the norm for in-memory experiments.
	SF float64
	// Seed makes the data deterministic; generators with equal SF and Seed
	// produce identical data.
	Seed int64
}

// NewGenerator returns a generator with the default seed.
func NewGenerator(sf float64) *Generator { return &Generator{SF: sf, Seed: 7} }

// TableNames lists the generated tables in dependency order.
func TableNames() []string {
	return []string{"region", "nation", "supplier", "customer", "part", "orders", "lineitem"}
}

// DDL returns the CREATE TABLE statement for a TPC-H table, with the primary
// (clustered) key the paper's Row baseline assumes.
func DDL(table string) (string, error) {
	switch table {
	case "region":
		return `CREATE TABLE region (r_regionkey INT, r_name VARCHAR(25), PRIMARY KEY (r_regionkey))`, nil
	case "nation":
		return `CREATE TABLE nation (n_nationkey INT, n_name VARCHAR(25), n_regionkey INT, PRIMARY KEY (n_nationkey))`, nil
	case "supplier":
		return `CREATE TABLE supplier (s_suppkey INT, s_name VARCHAR(25), s_nationkey INT, s_acctbal DOUBLE, PRIMARY KEY (s_suppkey))`, nil
	case "customer":
		return `CREATE TABLE customer (c_custkey INT, c_name VARCHAR(25), c_nationkey INT, c_acctbal DOUBLE, c_mktsegment VARCHAR(10), PRIMARY KEY (c_custkey))`, nil
	case "part":
		return `CREATE TABLE part (p_partkey INT, p_name VARCHAR(55), p_brand VARCHAR(10), p_type VARCHAR(25), p_retailprice DOUBLE, PRIMARY KEY (p_partkey))`, nil
	case "orders":
		return `CREATE TABLE orders (o_orderkey BIGINT, o_custkey INT, o_orderstatus VARCHAR(1), o_totalprice DOUBLE, o_orderdate DATE, o_orderpriority VARCHAR(15), PRIMARY KEY (o_orderkey))`, nil
	case "lineitem":
		return `CREATE TABLE lineitem (
			l_orderkey BIGINT, l_partkey INT, l_suppkey INT, l_linenumber INT,
			l_quantity DOUBLE, l_extendedprice DOUBLE, l_discount DOUBLE, l_tax DOUBLE,
			l_returnflag VARCHAR(1), l_linestatus VARCHAR(1),
			l_shipdate DATE, l_commitdate DATE, l_receiptdate DATE, l_shipmode VARCHAR(10),
			PRIMARY KEY (l_orderkey, l_linenumber))`, nil
	default:
		return "", fmt.Errorf("tpch: unknown table %q", table)
	}
}

// Counts returns the row counts for the generator's scale factor.
func (g *Generator) Counts() map[string]int {
	scale := func(n int) int {
		v := int(float64(n) * g.SF)
		if v < 1 {
			v = 1
		}
		return v
	}
	orders := scale(ordersPerSF)
	return map[string]int{
		"region":   5,
		"nation":   25,
		"supplier": scale(suppliersPerSF),
		"customer": scale(customersPerSF),
		"part":     scale(partsPerSF),
		"orders":   orders,
		// lineitem rows are 1..7 per order (average 4); the exact number is
		// determined during generation, this is the expectation.
		"lineitem": orders * 4,
	}
}

var regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

var nationNames = []string{
	"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
	"GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
	"MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA",
	"VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
}

var segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
var priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
var shipmodes = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
var partTypes = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}

// Rows generates the rows of one table.
func (g *Generator) Rows(table string) ([][]value.Value, error) {
	counts := g.Counts()
	rng := rand.New(rand.NewSource(g.Seed + int64(len(table))*7919))
	switch table {
	case "region":
		rows := make([][]value.Value, 5)
		for i := 0; i < 5; i++ {
			rows[i] = []value.Value{value.NewInt(int64(i)), value.NewString(regionNames[i])}
		}
		return rows, nil
	case "nation":
		rows := make([][]value.Value, 25)
		for i := 0; i < 25; i++ {
			rows[i] = []value.Value{
				value.NewInt(int64(i)),
				value.NewString(nationNames[i]),
				value.NewInt(int64(i % 5)),
			}
		}
		return rows, nil
	case "supplier":
		n := counts["supplier"]
		rows := make([][]value.Value, n)
		for i := 0; i < n; i++ {
			rows[i] = []value.Value{
				value.NewInt(int64(i + 1)),
				value.NewString(fmt.Sprintf("Supplier#%09d", i+1)),
				value.NewInt(int64(rng.Intn(25))),
				value.NewFloat(float64(rng.Intn(999999))/100 - 999.99),
			}
		}
		return rows, nil
	case "customer":
		n := counts["customer"]
		rows := make([][]value.Value, n)
		for i := 0; i < n; i++ {
			rows[i] = []value.Value{
				value.NewInt(int64(i + 1)),
				value.NewString(fmt.Sprintf("Customer#%09d", i+1)),
				value.NewInt(int64(rng.Intn(25))),
				value.NewFloat(float64(rng.Intn(999999))/100 - 999.99),
				value.NewString(segments[rng.Intn(len(segments))]),
			}
		}
		return rows, nil
	case "part":
		n := counts["part"]
		rows := make([][]value.Value, n)
		for i := 0; i < n; i++ {
			rows[i] = []value.Value{
				value.NewInt(int64(i + 1)),
				value.NewString(fmt.Sprintf("part %d %s", i+1, partTypes[rng.Intn(len(partTypes))])),
				value.NewString(fmt.Sprintf("Brand#%d%d", 1+rng.Intn(5), 1+rng.Intn(5))),
				value.NewString(partTypes[rng.Intn(len(partTypes))]),
				value.NewFloat(900 + float64((i+1)%1000)/10),
			}
		}
		return rows, nil
	case "orders":
		n := counts["orders"]
		custs := counts["customer"]
		rows := make([][]value.Value, n)
		for i := 0; i < n; i++ {
			orderDate := startDate + int64(rng.Intn(int(endDate-startDate-121)))
			rows[i] = []value.Value{
				value.NewInt(orderKeyFor(i)),
				value.NewInt(int64(1 + rng.Intn(custs))),
				value.NewString([]string{"O", "F", "P"}[rng.Intn(3)]),
				value.NewFloat(1000 + float64(rng.Intn(450000))/10),
				value.NewDate(orderDate),
				value.NewString(priorities[rng.Intn(len(priorities))]),
			}
		}
		return rows, nil
	case "lineitem":
		return g.lineitemRows(rng, counts)
	default:
		return nil, fmt.Errorf("tpch: unknown table %q", table)
	}
}

// orderKeyFor mirrors TPC-H's sparse order keys (only 8 of every 32 keys are
// used); a simple bijection keeps keys increasing and deterministic.
func orderKeyFor(i int) int64 {
	group, offset := i/8, i%8
	return int64(group*32 + offset + 1)
}

func (g *Generator) lineitemRows(rng *rand.Rand, counts map[string]int) ([][]value.Value, error) {
	nOrders := counts["orders"]
	nSupp := counts["supplier"]
	nPart := counts["part"]
	// Order dates must match the orders table: regenerate them with the same
	// seed and sequence the orders generator used.
	orderRng := rand.New(rand.NewSource(g.Seed + int64(len("orders"))*7919))
	rows := make([][]value.Value, 0, nOrders*4)
	for i := 0; i < nOrders; i++ {
		orderDate := startDate + int64(orderRng.Intn(int(endDate-startDate-121)))
		// Consume the same random draws the orders generator makes after the date.
		orderRng.Intn(counts["customer"])
		orderRng.Intn(3)
		orderRng.Intn(450000)
		orderRng.Intn(len(priorities))
		lines := 1 + rng.Intn(7)
		for ln := 1; ln <= lines; ln++ {
			quantity := float64(1 + rng.Intn(50))
			price := float64(90000+rng.Intn(100000)) / 100
			shipDate := orderDate + int64(1+rng.Intn(121))
			commitDate := orderDate + int64(30+rng.Intn(61))
			receiptDate := shipDate + int64(1+rng.Intn(30))
			flag := "N"
			if receiptDate <= currentDate {
				if rng.Intn(2) == 0 {
					flag = "R"
				} else {
					flag = "A"
				}
			}
			status := "O"
			if shipDate <= currentDate {
				status = "F"
			}
			rows = append(rows, []value.Value{
				value.NewInt(orderKeyFor(i)),
				value.NewInt(int64(1 + rng.Intn(nPart))),
				value.NewInt(int64(1 + rng.Intn(nSupp))),
				value.NewInt(int64(ln)),
				value.NewFloat(quantity),
				value.NewFloat(price * quantity / 10),
				value.NewFloat(float64(rng.Intn(11)) / 100),
				value.NewFloat(float64(rng.Intn(9)) / 100),
				value.NewString(flag),
				value.NewString(status),
				value.NewDate(shipDate),
				value.NewDate(commitDate),
				value.NewDate(receiptDate),
				value.NewString(shipmodes[rng.Intn(len(shipmodes))]),
			})
		}
	}
	return rows, nil
}

// Load creates one table and bulk-loads its generated rows into the engine.
func (g *Generator) Load(e *engine.Engine, table string) error {
	ddl, err := DDL(table)
	if err != nil {
		return err
	}
	if _, err := e.Execute(ddl); err != nil {
		return err
	}
	rows, err := g.Rows(table)
	if err != nil {
		return err
	}
	return e.BulkLoad(table, rows)
}

// LoadAll creates and loads every TPC-H table.
func (g *Generator) LoadAll(e *engine.Engine) error {
	for _, t := range TableNames() {
		if err := g.Load(e, t); err != nil {
			return fmt.Errorf("tpch: loading %s: %w", t, err)
		}
	}
	return nil
}

// LoadCore creates and loads only the tables the paper's workload touches
// (customer, orders, lineitem), which keeps experiment set-up fast.
func (g *Generator) LoadCore(e *engine.Engine) error {
	for _, t := range []string{"customer", "orders", "lineitem"} {
		if err := g.Load(e, t); err != nil {
			return fmt.Errorf("tpch: loading %s: %w", t, err)
		}
	}
	return nil
}
