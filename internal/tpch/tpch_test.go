package tpch

import (
	"testing"

	"oldelephant/internal/engine"
	"oldelephant/internal/value"
)

func TestCountsScale(t *testing.T) {
	g := NewGenerator(0.01)
	c := g.Counts()
	if c["customer"] != 1500 || c["orders"] != 15000 || c["supplier"] != 100 {
		t.Errorf("counts = %v", c)
	}
	if c["region"] != 5 || c["nation"] != 25 {
		t.Errorf("fixed tables scaled: %v", c)
	}
	tiny := NewGenerator(0.0000001).Counts()
	if tiny["orders"] < 1 {
		t.Error("counts should be at least 1")
	}
}

func TestDDLKnownTables(t *testing.T) {
	for _, name := range TableNames() {
		ddl, err := DDL(name)
		if err != nil || ddl == "" {
			t.Errorf("DDL(%s) failed: %v", name, err)
		}
	}
	if _, err := DDL("bogus"); err == nil {
		t.Error("unknown table should fail")
	}
	if _, err := NewGenerator(1).Rows("bogus"); err == nil {
		t.Error("unknown table rows should fail")
	}
}

func TestGenerationIsDeterministic(t *testing.T) {
	a := NewGenerator(0.002)
	b := NewGenerator(0.002)
	for _, table := range []string{"customer", "orders", "lineitem"} {
		ra, err := a.Rows(table)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Rows(table)
		if err != nil {
			t.Fatal(err)
		}
		if len(ra) != len(rb) {
			t.Fatalf("%s row counts differ: %d vs %d", table, len(ra), len(rb))
		}
		for i := range ra {
			for j := range ra[i] {
				if value.Compare(ra[i][j], rb[i][j]) != 0 {
					t.Fatalf("%s row %d col %d differs", table, i, j)
				}
			}
		}
	}
}

func TestLineitemDistributions(t *testing.T) {
	g := NewGenerator(0.005)
	rows, err := g.Rows("lineitem")
	if err != nil {
		t.Fatal(err)
	}
	expected := g.Counts()["lineitem"]
	if len(rows) < expected/2 || len(rows) > expected*2 {
		t.Errorf("lineitem rows = %d, expected about %d", len(rows), expected)
	}
	flagCounts := map[string]int{}
	minShip, maxShip := int64(1<<62), int64(-1)
	returnBeforeCutoff := 0
	for _, r := range rows {
		flag := r[8].S
		flagCounts[flag]++
		ship := r[10].Int()
		if ship < minShip {
			minShip = ship
		}
		if ship > maxShip {
			maxShip = ship
		}
		receipt := r[12].Int()
		if flag != "N" && receipt > currentDate {
			returnBeforeCutoff++
		}
		if r[3].Int() < 1 || r[3].Int() > 7 {
			t.Fatalf("linenumber out of range: %v", r[3])
		}
		if r[4].Float() < 1 || r[4].Float() > 50 {
			t.Fatalf("quantity out of range: %v", r[4])
		}
	}
	if flagCounts["R"] == 0 || flagCounts["A"] == 0 || flagCounts["N"] == 0 {
		t.Errorf("return flags not all present: %v", flagCounts)
	}
	// Roughly half the rows precede the 1995-06-17 cutoff, so R+A should be a
	// large minority of all rows.
	frac := float64(flagCounts["R"]+flagCounts["A"]) / float64(len(rows))
	if frac < 0.2 || frac > 0.8 {
		t.Errorf("R+A fraction = %f", frac)
	}
	if returnBeforeCutoff != 0 {
		t.Errorf("%d returned items received after the cutoff", returnBeforeCutoff)
	}
	if minShip < startDate || maxShip > endDate+130 {
		t.Errorf("ship dates out of range: %d..%d", minShip, maxShip)
	}
}

func TestOrderDatesConsistentWithLineitem(t *testing.T) {
	g := NewGenerator(0.002)
	orders, err := g.Rows("orders")
	if err != nil {
		t.Fatal(err)
	}
	lineitems, err := g.Rows("lineitem")
	if err != nil {
		t.Fatal(err)
	}
	orderDate := make(map[int64]int64)
	for _, o := range orders {
		orderDate[o[0].Int()] = o[4].Int()
	}
	checked := 0
	for _, l := range lineitems {
		od, ok := orderDate[l[0].Int()]
		if !ok {
			t.Fatalf("lineitem references missing order %v", l[0])
		}
		ship := l[10].Int()
		if ship <= od || ship > od+121 {
			t.Fatalf("shipdate %d not within (orderdate, orderdate+121] (order date %d)", ship, od)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no lineitem rows checked")
	}
}

func TestForeignKeysResolve(t *testing.T) {
	g := NewGenerator(0.002)
	customers, _ := g.Rows("customer")
	orders, _ := g.Rows("orders")
	nationSet := make(map[int64]bool)
	nations, _ := g.Rows("nation")
	for _, n := range nations {
		nationSet[n[0].Int()] = true
		if !nationSet[n[2].Int()] && n[2].Int() > 4 {
			t.Errorf("nation %v references missing region %v", n[0], n[2])
		}
	}
	custSet := make(map[int64]bool)
	for _, c := range customers {
		custSet[c[0].Int()] = true
		if !nationSet[c[2].Int()] {
			t.Errorf("customer %v references missing nation %v", c[0], c[2])
		}
	}
	for _, o := range orders {
		if !custSet[o[1].Int()] {
			t.Errorf("order %v references missing customer %v", o[0], o[1])
		}
	}
}

func TestLoadCoreIntoEngine(t *testing.T) {
	e := engine.Default()
	g := NewGenerator(0.001)
	if err := g.LoadCore(e); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query("SELECT COUNT(*) FROM lineitem")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() == 0 {
		t.Error("lineitem is empty")
	}
	// The join the workload depends on returns rows.
	res, err = e.Query("SELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey")
	if err != nil {
		t.Fatal(err)
	}
	li, _ := e.Query("SELECT COUNT(*) FROM lineitem")
	if value.Compare(res.Rows[0][0], li.Rows[0][0]) != 0 {
		t.Errorf("every lineitem should join to an order: %v vs %v", res.Rows[0][0], li.Rows[0][0])
	}
	// Loading the same table twice fails cleanly.
	if err := g.Load(e, "lineitem"); err == nil {
		t.Error("double load should fail")
	}
}

func TestLoadAllSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full load in short mode")
	}
	e := engine.Default()
	g := NewGenerator(0.0005)
	if err := g.LoadAll(e); err != nil {
		t.Fatal(err)
	}
	for _, table := range TableNames() {
		res, err := e.Query("SELECT COUNT(*) FROM " + table)
		if err != nil {
			t.Fatalf("count %s: %v", table, err)
		}
		if res.Rows[0][0].Int() == 0 {
			t.Errorf("table %s is empty", table)
		}
	}
}
