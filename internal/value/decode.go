package value

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Projection-aware tuple decoding. DecodeTupleInto materializes every field
// of a stored tuple; the scan hot paths instead walk the encoding with a
// TupleWalker, varint-skipping the fields a query never touches, and hand the
// surviving fields' byte spans to kind-specialized decoders that append
// straight into column storage. A 2-of-16-column scan decodes 2 fields and
// skips 14 without constructing a single intermediate Value.

// TupleWalker steps over an encoded tuple (EncodeTuple format) field by
// field without materializing values. The zero value is empty; Reset
// positions it at the first field of a tuple.
type TupleWalker struct {
	src []byte
	off int
	n   int
}

// Reset points the walker at the tuple encoded in src and parses its header.
func (w *TupleWalker) Reset(src []byte) error {
	n, sz := binary.Uvarint(src)
	if sz <= 0 {
		return fmt.Errorf("value: corrupt tuple header")
	}
	// Every field takes at least one byte, so a field count exceeding the
	// remaining bytes is corrupt; rejecting it here bounds downstream loops.
	if n > uint64(len(src)-sz) {
		return fmt.Errorf("value: tuple header claims %d fields in %d bytes", n, len(src)-sz)
	}
	w.src, w.off, w.n = src, sz, int(n)
	return nil
}

// NumFields returns the field count from the tuple header.
func (w *TupleWalker) NumFields() int { return w.n }

// Bytes returns the number of bytes consumed so far (the full tuple length
// once every field has been walked).
func (w *TupleWalker) Bytes() int { return w.off }

// skipUvarint advances past one varint/uvarint starting at off, returning the
// new offset or -1 on corrupt/truncated input.
func skipUvarint(src []byte, off int) int {
	end := off + binary.MaxVarintLen64
	if end > len(src) {
		end = len(src)
	}
	for i := off; i < end; i++ {
		if src[i] < 0x80 {
			return i + 1
		}
	}
	return -1
}

// Skip advances past the next n fields without decoding them: integer-family
// and float fields skip their varint, string fields skip length+bytes, nulls
// are a bare kind byte. The offsets live in locals so the per-field loop
// stays register-resident — this is the projected scan's per-row gap cost.
func (w *TupleWalker) Skip(n int) error {
	src := w.src
	off := w.off
	for ; n > 0; n-- {
		if off >= len(src) {
			return fmt.Errorf("value: truncated tuple")
		}
		kind := Kind(src[off])
		off++
		switch kind {
		case KindNull:
		case KindInt, KindDate, KindBool, KindFloat:
			start := off
			for {
				if off >= len(src) || off-start >= binary.MaxVarintLen64 {
					return fmt.Errorf("value: corrupt varint field")
				}
				b := src[off]
				off++
				if b < 0x80 {
					break
				}
			}
		case KindString:
			length, sz := binary.Uvarint(src[off:])
			if sz <= 0 {
				return fmt.Errorf("value: corrupt string length")
			}
			off += sz
			if uint64(len(src)-off) < length {
				return fmt.Errorf("value: truncated string field")
			}
			off += int(length)
		default:
			return fmt.Errorf("value: unknown kind %d", kind)
		}
	}
	w.off = off
	return nil
}

// DecodeField decodes the next field into *v and advances past it — the
// fused single-parse form of the typed span decoders, used by the batch fill
// so each projected field's bytes are read exactly once (FieldSpan + a span
// decoder would parse the varint twice and round-trip the span through
// memory).
func (w *TupleWalker) DecodeField(v *Value) error {
	src := w.src
	off := w.off
	if off >= len(src) {
		return fmt.Errorf("value: truncated tuple")
	}
	kind := Kind(src[off])
	off++
	switch kind {
	case KindNull:
		*v = Value{}
	case KindInt, KindDate, KindBool:
		iv, sz := binary.Varint(src[off:])
		if sz <= 0 {
			return fmt.Errorf("value: corrupt int field")
		}
		off += sz
		*v = Value{Kind: kind, I: iv}
	case KindFloat:
		bits, sz := binary.Uvarint(src[off:])
		if sz <= 0 {
			return fmt.Errorf("value: corrupt float field")
		}
		off += sz
		*v = Value{Kind: KindFloat, F: math.Float64frombits(bits)}
	case KindString:
		length, sz := binary.Uvarint(src[off:])
		if sz <= 0 {
			return fmt.Errorf("value: corrupt string length")
		}
		off += sz
		if uint64(len(src)-off) < length {
			return fmt.Errorf("value: truncated string field")
		}
		*v = Value{Kind: KindString, S: string(src[off : off+int(length)])}
		off += int(length)
	default:
		return fmt.Errorf("value: unknown kind %d", kind)
	}
	w.off = off
	return nil
}

// FieldSpan returns the raw encoded bytes of the next field — kind byte plus
// body — and advances past it. The span aliases the tuple's backing buffer.
func (w *TupleWalker) FieldSpan() ([]byte, error) {
	start := w.off
	if err := w.Skip(1); err != nil {
		return nil, err
	}
	return w.src[start:w.off], nil
}

// decodeFieldSpan decodes one raw field span (as returned by FieldSpan) into
// a Value — the generic fallback behind the typed decoders. An empty span
// decodes as NULL: the batch fill emits nil spans for ordinals past a tuple's
// field count, mirroring DecodeProjectedInto's past-end convention.
func decodeFieldSpan(sp []byte) (Value, error) {
	if len(sp) == 0 {
		return Null(), nil
	}
	kind := Kind(sp[0])
	switch kind {
	case KindNull:
		return Null(), nil
	case KindInt, KindDate, KindBool:
		iv, sz := binary.Varint(sp[1:])
		if sz <= 0 {
			return Null(), fmt.Errorf("value: corrupt int field")
		}
		return Value{Kind: kind, I: iv}, nil
	case KindFloat:
		bits, sz := binary.Uvarint(sp[1:])
		if sz <= 0 {
			return Null(), fmt.Errorf("value: corrupt float field")
		}
		return NewFloat(math.Float64frombits(bits)), nil
	case KindString:
		length, sz := binary.Uvarint(sp[1:])
		if sz <= 0 || 1+sz+int(length) > len(sp) {
			return Null(), fmt.Errorf("value: corrupt string field")
		}
		return NewString(string(sp[1+sz : 1+sz+int(length)])), nil
	default:
		return Null(), fmt.Errorf("value: unknown kind %d", kind)
	}
}

// DecodeInt64s appends one decoded value per field span to dst, specialized
// for an integer-family column (INT, DATE, BOOL): spans whose kind byte
// matches take a tight varint loop, anything else (NULLs, mixed kinds) falls
// back to the generic decoder. It is the batch fill primitive for integer
// columns: no intermediate row, no per-field dispatch beyond one byte test.
func DecodeInt64s(dst []Value, kind Kind, spans [][]byte) ([]Value, error) {
	for _, sp := range spans {
		if len(sp) > 1 && Kind(sp[0]) == kind {
			iv, sz := binary.Varint(sp[1:])
			if sz > 0 {
				dst = append(dst, Value{Kind: kind, I: iv})
				continue
			}
		}
		v, err := decodeFieldSpan(sp)
		if err != nil {
			return dst, err
		}
		dst = append(dst, v)
	}
	return dst, nil
}

// DecodeFloat64s appends one decoded value per field span to dst, specialized
// for a FLOAT column.
func DecodeFloat64s(dst []Value, spans [][]byte) ([]Value, error) {
	for _, sp := range spans {
		if len(sp) > 1 && Kind(sp[0]) == KindFloat {
			bits, sz := binary.Uvarint(sp[1:])
			if sz > 0 {
				dst = append(dst, Value{Kind: KindFloat, F: math.Float64frombits(bits)})
				continue
			}
		}
		v, err := decodeFieldSpan(sp)
		if err != nil {
			return dst, err
		}
		dst = append(dst, v)
	}
	return dst, nil
}

// DecodeStrings appends one decoded value per field span to dst, specialized
// for a STRING column. The string contents are copied out of the spans (the
// spans alias page memory; the produced Values must not).
func DecodeStrings(dst []Value, spans [][]byte) ([]Value, error) {
	for _, sp := range spans {
		if len(sp) > 1 && Kind(sp[0]) == KindString {
			length, sz := binary.Uvarint(sp[1:])
			if sz > 0 && 1+sz+int(length) <= len(sp) {
				dst = append(dst, Value{Kind: KindString, S: string(sp[1+sz : 1+sz+int(length)])})
				continue
			}
		}
		v, err := decodeFieldSpan(sp)
		if err != nil {
			return dst, err
		}
		dst = append(dst, v)
	}
	return dst, nil
}

// DecodeFieldSpans appends one decoded value per field span to dst with the
// generic per-span decoder — the fill path for columns without a sharper
// declared kind.
func DecodeFieldSpans(dst []Value, spans [][]byte) ([]Value, error) {
	for _, sp := range spans {
		v, err := decodeFieldSpan(sp)
		if err != nil {
			return dst, err
		}
		dst = append(dst, v)
	}
	return dst, nil
}

// DecodeProjectedInto decodes only the fields at the ordinals listed in cols
// (strictly ascending) from an encoded tuple, appending them to dst in cols
// order. Unrequested fields are varint-skipped without constructing Values.
// Ordinals beyond the tuple's field count decode as NULL (tuples written
// before a hypothetical schema extension), matching DecodeTupleInto's shape.
func DecodeProjectedInto(dst []Value, src []byte, cols []int) ([]Value, error) {
	var w TupleWalker
	if err := w.Reset(src); err != nil {
		return dst, err
	}
	prev := 0
	for _, ord := range cols {
		if ord >= w.n {
			dst = append(dst, Null())
			continue
		}
		if err := w.Skip(ord - prev); err != nil {
			return dst, err
		}
		sp, err := w.FieldSpan()
		if err != nil {
			return dst, err
		}
		v, err := decodeFieldSpan(sp)
		if err != nil {
			return dst, err
		}
		dst = append(dst, v)
		prev = ord + 1
	}
	return dst, nil
}

// sortKeyToFloat inverts NumericSortKey: the exact float64 whose sortable
// form is w.
func sortKeyToFloat(w uint64) float64 {
	if w>>63 != 0 {
		return math.Float64frombits(w &^ (1 << 63))
	}
	return math.Float64frombits(^w)
}

// DecodeKeyValue decodes one column's contribution to EncodeKey back into a
// Value, interpreting the order-preserving Number tag with the column's
// declared kind. It returns the value and the number of key bytes consumed.
//
// Recovery is exact only under the conditions the catalog's key-cleanliness
// tracking enforces at insert time: the stored value's kind matched the
// declared kind, integer-family values were within ±2^53 (the NumericSortKey
// word is float64-based), and floats were not negative zero (normalized away
// by the encoder). Strings and NULLs always recover exactly (the 0x00 escape
// scheme is reversible).
func DecodeKeyValue(src []byte, kind Kind) (Value, int, error) {
	if len(src) == 0 {
		return Null(), 0, fmt.Errorf("value: empty key")
	}
	switch src[0] {
	case keyTagNull:
		return Null(), 1, nil
	case keyTagNumber:
		if len(src) < 9 {
			return Null(), 0, fmt.Errorf("value: truncated numeric key")
		}
		f := sortKeyToFloat(binary.BigEndian.Uint64(src[1:9]))
		if kind == KindFloat {
			return Value{Kind: KindFloat, F: f}, 9, nil
		}
		if f != math.Trunc(f) || math.Abs(f) > 1<<53 {
			return Null(), 0, fmt.Errorf("value: numeric key %v does not recover exactly as %v", f, kind)
		}
		return Value{Kind: kind, I: int64(f)}, 9, nil
	case keyTagString:
		var buf []byte
		for i := 1; i < len(src); i++ {
			b := src[i]
			if b != 0x00 {
				buf = append(buf, b)
				continue
			}
			if i+1 >= len(src) {
				break
			}
			i++
			switch src[i] {
			case 0x00: // terminator
				return Value{Kind: KindString, S: string(buf)}, i + 1, nil
			case 0xFF: // escaped 0x00
				buf = append(buf, 0x00)
			default:
				return Null(), 0, fmt.Errorf("value: corrupt string key escape")
			}
		}
		return Null(), 0, fmt.Errorf("value: unterminated string key")
	default:
		return Null(), 0, fmt.Errorf("value: unknown key tag %d", src[0])
	}
}

// SkipKeyValue returns the number of key bytes one encoded key value
// occupies, without decoding it.
func SkipKeyValue(src []byte) (int, error) {
	if len(src) == 0 {
		return 0, fmt.Errorf("value: empty key")
	}
	switch src[0] {
	case keyTagNull:
		return 1, nil
	case keyTagNumber:
		if len(src) < 9 {
			return 0, fmt.Errorf("value: truncated numeric key")
		}
		return 9, nil
	case keyTagString:
		for i := 1; i+1 < len(src); i++ {
			if src[i] == 0x00 {
				if src[i+1] == 0x00 {
					return i + 2, nil
				}
				i++ // escaped byte
			}
		}
		return 0, fmt.Errorf("value: unterminated string key")
	default:
		return 0, fmt.Errorf("value: unknown key tag %d", src[0])
	}
}

// KeyValueRecoverable reports whether v, stored in a key column declared as
// kind k, round-trips exactly through the order-preserving key encoding when
// decoded back with DecodeKeyValue. The catalog checks this on every insert
// into a clustered key column; one false verdict disables key-byte recovery
// for the table (the payload remains the source of truth).
func KeyValueRecoverable(v Value, k Kind) bool {
	if v.Kind == KindNull {
		return true
	}
	if v.Kind != k {
		return false
	}
	switch v.Kind {
	case KindString:
		return true
	case KindFloat:
		// -0.0 normalizes to +0.0 inside NumericSortKey.
		return !(v.F == 0 && math.Signbit(v.F))
	case KindInt, KindDate, KindBool:
		return v.I <= 1<<53 && v.I >= -(1<<53)
	default:
		return false
	}
}
