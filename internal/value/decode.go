package value

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Projection-aware tuple decoding. DecodeTupleInto materializes every field
// of a stored tuple; the scan hot paths instead walk the encoding with a
// TupleWalker, varint-skipping the fields a query never touches, and hand the
// surviving fields' byte spans to kind-specialized decoders that append
// straight into column storage. A 2-of-16-column scan decodes 2 fields and
// skips 14 without constructing a single intermediate Value.

// TupleWalker steps over an encoded tuple (EncodeTuple format) field by
// field without materializing values. The zero value is empty; Reset
// positions it at the first field of a tuple.
type TupleWalker struct {
	src []byte
	off int
	n   int
}

// Reset points the walker at the tuple encoded in src and parses its header.
func (w *TupleWalker) Reset(src []byte) error {
	var n uint64
	var sz int
	if len(src) > 0 && src[0] < 0x80 {
		// Single-byte field count — every tuple under 128 columns.
		n, sz = uint64(src[0]), 1
	} else if n, sz = binary.Uvarint(src); sz <= 0 {
		return fmt.Errorf("value: corrupt tuple header")
	}
	// Every field takes at least one byte, so a field count exceeding the
	// remaining bytes is corrupt; rejecting it here bounds downstream loops.
	if n > uint64(len(src)-sz) {
		return fmt.Errorf("value: tuple header claims %d fields in %d bytes", n, len(src)-sz)
	}
	w.src, w.off, w.n = src, sz, int(n)
	return nil
}

// NumFields returns the field count from the tuple header.
func (w *TupleWalker) NumFields() int { return w.n }

// Bytes returns the number of bytes consumed so far (the full tuple length
// once every field has been walked).
func (w *TupleWalker) Bytes() int { return w.off }

// stringSpanBody extracts the contents of an encoded string field body (the
// bytes after the kind byte: uvarint length || contents), returning the
// content bytes, the total body size consumed, and whether the body was well
// formed. The bound check runs in uint64 because a corrupt length near 2^64
// would overflow the off+int(length) form into a negative bound and a slice
// panic — this is the single fuzz-hardened home of that check; every string
// decode path (tuple decode, field decode, span decode, skip) goes through it.
func stringSpanBody(b []byte) (body []byte, n int, ok bool) {
	if len(b) > 0 && b[0] < 0x80 {
		// Single-byte length — every string under 128 bytes.
		length := int(b[0])
		if len(b)-1 < length {
			return nil, 0, false
		}
		return b[1 : 1+length], 1 + length, true
	}
	length, sz := binary.Uvarint(b)
	if sz <= 0 || uint64(len(b)-sz) < length {
		return nil, 0, false
	}
	return b[sz : sz+int(length)], sz + int(length), true
}

// skipUvarint advances past one varint/uvarint starting at off, returning the
// new offset or -1 on corrupt/truncated input.
func skipUvarint(src []byte, off int) int {
	end := off + binary.MaxVarintLen64
	if end > len(src) {
		end = len(src)
	}
	for i := off; i < end; i++ {
		if src[i] < 0x80 {
			return i + 1
		}
	}
	return -1
}

// Skip advances past the next n fields without decoding them: integer-family
// and float fields skip their varint, string fields skip length+bytes, nulls
// are a bare kind byte. The offsets live in locals so the per-field loop
// stays register-resident — this is the projected scan's per-row gap cost.
func (w *TupleWalker) Skip(n int) error {
	src := w.src
	off := w.off
	for ; n > 0; n-- {
		if off >= len(src) {
			return fmt.Errorf("value: truncated tuple")
		}
		kind := Kind(src[off])
		off++
		switch kind {
		case KindNull:
		case KindInt, KindDate, KindBool, KindFloat:
			start := off
			for {
				if off >= len(src) || off-start >= binary.MaxVarintLen64 {
					return fmt.Errorf("value: corrupt varint field")
				}
				b := src[off]
				off++
				if b < 0x80 {
					break
				}
			}
		case KindString:
			_, n, ok := stringSpanBody(src[off:])
			if !ok {
				return fmt.Errorf("value: corrupt string field")
			}
			off += n
		default:
			return fmt.Errorf("value: unknown kind %d", kind)
		}
	}
	w.off = off
	return nil
}

// DecodeField decodes the next field into *v and advances past it — the
// fused single-parse form of the typed span decoders, used by the batch fill
// so each projected field's bytes are read exactly once (FieldSpan + a span
// decoder would parse the varint twice and round-trip the span through
// memory).
func (w *TupleWalker) DecodeField(v *Value) error {
	src := w.src
	off := w.off
	if off >= len(src) {
		return fmt.Errorf("value: truncated tuple")
	}
	kind := Kind(src[off])
	off++
	switch kind {
	case KindNull:
		*v = Value{}
	case KindInt, KindDate, KindBool:
		iv, sz := binary.Varint(src[off:])
		if sz <= 0 {
			return fmt.Errorf("value: corrupt int field")
		}
		off += sz
		*v = Value{Kind: kind, I: iv}
	case KindFloat:
		fb, sz := binary.Uvarint(src[off:])
		if sz <= 0 {
			return fmt.Errorf("value: corrupt float field")
		}
		off += sz
		*v = Value{Kind: KindFloat, F: floatFromTupleBits(fb)}
	case KindString:
		body, n, ok := stringSpanBody(src[off:])
		if !ok {
			return fmt.Errorf("value: corrupt string field")
		}
		*v = Value{Kind: KindString, S: string(body)}
		off += n
	default:
		return fmt.Errorf("value: unknown kind %d", kind)
	}
	w.off = off
	return nil
}

// StringBody decodes the next field in one parse when it is a string,
// returning its content bytes (aliasing the tuple's backing buffer); for any
// other kind it returns the raw field span instead. It is the string-column
// fill primitive: the common case costs a single stringSpanBody parse where
// FieldSpan + StringFieldBody would parse the length twice.
func (w *TupleWalker) StringBody() (body []byte, isStr bool, sp []byte, err error) {
	src := w.src
	off := w.off
	if off >= len(src) {
		return nil, false, nil, fmt.Errorf("value: truncated tuple")
	}
	if Kind(src[off]) == KindString {
		b, n, ok := stringSpanBody(src[off+1:])
		if !ok {
			return nil, false, nil, fmt.Errorf("value: corrupt string field")
		}
		w.off = off + 1 + n
		return b, true, nil, nil
	}
	sp, err = w.FieldSpan()
	return nil, false, sp, err
}

// FieldSpan returns the raw encoded bytes of the next field — kind byte plus
// body — and advances past it. The span aliases the tuple's backing buffer.
func (w *TupleWalker) FieldSpan() ([]byte, error) {
	start := w.off
	if err := w.Skip(1); err != nil {
		return nil, err
	}
	return w.src[start:w.off], nil
}

// decodeFieldSpan decodes one raw field span (as returned by FieldSpan) into
// a Value — the generic fallback behind the typed decoders. An empty span
// decodes as NULL: the batch fill emits nil spans for ordinals past a tuple's
// field count, mirroring DecodeProjectedInto's past-end convention.
func decodeFieldSpan(sp []byte) (Value, error) {
	if len(sp) == 0 {
		return Null(), nil
	}
	kind := Kind(sp[0])
	switch kind {
	case KindNull:
		return Null(), nil
	case KindInt, KindDate, KindBool:
		iv, sz := binary.Varint(sp[1:])
		if sz <= 0 {
			return Null(), fmt.Errorf("value: corrupt int field")
		}
		return Value{Kind: kind, I: iv}, nil
	case KindFloat:
		fb, sz := binary.Uvarint(sp[1:])
		if sz <= 0 {
			return Null(), fmt.Errorf("value: corrupt float field")
		}
		return NewFloat(floatFromTupleBits(fb)), nil
	case KindString:
		body, _, ok := stringSpanBody(sp[1:])
		if !ok {
			return Null(), fmt.Errorf("value: corrupt string field")
		}
		return NewString(string(body)), nil
	default:
		return Null(), fmt.Errorf("value: unknown kind %d", kind)
	}
}

// DecodeInt64s appends one decoded value per field span to dst, specialized
// for an integer-family column (INT, DATE, BOOL): spans whose kind byte
// matches take a tight varint loop, anything else (NULLs, mixed kinds) falls
// back to the generic decoder. It is the batch fill primitive for integer
// columns: no intermediate row, no per-field dispatch beyond one byte test.
func DecodeInt64s(dst []Value, kind Kind, spans [][]byte) ([]Value, error) {
	for _, sp := range spans {
		if len(sp) > 1 && Kind(sp[0]) == kind {
			iv, sz := binary.Varint(sp[1:])
			if sz > 0 {
				dst = append(dst, Value{Kind: kind, I: iv})
				continue
			}
		}
		v, err := decodeFieldSpan(sp)
		if err != nil {
			return dst, err
		}
		dst = append(dst, v)
	}
	return dst, nil
}

// DecodeFloat64s appends one decoded value per field span to dst, specialized
// for a FLOAT column.
func DecodeFloat64s(dst []Value, spans [][]byte) ([]Value, error) {
	for _, sp := range spans {
		if len(sp) > 1 && Kind(sp[0]) == KindFloat {
			fb, sz := binary.Uvarint(sp[1:])
			if sz > 0 {
				dst = append(dst, Value{Kind: KindFloat, F: floatFromTupleBits(fb)})
				continue
			}
		}
		v, err := decodeFieldSpan(sp)
		if err != nil {
			return dst, err
		}
		dst = append(dst, v)
	}
	return dst, nil
}

// DecodeStrings appends one decoded value per field span to dst, specialized
// for a STRING column. The string contents are copied out of the spans (the
// spans alias page memory; the produced Values must not).
func DecodeStrings(dst []Value, spans [][]byte) ([]Value, error) {
	for _, sp := range spans {
		if len(sp) > 1 && Kind(sp[0]) == KindString {
			if body, _, ok := stringSpanBody(sp[1:]); ok {
				dst = append(dst, Value{Kind: KindString, S: string(body)})
				continue
			}
		}
		v, err := decodeFieldSpan(sp)
		if err != nil {
			return dst, err
		}
		dst = append(dst, v)
	}
	return dst, nil
}

// DecodeStringsArena is DecodeStrings staging string contents into arena
// instead of allocating one Go string per value: each produced string Value
// is a placeholder the caller must resolve after arena.Seal() (see
// StringArena). Non-string spans (NULLs, mixed kinds) decode as final values.
func DecodeStringsArena(dst []Value, arena *StringArena, spans [][]byte) ([]Value, error) {
	for _, sp := range spans {
		if len(sp) > 1 && Kind(sp[0]) == KindString {
			if body, _, ok := stringSpanBody(sp[1:]); ok {
				dst = append(dst, arena.Stage(body))
				continue
			}
		}
		v, err := decodeFieldSpan(sp)
		if err != nil {
			return dst, err
		}
		dst = append(dst, v)
	}
	return dst, nil
}

// DecodeFieldSpans appends one decoded value per field span to dst with the
// generic per-span decoder — the fill path for columns without a sharper
// declared kind.
func DecodeFieldSpans(dst []Value, spans [][]byte) ([]Value, error) {
	for _, sp := range spans {
		v, err := decodeFieldSpan(sp)
		if err != nil {
			return dst, err
		}
		dst = append(dst, v)
	}
	return dst, nil
}

// DecodeProjectedInto decodes only the fields at the ordinals listed in cols
// (strictly ascending) from an encoded tuple, appending them to dst in cols
// order. Unrequested fields are varint-skipped without constructing Values.
// Ordinals beyond the tuple's field count decode as NULL (tuples written
// before a hypothetical schema extension), matching DecodeTupleInto's shape.
func DecodeProjectedInto(dst []Value, src []byte, cols []int) ([]Value, error) {
	var w TupleWalker
	if err := w.Reset(src); err != nil {
		return dst, err
	}
	prev := 0
	for _, ord := range cols {
		if ord >= w.n {
			dst = append(dst, Null())
			continue
		}
		if err := w.Skip(ord - prev); err != nil {
			return dst, err
		}
		sp, err := w.FieldSpan()
		if err != nil {
			return dst, err
		}
		v, err := decodeFieldSpan(sp)
		if err != nil {
			return dst, err
		}
		dst = append(dst, v)
		prev = ord + 1
	}
	return dst, nil
}

// sortKeyToFloat inverts NumericSortKey: the exact float64 whose sortable
// form is w.
func sortKeyToFloat(w uint64) float64 {
	if w>>63 != 0 {
		return math.Float64frombits(w &^ (1 << 63))
	}
	return math.Float64frombits(^w)
}

// DecodeKeyValue decodes one column's contribution to EncodeKey back into a
// Value, interpreting the order-preserving Number tag with the column's
// declared kind. It returns the value and the number of key bytes consumed.
//
// Recovery is exact only under the conditions the catalog's key-cleanliness
// tracking enforces at insert time: the stored value's kind matched the
// declared kind and floats were not negative zero (normalized away by the
// encoder). Integer-family values recover exactly at any magnitude — within
// ±2^53 from the float64 word, beyond it from the typed integer suffix the
// encoder appends. Strings and NULLs always recover exactly (the 0x00 escape
// scheme is reversible).
func DecodeKeyValue(src []byte, kind Kind) (Value, int, error) {
	if len(src) == 0 {
		return Null(), 0, fmt.Errorf("value: empty key")
	}
	switch src[0] {
	case keyTagNull:
		return Null(), 1, nil
	case keyTagNumber:
		if len(src) < 9 {
			return Null(), 0, fmt.Errorf("value: truncated numeric key")
		}
		f := sortKeyToFloat(binary.BigEndian.Uint64(src[1:9]))
		n := 9
		var suffix int64
		if keyNeedsIntSuffix(f) {
			// The word alone no longer distinguishes adjacent integers; the
			// exact value travels in the 8-byte suffix (see encodeKeyValue).
			if len(src) < 17 {
				return Null(), 0, fmt.Errorf("value: truncated numeric key suffix")
			}
			suffix = int64(binary.BigEndian.Uint64(src[9:17]) ^ (1 << 63))
			n = 17
		}
		if kind == KindFloat {
			return Value{Kind: KindFloat, F: f}, n, nil
		}
		if n == 17 {
			return Value{Kind: kind, I: suffix}, n, nil
		}
		if f != math.Trunc(f) || math.Abs(f) > 1<<53 {
			return Null(), 0, fmt.Errorf("value: numeric key %v does not recover exactly as %v", f, kind)
		}
		return Value{Kind: kind, I: int64(f)}, 9, nil
	case keyTagString:
		var buf []byte
		for i := 1; i < len(src); i++ {
			b := src[i]
			if b != 0x00 {
				buf = append(buf, b)
				continue
			}
			if i+1 >= len(src) {
				break
			}
			i++
			switch src[i] {
			case 0x00: // terminator
				return Value{Kind: KindString, S: string(buf)}, i + 1, nil
			case 0xFF: // escaped 0x00
				buf = append(buf, 0x00)
			default:
				return Null(), 0, fmt.Errorf("value: corrupt string key escape")
			}
		}
		return Null(), 0, fmt.Errorf("value: unterminated string key")
	default:
		return Null(), 0, fmt.Errorf("value: unknown key tag %d", src[0])
	}
}

// SkipKeyValue returns the number of key bytes one encoded key value
// occupies, without decoding it.
func SkipKeyValue(src []byte) (int, error) {
	if len(src) == 0 {
		return 0, fmt.Errorf("value: empty key")
	}
	switch src[0] {
	case keyTagNull:
		return 1, nil
	case keyTagNumber:
		if len(src) < 9 {
			return 0, fmt.Errorf("value: truncated numeric key")
		}
		// The suffix condition depends only on the word, so the encoding
		// stays self-describing: no flag byte, no kind needed to skip it.
		if keyNeedsIntSuffix(sortKeyToFloat(binary.BigEndian.Uint64(src[1:9]))) {
			if len(src) < 17 {
				return 0, fmt.Errorf("value: truncated numeric key suffix")
			}
			return 17, nil
		}
		return 9, nil
	case keyTagString:
		for i := 1; i+1 < len(src); i++ {
			if src[i] == 0x00 {
				if src[i+1] == 0x00 {
					return i + 2, nil
				}
				i++ // escaped byte
			}
		}
		return 0, fmt.Errorf("value: unterminated string key")
	default:
		return 0, fmt.Errorf("value: unknown key tag %d", src[0])
	}
}

// KeyValueRecoverable reports whether v, stored in a key column declared as
// kind k, round-trips exactly through the order-preserving key encoding when
// decoded back with DecodeKeyValue. The catalog checks this on every insert
// into a clustered key column; one false verdict disables key-byte recovery
// for the table (the payload remains the source of truth).
func KeyValueRecoverable(v Value, k Kind) bool {
	if v.Kind == KindNull {
		return true
	}
	if v.Kind != k {
		return false
	}
	switch v.Kind {
	case KindString:
		return true
	case KindFloat:
		// -0.0 normalizes to +0.0 inside NumericSortKey.
		return !(v.F == 0 && math.Signbit(v.F))
	case KindInt, KindDate, KindBool:
		// Exact at any magnitude: within ±2^53 the float64 word is the
		// integer; beyond it the typed suffix carries the exact value.
		return true
	default:
		return false
	}
}
