package value

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary encoding of values and tuples.
//
// Two encodings are provided:
//
//   - EncodeTuple/DecodeTuple: a compact, self-describing row format used by
//     heap pages and B+-tree leaf payloads. It is not order-preserving.
//   - EncodeKey/CompareEncodedKeys: an order-preserving composite-key format
//     used by B+-tree keys, so that byte-wise comparison of encoded keys
//     agrees with Compare on the original values column by column.

// EncodeTuple appends the compact encoding of row to dst and returns the
// extended slice.
func EncodeTuple(dst []byte, row []Value) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(row)))
	for _, v := range row {
		dst = append(dst, byte(v.Kind))
		switch v.Kind {
		case KindNull:
		case KindInt, KindDate, KindBool:
			dst = binary.AppendVarint(dst, v.I)
		case KindFloat:
			dst = binary.AppendUvarint(dst, math.Float64bits(v.F))
		case KindString:
			dst = binary.AppendUvarint(dst, uint64(len(v.S)))
			dst = append(dst, v.S...)
		}
	}
	return dst
}

// DecodeTuple decodes a tuple previously produced by EncodeTuple. It returns
// the decoded row and the number of bytes consumed.
func DecodeTuple(src []byte) ([]Value, int, error) {
	return DecodeTupleInto(nil, src)
}

// DecodeTupleInto is DecodeTuple decoding into buf when its capacity allows,
// avoiding the per-row allocation on scan hot paths. The returned row aliases
// buf in that case, so callers must copy values they retain past the next
// call.
func DecodeTupleInto(buf []Value, src []byte) ([]Value, int, error) {
	n, sz := binary.Uvarint(src)
	if sz <= 0 {
		return nil, 0, fmt.Errorf("value: corrupt tuple header")
	}
	// Every field occupies at least one byte, so a count exceeding the
	// remaining bytes is corruption — reject it before sizing the row, or a
	// corrupt header could demand an arbitrarily large allocation.
	if n > uint64(len(src)-sz) {
		return nil, 0, fmt.Errorf("value: corrupt tuple header: %d fields in %d bytes", n, len(src)-sz)
	}
	off := sz
	var row []Value
	if uint64(cap(buf)) >= n {
		row = buf[:n]
	} else {
		row = make([]Value, n)
	}
	for i := range row {
		if off >= len(src) {
			return nil, 0, fmt.Errorf("value: truncated tuple at field %d", i)
		}
		kind := Kind(src[off])
		off++
		switch kind {
		case KindNull:
			row[i] = Null()
		case KindInt, KindDate, KindBool:
			iv, sz := binary.Varint(src[off:])
			if sz <= 0 {
				return nil, 0, fmt.Errorf("value: corrupt int field %d", i)
			}
			off += sz
			row[i] = Value{Kind: kind, I: iv}
		case KindFloat:
			bits, sz := binary.Uvarint(src[off:])
			if sz <= 0 {
				return nil, 0, fmt.Errorf("value: corrupt float field %d", i)
			}
			off += sz
			row[i] = NewFloat(math.Float64frombits(bits))
		case KindString:
			length, sz := binary.Uvarint(src[off:])
			if sz <= 0 {
				return nil, 0, fmt.Errorf("value: corrupt string field %d", i)
			}
			off += sz
			// Compare in uint64: a corrupt length near 2^64 overflows the
			// off+int(length) form into a negative bound and a slice panic.
			if uint64(len(src)-off) < length {
				return nil, 0, fmt.Errorf("value: truncated string field %d", i)
			}
			row[i] = NewString(string(src[off : off+int(length)]))
			off += int(length)
		default:
			return nil, 0, fmt.Errorf("value: unknown kind %d in field %d", kind, i)
		}
	}
	return row, off, nil
}

// Key-encoding tags; chosen so that byte comparison orders NULL first,
// numerics next and strings last, mirroring Compare.
const (
	keyTagNull   byte = 0x01
	keyTagNumber byte = 0x02
	keyTagString byte = 0x03
)

// EncodeKey appends an order-preserving encoding of the composite key to dst.
// For any two keys a and b of the same arity,
// bytes.Compare(EncodeKey(nil,a), EncodeKey(nil,b)) has the same sign as the
// column-wise Compare of a and b.
func EncodeKey(dst []byte, key []Value) []byte {
	for _, v := range key {
		dst = encodeKeyValue(dst, v)
	}
	return dst
}

// AppendKeyValue appends the order-preserving encoding of a single value — one
// column's contribution to EncodeKey — so callers composing keys column by
// column (hash joins, aggregation) avoid building a temporary key slice.
func AppendKeyValue(dst []byte, v Value) []byte { return encodeKeyValue(dst, v) }

func encodeKeyValue(dst []byte, v Value) []byte {
	switch v.Kind {
	case KindNull:
		return append(dst, keyTagNull)
	case KindString:
		dst = append(dst, keyTagString)
		// Escape 0x00 as 0x00 0xFF and terminate with 0x00 0x00 so that
		// prefixes order before longer strings.
		for i := 0; i < len(v.S); i++ {
			b := v.S[i]
			if b == 0x00 {
				dst = append(dst, 0x00, 0xFF)
			} else {
				dst = append(dst, b)
			}
		}
		return append(dst, 0x00, 0x00)
	default:
		dst = append(dst, keyTagNumber)
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], NumericSortKey(v))
		return append(dst, buf[:]...)
	}
}

// NumericSortKey returns the order-preserving 64-bit key a numeric value
// (INT, FLOAT, DATE, BOOL) contributes to EncodeKey: the sortable form of its
// float64 value, with the sign bit flipped for non-negatives and the whole
// word complemented for negatives. Two numeric values have equal sort keys
// exactly when they encode identically, which lets hash operators group by
// this word instead of the full encoded key. Negative zero normalizes to
// +0.0 first: Compare orders the two equal, so they must share a key word.
func NumericSortKey(v Value) uint64 {
	f := v.Float()
	if f == 0 {
		f = 0
	}
	bits := math.Float64bits(f)
	if bits>>63 == 0 {
		return bits | 1<<63
	}
	return ^bits
}

// RowSize returns the number of bytes EncodeTuple would use for row, useful
// for page space accounting without allocating.
func RowSize(row []Value) int {
	size := uvarintLen(uint64(len(row)))
	for _, v := range row {
		size++ // kind byte
		switch v.Kind {
		case KindNull:
		case KindInt, KindDate, KindBool:
			size += varintLen(v.I)
		case KindFloat:
			size += uvarintLen(math.Float64bits(v.F))
		case KindString:
			size += uvarintLen(uint64(len(v.S))) + len(v.S)
		}
	}
	return size
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

func varintLen(x int64) int {
	ux := uint64(x) << 1
	if x < 0 {
		ux = ^ux
	}
	return uvarintLen(ux)
}

// CloneRow returns a copy of row; values themselves are immutable so a
// shallow copy of the slice is sufficient.
func CloneRow(row []Value) []Value {
	out := make([]Value, len(row))
	copy(out, row)
	return out
}
