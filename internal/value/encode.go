package value

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// Binary encoding of values and tuples.
//
// Two encodings are provided:
//
//   - EncodeTuple/DecodeTuple: a compact, self-describing row format used by
//     heap pages and B+-tree leaf payloads. It is not order-preserving.
//   - EncodeKey/CompareEncodedKeys: an order-preserving composite-key format
//     used by B+-tree keys, so that byte-wise comparison of encoded keys
//     agrees with Compare on the original values column by column.

// EncodeTuple appends the compact encoding of row to dst and returns the
// extended slice.
func EncodeTuple(dst []byte, row []Value) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(row)))
	for _, v := range row {
		dst = append(dst, byte(v.Kind))
		switch v.Kind {
		case KindNull:
		case KindInt, KindDate, KindBool:
			dst = binary.AppendVarint(dst, v.I)
		case KindFloat:
			dst = binary.AppendUvarint(dst, floatTupleBits(v.F))
		case KindString:
			dst = binary.AppendUvarint(dst, uint64(len(v.S)))
			dst = append(dst, v.S...)
		}
	}
	return dst
}

// DecodeTuple decodes a tuple previously produced by EncodeTuple. It returns
// the decoded row and the number of bytes consumed.
func DecodeTuple(src []byte) ([]Value, int, error) {
	return DecodeTupleInto(nil, src)
}

// DecodeTupleInto is DecodeTuple decoding into buf when its capacity allows,
// avoiding the per-row allocation on scan hot paths. The returned row aliases
// buf in that case, so callers must copy values they retain past the next
// call.
func DecodeTupleInto(buf []Value, src []byte) ([]Value, int, error) {
	n, sz := binary.Uvarint(src)
	if sz <= 0 {
		return nil, 0, fmt.Errorf("value: corrupt tuple header")
	}
	// Every field occupies at least one byte, so a count exceeding the
	// remaining bytes is corruption — reject it before sizing the row, or a
	// corrupt header could demand an arbitrarily large allocation.
	if n > uint64(len(src)-sz) {
		return nil, 0, fmt.Errorf("value: corrupt tuple header: %d fields in %d bytes", n, len(src)-sz)
	}
	off := sz
	var row []Value
	if uint64(cap(buf)) >= n {
		row = buf[:n]
	} else {
		row = make([]Value, n)
	}
	for i := range row {
		if off >= len(src) {
			return nil, 0, fmt.Errorf("value: truncated tuple at field %d", i)
		}
		kind := Kind(src[off])
		off++
		switch kind {
		case KindNull:
			row[i] = Null()
		case KindInt, KindDate, KindBool:
			iv, sz := binary.Varint(src[off:])
			if sz <= 0 {
				return nil, 0, fmt.Errorf("value: corrupt int field %d", i)
			}
			off += sz
			row[i] = Value{Kind: kind, I: iv}
		case KindFloat:
			fb, sz := binary.Uvarint(src[off:])
			if sz <= 0 {
				return nil, 0, fmt.Errorf("value: corrupt float field %d", i)
			}
			off += sz
			row[i] = NewFloat(floatFromTupleBits(fb))
		case KindString:
			body, n, ok := stringSpanBody(src[off:])
			if !ok {
				return nil, 0, fmt.Errorf("value: truncated string field %d", i)
			}
			row[i] = NewString(string(body))
			off += n
		default:
			return nil, 0, fmt.Errorf("value: unknown kind %d in field %d", kind, i)
		}
	}
	return row, off, nil
}

// Key-encoding tags; chosen so that byte comparison orders NULL first,
// numerics next and strings last, mirroring Compare.
const (
	keyTagNull   byte = 0x01
	keyTagNumber byte = 0x02
	keyTagString byte = 0x03
)

// EncodeKey appends an order-preserving encoding of the composite key to dst.
// For any two keys a and b of the same arity,
// bytes.Compare(EncodeKey(nil,a), EncodeKey(nil,b)) has the same sign as the
// column-wise Compare of a and b.
func EncodeKey(dst []byte, key []Value) []byte {
	for _, v := range key {
		dst = encodeKeyValue(dst, v)
	}
	return dst
}

// AppendKeyValue appends the order-preserving encoding of a single value — one
// column's contribution to EncodeKey — so callers composing keys column by
// column (hash joins, aggregation) avoid building a temporary key slice.
func AppendKeyValue(dst []byte, v Value) []byte { return encodeKeyValue(dst, v) }

func encodeKeyValue(dst []byte, v Value) []byte {
	switch v.Kind {
	case KindNull:
		return append(dst, keyTagNull)
	case KindString:
		dst = append(dst, keyTagString)
		// Escape 0x00 as 0x00 0xFF and terminate with 0x00 0x00 so that
		// prefixes order before longer strings.
		for i := 0; i < len(v.S); i++ {
			b := v.S[i]
			if b == 0x00 {
				dst = append(dst, 0x00, 0xFF)
			} else {
				dst = append(dst, b)
			}
		}
		return append(dst, 0x00, 0x00)
	default:
		dst = append(dst, keyTagNumber)
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], NumericSortKey(v))
		dst = append(dst, buf[:]...)
		// Typed integer suffix: once |f| reaches 2^53 the float64 word stops
		// distinguishing adjacent integers, so an 8-byte order-preserving
		// int64 follows the word. The word still dominates the byte order
		// (it comes first and is fixed width); the suffix only breaks ties
		// among values sharing a word, which keeps int-int comparison exact
		// at any magnitude. Floats carry their saturated integer value so a
		// float and the integer it represents exactly still encode
		// identically. The suffix condition depends only on the word, so
		// decoders know whether one follows without a flag byte.
		f := v.Float()
		if keyNeedsIntSuffix(f) {
			i := v.I
			if v.Kind == KindFloat {
				i = saturatingInt64(f)
			}
			binary.BigEndian.PutUint64(buf[:], uint64(i)^(1<<63))
			dst = append(dst, buf[:]...)
		}
		return dst
	}
}

// keyNeedsIntSuffix reports whether a numeric key value whose float64 form is
// f carries the 8-byte integer suffix. The threshold is inclusive: at exactly
// ±2^53 the word is still exact, but 2^53+1 rounds onto the same word, so the
// suffix must already be present for the tie to break. NaN never takes a
// suffix (every comparison below is false).
func keyNeedsIntSuffix(f float64) bool {
	return f >= 1<<53 || f <= -(1<<53)
}

// saturatingInt64 converts f to int64, clamping values outside the
// representable range (±Inf included) to the nearest bound.
func saturatingInt64(f float64) int64 {
	// The constant converts to float64 2^63 exactly, so f >= it catches every
	// float at or beyond the first unrepresentable integer.
	if f >= math.MaxInt64 {
		return math.MaxInt64
	}
	if f <= math.MinInt64 {
		return math.MinInt64
	}
	return int64(f)
}

// NumericSortKey returns the order-preserving 64-bit key a numeric value
// (INT, FLOAT, DATE, BOOL) contributes to EncodeKey: the sortable form of its
// float64 value, with the sign bit flipped for non-negatives and the whole
// word complemented for negatives. Two numeric values have equal sort keys
// exactly when they encode identically, which lets hash operators group by
// this word instead of the full encoded key. Negative zero normalizes to
// +0.0 first: Compare orders the two equal, so they must share a key word.
func NumericSortKey(v Value) uint64 {
	f := v.Float()
	if f == 0 {
		f = 0
	}
	bits := math.Float64bits(f)
	if bits>>63 == 0 {
		return bits | 1<<63
	}
	return ^bits
}

// RowSize returns the number of bytes EncodeTuple would use for row, useful
// for page space accounting without allocating.
func RowSize(row []Value) int {
	size := uvarintLen(uint64(len(row)))
	for _, v := range row {
		size++ // kind byte
		switch v.Kind {
		case KindNull:
		case KindInt, KindDate, KindBool:
			size += varintLen(v.I)
		case KindFloat:
			size += uvarintLen(floatTupleBits(v.F))
		case KindString:
			size += uvarintLen(uint64(len(v.S))) + len(v.S)
		}
	}
	return size
}

// floatTupleBits is the varint payload of a FLOAT tuple field: the float64
// bit pattern byte-reversed, so the mantissa's trailing zero bytes — present
// in nearly every real-world double (prices, quantities, rates) — land in the
// varint's high positions and drop out. 25.0 encodes in 3 bytes instead of
// 10, and skipping or decoding a float field runs a 3-iteration varint loop
// instead of 10. The reversal is its own inverse and bijective, so arbitrary
// bit patterns (NaN payloads included) still round-trip exactly.
func floatTupleBits(f float64) uint64 {
	return bits.ReverseBytes64(math.Float64bits(f))
}

// floatFromTupleBits inverts floatTupleBits.
func floatFromTupleBits(u uint64) float64 {
	return math.Float64frombits(bits.ReverseBytes64(u))
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

func varintLen(x int64) int {
	ux := uint64(x) << 1
	if x < 0 {
		ux = ^ux
	}
	return uvarintLen(ux)
}

// CloneRow returns a copy of row; values themselves are immutable so a
// shallow copy of the slice is sufficient.
func CloneRow(row []Value) []Value {
	out := make([]Value, len(row))
	copy(out, row)
	return out
}
