package value

// StringArena batches the per-value string allocations of a decode pass into
// one immutable allocation per batch. Decoders stage raw string bytes into a
// recycled staging buffer and hold a packed placeholder Value; after the last
// row of the batch, Seal performs the batch's single string allocation and
// Resolve rewrites each placeholder into a substring of it. The produced
// Values are ordinary deep strings — retaining consumers (aggregates, sorts,
// join builds) keep working, and only the staging buffer is ever reused.
//
// Placeholders must never escape the decoding operator: they are KindString
// Values whose S is empty and whose I packs (start, length) into the sealed
// buffer. The owner resolves every placeholder before publishing a batch.
type StringArena struct {
	buf    []byte
	sealed string
}

// Reset discards the previous batch's staging contents, keeping capacity. The
// previously sealed string is untouched — values resolved from it remain
// valid forever.
func (a *StringArena) Reset() {
	a.buf = a.buf[:0]
	a.sealed = ""
}

// Len returns the number of staged bytes in the current batch.
func (a *StringArena) Len() int { return len(a.buf) }

// Stage copies b into the staging buffer and returns the placeholder Value to
// store until Seal. The packed form bounds a batch's staged bytes at 2^32,
// far above any batch the executor produces (1024 rows of page-bounded
// tuples).
func (a *StringArena) Stage(b []byte) Value {
	start := len(a.buf)
	a.buf = append(a.buf, b...)
	return Value{Kind: KindString, I: int64(start)<<32 | int64(len(b))}
}

// StagePacked copies b into the staging buffer and returns the bare packed
// (start, length) word — the placeholder form for callers that keep their own
// span lists instead of staging placeholder Values (an 8-byte append with no
// write barrier, where a Value is five words). Resolve the word against
// Sealed() after Seal.
func (a *StringArena) StagePacked(b []byte) uint64 {
	start := len(a.buf)
	a.buf = append(a.buf, b...)
	return uint64(start)<<32 | uint64(len(b))
}

// Seal freezes the staged bytes into one immutable string — the batch's
// single string allocation.
func (a *StringArena) Seal() {
	a.sealed = string(a.buf)
}

// Sealed returns the sealed batch string; packed spans substring-slice it.
func (a *StringArena) Sealed() string { return a.sealed }

// Resolve converts a placeholder produced by Stage into its final Value, a
// substring of the sealed batch string. A zero placeholder (I == 0) resolves
// to the empty string, so real empty-string Values that reach a resolve pass
// are a harmless no-op to rewrite.
func (a *StringArena) Resolve(p Value) Value {
	start := int(p.I >> 32)
	n := int(p.I & 0xFFFFFFFF)
	return Value{Kind: KindString, S: a.sealed[start : start+n]}
}

// StringFieldBody returns the content bytes of a raw encoded string field
// span (kind byte, uvarint length, contents — the FieldSpan form), or ok
// false when sp is not a well-formed string field. The returned slice aliases
// sp.
func StringFieldBody(sp []byte) ([]byte, bool) {
	if len(sp) < 1 || Kind(sp[0]) != KindString {
		return nil, false
	}
	body, _, ok := stringSpanBody(sp[1:])
	return body, ok
}
