package value

import (
	"bytes"
	"math"
	"reflect"
	"testing"
)

// decodeTestRows covers every kind, empty strings, NULLs, negative and large
// magnitudes, and the varint length boundaries.
func decodeTestRows() [][]Value {
	return [][]Value{
		{},
		{Null()},
		{NewInt(0), NewInt(-1), NewInt(1), NewInt(math.MaxInt64), NewInt(math.MinInt64)},
		{NewFloat(0), NewFloat(-0.0), NewFloat(3.14), NewFloat(math.Inf(1)), NewFloat(math.NaN())},
		{NewString(""), NewString("a"), NewString("hello world"), NewString(string([]byte{0, 0xFF, 0}))},
		{NewDate(9000), NewBool(true), NewBool(false), Null(), NewInt(127), NewInt(128)},
		{NewInt(42), NewFloat(1.5), NewString("x"), NewDate(1), NewBool(true), Null(), NewString("tail")},
	}
}

func TestDecodeProjectedMatchesFull(t *testing.T) {
	for _, row := range decodeTestRows() {
		enc := EncodeTuple(nil, row)
		full, _, err := DecodeTuple(enc)
		if err != nil {
			t.Fatalf("DecodeTuple(%v): %v", row, err)
		}
		// Projecting every ordinal must equal the full decode.
		all := make([]int, len(row))
		for i := range all {
			all[i] = i
		}
		proj, err := DecodeProjectedInto(nil, enc, all)
		if err != nil {
			t.Fatalf("DecodeProjectedInto all of %v: %v", row, err)
		}
		if !rowsEqualNaN(full, proj) {
			t.Fatalf("projected-all %v != full %v", proj, full)
		}
		// Every single-ordinal projection must match that field.
		for i := range row {
			one, err := DecodeProjectedInto(nil, enc, []int{i})
			if err != nil {
				t.Fatalf("project col %d of %v: %v", i, row, err)
			}
			if len(one) != 1 || !valueEqualNaN(one[0], full[i]) {
				t.Fatalf("project col %d of %v = %v, want %v", i, row, one, full[i])
			}
		}
		// Ordinals past the end decode as NULL.
		past, err := DecodeProjectedInto(nil, enc, []int{len(row) + 3})
		if err != nil || len(past) != 1 || !past[0].IsNull() {
			t.Fatalf("past-end projection = %v, %v; want [NULL]", past, err)
		}
	}
}

func TestTupleWalkerSpans(t *testing.T) {
	row := []Value{NewInt(7), NewString("abc"), Null(), NewFloat(2.5), NewDate(100)}
	enc := EncodeTuple(nil, row)
	var w TupleWalker
	if err := w.Reset(enc); err != nil {
		t.Fatal(err)
	}
	if w.NumFields() != len(row) {
		t.Fatalf("NumFields=%d want %d", w.NumFields(), len(row))
	}
	// Concatenated field spans plus the header must reproduce the encoding.
	var rebuilt []byte
	rebuilt = append(rebuilt, enc[:w.Bytes()]...)
	for i := 0; i < w.NumFields(); i++ {
		sp, err := w.FieldSpan()
		if err != nil {
			t.Fatalf("FieldSpan %d: %v", i, err)
		}
		v, err := decodeFieldSpan(sp)
		if err != nil {
			t.Fatalf("decodeFieldSpan %d: %v", i, err)
		}
		if !valueEqualNaN(v, row[i]) {
			t.Fatalf("span %d decoded %v want %v", i, v, row[i])
		}
		rebuilt = append(rebuilt, sp...)
	}
	if !bytes.Equal(rebuilt, enc[:w.Bytes()]) {
		t.Fatal("concatenated spans do not reproduce the tuple encoding")
	}
}

func TestTypedDecoders(t *testing.T) {
	ints := []Value{NewInt(0), NewInt(-5), Null(), NewInt(1 << 40)}
	floats := []Value{NewFloat(1.25), Null(), NewFloat(-3)}
	strs := []Value{NewString("hi"), NewString(""), Null(), NewString("zz")}
	spansOf := func(vals []Value) [][]byte {
		enc := EncodeTuple(nil, vals)
		var w TupleWalker
		if err := w.Reset(enc); err != nil {
			t.Fatal(err)
		}
		var spans [][]byte
		for i := 0; i < w.NumFields(); i++ {
			sp, err := w.FieldSpan()
			if err != nil {
				t.Fatal(err)
			}
			spans = append(spans, sp)
		}
		return spans
	}

	got, err := DecodeInt64s(nil, KindInt, spansOf(ints))
	if err != nil || !reflect.DeepEqual(got, ints) {
		t.Fatalf("DecodeInt64s = %v, %v; want %v", got, err, ints)
	}
	gotF, err := DecodeFloat64s(nil, spansOf(floats))
	if err != nil || !reflect.DeepEqual(gotF, floats) {
		t.Fatalf("DecodeFloat64s = %v, %v; want %v", gotF, err, floats)
	}
	gotS, err := DecodeStrings(nil, spansOf(strs))
	if err != nil || !reflect.DeepEqual(gotS, strs) {
		t.Fatalf("DecodeStrings = %v, %v; want %v", gotS, err, strs)
	}
	// Generic decoder over a mixed row.
	mixed := []Value{NewInt(1), NewString("s"), NewFloat(2), Null(), NewBool(true)}
	gotM, err := DecodeFieldSpans(nil, spansOf(mixed))
	if err != nil || !reflect.DeepEqual(gotM, mixed) {
		t.Fatalf("DecodeFieldSpans = %v, %v; want %v", gotM, err, mixed)
	}
}

func TestDecodeKeyValueRoundTrip(t *testing.T) {
	cases := []struct {
		v Value
		k Kind
	}{
		{NewInt(0), KindInt},
		{NewInt(123456), KindInt},
		{NewInt(-98765), KindInt},
		{NewInt(1 << 53), KindInt},
		{NewInt(-(1 << 53)), KindInt},
		{NewInt(1<<53 + 1), KindInt},
		{NewInt(-(1<<53 + 1)), KindInt},
		{NewInt(1<<53 - 1), KindInt},
		{NewInt(math.MaxInt64), KindInt},
		{NewInt(math.MinInt64), KindInt},
		{NewInt(math.MaxInt64 - 1), KindInt},
		{NewInt(math.MinInt64 + 1), KindInt},
		{NewFloat(1 << 53), KindFloat},
		{NewFloat(-(1 << 53)), KindFloat},
		{NewFloat(1e300), KindFloat},
		{NewFloat(math.Inf(1)), KindFloat},
		{NewFloat(math.Inf(-1)), KindFloat},
		{NewDate(9125), KindDate},
		{NewBool(true), KindBool},
		{NewBool(false), KindBool},
		{NewFloat(3.25), KindFloat},
		{NewFloat(-1e300), KindFloat},
		{NewFloat(0), KindFloat},
		{NewString(""), KindString},
		{NewString("abc"), KindString},
		{NewString(string([]byte{0, 1, 0, 0xFF})), KindString},
		{Null(), KindInt},
		{Null(), KindString},
	}
	for _, c := range cases {
		if !KeyValueRecoverable(c.v, c.k) {
			t.Fatalf("KeyValueRecoverable(%v, %v) = false", c.v, c.k)
		}
		enc := AppendKeyValue(nil, c.v)
		got, n, err := DecodeKeyValue(enc, c.k)
		if err != nil {
			t.Fatalf("DecodeKeyValue(%v as %v): %v", c.v, c.k, err)
		}
		if n != len(enc) {
			t.Fatalf("DecodeKeyValue(%v) consumed %d of %d bytes", c.v, n, len(enc))
		}
		if got != c.v {
			t.Fatalf("DecodeKeyValue(%v as %v) = %v", c.v, c.k, got)
		}
		skip, err := SkipKeyValue(enc)
		if err != nil || skip != len(enc) {
			t.Fatalf("SkipKeyValue(%v) = %d, %v; want %d", c.v, skip, err, len(enc))
		}
	}
	// Multi-column key: decode each component in sequence.
	key := []Value{NewInt(42), NewString("ab"), NewDate(100)}
	kinds := []Kind{KindInt, KindString, KindDate}
	enc := EncodeKey(nil, key)
	off := 0
	for i, k := range kinds {
		v, n, err := DecodeKeyValue(enc[off:], k)
		if err != nil {
			t.Fatalf("component %d: %v", i, err)
		}
		if v != key[i] {
			t.Fatalf("component %d = %v want %v", i, v, key[i])
		}
		off += n
	}
	if off != len(enc) {
		t.Fatalf("consumed %d of %d key bytes", off, len(enc))
	}
}

func TestKeyValueUnrecoverable(t *testing.T) {
	cases := []struct {
		v Value
		k Kind
	}{
		// Integers beyond ±2^53 are recoverable since the typed suffix; only
		// kind mismatches and negative zero remain unrecoverable.
		{NewFloat(math.Copysign(0, -1)), KindFloat}, // -0.0 normalizes away
		{NewFloat(1.5), KindInt},                    // kind mismatch
		{NewString("x"), KindInt},                   // kind mismatch
		{NewInt(1), KindString},                     // kind mismatch
	}
	for _, c := range cases {
		if KeyValueRecoverable(c.v, c.k) {
			t.Fatalf("KeyValueRecoverable(%v, %v) = true, want false", c.v, c.k)
		}
	}
}

// keyRoundTripInt encodes v as an integer key column and checks the byte
// width, skip width, and exact recovery.
func keyRoundTripInt(t *testing.T, v int64) []byte {
	t.Helper()
	enc := AppendKeyValue(nil, NewInt(v))
	wantLen := 9
	if v >= 1<<53 || v <= -(1<<53) {
		wantLen = 17 // word + typed integer suffix
	}
	if len(enc) != wantLen {
		t.Fatalf("int key %d encodes to %d bytes, want %d", v, len(enc), wantLen)
	}
	got, n, err := DecodeKeyValue(enc, KindInt)
	if err != nil || n != len(enc) || got.I != v || got.Kind != KindInt {
		t.Fatalf("int key %d round-trips to %v (n=%d, err=%v)", v, got, n, err)
	}
	if skip, err := SkipKeyValue(enc); err != nil || skip != len(enc) {
		t.Fatalf("SkipKeyValue(int %d) = %d, %v; want %d", v, skip, err, len(enc))
	}
	return enc
}

// TestIntKeyOrderBoundaries pins the typed integer key encoding at the exact
// suffix thresholds (±2^53, where adjacent integers start sharing a float64
// word) and the int64 extremes (±2^63): every value round-trips exactly and
// bytes.Compare of the encodings agrees with exact integer comparison —
// including the adjacent pairs that collapsed onto one word before the
// suffix existed.
func TestIntKeyOrderBoundaries(t *testing.T) {
	vals := []int64{
		math.MinInt64, math.MinInt64 + 1,
		-(1 << 53) - 2, -(1 << 53) - 1, -(1 << 53), -(1 << 53) + 1,
		-2, -1, 0, 1, 2,
		1<<53 - 1, 1 << 53, 1<<53 + 1, 1<<53 + 2, 1<<53 + 3,
		math.MaxInt64 - 1, math.MaxInt64,
	}
	encs := make([][]byte, len(vals))
	for i, v := range vals {
		encs[i] = keyRoundTripInt(t, v)
	}
	for i := range vals {
		for j := range vals {
			want := 0
			if vals[i] < vals[j] {
				want = -1
			} else if vals[i] > vals[j] {
				want = 1
			}
			if got := bytes.Compare(encs[i], encs[j]); got != want {
				t.Fatalf("bytes.Compare(key(%d), key(%d)) = %d, want %d", vals[i], vals[j], got, want)
			}
		}
	}
}

// FuzzIntKeyOrder checks the typed integer key encoding across random int64
// pairs: both values round-trip exactly through DecodeKeyValue, SkipKeyValue
// agrees with the encoded width, and bytes.Compare of the encodings has the
// sign of exact integer comparison. Mixed int/float pairs additionally pin
// that the encodings never misorder a Compare-unequal pair (Compare-equal
// cross-kind pairs beyond 2^53 may encode unequal: the suffix keeps the exact
// integer, which float comparison discards).
func FuzzIntKeyOrder(f *testing.F) {
	f.Add(int64(0), int64(1))
	f.Add(int64(1<<53), int64(1<<53+1))
	f.Add(int64(math.MaxInt64), int64(math.MinInt64))
	f.Add(int64(-(1<<53))-1, int64(-(1 << 53)))
	f.Fuzz(func(t *testing.T, a, b int64) {
		ea := keyRoundTripInt(t, a)
		eb := keyRoundTripInt(t, b)
		want := 0
		if a < b {
			want = -1
		} else if a > b {
			want = 1
		}
		if got := bytes.Compare(ea, eb); got != want {
			t.Fatalf("bytes.Compare(key(%d), key(%d)) = %d, want %d", a, b, got, want)
		}
		// Mixed kinds: an int key against the float nearest b must never
		// order against the sign of value.Compare when Compare is decisive.
		fb := NewFloat(float64(b))
		efb := AppendKeyValue(nil, fb)
		if cmp := Compare(NewInt(a), fb); cmp != 0 {
			got := bytes.Compare(ea, efb)
			if (got < 0) != (cmp < 0) || (got > 0) != (cmp > 0) {
				t.Fatalf("bytes.Compare(key(int %d), key(float %g)) = %d, Compare = %d", a, float64(b), got, cmp)
			}
		}
		gotF, n, err := DecodeKeyValue(efb, KindFloat)
		if err != nil || n != len(efb) || math.Float64bits(gotF.F) != math.Float64bits(fb.F) {
			t.Fatalf("float key %g round-trips to %v (n=%d, err=%v)", fb.F, gotF, n, err)
		}
	})
}

func TestDecodeCorruptNeverSucceedsSilently(t *testing.T) {
	row := []Value{NewInt(7), NewString("abcdef"), NewFloat(2.5)}
	enc := EncodeTuple(nil, row)
	cols := []int{0, 1, 2}
	// Every strict prefix must fail cleanly (or, for complete-field prefixes,
	// return fewer values) — never panic.
	for cut := 0; cut < len(enc); cut++ {
		_, _ = DecodeProjectedInto(nil, enc[:cut], cols)
	}
	// Flipping the header to claim absurd field counts must fail.
	bad := append([]byte(nil), enc...)
	bad[0] = 0xFF
	bad = append([]byte{0xFF, 0xFF, 0xFF, 0x7F}, enc[1:]...)
	if _, err := DecodeProjectedInto(nil, bad, cols); err == nil {
		t.Fatal("absurd field count decoded without error")
	}
	// Unknown kind byte.
	bad2 := append([]byte(nil), enc...)
	bad2[1] = 0x7E
	if _, err := DecodeProjectedInto(nil, bad2, cols); err == nil {
		t.Fatal("unknown kind decoded without error")
	}
	// The full decoder must reject the same absurd field count before sizing
	// the row — a corrupt header must never drive a giant allocation.
	if _, _, err := DecodeTuple(bad); err == nil {
		t.Fatal("full decode accepted absurd field count")
	}
	// A string length near 2^64 overflows a naive off+int(length) bounds
	// check into a negative slice index; both decoders must error, not panic.
	huge := []byte{1, byte(KindString), 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01, 'x'}
	if _, _, err := DecodeTuple(huge); err == nil {
		t.Fatal("full decode accepted overflowing string length")
	}
	if _, err := DecodeProjectedInto(nil, huge, []int{0}); err == nil {
		t.Fatal("projected decode accepted overflowing string length")
	}
}

// rowsEqualNaN compares rows treating NaN floats as equal to themselves.
func rowsEqualNaN(a, b []Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !valueEqualNaN(a[i], b[i]) {
			return false
		}
	}
	return true
}

func valueEqualNaN(a, b Value) bool {
	if a.Kind == KindFloat && b.Kind == KindFloat {
		return math.Float64bits(a.F) == math.Float64bits(b.F)
	}
	return a == b
}

// FuzzTupleRoundTrip encodes a tuple derived from fuzz input and checks that
// full decode, projected decode of every column, and the walker's span
// iteration all agree bit-for-bit.
func FuzzTupleRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0})
	f.Add([]byte{255, 0, 128, 7, 9, 200, 13})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Derive a row from the fuzz bytes: each byte picks a kind and seeds
		// the value; string lengths come from the following bytes.
		var row []Value
		for i := 0; i < len(data) && len(row) < 40; i++ {
			b := data[i]
			switch b % 6 {
			case 0:
				row = append(row, Null())
			case 1:
				row = append(row, NewInt(int64(b)*1e9-5e10))
			case 2:
				row = append(row, NewFloat(float64(b)/7.0-13))
			case 3:
				end := i + 1 + int(b%17)
				if end > len(data) {
					end = len(data)
				}
				row = append(row, NewString(string(data[i+1:end])))
				i = end - 1
			case 4:
				row = append(row, NewDate(int64(b)-128))
			case 5:
				row = append(row, NewBool(b&1 == 1))
			}
		}
		enc := EncodeTuple(nil, row)
		full, n, err := DecodeTuple(enc)
		if err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		if n != len(enc) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(enc))
		}
		if !rowsEqualNaN(row, full) {
			t.Fatalf("round trip %v -> %v", row, full)
		}
		all := make([]int, len(row))
		for i := range all {
			all[i] = i
		}
		proj, err := DecodeProjectedInto(nil, enc, all)
		if err != nil {
			t.Fatalf("projected decode failed: %v", err)
		}
		if !rowsEqualNaN(full, proj) {
			t.Fatalf("projected %v != full %v", proj, full)
		}
	})
}

// FuzzDecodeProjected feeds arbitrary bytes to the projected decoder and the
// walker: corrupt or truncated input must error, never panic, and whenever the
// full decoder accepts the input the projected decoder must agree with it.
func FuzzDecodeProjected(f *testing.F) {
	f.Add(EncodeTuple(nil, []Value{NewInt(1), NewString("ab"), NewFloat(2)}), uint8(3))
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{0xFF, 0xFF, 0xFF}, uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, ncols uint8) {
		cols := make([]int, ncols%24)
		for i := range cols {
			cols[i] = i
		}
		proj, projErr := DecodeProjectedInto(nil, data, cols)
		full, _, fullErr := DecodeTuple(data)
		if fullErr == nil && projErr == nil {
			for i, ord := range cols {
				want := Null()
				if ord < len(full) {
					want = full[ord]
				}
				if !valueEqualNaN(proj[i], want) {
					t.Fatalf("col %d: projected %v, full %v", ord, proj[i], want)
				}
			}
		}
		// Walker over arbitrary bytes must terminate without panicking.
		var w TupleWalker
		if err := w.Reset(data); err == nil {
			for i := 0; i < w.NumFields(); i++ {
				if _, err := w.FieldSpan(); err != nil {
					break
				}
			}
		}
	})
}

// BenchmarkDecodeTuple compares the three decode strategies over a 16-field
// lineitem-shaped tuple: full row decode, projected decode of 2 ordinals, and
// the walker+typed-decoder path the batch fill uses.
func BenchmarkDecodeTuple(b *testing.B) {
	row := []Value{
		NewInt(123456), NewInt(77), NewInt(12), NewInt(3),
		NewFloat(31), NewFloat(45123.25), NewFloat(0.04), NewFloat(0.02),
		NewString("A"), NewString("F"),
		NewDate(9200), NewDate(9230), NewDate(9237), NewString("TRUCK"),
		NewString("DELIVER IN PERSON"), NewString("carefully packed comment"),
	}
	enc := EncodeTuple(nil, row)
	cols := []int{5, 10} // l_extendedprice, l_shipdate

	b.Run("full", func(b *testing.B) {
		buf := make([]Value, 0, len(row))
		for i := 0; i < b.N; i++ {
			var err error
			buf, _, err = DecodeTupleInto(buf[:0], enc)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("projected", func(b *testing.B) {
		buf := make([]Value, 0, len(cols))
		for i := 0; i < b.N; i++ {
			var err error
			buf, err = DecodeProjectedInto(buf[:0], enc, cols)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("typed", func(b *testing.B) {
		// The batch-fill shape: collect spans with the walker, then decode each
		// projected column through its typed decoder.
		spans := make([][]byte, 2)
		price := make([]Value, 0, 1)
		ship := make([]Value, 0, 1)
		var w TupleWalker
		for i := 0; i < b.N; i++ {
			if err := w.Reset(enc); err != nil {
				b.Fatal(err)
			}
			if err := w.Skip(5); err != nil {
				b.Fatal(err)
			}
			sp, err := w.FieldSpan()
			if err != nil {
				b.Fatal(err)
			}
			spans[0] = sp
			if err := w.Skip(4); err != nil {
				b.Fatal(err)
			}
			if sp, err = w.FieldSpan(); err != nil {
				b.Fatal(err)
			}
			spans[1] = sp
			if price, err = DecodeFloat64s(price[:0], spans[:1]); err != nil {
				b.Fatal(err)
			}
			if ship, err = DecodeInt64s(ship[:0], KindDate, spans[1:]); err != nil {
				b.Fatal(err)
			}
		}
	})
}
