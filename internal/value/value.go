// Package value implements the typed scalar values that flow through the
// storage layer, the execution engine and the index key encoder.
//
// A Value is a small struct (no interface boxing on the hot path) that can
// hold a 64-bit integer, a 64-bit float, a string, a date (days since
// 1970-01-01) or SQL NULL. Values compare with SQL semantics except that
// NULL orders before every non-NULL value (the usual index ordering), and
// they encode to an order-preserving binary form used by B+-tree keys.
package value

import (
	"fmt"
	"math"
	"strconv"
	"time"
)

// Kind identifies the runtime type of a Value.
type Kind uint8

// The supported value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindDate
	KindBool
)

// String returns a readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "STRING"
	case KindDate:
		return "DATE"
	case KindBool:
		return "BOOL"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single SQL scalar. The zero value is SQL NULL.
type Value struct {
	Kind Kind
	I    int64   // KindInt, KindDate (days since epoch), KindBool (0/1)
	F    float64 // KindFloat
	S    string  // KindString
}

// Null returns the SQL NULL value.
func Null() Value { return Value{Kind: KindNull} }

// NewInt returns an integer value.
func NewInt(i int64) Value { return Value{Kind: KindInt, I: i} }

// NewFloat returns a float value.
func NewFloat(f float64) Value { return Value{Kind: KindFloat, F: f} }

// NewString returns a string value.
func NewString(s string) Value { return Value{Kind: KindString, S: s} }

// NewBool returns a boolean value.
func NewBool(b bool) Value {
	if b {
		return Value{Kind: KindBool, I: 1}
	}
	return Value{Kind: KindBool, I: 0}
}

// NewDate returns a date value holding days since the Unix epoch.
func NewDate(days int64) Value { return Value{Kind: KindDate, I: days} }

// DateFromYMD builds a date value from a calendar date.
func DateFromYMD(year, month, day int) Value {
	t := time.Date(year, time.Month(month), day, 0, 0, 0, 0, time.UTC)
	return NewDate(t.Unix() / 86400)
}

// ParseDate parses a YYYY-MM-DD string into a date value.
func ParseDate(s string) (Value, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return Null(), fmt.Errorf("value: parse date %q: %w", s, err)
	}
	return NewDate(t.Unix() / 86400), nil
}

// MustParseDate is ParseDate that panics on malformed input; intended for
// constants in tests and generators.
func MustParseDate(s string) Value {
	v, err := ParseDate(s)
	if err != nil {
		panic(err)
	}
	return v
}

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// Bool returns the truth value of a boolean Value; NULL and zero are false.
func (v Value) Bool() bool {
	switch v.Kind {
	case KindBool, KindInt, KindDate:
		return v.I != 0
	case KindFloat:
		return v.F != 0
	default:
		return false
	}
}

// Int returns the value as int64, converting floats by truncation.
func (v Value) Int() int64 {
	switch v.Kind {
	case KindInt, KindDate, KindBool:
		return v.I
	case KindFloat:
		return int64(v.F)
	default:
		return 0
	}
}

// Float returns the value as float64.
func (v Value) Float() float64 {
	switch v.Kind {
	case KindInt, KindDate, KindBool:
		return float64(v.I)
	case KindFloat:
		return v.F
	default:
		return 0
	}
}

// Time converts a date value to a time.Time at UTC midnight.
func (v Value) Time() time.Time {
	return time.Unix(v.I*86400, 0).UTC()
}

// String renders the value for display.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindDate:
		return v.Time().Format("2006-01-02")
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	default:
		return fmt.Sprintf("Value(kind=%d)", v.Kind)
	}
}

// numericKind reports whether the kind participates in numeric comparison
// and arithmetic.
func numericKind(k Kind) bool {
	return k == KindInt || k == KindFloat || k == KindDate || k == KindBool
}

// Compare orders two values. NULL sorts before every non-NULL value; values
// of numeric kinds (INT, FLOAT, DATE, BOOL) compare numerically with each
// other; strings compare lexicographically. Comparing a string against a
// numeric value orders by kind to keep the ordering total.
func Compare(a, b Value) int {
	if a.Kind == KindNull || b.Kind == KindNull {
		switch {
		case a.Kind == KindNull && b.Kind == KindNull:
			return 0
		case a.Kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	an, bn := numericKind(a.Kind), numericKind(b.Kind)
	switch {
	case an && bn:
		// Avoid float conversion when both sides are integral.
		if a.Kind != KindFloat && b.Kind != KindFloat {
			switch {
			case a.I < b.I:
				return -1
			case a.I > b.I:
				return 1
			default:
				return 0
			}
		}
		af, bf := a.Float(), b.Float()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	case !an && !bn:
		switch {
		case a.S < b.S:
			return -1
		case a.S > b.S:
			return 1
		default:
			return 0
		}
	case an:
		return -1
	default:
		return 1
	}
}

// Equal reports whether two values compare equal.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Hash returns a 64-bit hash of the value, consistent with Equal for values
// of the same kind family (numeric kinds hash by their numeric value).
func (v Value) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	switch v.Kind {
	case KindNull:
		mix(0)
	case KindString:
		mix(1)
		for i := 0; i < len(v.S); i++ {
			mix(v.S[i])
		}
	case KindFloat:
		// Hash floats that hold integral values identically to ints so that
		// hash joins on mixed numeric columns behave like Compare.
		if v.F == math.Trunc(v.F) && !math.IsInf(v.F, 0) {
			return NewInt(int64(v.F)).Hash()
		}
		mix(2)
		bits := math.Float64bits(v.F)
		for i := 0; i < 8; i++ {
			mix(byte(bits >> (8 * i)))
		}
	default: // KindInt, KindDate, KindBool hash by numeric value
		mix(3)
		u := uint64(v.I)
		for i := 0; i < 8; i++ {
			mix(byte(u >> (8 * i)))
		}
	}
	return h
}

// Add returns a+b with SQL NULL propagation and numeric promotion.
func Add(a, b Value) Value { return arith(a, b, '+') }

// Sub returns a-b with SQL NULL propagation and numeric promotion.
func Sub(a, b Value) Value { return arith(a, b, '-') }

// Mul returns a*b with SQL NULL propagation and numeric promotion.
func Mul(a, b Value) Value { return arith(a, b, '*') }

// Div returns a/b with SQL NULL propagation; division by zero yields NULL.
func Div(a, b Value) Value { return arith(a, b, '/') }

func arith(a, b Value, op byte) Value {
	if a.IsNull() || b.IsNull() {
		return Null()
	}
	if a.Kind == KindString || b.Kind == KindString {
		if op == '+' {
			return NewString(a.String() + b.String())
		}
		return Null()
	}
	useFloat := a.Kind == KindFloat || b.Kind == KindFloat || op == '/'
	if useFloat {
		af, bf := a.Float(), b.Float()
		switch op {
		case '+':
			return NewFloat(af + bf)
		case '-':
			return NewFloat(af - bf)
		case '*':
			return NewFloat(af * bf)
		case '/':
			if bf == 0 {
				return Null()
			}
			return NewFloat(af / bf)
		}
	}
	ai, bi := a.Int(), b.Int()
	switch op {
	case '+':
		if a.Kind == KindDate || b.Kind == KindDate {
			return NewDate(ai + bi)
		}
		return NewInt(ai + bi)
	case '-':
		if a.Kind == KindDate && b.Kind == KindDate {
			return NewInt(ai - bi)
		}
		if a.Kind == KindDate {
			return NewDate(ai - bi)
		}
		return NewInt(ai - bi)
	case '*':
		return NewInt(ai * bi)
	}
	return Null()
}
