package value

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull:   "NULL",
		KindInt:    "INT",
		KindFloat:  "FLOAT",
		KindString: "STRING",
		KindDate:   "DATE",
		KindBool:   "BOOL",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(42).String(); got != "Kind(42)" {
		t.Errorf("unknown kind string = %q", got)
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if !Null().IsNull() {
		t.Fatal("Null() not null")
	}
	if v := NewInt(7); v.Int() != 7 || v.Float() != 7 || v.String() != "7" {
		t.Errorf("NewInt accessors wrong: %v", v)
	}
	if v := NewFloat(2.5); v.Float() != 2.5 || v.Int() != 2 {
		t.Errorf("NewFloat accessors wrong: %v", v)
	}
	if v := NewString("abc"); v.S != "abc" || v.String() != "abc" {
		t.Errorf("NewString accessors wrong: %v", v)
	}
	if v := NewBool(true); !v.Bool() || v.Int() != 1 {
		t.Errorf("NewBool(true) wrong: %v", v)
	}
	if v := NewBool(false); v.Bool() {
		t.Errorf("NewBool(false) wrong: %v", v)
	}
	if Null().Bool() {
		t.Error("NULL should not be truthy")
	}
	if NewFloat(1.5).Bool() != true || NewFloat(0).Bool() != false {
		t.Error("float truthiness wrong")
	}
	if Null().Int() != 0 || Null().Float() != 0 {
		t.Error("NULL numeric accessors should be zero")
	}
	if NewString("x").Int() != 0 || NewString("x").Float() != 0 {
		t.Error("string numeric accessors should be zero")
	}
}

func TestDates(t *testing.T) {
	d, err := ParseDate("1995-03-15")
	if err != nil {
		t.Fatalf("ParseDate: %v", err)
	}
	if d.String() != "1995-03-15" {
		t.Errorf("date round trip = %q", d.String())
	}
	if got := DateFromYMD(1995, 3, 15); !Equal(got, d) {
		t.Errorf("DateFromYMD mismatch: %v vs %v", got, d)
	}
	if _, err := ParseDate("not-a-date"); err == nil {
		t.Error("expected error for malformed date")
	}
	epoch := MustParseDate("1970-01-01")
	if epoch.I != 0 {
		t.Errorf("epoch days = %d, want 0", epoch.I)
	}
	next := MustParseDate("1970-01-02")
	if next.I != 1 {
		t.Errorf("epoch+1 days = %d, want 1", next.I)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustParseDate should panic on bad input")
		}
	}()
	MustParseDate("bogus")
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Null(), Null(), 0},
		{Null(), NewInt(1), -1},
		{NewInt(1), Null(), 1},
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewInt(2), NewFloat(2.5), -1},
		{NewFloat(2.5), NewInt(2), 1},
		{NewFloat(2.0), NewInt(2), 0},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{NewString("c"), NewString("b"), 1},
		{NewInt(5), NewString("a"), -1},
		{NewString("a"), NewInt(5), 1},
		{MustParseDate("1995-01-01"), MustParseDate("1996-01-01"), -1},
		{NewBool(false), NewBool(true), -1},
		{NewDate(10), NewInt(10), 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if !Equal(NewInt(4), NewFloat(4)) {
		t.Error("Equal should treat 4 and 4.0 as equal")
	}
}

func TestHashConsistentWithEqual(t *testing.T) {
	pairs := [][2]Value{
		{NewInt(42), NewInt(42)},
		{NewInt(42), NewFloat(42)},
		{NewString("abc"), NewString("abc")},
		{MustParseDate("1995-06-01"), MustParseDate("1995-06-01")},
		{NewBool(true), NewInt(1)},
	}
	for _, p := range pairs {
		if !Equal(p[0], p[1]) {
			t.Fatalf("precondition: %v != %v", p[0], p[1])
		}
		if p[0].Hash() != p[1].Hash() {
			t.Errorf("equal values hash differently: %v vs %v", p[0], p[1])
		}
	}
	if NewInt(1).Hash() == NewInt(2).Hash() {
		t.Error("suspicious collision for 1 and 2")
	}
	if NewString("a").Hash() == NewString("b").Hash() {
		t.Error("suspicious collision for strings")
	}
	// NaN-ish and infinite floats must not panic.
	_ = NewFloat(math.Inf(1)).Hash()
	_ = NewFloat(math.NaN()).Hash()
}

func TestArithmetic(t *testing.T) {
	if got := Add(NewInt(2), NewInt(3)); got.Int() != 5 {
		t.Errorf("2+3 = %v", got)
	}
	if got := Sub(NewInt(2), NewInt(3)); got.Int() != -1 {
		t.Errorf("2-3 = %v", got)
	}
	if got := Mul(NewInt(4), NewFloat(2.5)); got.Float() != 10 {
		t.Errorf("4*2.5 = %v", got)
	}
	if got := Div(NewInt(7), NewInt(2)); got.Float() != 3.5 {
		t.Errorf("7/2 = %v", got)
	}
	if got := Div(NewInt(7), NewInt(0)); !got.IsNull() {
		t.Errorf("7/0 = %v, want NULL", got)
	}
	if got := Add(Null(), NewInt(1)); !got.IsNull() {
		t.Errorf("NULL+1 = %v, want NULL", got)
	}
	if got := Add(NewString("a"), NewString("b")); got.S != "ab" {
		t.Errorf("'a'+'b' = %v", got)
	}
	if got := Mul(NewString("a"), NewInt(2)); !got.IsNull() {
		t.Errorf("'a'*2 = %v, want NULL", got)
	}
	d := MustParseDate("1995-01-01")
	if got := Add(d, NewInt(31)); got.String() != "1995-02-01" {
		t.Errorf("date+31 = %v", got)
	}
	if got := Sub(MustParseDate("1995-02-01"), d); got.Int() != 31 {
		t.Errorf("date-date = %v", got)
	}
	if got := Sub(d, NewInt(1)); got.String() != "1994-12-31" {
		t.Errorf("date-1 = %v", got)
	}
}

func TestTupleRoundTrip(t *testing.T) {
	rows := [][]Value{
		{},
		{Null()},
		{NewInt(1), NewString("hello"), NewFloat(3.25), MustParseDate("1998-12-01"), NewBool(true), Null()},
		{NewString(""), NewString(string([]byte{0, 1, 2}))},
		{NewInt(math.MaxInt64), NewInt(math.MinInt64)},
	}
	for _, row := range rows {
		enc := EncodeTuple(nil, row)
		if len(enc) != RowSize(row) {
			t.Errorf("RowSize=%d, len(enc)=%d for %v", RowSize(row), len(enc), row)
		}
		dec, n, err := DecodeTuple(enc)
		if err != nil {
			t.Fatalf("DecodeTuple(%v): %v", row, err)
		}
		if n != len(enc) {
			t.Errorf("DecodeTuple consumed %d of %d bytes", n, len(enc))
		}
		if len(dec) != len(row) {
			t.Fatalf("decoded %d values, want %d", len(dec), len(row))
		}
		for i := range row {
			if Compare(dec[i], row[i]) != 0 {
				t.Errorf("field %d: got %v want %v", i, dec[i], row[i])
			}
		}
	}
}

func TestDecodeTupleErrors(t *testing.T) {
	if _, _, err := DecodeTuple(nil); err == nil {
		t.Error("expected error decoding empty buffer")
	}
	good := EncodeTuple(nil, []Value{NewString("hello world")})
	for cut := 1; cut < len(good); cut++ {
		if _, _, err := DecodeTuple(good[:cut]); err == nil {
			t.Errorf("expected error decoding truncated buffer of %d bytes", cut)
		}
	}
	if _, _, err := DecodeTuple([]byte{1, 99}); err == nil {
		t.Error("expected error for unknown kind")
	}
}

func TestKeyEncodingOrderPreserving(t *testing.T) {
	vals := []Value{
		Null(),
		NewInt(-1000), NewInt(-1), NewInt(0), NewInt(1), NewInt(999),
		NewFloat(-2.5), NewFloat(0.5), NewFloat(1e9),
		MustParseDate("1992-01-01"), MustParseDate("1998-12-31"),
		NewString(""), NewString("a"), NewString("ab"), NewString("b"),
	}
	sorted := make([]Value, len(vals))
	copy(sorted, vals)
	sort.Slice(sorted, func(i, j int) bool { return Compare(sorted[i], sorted[j]) < 0 })
	var keys [][]byte
	for _, v := range sorted {
		keys = append(keys, EncodeKey(nil, []Value{v}))
	}
	for i := 1; i < len(keys); i++ {
		if bytes.Compare(keys[i-1], keys[i]) > 0 {
			t.Errorf("key encoding not order preserving between %v and %v", sorted[i-1], sorted[i])
		}
	}
	// Composite keys: (1,"b") < (2,"a").
	k1 := EncodeKey(nil, []Value{NewInt(1), NewString("b")})
	k2 := EncodeKey(nil, []Value{NewInt(2), NewString("a")})
	if bytes.Compare(k1, k2) >= 0 {
		t.Error("composite key ordering wrong")
	}
	// Strings containing zero bytes keep prefix ordering.
	s1 := EncodeKey(nil, []Value{NewString("a")})
	s2 := EncodeKey(nil, []Value{NewString("a\x00b")})
	if bytes.Compare(s1, s2) >= 0 {
		t.Error("string with NUL byte should sort after its prefix")
	}
}

func TestKeyEncodingPropertyQuick(t *testing.T) {
	f := func(a, b int64) bool {
		ka := EncodeKey(nil, []Value{NewInt(a)})
		kb := EncodeKey(nil, []Value{NewInt(b)})
		return sign(bytes.Compare(ka, kb)) == sign(Compare(NewInt(a), NewInt(b)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ka := EncodeKey(nil, []Value{NewFloat(a)})
		kb := EncodeKey(nil, []Value{NewFloat(b)})
		return sign(bytes.Compare(ka, kb)) == sign(Compare(NewFloat(a), NewFloat(b)))
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
	h := func(a, b string) bool {
		ka := EncodeKey(nil, []Value{NewString(a)})
		kb := EncodeKey(nil, []Value{NewString(b)})
		return sign(bytes.Compare(ka, kb)) == sign(Compare(NewString(a), NewString(b)))
	}
	if err := quick.Check(h, nil); err != nil {
		t.Error(err)
	}
}

func TestTupleRoundTripPropertyQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		row := randomRow(rng)
		enc := EncodeTuple(nil, row)
		dec, _, err := DecodeTuple(enc)
		if err != nil {
			t.Fatalf("decode random row: %v", err)
		}
		for j := range row {
			if Compare(dec[j], row[j]) != 0 {
				t.Fatalf("random row field %d mismatch: %v vs %v", j, dec[j], row[j])
			}
		}
	}
}

func randomRow(rng *rand.Rand) []Value {
	n := rng.Intn(8)
	row := make([]Value, n)
	for i := range row {
		switch rng.Intn(5) {
		case 0:
			row[i] = Null()
		case 1:
			row[i] = NewInt(rng.Int63() - rng.Int63())
		case 2:
			row[i] = NewFloat(rng.NormFloat64() * 1000)
		case 3:
			buf := make([]byte, rng.Intn(20))
			rng.Read(buf)
			row[i] = NewString(string(buf))
		default:
			row[i] = NewDate(int64(rng.Intn(20000)))
		}
	}
	return row
}

func TestCompareTotalOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var vals []Value
	for i := 0; i < 60; i++ {
		vals = append(vals, randomRow(rng)...)
	}
	vals = append(vals, Null(), NewInt(0), NewString(""))
	// Antisymmetry and transitivity via sort then pairwise check.
	sort.Slice(vals, func(i, j int) bool { return Compare(vals[i], vals[j]) < 0 })
	for i := 0; i < len(vals); i++ {
		for j := i; j < len(vals); j++ {
			if Compare(vals[i], vals[j]) > 0 {
				t.Fatalf("ordering violated between #%d (%v) and #%d (%v)", i, vals[i], j, vals[j])
			}
			if sign(Compare(vals[i], vals[j])) != -sign(Compare(vals[j], vals[i])) {
				t.Fatalf("antisymmetry violated for %v and %v", vals[i], vals[j])
			}
		}
	}
}

func TestCloneRow(t *testing.T) {
	row := []Value{NewInt(1), NewString("x")}
	cl := CloneRow(row)
	cl[0] = NewInt(99)
	if row[0].Int() != 1 {
		t.Error("CloneRow must not share backing array")
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}
