// Package matview implements the paper's Row(MV) strategy: materialized
// views that pre-aggregate the workload, together with view matching that
// answers queries whose constants (and grouping subsets) differ from the
// view definition — the generalization the paper applies to MV2,3 and MV7.
//
// A query matches a view when it aggregates the same join of base tables,
// filters only on the view's group-by columns, groups by a subset of them,
// and asks only for aggregates derivable from the view's aggregates
// (COUNT(*) from SUM of partial counts, SUM from SUM, MIN/MAX from MIN/MAX).
// The rewritten query then runs against the (clustered, much smaller) view
// table instead of the base tables.
package matview

import (
	"fmt"
	"strings"

	"oldelephant/internal/engine"
	"oldelephant/internal/sql"
)

// Manager creates materialized views and rewrites queries to use them.
type Manager struct {
	Engine *engine.Engine
}

// NewManager returns a manager over the engine.
func NewManager(e *engine.Engine) *Manager { return &Manager{Engine: e} }

// Create defines and populates a materialized view from its defining SQL
// (CREATE MATERIALIZED VIEW name AS ... is also accepted directly by the engine).
func (m *Manager) Create(name, defSQL string) error {
	stmt, err := sql.ParseSelect(defSQL)
	if err != nil {
		return err
	}
	_, err = m.Engine.ExecuteStmt(&sql.CreateViewStmt{Name: name, Materialized: true, Query: stmt})
	return err
}

// Refresh recomputes a materialized view from scratch (drop and recreate).
// The paper relies on the engine maintaining views automatically; a full
// recompute is the simplest correct stand-in for bulk-loaded experiments.
func (m *Manager) Refresh(name string) error {
	def, ok := m.Engine.View(name)
	if !ok {
		return fmt.Errorf("matview: view %q does not exist", name)
	}
	if _, err := m.Engine.ExecuteStmt(&sql.DropTableStmt{Name: def.Table}); err != nil {
		return err
	}
	_, err := m.Engine.ExecuteStmt(&sql.CreateViewStmt{Name: def.Name, Materialized: true, Query: def.Query})
	return err
}

// Match holds the outcome of view matching for a query.
type Match struct {
	View      *engine.ViewDef
	Rewritten *sql.SelectStmt
}

// TryRewrite attempts to answer the query from one of the engine's
// materialized views. When several views match, the one with the fewest
// materialized rows wins (it is the cheapest to read). It returns the
// rewritten statement and the matched view, or ok=false when no view applies.
func (m *Manager) TryRewrite(stmt *sql.SelectStmt) (*Match, bool) {
	var best *Match
	var bestRows int64
	for _, def := range m.Engine.Views() {
		rewritten, ok := m.rewriteAgainst(stmt, def)
		if !ok {
			continue
		}
		rows := int64(1 << 62)
		if tbl, err := m.Engine.Catalog().Table(def.Table); err == nil {
			rows = tbl.RowCount()
		}
		if best == nil || rows < bestRows {
			best = &Match{View: def, Rewritten: rewritten}
			bestRows = rows
		}
	}
	if best == nil {
		return nil, false
	}
	return best, true
}

// Query answers a SELECT, using a materialized view when one matches and
// falling back to the base tables otherwise. The boolean reports whether a
// view was used.
func (m *Manager) Query(query string) (*engine.Result, bool, error) {
	stmt, err := sql.ParseSelect(query)
	if err != nil {
		return nil, false, err
	}
	if match, ok := m.TryRewrite(stmt); ok {
		res, err := m.Engine.QueryStmt(match.Rewritten)
		return res, true, err
	}
	res, err := m.Engine.QueryStmt(stmt)
	return res, false, err
}

// RewriteSQL returns the SQL the query would be rewritten to, for inspection.
func (m *Manager) RewriteSQL(query string) (string, bool, error) {
	stmt, err := sql.ParseSelect(query)
	if err != nil {
		return "", false, err
	}
	match, ok := m.TryRewrite(stmt)
	if !ok {
		return "", false, nil
	}
	return match.Rewritten.String(), true, nil
}

// rewriteAgainst checks whether the query can be answered from the view and
// builds the rewritten statement if so.
func (m *Manager) rewriteAgainst(stmt *sql.SelectStmt, def *engine.ViewDef) (*sql.SelectStmt, bool) {
	if stmt.Distinct || stmt.Having != nil || len(stmt.From) == 0 {
		return nil, false
	}
	// Same set of base tables.
	if !sameTables(stmt.From, def.Query.From) {
		return nil, false
	}
	// The query's join predicates must be among the view's; its filter
	// predicates must be on view group-by columns.
	viewJoins := joinSet(def.Query.Where)
	// Map base group-by columns to their output labels in the view table: the
	// label is the select-item alias (or the bare column name) of the item
	// that exposes the group column.
	groupBySet := make(map[string]bool)
	for _, g := range def.Query.GroupBy {
		if ref, ok := g.(*sql.ColRef); ok {
			groupBySet[strings.ToLower(ref.Column)] = true
		}
	}
	groupCols := make(map[string]string) // base column name -> view output label
	for _, item := range def.Query.Select {
		if item.Star {
			continue
		}
		if ref, ok := item.Expr.(*sql.ColRef); ok && groupBySet[strings.ToLower(ref.Column)] {
			groupCols[strings.ToLower(ref.Column)] = aliasFor(item, ref.Column)
		}
	}
	var filters []sql.Expr
	for _, c := range splitConjuncts(stmt.Where) {
		if isJoinConjunct(c) {
			if !viewJoins[canonicalJoin(c)] {
				return nil, false
			}
			continue
		}
		colName, ok := filterColumn(c)
		if !ok {
			return nil, false
		}
		label, ok := groupCols[strings.ToLower(colName)]
		if !ok {
			return nil, false
		}
		filters = append(filters, renameColumn(c, colName, label))
	}
	// The view itself may filter rows (e.g. MV defined with a WHERE); if it
	// does, require the query to carry the same predicates, otherwise the
	// view could be missing rows. Views in this reproduction are unfiltered,
	// so any non-join conjunct in the view definition blocks matching.
	for _, c := range splitConjuncts(def.Query.Where) {
		if !isJoinConjunct(c) {
			return nil, false
		}
	}
	// GROUP BY subset of the view's group columns.
	var outGroup []string
	for _, g := range stmt.GroupBy {
		ref, ok := g.(*sql.ColRef)
		if !ok {
			return nil, false
		}
		label, ok := groupCols[strings.ToLower(ref.Column)]
		if !ok {
			return nil, false
		}
		outGroup = append(outGroup, label)
	}
	// Select items: group columns or derivable aggregates.
	aggLabel := make(map[string]string) // canonical aggregate -> view column label
	for i, a := range def.Aggregates {
		aggLabel[a] = def.AggColumns[i]
	}
	var items []sql.SelectItem
	for _, item := range stmt.Select {
		if item.Star {
			return nil, false
		}
		switch e := item.Expr.(type) {
		case *sql.ColRef:
			label, ok := groupCols[strings.ToLower(e.Column)]
			if !ok {
				return nil, false
			}
			items = append(items, sql.SelectItem{Expr: &sql.ColRef{Column: label}, Alias: aliasFor(item, e.Column)})
		case *sql.FuncCall:
			if !e.IsAggregate() {
				return nil, false
			}
			derived, ok := deriveAggregate(e, aggLabel)
			if !ok {
				return nil, false
			}
			items = append(items, sql.SelectItem{Expr: derived, Alias: aliasFor(item, "")})
		default:
			return nil, false
		}
	}
	out := &sql.SelectStmt{
		Select: items,
		From:   []sql.TableRef{{Table: def.Table}},
		Where:  andAll(filters),
		Limit:  stmt.Limit,
		Offset: stmt.Offset,
	}
	for _, g := range outGroup {
		out.GroupBy = append(out.GroupBy, &sql.ColRef{Column: g})
	}
	for _, o := range stmt.OrderBy {
		ref, ok := o.Expr.(*sql.ColRef)
		if !ok {
			return nil, false
		}
		label, ok := groupCols[strings.ToLower(ref.Column)]
		if !ok {
			return nil, false
		}
		out.OrderBy = append(out.OrderBy, sql.OrderItem{Expr: &sql.ColRef{Column: label}, Desc: o.Desc})
	}
	return out, true
}

// deriveAggregate maps a query aggregate onto the view's stored aggregates:
// COUNT(*) -> SUM(count column); SUM(x) -> SUM(sum column); MIN/MAX(x) ->
// MIN/MAX of the stored MIN/MAX column; AVG(x) -> SUM(sum)/SUM(count).
func deriveAggregate(fc *sql.FuncCall, aggLabel map[string]string) (sql.Expr, bool) {
	canon := strings.ToUpper(fc.String())
	switch fc.Name {
	case "COUNT":
		if label, ok := aggLabel["COUNT(*)"]; ok {
			return &sql.FuncCall{Name: "SUM", Args: []sql.Expr{&sql.ColRef{Column: label}}}, true
		}
		return nil, false
	case "SUM":
		if label, ok := aggLabel[canon]; ok {
			return &sql.FuncCall{Name: "SUM", Args: []sql.Expr{&sql.ColRef{Column: label}}}, true
		}
		return nil, false
	case "MIN", "MAX":
		if label, ok := aggLabel[canon]; ok {
			return &sql.FuncCall{Name: fc.Name, Args: []sql.Expr{&sql.ColRef{Column: label}}}, true
		}
		return nil, false
	case "AVG":
		if len(fc.Args) != 1 {
			return nil, false
		}
		sumCanon := "SUM(" + strings.ToUpper(fc.Args[0].String()) + ")"
		sumLabel, okSum := aggLabel[sumCanon]
		cntLabel, okCnt := aggLabel["COUNT(*)"]
		if !okSum || !okCnt {
			return nil, false
		}
		return &sql.BinExpr{Op: "/",
			L: &sql.FuncCall{Name: "SUM", Args: []sql.Expr{&sql.ColRef{Column: sumLabel}}},
			R: &sql.FuncCall{Name: "SUM", Args: []sql.Expr{&sql.ColRef{Column: cntLabel}}},
		}, true
	default:
		return nil, false
	}
}

func aliasFor(item sql.SelectItem, fallback string) string {
	if item.Alias != "" {
		return item.Alias
	}
	if ref, ok := item.Expr.(*sql.ColRef); ok {
		return ref.Column
	}
	if fallback != "" {
		return fallback
	}
	// Derive a valid identifier from the expression text (e.g. COUNT(*) -> count_).
	var sb strings.Builder
	for _, r := range strings.ToLower(item.Expr.String()) {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '_' {
			sb.WriteRune(r)
		} else if sb.Len() > 0 && !strings.HasSuffix(sb.String(), "_") {
			sb.WriteRune('_')
		}
	}
	return sb.String()
}

// sameTables compares the multisets of base table names in two FROM lists.
func sameTables(a, b []sql.TableRef) bool {
	if len(a) != len(b) {
		return false
	}
	count := make(map[string]int)
	for _, t := range a {
		if t.Subquery != nil {
			return false
		}
		count[strings.ToLower(t.Table)]++
	}
	for _, t := range b {
		if t.Subquery != nil {
			return false
		}
		count[strings.ToLower(t.Table)]--
	}
	for _, c := range count {
		if c != 0 {
			return false
		}
	}
	return true
}

// joinSet collects the canonical forms of column-equality conjuncts.
func joinSet(where sql.Expr) map[string]bool {
	out := make(map[string]bool)
	for _, c := range splitConjuncts(where) {
		if isJoinConjunct(c) {
			out[canonicalJoin(c)] = true
		}
	}
	return out
}

func isJoinConjunct(c sql.Expr) bool {
	be, ok := c.(*sql.BinExpr)
	if !ok || be.Op != "=" {
		return false
	}
	_, lOK := be.L.(*sql.ColRef)
	_, rOK := be.R.(*sql.ColRef)
	return lOK && rOK
}

// canonicalJoin renders a column-equality conjunct order-insensitively.
func canonicalJoin(c sql.Expr) string {
	be := c.(*sql.BinExpr)
	l := strings.ToLower(be.L.(*sql.ColRef).Column)
	r := strings.ToLower(be.R.(*sql.ColRef).Column)
	if l > r {
		l, r = r, l
	}
	return l + "=" + r
}

// filterColumn extracts the column of a single-column constant predicate.
func filterColumn(c sql.Expr) (string, bool) {
	switch e := c.(type) {
	case *sql.BinExpr:
		if ref, ok := e.L.(*sql.ColRef); ok {
			if _, isRef := e.R.(*sql.ColRef); !isRef {
				return ref.Column, true
			}
		}
		if ref, ok := e.R.(*sql.ColRef); ok {
			if _, isRef := e.L.(*sql.ColRef); !isRef {
				return ref.Column, true
			}
		}
		return "", false
	case *sql.BetweenExpr:
		if ref, ok := e.E.(*sql.ColRef); ok {
			return ref.Column, true
		}
		return "", false
	case *sql.InExpr:
		if ref, ok := e.E.(*sql.ColRef); ok && !e.Not {
			return ref.Column, true
		}
		return "", false
	default:
		return "", false
	}
}

// renameColumn replaces references to the base column with the view's output label.
func renameColumn(e sql.Expr, from, to string) sql.Expr {
	switch t := e.(type) {
	case *sql.ColRef:
		if strings.EqualFold(t.Column, from) {
			return &sql.ColRef{Column: to}
		}
		return t
	case *sql.BinExpr:
		return &sql.BinExpr{Op: t.Op, L: renameColumn(t.L, from, to), R: renameColumn(t.R, from, to)}
	case *sql.BetweenExpr:
		return &sql.BetweenExpr{E: renameColumn(t.E, from, to), Lo: renameColumn(t.Lo, from, to), Hi: renameColumn(t.Hi, from, to), Not: t.Not}
	case *sql.InExpr:
		list := make([]sql.Expr, len(t.List))
		for i, item := range t.List {
			list[i] = renameColumn(item, from, to)
		}
		return &sql.InExpr{E: renameColumn(t.E, from, to), List: list, Not: t.Not}
	case *sql.NotExpr:
		return &sql.NotExpr{E: renameColumn(t.E, from, to)}
	default:
		return e
	}
}

func andAll(preds []sql.Expr) sql.Expr {
	var out sql.Expr
	for _, p := range preds {
		if p == nil {
			continue
		}
		if out == nil {
			out = p
		} else {
			out = &sql.BinExpr{Op: "AND", L: out, R: p}
		}
	}
	return out
}

func splitConjuncts(e sql.Expr) []sql.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*sql.BinExpr); ok && b.Op == "AND" {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []sql.Expr{e}
}
