package matview

import (
	"sort"
	"strings"
	"testing"

	"oldelephant/internal/engine"
	"oldelephant/internal/value"
)

// testDB builds a small lineitem/orders/customer database and the paper's
// generalized materialized views MV2,3 (also covering Q1) and MV7.
func testDB(t *testing.T) (*engine.Engine, *Manager) {
	t.Helper()
	e := engine.Default()
	ddl := []string{
		`CREATE TABLE lineitem (l_orderkey BIGINT, l_suppkey INT, l_shipdate DATE,
			l_extendedprice DOUBLE, l_returnflag VARCHAR(1), PRIMARY KEY (l_orderkey))`,
		`CREATE TABLE orders (o_orderkey BIGINT, o_custkey INT, o_orderdate DATE, PRIMARY KEY (o_orderkey))`,
		`CREATE TABLE customer (c_custkey INT, c_nationkey INT, PRIMARY KEY (c_custkey))`,
	}
	for _, q := range ddl {
		if _, err := e.Execute(q); err != nil {
			t.Fatal(err)
		}
	}
	base := value.MustParseDate("1995-01-01").Int()
	var cust, ord, li [][]value.Value
	for c := 0; c < 20; c++ {
		cust = append(cust, []value.Value{value.NewInt(int64(c)), value.NewInt(int64(c % 4))})
	}
	for o := 0; o < 150; o++ {
		ord = append(ord, []value.Value{
			value.NewInt(int64(o)), value.NewInt(int64(o % 20)), value.NewDate(base + int64(o%30)),
		})
	}
	for i := 0; i < 1500; i++ {
		flag := "N"
		if i%4 == 0 {
			flag = "R"
		} else if i%4 == 1 {
			flag = "A"
		}
		li = append(li, []value.Value{
			value.NewInt(int64(i % 150)),
			value.NewInt(int64(i % 12)),
			value.NewDate(base + int64(i%45)),
			value.NewFloat(float64(50 + i%200)),
			value.NewString(flag),
		})
	}
	for table, rows := range map[string][][]value.Value{"customer": cust, "orders": ord, "lineitem": li} {
		if err := e.BulkLoad(table, rows); err != nil {
			t.Fatal(err)
		}
	}
	m := NewManager(e)
	// MV2,3 from the paper (also answers Q1).
	if err := m.Create("mv23", `SELECT l_shipdate, l_suppkey, COUNT(*) AS cnt
		FROM lineitem GROUP BY l_shipdate, l_suppkey`); err != nil {
		t.Fatal(err)
	}
	// MV7 from the paper.
	if err := m.Create("mv7", `SELECT c_nationkey, l_returnflag, SUM(l_extendedprice) AS revenue
		FROM lineitem, orders, customer
		WHERE l_orderkey = o_orderkey AND o_custkey = c_custkey
		GROUP BY l_returnflag, c_nationkey`); err != nil {
		t.Fatal(err)
	}
	// A view with MAX for the Q4/Q5/Q6 family.
	if err := m.Create("mv456", `SELECT o_orderdate, l_suppkey, MAX(l_shipdate) AS maxship, COUNT(*) AS cnt
		FROM lineitem, orders WHERE l_orderkey = o_orderkey
		GROUP BY o_orderdate, l_suppkey`); err != nil {
		t.Fatal(err)
	}
	return e, m
}

// compare runs the query directly and through the manager and compares results.
func compare(t *testing.T, e *engine.Engine, m *Manager, query string, wantMatch bool) {
	t.Helper()
	direct, err := e.Query(query)
	if err != nil {
		t.Fatalf("direct query failed: %v", err)
	}
	viaView, matched, err := m.Query(query)
	if err != nil {
		t.Fatalf("view query failed: %v", err)
	}
	if matched != wantMatch {
		rew, _, _ := m.RewriteSQL(query)
		t.Fatalf("matched = %v, want %v (rewritten: %s)", matched, wantMatch, rew)
	}
	a, b := normalize(direct.Rows), normalize(viaView.Rows)
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs:\n  direct: %s\n  view:   %s", i, a[i], b[i])
		}
	}
}

func normalize(rows [][]value.Value) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		var parts []string
		for _, v := range r {
			if v.Kind == value.KindFloat {
				parts = append(parts, value.NewFloat(float64(int64(v.F*100+0.5))/100).String())
			} else {
				parts = append(parts, v.String())
			}
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

func TestQ1AnsweredFromMV23(t *testing.T) {
	e, m := testDB(t)
	q := "SELECT l_shipdate, COUNT(*) FROM lineitem WHERE l_shipdate > DATE '1995-01-20' GROUP BY l_shipdate"
	compare(t, e, m, q, true)
	rew, ok, err := m.RewriteSQL(q)
	if err != nil || !ok {
		t.Fatalf("rewrite failed: %v %v", ok, err)
	}
	if !strings.Contains(strings.ToLower(rew), "mv23") || !strings.Contains(strings.ToUpper(rew), "SUM") {
		t.Errorf("unexpected rewriting: %s", rew)
	}
}

func TestQ2Q3AnsweredFromMV23WithDifferentConstants(t *testing.T) {
	e, m := testDB(t)
	// The whole point of the generalization: arbitrary constants still match.
	for _, d := range []string{"1995-01-05", "1995-01-15", "1995-02-01"} {
		compare(t, e, m, "SELECT l_suppkey, COUNT(*) FROM lineitem WHERE l_shipdate = DATE '"+d+"' GROUP BY l_suppkey", true)
		compare(t, e, m, "SELECT l_suppkey, COUNT(*) FROM lineitem WHERE l_shipdate > DATE '"+d+"' GROUP BY l_suppkey", true)
	}
}

func TestQ7AnsweredFromMV7(t *testing.T) {
	e, m := testDB(t)
	for _, flag := range []string{"R", "A", "N"} {
		q := `SELECT c_nationkey, SUM(l_extendedprice) FROM lineitem, orders, customer
		      WHERE l_orderkey = o_orderkey AND o_custkey = c_custkey AND l_returnflag = '` + flag + `'
		      GROUP BY c_nationkey`
		compare(t, e, m, q, true)
	}
}

func TestQ4Q5Q6AnsweredFromMV456(t *testing.T) {
	e, m := testDB(t)
	queries := []string{
		"SELECT o_orderdate, MAX(l_shipdate) FROM lineitem, orders WHERE l_orderkey = o_orderkey AND o_orderdate > DATE '1995-01-10' GROUP BY o_orderdate",
		"SELECT l_suppkey, MAX(l_shipdate) FROM lineitem, orders WHERE l_orderkey = o_orderkey AND o_orderdate = DATE '1995-01-07' GROUP BY l_suppkey",
		"SELECT l_suppkey, MAX(l_shipdate) FROM lineitem, orders WHERE l_orderkey = o_orderkey AND o_orderdate > DATE '1995-01-18' GROUP BY l_suppkey",
	}
	for _, q := range queries {
		compare(t, e, m, q, true)
	}
}

func TestNonMatchingQueriesFallBack(t *testing.T) {
	e, m := testDB(t)
	cases := []string{
		// Filter on a column that is not a view group-by column.
		"SELECT l_suppkey, COUNT(*) FROM lineitem WHERE l_extendedprice > 100 GROUP BY l_suppkey",
		// Aggregate not stored in any matching view.
		"SELECT l_shipdate, MIN(l_suppkey) FROM lineitem GROUP BY l_shipdate",
		// Different table set.
		"SELECT o_orderdate, COUNT(*) FROM orders GROUP BY o_orderdate",
		// Grouping on a non-view column.
		"SELECT l_returnflag, COUNT(*) FROM lineitem GROUP BY l_returnflag",
	}
	for _, q := range cases {
		compare(t, e, m, q, false)
	}
}

func TestAvgDerivation(t *testing.T) {
	e, m := testDB(t)
	// AVG over a view with SUM and COUNT(*): derivable.
	if err := m.Create("mv_avg", `SELECT l_suppkey, SUM(l_extendedprice) AS s, COUNT(*) AS c
		FROM lineitem GROUP BY l_suppkey`); err != nil {
		t.Fatal(err)
	}
	compare(t, e, m, "SELECT l_suppkey, AVG(l_extendedprice) FROM lineitem GROUP BY l_suppkey", true)
	compare(t, e, m, "SELECT l_suppkey, SUM(l_extendedprice) FROM lineitem GROUP BY l_suppkey", true)
}

func TestRefresh(t *testing.T) {
	e, m := testDB(t)
	// New rows are not visible until the view is refreshed.
	if _, err := e.Execute("INSERT INTO lineitem VALUES (1, 3, DATE '1997-12-31', 10.0, 'R')"); err != nil {
		t.Fatal(err)
	}
	q := "SELECT l_shipdate, COUNT(*) FROM lineitem WHERE l_shipdate > DATE '1997-01-01' GROUP BY l_shipdate"
	stale, matched, err := m.Query(q)
	if err != nil || !matched {
		t.Fatalf("query failed: %v %v", matched, err)
	}
	if len(stale.Rows) != 0 {
		t.Fatalf("view should be stale, got %v", stale.Rows)
	}
	if err := m.Refresh("mv23"); err != nil {
		t.Fatal(err)
	}
	fresh, matched, err := m.Query(q)
	if err != nil || !matched {
		t.Fatalf("query after refresh failed: %v %v", matched, err)
	}
	if len(fresh.Rows) != 1 || fresh.Rows[0][1].Int() != 1 {
		t.Errorf("refreshed view rows = %v", fresh.Rows)
	}
	if err := m.Refresh("nope"); err == nil {
		t.Error("refresh of missing view should fail")
	}
}

func TestManagerErrors(t *testing.T) {
	_, m := testDB(t)
	if err := m.Create("bad", "not a query"); err == nil {
		t.Error("bad SQL should fail")
	}
	if err := m.Create("mv23", "SELECT l_suppkey, COUNT(*) FROM lineitem GROUP BY l_suppkey"); err == nil {
		t.Error("duplicate view should fail")
	}
	if _, _, err := m.Query("also not a query"); err == nil {
		t.Error("bad query should fail")
	}
	if _, _, err := m.RewriteSQL("still not a query"); err == nil {
		t.Error("bad rewrite input should fail")
	}
	// ORDER BY on a group column is preserved through the view rewriting.
	rew, ok, err := m.RewriteSQL("SELECT l_shipdate, COUNT(*) FROM lineitem GROUP BY l_shipdate ORDER BY l_shipdate DESC")
	if err != nil || !ok {
		t.Fatalf("rewrite failed: %v %v", ok, err)
	}
	if !strings.Contains(strings.ToUpper(rew), "ORDER BY") {
		t.Errorf("ORDER BY lost: %s", rew)
	}
}

func TestViewIOBenefit(t *testing.T) {
	e, m := testDB(t)
	q := "SELECT l_suppkey, COUNT(*) FROM lineitem WHERE l_shipdate = DATE '1995-01-15' GROUP BY l_suppkey"
	e.ResetBufferPool()
	direct, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	e.ResetBufferPool()
	viaView, matched, err := m.Query(q)
	if err != nil || !matched {
		t.Fatal(err)
	}
	if viaView.Stats.IO.PageReads > direct.Stats.IO.PageReads {
		t.Errorf("view should not read more pages than the base query: %d vs %d",
			viaView.Stats.IO.PageReads, direct.Stats.IO.PageReads)
	}
}
