// Package ctable implements the paper's central idea: a *logical* database
// design that lets an unmodified row store emulate the RLE-compressed,
// column-wise storage of a C-store.
//
// Given a projection D = (expression | sortColumns), the builder materializes
// one "c-table" per column x of the expression. A c-table row (f, v, c) means
// that positions f .. f+c-1 of the sorted expression all carry value v for
// column x, where runs additionally break whenever any earlier sort column
// changes (Section 2.2.1 of the paper). Columns that barely compress fall
// back to the dense representation (f, v) with an implicit run length of one
// (the paper's T_C example in Figure 3).
//
// Each c-table gets a clustered index on f and a secondary covering index on
// v INCLUDE (f, c), which is exactly the physical design the paper's
// rewritten queries (package core/rewrite) rely on.
//
// Because every c-table is clustered on f and covered on v, the planner's
// sort-prefix marking makes c-table scans emit encoding-aware vectors: a
// range seek on the covering v index produces RLE vectors of v (the design's
// own run structure), and an equality predicate — the range-collapse case of
// Figure 4, where the whole seek range carries one value — collapses v to a
// Const vector, so the batch executor works on the compressed form
// end to end.
package ctable

import (
	"fmt"
	"strings"

	"oldelephant/internal/engine"
	"oldelephant/internal/exec"
	"oldelephant/internal/value"
)

// DefaultDenseThreshold is the run-to-row ratio above which the dense (f, v)
// representation is smaller than (f, v, c) runs: three values per run versus
// two per row.
const DefaultDenseThreshold = 2.0 / 3.0

// ColumnTable describes the materialized c-table of one column.
type ColumnTable struct {
	// Column is the source column name (e.g. "l_suppkey").
	Column string
	// Table is the name of the materialized c-table (e.g. "d1_l_suppkey").
	Table string
	// Dense is true when the column uses the (f, v) representation with an
	// implicit run length of 1 instead of (f, v, c).
	Dense bool
	// Depth is the column's position in the design's column order (0 = first
	// sort column); runs of deeper columns nest inside runs of shallower ones.
	Depth int
	// Runs is the number of rows in the c-table.
	Runs int64
}

// Design is a full c-table design: the paper's D1, D2, D4.
type Design struct {
	// Name prefixes every c-table name.
	Name string
	// SourceSQL is the query whose result is being encoded (the projection's
	// defining expression, e.g. a join of lineitem and orders).
	SourceSQL string
	// SortColumns is the global ordering of the design.
	SortColumns []string
	// Columns lists the per-column c-tables in depth order.
	Columns []ColumnTable
	// NumRows is the number of rows of the source expression.
	NumRows int64
}

// Column returns the c-table metadata for a source column.
func (d *Design) Column(name string) (ColumnTable, bool) {
	for _, c := range d.Columns {
		if strings.EqualFold(c.Column, name) {
			return c, true
		}
	}
	return ColumnTable{}, false
}

// HasColumn reports whether the design encodes the given source column.
func (d *Design) HasColumn(name string) bool {
	_, ok := d.Column(name)
	return ok
}

// TotalRuns sums the c-table row counts, a proxy for the design's size.
func (d *Design) TotalRuns() int64 {
	var total int64
	for _, c := range d.Columns {
		total += c.Runs
	}
	return total
}

// Builder materializes c-table designs inside an engine.
type Builder struct {
	Engine *engine.Engine
	// DenseThreshold overrides DefaultDenseThreshold when > 0.
	DenseThreshold float64
	// SkipValueIndex disables the secondary covering index on v (used by
	// ablation experiments; the paper's design always creates it).
	SkipValueIndex bool
}

// NewBuilder returns a Builder with the paper's defaults.
func NewBuilder(e *engine.Engine) *Builder { return &Builder{Engine: e} }

// Build materializes the design named name for the result of sourceSQL,
// encoding the listed columns with the given sort order. Every sort column
// must be listed in columns; columns not in sortColumns are encoded as if
// they were appended to the end of the sort order (their runs break whenever
// any sort column changes).
func (b *Builder) Build(name, sourceSQL string, columns, sortColumns []string) (*Design, error) {
	if len(columns) == 0 {
		return nil, fmt.Errorf("ctable: design %q has no columns", name)
	}
	res, err := b.Engine.Query(sourceSQL)
	if err != nil {
		return nil, fmt.Errorf("ctable: evaluating source of design %q: %w", name, err)
	}
	// Locate each requested column in the source result.
	colPos := make([]int, len(columns))
	for i, col := range columns {
		pos := -1
		for j, label := range res.Columns {
			if strings.EqualFold(label, col) {
				pos = j
				break
			}
		}
		if pos < 0 {
			return nil, fmt.Errorf("ctable: source of design %q does not produce column %q", name, col)
		}
		colPos[i] = pos
	}
	for _, sc := range sortColumns {
		found := false
		for _, col := range columns {
			if strings.EqualFold(col, sc) {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("ctable: sort column %q is not among the design's columns", sc)
		}
	}

	// Order the design's columns: sort columns first (in order), then the rest.
	ordered := orderColumns(columns, sortColumns)
	sortRows(res.Rows, ordered, columns, colPos)

	design := &Design{
		Name:        name,
		SourceSQL:   sourceSQL,
		SortColumns: sortColumns,
		NumRows:     int64(len(res.Rows)),
	}
	threshold := b.DenseThreshold
	if threshold <= 0 {
		threshold = DefaultDenseThreshold
	}
	for depth, col := range ordered {
		pos := colPos[indexOf(columns, col)]
		// Positions of the columns that precede this one in the design order;
		// a run breaks when any of them changes.
		var breakPos []int
		for _, prev := range ordered[:depth] {
			breakPos = append(breakPos, colPos[indexOf(columns, prev)])
		}
		runs := computeRuns(res.Rows, pos, breakPos)
		dense := float64(len(runs)) > threshold*float64(len(res.Rows)) && len(res.Rows) > 0
		ct, err := b.materialize(design.Name, col, res.Rows, pos, runs, dense, depth)
		if err != nil {
			return nil, err
		}
		design.Columns = append(design.Columns, ct)
	}
	return design, nil
}

// orderColumns returns the design's columns with the sort columns first.
func orderColumns(columns, sortColumns []string) []string {
	var out []string
	used := make(map[string]bool)
	for _, sc := range sortColumns {
		for _, c := range columns {
			if strings.EqualFold(c, sc) && !used[strings.ToLower(c)] {
				out = append(out, c)
				used[strings.ToLower(c)] = true
			}
		}
	}
	for _, c := range columns {
		if !used[strings.ToLower(c)] {
			out = append(out, c)
			used[strings.ToLower(c)] = true
		}
	}
	return out
}

func indexOf(list []string, name string) int {
	for i, s := range list {
		if strings.EqualFold(s, name) {
			return i
		}
	}
	return -1
}

// sortRows sorts the source rows by the design's column order.
func sortRows(rows []exec.Row, ordered, columns []string, colPos []int) {
	var sortPositions []int
	for _, col := range ordered {
		sortPositions = append(sortPositions, colPos[indexOf(columns, col)])
	}
	lessFn := func(a, b exec.Row) bool {
		for _, p := range sortPositions {
			cmp := value.Compare(a[p], b[p])
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	}
	// Stable merge sort over the slice (small helper to avoid importing sort
	// with a closure capturing everything; clarity over micro-optimization).
	stableSort(rows, lessFn)
}

func stableSort(rows []exec.Row, less func(a, b exec.Row) bool) {
	if len(rows) < 2 {
		return
	}
	mid := len(rows) / 2
	left := append([]exec.Row(nil), rows[:mid]...)
	right := append([]exec.Row(nil), rows[mid:]...)
	stableSort(left, less)
	stableSort(right, less)
	i, j, k := 0, 0, 0
	for i < len(left) && j < len(right) {
		if less(right[j], left[i]) {
			rows[k] = right[j]
			j++
		} else {
			rows[k] = left[i]
			i++
		}
		k++
	}
	for i < len(left) {
		rows[k] = left[i]
		i++
		k++
	}
	for j < len(right) {
		rows[k] = right[j]
		j++
		k++
	}
}

// run is one (f, v, c) triple before materialization.
type run struct {
	first int64
	val   value.Value
	count int64
}

// computeRuns groups consecutive rows with equal values in column pos that
// also agree on all break columns (the columns earlier in the sort order).
func computeRuns(rows []exec.Row, pos int, breakPos []int) []run {
	var runs []run
	for i, row := range rows {
		v := row[pos]
		newRun := len(runs) == 0
		if !newRun {
			if value.Compare(v, runs[len(runs)-1].val) != 0 {
				newRun = true
			} else if i > 0 {
				prev := rows[i-1]
				for _, bp := range breakPos {
					if value.Compare(prev[bp], row[bp]) != 0 {
						newRun = true
						break
					}
				}
			}
		}
		if newRun {
			runs = append(runs, run{first: int64(i + 1), val: v, count: 1})
		} else {
			runs[len(runs)-1].count++
		}
	}
	return runs
}

// sqlType maps a value kind to the SQL type used for the v column.
func sqlType(k value.Kind) string {
	switch k {
	case value.KindFloat:
		return "DOUBLE"
	case value.KindString:
		return "VARCHAR(64)"
	case value.KindDate:
		return "DATE"
	case value.KindBool:
		return "BOOL"
	default:
		return "BIGINT"
	}
}

// TableName returns the canonical c-table name for a design column.
func TableName(design, column string) string {
	return strings.ToLower(design) + "_" + strings.ToLower(column)
}

// materialize creates and loads the c-table for one column.
func (b *Builder) materialize(designName, col string, rows []exec.Row, pos int, runs []run, dense bool, depth int) (ColumnTable, error) {
	tableName := TableName(designName, col)
	kind := value.KindInt
	for _, r := range rows {
		if !r[pos].IsNull() {
			kind = r[pos].Kind
			break
		}
	}
	var ddl string
	if dense {
		ddl = fmt.Sprintf("CREATE TABLE %s (f BIGINT, v %s, PRIMARY KEY (f))", tableName, sqlType(kind))
	} else {
		ddl = fmt.Sprintf("CREATE TABLE %s (f BIGINT, v %s, c BIGINT, PRIMARY KEY (f))", tableName, sqlType(kind))
	}
	if _, err := b.Engine.Execute(ddl); err != nil {
		return ColumnTable{}, fmt.Errorf("ctable: creating %s: %w", tableName, err)
	}
	var load [][]value.Value
	var loaded int64
	if dense {
		for i, r := range rows {
			load = append(load, []value.Value{value.NewInt(int64(i + 1)), r[pos]})
		}
		loaded = int64(len(rows))
	} else {
		for _, ru := range runs {
			load = append(load, []value.Value{value.NewInt(ru.first), ru.val, value.NewInt(ru.count)})
		}
		loaded = int64(len(runs))
	}
	if err := b.Engine.BulkLoad(tableName, load); err != nil {
		return ColumnTable{}, fmt.Errorf("ctable: loading %s: %w", tableName, err)
	}
	if !b.SkipValueIndex {
		var idxDDL string
		if dense {
			idxDDL = fmt.Sprintf("CREATE INDEX ix_%s_v ON %s (v) INCLUDE (f)", tableName, tableName)
		} else {
			idxDDL = fmt.Sprintf("CREATE INDEX ix_%s_v ON %s (v) INCLUDE (f, c)", tableName, tableName)
		}
		if _, err := b.Engine.Execute(idxDDL); err != nil {
			return ColumnTable{}, fmt.Errorf("ctable: indexing %s: %w", tableName, err)
		}
	}
	return ColumnTable{Column: col, Table: tableName, Dense: dense, Depth: depth, Runs: loaded}, nil
}

// Verify checks the design's invariants against the engine's contents:
//   - run positions are 1-based, strictly increasing, and contiguous per table
//     (each run starts where the previous one ended);
//   - every c-table covers exactly positions 1..NumRows;
//   - runs of deeper columns never straddle run boundaries of shallower ones.
//
// It is used by tests and by the example programs to demonstrate the property
// of c-tables that makes the paper's band-join rewriting correct.
func (b *Builder) Verify(d *Design) error {
	type runRange struct{ first, last int64 }
	perColumn := make(map[string][]runRange)
	for _, ct := range d.Columns {
		q := "SELECT f, c FROM " + ct.Table + " ORDER BY f"
		if ct.Dense {
			q = "SELECT f FROM " + ct.Table + " ORDER BY f"
		}
		res, err := b.Engine.Query(q)
		if err != nil {
			return err
		}
		var ranges []runRange
		next := int64(1)
		for _, row := range res.Rows {
			f := row[0].Int()
			c := int64(1)
			if !ct.Dense {
				c = row[1].Int()
			}
			if f != next {
				return fmt.Errorf("ctable: %s: run starting at %d, expected %d", ct.Table, f, next)
			}
			if c < 1 {
				return fmt.Errorf("ctable: %s: non-positive run length %d at %d", ct.Table, c, f)
			}
			ranges = append(ranges, runRange{first: f, last: f + c - 1})
			next = f + c
		}
		if next != d.NumRows+1 {
			return fmt.Errorf("ctable: %s covers positions up to %d, want %d", ct.Table, next-1, d.NumRows)
		}
		perColumn[ct.Column] = ranges
	}
	// Nesting: every run of a deeper column lies inside one run of each
	// shallower column.
	for i := 1; i < len(d.Columns); i++ {
		deep := perColumn[d.Columns[i].Column]
		for j := 0; j < i; j++ {
			shallow := perColumn[d.Columns[j].Column]
			si := 0
			for _, r := range deep {
				for si < len(shallow) && shallow[si].last < r.first {
					si++
				}
				if si >= len(shallow) || r.first < shallow[si].first || r.last > shallow[si].last {
					return fmt.Errorf("ctable: run [%d,%d] of %s straddles runs of %s",
						r.first, r.last, d.Columns[i].Table, d.Columns[j].Table)
				}
			}
		}
	}
	return nil
}
