package ctable

import (
	"strings"
	"testing"

	"oldelephant/internal/engine"
	"oldelephant/internal/value"
)

// paperExampleEngine loads the 12-row table of Figure 3(a) of the paper.
func paperExampleEngine(t *testing.T) *engine.Engine {
	t.Helper()
	e := engine.Default()
	if _, err := e.Execute("CREATE TABLE t (a INT, b INT, c INT, PRIMARY KEY (a, b, c))"); err != nil {
		t.Fatal(err)
	}
	rows := [][]int64{
		{1, 1, 1}, {1, 1, 4}, {1, 2, 4}, {1, 2, 5}, {1, 2, 5},
		{2, 1, 1}, {2, 1, 1}, {2, 3, 1}, {2, 3, 2}, {2, 3, 2}, {2, 3, 3}, {2, 3, 4},
	}
	var load [][]value.Value
	for _, r := range rows {
		load = append(load, []value.Value{value.NewInt(r[0]), value.NewInt(r[1]), value.NewInt(r[2])})
	}
	if err := e.BulkLoad("t", load); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestPaperFigure3Example(t *testing.T) {
	e := paperExampleEngine(t)
	b := NewBuilder(e)
	d, err := b.Build("fig3", "SELECT a, b, c FROM t", []string{"a", "b", "c"}, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRows != 12 {
		t.Fatalf("NumRows = %d", d.NumRows)
	}
	// Ta: (1,1,5), (6,2,7) — exactly as in Figure 3(b).
	ta, ok := d.Column("a")
	if !ok || ta.Dense {
		t.Fatalf("column a metadata = %+v", ta)
	}
	res, err := e.Query("SELECT f, v, c FROM " + ta.Table + " ORDER BY f")
	if err != nil {
		t.Fatal(err)
	}
	wantA := [][3]int64{{1, 1, 5}, {6, 2, 7}}
	if len(res.Rows) != len(wantA) {
		t.Fatalf("Ta rows = %v", res.Rows)
	}
	for i, w := range wantA {
		r := res.Rows[i]
		if r[0].Int() != w[0] || r[1].Int() != w[1] || r[2].Int() != w[2] {
			t.Errorf("Ta row %d = %v, want %v", i, r, w)
		}
	}
	// Tb: (1,1,2), (3,2,3), (6,1,2), (8,3,5).
	tb, _ := d.Column("b")
	res, err = e.Query("SELECT f, v, c FROM " + tb.Table + " ORDER BY f")
	if err != nil {
		t.Fatal(err)
	}
	wantB := [][3]int64{{1, 1, 2}, {3, 2, 3}, {6, 1, 2}, {8, 3, 5}}
	if len(res.Rows) != len(wantB) {
		t.Fatalf("Tb rows = %v", res.Rows)
	}
	for i, w := range wantB {
		r := res.Rows[i]
		if r[0].Int() != w[0] || r[1].Int() != w[1] || r[2].Int() != w[2] {
			t.Errorf("Tb row %d = %v, want %v", i, r, w)
		}
	}
	// Tc barely compresses (9 runs over 12 rows), so it uses the dense (f, v)
	// representation, exactly like T_C in Figure 3(b).
	tc, _ := d.Column("c")
	if !tc.Dense {
		t.Errorf("column c should use the dense representation (runs=%d)", tc.Runs)
	}
	res, err = e.Query("SELECT f, v FROM " + tc.Table + " ORDER BY f")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 {
		t.Fatalf("Tc rows = %d, want 12", len(res.Rows))
	}
	if res.Rows[0][1].Int() != 1 || res.Rows[1][1].Int() != 4 || res.Rows[11][1].Int() != 4 {
		t.Errorf("Tc values wrong: first=%v second=%v last=%v", res.Rows[0], res.Rows[1], res.Rows[11])
	}
	// The invariants of Section 2.2.1 hold.
	if err := b.Verify(d); err != nil {
		t.Errorf("Verify: %v", err)
	}
	// Design helpers.
	if !d.HasColumn("A") || d.HasColumn("z") {
		t.Error("HasColumn wrong")
	}
	if d.TotalRuns() != 2+4+12 {
		t.Errorf("TotalRuns = %d", d.TotalRuns())
	}
	// The secondary covering index on v exists on each c-table.
	tab, err := e.Catalog().Table(ta.Table)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Secondary) != 1 {
		t.Errorf("expected a value index on %s", ta.Table)
	}
}

func TestRunsBreakOnEarlierSortColumns(t *testing.T) {
	// Column values that repeat across a boundary of the previous sort column
	// must still start a new run (the paper's "additionally agree with all the
	// previous sort columns").
	e := engine.Default()
	if _, err := e.Execute("CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b))"); err != nil {
		t.Fatal(err)
	}
	load := [][]value.Value{
		{value.NewInt(1), value.NewInt(7)},
		{value.NewInt(1), value.NewInt(7)},
		{value.NewInt(2), value.NewInt(7)}, // same b value, new a run
		{value.NewInt(2), value.NewInt(7)},
	}
	if err := e.BulkLoad("t", load); err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(e)
	b.DenseThreshold = 1.0 // force the run representation even for short runs
	d, err := b.Build("brk", "SELECT a, b FROM t", []string{"a", "b"}, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	tb, _ := d.Column("b")
	res, err := e.Query("SELECT f, v, c FROM " + tb.Table + " ORDER BY f")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("b should have 2 runs (split at the a boundary), got %d", len(res.Rows))
	}
	if res.Rows[0][2].Int() != 2 || res.Rows[1][2].Int() != 2 {
		t.Errorf("run lengths = %v", res.Rows)
	}
	if err := b.Verify(d); err != nil {
		t.Error(err)
	}
}

func TestBuildValidation(t *testing.T) {
	e := paperExampleEngine(t)
	b := NewBuilder(e)
	if _, err := b.Build("x", "SELECT a FROM t", nil, nil); err == nil {
		t.Error("empty column list should fail")
	}
	if _, err := b.Build("x", "SELECT a FROM missing", []string{"a"}, []string{"a"}); err == nil {
		t.Error("bad source SQL should fail")
	}
	if _, err := b.Build("x", "SELECT a FROM t", []string{"a", "zz"}, []string{"a"}); err == nil {
		t.Error("unknown column should fail")
	}
	if _, err := b.Build("x", "SELECT a FROM t", []string{"a"}, []string{"b"}); err == nil {
		t.Error("sort column outside design should fail")
	}
	// Building the same design twice collides on table names.
	if _, err := b.Build("dup", "SELECT a FROM t", []string{"a"}, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build("dup", "SELECT a FROM t", []string{"a"}, []string{"a"}); err == nil {
		t.Error("duplicate design should fail")
	}
}

func TestJoinSourceDesign(t *testing.T) {
	// A design over a join (like the paper's D2) encodes the join result.
	e := engine.Default()
	if _, err := e.Execute("CREATE TABLE o (ok INT, od DATE, PRIMARY KEY (ok))"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute("CREATE TABLE l (lk INT, ln INT, sk INT, sd DATE, PRIMARY KEY (lk, ln))"); err != nil {
		t.Fatal(err)
	}
	var oRows, lRows [][]value.Value
	base := value.MustParseDate("1995-01-01").Int()
	for i := 0; i < 50; i++ {
		oRows = append(oRows, []value.Value{value.NewInt(int64(i)), value.NewDate(base + int64(i%10))})
		for j := 0; j < 3; j++ {
			lRows = append(lRows, []value.Value{
				value.NewInt(int64(i)), value.NewInt(int64(j)),
				value.NewInt(int64((i + j) % 7)), value.NewDate(base + int64(i%10) + int64(j)),
			})
		}
	}
	if err := e.BulkLoad("o", oRows); err != nil {
		t.Fatal(err)
	}
	if err := e.BulkLoad("l", lRows); err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(e)
	d, err := b.Build("d2", "SELECT od, sk, sd FROM l, o WHERE lk = ok",
		[]string{"od", "sk", "sd"}, []string{"od", "sk"})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRows != 150 {
		t.Fatalf("design rows = %d, want 150", d.NumRows)
	}
	if err := b.Verify(d); err != nil {
		t.Error(err)
	}
	// The leading column compresses to at most 10 runs (10 distinct dates).
	od, _ := d.Column("od")
	if od.Runs > 10 {
		t.Errorf("od runs = %d, want <= 10", od.Runs)
	}
	// COUNT(*) over the design equals the source row count.
	sumC, err := e.Query("SELECT SUM(c) FROM " + od.Table)
	if err != nil {
		t.Fatal(err)
	}
	if sumC.Rows[0][0].Int() != 150 {
		t.Errorf("sum of run lengths = %v, want 150", sumC.Rows[0][0])
	}
	if TableName("D2", "OD") != "d2_od" {
		t.Errorf("TableName = %q", TableName("D2", "OD"))
	}
}

// TestCompressedCTableExecution: rewritten c-table queries (band joins,
// run-length aggregation) return identical results whether the engine's
// batch scans emit compressed vectors (the default) or flat ones, and the
// builder records the encoded column kinds.
func TestCompressedCTableExecution(t *testing.T) {
	build := func(disableCompressed bool) (*engine.Engine, *Design) {
		e := engine.New(engine.Options{TupleOverhead: -1, DisableCompressed: disableCompressed})
		if _, err := e.Execute("CREATE TABLE t (a INT, b INT, c INT, PRIMARY KEY (a, b, c))"); err != nil {
			t.Fatal(err)
		}
		var load [][]value.Value
		for i := 0; i < 600; i++ {
			load = append(load, []value.Value{
				value.NewInt(int64(i / 60)),
				value.NewInt(int64(i / 6 % 10)),
				value.NewInt(int64(i % 6)),
			})
		}
		if err := e.BulkLoad("t", load); err != nil {
			t.Fatal(err)
		}
		d, err := NewBuilder(e).Build("cd", "SELECT a, b, c FROM t", []string{"a", "b", "c"}, []string{"a", "b", "c"})
		if err != nil {
			t.Fatal(err)
		}
		return e, d
	}
	compressed, d := build(false)
	flat, _ := build(true)
	if !compressed.Compressed() || flat.Compressed() {
		t.Fatal("engine compression knobs are wrong")
	}
	ta, _ := d.Column("a")
	tb, _ := d.Column("b")
	queries := []string{
		// Band join driven by an equality on the leading column's v index —
		// the range-collapse shape where v arrives as a Const vector.
		"SELECT T1.v, SUM(T1.c) FROM " + ta.Table + " T0, " + tb.Table + " T1 " +
			"WHERE T0.v = 3 AND T1.f BETWEEN T0.f AND T0.f + T0.c - 1 GROUP BY T1.v",
		// Range predicate on v: qualifying runs arrive as RLE vectors.
		"SELECT v, SUM(c) FROM " + tb.Table + " WHERE v >= 5 GROUP BY v",
		// Full scan in f order with run-length aggregation.
		"SELECT v, SUM(c) FROM " + ta.Table + " GROUP BY v",
	}
	for _, q := range queries {
		cres, err := compressed.Query(q)
		if err != nil {
			t.Fatalf("compressed %q: %v", q, err)
		}
		fres, err := flat.Query(q)
		if err != nil {
			t.Fatalf("flat %q: %v", q, err)
		}
		if len(cres.Rows) == 0 {
			t.Fatalf("%q returned no rows", q)
		}
		if len(cres.Rows) != len(fres.Rows) {
			t.Fatalf("%q: %d rows compressed, %d flat", q, len(cres.Rows), len(fres.Rows))
		}
		for i := range cres.Rows {
			for j := range cres.Rows[i] {
				cv, fv := cres.Rows[i][j], fres.Rows[i][j]
				if cv.Kind != fv.Kind || value.Compare(cv, fv) != 0 {
					t.Errorf("%q row %d col %d: %v vs %v", q, i, j, cv, fv)
				}
			}
		}
	}
}

func TestSkipValueIndexOption(t *testing.T) {
	e := paperExampleEngine(t)
	b := NewBuilder(e)
	b.SkipValueIndex = true
	d, err := b.Build("noix", "SELECT a, b FROM t", []string{"a", "b"}, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	ta, _ := d.Column("a")
	tab, err := e.Catalog().Table(ta.Table)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Secondary) != 0 {
		t.Error("SkipValueIndex should suppress the v index")
	}
	if !strings.HasPrefix(ta.Table, "noix_") {
		t.Errorf("table name = %q", ta.Table)
	}
}
