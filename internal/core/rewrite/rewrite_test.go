package rewrite

import (
	"sort"
	"strings"
	"testing"

	"oldelephant/internal/core/ctable"
	"oldelephant/internal/engine"
	"oldelephant/internal/sql"
	"oldelephant/internal/value"
)

// testDB builds a small lineitem/orders/customer database plus the paper's
// D1, D2 and D4 c-table designs.
func testDB(t *testing.T) (*engine.Engine, map[string]*ctable.Design) {
	t.Helper()
	e := engine.Default()
	ddl := []string{
		`CREATE TABLE lineitem (l_orderkey BIGINT, l_suppkey INT, l_shipdate DATE,
			l_extendedprice DOUBLE, l_returnflag VARCHAR(1), PRIMARY KEY (l_orderkey))`,
		`CREATE TABLE orders (o_orderkey BIGINT, o_custkey INT, o_orderdate DATE, PRIMARY KEY (o_orderkey))`,
		`CREATE TABLE customer (c_custkey INT, c_nationkey INT, PRIMARY KEY (c_custkey))`,
	}
	for _, q := range ddl {
		if _, err := e.Execute(q); err != nil {
			t.Fatal(err)
		}
	}
	base := value.MustParseDate("1995-01-01").Int()
	var cust, ord, li [][]value.Value
	for c := 0; c < 25; c++ {
		cust = append(cust, []value.Value{value.NewInt(int64(c)), value.NewInt(int64(c % 5))})
	}
	for o := 0; o < 200; o++ {
		ord = append(ord, []value.Value{
			value.NewInt(int64(o)), value.NewInt(int64(o % 25)), value.NewDate(base + int64(o%40)),
		})
	}
	for i := 0; i < 2000; i++ {
		flag := "N"
		if i%5 == 0 {
			flag = "R"
		} else if i%5 == 1 {
			flag = "A"
		}
		li = append(li, []value.Value{
			value.NewInt(int64(i % 200)),
			value.NewInt(int64(i % 15)),
			value.NewDate(base + int64(i%60)),
			value.NewFloat(float64(100 + i%300)),
			value.NewString(flag),
		})
	}
	for table, rows := range map[string][][]value.Value{"customer": cust, "orders": ord, "lineitem": li} {
		if err := e.BulkLoad(table, rows); err != nil {
			t.Fatal(err)
		}
	}
	b := ctable.NewBuilder(e)
	designs := make(map[string]*ctable.Design)
	d1, err := b.Build("d1", "SELECT l_shipdate, l_suppkey FROM lineitem",
		[]string{"l_shipdate", "l_suppkey"}, []string{"l_shipdate", "l_suppkey"})
	if err != nil {
		t.Fatal(err)
	}
	designs["D1"] = d1
	d2, err := b.Build("d2",
		"SELECT o_orderdate, l_suppkey, l_shipdate FROM lineitem, orders WHERE l_orderkey = o_orderkey",
		[]string{"o_orderdate", "l_suppkey", "l_shipdate"}, []string{"o_orderdate", "l_suppkey"})
	if err != nil {
		t.Fatal(err)
	}
	designs["D2"] = d2
	d4, err := b.Build("d4",
		"SELECT l_returnflag, c_nationkey, l_extendedprice FROM lineitem, orders, customer WHERE l_orderkey = o_orderkey AND o_custkey = c_custkey",
		[]string{"l_returnflag", "c_nationkey", "l_extendedprice"}, []string{"l_returnflag"})
	if err != nil {
		t.Fatal(err)
	}
	designs["D4"] = d4
	return e, designs
}

// runBoth executes the original query and its rewriting and compares results
// as multisets of stringified rows.
func runBoth(t *testing.T, e *engine.Engine, r *Rewriter, query string) (origPlan, rewPlan string) {
	t.Helper()
	orig, err := e.Query(query)
	if err != nil {
		t.Fatalf("original query failed: %v\n%s", err, query)
	}
	rewritten, err := r.RewriteSQL(query)
	if err != nil {
		t.Fatalf("rewrite failed: %v\n%s", err, query)
	}
	rew, err := e.Query(rewritten)
	if err != nil {
		t.Fatalf("rewritten query failed: %v\n%s", err, rewritten)
	}
	a := rowsToStrings(orig.Rows)
	b := rowsToStrings(rew.Rows)
	if len(a) != len(b) {
		t.Fatalf("row counts differ: original %d, rewritten %d\nrewritten SQL: %s", len(a), len(b), rewritten)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs:\n  original:  %s\n  rewritten: %s\nrewritten SQL: %s", i, a[i], b[i], rewritten)
		}
	}
	return orig.Plan, rew.Plan
}

func rowsToStrings(rows [][]value.Value) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		var parts []string
		for _, v := range r {
			if v.Kind == value.KindFloat {
				// Tolerate float formatting differences by rounding.
				parts = append(parts, value.NewFloat(float64(int64(v.F*100+0.5))/100).String())
			} else {
				parts = append(parts, v.String())
			}
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

func TestQ1Rewrite(t *testing.T) {
	e, designs := testDB(t)
	r := New(designs["D1"])
	q := "SELECT l_shipdate, COUNT(*) FROM lineitem WHERE l_shipdate > DATE '1995-02-10' GROUP BY l_shipdate"
	runBoth(t, e, r, q)
	// The rewriting touches a single c-table and aggregates run lengths.
	rewritten, err := r.RewriteSQL(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rewritten, "d1_l_shipdate") || !strings.Contains(strings.ToUpper(rewritten), "SUM") {
		t.Errorf("unexpected rewriting: %s", rewritten)
	}
	if strings.Contains(rewritten, "d1_l_suppkey") {
		t.Errorf("Q1 should not touch the suppkey c-table: %s", rewritten)
	}
}

func TestQ2Q3Rewrites(t *testing.T) {
	e, designs := testDB(t)
	r := New(designs["D1"])
	// Q2: equality on shipdate, group by suppkey.
	runBoth(t, e, r, "SELECT l_suppkey, COUNT(*) FROM lineitem WHERE l_shipdate = DATE '1995-01-15' GROUP BY l_suppkey")
	// Q3: range on shipdate, group by suppkey; this is the paper's running example.
	q3 := "SELECT l_suppkey, COUNT(*) FROM lineitem WHERE l_shipdate > DATE '1995-02-01' GROUP BY l_suppkey"
	runBoth(t, e, r, q3)
	// With range collapse (the default) the rewriting contains a derived
	// table computing MIN(f)/MAX(f+c-1), as in Figure 4(b).
	rewritten, _ := r.RewriteSQL(q3)
	if !strings.Contains(strings.ToLower(rewritten), "xmin") || !strings.Contains(strings.ToLower(rewritten), "xmax") {
		t.Errorf("expected range-collapse rewriting, got: %s", rewritten)
	}
	// Without it, the band join of Figure 4(a) appears instead.
	r.DisableRangeCollapse = true
	plain, err := r.RewriteSQL(q3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.ToUpper(plain), "BETWEEN") || strings.Contains(strings.ToLower(plain), "xmin") {
		t.Errorf("expected plain band-join rewriting, got: %s", plain)
	}
	runBoth(t, e, r, q3)
	r.DisableRangeCollapse = false
	// Selectivity sweep: both rewritings agree with the original at every point.
	for _, d := range []string{"1995-01-01", "1995-01-20", "1995-02-20", "1995-03-01", "1999-01-01"} {
		runBoth(t, e, r, "SELECT l_suppkey, COUNT(*) FROM lineitem WHERE l_shipdate > DATE '"+d+"' GROUP BY l_suppkey")
	}
}

func TestQ4Q5Q6RewritesOverJoinDesign(t *testing.T) {
	e, designs := testDB(t)
	r := New(designs["D2"])
	queries := []string{
		// Q4: group by orderdate, MAX(shipdate), range on orderdate.
		"SELECT o_orderdate, MAX(l_shipdate) FROM lineitem, orders WHERE l_orderkey = o_orderkey AND o_orderdate > DATE '1995-01-20' GROUP BY o_orderdate",
		// Q5: equality on orderdate, group by suppkey.
		"SELECT l_suppkey, MAX(l_shipdate) FROM lineitem, orders WHERE l_orderkey = o_orderkey AND o_orderdate = DATE '1995-01-10' GROUP BY l_suppkey",
		// Q6: range on orderdate, group by suppkey.
		"SELECT l_suppkey, MAX(l_shipdate) FROM lineitem, orders WHERE l_orderkey = o_orderkey AND o_orderdate > DATE '1995-01-25' GROUP BY l_suppkey",
	}
	for _, q := range queries {
		runBoth(t, e, r, q)
	}
	// The join predicate l_orderkey = o_orderkey is absorbed by the design.
	rewritten, _ := r.RewriteSQL(queries[0])
	if strings.Contains(strings.ToLower(rewritten), "orderkey") {
		t.Errorf("join key should not appear in the rewriting: %s", rewritten)
	}
}

func TestQ7RewriteOverD4(t *testing.T) {
	e, designs := testDB(t)
	r := New(designs["D4"])
	q7 := `SELECT c_nationkey, SUM(l_extendedprice)
	       FROM lineitem, orders, customer
	       WHERE l_orderkey = o_orderkey AND o_custkey = c_custkey AND l_returnflag = 'R'
	       GROUP BY c_nationkey`
	runBoth(t, e, r, q7)
	rewritten, _ := r.RewriteSQL(q7)
	// SUM is over v weighted by the deepest run length (or plain v when the
	// deepest table is dense), and three c-tables are chained.
	up := strings.ToUpper(rewritten)
	if !strings.Contains(up, "SUM") {
		t.Errorf("Q7 rewriting missing SUM: %s", rewritten)
	}
	for _, tbl := range []string{"d4_l_returnflag", "d4_c_nationkey", "d4_l_extendedprice"} {
		if !strings.Contains(rewritten, tbl) {
			t.Errorf("Q7 rewriting missing %s: %s", tbl, rewritten)
		}
	}
}

func TestAggregateForms(t *testing.T) {
	e, designs := testDB(t)
	r := New(designs["D1"])
	// MIN, AVG, COUNT(col) and SUM over the group-by column itself.
	queries := []string{
		"SELECT l_suppkey, MIN(l_shipdate) FROM lineitem WHERE l_shipdate > DATE '1995-01-10' GROUP BY l_suppkey",
		"SELECT l_shipdate, SUM(l_suppkey) FROM lineitem WHERE l_shipdate > DATE '1995-02-20' GROUP BY l_shipdate",
		"SELECT COUNT(*) FROM lineitem WHERE l_shipdate > DATE '1995-02-01'",
		"SELECT l_shipdate, AVG(l_suppkey) FROM lineitem WHERE l_shipdate > DATE '1995-02-25' GROUP BY l_shipdate",
	}
	for _, q := range queries {
		runBoth(t, e, r, q)
	}
}

func TestOrderByAndLimitSurvive(t *testing.T) {
	e, designs := testDB(t)
	r := New(designs["D1"])
	q := "SELECT l_suppkey, COUNT(*) AS cnt FROM lineitem WHERE l_shipdate > DATE '1995-01-20' GROUP BY l_suppkey ORDER BY l_suppkey DESC LIMIT 5"
	rewritten, err := r.RewriteSQL(q)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	rew, err := e.Query(rewritten)
	if err != nil {
		t.Fatalf("%v\n%s", err, rewritten)
	}
	if len(orig.Rows) != 5 || len(rew.Rows) != 5 {
		t.Fatalf("LIMIT not preserved: %d vs %d", len(orig.Rows), len(rew.Rows))
	}
	for i := range orig.Rows {
		if value.Compare(orig.Rows[i][0], rew.Rows[i][0]) != 0 || value.Compare(orig.Rows[i][1], rew.Rows[i][1]) != 0 {
			t.Fatalf("ordered row %d differs: %v vs %v", i, orig.Rows[i], rew.Rows[i])
		}
	}
}

func TestRewriteErrors(t *testing.T) {
	_, designs := testDB(t)
	r := New(designs["D1"])
	bad := []string{
		"SELECT DISTINCT l_suppkey FROM lineitem",
		"SELECT l_partkey FROM lineitem GROUP BY l_partkey",                                        // column not in design
		"SELECT * FROM lineitem",                                                                   // star
		"SELECT l_suppkey FROM (SELECT l_suppkey FROM lineitem) d GROUP BY l_suppkey",              // derived table
		"SELECT l_suppkey, COUNT(*) FROM lineitem WHERE l_shipdate > l_suppkey GROUP BY l_suppkey", // non-equality join pred
		"SELECT l_suppkey + 1 FROM lineitem GROUP BY l_suppkey",                                    // expression select item
		"SELECT l_suppkey, COUNT(*) FROM lineitem GROUP BY l_suppkey HAVING COUNT(*) > 1",          // having
		"SELECT MAX(l_suppkey + 1) FROM lineitem",                                                  // non-column agg arg
		"SELECT 1",
	}
	for _, q := range bad {
		if _, err := r.RewriteSQL(q); err == nil {
			t.Errorf("expected rewrite error for %q", q)
		}
	}
	if _, err := r.RewriteSQL("not sql at all"); err == nil {
		t.Error("parse errors should propagate")
	}
}

func TestRewriteAST(t *testing.T) {
	_, designs := testDB(t)
	r := New(designs["D1"])
	stmt, err := sql.ParseSelect("SELECT l_suppkey, COUNT(*) FROM lineitem WHERE l_shipdate > DATE '1995-02-01' GROUP BY l_suppkey")
	if err != nil {
		t.Fatal(err)
	}
	out, err := r.Rewrite(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.From) != 2 {
		t.Errorf("rewritten FROM = %v", out.From)
	}
	if out.Limit != -1 {
		t.Errorf("rewritten limit = %d", out.Limit)
	}
	// Hints pass through.
	r.ExtraHints = []string{"LOOP JOIN"}
	out, err = r.Rewrite(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Hints) != 1 || out.Hints[0] != "LOOP JOIN" {
		t.Errorf("hints = %v", out.Hints)
	}
}
