// Package rewrite implements the paper's mechanical query rewriting: a
// SELECT over base tables is translated into an equivalent SELECT over the
// c-tables of a ctable.Design (Section 2.2.2), including the two
// optimizations of Section 2.2.3 that the paper calls out:
//
//   - aggregation over compressed data: COUNT(*) becomes SUM of run lengths,
//     SUM(x) becomes SUM(v*c), MIN/MAX operate on run values directly;
//   - the range-collapse rewriting of Figure 4(b): when the filtered column
//     is the design's leading sort column and is not needed in the output,
//     its qualifying runs are contiguous, so the band join can be driven by
//     a single (MIN(f), MAX(f+c-1)) pair computed in a derived table.
//
// The rewriter is purely syntactic (AST to AST); the row-store planner then
// turns the band joins into index-nested-loop plans on the c-tables'
// clustered f indexes and covering v indexes.
package rewrite

import (
	"fmt"
	"sort"
	"strings"

	"oldelephant/internal/core/ctable"
	"oldelephant/internal/sql"
	"oldelephant/internal/value"
)

// Rewriter rewrites queries against one c-table design.
type Rewriter struct {
	Design *ctable.Design
	// DisableRangeCollapse turns off the Figure 4(b) optimization so the
	// plain band-join rewriting of Figure 4(a) is produced instead.
	DisableRangeCollapse bool
	// ExtraHints are appended to the rewritten query's OPTION clause.
	ExtraHints []string
}

// New returns a rewriter over the given design.
func New(d *ctable.Design) *Rewriter { return &Rewriter{Design: d} }

// RewriteSQL parses a SELECT statement, rewrites it and renders it back to SQL.
func (r *Rewriter) RewriteSQL(query string) (string, error) {
	stmt, err := sql.ParseSelect(query)
	if err != nil {
		return "", err
	}
	out, err := r.Rewrite(stmt)
	if err != nil {
		return "", err
	}
	return out.String(), nil
}

// refInfo tracks one referenced source column and its c-table alias.
type refInfo struct {
	column string
	table  ctable.ColumnTable
	alias  string
	// filters are the predicate conjuncts on this column (already rewritten
	// to reference <alias>.v).
	filters []sql.Expr
	// collapsed marks the column as replaced by the range-collapse derived table.
	collapsed bool
	inOutput  bool
}

// Rewrite translates a base-table query into a c-table query.
func (r *Rewriter) Rewrite(stmt *sql.SelectStmt) (*sql.SelectStmt, error) {
	if stmt.Distinct {
		return nil, fmt.Errorf("rewrite: DISTINCT queries are not supported")
	}
	if len(stmt.From) == 0 {
		return nil, fmt.Errorf("rewrite: query has no FROM clause")
	}
	for _, f := range stmt.From {
		if f.Subquery != nil {
			return nil, fmt.Errorf("rewrite: derived tables are not supported")
		}
	}

	refs := make(map[string]*refInfo) // keyed by lower-case column name
	touch := func(col string) (*refInfo, error) {
		key := strings.ToLower(col)
		if ri, ok := refs[key]; ok {
			return ri, nil
		}
		ct, ok := r.Design.Column(col)
		if !ok {
			return nil, fmt.Errorf("rewrite: design %q does not encode column %q", r.Design.Name, col)
		}
		ri := &refInfo{column: ct.Column, table: ct}
		refs[key] = ri
		return ri, nil
	}

	// Classify WHERE conjuncts: single-column constant predicates become
	// predicates on the column's c-table values; equality joins between two
	// columns are the design's own join predicates and are dropped.
	for _, c := range splitConjuncts(stmt.Where) {
		col, rewritten, isJoin, err := classifyConjunct(c)
		if err != nil {
			return nil, err
		}
		if isJoin {
			continue
		}
		ri, err := touch(col)
		if err != nil {
			return nil, err
		}
		ri.filters = append(ri.filters, rewritten)
	}

	// Group-by columns.
	var groupCols []string
	for _, g := range stmt.GroupBy {
		ref, ok := g.(*sql.ColRef)
		if !ok {
			return nil, fmt.Errorf("rewrite: GROUP BY supports column references only")
		}
		ri, err := touch(ref.Column)
		if err != nil {
			return nil, err
		}
		ri.inOutput = true
		groupCols = append(groupCols, ri.column)
	}

	// Select items: plain group columns or aggregates over a single column.
	type outItem struct {
		isAgg  bool
		agg    string // COUNT/SUM/MIN/MAX/AVG
		column string // aggregate argument or group column
		star   bool
		alias  string
	}
	var items []outItem
	for _, item := range stmt.Select {
		if item.Star {
			return nil, fmt.Errorf("rewrite: SELECT * is not supported")
		}
		switch e := item.Expr.(type) {
		case *sql.ColRef:
			ri, err := touch(e.Column)
			if err != nil {
				return nil, err
			}
			ri.inOutput = true
			items = append(items, outItem{column: ri.column, alias: outputAlias(item, ri.column)})
		case *sql.FuncCall:
			if !e.IsAggregate() {
				return nil, fmt.Errorf("rewrite: unsupported function %q", e.Name)
			}
			it := outItem{isAgg: true, agg: e.Name, star: e.Star, alias: outputAlias(item, "")}
			if !e.Star {
				if len(e.Args) != 1 {
					return nil, fmt.Errorf("rewrite: aggregate %s expects one argument", e.Name)
				}
				argRef, ok := e.Args[0].(*sql.ColRef)
				if !ok {
					return nil, fmt.Errorf("rewrite: aggregate arguments must be plain columns, got %q", e.Args[0].String())
				}
				ri, err := touch(argRef.Column)
				if err != nil {
					return nil, err
				}
				ri.inOutput = true
				it.column = ri.column
			}
			items = append(items, it)
		default:
			return nil, fmt.Errorf("rewrite: unsupported select item %q", item.Expr.String())
		}
	}
	if len(refs) == 0 {
		return nil, fmt.Errorf("rewrite: query references no encodable columns")
	}

	// Order referenced columns by design depth and assign aliases T0, T1, ...
	ordered := make([]*refInfo, 0, len(refs))
	for _, ri := range refs {
		ordered = append(ordered, ri)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].table.Depth < ordered[j].table.Depth })
	for i, ri := range ordered {
		ri.alias = fmt.Sprintf("T%d", i)
	}

	// Range-collapse optimization: the shallowest referenced column is the
	// design's leading column, it is filtered, and it is not in the output.
	collapse := false
	lead := ordered[0]
	if !r.DisableRangeCollapse && len(ordered) > 1 &&
		len(lead.filters) > 0 && !lead.inOutput &&
		strings.EqualFold(lead.table.Column, r.Design.Columns[0].Column) {
		collapse = true
		lead.collapsed = true
	}

	out := &sql.SelectStmt{Limit: stmt.Limit, Offset: stmt.Offset}
	out.Hints = append(out.Hints, r.ExtraHints...)

	var where []sql.Expr
	// FROM clause and band-join chain.
	if collapse {
		sub := r.collapseSubquery(lead)
		out.From = append(out.From, sql.TableRef{Subquery: sub, Alias: lead.alias + "Agg"})
		// The first non-collapsed table joins to the collapsed range.
		next := ordered[1]
		out.From = append(out.From, sql.TableRef{Table: next.table.Table, Alias: next.alias})
		where = append(where, &sql.BetweenExpr{
			E:  col(next.alias, "f"),
			Lo: col(lead.alias+"Agg", "xmin"),
			Hi: col(lead.alias+"Agg", "xmax"),
		})
		for i := 2; i < len(ordered); i++ {
			out.From = append(out.From, sql.TableRef{Table: ordered[i].table.Table, Alias: ordered[i].alias})
			where = append(where, bandJoin(ordered[i-1], ordered[i]))
		}
	} else {
		for i, ri := range ordered {
			out.From = append(out.From, sql.TableRef{Table: ri.table.Table, Alias: ri.alias})
			if i > 0 {
				where = append(where, bandJoin(ordered[i-1], ri))
			}
		}
	}
	// Filters on non-collapsed columns.
	for _, ri := range ordered {
		if ri.collapsed {
			continue
		}
		for _, f := range ri.filters {
			where = append(where, qualify(f, ri.alias))
		}
	}
	out.Where = andAll(where)

	// Deepest referenced table drives run-length aggregation.
	deepest := ordered[len(ordered)-1]

	// SELECT list.
	aliasOf := func(colName string) string {
		return refs[strings.ToLower(colName)].alias
	}
	for _, it := range items {
		switch {
		case !it.isAgg:
			out.Select = append(out.Select, sql.SelectItem{
				Expr:  col(aliasOf(it.column), "v"),
				Alias: it.alias,
			})
		case it.agg == "COUNT":
			out.Select = append(out.Select, sql.SelectItem{Expr: countExpr(deepest), Alias: it.alias})
		case it.agg == "SUM":
			out.Select = append(out.Select, sql.SelectItem{
				Expr:  sumExpr(aliasOf(it.column), deepest),
				Alias: it.alias,
			})
		case it.agg == "AVG":
			out.Select = append(out.Select, sql.SelectItem{
				Expr:  &sql.BinExpr{Op: "/", L: sumExpr(aliasOf(it.column), deepest), R: countExpr(deepest)},
				Alias: it.alias,
			})
		case it.agg == "MIN" || it.agg == "MAX":
			out.Select = append(out.Select, sql.SelectItem{
				Expr:  &sql.FuncCall{Name: it.agg, Args: []sql.Expr{col(aliasOf(it.column), "v")}},
				Alias: it.alias,
			})
		default:
			return nil, fmt.Errorf("rewrite: unsupported aggregate %q", it.agg)
		}
	}

	// GROUP BY and ORDER BY.
	for _, g := range groupCols {
		out.GroupBy = append(out.GroupBy, col(aliasOf(g), "v"))
	}
	for _, o := range stmt.OrderBy {
		ref, ok := o.Expr.(*sql.ColRef)
		if !ok {
			return nil, fmt.Errorf("rewrite: ORDER BY supports column references only")
		}
		// Order by the output label, which the rewriting preserves.
		out.OrderBy = append(out.OrderBy, sql.OrderItem{Expr: &sql.ColRef{Column: outputLabelFor(stmt, ref)}, Desc: o.Desc})
	}
	if stmt.Having != nil {
		return nil, fmt.Errorf("rewrite: HAVING is not supported")
	}
	return out, nil
}

// outputAlias labels a rewritten select item so the result columns line up
// with the original query's.
func outputAlias(item sql.SelectItem, fallback string) string {
	if item.Alias != "" {
		return item.Alias
	}
	if ref, ok := item.Expr.(*sql.ColRef); ok {
		return ref.Column
	}
	if fallback != "" {
		return fallback
	}
	return sanitizeAlias(item.Expr.String())
}

// outputLabelFor resolves the label an ORDER BY reference will have in the
// rewritten output (the original alias, or the bare column name).
func outputLabelFor(stmt *sql.SelectStmt, ref *sql.ColRef) string {
	for _, item := range stmt.Select {
		if item.Star {
			continue
		}
		if r, ok := item.Expr.(*sql.ColRef); ok && strings.EqualFold(r.Column, ref.Column) {
			return outputAlias(item, r.Column)
		}
	}
	return ref.Column
}

// sanitizeAlias turns an arbitrary expression rendering into an identifier.
func sanitizeAlias(s string) string {
	var sb strings.Builder
	for _, r := range s {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '_' {
			sb.WriteRune(r)
		} else {
			sb.WriteRune('_')
		}
	}
	return sb.String()
}

// collapseSubquery builds the Figure 4(b) derived table for the leading,
// filtered, non-output column: SELECT MIN(f) AS xmin, MAX(f+c-1) AS xmax ...
func (r *Rewriter) collapseSubquery(lead *refInfo) *sql.SelectStmt {
	var hiExpr sql.Expr = col("", "f")
	if !lead.table.Dense {
		hiExpr = &sql.BinExpr{Op: "-",
			L: &sql.BinExpr{Op: "+", L: col("", "f"), R: col("", "c")},
			R: &sql.Literal{Val: intLit(1)}}
	}
	sub := &sql.SelectStmt{
		Limit: -1,
		Select: []sql.SelectItem{
			{Expr: &sql.FuncCall{Name: "MIN", Args: []sql.Expr{col("", "f")}}, Alias: "xmin"},
			{Expr: &sql.FuncCall{Name: "MAX", Args: []sql.Expr{hiExpr}}, Alias: "xmax"},
		},
		From: []sql.TableRef{{Table: lead.table.Table}},
	}
	var preds []sql.Expr
	for _, f := range lead.filters {
		preds = append(preds, qualify(f, ""))
	}
	sub.Where = andAll(preds)
	return sub
}

// bandJoin builds deeper.f BETWEEN shallower.f AND shallower.f + shallower.c - 1
// (or an equality when the shallower table is dense, i.e. every run has length 1).
func bandJoin(shallower, deeper *refInfo) sql.Expr {
	if shallower.table.Dense {
		return &sql.BinExpr{Op: "=", L: col(deeper.alias, "f"), R: col(shallower.alias, "f")}
	}
	return &sql.BetweenExpr{
		E:  col(deeper.alias, "f"),
		Lo: col(shallower.alias, "f"),
		Hi: &sql.BinExpr{Op: "-",
			L: &sql.BinExpr{Op: "+", L: col(shallower.alias, "f"), R: col(shallower.alias, "c")},
			R: &sql.Literal{Val: intLit(1)}},
	}
}

// countExpr implements COUNT(*) over the band-join result: the sum of the
// deepest table's run lengths (or a plain COUNT(*) when that table is dense).
func countExpr(deepest *refInfo) sql.Expr {
	if deepest.table.Dense {
		return &sql.FuncCall{Name: "COUNT", Star: true}
	}
	return &sql.FuncCall{Name: "SUM", Args: []sql.Expr{col(deepest.alias, "c")}}
}

// sumExpr implements SUM(x): the run value of x's c-table weighted by the run
// length of the deepest referenced table.
func sumExpr(argAlias string, deepest *refInfo) sql.Expr {
	if deepest.table.Dense {
		return &sql.FuncCall{Name: "SUM", Args: []sql.Expr{col(argAlias, "v")}}
	}
	return &sql.FuncCall{Name: "SUM", Args: []sql.Expr{
		&sql.BinExpr{Op: "*", L: col(argAlias, "v"), R: col(deepest.alias, "c")},
	}}
}

// classifyConjunct splits a WHERE conjunct into either a single-column
// constant predicate (returning the column and the predicate rewritten onto
// the placeholder column "v") or a column-to-column equality join.
func classifyConjunct(c sql.Expr) (column string, rewritten sql.Expr, isJoin bool, err error) {
	switch e := c.(type) {
	case *sql.BinExpr:
		lRef, lIsRef := e.L.(*sql.ColRef)
		rRef, rIsRef := e.R.(*sql.ColRef)
		if lIsRef && rIsRef {
			if e.Op == "=" {
				return "", nil, true, nil
			}
			return "", nil, false, fmt.Errorf("rewrite: unsupported join predicate %q", c.String())
		}
		if lIsRef && isConstant(e.R) {
			return lRef.Column, &sql.BinExpr{Op: e.Op, L: col("", "v"), R: e.R}, false, nil
		}
		if rIsRef && isConstant(e.L) {
			return rRef.Column, &sql.BinExpr{Op: flip(e.Op), L: col("", "v"), R: e.L}, false, nil
		}
		return "", nil, false, fmt.Errorf("rewrite: unsupported predicate %q", c.String())
	case *sql.BetweenExpr:
		ref, ok := e.E.(*sql.ColRef)
		if !ok || !isConstant(e.Lo) || !isConstant(e.Hi) || e.Not {
			return "", nil, false, fmt.Errorf("rewrite: unsupported predicate %q", c.String())
		}
		return ref.Column, &sql.BetweenExpr{E: col("", "v"), Lo: e.Lo, Hi: e.Hi}, false, nil
	case *sql.InExpr:
		ref, ok := e.E.(*sql.ColRef)
		if !ok || e.Not {
			return "", nil, false, fmt.Errorf("rewrite: unsupported predicate %q", c.String())
		}
		for _, item := range e.List {
			if !isConstant(item) {
				return "", nil, false, fmt.Errorf("rewrite: unsupported predicate %q", c.String())
			}
		}
		return ref.Column, &sql.InExpr{E: col("", "v"), List: e.List}, false, nil
	default:
		return "", nil, false, fmt.Errorf("rewrite: unsupported predicate %q", c.String())
	}
}

func isConstant(e sql.Expr) bool {
	switch t := e.(type) {
	case *sql.Literal:
		return true
	case *sql.BinExpr:
		return isConstant(t.L) && isConstant(t.R)
	default:
		return false
	}
}

func flip(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	default:
		return op
	}
}

// qualify rewrites the placeholder unqualified "v"/"f"/"c" references in a
// predicate to belong to the given alias (empty alias leaves them unqualified).
func qualify(e sql.Expr, alias string) sql.Expr {
	switch t := e.(type) {
	case *sql.ColRef:
		if t.Table == "" {
			return &sql.ColRef{Table: alias, Column: t.Column}
		}
		return t
	case *sql.BinExpr:
		return &sql.BinExpr{Op: t.Op, L: qualify(t.L, alias), R: qualify(t.R, alias)}
	case *sql.BetweenExpr:
		return &sql.BetweenExpr{E: qualify(t.E, alias), Lo: qualify(t.Lo, alias), Hi: qualify(t.Hi, alias), Not: t.Not}
	case *sql.InExpr:
		list := make([]sql.Expr, len(t.List))
		for i, item := range t.List {
			list[i] = qualify(item, alias)
		}
		return &sql.InExpr{E: qualify(t.E, alias), List: list, Not: t.Not}
	case *sql.NotExpr:
		return &sql.NotExpr{E: qualify(t.E, alias)}
	default:
		return e
	}
}

// col builds a (possibly qualified) column reference.
func col(table, name string) *sql.ColRef { return &sql.ColRef{Table: table, Column: name} }

func andAll(preds []sql.Expr) sql.Expr {
	var out sql.Expr
	for _, p := range preds {
		if p == nil {
			continue
		}
		if out == nil {
			out = p
		} else {
			out = &sql.BinExpr{Op: "AND", L: out, R: p}
		}
	}
	return out
}

func splitConjuncts(e sql.Expr) []sql.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*sql.BinExpr); ok && b.Op == "AND" {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []sql.Expr{e}
}

func intLit(i int64) value.Value { return value.NewInt(i) }
