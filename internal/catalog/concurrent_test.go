package catalog

import (
	"fmt"
	"sync"
	"testing"

	"oldelephant/internal/storage"
	"oldelephant/internal/value"
)

// newSeekTable builds a clustered table (id, grp, amount) with a covering
// secondary index on (grp, id), large enough to span many leaf pages.
func newSeekTable(t *testing.T, rows int) (*Catalog, *Table, *Index) {
	t.Helper()
	c := New(storage.NewPager(0), -1)
	tbl, err := c.CreateTable("items", []Column{
		{Name: "id", Kind: value.KindInt},
		{Name: "grp", Kind: value.KindInt},
		{Name: "amount", Kind: value.KindFloat},
	}, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	data := make([][]value.Value, rows)
	for i := range data {
		data[i] = []value.Value{
			value.NewInt(int64(i)),
			value.NewInt(int64(i % 50)),
			value.NewFloat(float64(i % 997)),
		}
	}
	if err := tbl.BulkLoad(data); err != nil {
		t.Fatal(err)
	}
	ix, err := c.CreateIndex("items_grp", "items", []string{"grp", "id"}, []string{"amount"}, false)
	if err != nil {
		t.Fatal(err)
	}
	return c, tbl, ix
}

// drainRows concatenates a list of row iterators.
func drainRows(t *testing.T, its []*RowIterator) []string {
	t.Helper()
	var out []string
	for _, it := range its {
		for {
			row, ok, err := it.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			out = append(out, fmt.Sprint(row))
		}
	}
	return out
}

// TestClusteredSeekMorselsReproduceSeek: for a sweep of bound shapes,
// concatenating a partitioned seek's morsel iterators equals the serial
// SeekClustered stream exactly.
func TestClusteredSeekMorselsReproduceSeek(t *testing.T) {
	_, tbl, _ := newSeekTable(t, 20000)
	iv := func(n int64) []value.Value { return []value.Value{value.NewInt(n)} }
	cases := []struct {
		name           string
		lo, hi         []value.Value
		loIncl, hiIncl bool
	}{
		{"interior", iv(3000), iv(12000), true, true},
		{"exclusive", iv(3000), iv(12000), false, false},
		{"open-lo", nil, iv(9000), false, true},
		{"open-hi", iv(15000), nil, true, false},
		{"equality", iv(7777), iv(7777), true, true},
		{"empty", iv(25000), iv(30000), true, true},
	}
	for _, tc := range cases {
		serial, err := tbl.SeekClustered(tc.lo, tc.hi, tc.loIncl, tc.hiIncl)
		if err != nil {
			t.Fatal(err)
		}
		want := drainRows(t, []*RowIterator{serial})
		rng, err := tbl.ClusteredSeekRange(tc.lo, tc.hi, tc.loIncl, tc.hiIncl)
		if err != nil {
			t.Fatal(err)
		}
		for _, target := range []int64{500, 2000, 1 << 30} {
			morsels := tbl.ClusteredSeekMorsels(rng, target)
			its := make([]*RowIterator, len(morsels))
			for i, m := range morsels {
				its[i] = m.Iterator()
			}
			got := drainRows(t, its)
			if len(got) != len(want) {
				t.Errorf("%s target=%d: got %d rows, want %d (over %d morsels)",
					tc.name, target, len(got), len(want), len(morsels))
				continue
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("%s target=%d: row %d = %s, want %s", tc.name, target, i, got[i], want[i])
					break
				}
			}
		}
		// The row estimate must be in the right ballpark for non-empty
		// interior ranges (it gates parallelization).
		if tc.name == "interior" {
			est := rng.EstRows()
			if est < int64(len(want))/2 || est > 2*int64(len(want))+1000 {
				t.Errorf("interior range EstRows = %d for %d actual rows", est, len(want))
			}
		}
	}
}

// TestIndexSeekMorselsReproduceSeek: same contract for secondary-index seeks
// (entries, including the duplicate-key runs a grp index has).
func TestIndexSeekMorselsReproduceSeek(t *testing.T) {
	_, _, ix := newSeekTable(t, 20000)
	iv := func(n int64) []value.Value { return []value.Value{value.NewInt(n)} }
	cases := []struct {
		name           string
		lo, hi         []value.Value
		loIncl, hiIncl bool
	}{
		{"range", iv(10), iv(30), true, true},
		{"equality", iv(25), iv(25), true, true},
		{"open-lo", nil, iv(5), false, true},
		{"empty", iv(60), iv(70), true, true},
	}
	drainEntries := func(its []*IndexIterator) []string {
		var out []string
		for _, it := range its {
			for {
				e, ok, err := it.Next()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
				out = append(out, fmt.Sprint(e.Values))
			}
		}
		return out
	}
	for _, tc := range cases {
		want := drainEntries([]*IndexIterator{ix.Seek(tc.lo, tc.hi, tc.loIncl, tc.hiIncl)})
		rng := ix.SeekRange(tc.lo, tc.hi, tc.loIncl, tc.hiIncl)
		for _, target := range []int64{300, 4000} {
			morsels := ix.SeekMorsels(rng, target)
			its := make([]*IndexIterator, len(morsels))
			for i, m := range morsels {
				its[i] = m.Iterator()
			}
			got := drainEntries(its)
			if len(got) != len(want) {
				t.Errorf("%s target=%d: got %d entries, want %d", tc.name, target, len(got), len(want))
				continue
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("%s target=%d: entry %d = %s, want %s", tc.name, target, i, got[i], want[i])
					break
				}
			}
		}
	}
}

// TestConcurrentCatalogReads pins the read-path thread-safety contract under
// the race detector: concurrent sessions scanning, seeking, partitioning
// morsels and reading optimizer statistics of shared tables — every shared
// structure a concurrent SELECT touches below the engine.
func TestConcurrentCatalogReads(t *testing.T) {
	c, tbl, ix := newSeekTable(t, 20000)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 15; iter++ {
				// Full-scan morsels (races to fill the btree leaf cache).
				count := 0
				for _, m := range tbl.ScanMorsels(4096) {
					it := m.Iterator()
					for {
						_, ok, err := it.Next()
						if err != nil {
							errs <- err
							return
						}
						if !ok {
							break
						}
						count++
					}
				}
				if count != 20000 {
					errs <- fmt.Errorf("scan morsels yielded %d rows, want 20000", count)
					return
				}
				// Clustered range seek + morsels.
				lo := []value.Value{value.NewInt(int64(g * 1000))}
				hi := []value.Value{value.NewInt(int64(g*1000 + 2000))}
				rng, err := tbl.ClusteredSeekRange(lo, hi, true, false)
				if err != nil {
					errs <- err
					return
				}
				n := 0
				for _, m := range tbl.ClusteredSeekMorsels(rng, 1000) {
					it := m.Iterator()
					for {
						_, ok, err := it.Next()
						if err != nil {
							errs <- err
							return
						}
						if !ok {
							break
						}
						n++
					}
				}
				if n != 2000 {
					errs <- fmt.Errorf("seek morsels yielded %d rows, want 2000", n)
					return
				}
				// Index seek, catalog lookups, stats reads.
				it := ix.Seek([]value.Value{value.NewInt(int64(g % 50))}, []value.Value{value.NewInt(int64(g % 50))}, true, true)
				for {
					_, ok, err := it.Next()
					if err != nil {
						errs <- err
						return
					}
					if !ok {
						break
					}
				}
				if _, err := c.Table("items"); err != nil {
					errs <- err
					return
				}
				_ = tbl.Stats.DistinctCount(1)
				_, _ = tbl.Stats.MinMax(2)
				_ = tbl.Stats.EstimatedDataPages(9)
				_ = tbl.RowCount()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
