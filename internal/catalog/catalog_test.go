package catalog

import (
	"fmt"
	"math/rand"
	"testing"

	"oldelephant/internal/storage"
	"oldelephant/internal/value"
)

func newTestCatalog() *Catalog {
	return New(storage.NewPager(0), -1)
}

func lineitemColumns() []Column {
	return []Column{
		{Name: "l_orderkey", Kind: value.KindInt},
		{Name: "l_suppkey", Kind: value.KindInt},
		{Name: "l_shipdate", Kind: value.KindDate},
		{Name: "l_extendedprice", Kind: value.KindFloat},
		{Name: "l_returnflag", Kind: value.KindString},
	}
}

func TestCreateAndLookupTable(t *testing.T) {
	c := newTestCatalog()
	tb, err := c.CreateTable("lineitem", lineitemColumns(), []string{"l_orderkey"})
	if err != nil {
		t.Fatal(err)
	}
	if !tb.IsClustered() {
		t.Error("table should be clustered")
	}
	if _, err := c.CreateTable("lineitem", lineitemColumns(), nil); err == nil {
		t.Error("duplicate table creation should fail")
	}
	if _, err := c.CreateTable("empty", nil, nil); err == nil {
		t.Error("table without columns should fail")
	}
	if _, err := c.CreateTable("dup", []Column{{Name: "a"}, {Name: "A"}}, nil); err == nil {
		t.Error("duplicate column names should fail")
	}
	if _, err := c.CreateTable("badkey", []Column{{Name: "a"}}, []string{"nope"}); err == nil {
		t.Error("clustered key on missing column should fail")
	}
	got, err := c.Table("LINEITEM")
	if err != nil || got != tb {
		t.Error("case-insensitive lookup failed")
	}
	if _, err := c.Table("missing"); err == nil {
		t.Error("lookup of missing table should fail")
	}
	if !c.HasTable("lineitem") || c.HasTable("nope") {
		t.Error("HasTable wrong")
	}
	if n := len(c.Tables()); n != 1 {
		t.Errorf("Tables() returned %d", n)
	}
	if err := c.DropTable("lineitem"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropTable("lineitem"); err == nil {
		t.Error("double drop should fail")
	}
}

func TestColumnHelpers(t *testing.T) {
	c := newTestCatalog()
	tb, _ := c.CreateTable("t", lineitemColumns(), nil)
	if tb.ColumnIndex("L_SHIPDATE") != 2 {
		t.Error("ColumnIndex should be case-insensitive")
	}
	if tb.ColumnIndex("nope") != -1 {
		t.Error("missing column should be -1")
	}
	names := tb.ColumnNames()
	if len(names) != 5 || names[0] != "l_orderkey" {
		t.Errorf("ColumnNames = %v", names)
	}
}

func makeRow(orderkey, suppkey int64, shipdate string, price float64, flag string) []value.Value {
	return []value.Value{
		value.NewInt(orderkey),
		value.NewInt(suppkey),
		value.MustParseDate(shipdate),
		value.NewFloat(price),
		value.NewString(flag),
	}
}

func TestInsertAndScanClustered(t *testing.T) {
	c := newTestCatalog()
	tb, _ := c.CreateTable("lineitem", lineitemColumns(), []string{"l_shipdate", "l_suppkey"})
	// Insert in random order; scan must come back sorted by (shipdate, suppkey).
	rng := rand.New(rand.NewSource(3))
	const n = 2000
	for i := 0; i < n; i++ {
		day := 1 + rng.Intn(28)
		row := makeRow(int64(i), int64(rng.Intn(50)), fmt.Sprintf("1995-03-%02d", day), 100.5, "N")
		if err := tb.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	if tb.RowCount() != n {
		t.Fatalf("RowCount = %d", tb.RowCount())
	}
	it := tb.Scan()
	var prev []value.Value
	count := 0
	for {
		row, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if prev != nil {
			cmpDate := value.Compare(prev[2], row[2])
			if cmpDate > 0 || (cmpDate == 0 && value.Compare(prev[1], row[1]) > 0) {
				t.Fatalf("clustered scan out of order at row %d", count)
			}
		}
		prev = row
		count++
	}
	if count != n {
		t.Fatalf("scan saw %d rows", count)
	}
	if tb.DataPages() == 0 {
		t.Error("clustered table should report data pages")
	}
	// Wrong arity is rejected.
	if err := tb.Insert([]value.Value{value.NewInt(1)}); err == nil {
		t.Error("wrong arity insert should fail")
	}
}

func TestSeekClustered(t *testing.T) {
	c := newTestCatalog()
	tb, _ := c.CreateTable("lineitem", lineitemColumns(), []string{"l_shipdate", "l_suppkey"})
	var rows [][]value.Value
	for day := 1; day <= 20; day++ {
		for supp := 0; supp < 5; supp++ {
			rows = append(rows, makeRow(int64(day*100+supp), int64(supp), fmt.Sprintf("1995-03-%02d", day), 10, "N"))
		}
	}
	if err := tb.BulkLoad(rows); err != nil {
		t.Fatal(err)
	}
	lo := []value.Value{value.MustParseDate("1995-03-05")}
	hi := []value.Value{value.MustParseDate("1995-03-07")}
	it, err := tb.SeekClustered(lo, hi, true, true)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		row, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		d := row[2].String()
		if d < "1995-03-05" || d > "1995-03-07" {
			t.Errorf("row outside range: %s", d)
		}
		count++
	}
	if count != 15 {
		t.Errorf("range scan saw %d rows, want 15", count)
	}
	// Exclusive lower bound skips the boundary day.
	it, _ = tb.SeekClustered(lo, hi, false, true)
	count = 0
	for {
		_, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		count++
	}
	if count != 10 {
		t.Errorf("exclusive-low range saw %d rows, want 10", count)
	}
	// Heap tables refuse clustered seeks.
	heapTb, _ := c.CreateTable("h", lineitemColumns(), nil)
	if _, err := heapTb.SeekClustered(lo, hi, true, true); err == nil {
		t.Error("SeekClustered on heap should fail")
	}
}

func TestHeapTableAndRIDLookup(t *testing.T) {
	c := newTestCatalog()
	tb, _ := c.CreateTable("h", lineitemColumns(), nil)
	for i := 0; i < 100; i++ {
		if err := tb.Insert(makeRow(int64(i), int64(i%7), "1996-01-01", float64(i), "R")); err != nil {
			t.Fatal(err)
		}
	}
	if tb.IsClustered() {
		t.Error("heap table should not be clustered")
	}
	if tb.RowCount() != 100 {
		t.Errorf("RowCount = %d", tb.RowCount())
	}
	// Index on a heap table stores RIDs that can be chased back to rows.
	idx, err := c.CreateIndex("h_supp", "h", []string{"l_suppkey"}, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	it := idx.Seek([]value.Value{value.NewInt(3)}, []value.Value{value.NewInt(3)}, true, true)
	found := 0
	for {
		e, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if !e.RID.Valid() {
			t.Fatal("heap index entry missing RID")
		}
		row, err := tb.LookupRID(e.RID)
		if err != nil {
			t.Fatal(err)
		}
		if row[1].Int() != 3 {
			t.Errorf("RID lookup returned suppkey %v", row[1])
		}
		found++
	}
	if found != 14 { // suppkey = i%7 == 3 for i in {3,10,...,94}: 14 rows
		t.Errorf("found %d rows with suppkey 3, want 14", found)
	}
	// LookupRID on clustered tables is an error.
	cl, _ := c.CreateTable("cl", lineitemColumns(), []string{"l_orderkey"})
	if _, err := cl.LookupRID(storage.RID{Page: 1}); err == nil {
		t.Error("LookupRID on clustered table should fail")
	}
}

func TestSecondaryIndexCoveringAndSeek(t *testing.T) {
	c := newTestCatalog()
	tb, _ := c.CreateTable("lineitem", lineitemColumns(), []string{"l_shipdate", "l_suppkey"})
	var rows [][]value.Value
	for i := 0; i < 1000; i++ {
		rows = append(rows, makeRow(int64(i), int64(i%10), fmt.Sprintf("1995-%02d-15", 1+i%12), float64(i), "N"))
	}
	if err := tb.BulkLoad(rows); err != nil {
		t.Fatal(err)
	}
	idx, err := c.CreateIndex("ix_supp", "lineitem", []string{"l_suppkey"}, []string{"l_extendedprice"}, false)
	if err != nil {
		t.Fatal(err)
	}
	// Covers: key col, included col, clustered key cols.
	if !idx.Covers([]int{1, 3, 2}) {
		t.Error("index should cover suppkey, price and shipdate")
	}
	if idx.Covers([]int{0}) {
		t.Error("index should not cover l_orderkey")
	}
	if idx.Covers([]int{4}) {
		t.Error("index should not cover l_returnflag")
	}
	names := idx.KeyColumnNames()
	if len(names) != 1 || names[0] != "l_suppkey" {
		t.Errorf("KeyColumnNames = %v", names)
	}
	// Seek suppkey = 4: 100 entries, each exposing price and shipdate.
	it := idx.Seek([]value.Value{value.NewInt(4)}, []value.Value{value.NewInt(4)}, true, true)
	ords := idx.EntryColumnOrdinals()
	count := 0
	for {
		e, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if len(e.Values) != len(ords) {
			t.Fatalf("entry has %d values, want %d", len(e.Values), len(ords))
		}
		if e.Values[0].Int() != 4 {
			t.Errorf("entry key = %v", e.Values[0])
		}
		count++
	}
	if count != 100 {
		t.Errorf("seek found %d entries, want 100", count)
	}
	// Full index scan is ordered by key.
	scan := idx.ScanAll()
	prev := int64(-1)
	total := 0
	for {
		e, ok, err := scan.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if e.Values[0].Int() < prev {
			t.Fatal("index scan out of order")
		}
		prev = e.Values[0].Int()
		total++
	}
	if total != 1000 {
		t.Errorf("index scan saw %d entries", total)
	}
	// Errors: duplicate index name, missing columns, unique violation.
	if _, err := c.CreateIndex("ix_supp", "lineitem", []string{"l_suppkey"}, nil, false); err == nil {
		t.Error("duplicate index name should fail")
	}
	if _, err := c.CreateIndex("ix_bad", "lineitem", []string{"missing"}, nil, false); err == nil {
		t.Error("index on missing column should fail")
	}
	if _, err := c.CreateIndex("ix_badinc", "lineitem", []string{"l_suppkey"}, []string{"missing"}, false); err == nil {
		t.Error("include of missing column should fail")
	}
	if _, err := c.CreateIndex("ix_uniq", "lineitem", []string{"l_suppkey"}, nil, true); err == nil {
		t.Error("unique index over duplicate values should fail")
	}
	if _, err := c.CreateIndex("ix_ok_uniq", "lineitem", []string{"l_orderkey"}, nil, true); err != nil {
		t.Errorf("unique index over unique values failed: %v", err)
	}
	if _, err := c.CreateIndex("ix", "missing", []string{"x"}, nil, false); err == nil {
		t.Error("index on missing table should fail")
	}
}

func TestIndexMaintainedByInserts(t *testing.T) {
	c := newTestCatalog()
	tb, _ := c.CreateTable("t", lineitemColumns(), []string{"l_orderkey"})
	if _, err := c.CreateIndex("ix", "t", []string{"l_suppkey"}, nil, false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := tb.Insert(makeRow(int64(i), int64(i%5), "1997-07-07", 1, "A")); err != nil {
			t.Fatal(err)
		}
	}
	idx := tb.Secondary[0]
	it := idx.Seek([]value.Value{value.NewInt(2)}, []value.Value{value.NewInt(2)}, true, true)
	n := 0
	for {
		_, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != 10 {
		t.Errorf("index sees %d entries for suppkey 2, want 10", n)
	}
}

func TestBulkLoadMatchesInsertResults(t *testing.T) {
	c := newTestCatalog()
	a, _ := c.CreateTable("a", lineitemColumns(), []string{"l_shipdate"})
	b, _ := c.CreateTable("b", lineitemColumns(), []string{"l_shipdate"})
	rng := rand.New(rand.NewSource(11))
	var rows [][]value.Value
	for i := 0; i < 500; i++ {
		rows = append(rows, makeRow(int64(i), int64(rng.Intn(9)), fmt.Sprintf("199%d-0%d-1%d", rng.Intn(8), 1+rng.Intn(9), rng.Intn(9)), float64(i), "R"))
	}
	for _, r := range rows {
		if err := a.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.BulkLoad(rows); err != nil {
		t.Fatal(err)
	}
	ia, ib := a.Scan(), b.Scan()
	for {
		ra, oka, err := ia.Next()
		if err != nil {
			t.Fatal(err)
		}
		rb, okb, err := ib.Next()
		if err != nil {
			t.Fatal(err)
		}
		if oka != okb {
			t.Fatal("row counts differ between insert and bulk load")
		}
		if !oka {
			break
		}
		if value.Compare(ra[2], rb[2]) != 0 {
			t.Fatalf("clustered order differs: %v vs %v", ra[2], rb[2])
		}
	}
}

func TestStats(t *testing.T) {
	c := newTestCatalog()
	tb, _ := c.CreateTable("t", lineitemColumns(), []string{"l_orderkey"})
	for i := 0; i < 1000; i++ {
		flag := "N"
		if i%4 == 0 {
			flag = "R"
		}
		row := makeRow(int64(i), int64(i%20), fmt.Sprintf("1995-01-%02d", 1+i%28), float64(i), flag)
		if i%10 == 0 {
			row[3] = value.Null()
		}
		if err := tb.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	st := tb.Stats
	if st.RowCount != 1000 {
		t.Errorf("RowCount = %d", st.RowCount)
	}
	if d := st.DistinctCount(1); d != 20 {
		t.Errorf("distinct suppkey = %d, want 20", d)
	}
	if d := st.DistinctCount(4); d != 2 {
		t.Errorf("distinct returnflag = %d, want 2", d)
	}
	if st.NullCount(3) != 100 {
		t.Errorf("null count = %d", st.NullCount(3))
	}
	minV, maxV := st.MinMax(0)
	if minV.Int() != 0 || maxV.Int() != 999 {
		t.Errorf("min/max orderkey = %v/%v", minV, maxV)
	}
	if s := st.SelectivityEquals(1); s < 0.04 || s > 0.06 {
		t.Errorf("equality selectivity = %f", s)
	}
	full := st.SelectivityRange(0, value.NewInt(0), value.NewInt(999))
	if full < 0.99 {
		t.Errorf("full range selectivity = %f", full)
	}
	half := st.SelectivityRange(0, value.NewInt(500), value.Null())
	if half < 0.4 || half > 0.6 {
		t.Errorf("half range selectivity = %f", half)
	}
	empty := st.SelectivityRange(0, value.NewInt(2000), value.NewInt(3000))
	if empty != 0 {
		t.Errorf("out-of-range selectivity = %f", empty)
	}
	// Out-of-range column ordinals are safe.
	if st.DistinctCount(99) != 1 || st.NullCount(99) != 0 {
		t.Error("out-of-range column stats should degrade gracefully")
	}
	mn, mx := st.MinMax(99)
	if !mn.IsNull() || !mx.IsNull() {
		t.Error("out-of-range MinMax should be NULL")
	}
}
