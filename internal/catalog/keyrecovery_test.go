package catalog

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"oldelephant/internal/storage"
	"oldelephant/internal/value"
)

// TestBigIntKeyRecoveryNeverTouchesPayload pins the typed-integer key
// encoding: clustered integer keys of any magnitude — including values beyond
// ±2^53, where the float64 key word alone loses precision — are recovered
// exactly from B+-tree key bytes, and a key-only projected scan never decodes
// the payload. The payload independence is proven directly: every stored
// payload is replaced with bytes that cannot be parsed as a tuple, so any
// code path that touches the payload fails loudly, while the projected scan
// still returns every key exactly and performs real page reads (IOStats).
func TestBigIntKeyRecoveryNeverTouchesPayload(t *testing.T) {
	pager := storage.NewPager(0)
	c := New(pager, -1)
	tbl, err := c.CreateTable("big", []Column{
		{Name: "k", Kind: value.KindInt},
		{Name: "note", Kind: value.KindString},
	}, []string{"k"})
	if err != nil {
		t.Fatal(err)
	}
	keys := []int64{
		math.MinInt64, math.MinInt64 + 1,
		-(1 << 53) - 1, -(1 << 53), -(1 << 53) + 1,
		-1, 0, 1,
		(1 << 53) - 1, 1 << 53, (1 << 53) + 1,
		math.MaxInt64 - 1, math.MaxInt64,
	}
	for _, k := range keys {
		row := []value.Value{value.NewInt(k), value.NewString(fmt.Sprintf("row-%d", k))}
		if err := tbl.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	if !tbl.KeyRecoverable() {
		t.Fatal("keys beyond ±2^53 marked the table key-dirty; typed int suffix not applied")
	}

	// Sanity: the payload path still works before poisoning.
	it := tbl.Scan()
	n := 0
	for {
		_, ok, err := it.NextInto(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != len(keys) {
		t.Fatalf("pre-poison scan saw %d rows, want %d", n, len(keys))
	}

	// Poison every payload: replace it with a header claiming 7 fields and no
	// field bytes, which no tuple decoder can parse.
	tree := tbl.Clustered.tree
	var rawKeys [][]byte
	sc := tree.Scan()
	for sc.Next() {
		rawKeys = append(rawKeys, append([]byte(nil), sc.Key()...))
	}
	if len(rawKeys) != len(keys) {
		t.Fatalf("tree holds %d entries, want %d", len(rawKeys), len(keys))
	}
	for _, rk := range rawKeys {
		if ok, err := tree.Delete(rk); err != nil || !ok {
			t.Fatalf("delete of key %x failed: %v", rk, err)
		}
		if err := tree.Insert(rk, []byte{0x07}); err != nil {
			t.Fatal(err)
		}
	}

	// The poison is effective: a full-row scan must fail on the first row.
	if _, _, err := tbl.Scan().NextInto(nil); err == nil {
		t.Fatal("poisoned payload unexpectedly decoded as a tuple")
	}

	// Key-only projection over a cold buffer pool: every key comes back
	// exactly, no error — the payload bytes were never parsed — and the scan
	// performed real page reads.
	pager.ResetCache()
	before := pager.Stats()
	proj := tbl.Scan()
	var got []int64
	var buf []value.Value
	for {
		row, ok, err := proj.NextProjectedInto(buf, []int{0})
		if err != nil {
			t.Fatalf("key-only projection touched the poisoned payload: %v", err)
		}
		if !ok {
			break
		}
		if row[0].Kind != value.KindInt {
			t.Fatalf("recovered key has kind %v, want int", row[0].Kind)
		}
		got = append(got, row[0].I)
		buf = row
	}
	if reads := pager.Stats().Sub(before).PageReads; reads == 0 {
		t.Fatal("projected scan performed no page reads; cold-read check is vacuous")
	}
	want := append([]int64(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("recovered %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("key %d: recovered %d, want %d", i, got[i], want[i])
		}
	}
}
