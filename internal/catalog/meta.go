// Catalog meta persistence: the logical half of durability. The WAL's page
// images restore every B+-tree and heap page byte for byte; this snapshot
// restores the schema layer above them — table and index definitions, tree
// roots and counts, heap page chains, uniquifiers and statistics — so Open
// can reattach live Table/Index objects to the recovered pages.
package catalog

import (
	"encoding/binary"
	"fmt"
	"strings"

	"oldelephant/internal/btree"
	"oldelephant/internal/storage"
	"oldelephant/internal/value"
)

const metaVersion = 1

type metaWriter struct{ buf []byte }

func (w *metaWriter) u8(v byte)      { w.buf = append(w.buf, v) }
func (w *metaWriter) uv(v uint64)    { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *metaWriter) iv(v int64)     { w.buf = binary.AppendVarint(w.buf, v) }
func (w *metaWriter) bool(v bool)    { w.u8(map[bool]byte{false: 0, true: 1}[v]) }
func (w *metaWriter) str(s string)   { w.uv(uint64(len(s))); w.buf = append(w.buf, s...) }
func (w *metaWriter) bytes(b []byte) { w.uv(uint64(len(b))); w.buf = append(w.buf, b...) }
func (w *metaWriter) ords(o []int) {
	w.uv(uint64(len(o)))
	for _, v := range o {
		w.uv(uint64(v))
	}
}
func (w *metaWriter) pageIDs(ids []storage.PageID) {
	w.uv(uint64(len(ids)))
	for _, id := range ids {
		w.uv(uint64(id))
	}
}

type metaReader struct {
	buf []byte
	off int
	err error
}

func (r *metaReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("catalog: truncated meta at offset %d", r.off)
	}
}
func (r *metaReader) u8() byte {
	if r.err != nil || r.off >= len(r.buf) {
		r.fail()
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}
func (r *metaReader) uv() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}
func (r *metaReader) iv() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}
func (r *metaReader) bool() bool { return r.u8() != 0 }
func (r *metaReader) str() string {
	n := int(r.uv())
	if r.err != nil || r.off+n > len(r.buf) {
		r.fail()
		return ""
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}
func (r *metaReader) bytes() []byte {
	n := int(r.uv())
	if r.err != nil || r.off+n > len(r.buf) {
		r.fail()
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}
func (r *metaReader) ords() []int {
	n := int(r.uv())
	out := make([]int, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, int(r.uv()))
	}
	return out
}
func (r *metaReader) pageIDs() []storage.PageID {
	n := int(r.uv())
	out := make([]storage.PageID, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, storage.PageID(r.uv()))
	}
	return out
}

// EncodeMeta serializes the catalog: every table's schema, physical layout
// (tree roots or heap page chains), uniquifier state and statistics.
func (c *Catalog) EncodeMeta() []byte {
	c.mu.RLock()
	defer c.mu.RUnlock()
	w := &metaWriter{}
	w.u8(metaVersion)
	tables := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		tables = append(tables, t)
	}
	// Deterministic order keeps the replay-twice oracle byte-comparable.
	for i := 1; i < len(tables); i++ {
		for j := i; j > 0 && tables[j-1].Name > tables[j].Name; j-- {
			tables[j-1], tables[j] = tables[j], tables[j-1]
		}
	}
	w.uv(uint64(len(tables)))
	for _, t := range tables {
		encodeTable(w, t)
	}
	return w.buf
}

func encodeTable(w *metaWriter, t *Table) {
	w.str(t.Name)
	w.uv(uint64(len(t.Columns)))
	for _, col := range t.Columns {
		w.str(col.Name)
		w.u8(byte(col.Kind))
	}
	w.bool(t.Clustered != nil)
	if t.Clustered != nil {
		w.str(t.Clustered.Name)
		w.ords(t.Clustered.KeyColumns)
		encodeTree(w, t.Clustered.tree)
		w.iv(t.uniquifier)
		w.bool(t.keyDirty)
	} else {
		w.pageIDs(t.heap.PageIDs())
		w.iv(t.heap.RowCount())
	}
	w.uv(uint64(len(t.Secondary)))
	for _, ix := range t.Secondary {
		w.str(ix.Name)
		w.ords(ix.KeyColumns)
		w.ords(ix.IncludedColumns)
		w.bool(ix.Unique)
		encodeTree(w, ix.tree)
	}
	encodeStats(w, t.Stats)
}

func encodeTree(w *metaWriter, tr *btree.BTree) {
	w.uv(uint64(tr.RootPage()))
	w.uv(uint64(tr.Height()))
	w.iv(tr.Count())
}

func decodeTree(r *metaReader, pager *storage.Pager, overhead int) *btree.BTree {
	root := storage.PageID(r.uv())
	height := int(r.uv())
	count := r.iv()
	return btree.Open(pager, root, height, count, overhead)
}

func encodeStats(w *metaWriter, s *TableStats) {
	w.iv(s.RowCount)
	w.iv(s.DataBytes)
	w.uv(uint64(len(s.columns)))
	for i := range s.columns {
		cs := &s.columns[i]
		w.iv(cs.nulls)
		distinct := int64(len(cs.distinct))
		if cs.restored > distinct {
			distinct = cs.restored
		}
		w.iv(distinct)
		w.bool(cs.saturated)
		w.bytes(value.EncodeTuple(nil, []value.Value{cs.min, cs.max}))
	}
}

func decodeStats(r *metaReader, cols []Column) (*TableStats, error) {
	s := NewTableStats(cols)
	s.RowCount = r.iv()
	s.DataBytes = r.iv()
	n := int(r.uv())
	if r.err != nil {
		return nil, r.err
	}
	if n != len(cols) {
		return nil, fmt.Errorf("catalog: meta stats for %d columns, table has %d", n, len(cols))
	}
	for i := 0; i < n; i++ {
		cs := &s.columns[i]
		cs.nulls = r.iv()
		cs.restored = r.iv()
		cs.saturated = r.bool()
		mm := r.bytes()
		if r.err != nil {
			return nil, r.err
		}
		vals, _, err := value.DecodeTuple(mm)
		if err != nil || len(vals) != 2 {
			return nil, fmt.Errorf("catalog: bad min/max tuple in meta: %v", err)
		}
		cs.min, cs.max = vals[0], vals[1]
	}
	return s, r.err
}

// RestoreMeta rebuilds the catalog's tables from an EncodeMeta snapshot,
// attaching them to the (already recovered) pages of the shared pager. Any
// existing tables are discarded.
func (c *Catalog) RestoreMeta(data []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := &metaReader{buf: data}
	if v := r.u8(); v != metaVersion {
		return fmt.Errorf("catalog: meta version %d not supported", v)
	}
	ntables := int(r.uv())
	tables := make(map[string]*Table, ntables)
	for i := 0; i < ntables && r.err == nil; i++ {
		t, err := c.decodeTable(r)
		if err != nil {
			return err
		}
		tables[strings.ToLower(t.Name)] = t
	}
	if r.err != nil {
		return r.err
	}
	c.tables = tables
	return nil
}

func (c *Catalog) decodeTable(r *metaReader) (*Table, error) {
	t := &Table{catalog: c}
	t.Name = r.str()
	ncols := int(r.uv())
	for i := 0; i < ncols && r.err == nil; i++ {
		name := r.str()
		kind := value.Kind(r.u8())
		t.Columns = append(t.Columns, Column{Name: name, Kind: kind})
	}
	if r.bool() {
		name := r.str()
		keyOrds := r.ords()
		tree := decodeTree(r, c.pager, c.overhead)
		t.uniquifier = r.iv()
		t.keyDirty = r.bool()
		t.Clustered = &Index{
			Name: name, Table: t, KeyColumns: keyOrds, Clustered: true, tree: tree,
		}
	} else {
		ids := r.pageIDs()
		rows := r.iv()
		t.heap = storage.OpenHeapFile(c.pager, ids, rows, c.overhead)
	}
	nsec := int(r.uv())
	for i := 0; i < nsec && r.err == nil; i++ {
		name := r.str()
		keyOrds := r.ords()
		inclOrds := r.ords()
		unique := r.bool()
		tree := decodeTree(r, c.pager, c.overhead)
		t.Secondary = append(t.Secondary, &Index{
			Name: name, Table: t, KeyColumns: keyOrds, IncludedColumns: inclOrds,
			Unique: unique, tree: tree,
		})
	}
	if r.err != nil {
		return nil, r.err
	}
	stats, err := decodeStats(r, t.Columns)
	if err != nil {
		return nil, err
	}
	t.Stats = stats
	return t, nil
}
