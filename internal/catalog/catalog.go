// Package catalog manages the schema objects of a database instance —
// tables, columns, clustered and secondary indexes — together with their
// physical storage (heap files or B+-trees) and basic optimizer statistics.
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"oldelephant/internal/btree"
	"oldelephant/internal/storage"
	"oldelephant/internal/value"
)

// Column describes one table column.
type Column struct {
	Name string
	Kind value.Kind
}

// Catalog is the set of tables of one database instance. All tables share
// one pager so I/O statistics are accounted globally.
type Catalog struct {
	mu       sync.RWMutex
	pager    *storage.Pager
	tables   map[string]*Table
	overhead int
}

// New creates an empty catalog. overhead is the per-tuple storage overhead in
// bytes used by all tables and index leaves (negative selects the default).
func New(pager *storage.Pager, overhead int) *Catalog {
	if overhead < 0 {
		overhead = storage.DefaultTupleOverhead
	}
	return &Catalog{pager: pager, tables: make(map[string]*Table), overhead: overhead}
}

// Pager returns the pager shared by all tables in the catalog.
func (c *Catalog) Pager() *storage.Pager { return c.pager }

// TupleOverhead returns the per-tuple overhead in bytes configured for this catalog.
func (c *Catalog) TupleOverhead() int { return c.overhead }

// CreateTable registers a new table. If clusteredKey is non-empty the table
// is stored in a clustered B+-tree on those columns (rows are kept in key
// order); otherwise rows go to a heap file.
func (c *Catalog) CreateTable(name string, cols []Column, clusteredKey []string) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := c.tables[key]; ok {
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("catalog: table %q must have at least one column", name)
	}
	seen := make(map[string]bool)
	for _, col := range cols {
		lc := strings.ToLower(col.Name)
		if seen[lc] {
			return nil, fmt.Errorf("catalog: duplicate column %q in table %q", col.Name, name)
		}
		seen[lc] = true
	}
	t := &Table{
		Name:    name,
		Columns: cols,
		catalog: c,
		Stats:   NewTableStats(cols),
	}
	if len(clusteredKey) > 0 {
		ords, err := t.ordinals(clusteredKey)
		if err != nil {
			return nil, err
		}
		t.Clustered = &Index{
			Name:       name + "_clustered",
			Table:      t,
			KeyColumns: ords,
			Clustered:  true,
			tree:       btree.New(c.pager, c.overhead),
		}
	} else {
		t.heap = storage.NewHeapFile(c.pager, c.overhead)
	}
	c.tables[key] = t
	return t, nil
}

// Table looks up a table by case-insensitive name.
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("catalog: table %q does not exist", name)
	}
	return t, nil
}

// HasTable reports whether a table exists.
func (c *Catalog) HasTable(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.tables[strings.ToLower(name)]
	return ok
}

// DropTable removes a table from the catalog and returns its pages (index
// nodes, leaves, heap pages) to the pager's freelist for reuse.
func (c *Catalog) DropTable(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	t, ok := c.tables[key]
	if !ok {
		return fmt.Errorf("catalog: table %q does not exist", name)
	}
	free := func(ids []storage.PageID) {
		for _, id := range ids {
			c.pager.FreePage(id)
		}
	}
	if t.Clustered != nil {
		if ids, err := t.Clustered.tree.AllPages(); err == nil {
			free(ids)
		}
	} else if t.heap != nil {
		free(t.heap.PageIDs())
	}
	for _, ix := range t.Secondary {
		if ids, err := ix.tree.AllPages(); err == nil {
			free(ids)
		}
	}
	delete(c.tables, key)
	return nil
}

// Tables returns all tables sorted by name.
func (c *Catalog) Tables() []*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Table is one relation: schema, storage and indexes.
type Table struct {
	Name    string
	Columns []Column

	// Clustered is the clustered index, nil for heap tables.
	Clustered *Index
	// Secondary are the nonclustered indexes.
	Secondary []*Index

	Stats *TableStats

	catalog    *Catalog
	heap       *storage.HeapFile
	uniquifier int64
	// keyDirty records that some inserted row held a clustered-key value that
	// does not round-trip exactly through the order-preserving key encoding
	// (kind mismatch against the declared column, or negative-zero float;
	// integers of any magnitude round-trip via the typed int-suffix word).
	// While clean, projected scans may recover key
	// columns from the B+-tree key bytes instead of decoding the payload; one
	// dirty insert disables that for the table's lifetime.
	keyDirty bool
}

// ColumnIndex returns the ordinal of the named column (case-insensitive), or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// ColumnNames returns the column names in order.
func (t *Table) ColumnNames() []string {
	out := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		out[i] = c.Name
	}
	return out
}

func (t *Table) ordinals(names []string) ([]int, error) {
	out := make([]int, len(names))
	for i, n := range names {
		ord := t.ColumnIndex(n)
		if ord < 0 {
			return nil, fmt.Errorf("catalog: table %q has no column %q", t.Name, n)
		}
		out[i] = ord
	}
	return out, nil
}

// IsClustered reports whether the table is stored in a clustered index.
func (t *Table) IsClustered() bool { return t.Clustered != nil }

// RowCount returns the current number of rows.
func (t *Table) RowCount() int64 {
	if t.Clustered != nil {
		return t.Clustered.tree.Count()
	}
	return t.heap.RowCount()
}

// DataPages returns the number of pages holding the table's rows (leaf pages
// of the clustered index, or heap pages).
func (t *Table) DataPages() int {
	if t.Clustered != nil {
		return t.Clustered.tree.NumLeafPages()
	}
	return t.heap.NumPages()
}

// clusteredKeyOf extracts the clustered-key values of a row and appends the
// uniquifier used to keep duplicate keys distinct in the tree.
func (t *Table) clusteredKey(row []value.Value, uniq int64) []byte {
	vals := make([]value.Value, 0, len(t.Clustered.KeyColumns)+1)
	for _, ord := range t.Clustered.KeyColumns {
		v := row[ord]
		if !t.keyDirty && !value.KeyValueRecoverable(v, t.Columns[ord].Kind) {
			t.keyDirty = true
		}
		vals = append(vals, v)
	}
	vals = append(vals, value.NewInt(uniq))
	return value.EncodeKey(nil, vals)
}

// KeyRecoverable reports whether the clustered-key columns of every stored
// row can be decoded exactly from the B+-tree key bytes (see keyDirty).
func (t *Table) KeyRecoverable() bool {
	return t.Clustered != nil && !t.keyDirty
}

// KeyPrefixPositions maps base-table column ordinals to their positions in
// the clustered key. It returns (positions, true) only when key-byte recovery
// is safe for every requested ordinal: the table is clustered, no stored row
// has an unrecoverable key value, and each ordinal is a clustered-key column.
// Projected scans whose column set passes this test never touch the payload.
func (t *Table) KeyPrefixPositions(cols []int) ([]int, bool) {
	if !t.KeyRecoverable() {
		return nil, false
	}
	pos := make([]int, len(cols))
	for i, ord := range cols {
		pos[i] = -1
		for p, kc := range t.Clustered.KeyColumns {
			if kc == ord {
				pos[i] = p
				break
			}
		}
		if pos[i] < 0 {
			return nil, false
		}
	}
	return pos, true
}

// Insert adds one row, maintaining the clustered storage, every secondary
// index and the table statistics.
func (t *Table) Insert(row []value.Value) error {
	if len(row) != len(t.Columns) {
		return fmt.Errorf("catalog: table %q expects %d columns, got %d", t.Name, len(t.Columns), len(row))
	}
	var rid storage.RID
	var uniq int64
	if t.Clustered != nil {
		uniq = t.uniquifier
		t.uniquifier++
		key := t.clusteredKey(row, uniq)
		if err := t.Clustered.tree.Insert(key, value.EncodeTuple(nil, row)); err != nil {
			return err
		}
	} else {
		var err error
		rid, err = t.heap.Insert(row)
		if err != nil {
			return err
		}
	}
	for _, idx := range t.Secondary {
		if err := idx.insertEntry(row, rid, uniq); err != nil {
			return err
		}
	}
	t.Stats.observe(row)
	return nil
}

// BulkLoad loads many rows at once. For clustered tables the rows are sorted
// by the clustered key and bulk-loaded bottom-up, which is dramatically
// faster than repeated inserts; secondary indexes are rebuilt the same way.
func (t *Table) BulkLoad(rows [][]value.Value) error {
	for _, row := range rows {
		if len(row) != len(t.Columns) {
			return fmt.Errorf("catalog: table %q expects %d columns, got %d", t.Name, len(t.Columns), len(row))
		}
	}
	if t.Clustered == nil {
		for _, row := range rows {
			if err := t.Insert(row); err != nil {
				return err
			}
		}
		return nil
	}
	type keyed struct {
		key []byte
		row []value.Value
	}
	items := make([]keyed, len(rows))
	for i, row := range rows {
		uniq := t.uniquifier
		t.uniquifier++
		items[i] = keyed{key: t.clusteredKey(row, uniq), row: row}
	}
	sort.Slice(items, func(i, j int) bool { return lessBytes(items[i].key, items[j].key) })
	i := 0
	err := t.Clustered.tree.BulkLoad(func() ([]byte, []byte, bool) {
		if i >= len(items) {
			return nil, nil, false
		}
		it := items[i]
		i++
		return it.key, value.EncodeTuple(nil, it.row), true
	}, 0.95)
	if err != nil {
		return err
	}
	for _, row := range rows {
		t.Stats.observe(row)
	}
	for _, idx := range t.Secondary {
		if err := idx.rebuild(); err != nil {
			return err
		}
	}
	return nil
}

func lessBytes(a, b []byte) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Scan returns an iterator over all rows. For clustered tables rows come back
// in clustered-key order; for heaps in insertion order.
func (t *Table) Scan() *RowIterator {
	if t.Clustered != nil {
		return &RowIterator{table: t, tree: t.Clustered.tree.Scan()}
	}
	return &RowIterator{table: t, heap: t.heap.Scan()}
}

// ScanMorsel is one morsel of a partitioned full scan: a run of consecutive
// leaf pages (clustered tables) or heap pages. Morsels are cheap descriptors;
// Iterator opens a fresh iterator over the morsel's rows, so a morsel can be
// re-scanned and morsels can be consumed by concurrent workers (each worker
// owns the iterators it opens).
type ScanMorsel struct {
	table *Table
	// clustered tables: starting leaf page and number of leaves.
	leafStart storage.PageID
	leafCount int
	// heaps: starting page index and number of pages.
	pageStart, pageCount int
	// err carries a partitioning-time page error into execution, so a corrupt
	// tree fails the query instead of silently scanning nothing.
	err error
}

// Iterator returns a fresh iterator over the morsel's rows.
func (m ScanMorsel) Iterator() *RowIterator {
	if m.err != nil {
		return &RowIterator{table: m.table, err: m.err}
	}
	if m.table.Clustered != nil {
		return &RowIterator{table: m.table, tree: m.table.Clustered.tree.ScanLeaves(m.leafStart, m.leafCount)}
	}
	return &RowIterator{table: m.table, heap: m.table.heap.ScanPages(m.pageStart, m.pageCount)}
}

// ScanMorsels partitions a full scan into morsels of roughly targetRows rows
// each (page granularity, so actual sizes vary with fill). Concatenating the
// morsels' iterators in slice order reproduces Scan exactly. It returns nil
// for empty tables.
func (t *Table) ScanMorsels(targetRows int64) []ScanMorsel {
	if targetRows < 1 {
		targetRows = 1
	}
	rows := t.RowCount()
	if rows == 0 {
		return nil
	}
	if t.Clustered != nil {
		leaves, err := t.Clustered.tree.LeafPages()
		if err != nil {
			return []ScanMorsel{{table: t, err: err}}
		}
		if len(leaves) == 0 {
			return nil
		}
		rowsPerLeaf := rows / int64(len(leaves))
		if rowsPerLeaf < 1 {
			rowsPerLeaf = 1
		}
		per := int(targetRows / rowsPerLeaf)
		if per < 1 {
			per = 1
		}
		var out []ScanMorsel
		for i := 0; i < len(leaves); i += per {
			n := per
			if i+n > len(leaves) {
				n = len(leaves) - i
			}
			out = append(out, ScanMorsel{table: t, leafStart: leaves[i], leafCount: n})
		}
		return out
	}
	pages := t.heap.NumPages()
	if pages == 0 {
		return nil
	}
	rowsPerPage := rows / int64(pages)
	if rowsPerPage < 1 {
		rowsPerPage = 1
	}
	per := int(targetRows / rowsPerPage)
	if per < 1 {
		per = 1
	}
	var out []ScanMorsel
	for i := 0; i < pages; i += per {
		n := per
		if i+n > pages {
			n = pages - i
		}
		out = append(out, ScanMorsel{table: t, pageStart: i, pageCount: n})
	}
	return out
}

// SeekLeafRange describes the run of consecutive B+-tree leaf pages a range
// seek touches, bounded by the seek's stop key. It is computed once so a
// parallel rewrite can first size the range (EstRows, the parallelization
// threshold input) and then partition it into morsels without re-walking the
// chain. The zero leaves case is an empty range.
type SeekLeafRange struct {
	tree        *btree.BTree
	leaves      []storage.PageID
	startKey    []byte // position within the first leaf; nil = leaf start
	stopKey     []byte
	stopIncl    bool
	rowsPerLeaf int64
	// err carries a partitioning-time page error into execution (see
	// ScanMorsel.err).
	err error
}

// newSeekLeafRange walks the leaf chain of a tree between encoded key bounds.
func newSeekLeafRange(tree *btree.BTree, lo, hi []value.Value, loIncl, hiIncl bool) *SeekLeafRange {
	start, stop, stopIncl := encodeRange(lo, hi, loIncl, hiIncl)
	leaves, err := tree.LeafRange(start, stop, stopIncl)
	r := &SeekLeafRange{
		tree:     tree,
		leaves:   leaves,
		startKey: start,
		stopKey:  stop,
		stopIncl: stopIncl,
		err:      err,
	}
	if all, err := tree.LeafPages(); err == nil && len(all) > 0 {
		r.rowsPerLeaf = tree.Count() / int64(len(all))
	}
	if r.rowsPerLeaf < 1 {
		r.rowsPerLeaf = 1
	}
	return r
}

// EstRows estimates the number of rows in the range from its leaf count and
// the tree's average leaf fill. Morsel partitioning needs only the order of
// magnitude: the estimate decides whether the range is worth parallelizing
// and how many leaves each morsel gets.
func (r *SeekLeafRange) EstRows() int64 {
	return int64(len(r.leaves)) * r.rowsPerLeaf
}

// TreeSeekMorsel is one morsel of a partitioned range seek: a run of
// consecutive leaves, the shared stop bound, and — on the first morsel only —
// the start key positioning within the first leaf. Like ScanMorsel it is a
// cheap descriptor; each Iterator call opens fresh cursor state, so distinct
// morsels can be consumed by concurrent workers.
type TreeSeekMorsel struct {
	r         *SeekLeafRange
	leafStart storage.PageID
	leafCount int
	first     bool
}

func (m TreeSeekMorsel) iterator() *btree.Iterator {
	var startKey []byte
	if m.first {
		startKey = m.r.startKey
	}
	return m.r.tree.SeekLeaves(m.leafStart, m.leafCount, startKey, m.r.stopKey, m.r.stopIncl)
}

// partition splits the leaf range into morsels of roughly targetRows rows
// each. Concatenating the morsels' iterators in slice order reproduces the
// serial seek exactly; nil when the range is empty.
func (r *SeekLeafRange) partition(targetRows int64) []TreeSeekMorsel {
	if r.err != nil {
		return []TreeSeekMorsel{{r: r}}
	}
	if len(r.leaves) == 0 {
		return nil
	}
	if targetRows < 1 {
		targetRows = 1
	}
	per := int(targetRows / r.rowsPerLeaf)
	if per < 1 {
		per = 1
	}
	var out []TreeSeekMorsel
	for i := 0; i < len(r.leaves); i += per {
		n := per
		if i+n > len(r.leaves) {
			n = len(r.leaves) - i
		}
		out = append(out, TreeSeekMorsel{r: r, leafStart: r.leaves[i], leafCount: n, first: i == 0})
	}
	return out
}

// ClusteredSeekRange computes the leaf range of a clustered-key prefix seek
// (same bounds semantics as SeekClustered).
func (t *Table) ClusteredSeekRange(lo, hi []value.Value, loIncl, hiIncl bool) (*SeekLeafRange, error) {
	if t.Clustered == nil {
		return nil, fmt.Errorf("catalog: table %q has no clustered index", t.Name)
	}
	return newSeekLeafRange(t.Clustered.tree, lo, hi, loIncl, hiIncl), nil
}

// ClusteredSeekMorsel is one morsel of a partitioned clustered range seek.
type ClusteredSeekMorsel struct {
	table  *Table
	morsel TreeSeekMorsel
}

// Iterator returns a fresh row iterator over the morsel's range slice.
func (m ClusteredSeekMorsel) Iterator() *RowIterator {
	if err := m.morsel.r.err; err != nil {
		return &RowIterator{table: m.table, err: err}
	}
	return &RowIterator{table: m.table, tree: m.morsel.iterator()}
}

// ClusteredSeekMorsels partitions a precomputed seek range into row morsels
// of roughly targetRows rows each.
func (t *Table) ClusteredSeekMorsels(r *SeekLeafRange, targetRows int64) []ClusteredSeekMorsel {
	parts := r.partition(targetRows)
	out := make([]ClusteredSeekMorsel, len(parts))
	for i, p := range parts {
		out[i] = ClusteredSeekMorsel{table: t, morsel: p}
	}
	return out
}

// SeekRange computes the leaf range of an index-key prefix seek (same bounds
// semantics as Seek).
func (ix *Index) SeekRange(lo, hi []value.Value, loIncl, hiIncl bool) *SeekLeafRange {
	return newSeekLeafRange(ix.tree, lo, hi, loIncl, hiIncl)
}

// IndexSeekMorsel is one morsel of a partitioned secondary-index range seek.
type IndexSeekMorsel struct {
	index  *Index
	morsel TreeSeekMorsel
}

// Iterator returns a fresh entry iterator over the morsel's range slice.
func (m IndexSeekMorsel) Iterator() *IndexIterator {
	if err := m.morsel.r.err; err != nil {
		return &IndexIterator{index: m.index, err: err}
	}
	return &IndexIterator{index: m.index, it: m.morsel.iterator()}
}

// SeekMorsels partitions a precomputed index seek range into entry morsels of
// roughly targetRows entries each.
func (ix *Index) SeekMorsels(r *SeekLeafRange, targetRows int64) []IndexSeekMorsel {
	parts := r.partition(targetRows)
	out := make([]IndexSeekMorsel, len(parts))
	for i, p := range parts {
		out[i] = IndexSeekMorsel{index: ix, morsel: p}
	}
	return out
}

// LookupRID fetches a heap row by RID (heap tables only).
func (t *Table) LookupRID(rid storage.RID) ([]value.Value, error) {
	if t.heap == nil {
		return nil, fmt.Errorf("catalog: table %q is not a heap", t.Name)
	}
	return t.heap.Get(rid)
}

// SeekClustered returns an iterator over rows whose clustered-key prefix is
// within [lo, hi]. Bounds may be nil for open ranges; inclusivity flags apply
// to the respective bound.
func (t *Table) SeekClustered(lo, hi []value.Value, loIncl, hiIncl bool) (*RowIterator, error) {
	if t.Clustered == nil {
		return nil, fmt.Errorf("catalog: table %q has no clustered index", t.Name)
	}
	start, stop, stopIncl := encodeRange(lo, hi, loIncl, hiIncl)
	return &RowIterator{table: t, tree: t.Clustered.tree.Seek(start, stop, stopIncl)}, nil
}

// encodeRange converts value-space bounds into key-space bounds. Because
// every stored key has a uniquifier (or locator) suffix, prefix bounds are
// made inclusive/exclusive by appending sentinel bytes:
//   - inclusive lower bound: the bare prefix (sorts before any full key)
//   - exclusive lower bound: prefix + 0xFF... (sorts after all keys with it)
//   - inclusive upper bound: prefix + 0xFF...
//   - exclusive upper bound: the bare prefix
func encodeRange(lo, hi []value.Value, loIncl, hiIncl bool) (start, stop []byte, stopIncl bool) {
	if lo != nil {
		start = value.EncodeKey(nil, lo)
		if !loIncl {
			start = append(start, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF)
		}
	}
	if hi != nil {
		stop = value.EncodeKey(nil, hi)
		if hiIncl {
			stop = append(stop, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF)
		}
		stopIncl = hiIncl
	}
	return start, stop, stopIncl
}

// KeyPrefixDecoder decodes a projected set of clustered-key columns straight
// from B+-tree key bytes, skipping unrequested key positions. Built once per
// scan by NewKeyPrefixDecoder; Decode then runs per row with no allocation
// (string columns aside).
type KeyPrefixDecoder struct {
	// kinds[p] is the declared column kind at key position p.
	kinds []value.Kind
	// outAt[p] is the output index for key position p, or -1 to skip it.
	outAt []int
}

// NewKeyPrefixDecoder returns a decoder recovering the given base-table
// ordinals from key bytes, or (nil, false) when key recovery is unsafe for
// this column set (see KeyPrefixPositions).
func (t *Table) NewKeyPrefixDecoder(cols []int) (*KeyPrefixDecoder, bool) {
	pos, ok := t.KeyPrefixPositions(cols)
	if !ok {
		return nil, false
	}
	maxPos := 0
	for _, p := range pos {
		if p > maxPos {
			maxPos = p
		}
	}
	d := &KeyPrefixDecoder{
		kinds: make([]value.Kind, maxPos+1),
		outAt: make([]int, maxPos+1),
	}
	for p := range d.outAt {
		d.outAt[p] = -1
		d.kinds[p] = t.Columns[t.Clustered.KeyColumns[p]].Kind
	}
	for i, p := range pos {
		d.outAt[p] = i
	}
	return d, true
}

// Decode fills out (len = number of projected columns) from one row's key
// bytes. The trailing uniquifier and any key positions past the last
// projected one are never touched.
func (d *KeyPrefixDecoder) Decode(key []byte, out []value.Value) error {
	off := 0
	for p := range d.outAt {
		if i := d.outAt[p]; i >= 0 {
			v, n, err := value.DecodeKeyValue(key[off:], d.kinds[p])
			if err != nil {
				return err
			}
			out[i] = v
			off += n
		} else {
			n, err := value.SkipKeyValue(key[off:])
			if err != nil {
				return err
			}
			off += n
		}
	}
	return nil
}

// RowIterator yields table rows from either storage representation.
type RowIterator struct {
	table *Table
	tree  *btree.Iterator
	heap  *storage.HeapIterator
	// err is a pre-execution error (e.g. a failed page read while
	// partitioning morsels); the iterator yields nothing and reports it.
	err error

	// Cached projection state for NextProjectedInto: the column set it was
	// built for and the key-prefix decoder (nil = decode from payload).
	projCols  []int
	projDec   *KeyPrefixDecoder
	projReady bool
}

// Err returns the first page-access error the iterator (or its underlying
// storage cursor) hit. The raw-span methods report exhaustion on error, so
// batch fills must check Err when a fill comes up short.
func (it *RowIterator) Err() error {
	if it.err != nil {
		return it.err
	}
	if it.tree != nil {
		return it.tree.Err()
	}
	if it.heap != nil {
		return it.heap.Err()
	}
	return nil
}

// Next returns the next row; ok is false at the end.
func (it *RowIterator) Next() (row []value.Value, ok bool, err error) {
	return it.NextInto(nil)
}

// NextInto is Next decoding into buf when its capacity allows (clustered
// tables only; heap rows are always freshly decoded). The returned row may
// alias buf, so callers must copy values they retain past the next call —
// the batch scans do exactly that when transposing rows into column vectors.
func (it *RowIterator) NextInto(buf []value.Value) (row []value.Value, ok bool, err error) {
	if it.err != nil {
		return nil, false, it.err
	}
	if it.tree != nil {
		if !it.tree.Next() {
			return nil, false, it.tree.Err()
		}
		row, _, err := value.DecodeTupleInto(buf, it.tree.Value())
		if err != nil {
			return nil, false, err
		}
		return row, true, nil
	}
	row, _, ok, err = it.heap.Next()
	return row, ok, err
}

// NextRaw advances the iterator and returns the next row's raw storage spans:
// the clustered key bytes (nil for heap tables) and the encoded tuple
// payload. Both alias stable page memory, so the batch fill may collect spans
// across many rows before decoding column-at-a-time.
func (it *RowIterator) NextRaw() (key, payload []byte, ok bool) {
	if it.err != nil {
		return nil, nil, false
	}
	if it.tree != nil {
		if !it.tree.Next() {
			return nil, nil, false
		}
		return it.tree.Key(), it.tree.Value(), true
	}
	rec, _, ok := it.heap.NextRecord()
	return nil, rec, ok
}

// NextRawSpans is NextRaw amortized over a whole batch: it fills payloads
// (and keys, when non-nil) with up to len(payloads) rows' raw storage spans
// and returns how many it filled — fewer only at exhaustion. Clustered tables
// drain the B+-tree's cached leaf parses chunk-at-a-time; heap tables fall
// back to the per-record walk. All spans alias stable page memory.
func (it *RowIterator) NextRawSpans(keys, payloads [][]byte) int {
	if it.err != nil {
		return 0
	}
	if it.tree != nil {
		return it.tree.NextSpans(keys, payloads)
	}
	n := 0
	for n < len(payloads) {
		rec, _, ok := it.heap.NextRecord()
		if !ok {
			break
		}
		if keys != nil {
			keys[n] = nil
		}
		payloads[n] = rec
		n++
	}
	return n
}

// NextProjectedInto is NextInto decoding only the base-table ordinals listed
// in cols (which must be sorted ascending), in cols order. When every
// projected column is a clustered-key column and the table's keys are
// recoverable, the values come from the B+-tree key bytes and the payload is
// never touched; otherwise unrequested payload fields are skipped without
// being materialized. The returned row may alias buf, like NextInto.
func (it *RowIterator) NextProjectedInto(buf []value.Value, cols []int) (row []value.Value, ok bool, err error) {
	if it.err != nil {
		return nil, false, it.err
	}
	if it.tree != nil {
		if !it.tree.Next() {
			return nil, false, it.tree.Err()
		}
		if !it.projReady {
			it.projCols = append(it.projCols[:0], cols...)
			it.projDec, _ = it.table.NewKeyPrefixDecoder(cols)
			it.projReady = true
		}
		if it.projDec != nil {
			if cap(buf) < len(cols) {
				buf = make([]value.Value, len(cols))
			} else {
				buf = buf[:len(cols)]
			}
			if err := it.projDec.Decode(it.tree.Key(), buf); err != nil {
				return nil, false, err
			}
			return buf, true, nil
		}
		row, err = value.DecodeProjectedInto(buf[:0], it.tree.Value(), cols)
		if err != nil {
			return nil, false, err
		}
		return row, true, nil
	}
	rec, _, ok := it.heap.NextRecord()
	if !ok {
		return nil, false, it.heap.Err()
	}
	row, err = value.DecodeProjectedInto(buf[:0], rec, cols)
	if err != nil {
		return nil, false, err
	}
	return row, true, nil
}

// CreateIndex builds a nonclustered index over the table. keyCols define the
// sort order; includeCols are carried in the leaf entries so that queries
// touching only key+included columns never visit the base table (a covering
// index). The locator (clustered key or RID) is always appended.
func (c *Catalog) CreateIndex(name, tableName string, keyCols, includeCols []string, unique bool) (*Index, error) {
	t, err := c.Table(tableName)
	if err != nil {
		return nil, err
	}
	for _, idx := range t.Secondary {
		if strings.EqualFold(idx.Name, name) {
			return nil, fmt.Errorf("catalog: index %q already exists on %q", name, tableName)
		}
	}
	keyOrds, err := t.ordinals(keyCols)
	if err != nil {
		return nil, err
	}
	inclOrds, err := t.ordinals(includeCols)
	if err != nil {
		return nil, err
	}
	idx := &Index{
		Name:            name,
		Table:           t,
		KeyColumns:      keyOrds,
		IncludedColumns: inclOrds,
		Unique:          unique,
		tree:            btree.New(c.pager, c.overhead),
	}
	if err := idx.rebuild(); err != nil {
		return nil, err
	}
	t.Secondary = append(t.Secondary, idx)
	return idx, nil
}

// Index is a clustered or nonclustered index.
type Index struct {
	Name            string
	Table           *Table
	KeyColumns      []int
	IncludedColumns []int
	Unique          bool
	Clustered       bool

	tree *btree.BTree
}

// Tree exposes the underlying B+-tree (read-only use by statistics and tests).
func (ix *Index) Tree() *btree.BTree { return ix.tree }

// KeyColumnNames returns the names of the key columns in index order.
func (ix *Index) KeyColumnNames() []string {
	out := make([]string, len(ix.KeyColumns))
	for i, ord := range ix.KeyColumns {
		out[i] = ix.Table.Columns[ord].Name
	}
	return out
}

// Covers reports whether every requested column ordinal is available from the
// index entry itself (key, included or clustered-key columns).
func (ix *Index) Covers(ordinals []int) bool {
	avail := make(map[int]bool)
	for _, o := range ix.KeyColumns {
		avail[o] = true
	}
	for _, o := range ix.IncludedColumns {
		avail[o] = true
	}
	if ix.Table.Clustered != nil {
		for _, o := range ix.Table.Clustered.KeyColumns {
			avail[o] = true
		}
	}
	for _, o := range ordinals {
		if !avail[o] {
			return false
		}
	}
	return true
}

// entryColumns returns the ordinals stored in a leaf entry payload, in the
// order they are stored: key columns, included columns, then locator columns
// (clustered key columns not already present).
func (ix *Index) entryColumns() []int {
	out := append([]int(nil), ix.KeyColumns...)
	seen := make(map[int]bool)
	for _, o := range out {
		seen[o] = true
	}
	for _, o := range ix.IncludedColumns {
		if !seen[o] {
			out = append(out, o)
			seen[o] = true
		}
	}
	if ix.Table.Clustered != nil {
		for _, o := range ix.Table.Clustered.KeyColumns {
			if !seen[o] {
				out = append(out, o)
				seen[o] = true
			}
		}
	}
	return out
}

// EntryColumnOrdinals exposes the ordinals (into the base table schema) of
// the columns materialized in each index entry, in storage order.
func (ix *Index) EntryColumnOrdinals() []int { return ix.entryColumns() }

// insertEntry adds the index entry for one base-table row.
func (ix *Index) insertEntry(row []value.Value, rid storage.RID, uniq int64) error {
	key := ix.encodeEntryKey(row, rid, uniq)
	payload := ix.encodeEntryPayload(row, rid)
	return ix.tree.Insert(key, payload)
}

func (ix *Index) encodeEntryKey(row []value.Value, rid storage.RID, uniq int64) []byte {
	vals := make([]value.Value, 0, len(ix.KeyColumns)+3)
	for _, ord := range ix.KeyColumns {
		vals = append(vals, row[ord])
	}
	// Disambiguate duplicates with the locator so keys are unique and scans
	// within equal key values are deterministic.
	if ix.Table.Clustered != nil {
		vals = append(vals, value.NewInt(uniq))
	} else {
		vals = append(vals, value.NewInt(int64(rid.Page)), value.NewInt(int64(rid.Slot)))
	}
	return value.EncodeKey(nil, vals)
}

func (ix *Index) encodeEntryPayload(row []value.Value, rid storage.RID) []byte {
	cols := ix.entryColumns()
	vals := make([]value.Value, 0, len(cols)+2)
	for _, ord := range cols {
		vals = append(vals, row[ord])
	}
	if ix.Table.Clustered == nil {
		vals = append(vals, value.NewInt(int64(rid.Page)), value.NewInt(int64(rid.Slot)))
	}
	return value.EncodeTuple(nil, vals)
}

// rebuild reconstructs the index from the base table using a bulk load.
func (ix *Index) rebuild() error {
	type item struct {
		key     []byte
		payload []byte
	}
	var items []item
	it := ix.Table.Scan()
	var uniq int64
	for {
		row, ok, err := it.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		// RIDs are not tracked by the generic row iterator; heap locators are
		// only meaningful for heap tables, where we re-scan with RIDs below.
		items = append(items, item{
			key:     ix.encodeEntryKey(row, storage.RID{}, uniq),
			payload: ix.encodeEntryPayload(row, storage.RID{}),
		})
		uniq++
	}
	if ix.Table.heap != nil {
		// Redo with correct RIDs for heap tables.
		items = items[:0]
		hit := ix.Table.heap.Scan()
		for {
			row, rid, ok, err := hit.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			items = append(items, item{
				key:     ix.encodeEntryKey(row, rid, 0),
				payload: ix.encodeEntryPayload(row, rid),
			})
		}
	}
	sort.Slice(items, func(i, j int) bool { return lessBytes(items[i].key, items[j].key) })
	if ix.Unique {
		for i := 1; i < len(items); i++ {
			// Uniqueness is on the key columns only; compare the key-column
			// prefix by re-encoding without the locator. A cheaper practical
			// check: decode payloads and compare key column values.
			a, _, err := value.DecodeTuple(items[i-1].payload)
			if err != nil {
				return err
			}
			b, _, err := value.DecodeTuple(items[i].payload)
			if err != nil {
				return err
			}
			same := true
			for k := range ix.KeyColumns {
				if value.Compare(a[k], b[k]) != 0 {
					same = false
					break
				}
			}
			if same && len(ix.KeyColumns) > 0 {
				return fmt.Errorf("catalog: duplicate key in unique index %q", ix.Name)
			}
		}
	}
	i := 0
	return ix.tree.BulkLoad(func() ([]byte, []byte, bool) {
		if i >= len(items) {
			return nil, nil, false
		}
		it := items[i]
		i++
		return it.key, it.payload, true
	}, 0.95)
}

// IndexEntry is one decoded secondary-index entry.
type IndexEntry struct {
	// Values holds the entry's columns in the order given by EntryColumnOrdinals.
	Values []value.Value
	// RID locates the base row for heap tables.
	RID storage.RID
}

// Seek returns an iterator over index entries whose key-column prefix lies in
// [lo, hi] (nil bounds are open; inclusivity per flag).
func (ix *Index) Seek(lo, hi []value.Value, loIncl, hiIncl bool) *IndexIterator {
	start, stop, stopIncl := encodeRange(lo, hi, loIncl, hiIncl)
	return &IndexIterator{index: ix, it: ix.tree.Seek(start, stop, stopIncl)}
}

// ScanAll returns an iterator over the whole index in key order.
func (ix *Index) ScanAll() *IndexIterator {
	return &IndexIterator{index: ix, it: ix.tree.Scan()}
}

// IndexIterator yields decoded index entries.
type IndexIterator struct {
	index *Index
	it    *btree.Iterator
	// err is a pre-execution error (see RowIterator.err).
	err error
}

// Err returns the first page-access error the iterator hit; NextRaw reports
// exhaustion on error, so covered-scan fills must check it.
func (s *IndexIterator) Err() error {
	if s.err != nil {
		return s.err
	}
	if s.it != nil {
		return s.it.Err()
	}
	return nil
}

// NextRaw advances the iterator and returns the next entry's raw payload
// span: the entry columns in EntryColumnOrdinals order, with the RID pair
// appended for heap tables. The span aliases stable page memory. Covered
// index scans use it to feed the projected column fill without materializing
// entries.
func (s *IndexIterator) NextRaw() (payload []byte, ok bool) {
	if s.err != nil || !s.it.Next() {
		return nil, false
	}
	return s.it.Value(), true
}

// Next returns the next entry; ok is false at the end.
func (s *IndexIterator) Next() (IndexEntry, bool, error) {
	if s.err != nil {
		return IndexEntry{}, false, s.err
	}
	if !s.it.Next() {
		return IndexEntry{}, false, s.it.Err()
	}
	vals, _, err := value.DecodeTuple(s.it.Value())
	if err != nil {
		return IndexEntry{}, false, err
	}
	entry := IndexEntry{}
	ncols := len(s.index.entryColumns())
	if s.index.Table.heap != nil && len(vals) >= ncols+2 {
		entry.RID = storage.RID{
			Page: storage.PageID(vals[ncols].Int()),
			Slot: uint16(vals[ncols+1].Int()),
		}
		vals = vals[:ncols]
	}
	entry.Values = vals
	return entry, true, nil
}
