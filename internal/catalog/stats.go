package catalog

import (
	"oldelephant/internal/value"
)

// maxDistinctTracked bounds the memory used for exact distinct counting; when
// a column exceeds it the count becomes an estimate that simply stops growing.
const maxDistinctTracked = 1 << 20

// TableStats holds per-table and per-column statistics used for cardinality
// estimation by the planner and for reporting.
type TableStats struct {
	RowCount int64
	// DataBytes is the total encoded size of all observed rows, excluding
	// per-tuple overhead. It lets the planner estimate page counts without
	// touching storage.
	DataBytes int64
	columns   []columnStats
}

// EstimatedDataPages estimates how many pages the rows occupy given the
// per-tuple overhead, assuming ~95% page fill.
func (s *TableStats) EstimatedDataPages(overhead int) float64 {
	bytes := float64(s.DataBytes) + float64(s.RowCount)*float64(overhead)
	pages := bytes / (0.95 * 8192)
	if pages < 1 {
		return 1
	}
	return pages
}

type columnStats struct {
	distinct  map[uint64]struct{}
	saturated bool
	min, max  value.Value
	nulls     int64
	// restored is the distinct count recorded in a persisted meta snapshot.
	// The hash sets themselves are not persisted (they can hold a million
	// entries per column); after recovery the count reported is the maximum
	// of the snapshot value and whatever the live set has re-accumulated.
	restored int64
}

// NewTableStats creates empty statistics for the given columns.
func NewTableStats(cols []Column) *TableStats {
	s := &TableStats{columns: make([]columnStats, len(cols))}
	for i := range s.columns {
		s.columns[i].distinct = make(map[uint64]struct{})
		s.columns[i].min = value.Null()
		s.columns[i].max = value.Null()
	}
	return s
}

// observe folds one row into the statistics.
func (s *TableStats) observe(row []value.Value) {
	s.RowCount++
	s.DataBytes += int64(value.RowSize(row))
	for i := range row {
		if i >= len(s.columns) {
			break
		}
		cs := &s.columns[i]
		v := row[i]
		if v.IsNull() {
			cs.nulls++
			continue
		}
		if !cs.saturated {
			cs.distinct[v.Hash()] = struct{}{}
			if len(cs.distinct) >= maxDistinctTracked {
				cs.saturated = true
			}
		}
		if cs.min.IsNull() || value.Compare(v, cs.min) < 0 {
			cs.min = v
		}
		if cs.max.IsNull() || value.Compare(v, cs.max) > 0 {
			cs.max = v
		}
	}
}

// DistinctCount returns the (possibly estimated) number of distinct non-NULL
// values in the column, and 1 at minimum for non-empty tables so selectivity
// math never divides by zero.
func (s *TableStats) DistinctCount(col int) int64 {
	if col < 0 || col >= len(s.columns) {
		return 1
	}
	n := int64(len(s.columns[col].distinct))
	if r := s.columns[col].restored; r > n {
		n = r
	}
	if n == 0 {
		return 1
	}
	return n
}

// MinMax returns the observed minimum and maximum of the column (NULL when
// the table is empty or all values are NULL).
func (s *TableStats) MinMax(col int) (value.Value, value.Value) {
	if col < 0 || col >= len(s.columns) {
		return value.Null(), value.Null()
	}
	return s.columns[col].min, s.columns[col].max
}

// NullCount returns the number of NULLs observed in the column.
func (s *TableStats) NullCount(col int) int64 {
	if col < 0 || col >= len(s.columns) {
		return 0
	}
	return s.columns[col].nulls
}

// SelectivityEquals estimates the fraction of rows matching column = constant
// using a uniform-distribution assumption over the distinct values.
func (s *TableStats) SelectivityEquals(col int) float64 {
	if s.RowCount == 0 {
		return 0
	}
	return 1.0 / float64(s.DistinctCount(col))
}

// SelectivityRange estimates the fraction of rows with column in [lo, hi]
// (either bound may be NULL for an open range) by linear interpolation over
// the observed min/max. Falls back to 1/3 when interpolation is impossible.
func (s *TableStats) SelectivityRange(col int, lo, hi value.Value) float64 {
	if s.RowCount == 0 {
		return 0
	}
	minV, maxV := s.MinMax(col)
	if minV.IsNull() || maxV.IsNull() {
		return 1.0 / 3.0
	}
	span := maxV.Float() - minV.Float()
	if span <= 0 {
		return 1.0
	}
	start := minV.Float()
	end := maxV.Float()
	if !lo.IsNull() {
		start = lo.Float()
	}
	if !hi.IsNull() {
		end = hi.Float()
	}
	if end < start {
		return 0
	}
	if start < minV.Float() {
		start = minV.Float()
	}
	if end > maxV.Float() {
		end = maxV.Float()
	}
	frac := (end - start) / span
	if frac < 0 {
		return 0
	}
	if frac > 1 {
		return 1
	}
	return frac
}
