// Package vector implements the encoding-aware column vectors that flow
// between batch operators. A Vector is one column of a batch in one of four
// physical encodings:
//
//	Flat  — one value per row (the decompressed form);
//	Const — a single value repeated for every row;
//	RLE   — runs of equal values stored as (value, end-position) pairs;
//	Dict  — a dictionary of distinct values plus one code per row.
//
// Operators and expression kernels dispatch on the encoding so that work
// proportional to the *compressed* size (runs, dictionary entries) replaces
// work proportional to the row count wherever the semantics allow — the
// C-store execution style the paper's ColOpt bound assumes. Decompression is
// lazy: Flat() materializes (and caches) the row-wise form only when a
// consumer genuinely needs per-row values, which confines decompression to
// protocol boundaries (row adapters, joins, result drains).
//
// Vectors are immutable once published to a consumer: kernels may share a
// vector's backing arrays across batches, so consumers must never mutate the
// slices returned by accessors.
package vector

import (
	"sort"
	"sync/atomic"

	"oldelephant/internal/value"
)

// Encoding identifies the physical layout of a Vector.
type Encoding uint8

// The supported vector encodings.
const (
	Flat Encoding = iota
	Const
	RLE
	Dict
)

// String returns the encoding name.
func (e Encoding) String() string {
	switch e {
	case Flat:
		return "flat"
	case Const:
		return "const"
	case RLE:
		return "rle"
	case Dict:
		return "dict"
	default:
		return "vector.Encoding(?)"
	}
}

// Vector is one column of a batch. The zero value is an empty Flat vector.
type Vector struct {
	enc Encoding
	n   int
	// vals holds, depending on the encoding: the per-row values (Flat), the
	// single value at index 0 (Const), one value per run (RLE), or the
	// dictionary (Dict).
	vals []value.Value
	// ends holds the exclusive end position of each RLE run; ends[len-1] == n.
	ends []int
	// codes holds one dictionary index per row (Dict).
	codes []uint32
	// flat holds the per-row form of a Flat vector (aliasing vals). Compressed
	// encodings cache their decompressed form in flatCache instead, so that
	// concurrent readers can materialize it without a data race.
	flat []value.Value
	// flatCache is the lazily materialized per-row form of a compressed
	// vector. Parallel pipelines share published vectors across worker
	// goroutines, so the first-read materialization must be race-free: readers
	// Load, and a miss computes the (deterministic) decompression and
	// publishes it with a Store — concurrent misses do redundant work but
	// agree on the value.
	flatCache atomic.Pointer[[]value.Value]
}

// NewFlat wraps per-row values as a Flat vector (no copy).
func NewFlat(vals []value.Value) *Vector {
	return &Vector{enc: Flat, n: len(vals), vals: vals, flat: vals}
}

// NewFlatCap returns an empty Flat vector with the given append capacity.
func NewFlatCap(capacity int) *Vector {
	vals := make([]value.Value, 0, capacity)
	return &Vector{enc: Flat, vals: vals}
}

// NewConst returns a vector holding v repeated n times.
func NewConst(v value.Value, n int) *Vector {
	return &Vector{enc: Const, n: n, vals: []value.Value{v}}
}

// NewRLE builds an RLE vector from run values and exclusive run end
// positions (ends must be strictly increasing; the last entry is the length).
func NewRLE(runVals []value.Value, ends []int) *Vector {
	n := 0
	if len(ends) > 0 {
		n = ends[len(ends)-1]
	}
	return &Vector{enc: RLE, n: n, vals: runVals, ends: ends}
}

// NewDict builds a dictionary vector: one code per row indexing into dict.
func NewDict(dict []value.Value, codes []uint32) *Vector {
	return &Vector{enc: Dict, n: len(codes), vals: dict, codes: codes}
}

// Encoding returns the vector's physical encoding.
func (v *Vector) Encoding() Encoding { return v.enc }

// Len returns the logical (row) length.
func (v *Vector) Len() int { return v.n }

// Append adds one value to a Flat vector under construction. It must not be
// called on compressed vectors or after the vector has been shared.
func (v *Vector) Append(x value.Value) {
	if v.enc != Flat {
		panic("vector: Append on a " + v.enc.String() + " vector")
	}
	v.vals = append(v.vals, x)
	v.flat = v.vals
	v.n = len(v.vals)
}

// runIndex returns the index of the run containing physical row i.
func (v *Vector) runIndex(i int) int {
	return sort.Search(len(v.ends), func(r int) bool { return v.ends[r] > i })
}

// Get returns the value at physical row i. For sequential access over
// compressed vectors prefer run-wise iteration (RunEndAt) or Flat().
func (v *Vector) Get(i int) value.Value {
	switch v.enc {
	case Flat:
		return v.vals[i]
	case Const:
		return v.vals[0]
	case RLE:
		return v.vals[v.runIndex(i)]
	default: // Dict
		return v.vals[v.codes[i]]
	}
}

// RunEndAt returns the exclusive end of the maximal region starting at (and
// containing) row i that is known to hold a single repeated value. Flat
// vectors make no such promise and return i+1; Dict vectors extend over
// adjacent equal codes, RLE over the containing run, Const over everything.
// Run-aware consumers (aggregates) use this to process (value, count) pairs.
func (v *Vector) RunEndAt(i int) int {
	switch v.enc {
	case Const:
		return v.n
	case RLE:
		return v.ends[v.runIndex(i)]
	case Dict:
		c := v.codes[i]
		j := i + 1
		for j < v.n && v.codes[j] == c {
			j++
		}
		return j
	default:
		return i + 1
	}
}

// Flat returns the decompressed per-row values, materializing and caching
// them on first use. Callers must treat the result as read-only. Flat is safe
// for concurrent readers: a published vector is immutable, and the lazy cache
// is filled through an atomic pointer (racing readers may each decompress,
// but the results are identical and one wins the publish).
func (v *Vector) Flat() []value.Value {
	if v.enc == Flat || v.n == 0 {
		return v.flat
	}
	if cached := v.flatCache.Load(); cached != nil {
		return *cached
	}
	out := make([]value.Value, v.n)
	switch v.enc {
	case Const:
		c := v.vals[0]
		for i := range out {
			out[i] = c
		}
	case RLE:
		pos := 0
		for r, end := range v.ends {
			rv := v.vals[r]
			for ; pos < end; pos++ {
				out[pos] = rv
			}
		}
	case Dict:
		for i, c := range v.codes {
			out[i] = v.vals[c]
		}
	}
	if !v.flatCache.CompareAndSwap(nil, &out) {
		// A concurrent reader published first; return its (identical) slice so
		// every caller observes one stable backing array.
		return *v.flatCache.Load()
	}
	return out
}

// ConstValue returns the repeated value of a Const vector.
func (v *Vector) ConstValue() value.Value { return v.vals[0] }

// RunValues returns the per-run values of an RLE vector.
func (v *Vector) RunValues() []value.Value { return v.vals }

// RunEnds returns the exclusive end positions of an RLE vector's runs.
func (v *Vector) RunEnds() []int { return v.ends }

// DictValues returns the dictionary of a Dict vector.
func (v *Vector) DictValues() []value.Value { return v.vals }

// Codes returns the per-row dictionary codes of a Dict vector.
func (v *Vector) Codes() []uint32 { return v.codes }

// Map applies f to every distinct stored value, preserving the encoding: a
// Const vector maps its single value, RLE maps one value per run, Dict maps
// the dictionary, and Flat maps row-wise (only rows listed in sel when sel is
// non-nil; other entries of a Flat result are unspecified). It is the
// compression-preserving evaluation primitive behind the expression kernels.
func (v *Vector) Map(f func(value.Value) (value.Value, error), sel []int) (*Vector, error) {
	mapVals := func(in []value.Value) ([]value.Value, error) {
		out := make([]value.Value, len(in))
		for i, x := range in {
			y, err := f(x)
			if err != nil {
				return nil, err
			}
			out[i] = y
		}
		return out, nil
	}
	switch v.enc {
	case Const:
		y, err := f(v.vals[0])
		if err != nil {
			return nil, err
		}
		return NewConst(y, v.n), nil
	case RLE:
		out, err := mapVals(v.vals)
		if err != nil {
			return nil, err
		}
		return NewRLE(out, v.ends), nil
	case Dict:
		out, err := mapVals(v.vals)
		if err != nil {
			return nil, err
		}
		return NewDict(out, v.codes), nil
	default:
		out := make([]value.Value, v.n)
		if sel == nil {
			for i, x := range v.vals {
				y, err := f(x)
				if err != nil {
					return nil, err
				}
				out[i] = y
			}
		} else {
			for _, i := range sel {
				y, err := f(v.vals[i])
				if err != nil {
					return nil, err
				}
				out[i] = y
			}
		}
		return NewFlat(out), nil
	}
}

// Gather returns a new vector holding the values at the given physical
// positions, in order (positions may repeat — a hash join's probe side emits
// one entry per match). The gather is encoding-aware: a Const input stays
// Const, a Dict input gathers only its codes and shares the dictionary, and
// RLE/Flat inputs materialize through the cached flat form. It is the batch
// output primitive of the vectorized join.
func (v *Vector) Gather(idx []int32) *Vector {
	switch v.enc {
	case Const:
		return NewConst(v.vals[0], len(idx))
	case Dict:
		codes := make([]uint32, len(idx))
		for k, i := range idx {
			codes[k] = v.codes[i]
		}
		return NewDict(v.vals, codes)
	default:
		flat := v.Flat()
		out := make([]value.Value, len(idx))
		for k, i := range idx {
			out[k] = flat[i]
		}
		return NewFlat(out)
	}
}

// Compress run-encodes per-row values when that pays off: a single run
// becomes a Const vector, few runs become RLE, and anything else is returned
// as a Flat vector sharing vals. The threshold (runs <= rows/2) keeps the
// compressed form strictly smaller than the flat one. Scans use it on
// sort-prefix columns, where the clustered order makes long runs likely.
func Compress(vals []value.Value) *Vector {
	n := len(vals)
	if n == 0 {
		return NewFlat(vals)
	}
	var runVals []value.Value
	var ends []int
	cur := vals[0]
	for i := 1; i < n; i++ {
		if !value.Equal(vals[i], cur) {
			runVals = append(runVals, cur)
			ends = append(ends, i)
			cur = vals[i]
			if 2*len(ends) > n {
				return NewFlat(vals) // too many runs: give up early
			}
		}
	}
	runVals = append(runVals, cur)
	ends = append(ends, n)
	if len(ends) == 1 {
		return NewConst(cur, n)
	}
	v := NewRLE(runVals, ends)
	v.flatCache.Store(&vals) // the flat form is already in hand; cache it for free
	return v
}
