package vector

import (
	"testing"

	"oldelephant/internal/value"
)

// sampleData is row-wise data with runs, few distinct values and a NULL.
func sampleData() []value.Value {
	var out []value.Value
	for _, spec := range []struct {
		v    value.Value
		reps int
	}{
		{value.NewInt(3), 4},
		{value.NewInt(7), 1},
		{value.Null(), 2},
		{value.NewInt(3), 3},
	} {
		for i := 0; i < spec.reps; i++ {
			out = append(out, spec.v)
		}
	}
	return out
}

// encodings builds the same logical data in every representable encoding.
func encodings(vals []value.Value) map[string]*Vector {
	out := map[string]*Vector{
		"flat":     NewFlat(append([]value.Value(nil), vals...)),
		"compress": Compress(append([]value.Value(nil), vals...)),
	}
	// Hand-built RLE: the exclusive end of each run tracks the last row seen.
	var runVals []value.Value
	var ends []int
	for i, v := range vals {
		last := len(runVals) - 1
		if last < 0 || v.Kind != runVals[last].Kind || value.Compare(v, runVals[last]) != 0 {
			runVals = append(runVals, v)
			ends = append(ends, i+1)
		} else {
			ends[len(ends)-1] = i + 1
		}
	}
	out["rle"] = NewRLE(runVals, ends)
	// Dictionary.
	var dict []value.Value
	codes := make([]uint32, len(vals))
	index := map[string]uint32{}
	for i, v := range vals {
		key := v.Kind.String() + "|" + v.String()
		c, ok := index[key]
		if !ok {
			c = uint32(len(dict))
			index[key] = c
			dict = append(dict, v)
		}
		codes[i] = c
	}
	out["dict"] = NewDict(dict, codes)
	return out
}

// TestEncodingsAgree: Get, Flat and Len agree across every encoding of the
// same data.
func TestEncodingsAgree(t *testing.T) {
	vals := sampleData()
	for name, v := range encodings(vals) {
		if v.Len() != len(vals) {
			t.Fatalf("%s: Len = %d, want %d", name, v.Len(), len(vals))
		}
		flat := v.Flat()
		for i, want := range vals {
			if got := v.Get(i); got.Kind != want.Kind || value.Compare(got, want) != 0 {
				t.Errorf("%s: Get(%d) = %v, want %v", name, i, got, want)
			}
			if got := flat[i]; got.Kind != want.Kind || value.Compare(got, want) != 0 {
				t.Errorf("%s: Flat()[%d] = %v, want %v", name, i, got, want)
			}
		}
	}
}

// TestRunEndAt: the constant-region promise holds for every encoding — all
// positions in [i, RunEndAt(i)) carry Get(i)'s value.
func TestRunEndAt(t *testing.T) {
	vals := sampleData()
	for name, v := range encodings(vals) {
		for i := 0; i < v.Len(); i++ {
			end := v.RunEndAt(i)
			if end <= i || end > v.Len() {
				t.Fatalf("%s: RunEndAt(%d) = %d out of range", name, i, end)
			}
			want := v.Get(i)
			for j := i; j < end; j++ {
				got := v.Get(j)
				if got.Kind != want.Kind || value.Compare(got, want) != 0 {
					t.Fatalf("%s: run [%d,%d) not constant: Get(%d)=%v, Get(%d)=%v", name, i, end, i, want, j, got)
				}
			}
		}
	}
	// Const covers everything in one run.
	c := NewConst(value.NewInt(9), 5)
	if c.RunEndAt(2) != 5 {
		t.Errorf("Const RunEndAt(2) = %d, want 5", c.RunEndAt(2))
	}
}

// TestCompressChoosesEncoding pins the Compress thresholds: one run becomes
// Const, few runs become RLE, unique values stay Flat.
func TestCompressChoosesEncoding(t *testing.T) {
	constVals := make([]value.Value, 10)
	for i := range constVals {
		constVals[i] = value.NewInt(42)
	}
	if enc := Compress(constVals).Encoding(); enc != Const {
		t.Errorf("constant column compressed to %v, want Const", enc)
	}
	if enc := Compress(sampleData()).Encoding(); enc != RLE {
		t.Errorf("runny column compressed to %v, want RLE", enc)
	}
	unique := make([]value.Value, 10)
	for i := range unique {
		unique[i] = value.NewInt(int64(i))
	}
	if enc := Compress(unique).Encoding(); enc != Flat {
		t.Errorf("unique column compressed to %v, want Flat", enc)
	}
	if enc := Compress(nil).Encoding(); enc != Flat {
		t.Errorf("empty column compressed to %v, want Flat", enc)
	}
}

// TestMapPreservesEncoding: Map keeps the encoding and applies f to every
// distinct stored value.
func TestMapPreservesEncoding(t *testing.T) {
	double := func(v value.Value) (value.Value, error) { return value.Mul(v, value.NewInt(2)), nil }
	vals := sampleData()
	for name, v := range encodings(vals) {
		mapped, err := v.Map(double, nil)
		if err != nil {
			t.Fatal(err)
		}
		if mapped.Encoding() != v.Encoding() {
			t.Errorf("%s: Map changed encoding %v -> %v", name, v.Encoding(), mapped.Encoding())
		}
		for i, orig := range vals {
			want, _ := double(orig)
			got := mapped.Get(i)
			if got.Kind != want.Kind || value.Compare(got, want) != 0 {
				t.Errorf("%s: Map Get(%d) = %v, want %v", name, i, got, want)
			}
		}
	}
	// Flat Map under a selection only touches selected rows.
	flat := NewFlat(sampleData())
	sel := []int{0, 5}
	calls := 0
	if _, err := flat.Map(func(v value.Value) (value.Value, error) {
		calls++
		return v, nil
	}, sel); err != nil {
		t.Fatal(err)
	}
	if calls != len(sel) {
		t.Errorf("Flat Map under sel evaluated %d rows, want %d", calls, len(sel))
	}
}

// TestAppendFlatOnly: Append grows flat vectors and panics on compressed ones.
func TestAppendFlatOnly(t *testing.T) {
	v := NewFlatCap(4)
	v.Append(value.NewInt(1))
	v.Append(value.NewInt(2))
	if v.Len() != 2 || v.Get(1).Int() != 2 {
		t.Fatalf("appended vector = len %d", v.Len())
	}
	defer func() {
		if recover() == nil {
			t.Error("Append on a Const vector did not panic")
		}
	}()
	NewConst(value.NewInt(1), 3).Append(value.NewInt(2))
}

// TestParallelConcurrentFlatDecode is the concurrent-readers regression test
// for the lazy decode cache: many goroutines hitting Flat(), Get and
// RunEndAt on shared compressed vectors must race-cleanly agree on the
// decompressed values (run under -race in CI). Before the cache moved to an
// atomic pointer, the first Flat() call was a plain write-on-first-read.
func TestParallelConcurrentFlatDecode(t *testing.T) {
	big := make([]value.Value, 0, 4096)
	for i := 0; i < 4096; i++ {
		big = append(big, value.NewInt(int64(i/97)))
	}
	vecs := map[string]*Vector{
		"const": NewConst(value.NewInt(42), 4096),
		"rle":   Compress(big),
		"dict":  NewDict([]value.Value{value.NewInt(1), value.NewInt(2), value.NewInt(3)}, make([]uint32, 4096)),
	}
	if vecs["rle"].Encoding() != RLE {
		t.Fatalf("compressed sample is %v, want rle", vecs["rle"].Encoding())
	}
	// Drop the Compress fast-path cache so the racing readers really decode.
	vecs["rle"] = NewRLE(vecs["rle"].RunValues(), vecs["rle"].RunEnds())
	for name, v := range vecs {
		t.Run(name, func(t *testing.T) {
			want := append([]value.Value(nil), v.Flat()...)
			fresh := &Vector{enc: v.enc, n: v.n, vals: v.vals, ends: v.ends, codes: v.codes}
			done := make(chan []value.Value, 8)
			for g := 0; g < 8; g++ {
				go func() {
					flat := fresh.Flat()
					for i := 0; i < fresh.Len(); i += 37 {
						if value.Compare(fresh.Get(i), flat[i]) != 0 {
							done <- nil
							return
						}
						fresh.RunEndAt(i)
					}
					done <- flat
				}()
			}
			var first []value.Value
			for g := 0; g < 8; g++ {
				flat := <-done
				if flat == nil {
					t.Fatal("Get disagrees with Flat under concurrency")
				}
				if first == nil {
					first = flat
				} else if &first[0] != &flat[0] {
					t.Error("concurrent readers observed different cached backing arrays")
				}
			}
			if len(first) != len(want) {
				t.Fatalf("decoded %d values, want %d", len(first), len(want))
			}
			for i := range want {
				if value.Compare(first[i], want[i]) != 0 {
					t.Fatalf("value %d: %v, want %v", i, first[i], want[i])
				}
			}
		})
	}
}

// TestGather: gathering arbitrary (repeating, out-of-order) positions agrees
// with per-position Get across every encoding, and the encoding-aware cases
// keep their cheap forms (Const stays Const, Dict shares its dictionary).
func TestGather(t *testing.T) {
	vals := sampleData()
	idx := []int32{9, 0, 0, 5, 4, 9, 2}
	for name, v := range encodings(vals) {
		g := v.Gather(idx)
		if g.Len() != len(idx) {
			t.Fatalf("%s: Gather length %d, want %d", name, g.Len(), len(idx))
		}
		for k, i := range idx {
			want := v.Get(int(i))
			got := g.Get(k)
			if got.Kind != want.Kind || (!want.IsNull() && value.Compare(got, want) != 0) {
				t.Errorf("%s: Gather[%d] = %v, want %v (source row %d)", name, k, got, want, i)
			}
		}
	}
	c := NewConst(value.NewInt(5), 100).Gather(idx)
	if c.Encoding() != Const || c.Len() != len(idx) {
		t.Errorf("Const gather lost its encoding: %v len %d", c.Encoding(), c.Len())
	}
	d := encodings(vals)["dict"]
	gd := d.Gather(idx)
	if gd.Encoding() != Dict {
		t.Errorf("Dict gather produced %v, want dict", gd.Encoding())
	}
	if len(gd.DictValues()) != len(d.DictValues()) {
		t.Errorf("Dict gather rebuilt the dictionary")
	}
	// Empty gather.
	if e := d.Gather(nil); e.Len() != 0 {
		t.Errorf("empty gather has %d rows", e.Len())
	}
}
