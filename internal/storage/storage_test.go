package storage

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"oldelephant/internal/value"
)

func TestPageInsertAndRead(t *testing.T) {
	p := newPage(1)
	if p.FreeSpace() >= PageSize {
		t.Fatalf("free space %d should be below page size", p.FreeSpace())
	}
	recs := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma"), {}}
	for i, r := range recs {
		slot, ok := p.InsertRecord(r, 0)
		if !ok {
			t.Fatalf("insert %d failed", i)
		}
		if slot != i {
			t.Errorf("slot = %d, want %d", slot, i)
		}
	}
	if p.NumSlots() != len(recs) {
		t.Fatalf("NumSlots = %d", p.NumSlots())
	}
	for i, r := range recs {
		if got := string(p.Record(i)); got != string(r) {
			t.Errorf("record %d = %q, want %q", i, got, r)
		}
	}
	if p.Record(-1) != nil || p.Record(99) != nil {
		t.Error("out of range slots should return nil")
	}
}

func TestPageDelete(t *testing.T) {
	p := newPage(1)
	p.InsertRecord([]byte("keep"), 0)
	p.InsertRecord([]byte("drop"), 0)
	if err := p.DeleteRecord(1); err != nil {
		t.Fatal(err)
	}
	if p.Record(1) != nil {
		t.Error("deleted record still readable")
	}
	if string(p.Record(0)) != "keep" {
		t.Error("sibling record damaged by delete")
	}
	if err := p.DeleteRecord(5); err == nil {
		t.Error("expected error deleting invalid slot")
	}
}

func TestPageFillsUpAndOverheadCounts(t *testing.T) {
	rec := []byte(strings.Repeat("x", 100))
	fill := func(overhead int) int {
		p := newPage(1)
		n := 0
		for {
			if _, ok := p.InsertRecord(rec, overhead); !ok {
				break
			}
			n++
		}
		return n
	}
	without := fill(0)
	with := fill(50)
	if without <= 0 || with <= 0 {
		t.Fatal("pages should accept some records")
	}
	if with >= without {
		t.Errorf("overhead should reduce records per page: %d vs %d", with, without)
	}
}

func TestPageAux(t *testing.T) {
	p := newPage(7)
	if p.Aux() != 0 {
		t.Error("new page aux should be zero")
	}
	p.SetAux(123456789)
	if p.Aux() != 123456789 {
		t.Error("aux round trip failed")
	}
	// Aux must survive record inserts.
	p.InsertRecord([]byte("data"), 0)
	if p.Aux() != 123456789 {
		t.Error("aux clobbered by insert")
	}
}

func TestPagerAllocationAndStats(t *testing.T) {
	pg := NewPager(0)
	var ids []PageID
	for i := 0; i < 10; i++ {
		ids = append(ids, pg.Allocate().ID())
	}
	if pg.NumPages() != 10 {
		t.Fatalf("NumPages = %d", pg.NumPages())
	}
	// All pages are cached after allocation: reads should be hits.
	for _, id := range ids {
		pg.Get(id)
	}
	s := pg.Stats()
	if s.PageReads != 0 || s.CacheHits != 10 {
		t.Errorf("warm stats = %+v", s)
	}
	// After a cache reset, sequential access is counted as sequential reads.
	pg.ResetCache()
	pg.ResetStats()
	for _, id := range ids {
		pg.Get(id)
	}
	s = pg.Stats()
	if s.PageReads != 10 {
		t.Errorf("cold reads = %d, want 10", s.PageReads)
	}
	if s.SeqReads < 9 {
		t.Errorf("sequential reads = %d, want >= 9", s.SeqReads)
	}
	// A genuinely random access pattern over many pages is counted as random.
	big := NewPager(0)
	var bigIDs []PageID
	for i := 0; i < 400; i++ {
		bigIDs = append(bigIDs, big.Allocate().ID())
	}
	big.ResetCache()
	big.ResetStats()
	perm := rand.New(rand.NewSource(1)).Perm(len(bigIDs))
	for _, i := range perm {
		big.Get(bigIDs[i])
	}
	s = big.Stats()
	if s.RandReads < s.SeqReads {
		t.Errorf("random access should be mostly random: %+v", s)
	}
}

func TestPagerInterleavedStreamsAreSequential(t *testing.T) {
	// Two interleaved ascending scans (the access pattern of an index
	// nested-loop join over two tables) must be classified as sequential.
	pg := NewPager(0)
	var ids []PageID
	for i := 0; i < 200; i++ {
		ids = append(ids, pg.Allocate().ID())
	}
	pg.ResetCache()
	pg.ResetStats()
	a, b := 0, 100
	for i := 0; i < 100; i++ {
		pg.Get(ids[a+i])
		pg.Get(ids[b+i])
	}
	s := pg.Stats()
	if s.RandReads > 4 {
		t.Errorf("interleaved scans should be mostly sequential: %+v", s)
	}
}

func TestPagerEviction(t *testing.T) {
	pg := NewPager(2)
	a := pg.Allocate().ID()
	b := pg.Allocate().ID()
	c := pg.Allocate().ID() // evicts a
	pg.ResetStats()
	pg.Get(c)
	pg.Get(b)
	if s := pg.Stats(); s.PageReads != 0 {
		t.Errorf("expected hits for resident pages, got %+v", s)
	}
	pg.Get(a) // miss
	if s := pg.Stats(); s.PageReads != 1 {
		t.Errorf("expected one miss, got %+v", s)
	}
	pg.SetCapacity(1)
	pg.ResetStats()
	pg.Get(b)
	pg.Get(a)
	pg.Get(b)
	if s := pg.Stats(); s.PageReads < 2 {
		t.Errorf("capacity-1 pool should thrash, got %+v", s)
	}
}

func TestPagerGetUnknownErrors(t *testing.T) {
	pg, err := NewPager(0).Get(42)
	if err == nil {
		t.Fatal("expected error for unknown page id")
	}
	if pg != nil {
		t.Error("unknown page id should return a nil page")
	}
	if !strings.Contains(err.Error(), "unknown page") {
		t.Errorf("error should identify the problem: %v", err)
	}
}

func TestIOStatsArithmetic(t *testing.T) {
	a := IOStats{PageReads: 10, SeqReads: 6, RandReads: 4, CacheHits: 2, PageWrites: 1, PagesAllocated: 3}
	b := IOStats{PageReads: 4, SeqReads: 2, RandReads: 2, CacheHits: 1, PageWrites: 1, PagesAllocated: 1}
	diff := a.Sub(b)
	if diff.PageReads != 6 || diff.SeqReads != 4 || diff.RandReads != 2 || diff.CacheHits != 1 || diff.PagesAllocated != 2 {
		t.Errorf("Sub = %+v", diff)
	}
	sum := diff.Add(b)
	if sum != a {
		t.Errorf("Add(Sub) != original: %+v", sum)
	}
}

func TestHeapFileInsertScanGet(t *testing.T) {
	pg := NewPager(0)
	h := NewHeapFile(pg, -1)
	const n = 5000
	var rids []RID
	for i := 0; i < n; i++ {
		rid, err := h.Insert([]value.Value{
			value.NewInt(int64(i)),
			value.NewString(fmt.Sprintf("row-%d", i)),
			value.NewFloat(float64(i) / 3),
		})
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		rids = append(rids, rid)
	}
	if h.RowCount() != n {
		t.Fatalf("RowCount = %d", h.RowCount())
	}
	if h.NumPages() < 2 {
		t.Fatalf("expected multiple pages, got %d", h.NumPages())
	}
	// Point lookups.
	for _, i := range []int{0, 1, n / 2, n - 1} {
		row, err := h.Get(rids[i])
		if err != nil {
			t.Fatalf("Get(%d): %v", i, err)
		}
		if row[0].Int() != int64(i) {
			t.Errorf("row %d key = %v", i, row[0])
		}
	}
	// Full scan sees every row exactly once, in insertion order.
	it := h.Scan()
	i := 0
	for {
		row, rid, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if row[0].Int() != int64(i) {
			t.Fatalf("scan out of order at %d: %v", i, row[0])
		}
		if rid != rids[i] {
			t.Fatalf("scan rid mismatch at %d", i)
		}
		i++
	}
	if i != n {
		t.Fatalf("scan returned %d rows, want %d", i, n)
	}
}

func TestHeapFileDelete(t *testing.T) {
	pg := NewPager(0)
	h := NewHeapFile(pg, 0)
	var rids []RID
	for i := 0; i < 10; i++ {
		rid, err := h.Insert([]value.Value{value.NewInt(int64(i))})
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := h.Delete(rids[3]); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Get(rids[3]); err == nil {
		t.Error("expected error reading deleted row")
	}
	if h.RowCount() != 9 {
		t.Errorf("RowCount = %d after delete", h.RowCount())
	}
	seen := 0
	it := h.Scan()
	for {
		row, _, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if row[0].Int() == 3 {
			t.Error("deleted row visible in scan")
		}
		seen++
	}
	if seen != 9 {
		t.Errorf("scan saw %d rows, want 9", seen)
	}
}

func TestHeapFileRejectsOversizedRow(t *testing.T) {
	h := NewHeapFile(NewPager(0), 0)
	big := value.NewString(strings.Repeat("z", PageSize))
	if _, err := h.Insert([]value.Value{big}); err == nil {
		t.Error("expected error for oversized row")
	}
}

func TestHeapScanCountsSequentialIO(t *testing.T) {
	pg := NewPager(0)
	h := NewHeapFile(pg, -1)
	for i := 0; i < 20000; i++ {
		if _, err := h.Insert([]value.Value{value.NewInt(int64(i)), value.NewString("abcdefghij")}); err != nil {
			t.Fatal(err)
		}
	}
	pg.ResetCache()
	pg.ResetStats()
	it := h.Scan()
	for {
		_, _, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	s := pg.Stats()
	if s.PageReads != int64(h.NumPages()) {
		t.Errorf("cold scan read %d pages, heap has %d", s.PageReads, h.NumPages())
	}
	if s.RandReads > s.SeqReads {
		t.Errorf("heap scan should be mostly sequential: %+v", s)
	}
}
