package storage

import (
	"container/list"
	"fmt"
	"sync"
)

// IOStats accumulates the page-level I/O behaviour of a pager. The benchmark
// harness converts these counters into a modeled disk time; the paper's
// headline ratios are driven almost entirely by the number of pages each
// strategy must read.
type IOStats struct {
	// PageReads counts buffer-pool misses, i.e. pages fetched from "disk".
	PageReads int64
	// SeqReads is the subset of PageReads whose page id immediately follows
	// the previously missed page (sequential I/O).
	SeqReads int64
	// RandReads is PageReads - SeqReads.
	RandReads int64
	// CacheHits counts accesses served by the buffer pool.
	CacheHits int64
	// PageWrites counts pages written (allocation and flush).
	PageWrites int64
	// PagesAllocated is the total number of pages ever allocated.
	PagesAllocated int64
}

// Sub returns the difference s - o, useful for measuring a single query.
func (s IOStats) Sub(o IOStats) IOStats {
	return IOStats{
		PageReads:      s.PageReads - o.PageReads,
		SeqReads:       s.SeqReads - o.SeqReads,
		RandReads:      s.RandReads - o.RandReads,
		CacheHits:      s.CacheHits - o.CacheHits,
		PageWrites:     s.PageWrites - o.PageWrites,
		PagesAllocated: s.PagesAllocated - o.PagesAllocated,
	}
}

// Add returns the sum of two stats.
func (s IOStats) Add(o IOStats) IOStats {
	return IOStats{
		PageReads:      s.PageReads + o.PageReads,
		SeqReads:       s.SeqReads + o.SeqReads,
		RandReads:      s.RandReads + o.RandReads,
		CacheHits:      s.CacheHits + o.CacheHits,
		PageWrites:     s.PageWrites + o.PageWrites,
		PagesAllocated: s.PagesAllocated + o.PagesAllocated,
	}
}

// Pager owns all pages of a database instance. Every page is memory-resident
// for the life of the process — iterators and the btree's parsed-leaf caches
// alias page memory, and the engine's execution layers rely on that. The
// pager runs in one of two modes:
//
//   - memory mode (NewPager): the original simulated disk. The buffer pool
//     of bounded size models cold-cache behaviour for the paper's benchmarks;
//     accesses that miss the pool are charged as page reads and classified as
//     sequential or random.
//   - file mode (OpenPagerFile): the same resident page set, plus a DataFile
//     that checkpoints flush dirty pages to. Durability comes from the WAL
//     (internal/wal) + checkpoint protocol driven by the engine; the pager's
//     job is tracking dirty pages and statement-scoped undo images.
//
// Sequentiality is tracked per stream: a read that continues any of the most
// recently active read positions counts as sequential. This models the
// behaviour of disk read-ahead when a query interleaves scans of a few
// objects (e.g. the two sides of an index nested-loop join), which a single
// "last page" tracker would misclassify as entirely random.
type Pager struct {
	mu       sync.Mutex
	pages    []*Page // index = PageID-1; the resident page set
	capacity int     // buffer pool capacity in pages; <=0 means unbounded
	cache    map[PageID]*list.Element
	lru      *list.List // front = most recently used; stores PageID
	streams  []PageID   // recent miss positions, most recent first
	stats    IOStats

	// Durability state (file mode only; all nil/empty in memory mode).
	file  *DataFile
	dirty map[PageID]struct{} // written since last checkpoint flush
	free  []PageID            // freed page ids available for reuse
	stmt  *stmtState          // active statement's undo capture, or nil
	// corrupt counts page slots whose checksum failed verification at open
	// (they were subsequently overwritten by WAL replay or recovery failed).
	corrupt int64
}

// stmtState captures what a mutating statement needs for rollback: pre-images
// of pages that existed before the statement, the set of pages it wrote, and
// the page-count / freelist snapshot to unwind allocations.
type stmtState struct {
	pre        map[PageID][]byte
	dirty      []PageID
	dirtySet   map[PageID]struct{}
	startPages int
	startFree  []PageID
}

// StmtUndo is the undo record of one completed statement, kept by the engine
// until the statement's WAL records are durable. Undoing a suffix of the
// statement history in reverse order restores the exact pre-statement state.
type StmtUndo struct {
	pre        map[PageID][]byte
	dirty      []PageID // pages written, in first-write order
	startPages int
	startFree  []PageID
}

// Dirty returns the pages the statement wrote, in first-write order.
func (u *StmtUndo) Dirty() []PageID { return u.dirty }

// maxStreams is the number of concurrent sequential read streams the
// sequentiality classifier tracks (a proxy for the drive's read-ahead slots).
const maxStreams = 8

// NewPager creates a memory-mode pager whose buffer pool holds up to capacity
// pages. capacity <= 0 means the pool is unbounded (every page is read from
// disk at most once until ResetCache is called).
func NewPager(capacity int) *Pager {
	return &Pager{
		capacity: capacity,
		cache:    make(map[PageID]*list.Element),
		lru:      list.New(),
	}
}

// OpenPagerFile opens a file-mode pager over the data file at name, loading
// every page into memory. Pages whose checksum fails verification are
// reported in corrupt; the caller must overwrite them via ApplyPageImage
// (WAL replay) or fail recovery.
func OpenPagerFile(fsys FS, name string, capacity int) (p *Pager, corrupt []PageID, err error) {
	df, pages, corrupt, err := OpenDataFile(fsys, name)
	if err != nil {
		return nil, nil, err
	}
	p = NewPager(capacity)
	p.pages = pages
	p.file = df
	p.dirty = make(map[PageID]struct{})
	p.stats.PagesAllocated = int64(len(pages))
	p.corrupt = int64(len(corrupt))
	return p, corrupt, nil
}

// CorruptPages returns the number of page slots that failed checksum
// verification when the data file was opened (0 in memory mode). Non-zero
// after successful recovery means the WAL replay repaired them.
func (p *Pager) CorruptPages() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.corrupt
}

// Resident returns the number of pages currently resident in the buffer
// pool: the LRU population for a bounded pool, every allocated page for an
// unbounded one.
func (p *Pager) Resident() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.capacity > 0 {
		return p.lru.Len()
	}
	return len(p.pages)
}

// FileBacked reports whether the pager has a data file behind it.
func (p *Pager) FileBacked() bool { return p.file != nil }

// Allocate creates a new zeroed page and returns it, reusing a freed page id
// when one is available. The page is immediately resident in the buffer pool.
func (p *Pager) Allocate() *Page {
	p.mu.Lock()
	defer p.mu.Unlock()
	var pg *Page
	if n := len(p.free); n > 0 {
		id := p.free[n-1]
		p.free = p.free[:n-1]
		p.captureUndo(id)
		pg = newPage(id)
		p.pages[id-1] = pg
	} else {
		id := PageID(len(p.pages) + 1)
		pg = newPage(id)
		p.pages = append(p.pages, pg)
	}
	p.stats.PagesAllocated++
	p.stats.PageWrites++
	p.markDirtyLocked(pg.id)
	p.admit(pg.id)
	return pg
}

// FreePage returns a page id to the freelist for reuse by later allocations.
// The page's memory stays resident (existing iterators may still alias it)
// until the id is reallocated.
func (p *Pager) FreePage(id PageID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id == InvalidPageID || int(id) > len(p.pages) {
		return
	}
	p.free = append(p.free, id)
}

// FreeList returns a copy of the freelist (persisted in the engine's meta).
func (p *Pager) FreeList() []PageID {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]PageID(nil), p.free...)
}

// SetFreeList replaces the freelist (used when restoring from meta).
func (p *Pager) SetFreeList(ids []PageID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.free = p.free[:0]
	for _, id := range ids {
		if id != InvalidPageID && int(id) <= len(p.pages) {
			p.free = append(p.free, id)
		}
	}
}

// Get returns the page with the given id, charging a read if it is not in
// the buffer pool. An unknown id returns an error: page ids normally only
// come from the pager itself, but a corrupt data file or a bug must fail the
// query, not the process.
func (p *Pager) Get(id PageID) (*Page, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id == InvalidPageID || int(id) > len(p.pages) {
		return nil, fmt.Errorf("storage: get of unknown page %d (have %d)", id, len(p.pages))
	}
	if el, ok := p.cache[id]; ok {
		p.lru.MoveToFront(el)
		p.stats.CacheHits++
		return p.pages[id-1], nil
	}
	p.stats.PageReads++
	if p.extendsStream(id) {
		p.stats.SeqReads++
	} else {
		p.stats.RandReads++
	}
	p.admit(id)
	return p.pages[id-1], nil
}

// PageData returns the raw bytes of a page without touching the buffer-pool
// statistics. The WAL commit path uses it to copy page images.
func (p *Pager) PageData(id PageID) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id == InvalidPageID || int(id) > len(p.pages) {
		return nil, fmt.Errorf("storage: get of unknown page %d (have %d)", id, len(p.pages))
	}
	return p.pages[id-1].data, nil
}

// extendsStream reports whether the missed page continues one of the tracked
// read streams, and updates the stream table either way. Caller holds p.mu.
func (p *Pager) extendsStream(id PageID) bool {
	for i, head := range p.streams {
		if id == head+1 {
			// Continue this stream and mark it most recently used.
			copy(p.streams[1:i+1], p.streams[:i])
			p.streams[0] = id
			return true
		}
	}
	p.streams = append([]PageID{id}, p.streams...)
	if len(p.streams) > maxStreams {
		p.streams = p.streams[:maxStreams]
	}
	return false
}

// admit inserts id into the buffer pool, evicting the least recently used
// page if the pool is full. Caller holds p.mu.
func (p *Pager) admit(id PageID) {
	if el, ok := p.cache[id]; ok {
		p.lru.MoveToFront(el)
		return
	}
	p.cache[id] = p.lru.PushFront(id)
	if p.capacity > 0 && p.lru.Len() > p.capacity {
		back := p.lru.Back()
		evicted := back.Value.(PageID)
		p.lru.Remove(back)
		delete(p.cache, evicted)
	}
}

// BeforeWrite declares that the caller is about to mutate the page. It
// charges a page write, records the page dirty for the next checkpoint, and —
// when a statement is open — captures the page's pre-image the first time the
// statement touches it, so the statement can be rolled back. Callers must
// invoke it before the mutation, not after.
func (p *Pager) BeforeWrite(id PageID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.PageWrites++
	p.captureUndo(id)
	p.markDirtyLocked(id)
}

// captureUndo snapshots the page's current content into the open statement's
// undo record if the page predates the statement and has not been captured
// yet. Caller holds p.mu.
func (p *Pager) captureUndo(id PageID) {
	s := p.stmt
	if s == nil || int(id) > s.startPages {
		return // no statement, or page allocated by this statement
	}
	if _, ok := s.pre[id]; ok {
		return
	}
	img := make([]byte, PageSize)
	copy(img, p.pages[id-1].data)
	s.pre[id] = img
}

// markDirtyLocked adds id to the checkpoint dirty set and the open
// statement's write set. Caller holds p.mu.
func (p *Pager) markDirtyLocked(id PageID) {
	if p.dirty != nil {
		p.dirty[id] = struct{}{}
	}
	if s := p.stmt; s != nil {
		if _, ok := s.dirtySet[id]; !ok {
			s.dirtySet[id] = struct{}{}
			s.dirty = append(s.dirty, id)
		}
	}
}

// BeginStmt opens a statement scope: subsequent writes capture undo images
// until EndStmt or AbortStmt. Statements do not nest; the engine serializes
// writers. Memory-mode pagers may skip the statement lifecycle entirely.
func (p *Pager) BeginStmt() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stmt != nil {
		panic("storage: BeginStmt with a statement already open")
	}
	p.stmt = &stmtState{
		pre:        make(map[PageID][]byte, 8),
		dirtySet:   make(map[PageID]struct{}, 8),
		startPages: len(p.pages),
		startFree:  append([]PageID(nil), p.free...),
	}
}

// EndStmt closes the statement scope, returning its undo record. The engine
// holds the record until the statement's WAL entries are durable, and applies
// it (via Rollback, newest first) if durability fails.
func (p *Pager) EndStmt() *StmtUndo {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stmt
	if s == nil {
		return nil
	}
	p.stmt = nil
	return &StmtUndo{pre: s.pre, dirty: s.dirty, startPages: s.startPages, startFree: s.startFree}
}

// AbortStmt rolls back the open statement immediately (statement failed
// before reaching the WAL) and closes the scope.
func (p *Pager) AbortStmt() {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stmt
	if s == nil {
		return
	}
	p.stmt = nil
	p.rollbackLocked(&StmtUndo{pre: s.pre, dirty: s.dirty, startPages: s.startPages, startFree: s.startFree})
}

// Rollback applies one statement's undo record: pre-images are restored,
// pages the statement allocated are dropped, and the freelist is rewound.
// When unwinding several statements, apply the records newest-first so the
// final state is the oldest statement's pre-state.
func (p *Pager) Rollback(u *StmtUndo) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rollbackLocked(u)
}

func (p *Pager) rollbackLocked(u *StmtUndo) {
	for id, img := range u.pre {
		if int(id) <= len(p.pages) {
			copy(p.pages[id-1].data, img)
		}
	}
	for i := u.startPages; i < len(p.pages); i++ {
		id := PageID(i + 1)
		if el, ok := p.cache[id]; ok {
			p.lru.Remove(el)
			delete(p.cache, id)
		}
		if p.dirty != nil {
			delete(p.dirty, id)
		}
	}
	p.pages = p.pages[:u.startPages]
	p.free = append(p.free[:0], u.startFree...)
	p.streams = nil
}

// ApplyPageImage installs a full page image (WAL replay). Missing slots up to
// id are created so replay can restore allocations in any order. The page is
// marked dirty so the post-recovery checkpoint flushes it.
func (p *Pager) ApplyPageImage(id PageID, data []byte) error {
	if len(data) != PageSize {
		return fmt.Errorf("storage: page image of %d bytes (want %d)", len(data), PageSize)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for int(id) > len(p.pages) {
		nid := PageID(len(p.pages) + 1)
		p.pages = append(p.pages, newPage(nid))
		p.stats.PagesAllocated++
	}
	copy(p.pages[id-1].data, data)
	if p.dirty == nil {
		p.dirty = make(map[PageID]struct{})
	}
	p.dirty[id] = struct{}{}
	return nil
}

// DirtyCount returns the number of pages written since the last checkpoint.
func (p *Pager) DirtyCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.dirty)
}

// FlushDirty writes every dirty page to the data file and syncs it (the
// checkpoint's page-flush step). On success the dirty set is cleared. It is
// a no-op in memory mode.
func (p *Pager) FlushDirty() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.file == nil {
		return nil
	}
	for id := range p.dirty {
		if int(id) > len(p.pages) {
			continue // rolled-back allocation
		}
		if err := p.file.WritePage(p.pages[id-1]); err != nil {
			return err
		}
	}
	if err := p.file.Sync(); err != nil {
		return err
	}
	p.dirty = make(map[PageID]struct{})
	return nil
}

// CloseFile closes the data file (without flushing). Safe in memory mode.
func (p *Pager) CloseFile() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.file == nil {
		return nil
	}
	err := p.file.Close()
	p.file = nil
	return err
}

// VerifyChecksums recomputes nothing in memory (pages are authoritative) but
// re-reads the data file and reports pages whose on-disk checksum fails.
// Intended for tests that assert post-checkpoint invariants.
func (p *Pager) VerifyChecksums(fsys FS, name string) ([]PageID, error) {
	_, _, corrupt, err := OpenDataFile(fsys, name)
	return corrupt, err
}

// ResetCache empties the buffer pool so that subsequent accesses behave as a
// cold run, and forgets sequentiality state. Statistics are not reset.
func (p *Pager) ResetCache() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cache = make(map[PageID]*list.Element)
	p.lru = list.New()
	p.streams = nil
}

// ResetStats zeroes the I/O counters (but keeps the buffer pool contents).
func (p *Pager) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	alloc := p.stats.PagesAllocated
	p.stats = IOStats{PagesAllocated: alloc}
}

// Stats returns a snapshot of the I/O counters.
func (p *Pager) Stats() IOStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// NumPages returns the number of pages currently allocated.
func (p *Pager) NumPages() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pages)
}

// SetCapacity changes the buffer pool capacity. Shrinking evicts LRU pages.
func (p *Pager) SetCapacity(capacity int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.capacity = capacity
	if capacity <= 0 {
		return
	}
	for p.lru.Len() > capacity {
		back := p.lru.Back()
		delete(p.cache, back.Value.(PageID))
		p.lru.Remove(back)
	}
}
