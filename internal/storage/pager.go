package storage

import (
	"container/list"
	"fmt"
	"sync"
)

// IOStats accumulates the page-level I/O behaviour of a pager. The benchmark
// harness converts these counters into a modeled disk time; the paper's
// headline ratios are driven almost entirely by the number of pages each
// strategy must read.
type IOStats struct {
	// PageReads counts buffer-pool misses, i.e. pages fetched from "disk".
	PageReads int64
	// SeqReads is the subset of PageReads whose page id immediately follows
	// the previously missed page (sequential I/O).
	SeqReads int64
	// RandReads is PageReads - SeqReads.
	RandReads int64
	// CacheHits counts accesses served by the buffer pool.
	CacheHits int64
	// PageWrites counts pages written (allocation and flush).
	PageWrites int64
	// PagesAllocated is the total number of pages ever allocated.
	PagesAllocated int64
}

// Sub returns the difference s - o, useful for measuring a single query.
func (s IOStats) Sub(o IOStats) IOStats {
	return IOStats{
		PageReads:      s.PageReads - o.PageReads,
		SeqReads:       s.SeqReads - o.SeqReads,
		RandReads:      s.RandReads - o.RandReads,
		CacheHits:      s.CacheHits - o.CacheHits,
		PageWrites:     s.PageWrites - o.PageWrites,
		PagesAllocated: s.PagesAllocated - o.PagesAllocated,
	}
}

// Add returns the sum of two stats.
func (s IOStats) Add(o IOStats) IOStats {
	return IOStats{
		PageReads:      s.PageReads + o.PageReads,
		SeqReads:       s.SeqReads + o.SeqReads,
		RandReads:      s.RandReads + o.RandReads,
		CacheHits:      s.CacheHits + o.CacheHits,
		PageWrites:     s.PageWrites + o.PageWrites,
		PagesAllocated: s.PagesAllocated + o.PagesAllocated,
	}
}

// Pager owns all pages of a database instance. It simulates a disk (the full
// set of pages) fronted by a buffer pool of bounded size; accesses that miss
// the pool are charged as page reads and classified as sequential or random.
//
// Sequentiality is tracked per stream: a read that continues any of the most
// recently active read positions counts as sequential. This models the
// behaviour of disk read-ahead when a query interleaves scans of a few
// objects (e.g. the two sides of an index nested-loop join), which a single
// "last page" tracker would misclassify as entirely random.
type Pager struct {
	mu       sync.Mutex
	pages    []*Page // index = PageID-1; the simulated disk
	capacity int     // buffer pool capacity in pages; <=0 means unbounded
	cache    map[PageID]*list.Element
	lru      *list.List // front = most recently used; stores PageID
	streams  []PageID   // recent miss positions, most recent first
	stats    IOStats
}

// maxStreams is the number of concurrent sequential read streams the
// sequentiality classifier tracks (a proxy for the drive's read-ahead slots).
const maxStreams = 8

// NewPager creates a pager whose buffer pool holds up to capacity pages.
// capacity <= 0 means the pool is unbounded (every page is read from disk at
// most once until ResetCache is called).
func NewPager(capacity int) *Pager {
	return &Pager{
		capacity: capacity,
		cache:    make(map[PageID]*list.Element),
		lru:      list.New(),
	}
}

// Allocate creates a new zeroed page and returns it. The page is immediately
// resident in the buffer pool.
func (p *Pager) Allocate() *Page {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := PageID(len(p.pages) + 1)
	pg := newPage(id)
	p.pages = append(p.pages, pg)
	p.stats.PagesAllocated++
	p.stats.PageWrites++
	p.admit(id)
	return pg
}

// Get returns the page with the given id, charging a read if it is not in
// the buffer pool. It panics on an invalid id: page ids only come from the
// pager itself, so an unknown id is a programming error, not a runtime
// condition a caller could handle.
func (p *Pager) Get(id PageID) *Page {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id == InvalidPageID || int(id) > len(p.pages) {
		panic(fmt.Sprintf("storage: Get of unknown page %d", id))
	}
	if el, ok := p.cache[id]; ok {
		p.lru.MoveToFront(el)
		p.stats.CacheHits++
		return p.pages[id-1]
	}
	p.stats.PageReads++
	if p.extendsStream(id) {
		p.stats.SeqReads++
	} else {
		p.stats.RandReads++
	}
	p.admit(id)
	return p.pages[id-1]
}

// extendsStream reports whether the missed page continues one of the tracked
// read streams, and updates the stream table either way. Caller holds p.mu.
func (p *Pager) extendsStream(id PageID) bool {
	for i, head := range p.streams {
		if id == head+1 {
			// Continue this stream and mark it most recently used.
			copy(p.streams[1:i+1], p.streams[:i])
			p.streams[0] = id
			return true
		}
	}
	p.streams = append([]PageID{id}, p.streams...)
	if len(p.streams) > maxStreams {
		p.streams = p.streams[:maxStreams]
	}
	return false
}

// admit inserts id into the buffer pool, evicting the least recently used
// page if the pool is full. Caller holds p.mu.
func (p *Pager) admit(id PageID) {
	if el, ok := p.cache[id]; ok {
		p.lru.MoveToFront(el)
		return
	}
	p.cache[id] = p.lru.PushFront(id)
	if p.capacity > 0 && p.lru.Len() > p.capacity {
		back := p.lru.Back()
		evicted := back.Value.(PageID)
		p.lru.Remove(back)
		delete(p.cache, evicted)
	}
}

// MarkDirty records a write to the page (for statistics only; pages are
// always durable in this in-memory simulation).
func (p *Pager) MarkDirty(id PageID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.PageWrites++
}

// ResetCache empties the buffer pool so that subsequent accesses behave as a
// cold run, and forgets sequentiality state. Statistics are not reset.
func (p *Pager) ResetCache() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cache = make(map[PageID]*list.Element)
	p.lru = list.New()
	p.streams = nil
}

// ResetStats zeroes the I/O counters (but keeps the buffer pool contents).
func (p *Pager) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	alloc := p.stats.PagesAllocated
	p.stats = IOStats{PagesAllocated: alloc}
}

// Stats returns a snapshot of the I/O counters.
func (p *Pager) Stats() IOStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// NumPages returns the number of pages ever allocated.
func (p *Pager) NumPages() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pages)
}

// SetCapacity changes the buffer pool capacity. Shrinking evicts LRU pages.
func (p *Pager) SetCapacity(capacity int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.capacity = capacity
	if capacity <= 0 {
		return
	}
	for p.lru.Len() > capacity {
		back := p.lru.Back()
		delete(p.cache, back.Value.(PageID))
		p.lru.Remove(back)
	}
}
