package storage

import (
	"sync"
	"testing"
)

// TestConcurrentPagerSharedReads pins the pager's thread-safety contract
// under the race detector: concurrent readers (buffer-pool hits and misses,
// stats snapshots, capacity changes) over one pager, the access pattern of
// concurrent queries sharing a buffer pool.
func TestConcurrentPagerSharedReads(t *testing.T) {
	p := NewPager(8) // small pool so concurrent Gets evict constantly
	const pages = 64
	ids := make([]PageID, pages)
	for i := range ids {
		ids[i] = p.Allocate().ID()
	}
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				pg, err := p.Get(ids[(g*31+i)%pages])
				if err != nil {
					t.Error(err)
					return
				}
				_ = pg.Data()[0] // touch the page like a scan would
				if i%50 == 0 {
					_ = p.Stats()
					_ = p.NumPages()
				}
			}
		}(g)
	}
	wg.Wait()
	s := p.Stats()
	if s.PageReads+s.CacheHits < goroutines*400 {
		t.Errorf("accounting lost accesses: %d reads + %d hits", s.PageReads, s.CacheHits)
	}
}

// TestConcurrentPagerResetStats: stats snapshots and resets may interleave
// with reads (the bench harness resets between measurements while a server
// could be reading).
func TestConcurrentPagerResetStats(t *testing.T) {
	p := NewPager(0)
	var ids []PageID
	for i := 0; i < 16; i++ {
		ids = append(ids, p.Allocate().ID())
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				p.Get(ids[i%len(ids)])
				if g == 0 && i%100 == 0 {
					p.ResetStats()
				}
			}
		}(g)
	}
	wg.Wait()
}
