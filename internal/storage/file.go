package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// On-disk layout of the data file:
//
//	header  (64 bytes):  magic[8] version[4] pageSize[4] pageCount[8] crc[4] pad
//	slot i  (PageSize+8 bytes, PageID = i+1):  crc[4] reserved[4] data[PageSize]
//
// Every page slot carries a CRC32-C of its data so recovery can detect torn
// page flushes. The header's pageCount is informational: recovery derives the
// real count from the file size and the WAL, so a torn header write cannot
// lose data.
const (
	dataFileMagic   = "OLDELEPH"
	dataFileVersion = 1
	dataHeaderSize  = 64
	pageSlotSize    = PageSize + 8
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// DataFile is the page store on disk: a header followed by fixed-size page
// slots, each protected by a checksum. All pages stay memory-resident in the
// pager; the file exists for durability (checkpoints flush dirty pages here).
type DataFile struct {
	f         File
	pageCount int64 // pages currently represented in the file
}

// OpenDataFile opens (or creates) the data file at name and loads every page
// slot. Pages whose checksum does not verify are returned as nil entries with
// their ids collected in corrupt; the caller (recovery) must ensure the WAL
// overwrites them. A file shorter than the header — including a brand-new
// empty file — starts empty.
func OpenDataFile(fsys FS, name string) (df *DataFile, pages []*Page, corrupt []PageID, err error) {
	f, err := fsys.OpenFile(name)
	if err != nil {
		return nil, nil, nil, err
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, nil, nil, err
	}
	df = &DataFile{f: f}
	if size < dataHeaderSize {
		// New or never-synced file: write a fresh header. Any commits that
		// predate a first checkpoint are still in the WAL in full.
		if err := df.writeHeader(0); err != nil {
			f.Close()
			return nil, nil, nil, err
		}
		return df, nil, nil, nil
	}
	var hdr [dataHeaderSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		f.Close()
		return nil, nil, nil, err
	}
	if string(hdr[:8]) != dataFileMagic {
		f.Close()
		return nil, nil, nil, fmt.Errorf("storage: %s is not a data file (bad magic)", name)
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != dataFileVersion {
		f.Close()
		return nil, nil, nil, fmt.Errorf("storage: data file version %d not supported", v)
	}
	if ps := binary.LittleEndian.Uint32(hdr[12:16]); ps != PageSize {
		f.Close()
		return nil, nil, nil, fmt.Errorf("storage: data file page size %d, built for %d", ps, PageSize)
	}
	// The header's pageCount and CRC are advisory; a torn header rewrite must
	// not lose pages, so the slot count comes from the file size.
	n := (size - dataHeaderSize) / pageSlotSize
	df.pageCount = n
	pages = make([]*Page, n)
	buf := make([]byte, pageSlotSize)
	for i := int64(0); i < n; i++ {
		if _, err := f.ReadAt(buf, dataHeaderSize+i*pageSlotSize); err != nil {
			f.Close()
			return nil, nil, nil, err
		}
		id := PageID(i + 1)
		want := binary.LittleEndian.Uint32(buf[0:4])
		got := crc32.Checksum(buf[8:], castagnoli)
		pg := newPage(id)
		copy(pg.data, buf[8:])
		pages[i] = pg
		if want != got {
			corrupt = append(corrupt, id)
		}
	}
	return df, pages, corrupt, nil
}

func (df *DataFile) writeHeader(pageCount int64) error {
	var hdr [dataHeaderSize]byte
	copy(hdr[:8], dataFileMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], dataFileVersion)
	binary.LittleEndian.PutUint32(hdr[12:16], PageSize)
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(pageCount))
	binary.LittleEndian.PutUint32(hdr[24:28], crc32.Checksum(hdr[:24], castagnoli))
	_, err := df.f.WriteAt(hdr[:], 0)
	return err
}

// WritePage writes one page's slot (checksum + data) without syncing.
func (df *DataFile) WritePage(pg *Page) error {
	buf := make([]byte, pageSlotSize)
	binary.LittleEndian.PutUint32(buf[0:4], crc32.Checksum(pg.data, castagnoli))
	copy(buf[8:], pg.data)
	off := dataHeaderSize + (int64(pg.id)-1)*pageSlotSize
	if _, err := df.f.WriteAt(buf, off); err != nil {
		return err
	}
	if int64(pg.id) > df.pageCount {
		df.pageCount = int64(pg.id)
	}
	return nil
}

// Sync makes previous writes durable, updating the header first.
func (df *DataFile) Sync() error {
	if err := df.writeHeader(df.pageCount); err != nil {
		return err
	}
	return df.f.Sync()
}

// Truncate drops page slots beyond pageCount (used when recovery shrinks the
// page set after a rollback of never-committed allocations).
func (df *DataFile) Truncate(pageCount int64) error {
	if pageCount >= df.pageCount {
		return nil
	}
	df.pageCount = pageCount
	return df.f.Truncate(dataHeaderSize + pageCount*pageSlotSize)
}

// Close closes the underlying file (without syncing).
func (df *DataFile) Close() error { return df.f.Close() }

// WriteFileAtomic durably replaces name with data via the tmp+rename
// protocol, framing data with a magic number, length and checksum.
func WriteFileAtomic(fsys FS, name string, data []byte) error {
	tmp := name + ".tmp"
	f, err := fsys.OpenFile(tmp)
	if err != nil {
		return err
	}
	buf := make([]byte, 16+len(data))
	copy(buf[:8], dataFileMagic)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(len(data)))
	binary.LittleEndian.PutUint32(buf[12:16], crc32.Checksum(data, castagnoli))
	copy(buf[16:], data)
	if err := f.Truncate(0); err != nil {
		f.Close()
		return err
	}
	if _, err := f.WriteAt(buf, 0); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsys.Rename(tmp, name)
}

// ReadFileAtomic reads a file written by WriteFileAtomic. A missing, empty or
// corrupt file returns (nil, false, nil): the callers treat that as "no meta
// yet" because the atomic rename means any complete file is the newest one.
func ReadFileAtomic(fsys FS, name string) ([]byte, bool, error) {
	f, err := fsys.OpenFile(name)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil || size < 16 {
		return nil, false, err
	}
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0); err != nil {
		return nil, false, err
	}
	if string(buf[:8]) != dataFileMagic {
		return nil, false, nil
	}
	n := binary.LittleEndian.Uint32(buf[8:12])
	if int64(16+n) > size {
		return nil, false, nil
	}
	data := buf[16 : 16+n]
	if crc32.Checksum(data, castagnoli) != binary.LittleEndian.Uint32(buf[12:16]) {
		return nil, false, nil
	}
	return data, true, nil
}
