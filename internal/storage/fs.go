package storage

import (
	"io"
	"os"
	"path/filepath"
)

// File is the subset of *os.File the storage layer needs. The indirection
// exists so the fault-injection filesystem (internal/storage/faultfs) can
// stand in for the real one in crash-recovery tests.
type File interface {
	io.ReaderAt
	io.WriterAt
	Truncate(size int64) error
	Sync() error
	Close() error
	Size() (int64, error)
}

// FS is the filesystem surface the storage layer needs: open-or-create,
// atomic rename (used for the meta file's tmp+rename protocol) and remove.
type FS interface {
	// OpenFile opens name for reading and writing, creating it if absent.
	OpenFile(name string) (File, error)
	// Rename atomically replaces newname with oldname. Implementations must
	// make the rename durable before returning (the real implementation
	// fsyncs the parent directory).
	Rename(oldname, newname string) error
	// Remove deletes name; it is not an error if name does not exist.
	Remove(name string) error
}

// OSFS is the real filesystem.
type OSFS struct{}

type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// OpenFile implements FS.
func (OSFS) OpenFile(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Rename implements FS. The parent directory is fsynced so the rename
// survives a crash (POSIX does not promise durability for rename alone).
func (OSFS) Rename(oldname, newname string) error {
	if err := os.Rename(oldname, newname); err != nil {
		return err
	}
	if dir, err := os.Open(filepath.Dir(newname)); err == nil {
		_ = dir.Sync()
		_ = dir.Close()
	}
	return nil
}

// Remove implements FS.
func (OSFS) Remove(name string) error {
	err := os.Remove(name)
	if err != nil && os.IsNotExist(err) {
		return nil
	}
	return err
}
