// Package storage implements the on-"disk" layout of the row store: fixed
// size slotted pages, a pager with a buffer pool that accounts for
// sequential and random page I/O, and heap files built from those pages.
//
// Everything lives in memory, but all data passes through pages of
// PageSize bytes and every page access is charged to the pager's
// statistics. The statistics are what the benchmark harness uses to model
// disk time, so the layout deliberately mirrors a classic row store:
// records carry a configurable per-tuple overhead (default 9 bytes, the
// number quoted in the paper) and pages hold a slot directory.
package storage

import (
	"encoding/binary"
	"fmt"
)

// PageSize is the size of every page in bytes (8 KB, the SQL Server page size).
const PageSize = 8192

// DefaultTupleOverhead is the per-record overhead charged by heap files and
// index leaves, matching the 9 bytes per tuple mentioned in Section 3 of the
// paper ("Storage layer").
const DefaultTupleOverhead = 9

// PageID identifies a page within a Pager. Page 0 is never allocated so the
// zero value can mean "no page".
type PageID uint64

// InvalidPageID is the zero PageID, used to mean "no page".
const InvalidPageID PageID = 0

// Slotted page layout:
//
//	offset 0:  uint16 slot count
//	offset 2:  uint16 free-space start (grows up, past the slot directory)
//	offset 4:  uint16 free-space end   (grows down, records are placed here)
//	offset 6:  uint64 auxiliary header word (owners use it for next-page links
//	           or node metadata)
//	offset 14: slot directory, 4 bytes per slot (uint16 offset, uint16 length)
//	...
//	records, growing from the end of the page towards the slot directory.
const (
	pageHeaderSize = 14
	slotSize       = 4
	deletedOffset  = 0xFFFF
)

// Page is a single fixed-size page. Accessors maintain the slotted layout.
type Page struct {
	id   PageID
	data []byte
}

func newPage(id PageID) *Page {
	p := &Page{id: id, data: make([]byte, PageSize)}
	p.setFreeStart(pageHeaderSize)
	p.setFreeEnd(PageSize)
	return p
}

// ID returns the page's identifier.
func (p *Page) ID() PageID { return p.id }

// Data exposes the raw page bytes; callers must not resize it.
func (p *Page) Data() []byte { return p.data }

func (p *Page) numSlotsRaw() int  { return int(binary.LittleEndian.Uint16(p.data[0:2])) }
func (p *Page) setNumSlots(n int) { binary.LittleEndian.PutUint16(p.data[0:2], uint16(n)) }
func (p *Page) freeStart() int    { return int(binary.LittleEndian.Uint16(p.data[2:4])) }
func (p *Page) setFreeStart(v int) {
	binary.LittleEndian.PutUint16(p.data[2:4], uint16(v))
}
func (p *Page) freeEnd() int { return int(binary.LittleEndian.Uint16(p.data[4:6])) }
func (p *Page) setFreeEnd(v int) {
	if v == PageSize {
		// PageSize does not fit in a uint16; store 0 and treat it specially.
		binary.LittleEndian.PutUint16(p.data[4:6], 0)
		return
	}
	binary.LittleEndian.PutUint16(p.data[4:6], uint16(v))
}

func (p *Page) freeEndVal() int {
	v := p.freeEnd()
	if v == 0 {
		return PageSize
	}
	return v
}

// Aux returns the auxiliary header word (used by owners for next-page links).
func (p *Page) Aux() uint64 { return binary.LittleEndian.Uint64(p.data[6:14]) }

// SetAux stores the auxiliary header word.
func (p *Page) SetAux(v uint64) { binary.LittleEndian.PutUint64(p.data[6:14], v) }

// NumSlots returns the number of slots in the directory, including deleted ones.
func (p *Page) NumSlots() int { return p.numSlotsRaw() }

// FreeSpace returns the number of payload bytes that can still be inserted
// as a single new record (accounting for its slot directory entry).
func (p *Page) FreeSpace() int {
	free := p.freeEndVal() - p.freeStart() - slotSize
	if free < 0 {
		return 0
	}
	return free
}

// InsertRecord appends a record to the page, reserving overhead extra bytes
// to emulate the row header of a real row store. It returns the slot number,
// or ok=false if the page does not have room.
func (p *Page) InsertRecord(rec []byte, overhead int) (slot int, ok bool) {
	need := len(rec) + overhead
	if need > p.FreeSpace() {
		return 0, false
	}
	n := p.numSlotsRaw()
	if p.freeStart() == pageHeaderSize {
		p.setFreeStart(pageHeaderSize)
	}
	end := p.freeEndVal() - need
	copy(p.data[end:], rec)
	slotOff := pageHeaderSize + n*slotSize
	binary.LittleEndian.PutUint16(p.data[slotOff:], uint16(end))
	binary.LittleEndian.PutUint16(p.data[slotOff+2:], uint16(len(rec)))
	p.setNumSlots(n + 1)
	p.setFreeStart(slotOff + slotSize)
	p.setFreeEnd(end)
	return n, true
}

// Record returns the bytes of the record in the given slot, or nil if the
// slot is deleted or out of range. The returned slice aliases page memory.
func (p *Page) Record(slot int) []byte {
	if slot < 0 || slot >= p.numSlotsRaw() {
		return nil
	}
	slotOff := pageHeaderSize + slot*slotSize
	off := int(binary.LittleEndian.Uint16(p.data[slotOff:]))
	length := int(binary.LittleEndian.Uint16(p.data[slotOff+2:]))
	if off == deletedOffset {
		return nil
	}
	return p.data[off : off+length]
}

// DeleteRecord marks the slot as deleted. Space is not reclaimed (read-mostly
// workloads never need it); the slot remains so RIDs of other records stay valid.
func (p *Page) DeleteRecord(slot int) error {
	if slot < 0 || slot >= p.numSlotsRaw() {
		return fmt.Errorf("storage: delete of invalid slot %d on page %d", slot, p.id)
	}
	slotOff := pageHeaderSize + slot*slotSize
	binary.LittleEndian.PutUint16(p.data[slotOff:], deletedOffset)
	return nil
}

// RID identifies a record: the page it lives on and its slot within the page.
type RID struct {
	Page PageID
	Slot uint16
}

// String renders the RID for diagnostics.
func (r RID) String() string { return fmt.Sprintf("(%d:%d)", r.Page, r.Slot) }

// Valid reports whether the RID refers to an allocated page.
func (r RID) Valid() bool { return r.Page != InvalidPageID }
