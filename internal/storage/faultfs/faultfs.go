// Package faultfs is a fault-injecting in-memory filesystem implementing
// storage.FS, used by the crash-recovery harness. It models the failure
// surface of a real disk stack:
//
//   - unsynced writes live in a pending layer; only Sync merges them into the
//     durable layer, so a crash loses (a random subset of) them — the page
//     cache model;
//   - a kill point (SetKillAt) brings the filesystem down at the Nth mutating
//     operation: the op fails, later ops fail, and the write being executed
//     is torn (a random prefix survives in the pending layer);
//   - FailNextSyncs injects transient fsync failures that leave the
//     filesystem up — the "fsync returned EIO but the process lives" case;
//   - Recovered builds the post-crash filesystem: the durable layer plus
//     each pending write surviving with probability ½, in order, modeling
//     the kernel having flushed an arbitrary subset before power loss.
//
// Every mutating operation (WriteAt, Truncate, Sync, Rename, Remove) counts
// toward the kill point, so a test that first measures a workload's total op
// count can then re-run it killing at every WAL/commit boundary.
package faultfs

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"oldelephant/internal/storage"
)

// ErrInjected is the error returned by operations hit by an injected fault.
var ErrInjected = errors.New("faultfs: injected failure")

type op struct {
	truncate bool
	size     int64 // truncate target
	off      int64
	data     []byte
}

type fileState struct {
	logical []byte // what reads observe (durable + all pending)
	durable []byte // survives a crash for certain
	pending []op   // unsynced mutations, oldest first
}

func (f *fileState) apply(o op) {
	f.logical = applyOp(f.logical, o)
	f.pending = append(f.pending, o)
}

func applyOp(buf []byte, o op) []byte {
	if o.truncate {
		for int64(len(buf)) < o.size {
			buf = append(buf, 0)
		}
		return buf[:o.size]
	}
	end := o.off + int64(len(o.data))
	for int64(len(buf)) < end {
		buf = append(buf, 0)
	}
	copy(buf[o.off:end], o.data)
	return buf
}

// FS is the fault-injecting filesystem. The zero value is not usable; call New.
type FS struct {
	mu        sync.Mutex
	files     map[string]*fileState
	rng       *rand.Rand
	ops       int64
	killAt    int64 // fail the killAt-th op and go down; 0 = never
	down      bool
	syncFails int           // remaining transient Sync failures to inject
	syncDelay time.Duration // simulated device latency per Sync
}

// New creates an empty filesystem with a deterministic RNG.
func New(seed int64) *FS {
	return &FS{files: make(map[string]*fileState), rng: rand.New(rand.NewSource(seed))}
}

// SetKillAt arms the kill point: the nth mutating operation from now fails
// and brings the filesystem down (n counts from the current OpCount).
func (fs *FS) SetKillAt(n int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.killAt = fs.ops + n
}

// SetSyncDelay makes every Sync sleep for d first, simulating device latency.
// Group-commit tests use it: with instantaneous fsyncs there is no window for
// concurrent committers to batch behind a leader.
func (fs *FS) SetSyncDelay(d time.Duration) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.syncDelay = d
}

// FailNextSyncs makes the next n Sync calls fail without bringing the
// filesystem down — transient fsync errors.
func (fs *FS) FailNextSyncs(n int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.syncFails = n
}

// OpCount returns the number of mutating operations performed so far.
func (fs *FS) OpCount() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.ops
}

// Down reports whether the filesystem has crashed.
func (fs *FS) Down() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.down
}

// Crash brings the filesystem down immediately (without an op failing).
func (fs *FS) Crash() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.down = true
}

// countOp advances the op counter and reports whether this op is the kill
// point. Caller holds fs.mu; on true the caller must fail the op.
func (fs *FS) countOp() bool {
	fs.ops++
	if fs.killAt != 0 && fs.ops >= fs.killAt && !fs.down {
		fs.down = true
		return true
	}
	return false
}

// Recovered returns the filesystem a reboot would see: every file's durable
// bytes, plus each pending (unsynced) mutation surviving independently with
// probability ½ — applied in order, so surviving later writes can land on
// top of lost earlier ones, like a partially-flushed page cache. The
// returned filesystem is fresh (up, ops reset, no kill point armed).
func (fs *FS) Recovered() *FS {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := New(fs.rng.Int63())
	for name, f := range fs.files {
		content := append([]byte(nil), f.durable...)
		for _, o := range f.pending {
			if fs.rng.Intn(2) == 0 {
				content = applyOp(content, o)
			}
		}
		out.files[name] = &fileState{
			logical: append([]byte(nil), content...),
			durable: content,
		}
	}
	return out
}

// Clone deep-copies the filesystem in its current state (including pending
// layers and op counter, excluding RNG position). The recovery-idempotence
// test uses it to replay one crash image through recovery twice.
func (fs *FS) Clone() *FS {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := New(fs.rng.Int63())
	out.ops = fs.ops
	out.down = fs.down
	for name, f := range fs.files {
		nf := &fileState{
			logical: append([]byte(nil), f.logical...),
			durable: append([]byte(nil), f.durable...),
		}
		for _, o := range f.pending {
			nf.pending = append(nf.pending, op{truncate: o.truncate, size: o.size, off: o.off, data: append([]byte(nil), o.data...)})
		}
		out.files[name] = nf
	}
	return out
}

// OpenFile implements storage.FS.
func (fs *FS) OpenFile(name string) (storage.File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.down {
		return nil, fmt.Errorf("open %s: %w", name, ErrInjected)
	}
	if _, ok := fs.files[name]; !ok {
		fs.files[name] = &fileState{}
	}
	return &file{fs: fs, name: name}, nil
}

// Rename implements storage.FS. A completed rename is modeled as atomic and
// durable (the real implementation fsyncs the directory); a rename hit by
// the kill point never happens.
func (fs *FS) Rename(oldname, newname string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.down {
		return fmt.Errorf("rename %s: %w", oldname, ErrInjected)
	}
	if fs.countOp() {
		return fmt.Errorf("rename %s: %w", oldname, ErrInjected)
	}
	f, ok := fs.files[oldname]
	if !ok {
		return fmt.Errorf("rename %s: no such file", oldname)
	}
	fs.files[newname] = f
	delete(fs.files, oldname)
	return nil
}

// Remove implements storage.FS.
func (fs *FS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.down {
		return fmt.Errorf("remove %s: %w", name, ErrInjected)
	}
	if fs.countOp() {
		return fmt.Errorf("remove %s: %w", name, ErrInjected)
	}
	delete(fs.files, name)
	return nil
}

type file struct {
	fs   *FS
	name string
}

func (f *file) state() (*fileState, error) {
	st, ok := f.fs.files[f.name]
	if !ok {
		return nil, fmt.Errorf("%s: file removed", f.name)
	}
	return st, nil
}

func (f *file) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.fs.down {
		return 0, fmt.Errorf("read %s: %w", f.name, ErrInjected)
	}
	st, err := f.state()
	if err != nil {
		return 0, err
	}
	if off >= int64(len(st.logical)) {
		return 0, fmt.Errorf("read %s at %d: past EOF", f.name, off)
	}
	n := copy(p, st.logical[off:])
	if n < len(p) {
		return n, fmt.Errorf("read %s at %d: short read", f.name, off)
	}
	return n, nil
}

func (f *file) WriteAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.fs.down {
		return 0, fmt.Errorf("write %s: %w", f.name, ErrInjected)
	}
	st, err := f.state()
	if err != nil {
		return 0, err
	}
	if f.fs.countOp() {
		// Torn write: a random prefix reaches the pending layer before the
		// crash; the caller sees a failure either way.
		keep := f.fs.rng.Intn(len(p) + 1)
		if keep > 0 {
			st.apply(op{off: off, data: append([]byte(nil), p[:keep]...)})
		}
		return 0, fmt.Errorf("write %s: %w", f.name, ErrInjected)
	}
	st.apply(op{off: off, data: append([]byte(nil), p...)})
	return len(p), nil
}

func (f *file) Truncate(size int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.fs.down {
		return fmt.Errorf("truncate %s: %w", f.name, ErrInjected)
	}
	st, err := f.state()
	if err != nil {
		return err
	}
	if f.fs.countOp() {
		return fmt.Errorf("truncate %s: %w", f.name, ErrInjected)
	}
	st.apply(op{truncate: true, size: size})
	return nil
}

func (f *file) Sync() error {
	f.fs.mu.Lock()
	if d := f.fs.syncDelay; d > 0 {
		// Sleep outside the lock: the device is busy, not the filesystem.
		f.fs.mu.Unlock()
		time.Sleep(d)
		f.fs.mu.Lock()
	}
	defer f.fs.mu.Unlock()
	if f.fs.down {
		return fmt.Errorf("sync %s: %w", f.name, ErrInjected)
	}
	st, err := f.state()
	if err != nil {
		return err
	}
	if f.fs.syncFails > 0 {
		// Transient failure: the filesystem stays up and the pending layer
		// stays pending (a later successful Sync may still persist it).
		f.fs.syncFails--
		return fmt.Errorf("sync %s: %w", f.name, ErrInjected)
	}
	if f.fs.countOp() {
		return fmt.Errorf("sync %s: %w", f.name, ErrInjected)
	}
	st.durable = append(st.durable[:0], st.logical...)
	st.pending = nil
	return nil
}

func (f *file) Size() (int64, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.fs.down {
		return 0, fmt.Errorf("size %s: %w", f.name, ErrInjected)
	}
	st, err := f.state()
	if err != nil {
		return 0, err
	}
	return int64(len(st.logical)), nil
}

func (f *file) Close() error { return nil }
