package storage

import (
	"fmt"

	"oldelephant/internal/value"
)

// HeapFile stores rows in insertion order across a chain of slotted pages.
// It is the storage structure for tables without a clustered index.
type HeapFile struct {
	pager    *Pager
	pageIDs  []PageID
	overhead int
	rowCount int64
}

// NewHeapFile creates an empty heap file backed by the pager. overhead is the
// per-tuple byte overhead charged on insertion; pass a negative value to use
// DefaultTupleOverhead.
func NewHeapFile(pager *Pager, overhead int) *HeapFile {
	if overhead < 0 {
		overhead = DefaultTupleOverhead
	}
	return &HeapFile{pager: pager, overhead: overhead}
}

// OpenHeapFile reattaches a heap file to its pages (recovery path: the page
// list and row count come from the persisted catalog meta).
func OpenHeapFile(pager *Pager, pageIDs []PageID, rowCount int64, overhead int) *HeapFile {
	if overhead < 0 {
		overhead = DefaultTupleOverhead
	}
	return &HeapFile{pager: pager, pageIDs: pageIDs, overhead: overhead, rowCount: rowCount}
}

// PageIDs returns the heap's page chain (for meta persistence and freeing).
func (h *HeapFile) PageIDs() []PageID { return h.pageIDs }

// Insert appends a row and returns its RID.
func (h *HeapFile) Insert(row []value.Value) (RID, error) {
	rec := value.EncodeTuple(nil, row)
	if len(rec)+h.overhead > PageSize-pageHeaderSize-slotSize {
		return RID{}, fmt.Errorf("storage: row of %d bytes does not fit in a page", len(rec))
	}
	if len(h.pageIDs) > 0 {
		last, err := h.pager.Get(h.pageIDs[len(h.pageIDs)-1])
		if err != nil {
			return RID{}, err
		}
		h.pager.BeforeWrite(last.ID())
		if slot, ok := last.InsertRecord(rec, h.overhead); ok {
			h.rowCount++
			return RID{Page: last.ID(), Slot: uint16(slot)}, nil
		}
	}
	pg := h.pager.Allocate()
	h.pageIDs = append(h.pageIDs, pg.ID())
	slot, ok := pg.InsertRecord(rec, h.overhead)
	if !ok {
		return RID{}, fmt.Errorf("storage: row of %d bytes does not fit in a fresh page", len(rec))
	}
	h.rowCount++
	return RID{Page: pg.ID(), Slot: uint16(slot)}, nil
}

// Get fetches the row stored at rid.
func (h *HeapFile) Get(rid RID) ([]value.Value, error) {
	pg, err := h.pager.Get(rid.Page)
	if err != nil {
		return nil, err
	}
	rec := pg.Record(int(rid.Slot))
	if rec == nil {
		return nil, fmt.Errorf("storage: no record at %v", rid)
	}
	row, _, err := value.DecodeTuple(rec)
	return row, err
}

// Delete removes the row at rid (the slot is tombstoned).
func (h *HeapFile) Delete(rid RID) error {
	pg, err := h.pager.Get(rid.Page)
	if err != nil {
		return err
	}
	h.pager.BeforeWrite(rid.Page)
	if err := pg.DeleteRecord(int(rid.Slot)); err != nil {
		return err
	}
	h.rowCount--
	return nil
}

// RowCount returns the number of live rows.
func (h *HeapFile) RowCount() int64 { return h.rowCount }

// NumPages returns the number of pages the heap occupies.
func (h *HeapFile) NumPages() int { return len(h.pageIDs) }

// Scan returns an iterator over all live rows in storage order.
func (h *HeapFile) Scan() *HeapIterator {
	return h.ScanPages(0, len(h.pageIDs))
}

// ScanPages returns an iterator over the live rows of count consecutive heap
// pages starting at page index start. Concatenating the iterators of a
// partition of the page list reproduces Scan exactly; parallel scans use it
// to split a heap into morsels.
func (h *HeapFile) ScanPages(start, count int) *HeapIterator {
	end := start + count
	if end > len(h.pageIDs) {
		end = len(h.pageIDs)
	}
	return &HeapIterator{heap: h, pageIdx: start, endIdx: end}
}

// HeapIterator walks a heap file page by page, slot by slot.
type HeapIterator struct {
	heap    *HeapFile
	pageIdx int
	endIdx  int // exclusive page-index bound
	slot    int
	page    *Page
	err     error
}

// Err returns the first page-access error the iterator hit. NextRecord
// reports exhaustion on error, so callers that see ok == false must check
// Err to distinguish end-of-heap from a failed page read.
func (it *HeapIterator) Err() error { return it.err }

// Next returns the next row and its RID. ok is false at end of file.
func (it *HeapIterator) Next() (row []value.Value, rid RID, ok bool, err error) {
	rec, rid, ok := it.NextRecord()
	if !ok {
		return nil, RID{}, false, it.err
	}
	row, _, err = value.DecodeTuple(rec)
	if err != nil {
		return nil, RID{}, false, err
	}
	return row, rid, true, nil
}

// NextRecord returns the next row's raw tuple encoding without decoding it —
// the span-level form the projected scan fill consumes. The record aliases
// page memory, which the pager keeps resident, so callers may hold it (and
// sub-spans of it) across Next calls.
func (it *HeapIterator) NextRecord() (rec []byte, rid RID, ok bool) {
	if it.err != nil {
		return nil, RID{}, false
	}
	for {
		if it.page == nil {
			if it.pageIdx >= it.endIdx {
				return nil, RID{}, false
			}
			pg, err := it.heap.pager.Get(it.heap.pageIDs[it.pageIdx])
			if err != nil {
				it.err = err
				return nil, RID{}, false
			}
			it.page = pg
			it.slot = 0
		}
		for it.slot < it.page.NumSlots() {
			rec := it.page.Record(it.slot)
			slot := it.slot
			it.slot++
			if rec == nil {
				continue // deleted
			}
			return rec, RID{Page: it.page.ID(), Slot: uint16(slot)}, true
		}
		it.page = nil
		it.pageIdx++
	}
}
