// Crash-surface tests for the file-backed page store itself, below the WAL:
// per-page checksum detection and the atomic meta-file write protocol. They
// live in package storage_test so they can drive the fault-injecting
// filesystem (faultfs imports storage). The names carry "Crash" so the CI
// crash-recovery job (-run Crash) exercises them alongside the engine-level
// matrix.
package storage_test

import (
	"bytes"
	"fmt"
	"testing"

	"oldelephant/internal/storage"
	"oldelephant/internal/storage/faultfs"
)

// TestCrashDataFileChecksumDetectsCorruption: a page whose bytes rot on disk
// (torn flush, bit rot) fails its CRC on reopen and is reported corrupt;
// intact pages are unaffected.
func TestCrashDataFileChecksumDetectsCorruption(t *testing.T) {
	fs := faultfs.New(1)
	p, corrupt, err := storage.OpenPagerFile(fs, "data", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(corrupt) != 0 {
		t.Fatalf("fresh file reports corrupt pages %v", corrupt)
	}
	var ids []storage.PageID
	for i := 0; i < 4; i++ {
		pg := p.Allocate()
		if _, ok := pg.InsertRecord([]byte(fmt.Sprintf("record-%d", i)), 0); !ok {
			t.Fatal("insert failed")
		}
		ids = append(ids, pg.ID())
	}
	if err := p.FlushDirty(); err != nil {
		t.Fatal(err)
	}
	if err := p.CloseFile(); err != nil {
		t.Fatal(err)
	}

	// Rot one byte in the middle of the third page's slot (header is 64
	// bytes, each slot is 8+PageSize bytes, slots are 0-indexed by id-1).
	f, err := fs.OpenFile("data")
	if err != nil {
		t.Fatal(err)
	}
	off := 64 + int64(ids[2]-1)*(storage.PageSize+8) + 8 + 100
	if _, err := f.WriteAt([]byte{0xFF}, off); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	p2, corrupt, err := storage.OpenPagerFile(fs, "data", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.CloseFile()
	if len(corrupt) != 1 || corrupt[0] != ids[2] {
		t.Fatalf("corrupt = %v, want [%d]", corrupt, ids[2])
	}
	for i, id := range ids {
		if id == ids[2] {
			continue
		}
		pg, err := p2.Get(id)
		if err != nil {
			t.Fatalf("page %d: %v", id, err)
		}
		if want := fmt.Sprintf("record-%d", i); string(pg.Record(0)) != want {
			t.Errorf("page %d record = %q, want %q", id, pg.Record(0), want)
		}
	}
}

// TestCrashWriteFileAtomicNeverTorn: killing the filesystem at every
// operation of an atomic file replacement leaves either the old or the new
// contents — never a mixture, never garbage.
func TestCrashWriteFileAtomicNeverTorn(t *testing.T) {
	v1 := bytes.Repeat([]byte("old-state-"), 100)
	v2 := bytes.Repeat([]byte("NEW-STATE!"), 120)

	// Probe: how many mutating ops does the second write take?
	probe := faultfs.New(0)
	if err := storage.WriteFileAtomic(probe, "meta", v1); err != nil {
		t.Fatal(err)
	}
	base := probe.OpCount()
	if err := storage.WriteFileAtomic(probe, "meta", v2); err != nil {
		t.Fatal(err)
	}
	total := probe.OpCount() - base

	for kill := int64(1); kill <= total; kill++ {
		fs := faultfs.New(kill)
		if err := storage.WriteFileAtomic(fs, "meta", v1); err != nil {
			t.Fatal(err)
		}
		fs.SetKillAt(kill)
		err := storage.WriteFileAtomic(fs, "meta", v2) // expected to fail mid-way
		rfs := fs.Recovered()
		got, ok, rerr := storage.ReadFileAtomic(rfs, "meta")
		if rerr != nil {
			t.Fatalf("kill@%d: read after recovery: %v", kill, rerr)
		}
		if !ok {
			t.Fatalf("kill@%d: meta file vanished", kill)
		}
		if !bytes.Equal(got, v1) && !bytes.Equal(got, v2) {
			t.Fatalf("kill@%d: recovered %d bytes matching neither version", kill, len(got))
		}
		if err == nil && !bytes.Equal(got, v2) {
			t.Fatalf("kill@%d: write acknowledged but old contents survived", kill)
		}
	}
}
