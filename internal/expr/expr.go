// Package expr implements bound scalar expressions evaluated over rows.
// The SQL planner turns parsed expressions (which reference columns by name)
// into these bound forms (which reference columns by ordinal), so the
// executor never does name resolution on the hot path.
package expr

import (
	"fmt"
	"strings"

	"oldelephant/internal/value"
)

// Expr is a scalar expression evaluated against a row.
type Expr interface {
	// Eval computes the expression over the given row.
	Eval(row []value.Value) (value.Value, error)
	// String renders the expression for plan explanations.
	String() string
}

// Column references a column of the input row by ordinal.
type Column struct {
	Index int
	Name  string // for display only
}

// NewColumn returns a bound column reference.
func NewColumn(index int, name string) *Column { return &Column{Index: index, Name: name} }

// Eval implements Expr.
func (c *Column) Eval(row []value.Value) (value.Value, error) {
	if c.Index < 0 || c.Index >= len(row) {
		return value.Null(), fmt.Errorf("expr: column ordinal %d out of range (row has %d columns)", c.Index, len(row))
	}
	return row[c.Index], nil
}

// String implements Expr.
func (c *Column) String() string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("#%d", c.Index)
}

// Const is a literal value.
type Const struct {
	Val value.Value
}

// NewConst returns a literal expression.
func NewConst(v value.Value) *Const { return &Const{Val: v} }

// Eval implements Expr.
func (c *Const) Eval([]value.Value) (value.Value, error) { return c.Val, nil }

// String implements Expr.
func (c *Const) String() string {
	if c.Val.Kind == value.KindString || c.Val.Kind == value.KindDate {
		return "'" + c.Val.String() + "'"
	}
	return c.Val.String()
}

// BinaryOp enumerates binary operators.
type BinaryOp int

// Binary operators.
const (
	OpAdd BinaryOp = iota
	OpSub
	OpMul
	OpDiv
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

var opNames = map[BinaryOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
	OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "AND", OpOr: "OR",
}

// String returns the SQL spelling of the operator.
func (op BinaryOp) String() string { return opNames[op] }

// IsComparison reports whether the operator is a comparison predicate.
func (op BinaryOp) IsComparison() bool { return op >= OpEq && op <= OpGe }

// Binary applies a binary operator to two sub-expressions.
type Binary struct {
	Op   BinaryOp
	L, R Expr
}

// NewBinary builds a binary expression.
func NewBinary(op BinaryOp, l, r Expr) *Binary { return &Binary{Op: op, L: l, R: r} }

// Eq builds l = r.
func Eq(l, r Expr) *Binary { return NewBinary(OpEq, l, r) }

// And combines predicates with AND, returning nil for an empty list.
func And(preds ...Expr) Expr {
	var out Expr
	for _, p := range preds {
		if p == nil {
			continue
		}
		if out == nil {
			out = p
		} else {
			out = NewBinary(OpAnd, out, p)
		}
	}
	return out
}

// Eval implements Expr.
func (b *Binary) Eval(row []value.Value) (value.Value, error) {
	l, err := b.L.Eval(row)
	if err != nil {
		return value.Null(), err
	}
	// Short-circuit logical operators.
	switch b.Op {
	case OpAnd:
		if !l.IsNull() && !l.Bool() {
			return value.NewBool(false), nil
		}
	case OpOr:
		if !l.IsNull() && l.Bool() {
			return value.NewBool(true), nil
		}
	}
	r, err := b.R.Eval(row)
	if err != nil {
		return value.Null(), err
	}
	switch b.Op {
	case OpAdd:
		return value.Add(l, r), nil
	case OpSub:
		return value.Sub(l, r), nil
	case OpMul:
		return value.Mul(l, r), nil
	case OpDiv:
		return value.Div(l, r), nil
	case OpAnd, OpOr:
		if l.IsNull() || r.IsNull() {
			return value.Null(), nil
		}
		if b.Op == OpAnd {
			return value.NewBool(l.Bool() && r.Bool()), nil
		}
		return value.NewBool(l.Bool() || r.Bool()), nil
	default:
		if l.IsNull() || r.IsNull() {
			return value.Null(), nil
		}
		cmp := value.Compare(l, r)
		switch b.Op {
		case OpEq:
			return value.NewBool(cmp == 0), nil
		case OpNe:
			return value.NewBool(cmp != 0), nil
		case OpLt:
			return value.NewBool(cmp < 0), nil
		case OpLe:
			return value.NewBool(cmp <= 0), nil
		case OpGt:
			return value.NewBool(cmp > 0), nil
		case OpGe:
			return value.NewBool(cmp >= 0), nil
		}
	}
	return value.Null(), fmt.Errorf("expr: unknown operator %d", b.Op)
}

// String implements Expr.
func (b *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// Not negates a boolean expression.
type Not struct {
	E Expr
}

// Eval implements Expr.
func (n *Not) Eval(row []value.Value) (value.Value, error) {
	v, err := n.E.Eval(row)
	if err != nil {
		return value.Null(), err
	}
	if v.IsNull() {
		return value.Null(), nil
	}
	return value.NewBool(!v.Bool()), nil
}

// String implements Expr.
func (n *Not) String() string { return "NOT " + n.E.String() }

// Between is the inclusive range predicate e BETWEEN lo AND hi.
type Between struct {
	E, Lo, Hi Expr
}

// Eval implements Expr.
func (b *Between) Eval(row []value.Value) (value.Value, error) {
	v, err := b.E.Eval(row)
	if err != nil {
		return value.Null(), err
	}
	lo, err := b.Lo.Eval(row)
	if err != nil {
		return value.Null(), err
	}
	hi, err := b.Hi.Eval(row)
	if err != nil {
		return value.Null(), err
	}
	if v.IsNull() || lo.IsNull() || hi.IsNull() {
		return value.Null(), nil
	}
	return value.NewBool(value.Compare(v, lo) >= 0 && value.Compare(v, hi) <= 0), nil
}

// String implements Expr.
func (b *Between) String() string {
	return fmt.Sprintf("(%s BETWEEN %s AND %s)", b.E, b.Lo, b.Hi)
}

// IsNull tests a value for SQL NULL.
type IsNull struct {
	E      Expr
	Negate bool
}

// Eval implements Expr.
func (i *IsNull) Eval(row []value.Value) (value.Value, error) {
	v, err := i.E.Eval(row)
	if err != nil {
		return value.Null(), err
	}
	return value.NewBool(v.IsNull() != i.Negate), nil
}

// String implements Expr.
func (i *IsNull) String() string {
	if i.Negate {
		return fmt.Sprintf("(%s IS NOT NULL)", i.E)
	}
	return fmt.Sprintf("(%s IS NULL)", i.E)
}

// InList is the predicate e IN (v1, v2, ...).
type InList struct {
	E    Expr
	List []Expr
}

// Eval implements Expr.
func (in *InList) Eval(row []value.Value) (value.Value, error) {
	v, err := in.E.Eval(row)
	if err != nil {
		return value.Null(), err
	}
	if v.IsNull() {
		return value.Null(), nil
	}
	for _, item := range in.List {
		iv, err := item.Eval(row)
		if err != nil {
			return value.Null(), err
		}
		if !iv.IsNull() && value.Compare(v, iv) == 0 {
			return value.NewBool(true), nil
		}
	}
	return value.NewBool(false), nil
}

// String implements Expr.
func (in *InList) String() string {
	parts := make([]string, len(in.List))
	for i, e := range in.List {
		parts[i] = e.String()
	}
	return fmt.Sprintf("(%s IN (%s))", in.E, strings.Join(parts, ", "))
}

// SplitConjuncts flattens a predicate tree of ANDs into its conjuncts.
func SplitConjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*Binary); ok && b.Op == OpAnd {
		return append(SplitConjuncts(b.L), SplitConjuncts(b.R)...)
	}
	return []Expr{e}
}

// ColumnsUsed returns the set of column ordinals referenced by the expression.
func ColumnsUsed(e Expr) map[int]bool {
	out := make(map[int]bool)
	collectColumns(e, out)
	return out
}

func collectColumns(e Expr, out map[int]bool) {
	switch t := e.(type) {
	case nil:
	case *Column:
		out[t.Index] = true
	case *Const:
	case *Binary:
		collectColumns(t.L, out)
		collectColumns(t.R, out)
	case *Not:
		collectColumns(t.E, out)
	case *Between:
		collectColumns(t.E, out)
		collectColumns(t.Lo, out)
		collectColumns(t.Hi, out)
	case *IsNull:
		collectColumns(t.E, out)
	case *InList:
		collectColumns(t.E, out)
		for _, item := range t.List {
			collectColumns(item, out)
		}
	}
}

// Shift returns a copy of the expression with every column ordinal increased
// by delta. Used when rows of two operators are concatenated by joins.
func Shift(e Expr, delta int) Expr {
	switch t := e.(type) {
	case nil:
		return nil
	case *Column:
		return &Column{Index: t.Index + delta, Name: t.Name}
	case *Const:
		return t
	case *Binary:
		return &Binary{Op: t.Op, L: Shift(t.L, delta), R: Shift(t.R, delta)}
	case *Not:
		return &Not{E: Shift(t.E, delta)}
	case *Between:
		return &Between{E: Shift(t.E, delta), Lo: Shift(t.Lo, delta), Hi: Shift(t.Hi, delta)}
	case *IsNull:
		return &IsNull{E: Shift(t.E, delta), Negate: t.Negate}
	case *InList:
		list := make([]Expr, len(t.List))
		for i, item := range t.List {
			list[i] = Shift(item, delta)
		}
		return &InList{E: Shift(t.E, delta), List: list}
	default:
		return e
	}
}

// EvalBool evaluates a predicate, treating NULL and errors-free non-boolean
// results with SQL semantics: only a true result passes.
func EvalBool(e Expr, row []value.Value) (bool, error) {
	if e == nil {
		return true, nil
	}
	v, err := e.Eval(row)
	if err != nil {
		return false, err
	}
	return !v.IsNull() && v.Bool(), nil
}
