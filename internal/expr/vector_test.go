package expr

import (
	"math/rand"
	"testing"

	"oldelephant/internal/value"
)

// randomBatch builds a column-major batch with mixed kinds and some NULLs:
// col0 int, col1 float, col2 string, col3 date, col4 int with nulls.
func randomBatch(rng *rand.Rand, n int) [][]value.Value {
	cols := make([][]value.Value, 5)
	for c := range cols {
		cols[c] = make([]value.Value, n)
	}
	for i := 0; i < n; i++ {
		cols[0][i] = value.NewInt(int64(rng.Intn(100)))
		cols[1][i] = value.NewFloat(float64(rng.Intn(1000)) / 10)
		cols[2][i] = value.NewString(string(rune('a' + rng.Intn(5))))
		cols[3][i] = value.NewDate(9000 + int64(rng.Intn(400)))
		if rng.Intn(4) == 0 {
			cols[4][i] = value.Null()
		} else {
			cols[4][i] = value.NewInt(int64(rng.Intn(50)))
		}
	}
	return cols
}

func rowAt(cols [][]value.Value, i int) []value.Value {
	row := make([]value.Value, len(cols))
	for c := range cols {
		row[c] = cols[c][i]
	}
	return row
}

// testExprs is the kernel coverage set: comparisons (both operand orders),
// arithmetic, logicals, BETWEEN, IS NULL, IN and NOT.
func testExprs() []Expr {
	col := func(i int) Expr { return NewColumn(i, "") }
	ci := func(v int64) Expr { return NewConst(value.NewInt(v)) }
	return []Expr{
		NewBinary(OpGt, col(0), ci(50)),
		NewBinary(OpLt, ci(50), col(0)),
		NewBinary(OpEq, col(2), NewConst(value.NewString("c"))),
		NewBinary(OpNe, col(4), ci(10)),
		NewBinary(OpGe, col(1), NewConst(value.NewFloat(42.5))),
		NewBinary(OpLe, col(3), NewConst(value.NewDate(9200))),
		NewBinary(OpAdd, col(0), col(4)),
		NewBinary(OpMul, col(1), ci(3)),
		NewBinary(OpSub, col(3), ci(7)),
		NewBinary(OpDiv, col(1), col(4)),
		NewBinary(OpAnd, NewBinary(OpGt, col(0), ci(20)), NewBinary(OpLt, col(0), ci(80))),
		NewBinary(OpOr, NewBinary(OpLt, col(0), ci(10)), NewBinary(OpGt, col(4), ci(40))),
		NewBinary(OpAnd, NewBinary(OpGt, col(4), ci(10)), NewBinary(OpEq, col(2), NewConst(value.NewString("b")))),
		&Between{E: col(0), Lo: ci(25), Hi: ci(75)},
		&Between{E: col(3), Lo: NewConst(value.NewDate(9100)), Hi: NewConst(value.NewDate(9300))},
		&Between{E: col(0), Lo: ci(10), Hi: col(4)},
		&IsNull{E: col(4)},
		&IsNull{E: col(4), Negate: true},
		&InList{E: col(0), List: []Expr{ci(1), ci(2), ci(3), ci(97)}},
		&Not{E: NewBinary(OpGt, col(0), ci(50))},
	}
}

// TestEvalVectorMatchesEval checks that every kernel computes exactly what
// row-at-a-time Eval computes, over full batches and under selection vectors.
func TestEvalVectorMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 500
	cols := randomBatch(rng, n)
	// A strided selection vector exercises the sel paths.
	var sel []int
	for i := 0; i < n; i += 3 {
		sel = append(sel, i)
	}
	for _, e := range testExprs() {
		for _, s := range [][]int{nil, sel} {
			vec, err := EvalVector(e, cols, s, n)
			if err != nil {
				t.Fatalf("%s: EvalVector: %v", e, err)
			}
			forEachSel(s, n, func(i int) {
				want, err := e.Eval(rowAt(cols, i))
				if err != nil {
					t.Fatalf("%s: Eval row %d: %v", e, i, err)
				}
				got := vec[i]
				if got.Kind != want.Kind || value.Compare(got, want) != 0 {
					t.Fatalf("%s: row %d: vector=%v (%v) row=%v (%v)", e, i, got, got.Kind, want, want.Kind)
				}
			})
		}
	}
}

// TestSelectVectorMatchesEvalBool checks that selection through the filter
// kernels keeps exactly the rows EvalBool keeps.
func TestSelectVectorMatchesEvalBool(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 500
	cols := randomBatch(rng, n)
	var sel []int
	for i := 1; i < n; i += 2 {
		sel = append(sel, i)
	}
	for _, e := range testExprs() {
		for _, s := range [][]int{nil, sel} {
			got, err := SelectVector(e, cols, s, n)
			if err != nil {
				t.Fatalf("%s: SelectVector: %v", e, err)
			}
			var want []int
			forEachSel(s, n, func(i int) {
				pass, err := EvalBool(e, rowAt(cols, i))
				if err != nil {
					t.Fatalf("%s: EvalBool row %d: %v", e, i, err)
				}
				if pass {
					want = append(want, i)
				}
			})
			if len(got) != len(want) {
				t.Fatalf("%s: selected %d rows, want %d", e, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: selection[%d]=%d, want %d", e, i, got[i], want[i])
				}
			}
		}
	}
}

// TestSelectVectorNilPredicate checks the pass-through contract.
func TestSelectVectorNilPredicate(t *testing.T) {
	cols := [][]value.Value{{value.NewInt(1), value.NewInt(2), value.NewInt(3)}}
	all, err := SelectVector(nil, cols, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 || all[0] != 0 || all[2] != 2 {
		t.Fatalf("nil predicate over nil sel = %v, want [0 1 2]", all)
	}
	sel := []int{0, 2}
	got, err := SelectVector(nil, cols, sel, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("nil predicate over sel = %v, want [0 2]", got)
	}
}

// TestSelectVectorNullConstant: comparisons against a NULL constant select
// nothing, as in SQL.
func TestSelectVectorNullConstant(t *testing.T) {
	cols := [][]value.Value{{value.NewInt(1), value.NewInt(2)}}
	pred := NewBinary(OpEq, NewColumn(0, "x"), NewConst(value.Null()))
	got, err := SelectVector(pred, cols, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("x = NULL selected %v, want none", got)
	}
}

// TestEvalVectorColumnOutOfRange: kernels surface binding errors rather than
// panicking.
func TestEvalVectorColumnOutOfRange(t *testing.T) {
	cols := [][]value.Value{{value.NewInt(1)}}
	if _, err := EvalVector(NewColumn(3, "bad"), cols, nil, 1); err == nil {
		t.Fatal("expected out-of-range error from EvalVector")
	}
	if _, err := SelectVector(NewBinary(OpGt, NewColumn(3, "bad"), NewConst(value.NewInt(0))), cols, nil, 1); err == nil {
		t.Fatal("expected out-of-range error from SelectVector")
	}
}
