package expr

import (
	"fmt"
	"math/rand"
	"testing"

	"oldelephant/internal/value"
	"oldelephant/internal/vector"
)

// randomColumns builds column-major test data with mixed kinds and some
// NULLs: col0 int, col1 float, col2 string, col3 date, col4 int with nulls.
// Every column has few distinct values so all encodings are exercised
// meaningfully.
func randomColumns(rng *rand.Rand, n int) [][]value.Value {
	cols := make([][]value.Value, 5)
	for c := range cols {
		cols[c] = make([]value.Value, n)
	}
	for i := 0; i < n; i++ {
		cols[0][i] = value.NewInt(int64(rng.Intn(100)))
		cols[1][i] = value.NewFloat(float64(rng.Intn(1000)) / 10)
		cols[2][i] = value.NewString(string(rune('a' + rng.Intn(5))))
		cols[3][i] = value.NewDate(9000 + int64(rng.Intn(400)))
		if rng.Intn(4) == 0 {
			cols[4][i] = value.Null()
		} else {
			cols[4][i] = value.NewInt(int64(rng.Intn(50)))
		}
	}
	return cols
}

// encodeAs re-encodes per-row values into the requested vector encoding.
// Any data can be represented as Flat, RLE or Dict; Const requires a
// constant column and is tested separately.
func encodeAs(tb testing.TB, enc vector.Encoding, vals []value.Value) *vector.Vector {
	tb.Helper()
	switch enc {
	case vector.Flat:
		return vector.NewFlat(vals)
	case vector.RLE:
		var runVals []value.Value
		var starts []int
		for i, v := range vals {
			if len(runVals) == 0 || !sameValue(v, runVals[len(runVals)-1]) {
				runVals = append(runVals, v)
				starts = append(starts, i)
			}
		}
		// The exclusive end of run r is the start of run r+1.
		ends := make([]int, len(starts))
		for r := 0; r+1 < len(starts); r++ {
			ends[r] = starts[r+1]
		}
		if len(ends) > 0 {
			ends[len(ends)-1] = len(vals)
		}
		return vector.NewRLE(runVals, ends)
	case vector.Dict:
		var dict []value.Value
		codes := make([]uint32, len(vals))
		index := make(map[string]uint32)
		for i, v := range vals {
			key := v.Kind.String() + "|" + v.String()
			code, ok := index[key]
			if !ok {
				code = uint32(len(dict))
				index[key] = code
				dict = append(dict, v)
			}
			codes[i] = code
		}
		return vector.NewDict(dict, codes)
	default:
		tb.Fatalf("encodeAs: unsupported encoding %v", enc)
		return nil
	}
}

func sameValue(a, b value.Value) bool { return a.Kind == b.Kind && value.Equal(a, b) }

// encodeBatch encodes every column with the given encoding.
func encodeBatch(tb testing.TB, enc vector.Encoding, cols [][]value.Value) []*vector.Vector {
	out := make([]*vector.Vector, len(cols))
	for c := range cols {
		out[c] = encodeAs(tb, enc, cols[c])
	}
	return out
}

func rowAt(cols [][]value.Value, i int) []value.Value {
	row := make([]value.Value, len(cols))
	for c := range cols {
		row[c] = cols[c][i]
	}
	return row
}

// testExprs is the kernel coverage set: comparisons (both operand orders),
// arithmetic, logicals, BETWEEN, IS NULL, IN and NOT.
func testExprs() []Expr {
	col := func(i int) Expr { return NewColumn(i, "") }
	ci := func(v int64) Expr { return NewConst(value.NewInt(v)) }
	return []Expr{
		NewBinary(OpGt, col(0), ci(50)),
		NewBinary(OpLt, ci(50), col(0)),
		NewBinary(OpEq, col(2), NewConst(value.NewString("c"))),
		NewBinary(OpNe, col(4), ci(10)),
		NewBinary(OpGe, col(1), NewConst(value.NewFloat(42.5))),
		NewBinary(OpLe, col(3), NewConst(value.NewDate(9200))),
		NewBinary(OpAdd, col(0), col(4)),
		NewBinary(OpMul, col(1), ci(3)),
		NewBinary(OpSub, col(3), ci(7)),
		NewBinary(OpDiv, col(1), col(4)),
		NewBinary(OpAnd, NewBinary(OpGt, col(0), ci(20)), NewBinary(OpLt, col(0), ci(80))),
		NewBinary(OpOr, NewBinary(OpLt, col(0), ci(10)), NewBinary(OpGt, col(4), ci(40))),
		NewBinary(OpAnd, NewBinary(OpGt, col(4), ci(10)), NewBinary(OpEq, col(2), NewConst(value.NewString("b")))),
		&Between{E: col(0), Lo: ci(25), Hi: ci(75)},
		&Between{E: col(3), Lo: NewConst(value.NewDate(9100)), Hi: NewConst(value.NewDate(9300))},
		&Between{E: col(0), Lo: ci(10), Hi: col(4)},
		&IsNull{E: col(4)},
		&IsNull{E: col(4), Negate: true},
		&InList{E: col(0), List: []Expr{ci(1), ci(2), ci(3), ci(97)}},
		&Not{E: NewBinary(OpGt, col(0), ci(50))},
	}
}

var testEncodings = []vector.Encoding{vector.Flat, vector.RLE, vector.Dict}

// TestEvalVectorMatchesEval checks that every kernel computes exactly what
// row-at-a-time Eval computes — over full batches, under selection vectors,
// and for every vector encoding of the same data.
func TestEvalVectorMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 500
	cols := randomColumns(rng, n)
	// A strided selection vector exercises the sel paths.
	var sel []int
	for i := 0; i < n; i += 3 {
		sel = append(sel, i)
	}
	for _, enc := range testEncodings {
		batch := encodeBatch(t, enc, cols)
		for _, e := range testExprs() {
			for _, s := range [][]int{nil, sel} {
				vec, err := EvalVector(e, batch, s, n)
				if err != nil {
					t.Fatalf("%v %s: EvalVector: %v", enc, e, err)
				}
				forEachSel(s, n, func(i int) {
					want, err := e.Eval(rowAt(cols, i))
					if err != nil {
						t.Fatalf("%v %s: Eval row %d: %v", enc, e, i, err)
					}
					got := vec.Get(i)
					if got.Kind != want.Kind || value.Compare(got, want) != 0 {
						t.Fatalf("%v %s: row %d: vector=%v (%v) row=%v (%v)", enc, e, i, got, got.Kind, want, want.Kind)
					}
				})
			}
		}
	}
}

// TestEvalVectorPreservesEncoding pins the compression-preserving contract:
// single-column expressions over compressed vectors keep the encoding, and
// column references pass the vector through untouched.
func TestEvalVectorPreservesEncoding(t *testing.T) {
	vals := []value.Value{value.NewInt(1), value.NewInt(1), value.NewInt(2), value.NewInt(2), value.NewInt(3)}
	pred := NewBinary(OpGt, NewColumn(0, "x"), NewConst(value.NewInt(1)))
	cases := []struct {
		in   *vector.Vector
		want vector.Encoding
	}{
		{encodeAs(t, vector.RLE, vals), vector.RLE},
		{encodeAs(t, vector.Dict, vals), vector.Dict},
		{vector.NewConst(value.NewInt(2), 5), vector.Const},
		{vector.NewFlat(vals), vector.Flat},
	}
	for _, c := range cases {
		out, err := EvalVector(pred, []*vector.Vector{c.in}, nil, 5)
		if err != nil {
			t.Fatal(err)
		}
		if out.Encoding() != c.want {
			t.Errorf("predicate over %v vector produced %v, want %v", c.in.Encoding(), out.Encoding(), c.want)
		}
		colRef, err := EvalVector(NewColumn(0, "x"), []*vector.Vector{c.in}, nil, 5)
		if err != nil {
			t.Fatal(err)
		}
		if colRef != c.in {
			t.Errorf("column reference over %v vector did not pass through", c.in.Encoding())
		}
	}
	// A constant expression evaluates to a Const vector regardless of inputs.
	out, err := EvalVector(NewConst(value.NewInt(7)), []*vector.Vector{vector.NewFlat(vals)}, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if out.Encoding() != vector.Const || out.Len() != 5 {
		t.Errorf("constant expression produced %v of length %d", out.Encoding(), out.Len())
	}
}

// TestSelectVectorMatchesEvalBool checks that selection through the filter
// kernels keeps exactly the rows EvalBool keeps, for every encoding.
func TestSelectVectorMatchesEvalBool(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 500
	cols := randomColumns(rng, n)
	var sel []int
	for i := 1; i < n; i += 2 {
		sel = append(sel, i)
	}
	for _, enc := range testEncodings {
		batch := encodeBatch(t, enc, cols)
		for _, e := range testExprs() {
			for _, s := range [][]int{nil, sel} {
				got, err := SelectVector(e, batch, s, n)
				if err != nil {
					t.Fatalf("%v %s: SelectVector: %v", enc, e, err)
				}
				var want []int
				forEachSel(s, n, func(i int) {
					pass, err := EvalBool(e, rowAt(cols, i))
					if err != nil {
						t.Fatalf("%v %s: EvalBool row %d: %v", enc, e, i, err)
					}
					if pass {
						want = append(want, i)
					}
				})
				if len(got) != len(want) {
					t.Fatalf("%v %s: selected %d rows, want %d", enc, e, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%v %s: selection[%d]=%d, want %d", enc, e, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestSelectVectorConstColumn: predicates over a Const vector decide once for
// the whole batch — everything passes or nothing does.
func TestSelectVectorConstColumn(t *testing.T) {
	cols := []*vector.Vector{vector.NewConst(value.NewInt(5), 4)}
	keep, err := SelectVector(NewBinary(OpGt, NewColumn(0, "x"), NewConst(value.NewInt(3))), cols, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(keep) != 4 {
		t.Fatalf("passing const predicate kept %v, want all 4 rows", keep)
	}
	drop, err := SelectVector(NewBinary(OpLt, NewColumn(0, "x"), NewConst(value.NewInt(3))), cols, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(drop) != 0 {
		t.Fatalf("failing const predicate kept %v, want none", drop)
	}
	// Under a selection vector the passing case returns the selection itself.
	sel := []int{1, 3}
	got, err := SelectVector(NewBinary(OpGe, NewColumn(0, "x"), NewConst(value.NewInt(5))), cols, sel, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("const predicate under sel = %v, want [1 3]", got)
	}
}

// TestSelectVectorNilPredicate checks the pass-through contract.
func TestSelectVectorNilPredicate(t *testing.T) {
	cols := []*vector.Vector{vector.NewFlat([]value.Value{value.NewInt(1), value.NewInt(2), value.NewInt(3)})}
	all, err := SelectVector(nil, cols, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 || all[0] != 0 || all[2] != 2 {
		t.Fatalf("nil predicate over nil sel = %v, want [0 1 2]", all)
	}
	sel := []int{0, 2}
	got, err := SelectVector(nil, cols, sel, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("nil predicate over sel = %v, want [0 2]", got)
	}
}

// TestSelectVectorNullConstant: comparisons against a NULL constant select
// nothing, as in SQL, on every encoding.
func TestSelectVectorNullConstant(t *testing.T) {
	vals := []value.Value{value.NewInt(1), value.NewInt(2)}
	for _, enc := range testEncodings {
		cols := []*vector.Vector{encodeAs(t, enc, vals)}
		pred := NewBinary(OpEq, NewColumn(0, "x"), NewConst(value.Null()))
		got, err := SelectVector(pred, cols, nil, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 0 {
			t.Fatalf("%v: x = NULL selected %v, want none", enc, got)
		}
	}
}

// TestEvalVectorColumnOutOfRange: kernels surface binding errors rather than
// panicking.
func TestEvalVectorColumnOutOfRange(t *testing.T) {
	cols := []*vector.Vector{vector.NewFlat([]value.Value{value.NewInt(1)})}
	if _, err := EvalVector(NewColumn(3, "bad"), cols, nil, 1); err == nil {
		t.Fatal("expected out-of-range error from EvalVector")
	}
	if _, err := SelectVector(NewBinary(OpGt, NewColumn(3, "bad"), NewConst(value.NewInt(0))), cols, nil, 1); err == nil {
		t.Fatal("expected out-of-range error from SelectVector")
	}
}

// TestParallelConcurrentKernels is the concurrent-readers regression test
// for the vectorized kernels: parallel pipeline clones share expression
// trees and (via morsel batches) may share compressed vectors, so
// SelectVector and EvalVector must be pure over both. Eight goroutines
// hammer the same vectors with the same shared predicate and must all get
// the serial answer (run under -race in CI).
func TestParallelConcurrentKernels(t *testing.T) {
	n := 4096
	vals := make([]value.Value, n)
	for i := range vals {
		vals[i] = value.NewInt(int64(i / 131))
	}
	dict := []value.Value{value.NewInt(5), value.NewInt(11), value.NewInt(17)}
	codes := make([]uint32, n)
	for i := range codes {
		codes[i] = uint32(i % len(dict))
	}
	sharedCols := [][]*vector.Vector{
		{vector.Compress(vals)},
		{vector.NewDict(dict, codes)},
		{vector.NewConst(value.NewInt(9), n)},
	}
	pred := NewBinary(OpAnd,
		NewBinary(OpGe, NewColumn(0, "c"), NewConst(value.NewInt(4))),
		NewBinary(OpLt, NewColumn(0, "c"), NewConst(value.NewInt(14))))
	for _, cols := range sharedCols {
		wantSel, err := SelectVector(pred, cols, nil, n)
		if err != nil {
			t.Fatal(err)
		}
		wantVec, err := EvalVector(pred, cols, nil, n)
		if err != nil {
			t.Fatal(err)
		}
		wantFlat := wantVec.Flat()
		done := make(chan error, 8)
		for g := 0; g < 8; g++ {
			go func() {
				for iter := 0; iter < 20; iter++ {
					sel, err := SelectVector(pred, cols, nil, n)
					if err != nil {
						done <- err
						return
					}
					if len(sel) != len(wantSel) {
						done <- errorf("selection length %d, want %d", len(sel), len(wantSel))
						return
					}
					vec, err := EvalVector(pred, cols, nil, n)
					if err != nil {
						done <- err
						return
					}
					flat := vec.Flat()
					for i := 0; i < n; i += 111 {
						if flat[i].Kind != wantFlat[i].Kind || (!flat[i].IsNull() && value.Compare(flat[i], wantFlat[i]) != 0) {
							done <- errorf("row %d: %v, want %v", i, flat[i], wantFlat[i])
							return
						}
					}
				}
				done <- nil
			}()
		}
		for g := 0; g < 8; g++ {
			if err := <-done; err != nil {
				t.Fatalf("%v kernel under concurrency: %v", cols[0].Encoding(), err)
			}
		}
	}
}

func errorf(format string, args ...any) error { return fmt.Errorf(format, args...) }
