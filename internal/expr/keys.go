package expr

import (
	"oldelephant/internal/value"
)

// Typed join/group keys. SQL equality over the engine's value domain has two
// properties the hash operators exploit:
//
//   - Compare-equal numeric values (INT, FLOAT, DATE, BOOL) always share
//     their order-preserving value.NumericSortKey word, so a single numeric
//     key column hashes as one uint64 — no string encoding, no allocation.
//     The converse does not quite hold: the word passes through float64, so
//     two int64 values beyond 2^53 can share a word while Compare (exact for
//     int-int pairs) separates them. Hash buckets therefore over-approximate
//     equality, and the join operators re-check each hash-equal pair with
//     value.Compare before emitting it.
//   - NULL is never equal to anything (not even NULL), so rows whose key
//     contains a NULL can never join and are dropped from both hash-table
//     build and probe before any encoding happens.
//
// Composite and string keys fall back to the order-preserving value.EncodeKey
// byte encoding; its numeric columns carry the same word (and the same
// over-approximation), so the Compare re-check covers that path too.

// NumericKeyWord returns the 64-bit typed key a single numeric value
// contributes to a hash join or aggregation. ok is false for NULL (which can
// never compare equal) and for strings (which take the encoded-key path).
func NumericKeyWord(v value.Value) (word uint64, ok bool) {
	if v.Kind == value.KindNull || v.Kind == value.KindString {
		return 0, false
	}
	return value.NumericSortKey(v), true
}

// AppendKey appends the order-preserving composite encoding of the picked
// columns of row to dst. null reports that at least one key value was NULL —
// such a key can never satisfy SQL equality, so hash operators skip the row
// instead of encoding it.
func AppendKey(dst []byte, row []value.Value, keys []int) (out []byte, null bool) {
	for _, k := range keys {
		v := row[k]
		if v.Kind == value.KindNull {
			return dst, true
		}
		dst = value.AppendKeyValue(dst, v)
	}
	return dst, false
}
