package expr

import (
	"bytes"
	"testing"

	"oldelephant/internal/value"
)

func TestNumericKeyWord(t *testing.T) {
	// Values that compare equal share a word; distinct values do not.
	pairs := [][2]value.Value{
		{value.NewInt(7), value.NewFloat(7)},
		{value.NewInt(0), value.NewFloat(0)},
		{value.NewInt(-3), value.NewFloat(-3)},
		{value.NewDate(1000), value.NewInt(1000)},
	}
	for _, p := range pairs {
		a, okA := NumericKeyWord(p[0])
		b, okB := NumericKeyWord(p[1])
		if !okA || !okB {
			t.Fatalf("NumericKeyWord rejected numeric values %v, %v", p[0], p[1])
		}
		if a != b {
			t.Errorf("equal values %v and %v hash to different words", p[0], p[1])
		}
	}
	distinct := []value.Value{value.NewInt(1), value.NewInt(2), value.NewFloat(1.5), value.NewInt(-1)}
	seen := map[uint64]value.Value{}
	for _, v := range distinct {
		w, ok := NumericKeyWord(v)
		if !ok {
			t.Fatalf("NumericKeyWord rejected %v", v)
		}
		if prev, dup := seen[w]; dup {
			t.Errorf("distinct values %v and %v collide", prev, v)
		}
		seen[w] = v
	}
	// NULL and strings take the encoded-key path.
	if _, ok := NumericKeyWord(value.Null()); ok {
		t.Error("NumericKeyWord accepted NULL")
	}
	if _, ok := NumericKeyWord(value.NewString("x")); ok {
		t.Error("NumericKeyWord accepted a string")
	}
}

func TestAppendKey(t *testing.T) {
	row := []value.Value{value.NewInt(1), value.NewString("a"), value.Null()}
	key, null := AppendKey(nil, row, []int{0, 1})
	if null {
		t.Fatal("AppendKey reported NULL for a non-NULL key")
	}
	// Matches the order-preserving EncodeKey of the same columns.
	want := value.EncodeKey(nil, []value.Value{row[0], row[1]})
	if !bytes.Equal(key, want) {
		t.Errorf("AppendKey = %x, want %x", key, want)
	}
	// Any NULL component flags the key as unmatchable.
	if _, null := AppendKey(nil, row, []int{0, 2}); !null {
		t.Error("AppendKey missed a NULL key component")
	}
	// The buffer is reused from position 0.
	buf := []byte("garbage")
	key2, _ := AppendKey(buf[:0], row, []int{0, 1})
	if !bytes.Equal(key2, want) {
		t.Errorf("AppendKey with reused buffer = %x, want %x", key2, want)
	}
}
