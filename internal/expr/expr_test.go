package expr

import (
	"testing"

	"oldelephant/internal/value"
)

func row(vals ...value.Value) []value.Value { return vals }

func TestColumnAndConst(t *testing.T) {
	r := row(value.NewInt(10), value.NewString("x"))
	c := NewColumn(1, "name")
	v, err := c.Eval(r)
	if err != nil || v.S != "x" {
		t.Fatalf("column eval = %v, %v", v, err)
	}
	if c.String() != "name" {
		t.Errorf("String = %q", c.String())
	}
	if (&Column{Index: 3}).String() != "#3" {
		t.Errorf("anonymous column String wrong")
	}
	if _, err := NewColumn(5, "oops").Eval(r); err == nil {
		t.Error("expected out-of-range error")
	}
	k := NewConst(value.NewInt(7))
	v, _ = k.Eval(nil)
	if v.Int() != 7 {
		t.Errorf("const eval = %v", v)
	}
	if NewConst(value.NewString("s")).String() != "'s'" {
		t.Error("string const should be quoted")
	}
	if NewConst(value.NewInt(3)).String() != "3" {
		t.Error("int const should be bare")
	}
}

func TestArithmeticAndComparisons(t *testing.T) {
	r := row(value.NewInt(4), value.NewInt(10))
	a, b := NewColumn(0, "a"), NewColumn(1, "b")
	cases := []struct {
		e    Expr
		want value.Value
	}{
		{NewBinary(OpAdd, a, b), value.NewInt(14)},
		{NewBinary(OpSub, b, a), value.NewInt(6)},
		{NewBinary(OpMul, a, NewConst(value.NewInt(3))), value.NewInt(12)},
		{NewBinary(OpDiv, b, a), value.NewFloat(2.5)},
		{NewBinary(OpEq, a, NewConst(value.NewInt(4))), value.NewBool(true)},
		{NewBinary(OpNe, a, b), value.NewBool(true)},
		{NewBinary(OpLt, a, b), value.NewBool(true)},
		{NewBinary(OpLe, a, NewConst(value.NewInt(4))), value.NewBool(true)},
		{NewBinary(OpGt, a, b), value.NewBool(false)},
		{NewBinary(OpGe, b, a), value.NewBool(true)},
	}
	for _, c := range cases {
		got, err := c.e.Eval(r)
		if err != nil {
			t.Fatalf("%s: %v", c.e, err)
		}
		if value.Compare(got, c.want) != 0 {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestLogicalOperatorsAndNullSemantics(t *testing.T) {
	tr := NewConst(value.NewBool(true))
	fa := NewConst(value.NewBool(false))
	nu := NewConst(value.Null())
	if v, _ := NewBinary(OpAnd, tr, fa).Eval(nil); v.Bool() {
		t.Error("true AND false should be false")
	}
	if v, _ := NewBinary(OpOr, fa, tr).Eval(nil); !v.Bool() {
		t.Error("false OR true should be true")
	}
	// Short circuits.
	if v, _ := NewBinary(OpAnd, fa, nu).Eval(nil); v.IsNull() || v.Bool() {
		t.Error("false AND NULL should be false (short circuit)")
	}
	if v, _ := NewBinary(OpOr, tr, nu).Eval(nil); !v.Bool() {
		t.Error("true OR NULL should be true (short circuit)")
	}
	if v, _ := NewBinary(OpAnd, tr, nu).Eval(nil); !v.IsNull() {
		t.Error("true AND NULL should be NULL")
	}
	if v, _ := NewBinary(OpEq, nu, tr).Eval(nil); !v.IsNull() {
		t.Error("NULL = x should be NULL")
	}
	if v, _ := (&Not{E: nu}).Eval(nil); !v.IsNull() {
		t.Error("NOT NULL should be NULL")
	}
	if v, _ := (&Not{E: fa}).Eval(nil); !v.Bool() {
		t.Error("NOT false should be true")
	}
	ok, err := EvalBool(NewBinary(OpEq, nu, nu), nil)
	if err != nil || ok {
		t.Error("EvalBool on NULL predicate should be false")
	}
	ok, _ = EvalBool(nil, nil)
	if !ok {
		t.Error("EvalBool(nil) should be true")
	}
}

func TestBetweenInListIsNull(t *testing.T) {
	r := row(value.NewInt(15), value.Null())
	a := NewColumn(0, "a")
	b := &Between{E: a, Lo: NewConst(value.NewInt(10)), Hi: NewConst(value.NewInt(20))}
	if v, _ := b.Eval(r); !v.Bool() {
		t.Error("15 BETWEEN 10 AND 20 should hold")
	}
	b2 := &Between{E: a, Lo: NewConst(value.NewInt(16)), Hi: NewConst(value.NewInt(20))}
	if v, _ := b2.Eval(r); v.Bool() {
		t.Error("15 BETWEEN 16 AND 20 should not hold")
	}
	nullB := &Between{E: NewColumn(1, "n"), Lo: NewConst(value.NewInt(1)), Hi: NewConst(value.NewInt(2))}
	if v, _ := nullB.Eval(r); !v.IsNull() {
		t.Error("NULL BETWEEN should be NULL")
	}
	in := &InList{E: a, List: []Expr{NewConst(value.NewInt(1)), NewConst(value.NewInt(15))}}
	if v, _ := in.Eval(r); !v.Bool() {
		t.Error("15 IN (1,15) should hold")
	}
	in2 := &InList{E: a, List: []Expr{NewConst(value.NewInt(1))}}
	if v, _ := in2.Eval(r); v.Bool() {
		t.Error("15 IN (1) should not hold")
	}
	isn := &IsNull{E: NewColumn(1, "n")}
	if v, _ := isn.Eval(r); !v.Bool() {
		t.Error("NULL IS NULL should hold")
	}
	isnn := &IsNull{E: a, Negate: true}
	if v, _ := isnn.Eval(r); !v.Bool() {
		t.Error("15 IS NOT NULL should hold")
	}
}

func TestSplitConjunctsAndColumnsUsed(t *testing.T) {
	a, b, c := NewColumn(0, "a"), NewColumn(1, "b"), NewColumn(2, "c")
	pred := And(
		Eq(a, NewConst(value.NewInt(1))),
		NewBinary(OpGt, b, NewConst(value.NewInt(2))),
		&Between{E: c, Lo: NewConst(value.NewInt(0)), Hi: b},
	)
	conj := SplitConjuncts(pred)
	if len(conj) != 3 {
		t.Fatalf("SplitConjuncts returned %d items", len(conj))
	}
	used := ColumnsUsed(pred)
	for i := 0; i < 3; i++ {
		if !used[i] {
			t.Errorf("column %d should be used", i)
		}
	}
	if len(SplitConjuncts(nil)) != 0 {
		t.Error("SplitConjuncts(nil) should be empty")
	}
	if And() != nil {
		t.Error("And() of nothing should be nil")
	}
	single := And(nil, a, nil)
	if single != a {
		t.Error("And of one predicate should return it unchanged")
	}
}

func TestShift(t *testing.T) {
	pred := And(
		Eq(NewColumn(0, "a"), NewColumn(2, "c")),
		&Between{E: NewColumn(1, "b"), Lo: NewConst(value.NewInt(0)), Hi: NewColumn(3, "d")},
		&InList{E: NewColumn(0, "a"), List: []Expr{NewConst(value.NewInt(5))}},
		&IsNull{E: NewColumn(4, "e")},
		&Not{E: NewColumn(5, "f")},
	)
	shifted := Shift(pred, 10)
	used := ColumnsUsed(shifted)
	for _, want := range []int{10, 11, 12, 13, 14, 15} {
		if !used[want] {
			t.Errorf("shifted expression should use column %d; used=%v", want, used)
		}
	}
	if Shift(nil, 1) != nil {
		t.Error("Shift(nil) should be nil")
	}
	// Original is unchanged.
	if !ColumnsUsed(pred)[0] {
		t.Error("Shift must not mutate the original expression")
	}
}

func TestStringRendering(t *testing.T) {
	e := And(
		NewBinary(OpGt, NewColumn(0, "l_shipdate"), NewConst(value.MustParseDate("1995-06-01"))),
		Eq(NewColumn(1, "l_suppkey"), NewConst(value.NewInt(7))),
	)
	s := e.String()
	if s == "" || s[0] != '(' {
		t.Errorf("unexpected rendering %q", s)
	}
	for _, sub := range []string{"l_shipdate", "1995-06-01", "l_suppkey", "AND", ">"} {
		if !contains(s, sub) {
			t.Errorf("rendering %q missing %q", s, sub)
		}
	}
	in := &InList{E: NewColumn(0, "x"), List: []Expr{NewConst(value.NewInt(1)), NewConst(value.NewInt(2))}}
	if !contains(in.String(), "IN (1, 2)") {
		t.Errorf("InList rendering = %q", in.String())
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}
