package expr

import (
	"fmt"

	"oldelephant/internal/value"
)

// This file implements vectorized (batch-at-a-time) expression evaluation in
// the style of MonetDB/X100: expressions are evaluated over whole column
// vectors under a selection vector instead of one row at a time, so the
// per-row interpretation overhead (tree walk, interface dispatch) is paid
// once per batch rather than once per value.
//
// Conventions shared with the exec package's Batch:
//
//   - cols is a column-major batch: cols[c][i] is column c of physical row i;
//   - n is the physical row count (needed when cols is empty);
//   - sel is an optional selection vector of physical row indices, in
//     ascending order; nil means all n rows are live;
//   - result vectors are physically aligned with cols: entry i corresponds to
//     physical row i. Entries outside the selection are unspecified.
//
// Column references evaluate to the input vector itself (zero copy), which is
// why callers must treat result vectors as read-only.

// forEachSel visits every live physical row index.
func forEachSel(sel []int, n int, fn func(i int)) {
	if sel == nil {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	for _, i := range sel {
		fn(i)
	}
}

// EvalVector evaluates an expression over a column-major batch, returning a
// vector physically aligned with the input columns. Only entries covered by
// sel are meaningful.
func EvalVector(e Expr, cols [][]value.Value, sel []int, n int) ([]value.Value, error) {
	switch t := e.(type) {
	case *Column:
		if t.Index < 0 || t.Index >= len(cols) {
			return nil, fmt.Errorf("expr: column ordinal %d out of range (batch has %d columns)", t.Index, len(cols))
		}
		return cols[t.Index], nil
	case *Const:
		out := make([]value.Value, n)
		for i := range out {
			out[i] = t.Val
		}
		return out, nil
	case *Binary:
		return evalBinaryVector(t, cols, sel, n)
	case *Not:
		in, err := EvalVector(t.E, cols, sel, n)
		if err != nil {
			return nil, err
		}
		out := make([]value.Value, n)
		forEachSel(sel, n, func(i int) {
			v := in[i]
			if v.IsNull() {
				out[i] = value.Null()
			} else {
				out[i] = value.NewBool(!v.Bool())
			}
		})
		return out, nil
	case *Between:
		ev, err := EvalVector(t.E, cols, sel, n)
		if err != nil {
			return nil, err
		}
		lo, err := EvalVector(t.Lo, cols, sel, n)
		if err != nil {
			return nil, err
		}
		hi, err := EvalVector(t.Hi, cols, sel, n)
		if err != nil {
			return nil, err
		}
		out := make([]value.Value, n)
		forEachSel(sel, n, func(i int) {
			v, l, h := ev[i], lo[i], hi[i]
			if v.IsNull() || l.IsNull() || h.IsNull() {
				out[i] = value.Null()
			} else {
				out[i] = value.NewBool(value.Compare(v, l) >= 0 && value.Compare(v, h) <= 0)
			}
		})
		return out, nil
	case *IsNull:
		in, err := EvalVector(t.E, cols, sel, n)
		if err != nil {
			return nil, err
		}
		out := make([]value.Value, n)
		forEachSel(sel, n, func(i int) {
			out[i] = value.NewBool(in[i].IsNull() != t.Negate)
		})
		return out, nil
	case *InList:
		ev, err := EvalVector(t.E, cols, sel, n)
		if err != nil {
			return nil, err
		}
		items := make([][]value.Value, len(t.List))
		for j, item := range t.List {
			iv, err := EvalVector(item, cols, sel, n)
			if err != nil {
				return nil, err
			}
			items[j] = iv
		}
		out := make([]value.Value, n)
		forEachSel(sel, n, func(i int) {
			v := ev[i]
			if v.IsNull() {
				out[i] = value.Null()
				return
			}
			res := value.NewBool(false)
			for _, iv := range items {
				if !iv[i].IsNull() && value.Compare(v, iv[i]) == 0 {
					res = value.NewBool(true)
					break
				}
			}
			out[i] = res
		})
		return out, nil
	case nil:
		return nil, fmt.Errorf("expr: cannot evaluate nil expression vector")
	default:
		// Unknown expression type: fall back to row-at-a-time evaluation by
		// gathering each live row. Correct for any Expr, just not vectorized.
		out := make([]value.Value, n)
		row := make([]value.Value, len(cols))
		var evalErr error
		forEachSel(sel, n, func(i int) {
			if evalErr != nil {
				return
			}
			for c := range cols {
				row[c] = cols[c][i]
			}
			v, err := e.Eval(row)
			if err != nil {
				evalErr = err
				return
			}
			out[i] = v
		})
		if evalErr != nil {
			return nil, evalErr
		}
		return out, nil
	}
}

// evalBinaryVector evaluates arithmetic, comparison and logical binary
// operators over vectors. Logical AND/OR use three-valued SQL logic; both
// sides are evaluated in full (expressions are side-effect free, so skipping
// the row-at-a-time short circuit is safe).
func evalBinaryVector(b *Binary, cols [][]value.Value, sel []int, n int) ([]value.Value, error) {
	l, err := EvalVector(b.L, cols, sel, n)
	if err != nil {
		return nil, err
	}
	r, err := EvalVector(b.R, cols, sel, n)
	if err != nil {
		return nil, err
	}
	out := make([]value.Value, n)
	switch b.Op {
	case OpAdd:
		forEachSel(sel, n, func(i int) { out[i] = value.Add(l[i], r[i]) })
	case OpSub:
		forEachSel(sel, n, func(i int) { out[i] = value.Sub(l[i], r[i]) })
	case OpMul:
		forEachSel(sel, n, func(i int) { out[i] = value.Mul(l[i], r[i]) })
	case OpDiv:
		forEachSel(sel, n, func(i int) { out[i] = value.Div(l[i], r[i]) })
	case OpAnd:
		// Mirrors the row-at-a-time Eval exactly (including its left-biased
		// NULL handling): a false left short-circuits to false; otherwise a
		// NULL on either side yields NULL.
		forEachSel(sel, n, func(i int) {
			lv, rv := l[i], r[i]
			switch {
			case !lv.IsNull() && !lv.Bool():
				out[i] = value.NewBool(false)
			case lv.IsNull() || rv.IsNull():
				out[i] = value.Null()
			default:
				out[i] = value.NewBool(lv.Bool() && rv.Bool())
			}
		})
	case OpOr:
		forEachSel(sel, n, func(i int) {
			lv, rv := l[i], r[i]
			switch {
			case !lv.IsNull() && lv.Bool():
				out[i] = value.NewBool(true)
			case lv.IsNull() || rv.IsNull():
				out[i] = value.Null()
			default:
				out[i] = value.NewBool(lv.Bool() || rv.Bool())
			}
		})
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		forEachSel(sel, n, func(i int) {
			lv, rv := l[i], r[i]
			if lv.IsNull() || rv.IsNull() {
				out[i] = value.Null()
				return
			}
			out[i] = value.NewBool(cmpSatisfies(b.Op, value.Compare(lv, rv)))
		})
	default:
		return nil, fmt.Errorf("expr: unknown operator %d", b.Op)
	}
	return out, nil
}

// cmpSatisfies reports whether a three-way comparison result satisfies a
// comparison operator.
func cmpSatisfies(op BinaryOp, cmp int) bool {
	switch op {
	case OpEq:
		return cmp == 0
	case OpNe:
		return cmp != 0
	case OpLt:
		return cmp < 0
	case OpLe:
		return cmp <= 0
	case OpGt:
		return cmp > 0
	case OpGe:
		return cmp >= 0
	default:
		return false
	}
}

// SelectVector filters a selection vector through a predicate: it returns the
// physical indices of the live rows for which the predicate is TRUE (NULL and
// FALSE both drop the row, matching EvalBool). A nil predicate keeps every
// live row. The returned slice is freshly allocated unless it is the input
// sel itself.
func SelectVector(pred Expr, cols [][]value.Value, sel []int, n int) ([]int, error) {
	if pred == nil {
		if sel != nil {
			return sel, nil
		}
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out, nil
	}
	switch t := pred.(type) {
	case *Binary:
		if t.Op == OpAnd {
			// Conjuncts narrow the selection progressively: each kernel only
			// inspects rows that survived the previous one.
			s, err := SelectVector(t.L, cols, sel, n)
			if err != nil {
				return nil, err
			}
			if len(s) == 0 {
				return s, nil
			}
			return SelectVector(t.R, cols, s, n)
		}
		if t.Op.IsComparison() {
			if out, ok, err := selectCmpFast(t, cols, sel, n); ok || err != nil {
				return out, err
			}
		}
	case *Between:
		if out, ok, err := selectBetweenFast(t, cols, sel, n); ok || err != nil {
			return out, err
		}
	}
	// Generic path: evaluate the predicate vector and keep the TRUE rows.
	res, err := EvalVector(pred, cols, sel, n)
	if err != nil {
		return nil, err
	}
	out := make([]int, 0, selLen(sel, n))
	forEachSel(sel, n, func(i int) {
		if v := res[i]; !v.IsNull() && v.Bool() {
			out = append(out, i)
		}
	})
	return out, nil
}

// selLen returns the number of live rows.
func selLen(sel []int, n int) int {
	if sel == nil {
		return n
	}
	return len(sel)
}

// colConst decomposes a binary comparison into (column, constant, flipped) if
// it has the shape col OP const or const OP col.
func colConst(b *Binary) (col *Column, c value.Value, flipped, ok bool) {
	if l, lok := b.L.(*Column); lok {
		if r, rok := b.R.(*Const); rok {
			return l, r.Val, false, true
		}
	}
	if l, lok := b.L.(*Const); lok {
		if r, rok := b.R.(*Column); rok {
			return r, l.Val, true, true
		}
	}
	return nil, value.Value{}, false, false
}

// flipOp mirrors a comparison operator (for const OP col rewritten as
// col flip(OP) const).
func flipOp(op BinaryOp) BinaryOp {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	default: // OpEq, OpNe are symmetric
		return op
	}
}

// intLike reports whether the kind compares through the I field.
func intLike(k value.Kind) bool {
	return k == value.KindInt || k == value.KindDate || k == value.KindBool
}

// selectCmpFast is the typed kernel for col OP const comparisons — the common
// case for pushed-down scan predicates. ok is false when the predicate does
// not have that shape.
func selectCmpFast(b *Binary, cols [][]value.Value, sel []int, n int) ([]int, bool, error) {
	col, c, flipped, ok := colConst(b)
	if !ok {
		return nil, false, nil
	}
	if col.Index < 0 || col.Index >= len(cols) {
		return nil, true, fmt.Errorf("expr: column ordinal %d out of range (batch has %d columns)", col.Index, len(cols))
	}
	op := b.Op
	if flipped {
		op = flipOp(op)
	}
	vec := cols[col.Index]
	out := make([]int, 0, selLen(sel, n))
	if c.IsNull() {
		return out, true, nil // NULL comparison never passes
	}
	if intLike(c.Kind) || c.Kind == value.KindFloat {
		// Numeric fast path: integer-family pairs compare through the I
		// field, any other numeric pair through float64 — both exactly as
		// value.Compare does, without its dispatch.
		ci, cf, cInt := c.I, c.Float(), intLike(c.Kind)
		forEachSel(sel, n, func(i int) {
			v := vec[i]
			var cmp int
			switch {
			case cInt && intLike(v.Kind):
				switch {
				case v.I < ci:
					cmp = -1
				case v.I > ci:
					cmp = 1
				}
			case v.Kind == value.KindFloat || (!cInt && intLike(v.Kind)):
				vf := v.Float()
				switch {
				case vf < cf:
					cmp = -1
				case vf > cf:
					cmp = 1
				}
			case v.Kind == value.KindNull:
				return
			default:
				cmp = value.Compare(v, c)
			}
			if cmpSatisfies(op, cmp) {
				out = append(out, i)
			}
		})
		return out, true, nil
	}
	forEachSel(sel, n, func(i int) {
		v := vec[i]
		if v.IsNull() {
			return
		}
		if cmpSatisfies(op, value.Compare(v, c)) {
			out = append(out, i)
		}
	})
	return out, true, nil
}

// selectBetweenFast is the typed kernel for col BETWEEN const AND const.
func selectBetweenFast(b *Between, cols [][]value.Value, sel []int, n int) ([]int, bool, error) {
	col, colOK := b.E.(*Column)
	lo, loOK := b.Lo.(*Const)
	hi, hiOK := b.Hi.(*Const)
	if !colOK || !loOK || !hiOK {
		return nil, false, nil
	}
	if col.Index < 0 || col.Index >= len(cols) {
		return nil, true, fmt.Errorf("expr: column ordinal %d out of range (batch has %d columns)", col.Index, len(cols))
	}
	vec := cols[col.Index]
	out := make([]int, 0, selLen(sel, n))
	if lo.Val.IsNull() || hi.Val.IsNull() {
		return out, true, nil
	}
	if intLike(lo.Val.Kind) && intLike(hi.Val.Kind) {
		loI, hiI := lo.Val.I, hi.Val.I
		forEachSel(sel, n, func(i int) {
			v := vec[i]
			if intLike(v.Kind) {
				if v.I >= loI && v.I <= hiI {
					out = append(out, i)
				}
				return
			}
			if v.Kind == value.KindNull {
				return
			}
			if value.Compare(v, lo.Val) >= 0 && value.Compare(v, hi.Val) <= 0 {
				out = append(out, i)
			}
		})
		return out, true, nil
	}
	forEachSel(sel, n, func(i int) {
		v := vec[i]
		if v.IsNull() {
			return
		}
		if value.Compare(v, lo.Val) >= 0 && value.Compare(v, hi.Val) <= 0 {
			out = append(out, i)
		}
	})
	return out, true, nil
}
