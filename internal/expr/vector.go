package expr

import (
	"fmt"

	"oldelephant/internal/value"
	"oldelephant/internal/vector"
)

// This file implements vectorized (batch-at-a-time) expression evaluation in
// the style of MonetDB/X100, extended with encoding-aware kernels: columns
// arrive as vector.Vector values that may be Flat, Const, RLE or
// dictionary-encoded, and the kernels dispatch on the encoding so that
// predicates and scalar functions are evaluated once per distinct stored
// value (per run, per dictionary entry, or once outright for a constant)
// instead of once per row.
//
// Conventions shared with the exec package's Batch:
//
//   - cols is a column-major batch: cols[c] is the vector of column c and
//     every vector has the same logical length;
//   - n is the row count (needed when cols is empty);
//   - sel is an optional selection vector of physical row indices, in
//     ascending order; nil means all n rows are live;
//   - result vectors are physically aligned with cols: position i corresponds
//     to physical row i. For Flat results, entries outside the selection are
//     unspecified; compressed results are valid everywhere by construction.
//
// Column references evaluate to the input vector itself (zero copy, encoding
// preserved), which is why callers must treat result vectors as read-only.

// forEachSel visits every live physical row index.
func forEachSel(sel []int, n int, fn func(i int)) {
	if sel == nil {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	for _, i := range sel {
		fn(i)
	}
}

// EvalVector evaluates an expression over a column-major batch, returning a
// vector physically aligned with the input columns. Expressions over a single
// compressed column preserve the column's encoding (the predicate or scalar
// function runs once per distinct stored value); everything else decompresses
// its operands lazily and produces a Flat result.
func EvalVector(e Expr, cols []*vector.Vector, sel []int, n int) (*vector.Vector, error) {
	switch t := e.(type) {
	case *Column:
		if t.Index < 0 || t.Index >= len(cols) {
			return nil, fmt.Errorf("expr: column ordinal %d out of range (batch has %d columns)", t.Index, len(cols))
		}
		return cols[t.Index], nil
	case *Const:
		return vector.NewConst(t.Val, n), nil
	case nil:
		return nil, fmt.Errorf("expr: cannot evaluate nil expression vector")
	}
	// Compression-preserving kernel: an expression that references exactly one
	// column whose vector is compressed is evaluated once per distinct stored
	// value via Map — a comparison against a dictionary vector, for example,
	// runs once per dictionary entry and keeps the codes untouched.
	if ord, ok := singleColumnExpr(e, len(cols)); ok && cols[ord].Encoding() != vector.Flat && perValueWorthwhile(cols[ord], sel, n) {
		scratch := make([]value.Value, len(cols))
		return cols[ord].Map(func(x value.Value) (value.Value, error) {
			scratch[ord] = x
			return e.Eval(scratch)
		}, sel)
	}
	switch t := e.(type) {
	case *Binary:
		return evalBinaryVector(t, cols, sel, n)
	case *Not:
		in, err := evalFlat(t.E, cols, sel, n)
		if err != nil {
			return nil, err
		}
		out := make([]value.Value, n)
		forEachSel(sel, n, func(i int) {
			v := in[i]
			if v.IsNull() {
				out[i] = value.Null()
			} else {
				out[i] = value.NewBool(!v.Bool())
			}
		})
		return vector.NewFlat(out), nil
	case *Between:
		ev, err := evalFlat(t.E, cols, sel, n)
		if err != nil {
			return nil, err
		}
		lo, err := evalFlat(t.Lo, cols, sel, n)
		if err != nil {
			return nil, err
		}
		hi, err := evalFlat(t.Hi, cols, sel, n)
		if err != nil {
			return nil, err
		}
		out := make([]value.Value, n)
		forEachSel(sel, n, func(i int) {
			v, l, h := ev[i], lo[i], hi[i]
			if v.IsNull() || l.IsNull() || h.IsNull() {
				out[i] = value.Null()
			} else {
				out[i] = value.NewBool(value.Compare(v, l) >= 0 && value.Compare(v, h) <= 0)
			}
		})
		return vector.NewFlat(out), nil
	case *IsNull:
		in, err := evalFlat(t.E, cols, sel, n)
		if err != nil {
			return nil, err
		}
		out := make([]value.Value, n)
		forEachSel(sel, n, func(i int) {
			out[i] = value.NewBool(in[i].IsNull() != t.Negate)
		})
		return vector.NewFlat(out), nil
	case *InList:
		ev, err := evalFlat(t.E, cols, sel, n)
		if err != nil {
			return nil, err
		}
		items := make([][]value.Value, len(t.List))
		for j, item := range t.List {
			iv, err := evalFlat(item, cols, sel, n)
			if err != nil {
				return nil, err
			}
			items[j] = iv
		}
		out := make([]value.Value, n)
		forEachSel(sel, n, func(i int) {
			v := ev[i]
			if v.IsNull() {
				out[i] = value.Null()
				return
			}
			res := value.NewBool(false)
			for _, iv := range items {
				if !iv[i].IsNull() && value.Compare(v, iv[i]) == 0 {
					res = value.NewBool(true)
					break
				}
			}
			out[i] = res
		})
		return vector.NewFlat(out), nil
	default:
		// Unknown expression type: fall back to row-at-a-time evaluation by
		// gathering each live row. Correct for any Expr, just not vectorized.
		flats := make([][]value.Value, len(cols))
		for c := range cols {
			flats[c] = cols[c].Flat()
		}
		out := make([]value.Value, n)
		row := make([]value.Value, len(cols))
		var evalErr error
		forEachSel(sel, n, func(i int) {
			if evalErr != nil {
				return
			}
			for c := range flats {
				row[c] = flats[c][i]
			}
			v, err := e.Eval(row)
			if err != nil {
				evalErr = err
				return
			}
			out[i] = v
		})
		if evalErr != nil {
			return nil, evalErr
		}
		return vector.NewFlat(out), nil
	}
}

// evalFlat evaluates a sub-expression and returns its decompressed per-row
// values (the form the generic flat kernels consume).
func evalFlat(e Expr, cols []*vector.Vector, sel []int, n int) ([]value.Value, error) {
	v, err := EvalVector(e, cols, sel, n)
	if err != nil {
		return nil, err
	}
	return v.Flat(), nil
}

// singleColumnExpr reports whether e references exactly one column ordinal
// (in range) and is built only from node types this package can walk; ord is
// that column. Pure-constant expressions return false.
func singleColumnExpr(e Expr, ncols int) (ord int, ok bool) {
	ord = -1
	if !walkSingleColumn(e, &ord) {
		return -1, false
	}
	return ord, ord >= 0 && ord < ncols
}

func walkSingleColumn(e Expr, ord *int) bool {
	switch t := e.(type) {
	case *Column:
		if *ord >= 0 && *ord != t.Index {
			return false
		}
		*ord = t.Index
		return true
	case *Const:
		return true
	case *Binary:
		return walkSingleColumn(t.L, ord) && walkSingleColumn(t.R, ord)
	case *Not:
		return walkSingleColumn(t.E, ord)
	case *Between:
		return walkSingleColumn(t.E, ord) && walkSingleColumn(t.Lo, ord) && walkSingleColumn(t.Hi, ord)
	case *IsNull:
		return walkSingleColumn(t.E, ord)
	case *InList:
		if !walkSingleColumn(t.E, ord) {
			return false
		}
		for _, item := range t.List {
			if !walkSingleColumn(item, ord) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// evalBinaryVector evaluates arithmetic, comparison and logical binary
// operators over vectors. Logical AND/OR use three-valued SQL logic; both
// sides are evaluated in full (expressions are side-effect free, so skipping
// the row-at-a-time short circuit is safe).
func evalBinaryVector(b *Binary, cols []*vector.Vector, sel []int, n int) (*vector.Vector, error) {
	l, err := evalFlat(b.L, cols, sel, n)
	if err != nil {
		return nil, err
	}
	r, err := evalFlat(b.R, cols, sel, n)
	if err != nil {
		return nil, err
	}
	out := make([]value.Value, n)
	switch b.Op {
	case OpAdd:
		forEachSel(sel, n, func(i int) { out[i] = value.Add(l[i], r[i]) })
	case OpSub:
		forEachSel(sel, n, func(i int) { out[i] = value.Sub(l[i], r[i]) })
	case OpMul:
		forEachSel(sel, n, func(i int) { out[i] = value.Mul(l[i], r[i]) })
	case OpDiv:
		forEachSel(sel, n, func(i int) { out[i] = value.Div(l[i], r[i]) })
	case OpAnd:
		// Mirrors the row-at-a-time Eval exactly (including its left-biased
		// NULL handling): a false left short-circuits to false; otherwise a
		// NULL on either side yields NULL.
		forEachSel(sel, n, func(i int) {
			lv, rv := l[i], r[i]
			switch {
			case !lv.IsNull() && !lv.Bool():
				out[i] = value.NewBool(false)
			case lv.IsNull() || rv.IsNull():
				out[i] = value.Null()
			default:
				out[i] = value.NewBool(lv.Bool() && rv.Bool())
			}
		})
	case OpOr:
		forEachSel(sel, n, func(i int) {
			lv, rv := l[i], r[i]
			switch {
			case !lv.IsNull() && lv.Bool():
				out[i] = value.NewBool(true)
			case lv.IsNull() || rv.IsNull():
				out[i] = value.Null()
			default:
				out[i] = value.NewBool(lv.Bool() || rv.Bool())
			}
		})
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		forEachSel(sel, n, func(i int) {
			lv, rv := l[i], r[i]
			if lv.IsNull() || rv.IsNull() {
				out[i] = value.Null()
				return
			}
			out[i] = value.NewBool(cmpSatisfies(b.Op, value.Compare(lv, rv)))
		})
	default:
		return nil, fmt.Errorf("expr: unknown operator %d", b.Op)
	}
	return vector.NewFlat(out), nil
}

// cmpSatisfies reports whether a three-way comparison result satisfies a
// comparison operator.
func cmpSatisfies(op BinaryOp, cmp int) bool {
	switch op {
	case OpEq:
		return cmp == 0
	case OpNe:
		return cmp != 0
	case OpLt:
		return cmp < 0
	case OpLe:
		return cmp <= 0
	case OpGt:
		return cmp > 0
	case OpGe:
		return cmp >= 0
	default:
		return false
	}
}

// SelectVector filters a selection vector through a predicate: it returns the
// physical indices of the live rows for which the predicate is TRUE (NULL and
// FALSE both drop the row, matching EvalBool). A nil predicate keeps every
// live row. The returned slice is freshly allocated unless it is the input
// sel itself. On compressed columns the kernels do work proportional to the
// compressed size: a predicate over an RLE vector accepts or rejects whole
// runs (one evaluation per run), a Dict vector evaluates the predicate once
// per dictionary entry and then tests codes, and a Const vector decides once
// for the whole batch.
func SelectVector(pred Expr, cols []*vector.Vector, sel []int, n int) ([]int, error) {
	if pred == nil {
		if sel != nil {
			return sel, nil
		}
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out, nil
	}
	switch t := pred.(type) {
	case *Binary:
		if t.Op == OpAnd {
			// Conjuncts narrow the selection progressively: each kernel only
			// inspects rows that survived the previous one.
			s, err := SelectVector(t.L, cols, sel, n)
			if err != nil {
				return nil, err
			}
			if len(s) == 0 {
				return s, nil
			}
			return SelectVector(t.R, cols, s, n)
		}
		if t.Op.IsComparison() {
			if out, ok, err := selectCmpFast(t, cols, sel, n); ok || err != nil {
				return out, err
			}
		}
	case *Between:
		if out, ok, err := selectBetweenFast(t, cols, sel, n); ok || err != nil {
			return out, err
		}
	}
	// Generic path: evaluate the predicate vector and keep the TRUE rows.
	// selectWhere exploits the result's encoding, so a predicate that
	// preserved compression through EvalVector still selects run-wise.
	res, err := EvalVector(pred, cols, sel, n)
	if err != nil {
		return nil, err
	}
	return selectWhere(res, sel, n, func(v value.Value) bool {
		return !v.IsNull() && v.Bool()
	}), nil
}

// selLen returns the number of live rows.
func selLen(sel []int, n int) int {
	if sel == nil {
		return n
	}
	return len(sel)
}

// perValueWorthwhile reports whether evaluating once per distinct stored
// value beats evaluating once per live row. RLE and Const windows always
// have at most as many distinct stored values as rows, but a Dict vector
// shares its segment-wide dictionary across every batch window — when the
// dictionary outnumbers the window's live rows, per-entry evaluation would
// be a pessimization and the flat kernels win.
func perValueWorthwhile(v *vector.Vector, sel []int, n int) bool {
	if v.Encoding() != vector.Dict {
		return true
	}
	return len(v.DictValues()) <= selLen(sel, n)
}

// selectWhere gathers the live rows whose value in v satisfies pass,
// dispatching on v's encoding: Const decides once, RLE once per run, Dict
// once per dictionary entry, Flat once per live row.
func selectWhere(v *vector.Vector, sel []int, n int, pass func(value.Value) bool) []int {
	switch v.Encoding() {
	case vector.Const:
		if !pass(v.ConstValue()) {
			return []int{}
		}
		if sel != nil {
			return sel
		}
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	case vector.RLE:
		runVals, ends := v.RunValues(), v.RunEnds()
		passRun := make([]bool, len(runVals))
		for r, rv := range runVals {
			passRun[r] = pass(rv)
		}
		out := make([]int, 0, selLen(sel, n))
		if sel == nil {
			start := 0
			for r, end := range ends {
				if passRun[r] {
					for i := start; i < end; i++ {
						out = append(out, i)
					}
				}
				start = end
			}
			return out
		}
		r := 0
		for _, i := range sel {
			for ends[r] <= i {
				r++
			}
			if passRun[r] {
				out = append(out, i)
			}
		}
		return out
	case vector.Dict:
		dict, codes := v.DictValues(), v.Codes()
		out := make([]int, 0, selLen(sel, n))
		if len(dict) > selLen(sel, n) {
			// The segment-wide dictionary outnumbers this window's live rows:
			// testing each live row's entry directly is cheaper than
			// pre-evaluating the whole dictionary.
			forEachSel(sel, n, func(i int) {
				if pass(dict[codes[i]]) {
					out = append(out, i)
				}
			})
			return out
		}
		passCode := make([]bool, len(dict))
		for c, dv := range dict {
			passCode[c] = pass(dv)
		}
		forEachSel(sel, n, func(i int) {
			if passCode[codes[i]] {
				out = append(out, i)
			}
		})
		return out
	default:
		vals := v.Flat()
		out := make([]int, 0, selLen(sel, n))
		forEachSel(sel, n, func(i int) {
			if pass(vals[i]) {
				out = append(out, i)
			}
		})
		return out
	}
}

// colConst decomposes a binary comparison into (column, constant, flipped) if
// it has the shape col OP const or const OP col.
func colConst(b *Binary) (col *Column, c value.Value, flipped, ok bool) {
	if l, lok := b.L.(*Column); lok {
		if r, rok := b.R.(*Const); rok {
			return l, r.Val, false, true
		}
	}
	if l, lok := b.L.(*Const); lok {
		if r, rok := b.R.(*Column); rok {
			return r, l.Val, true, true
		}
	}
	return nil, value.Value{}, false, false
}

// flipOp mirrors a comparison operator (for const OP col rewritten as
// col flip(OP) const).
func flipOp(op BinaryOp) BinaryOp {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	default: // OpEq, OpNe are symmetric
		return op
	}
}

// intLike reports whether the kind compares through the I field.
func intLike(k value.Kind) bool {
	return k == value.KindInt || k == value.KindDate || k == value.KindBool
}

// selectCmpFast is the typed kernel for col OP const comparisons — the common
// case for pushed-down scan predicates. ok is false when the predicate does
// not have that shape. Compressed columns route through selectWhere (one
// comparison per distinct stored value); Flat columns use the typed
// int/float loops.
func selectCmpFast(b *Binary, cols []*vector.Vector, sel []int, n int) ([]int, bool, error) {
	col, c, flipped, ok := colConst(b)
	if !ok {
		return nil, false, nil
	}
	if col.Index < 0 || col.Index >= len(cols) {
		return nil, true, fmt.Errorf("expr: column ordinal %d out of range (batch has %d columns)", col.Index, len(cols))
	}
	op := b.Op
	if flipped {
		op = flipOp(op)
	}
	vec := cols[col.Index]
	if c.IsNull() {
		return []int{}, true, nil // NULL comparison never passes
	}
	if vec.Encoding() != vector.Flat {
		return selectWhere(vec, sel, n, func(v value.Value) bool {
			return !v.IsNull() && cmpSatisfies(op, value.Compare(v, c))
		}), true, nil
	}
	vals := vec.Flat()
	out := make([]int, 0, selLen(sel, n))
	if intLike(c.Kind) || c.Kind == value.KindFloat {
		// Numeric fast path: integer-family pairs compare through the I
		// field, any other numeric pair through float64 — both exactly as
		// value.Compare does, without its dispatch.
		ci, cf, cInt := c.I, c.Float(), intLike(c.Kind)
		forEachSel(sel, n, func(i int) {
			v := vals[i]
			var cmp int
			switch {
			case cInt && intLike(v.Kind):
				switch {
				case v.I < ci:
					cmp = -1
				case v.I > ci:
					cmp = 1
				}
			case v.Kind == value.KindFloat || (!cInt && intLike(v.Kind)):
				vf := v.Float()
				switch {
				case vf < cf:
					cmp = -1
				case vf > cf:
					cmp = 1
				}
			case v.Kind == value.KindNull:
				return
			default:
				cmp = value.Compare(v, c)
			}
			if cmpSatisfies(op, cmp) {
				out = append(out, i)
			}
		})
		return out, true, nil
	}
	forEachSel(sel, n, func(i int) {
		v := vals[i]
		if v.IsNull() {
			return
		}
		if cmpSatisfies(op, value.Compare(v, c)) {
			out = append(out, i)
		}
	})
	return out, true, nil
}

// selectBetweenFast is the typed kernel for col BETWEEN const AND const.
func selectBetweenFast(b *Between, cols []*vector.Vector, sel []int, n int) ([]int, bool, error) {
	col, colOK := b.E.(*Column)
	lo, loOK := b.Lo.(*Const)
	hi, hiOK := b.Hi.(*Const)
	if !colOK || !loOK || !hiOK {
		return nil, false, nil
	}
	if col.Index < 0 || col.Index >= len(cols) {
		return nil, true, fmt.Errorf("expr: column ordinal %d out of range (batch has %d columns)", col.Index, len(cols))
	}
	vec := cols[col.Index]
	if lo.Val.IsNull() || hi.Val.IsNull() {
		return []int{}, true, nil
	}
	if vec.Encoding() != vector.Flat {
		return selectWhere(vec, sel, n, func(v value.Value) bool {
			return !v.IsNull() && value.Compare(v, lo.Val) >= 0 && value.Compare(v, hi.Val) <= 0
		}), true, nil
	}
	vals := vec.Flat()
	out := make([]int, 0, selLen(sel, n))
	if intLike(lo.Val.Kind) && intLike(hi.Val.Kind) {
		loI, hiI := lo.Val.I, hi.Val.I
		forEachSel(sel, n, func(i int) {
			v := vals[i]
			if intLike(v.Kind) {
				if v.I >= loI && v.I <= hiI {
					out = append(out, i)
				}
				return
			}
			if v.Kind == value.KindNull {
				return
			}
			if value.Compare(v, lo.Val) >= 0 && value.Compare(v, hi.Val) <= 0 {
				out = append(out, i)
			}
		})
		return out, true, nil
	}
	forEachSel(sel, n, func(i int) {
		v := vals[i]
		if v.IsNull() {
			return
		}
		if value.Compare(v, lo.Val) >= 0 && value.Compare(v, hi.Val) <= 0 {
			out = append(out, i)
		}
	})
	return out, true, nil
}
