package expr

import (
	"testing"

	"oldelephant/internal/value"
	"oldelephant/internal/vector"
)

// Kernel-level microbenchmarks for SelectVector across vector encodings: the
// same predicate over the same 64k-row data, once per encoding. The RLE and
// Dict kernels evaluate the comparison once per run / dictionary entry, so
// their advantage over the Flat kernel is what the CI bench smoke guards.
//
//	go test ./internal/expr -bench SelectVector

const benchN = 1 << 16

// benchVals is 64k ints in 128 runs of 512 equal values, 64 distinct values.
func benchVals() []value.Value {
	vals := make([]value.Value, benchN)
	for i := range vals {
		vals[i] = value.NewInt(int64((i / 512) % 64))
	}
	return vals
}

func benchSelect(b *testing.B, col *vector.Vector) {
	b.Helper()
	pred := NewBinary(OpGt, NewColumn(0, "x"), NewConst(value.NewInt(31)))
	cols := []*vector.Vector{col}
	kept := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel, err := SelectVector(pred, cols, nil, benchN)
		if err != nil {
			b.Fatal(err)
		}
		kept = len(sel)
	}
	b.StopTimer()
	if kept == 0 {
		b.Fatal("benchmark predicate selected nothing")
	}
	b.ReportMetric(float64(benchN)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

func BenchmarkSelectVectorFlat(b *testing.B) {
	benchSelect(b, vector.NewFlat(benchVals()))
}

func BenchmarkSelectVectorRLE(b *testing.B) {
	benchSelect(b, vector.Compress(benchVals()))
}

func BenchmarkSelectVectorDict(b *testing.B) {
	vals := benchVals()
	dict := make([]value.Value, 64)
	codes := make([]uint32, len(vals))
	for i := range dict {
		dict[i] = value.NewInt(int64(i))
	}
	for i, v := range vals {
		codes[i] = uint32(v.I)
	}
	benchSelect(b, vector.NewDict(dict, codes))
}
