package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sync"
	"time"

	"oldelephant/internal/engine"
	"oldelephant/internal/sql"
)

// The workload log is the physical-design advisor's input: one record per
// executed statement, normalized so that statements differing only in
// literals share a fingerprint, with the plan, timing, cardinality and I/O
// facts an advisor needs to find the queries worth optimizing. Records live
// in a bounded in-memory ring (newest win) and are optionally appended as
// JSONL to a file under the data directory, so a workload survives restarts
// and can be mined offline.

// WorkloadRecordVersion is the version stamped into every record; decoders
// skip records with versions they do not understand, so the format can
// evolve without breaking old logs.
const WorkloadRecordVersion = 1

// defaultWorkloadRing bounds the in-memory workload ring.
const defaultWorkloadRing = 4096

// WorkloadIO is the page-I/O delta attributed to one statement.
type WorkloadIO struct {
	PageReads  int64 `json:"page_reads"`
	SeqReads   int64 `json:"seq_reads"`
	RandReads  int64 `json:"rand_reads"`
	CacheHits  int64 `json:"cache_hits"`
	PageWrites int64 `json:"page_writes"`
}

// WorkloadRecord is one executed statement, as the advisor sees it. The
// struct is versioned (V) and encodes to one JSON line; timestamps are
// microseconds since the Unix epoch so records round-trip exactly.
type WorkloadRecord struct {
	V           int        `json:"v"`
	TSMicros    int64      `json:"ts_us"`
	Session     int64      `json:"session"`
	SQL         string     `json:"sql"`
	Fingerprint string     `json:"fingerprint"`
	PlanHash    string     `json:"plan_hash,omitempty"`
	WallUS      int64      `json:"wall_us"`
	QueueUS     int64      `json:"queue_us"`
	RowsIn      int64      `json:"rows_in,omitempty"`
	RowsOut     int64      `json:"rows_out"`
	IO          WorkloadIO `json:"io"`
	Cached      bool       `json:"cached,omitempty"`
	Trace       string     `json:"trace,omitempty"`
}

// planHash fingerprints a plan's textual form (FNV-1a, hex): two statements
// with equal plan hashes executed the same physical plan shape.
func planHash(planText string) string {
	if planText == "" {
		return ""
	}
	h := fnv.New64a()
	h.Write([]byte(planText))
	return fmt.Sprintf("%016x", h.Sum64())
}

// newWorkloadRecord builds the record for one finished statement.
func newWorkloadRecord(sessionID int64, sqlText string, res *engine.Result, wall, queue time.Duration) WorkloadRecord {
	rec := WorkloadRecord{
		V:           WorkloadRecordVersion,
		TSMicros:    time.Now().UnixMicro(),
		Session:     sessionID,
		SQL:         sqlText,
		Fingerprint: sql.Normalize(sqlText),
		WallUS:      wall.Microseconds(),
		QueueUS:     queue.Microseconds(),
	}
	if res != nil {
		rec.PlanHash = planHash(res.Plan)
		rec.RowsOut = int64(res.Stats.RowsReturned)
		rec.Cached = res.Stats.PlanCached
		rec.IO = WorkloadIO{
			PageReads:  res.Stats.IO.PageReads,
			SeqReads:   res.Stats.IO.SeqReads,
			RandReads:  res.Stats.IO.RandReads,
			CacheHits:  res.Stats.IO.CacheHits,
			PageWrites: res.Stats.IO.PageWrites,
		}
		if res.Trace != nil {
			rec.RowsIn = res.Trace.LeafRows()
			rec.Trace = res.Trace.Summary()
		}
	}
	return rec
}

// workloadLog is the bounded ring plus optional JSONL persistence.
type workloadLog struct {
	mu    sync.Mutex
	ring  []WorkloadRecord
	next  int // ring position of the next append
	total int64
	f     *os.File
	w     *bufio.Writer
}

func newWorkloadLog(capacity int) *workloadLog {
	if capacity <= 0 {
		capacity = defaultWorkloadRing
	}
	return &workloadLog{ring: make([]WorkloadRecord, 0, capacity)}
}

// persistTo opens (creating or appending to) a JSONL file that every
// subsequent record is also written to. Lines are flushed per record — a
// crash can tear at most the final line, which readers tolerate.
func (l *workloadLog) persistTo(path string) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	l.mu.Lock()
	if l.f != nil {
		l.w.Flush()
		l.f.Close()
	}
	l.f, l.w = f, bufio.NewWriter(f)
	l.mu.Unlock()
	return nil
}

// append records one statement.
func (l *workloadLog) append(rec WorkloadRecord) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, rec)
	} else {
		l.ring[l.next] = rec
		l.next = (l.next + 1) % cap(l.ring)
	}
	l.total++
	if l.w != nil {
		if data, err := json.Marshal(rec); err == nil {
			l.w.Write(data)
			l.w.WriteByte('\n')
			l.w.Flush()
		}
	}
}

// recent returns up to limit most-recent records, oldest first (limit <= 0
// means the whole ring).
func (l *workloadLog) recent(limit int) []WorkloadRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(l.ring)
	out := make([]WorkloadRecord, 0, n)
	if len(l.ring) < cap(l.ring) {
		out = append(out, l.ring...)
	} else {
		out = append(out, l.ring[l.next:]...)
		out = append(out, l.ring[:l.next]...)
	}
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

// count returns the total number of records ever appended.
func (l *workloadLog) count() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// close flushes and closes the persistence file, if any.
func (l *workloadLog) close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	l.w.Flush()
	err := l.f.Close()
	l.f, l.w = nil, nil
	return err
}

// ReadWorkloadLog decodes a JSONL workload log. A torn final line (crash
// mid-append) is tolerated and skipped; records with an unknown version are
// skipped rather than failing the read, so newer logs degrade gracefully.
func ReadWorkloadLog(path string) ([]WorkloadRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []WorkloadRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), maxLineBytes)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec WorkloadRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// Torn tail or foreign line: stop at the first undecodable line.
			break
		}
		if rec.V != WorkloadRecordVersion {
			continue
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil && len(out) == 0 {
		return nil, err
	}
	return out, nil
}
