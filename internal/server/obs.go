package server

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"oldelephant/internal/obs"
)

// Registry wiring: the server exports every subsystem's counters through one
// obs.Registry. Subsystems that already keep their own statistics (plan
// cache, WAL, pager, admission control, the completed-query aggregates) are
// bridged with scrape-time callback metrics, so the hot paths keep their
// existing, already-synchronized counters and pay nothing for the export;
// only the query-latency histogram is recorded push-style, one lock-free
// observation per completed statement.

// initRegistry builds the server's metrics registry. Called once from New.
func (s *Server) initRegistry() {
	r := obs.NewRegistry()
	s.obsReg = r
	s.latHist = r.NewHistogram("elephant_query_duration_seconds",
		"Completed statement latency (admission wait + execution).", obs.DurationBuckets)

	// Server-level query accounting.
	r.CounterFunc("elephant_queries_total", "Statements completed successfully.",
		func() int64 { return s.metrics.counts().queries })
	r.CounterFunc("elephant_query_errors_total", "Statements that failed.",
		func() int64 { return s.metrics.counts().errors })
	r.CounterFunc("elephant_queries_rejected_total", "Queries shed by a full admission queue.",
		func() int64 { return s.metrics.counts().rejected })
	r.CounterFunc("elephant_queries_canceled_total", "Queries canceled or timed out.",
		func() int64 { return s.metrics.counts().canceled })
	r.GaugeFunc("elephant_queries_in_flight", "Statements currently executing or queued.",
		s.inFlightN.Load)
	r.GaugeFunc("elephant_sessions", "Open sessions.",
		func() int64 { s.mu.Lock(); defer s.mu.Unlock(); return int64(len(s.sessions)) })

	// Admission control.
	r.GaugeFunc("elephant_admission_running", "Queries holding worker tokens.",
		func() int64 { running, _ := s.adm.load(); return int64(running) })
	r.GaugeFunc("elephant_admission_queue_depth", "Queries waiting for admission.",
		func() int64 { _, queued := s.adm.load(); return int64(queued) })
	r.CounterFunc("elephant_admission_waits_total", "Queries that had to queue before admission.",
		s.adm.waitCount)

	// Plan cache.
	r.CounterFunc("elephant_plan_cache_hits_total", "Plan-cache instance hits.",
		func() int64 { return s.eng.PlanCacheStats().Hits })
	r.CounterFunc("elephant_plan_cache_stmt_hits_total", "Plan-cache statement (parse-skip) hits.",
		func() int64 { return s.eng.PlanCacheStats().StmtHits })
	r.CounterFunc("elephant_plan_cache_misses_total", "Plan-cache misses.",
		func() int64 { return s.eng.PlanCacheStats().Misses })
	r.CounterFunc("elephant_plan_cache_evictions_total", "Plan-cache LRU evictions.",
		func() int64 { return s.eng.PlanCacheStats().Evictions })
	r.CounterFunc("elephant_plan_cache_invalidations_total", "Wholesale plan-cache invalidations (DDL/DML).",
		func() int64 { return s.eng.PlanCacheStats().Invalidations })
	r.GaugeFunc("elephant_plan_cache_entries", "Cached statements.",
		func() int64 { return int64(s.eng.PlanCacheStats().Entries) })

	// WAL / group commit.
	r.CounterFunc("elephant_wal_commits_total", "Commit groups appended to the WAL.",
		func() int64 { return s.eng.WALStats().Commits })
	r.CounterFunc("elephant_wal_syncs_total", "Fsyncs issued by group-commit leaders.",
		func() int64 { return s.eng.WALStats().Syncs })
	r.CounterFunc("elephant_wal_bytes_written_total", "Log bytes written.",
		func() int64 { return s.eng.WALStats().BytesWritten })
	r.CounterFunc("elephant_wal_aborts_total", "Commit batches discarded after mid-statement failures.",
		func() int64 { return s.eng.WALStats().Aborts })
	r.GaugeFunc("elephant_wal_bytes_since_checkpoint", "Durable log size since the last checkpoint.",
		s.eng.WALSize)

	// Pager / buffer pool.
	r.CounterFunc("elephant_pager_page_reads_total", "Page reads that missed the buffer pool.",
		func() int64 { return s.eng.Pager().Stats().PageReads })
	r.CounterFunc("elephant_pager_seq_reads_total", "Page reads classified sequential.",
		func() int64 { return s.eng.Pager().Stats().SeqReads })
	r.CounterFunc("elephant_pager_rand_reads_total", "Page reads classified random.",
		func() int64 { return s.eng.Pager().Stats().RandReads })
	r.CounterFunc("elephant_pager_cache_hits_total", "Page accesses served by the buffer pool.",
		func() int64 { return s.eng.Pager().Stats().CacheHits })
	r.CounterFunc("elephant_pager_page_writes_total", "Pages written.",
		func() int64 { return s.eng.Pager().Stats().PageWrites })
	r.GaugeFunc("elephant_pager_resident_pages", "Pages resident in the buffer pool.",
		func() int64 { return int64(s.eng.Pager().Resident()) })
	r.GaugeFunc("elephant_pager_checksum_failures", "Page slots that failed CRC verification at open.",
		func() int64 { return s.eng.Pager().CorruptPages() })

	// Workload log.
	r.CounterFunc("elephant_workload_records_total", "Workload-log records appended.",
		s.workload.count)
}

// observeLatency feeds one completed statement into the latency histogram.
func (s *Server) observeLatency(wall time.Duration) { s.latHist.Observe(wall.Seconds()) }

// Registry returns the server's metrics registry (for embedding the server
// in a process with its own exposition endpoint).
func (s *Server) Registry() *obs.Registry { return s.obsReg }

// HTTPHandler returns the observability HTTP surface elephantd mounts on its
// -http listener:
//
//	/metrics        Prometheus text exposition of the registry
//	/workload       recent workload-log records as JSON (?limit=N)
//	/debug/pprof/   the standard Go profiling endpoints
func (s *Server) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", s.obsReg.Handler())
	mux.HandleFunc("/workload", func(w http.ResponseWriter, req *http.Request) {
		limit := 0
		if v := req.URL.Query().Get("limit"); v != "" {
			if n, err := strconv.Atoi(v); err == nil {
				limit = n
			}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(s.Workload(limit))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
