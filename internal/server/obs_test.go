package server

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestMetricsSnapshotObservability pins the snapshot fields the PR's
// observability layer added: uptime, in-flight, latency window size, workload
// totals, slow-log enrichment and the runtime-settable slow threshold.
func TestMetricsSnapshotObservability(t *testing.T) {
	srv := newTestServer(t, 1000, Options{SlowQueryThreshold: time.Nanosecond})
	defer srv.Close()
	sess, err := srv.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.Execute("SELECT grp, SUM(amount) FROM items GROUP BY grp"); err != nil {
		t.Fatal(err)
	}
	snap := srv.Metrics()
	if snap.Queries != 1 || snap.LatencyWindow != 4096 {
		t.Fatalf("queries=%d window=%d, want 1/4096", snap.Queries, snap.LatencyWindow)
	}
	if snap.Uptime <= 0 {
		t.Fatalf("uptime = %v", snap.Uptime)
	}
	if snap.WorkloadRecords != 1 {
		t.Fatalf("workload records = %d, want 1", snap.WorkloadRecords)
	}
	if snap.SlowThreshold != time.Nanosecond {
		t.Fatalf("slow threshold = %v", snap.SlowThreshold)
	}
	// Every query is slower than 1ns, so the slow log has the enriched entry.
	if len(snap.Slow) != 1 {
		t.Fatalf("slow log has %d entries, want 1", len(snap.Slow))
	}
	if s := snap.Slow[0]; s.Plan == "" || !strings.Contains(s.Plan, "Scan") {
		t.Fatalf("slow entry lacks plan text: %+v", s)
	}
	// Raising the threshold at runtime stops slow logging.
	srv.SetSlowThreshold(time.Hour)
	if got := srv.SlowThreshold(); got != time.Hour {
		t.Fatalf("SlowThreshold = %v after set", got)
	}
	if _, err := sess.Execute("SELECT COUNT(*) FROM items"); err != nil {
		t.Fatal(err)
	}
	if snap = srv.Metrics(); len(snap.Slow) != 1 {
		t.Fatalf("slow log grew past threshold: %d entries", len(snap.Slow))
	}
}

// TestMetricsHTTPEndpoints drives the observability HTTP surface: the
// Prometheus exposition must carry the engine-wide series, and /workload must
// return the recent records as JSON.
func TestMetricsHTTPEndpoints(t *testing.T) {
	srv := newTestServer(t, 500, Options{})
	defer srv.Close()
	sess, err := srv.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	for i := 0; i < 3; i++ {
		if _, err := sess.Execute("SELECT COUNT(*) FROM items WHERE id < 250"); err != nil {
			t.Fatal(err)
		}
	}
	h := srv.HTTPHandler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, series := range []string{
		"elephant_queries_total 3",
		"elephant_query_duration_seconds_count 3",
		"elephant_plan_cache_hits_total",
		"elephant_plan_cache_misses_total",
		"elephant_wal_commits_total",
		"elephant_pager_cache_hits_total",
		"elephant_admission_waits_total",
		"elephant_workload_records_total 3",
		"elephant_sessions 1",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics missing %q", series)
		}
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/workload?limit=2", nil))
	var recs []WorkloadRecord
	if err := json.Unmarshal(rec.Body.Bytes(), &recs); err != nil {
		t.Fatalf("/workload: %v\n%s", err, rec.Body.String())
	}
	if len(recs) != 2 {
		t.Fatalf("/workload?limit=2 returned %d records", len(recs))
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/pprof/cmdline status %d", rec.Code)
	}
}

// TestMetricsTraceConcurrent runs traced (EXPLAIN ANALYZE) and untraced
// statements from many sessions while other goroutines snapshot metrics,
// scrape the registry and read the workload ring. Under -race this proves the
// observability paths are data-race free against live execution.
func TestMetricsTraceConcurrent(t *testing.T) {
	srv := newTestServer(t, 2000, Options{SlowQueryThreshold: time.Nanosecond})
	defer srv.Close()
	const sessions = 6
	const perSession = 15
	var workers, observers sync.WaitGroup
	stop := make(chan struct{})

	// Observer goroutines: snapshot, scrape, workload read in a tight loop.
	for i := 0; i < 3; i++ {
		observers.Add(1)
		go func(kind int) {
			defer observers.Done()
			h := srv.HTTPHandler()
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch kind {
				case 0:
					_ = srv.Metrics()
				case 1:
					rec := httptest.NewRecorder()
					h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
				case 2:
					_ = srv.Workload(10)
				}
			}
		}(i)
	}

	queries := []string{
		"EXPLAIN ANALYZE SELECT grp, COUNT(*), SUM(amount) FROM items WHERE amount > 100 GROUP BY grp",
		"SELECT COUNT(*) FROM items WHERE id < 500",
		"EXPLAIN ANALYZE SELECT grp, amount FROM items WHERE id < 300 ORDER BY amount DESC LIMIT 10",
		"SELECT grp, MAX(amount) FROM items GROUP BY grp",
	}
	errc := make(chan error, sessions)
	for s := 0; s < sessions; s++ {
		workers.Add(1)
		go func(s int) {
			defer workers.Done()
			sess, err := srv.Session()
			if err != nil {
				errc <- err
				return
			}
			defer sess.Close()
			for i := 0; i < perSession; i++ {
				q := queries[(s+i)%len(queries)]
				res, err := sess.Execute(q)
				if err != nil {
					errc <- err
					return
				}
				if strings.HasPrefix(q, "EXPLAIN ANALYZE") && res.Trace == nil {
					errc <- fmt.Errorf("EXPLAIN ANALYZE returned no trace: %s", q)
					return
				}
			}
		}(s)
	}
	done := make(chan struct{})
	go func() { workers.Wait(); close(done) }()
	select {
	case err := <-errc:
		close(stop)
		observers.Wait()
		t.Fatal(err)
	case <-done:
	case <-time.After(30 * time.Second):
		close(stop)
		observers.Wait()
		t.Fatal("timeout")
	}
	close(stop)
	observers.Wait()
	snap := srv.Metrics()
	if want := int64(sessions * perSession); snap.Queries != want {
		t.Fatalf("queries = %d, want %d", snap.Queries, want)
	}
	if snap.WorkloadRecords != int64(sessions*perSession) {
		t.Fatalf("workload records = %d", snap.WorkloadRecords)
	}
}
