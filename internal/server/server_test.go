package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"oldelephant/internal/engine"
	"oldelephant/internal/value"
)

// newTestServer builds a server over an engine with one populated table.
func newTestServer(t *testing.T, rows int, opts Options) *Server {
	t.Helper()
	e := engine.New(engine.Options{TupleOverhead: -1})
	if _, err := e.Execute("CREATE TABLE items (id INT, grp INT, amount FLOAT, PRIMARY KEY (id))"); err != nil {
		t.Fatal(err)
	}
	data := make([][]value.Value, rows)
	for i := range data {
		data[i] = []value.Value{
			value.NewInt(int64(i)),
			value.NewInt(int64(i % 9)),
			value.NewFloat(float64(i % 250)),
		}
	}
	if err := e.BulkLoad("items", data); err != nil {
		t.Fatal(err)
	}
	return New(e, opts)
}

func TestSessionQueryAndPrepared(t *testing.T) {
	srv := newTestServer(t, 1000, Options{})
	defer srv.Close()
	sess, err := srv.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	res, err := sess.Query("SELECT COUNT(*) FROM items")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got != 1000 {
		t.Fatalf("count = %d, want 1000", got)
	}
	if err := sess.Prepare("bygrp", "SELECT grp, COUNT(*) FROM items GROUP BY grp"); err != nil {
		t.Fatal(err)
	}
	r1, err := sess.ExecPrepared("bygrp")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sess.ExecPrepared("bygrp")
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Stats.PlanCached {
		t.Error("second prepared execution missed the plan cache")
	}
	if len(r1.Rows) != 9 || len(r2.Rows) != 9 {
		t.Errorf("prepared executions returned %d / %d groups, want 9", len(r1.Rows), len(r2.Rows))
	}
	if _, err := sess.ExecPrepared("nosuch"); err == nil {
		t.Error("executing an unknown prepared name succeeded")
	}
	m := srv.Metrics()
	if m.Queries != 3 {
		t.Errorf("metrics counted %d queries, want 3", m.Queries)
	}
	if m.Sessions != 1 {
		t.Errorf("metrics report %d sessions, want 1", m.Sessions)
	}
}

// TestAdmissionBudget: with a budget of 1 token, two concurrent queries
// never run simultaneously — the second waits for the first's token.
func TestAdmissionBudget(t *testing.T) {
	srv := newTestServer(t, 30000, Options{CoreBudget: 1})
	defer srv.Close()
	var running, maxRunning atomic.Int64
	const clients = 4
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess, err := srv.Session()
			if err != nil {
				errs <- err
				return
			}
			defer sess.Close()
			for i := 0; i < 5; i++ {
				cur := running.Add(1)
				if cur > maxRunning.Load() {
					maxRunning.Store(cur)
				}
				// The gauge is approximate (incremented before admission), so
				// assert on the admission controller's own accounting instead.
				if r, _ := srv.adm.load(); int64(r) > 1 {
					errs <- fmt.Errorf("admission reports %d concurrent queries on budget 1", r)
					running.Add(-1)
					return
				}
				if _, err := sess.Query("SELECT grp, COUNT(*) FROM items GROUP BY grp"); err != nil {
					errs <- err
					running.Add(-1)
					return
				}
				running.Add(-1)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSessionsDefaultToSerialPlans: a session that never sets parallelism
// requests one token per query, so concurrent default sessions genuinely run
// side by side inside the core budget instead of each grabbing the whole
// machine and serializing the server.
func TestSessionsDefaultToSerialPlans(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		// The asserted property — two admitted queries observably running at
		// the same instant — needs at least two CPUs; on a single-core host
		// overlap happens only by preemption luck and the test flakes.
		t.Skip("needs >= 2 CPUs to observe concurrent execution")
	}
	srv := newTestServer(t, 30000, Options{CoreBudget: 4})
	defer srv.Close()
	var maxRunning atomic.Int64
	// Sample the admission load continuously: sampling only at query
	// boundaries undercounts overlap when the host is starved (the full test
	// suite runs packages in parallel on shared runners).
	stopSampling := make(chan struct{})
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			select {
			case <-stopSampling:
				return
			default:
			}
			if r, _ := srv.adm.load(); int64(r) > maxRunning.Load() {
				maxRunning.Store(int64(r))
			}
		}
	}()
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess, err := srv.Session()
			if err != nil {
				errs <- err
				return
			}
			defer sess.Close()
			for i := 0; i < 8; i++ {
				if _, err := sess.Query("SELECT grp, COUNT(*) FROM items GROUP BY grp"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stopSampling)
	sampler.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if maxRunning.Load() < 2 {
		t.Errorf("default sessions never ran concurrently (max running %d on budget 4)", maxRunning.Load())
	}
}

// TestAdmissionQueueFull: arrivals beyond budget+queue shed load with
// ErrQueueFull instead of buffering unboundedly.
func TestAdmissionQueueFull(t *testing.T) {
	a := newAdmission(1, 1)
	if got, err := a.acquire(context.Background(), 1); err != nil || got != 1 {
		t.Fatalf("first acquire: got %d, %v", got, err)
	}
	// Fill the one queue slot.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	queued := make(chan error, 1)
	go func() {
		_, err := a.acquire(ctx, 1)
		queued <- err
	}()
	// Wait until the waiter is actually enqueued.
	for {
		if _, q := a.load(); q == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := a.acquire(context.Background(), 1); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third acquire: got %v, want ErrQueueFull", err)
	}
	// Release; the queued waiter gets the token.
	a.release(1)
	if err := <-queued; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	a.release(1)
	if r, q := a.load(); r != 0 || q != 0 {
		t.Fatalf("load after drain = (%d, %d), want (0, 0)", r, q)
	}
}

// TestAdmissionCancelInQueue: a waiter whose context fires leaves the queue
// and later releases still grant cleanly.
func TestAdmissionCancelInQueue(t *testing.T) {
	a := newAdmission(2, 8)
	if _, err := a.acquire(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := a.acquire(ctx, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("canceled waiter: got %v, want DeadlineExceeded", err)
	}
	a.release(2)
	got, err := a.acquire(context.Background(), 2)
	if err != nil || got != 2 {
		t.Fatalf("post-cancel acquire: got %d, %v", got, err)
	}
}

// TestAdmissionClampsWideRequests: a request wider than the budget runs at
// the budget, not never.
func TestAdmissionClampsWideRequests(t *testing.T) {
	a := newAdmission(2, 8)
	got, err := a.acquire(context.Background(), 16)
	if err != nil || got != 2 {
		t.Fatalf("acquire(16) on budget 2: got %d, %v", got, err)
	}
	a.release(got)
}

// TestSessionTimeout: a session timeout cancels a query stuck behind an
// exhausted budget.
func TestSessionTimeout(t *testing.T) {
	srv := newTestServer(t, 1000, Options{CoreBudget: 1})
	defer srv.Close()
	// Hold the only token.
	if _, err := srv.adm.acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	sess, err := srv.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	sess.SetTimeout(20 * time.Millisecond)
	start := time.Now()
	_, err = sess.Query("SELECT COUNT(*) FROM items")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
	srv.adm.release(1)
	if got := srv.Metrics().Canceled; got != 1 {
		t.Errorf("metrics counted %d cancellations, want 1", got)
	}
}

// TestServerClose: a closed server refuses new work but drained cleanly.
func TestServerClose(t *testing.T) {
	srv := newTestServer(t, 1000, Options{})
	sess, err := srv.Session()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Query("SELECT COUNT(*) FROM items"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Query("SELECT COUNT(*) FROM items"); !errors.Is(err, ErrServerClosed) {
		t.Errorf("query after close: got %v, want ErrServerClosed", err)
	}
	if _, err := srv.Session(); !errors.Is(err, ErrServerClosed) {
		t.Errorf("session after close: got %v, want ErrServerClosed", err)
	}
}

// TestStartsWithSelect pins the statement classifier Execute uses in place
// of a throwaway parse.
func TestStartsWithSelect(t *testing.T) {
	yes := []string{
		"SELECT 1",
		"  \n\tselect a FROM t",
		"-- comment\nSELECT a FROM t",
		"--c1\n  --c2\nSeLeCt 1",
	}
	no := []string{
		"INSERT INTO t VALUES (1)",
		"CREATE TABLE t (a INT)",
		"selective FROM t", // identifier, not the keyword
		"-- select inside a comment",
		"",
	}
	for _, q := range yes {
		if !startsWithSelect(q) {
			t.Errorf("startsWithSelect(%q) = false, want true", q)
		}
	}
	for _, q := range no {
		if startsWithSelect(q) {
			t.Errorf("startsWithSelect(%q) = true, want false", q)
		}
	}
}

// TestExecuteAfterClose: the DDL/DML path refuses work after Close just
// like the query path (it must not race Close's inflight wait).
func TestExecuteAfterClose(t *testing.T) {
	srv := newTestServer(t, 100, Options{})
	sess, err := srv.Session()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Execute("INSERT INTO items (id, grp, amount) VALUES (900, 1, 1.0)"); !errors.Is(err, ErrServerClosed) {
		t.Errorf("Execute after close: got %v, want ErrServerClosed", err)
	}
}

// TestWireQueryHitsPlanCache: an ad-hoc statement over the wire reaches the
// plan cache — the classifier must not burn a parse that defeats it.
func TestWireQueryHitsPlanCache(t *testing.T) {
	srv := newTestServer(t, 1000, Options{})
	defer srv.Close()
	sess, err := srv.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	q := "SELECT grp, COUNT(*) FROM items GROUP BY grp"
	if _, err := sess.Execute(q); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.PlanCached {
		t.Error("repeated ad-hoc Execute missed the plan cache")
	}
}

// TestWireProtocol drives the full TCP loop: ad-hoc queries, prepared
// statements, session knobs, metrics, ping and close.
func TestWireProtocol(t *testing.T) {
	srv := newTestServer(t, 1000, Options{})
	defer srv.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	roundTrip := func(req Request) Response {
		t.Helper()
		b, _ := json.Marshal(req)
		if _, err := conn.Write(append(b, '\n')); err != nil {
			t.Fatal(err)
		}
		line, err := r.ReadBytes('\n')
		if err != nil {
			t.Fatal(err)
		}
		var resp Response
		if err := json.Unmarshal(line, &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}

	if resp := roundTrip(Request{Op: "ping"}); !resp.OK {
		t.Fatalf("ping failed: %s", resp.Error)
	}
	resp := roundTrip(Request{Op: "query", SQL: "SELECT grp, COUNT(*) FROM items GROUP BY grp"})
	if !resp.OK || resp.RowCount != 9 || len(resp.Rows) != 9 {
		t.Fatalf("query: ok=%v rows=%d err=%s", resp.OK, resp.RowCount, resp.Error)
	}
	if len(resp.Columns) != 2 {
		t.Fatalf("query returned %d columns", len(resp.Columns))
	}
	if resp := roundTrip(Request{Op: "prepare", Name: "q", SQL: "SELECT COUNT(*) FROM items WHERE amount > 100"}); !resp.OK {
		t.Fatalf("prepare failed: %s", resp.Error)
	}
	first := roundTrip(Request{Op: "exec", Name: "q"})
	second := roundTrip(Request{Op: "exec", Name: "q"})
	if !first.OK || !second.OK {
		t.Fatalf("exec failed: %s / %s", first.Error, second.Error)
	}
	if !second.Cached {
		t.Error("second prepared exec over the wire did not report a cached plan")
	}
	par, ms := 2, 1000
	if resp := roundTrip(Request{Op: "set", Parallelism: &par, TimeoutMS: &ms}); !resp.OK {
		t.Fatalf("set failed: %s", resp.Error)
	}
	if resp := roundTrip(Request{Op: "query", SQL: "SELECT 'nope' FROM missing"}); resp.OK || resp.Error == "" {
		t.Error("querying a missing table did not report an error")
	}
	m := roundTrip(Request{Op: "metrics"})
	if !m.OK || m.Metrics == nil {
		t.Fatalf("metrics failed: %s", m.Error)
	}
	if m.Metrics.Queries != 3 { // 1 ad-hoc query + 2 prepared execs; errors don't count
		t.Errorf("wire metrics report %d queries, want 3", m.Metrics.Queries)
	}
	if m.Metrics.Errors != 1 {
		t.Errorf("wire metrics report %d errors, want 1", m.Metrics.Errors)
	}
	if m.Metrics.Sessions != 1 {
		t.Errorf("wire metrics report %d sessions, want 1", m.Metrics.Sessions)
	}
	if resp := roundTrip(Request{Op: "close"}); !resp.OK {
		t.Fatalf("close failed: %s", resp.Error)
	}

	// Graceful shutdown unblocks Serve with a nil error.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve returned %v after Close", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
}

// TestWireDDL: the wire protocol accepts DDL and INSERT, which invalidate
// the plan cache.
func TestWireDDL(t *testing.T) {
	srv := newTestServer(t, 100, Options{})
	defer srv.Close()
	sess, err := srv.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.Execute("INSERT INTO items (id, grp, amount) VALUES (5000, 1, 3.5)"); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Query("SELECT COUNT(*) FROM items")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got != 101 {
		t.Errorf("count after wire INSERT = %d, want 101", got)
	}
}

// TestConcurrentServerSessions is the in-package concurrency smoke (the full
// workload differential lives in the bench package): 8 sessions, mixed
// parallelism and prepared/ad-hoc, all results identical.
func TestConcurrentServerSessions(t *testing.T) {
	srv := newTestServer(t, 30000, Options{CoreBudget: 4})
	defer srv.Close()
	q := "SELECT grp, COUNT(*), SUM(amount) FROM items WHERE amount > 50 GROUP BY grp"
	want, err := srv.Engine().Query(q)
	if err != nil {
		t.Fatal(err)
	}
	const sessions = 8
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess, err := srv.Session()
			if err != nil {
				errs <- err
				return
			}
			defer sess.Close()
			sess.SetParallelism([]int{1, 2, 4}[i%3])
			prepared := i%2 == 0
			if prepared {
				if err := sess.Prepare("q", q); err != nil {
					errs <- err
					return
				}
			}
			for iter := 0; iter < 10; iter++ {
				var res *engine.Result
				var err error
				if prepared {
					res, err = sess.ExecPrepared("q")
				} else {
					res, err = sess.Query(q)
				}
				if err != nil {
					errs <- fmt.Errorf("session %d iter %d: %w", i, iter, err)
					return
				}
				if msg := rowsEqual(res.Rows, want.Rows); msg != "" {
					errs <- fmt.Errorf("session %d iter %d: %s", i, iter, msg)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	m := srv.Metrics()
	if m.Queries != sessions*10 {
		t.Errorf("metrics counted %d queries, want %d", m.Queries, sessions*10)
	}
	if m.PlanCache.Hits == 0 {
		t.Error("no plan-cache hits across 80 executions of one statement")
	}
}

// rowsEqual compares result sets exactly for ints/strings and to 1e-9
// relative tolerance for floats (parallel aggregation folds partials in
// morsel order, which can differ from serial rounding).
func rowsEqual(got, want [][]value.Value) string {
	if len(got) != len(want) {
		return fmt.Sprintf("got %d rows, want %d", len(got), len(want))
	}
	for i := range got {
		if len(got[i]) != len(want[i]) {
			return fmt.Sprintf("row %d: got %d columns, want %d", i, len(got[i]), len(want[i]))
		}
		for j := range got[i] {
			g, w := got[i][j], want[i][j]
			if g.Kind == value.KindFloat && w.Kind == value.KindFloat {
				diff := g.F - w.F
				if diff < 0 {
					diff = -diff
				}
				mag := w.F
				if mag < 0 {
					mag = -mag
				}
				if diff > 1e-9*(1+mag) {
					return fmt.Sprintf("row %d col %d: %v != %v", i, j, g, w)
				}
				continue
			}
			if value.Compare(g, w) != 0 || !strings.EqualFold(g.String(), w.String()) {
				return fmt.Sprintf("row %d col %d: %v != %v", i, j, g, w)
			}
		}
	}
	return ""
}
