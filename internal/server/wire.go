package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"oldelephant/internal/engine"
	"oldelephant/internal/trace"
	"oldelephant/internal/value"
)

// The wire protocol is newline-delimited JSON over TCP: one request object
// per line in, one response object per line out, strictly in order. It is
// deliberately small — a serving-layer protocol for the reproduction, not a
// PostgreSQL work-alike — but covers the session surface: ad-hoc statements,
// prepared statements, per-session knobs, server metrics and ping.
//
// Requests:
//
//	{"op":"query","sql":"SELECT ..."}         execute any statement
//	                                          (incl. EXPLAIN [ANALYZE] SELECT)
//	{"op":"prepare","name":"q1","sql":"..."}  parse + register
//	{"op":"exec","name":"q1"}                 run a prepared statement
//	{"op":"set","parallelism":2,"timeout_ms":500,"slow_ms":250}
//	{"op":"metrics"}                          server snapshot
//	{"op":"workload","limit":100}             recent workload-log records
//	{"op":"ping"}
//	{"op":"close"}                            end the session
//
// parallelism and timeout_ms scope to the session; slow_ms sets the
// server-wide slow-query threshold (0 disables the slow log).
//
// Responses carry {"ok":true,...} with columns/rows/plan/wall_us/cached for
// result sets, or {"ok":false,"error":"..."}. Values map to JSON naturally
// (dates render as "YYYY-MM-DD" strings, NULL as null).

// Request is one wire request.
type Request struct {
	Op          string `json:"op"`
	SQL         string `json:"sql,omitempty"`
	Name        string `json:"name,omitempty"`
	Parallelism *int   `json:"parallelism,omitempty"`
	TimeoutMS   *int   `json:"timeout_ms,omitempty"`
	SlowMS      *int   `json:"slow_ms,omitempty"`
	Limit       *int   `json:"limit,omitempty"`
}

// Response is one wire response.
type Response struct {
	OK       bool         `json:"ok"`
	Error    string       `json:"error,omitempty"`
	Columns  []string     `json:"columns,omitempty"`
	Rows     [][]any      `json:"rows,omitempty"`
	RowCount int          `json:"row_count,omitempty"`
	Plan     string       `json:"plan,omitempty"`
	WallUS   int64        `json:"wall_us,omitempty"`
	Cached   bool         `json:"cached,omitempty"`
	Metrics  *WireMetrics `json:"metrics,omitempty"`
	// Trace is the structured span tree of an EXPLAIN ANALYZE execution.
	Trace *trace.Span `json:"trace,omitempty"`
	// Workload carries the workload op's records.
	Workload []WorkloadRecord `json:"workload,omitempty"`
}

// WireMetrics is the JSON shape of a metrics snapshot. p50/p95/p99 describe
// the latency_window most-recent queries; queries counts everything since
// start.
type WireMetrics struct {
	UptimeMS      int64   `json:"uptime_ms"`
	Queries       int64   `json:"queries"`
	Errors        int64   `json:"errors"`
	Rejected      int64   `json:"rejected"`
	Canceled      int64   `json:"canceled"`
	QPS           float64 `json:"qps"`
	P50US         int64   `json:"p50_us"`
	P95US         int64   `json:"p95_us"`
	P99US         int64   `json:"p99_us"`
	MaxUS         int64   `json:"max_us"`
	LatencyWindow int     `json:"latency_window"`
	Running       int     `json:"running"`
	Queued        int     `json:"queued"`
	InFlight      int64   `json:"in_flight"`
	Waits         int64   `json:"admission_waits"`
	Sessions      int     `json:"sessions"`
	SlowMS        int64   `json:"slow_ms"`
	WorkloadRecs  int64   `json:"workload_records"`
	CacheHits     int64   `json:"plan_cache_hits"`
	CacheMiss     int64   `json:"plan_cache_misses"`
	CacheEvict    int64   `json:"plan_cache_evictions"`
	CacheRate     float64 `json:"plan_cache_hit_rate"`
	PageReads     int64   `json:"page_reads"`
	CacheReads    int64   `json:"buffer_cache_hits"`
	Resident      int     `json:"buffer_resident_pages"`
	ChecksumFails int64   `json:"checksum_failures"`
	WALCommits    int64   `json:"wal_commits"`
	WALSyncs      int64   `json:"wal_syncs"`
	WALAborts     int64   `json:"wal_aborts"`
	WALBytes      int64   `json:"wal_bytes_since_checkpoint"`
}

func wireMetrics(snap Snapshot) *WireMetrics {
	return &WireMetrics{
		UptimeMS:      snap.Uptime.Milliseconds(),
		Queries:       snap.Queries,
		Errors:        snap.Errors,
		Rejected:      snap.Rejected,
		Canceled:      snap.Canceled,
		QPS:           snap.QPS,
		P50US:         snap.P50.Microseconds(),
		P95US:         snap.P95.Microseconds(),
		P99US:         snap.P99.Microseconds(),
		MaxUS:         snap.Max.Microseconds(),
		LatencyWindow: snap.LatencyWindow,
		Running:       snap.Running,
		Queued:        snap.Queued,
		InFlight:      snap.InFlight,
		Waits:         snap.Waits,
		Sessions:      snap.Sessions,
		SlowMS:        snap.SlowThreshold.Milliseconds(),
		WorkloadRecs:  snap.WorkloadRecords,
		CacheHits:     snap.PlanCache.Hits,
		CacheMiss:     snap.PlanCache.Misses,
		CacheEvict:    snap.PlanCache.Evictions,
		CacheRate:     snap.PlanCache.HitRate(),
		PageReads:     snap.IO.PageReads,
		CacheReads:    snap.IO.CacheHits,
		Resident:      snap.BufferResident,
		ChecksumFails: snap.ChecksumFailures,
		WALCommits:    snap.WAL.Commits,
		WALSyncs:      snap.WAL.Syncs,
		WALAborts:     snap.WAL.Aborts,
		WALBytes:      snap.WALBytes,
	}
}

// wireValue converts one SQL value to its JSON form.
func wireValue(v value.Value) any {
	switch v.Kind {
	case value.KindNull:
		return nil
	case value.KindInt:
		return v.I
	case value.KindFloat:
		return v.F
	case value.KindBool:
		return v.Bool()
	default:
		// Strings and dates both render through String (dates as YYYY-MM-DD).
		return v.String()
	}
}

// resultResponse renders an engine result.
func resultResponse(res *engine.Result) Response {
	out := Response{
		OK:       true,
		Columns:  res.Columns,
		RowCount: len(res.Rows),
		Plan:     res.Plan,
		WallUS:   res.Stats.Wall.Microseconds(),
		Cached:   res.Stats.PlanCached,
		Trace:    res.Trace,
	}
	if len(res.Rows) > 0 {
		out.Rows = make([][]any, len(res.Rows))
		for i, row := range res.Rows {
			enc := make([]any, len(row))
			for j, v := range row {
				enc[j] = wireValue(v)
			}
			out.Rows[i] = enc
		}
	}
	return out
}

// maxLineBytes bounds one wire request/response line (16 MB).
const maxLineBytes = 16 << 20

// Serve accepts connections on l and speaks the wire protocol until the
// listener fails or the server closes. Each connection gets its own session.
// It returns nil after a graceful Close.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return ErrServerClosed
	}
	if s.listeners == nil {
		s.listeners = make(map[net.Listener]struct{})
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.serveConn(conn)
		}()
	}
}

// serveConn runs one connection's request loop.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	s.trackConn(conn, true)
	defer s.trackConn(conn, false)
	sess, err := s.Session()
	if err != nil {
		return
	}
	defer sess.Close()

	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 64*1024), maxLineBytes)
	w := bufio.NewWriter(conn)
	enc := json.NewEncoder(w)
	for scanner.Scan() {
		line := scanner.Bytes()
		if len(line) == 0 {
			continue
		}
		var req Request
		var resp Response
		if err := json.Unmarshal(line, &req); err != nil {
			resp = Response{Error: fmt.Sprintf("bad request: %v", err)}
		} else if req.Op == "close" {
			enc.Encode(Response{OK: true})
			w.Flush()
			return
		} else {
			resp = s.handle(sess, req)
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// handle dispatches one request on a session.
func (s *Server) handle(sess *Session, req Request) Response {
	switch req.Op {
	case "query":
		res, err := sess.Execute(req.SQL)
		if err != nil {
			return Response{Error: err.Error()}
		}
		return resultResponse(res)
	case "prepare":
		if req.Name == "" {
			return Response{Error: "prepare: missing name"}
		}
		if err := sess.Prepare(req.Name, req.SQL); err != nil {
			return Response{Error: err.Error()}
		}
		return Response{OK: true}
	case "exec":
		res, err := sess.ExecPrepared(req.Name)
		if err != nil {
			return Response{Error: err.Error()}
		}
		return resultResponse(res)
	case "set":
		if req.Parallelism != nil {
			sess.SetParallelism(*req.Parallelism)
		}
		if req.TimeoutMS != nil {
			sess.SetTimeout(time.Duration(*req.TimeoutMS) * time.Millisecond)
		}
		if req.SlowMS != nil {
			s.SetSlowThreshold(time.Duration(*req.SlowMS) * time.Millisecond)
		}
		return Response{OK: true}
	case "metrics":
		return Response{OK: true, Metrics: wireMetrics(s.Metrics())}
	case "workload":
		limit := 0
		if req.Limit != nil {
			limit = *req.Limit
		}
		return Response{OK: true, Workload: s.Workload(limit)}
	case "ping":
		return Response{OK: true}
	default:
		return Response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// trackConn registers/unregisters a live connection for shutdown.
func (s *Server) trackConn(conn net.Conn, add bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	if add {
		s.conns[conn] = struct{}{}
	} else {
		delete(s.conns, conn)
	}
}
