package server

import (
	"sort"
	"sync"
	"time"

	"oldelephant/internal/engine"
	"oldelephant/internal/storage"
	"oldelephant/internal/wal"
)

// latWindow is the number of most-recent query latencies kept for percentile
// estimation. A fixed window keeps the cost bounded and the percentiles
// responsive to the current load rather than the whole process history.
const latWindow = 4096

// slowLogSize bounds the slow-query log (newest entries win).
const slowLogSize = 64

// SlowQuery is one slow-query log entry. Beyond the SQL and wall time it
// captures what made the query slow: the plan that executed, the queueing
// share of the latency, the per-query I/O delta, and — when the query ran
// with tracing (EXPLAIN ANALYZE) — the compact trace summary.
type SlowQuery struct {
	SQL     string
	Session int64
	Wall    time.Duration
	// Queue is how much of Wall was spent waiting for admission.
	Queue time.Duration
	Rows  int
	When  time.Time
	// Plan is the textual plan the statement executed (empty for DDL).
	Plan string
	// IO is the statement's page-I/O delta.
	IO storage.IOStats
	// Trace is the compact per-operator trace summary, set only when the
	// query executed with tracing on.
	Trace string
}

// metrics aggregates per-server observability: query counts, a latency
// window for percentiles, summed per-query I/O, and the slow-query log.
type metrics struct {
	mu       sync.Mutex
	start    time.Time
	queries  int64
	errors   int64
	rejected int64
	canceled int64

	lat     [latWindow]time.Duration
	latN    int // total observations (ring position = latN % latWindow)
	latMax  time.Duration
	wallSum time.Duration

	io storage.IOStats

	slowThreshold time.Duration
	slow          []SlowQuery
}

func newMetrics(slowThreshold time.Duration) *metrics {
	return &metrics{start: time.Now(), slowThreshold: slowThreshold}
}

// observe records one finished query; queue is the admission-wait share of
// wall (0 for statements that bypass admission).
func (m *metrics) observe(sessionID int64, sqlText string, res *engine.Result, wall, queue time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queries++
	m.lat[m.latN%latWindow] = wall
	m.latN++
	m.wallSum += wall
	if wall > m.latMax {
		m.latMax = wall
	}
	if res != nil {
		m.io = m.io.Add(res.Stats.IO)
	}
	if m.slowThreshold > 0 && wall >= m.slowThreshold {
		entry := SlowQuery{SQL: sqlText, Session: sessionID, Wall: wall, Queue: queue, When: time.Now()}
		if res != nil {
			entry.Rows = res.Stats.RowsReturned
			entry.Plan = res.Plan
			entry.IO = res.Stats.IO
			if res.Trace != nil {
				entry.Trace = res.Trace.Summary()
			}
		}
		m.slow = append(m.slow, entry)
		if len(m.slow) > slowLogSize {
			m.slow = m.slow[len(m.slow)-slowLogSize:]
		}
	}
}

// setSlowThreshold changes the slow-query threshold at runtime (0 disables
// the slow log).
func (m *metrics) setSlowThreshold(d time.Duration) {
	m.mu.Lock()
	m.slowThreshold = d
	m.mu.Unlock()
}

// getSlowThreshold returns the current slow-query threshold.
func (m *metrics) getSlowThreshold() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.slowThreshold
}

// metricCounts is the cheap counter subset sampled by the metrics registry
// (no percentile sort, no slow-log copy).
type metricCounts struct {
	queries, errors, rejected, canceled int64
}

func (m *metrics) counts() metricCounts {
	m.mu.Lock()
	defer m.mu.Unlock()
	return metricCounts{queries: m.queries, errors: m.errors, rejected: m.rejected, canceled: m.canceled}
}

func (m *metrics) observeError()    { m.mu.Lock(); m.errors++; m.mu.Unlock() }
func (m *metrics) observeRejected() { m.mu.Lock(); m.rejected++; m.mu.Unlock() }
func (m *metrics) observeCanceled() { m.mu.Lock(); m.canceled++; m.mu.Unlock() }

// Snapshot is a point-in-time view of the server's health.
type Snapshot struct {
	Uptime  time.Duration
	Queries int64
	Errors  int64
	// Rejected counts queries shed by a full admission queue; Canceled counts
	// timeouts and client cancellations (in the queue or mid-execution).
	Rejected int64
	Canceled int64
	// QPS is queries completed per second of uptime.
	QPS float64
	// Latency percentiles over the most recent LatencyWindow completions,
	// plus the all-time maximum and mean. A long run under-reports history by
	// design: the window tracks current load, Queries counts everything.
	P50, P95, P99, Max, Mean time.Duration
	// LatencyWindow is the size of the percentile sample window (how many
	// most-recent queries P50/P95/P99 describe).
	LatencyWindow int
	// Running and Queued are the admission controller's current load: queries
	// holding tokens and queries waiting for them. Queued is the current
	// admission-queue depth.
	Running, Queued int
	// InFlight is the number of statements currently executing or waiting in
	// the server (admitted SELECTs plus DDL/DML that bypass admission).
	InFlight int64
	// Waits counts queries that had to queue for admission (ever); Rejected
	// above counts the ones shed outright.
	Waits int64
	// Sessions is the number of open sessions.
	Sessions int
	// WorkloadRecords is the total number of workload-log records appended.
	WorkloadRecords int64
	// SlowThreshold is the current slow-query log threshold.
	SlowThreshold time.Duration
	// PlanCache is the engine's shared plan-cache counters.
	PlanCache engine.PlanCacheStats
	// WAL is the engine's group-commit counters (zero for in-memory engines)
	// and WALBytes the durable log size since the last checkpoint.
	WAL      wal.Stats
	WALBytes int64
	// BufferResident is the number of pages resident in the buffer pool;
	// ChecksumFailures counts page slots that failed CRC verification when
	// the data file was opened.
	BufferResident   int
	ChecksumFailures int64
	// IO sums the per-query I/O stats of completed queries. Concurrent
	// queries share one buffer pool, so per-query attribution is approximate
	// under load; the sum remains an accurate server-wide volume.
	IO storage.IOStats
	// Slow is the slow-query log, oldest first.
	Slow []SlowQuery
}

// snapshot computes the current metrics (admission/session/plan-cache gauges
// are supplied by the server).
func (m *metrics) snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		Uptime:        time.Since(m.start),
		Queries:       m.queries,
		Errors:        m.errors,
		Rejected:      m.rejected,
		Canceled:      m.canceled,
		Max:           m.latMax,
		LatencyWindow: latWindow,
		SlowThreshold: m.slowThreshold,
		IO:            m.io,
		Slow:          append([]SlowQuery(nil), m.slow...),
	}
	if secs := s.Uptime.Seconds(); secs > 0 {
		s.QPS = float64(m.queries) / secs
	}
	if m.queries > 0 {
		s.Mean = m.wallSum / time.Duration(m.queries)
	}
	n := m.latN
	if n > latWindow {
		n = latWindow
	}
	if n > 0 {
		window := make([]time.Duration, n)
		copy(window, m.lat[:n])
		sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
		s.P50 = window[percentileIdx(n, 50)]
		s.P95 = window[percentileIdx(n, 95)]
		s.P99 = window[percentileIdx(n, 99)]
	}
	return s
}

// percentileIdx maps a percentile to an index into a sorted sample of size n
// (nearest-rank method).
func percentileIdx(n, pct int) int {
	rank := (n*pct + 99) / 100 // ceil(n * pct / 100)
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return rank - 1
}
