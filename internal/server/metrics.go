package server

import (
	"sort"
	"sync"
	"time"

	"oldelephant/internal/engine"
	"oldelephant/internal/storage"
)

// latWindow is the number of most-recent query latencies kept for percentile
// estimation. A fixed window keeps the cost bounded and the percentiles
// responsive to the current load rather than the whole process history.
const latWindow = 4096

// slowLogSize bounds the slow-query log (newest entries win).
const slowLogSize = 64

// SlowQuery is one slow-query log entry.
type SlowQuery struct {
	SQL     string
	Session int64
	Wall    time.Duration
	Rows    int
	When    time.Time
}

// metrics aggregates per-server observability: query counts, a latency
// window for percentiles, summed per-query I/O, and the slow-query log.
type metrics struct {
	mu       sync.Mutex
	start    time.Time
	queries  int64
	errors   int64
	rejected int64
	canceled int64

	lat     [latWindow]time.Duration
	latN    int // total observations (ring position = latN % latWindow)
	latMax  time.Duration
	wallSum time.Duration

	io storage.IOStats

	slowThreshold time.Duration
	slow          []SlowQuery
}

func newMetrics(slowThreshold time.Duration) *metrics {
	return &metrics{start: time.Now(), slowThreshold: slowThreshold}
}

// observe records one finished query.
func (m *metrics) observe(sessionID int64, sqlText string, res *engine.Result, wall time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queries++
	m.lat[m.latN%latWindow] = wall
	m.latN++
	m.wallSum += wall
	if wall > m.latMax {
		m.latMax = wall
	}
	if res != nil {
		m.io = m.io.Add(res.Stats.IO)
	}
	if m.slowThreshold > 0 && wall >= m.slowThreshold {
		entry := SlowQuery{SQL: sqlText, Session: sessionID, Wall: wall, When: time.Now()}
		if res != nil {
			entry.Rows = res.Stats.RowsReturned
		}
		m.slow = append(m.slow, entry)
		if len(m.slow) > slowLogSize {
			m.slow = m.slow[len(m.slow)-slowLogSize:]
		}
	}
}

func (m *metrics) observeError()    { m.mu.Lock(); m.errors++; m.mu.Unlock() }
func (m *metrics) observeRejected() { m.mu.Lock(); m.rejected++; m.mu.Unlock() }
func (m *metrics) observeCanceled() { m.mu.Lock(); m.canceled++; m.mu.Unlock() }

// Snapshot is a point-in-time view of the server's health.
type Snapshot struct {
	Uptime  time.Duration
	Queries int64
	Errors  int64
	// Rejected counts queries shed by a full admission queue; Canceled counts
	// timeouts and client cancellations (in the queue or mid-execution).
	Rejected int64
	Canceled int64
	// QPS is queries completed per second of uptime.
	QPS float64
	// Latency percentiles over the most recent window, plus the all-time
	// maximum and mean.
	P50, P95, P99, Max, Mean time.Duration
	// Running and Queued are the admission controller's current load.
	Running, Queued int
	// Sessions is the number of open sessions.
	Sessions int
	// PlanCache is the engine's shared plan-cache counters.
	PlanCache engine.PlanCacheStats
	// IO sums the per-query I/O stats of completed queries. Concurrent
	// queries share one buffer pool, so per-query attribution is approximate
	// under load; the sum remains an accurate server-wide volume.
	IO storage.IOStats
	// Slow is the slow-query log, oldest first.
	Slow []SlowQuery
}

// snapshot computes the current metrics (admission/session/plan-cache gauges
// are supplied by the server).
func (m *metrics) snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		Uptime:   time.Since(m.start),
		Queries:  m.queries,
		Errors:   m.errors,
		Rejected: m.rejected,
		Canceled: m.canceled,
		Max:      m.latMax,
		IO:       m.io,
		Slow:     append([]SlowQuery(nil), m.slow...),
	}
	if secs := s.Uptime.Seconds(); secs > 0 {
		s.QPS = float64(m.queries) / secs
	}
	if m.queries > 0 {
		s.Mean = m.wallSum / time.Duration(m.queries)
	}
	n := m.latN
	if n > latWindow {
		n = latWindow
	}
	if n > 0 {
		window := make([]time.Duration, n)
		copy(window, m.lat[:n])
		sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
		s.P50 = window[percentileIdx(n, 50)]
		s.P95 = window[percentileIdx(n, 95)]
		s.P99 = window[percentileIdx(n, 99)]
	}
	return s
}

// percentileIdx maps a percentile to an index into a sorted sample of size n
// (nearest-rank method).
func percentileIdx(n, pct int) int {
	rank := (n*pct + 99) / 100 // ceil(n * pct / 100)
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return rank - 1
}
