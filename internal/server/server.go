// Package server is the concurrent query-serving subsystem on top of the
// engine: sessions with per-session execution knobs, prepared statements
// backed by the engine's shared plan cache, admission control that divides
// the machine's core budget across concurrent queries, per-server metrics
// (QPS, latency percentiles, plan-cache hit rate, aggregated I/O, a
// slow-query log), and a small TCP text/JSON wire protocol (Serve) spoken by
// cmd/elephantd and the elephantsql client mode.
//
// The engine provides the isolation contract the server leans on: SELECTs
// from any number of sessions run concurrently under a shared reader lock,
// while DDL/DML statements run exclusively and invalidate the plan cache.
// Admission control bounds the concurrency: a query is granted worker tokens
// out of the core budget before it may execute, runs its plan at exactly the
// granted parallelism, and returns the tokens when it finishes — so N
// concurrent queries times P workers never oversubscribe the machine.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"oldelephant/internal/engine"
	"oldelephant/internal/obs"
)

// ErrServerClosed is returned for work submitted after Close began.
var ErrServerClosed = errors.New("server: closed")

// Options configure a server.
type Options struct {
	// CoreBudget is the total number of worker tokens shared by all
	// concurrent queries (0 selects runtime.GOMAXPROCS(0)). A query running a
	// P-worker parallel plan holds P tokens for its duration.
	CoreBudget int
	// MaxQueue bounds how many queries may wait for admission beyond the ones
	// running; arrivals past the bound fail fast with ErrQueueFull.
	// 0 selects the default (64).
	MaxQueue int
	// DefaultTimeout is the per-query timeout applied when a session has not
	// set its own (0 = none). The timeout covers admission queueing and
	// execution.
	DefaultTimeout time.Duration
	// DefaultSessionParallelism is the per-query worker width sessions
	// request from the core budget until they call SetParallelism
	// (0 selects 1). Serving defaults to serial plans on purpose: N
	// concurrent queries then fill the budget side by side, which is what
	// maximizes throughput for the short selective queries a server mostly
	// sees — a session running wide analytic scans opts into parallelism
	// explicitly (and then holds that many tokens per query).
	DefaultSessionParallelism int
	// SlowQueryThreshold adds queries at least this slow to the slow-query
	// log (0 selects the default, 100ms).
	SlowQueryThreshold time.Duration
}

// defaultMaxQueue is the admission queue bound when Options.MaxQueue is 0.
const defaultMaxQueue = 64

// defaultSlowThreshold is the slow-query log threshold when unset.
const defaultSlowThreshold = 100 * time.Millisecond

// Server coordinates concurrent sessions over one engine.
type Server struct {
	eng      *engine.Engine
	adm      *admission
	metrics  *metrics
	workload *workloadLog
	opts     Options

	// inFlightN gauges statements currently inside the server (queued,
	// executing, or finishing) — the live companion to the completed-query
	// counters in metrics.
	inFlightN atomic.Int64

	// obsReg is the metrics registry behind the Prometheus endpoint; latHist
	// is the query-latency histogram fed by every completed statement. Both
	// are built in New so recording needs no nil checks or synchronization.
	obsReg  *obs.Registry
	latHist *obs.Histogram

	mu        sync.Mutex
	sessions  map[int64]*Session
	nextID    int64
	closed    bool
	inflight  sync.WaitGroup
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
}

// New builds a server over an engine. The engine stays usable directly — the
// server adds sessions, admission and metrics on top of the same shared
// catalog, buffer pool and plan cache.
func New(eng *engine.Engine, opts Options) *Server {
	if opts.CoreBudget <= 0 {
		opts.CoreBudget = runtime.GOMAXPROCS(0)
	}
	if opts.MaxQueue <= 0 {
		opts.MaxQueue = defaultMaxQueue
	}
	if opts.SlowQueryThreshold <= 0 {
		opts.SlowQueryThreshold = defaultSlowThreshold
	}
	if opts.DefaultSessionParallelism <= 0 {
		opts.DefaultSessionParallelism = 1
	}
	s := &Server{
		eng:      eng,
		adm:      newAdmission(opts.CoreBudget, opts.MaxQueue),
		metrics:  newMetrics(opts.SlowQueryThreshold),
		workload: newWorkloadLog(0),
		opts:     opts,
		sessions: make(map[int64]*Session),
	}
	s.initRegistry()
	return s
}

// Engine returns the underlying engine.
func (s *Server) Engine() *engine.Engine { return s.eng }

// Session opens a new session. Sessions are cheap; one per client
// connection (or per worker goroutine for in-process use).
func (s *Server) Session() (*Session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrServerClosed
	}
	s.nextID++
	ss := &Session{
		srv:         s,
		id:          s.nextID,
		parallelism: s.opts.DefaultSessionParallelism,
		timeout:     s.opts.DefaultTimeout,
		prepared:    make(map[string]*engine.Prepared),
	}
	s.sessions[ss.id] = ss
	return ss, nil
}

// Close shuts the server down gracefully: listeners stop accepting and new
// sessions and queries are refused immediately, queries already admitted or
// queued run to completion, then remaining wire connections are closed.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for l := range s.listeners {
		l.Close()
	}
	s.mu.Unlock()
	s.inflight.Wait()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	return nil
}

// Metrics returns a point-in-time snapshot of the server's health.
func (s *Server) Metrics() Snapshot {
	snap := s.metrics.snapshot()
	snap.Running, snap.Queued = s.adm.load()
	snap.InFlight = s.inFlightN.Load()
	snap.Waits = s.adm.waitCount()
	snap.WorkloadRecords = s.workload.count()
	snap.PlanCache = s.eng.PlanCacheStats()
	snap.WAL = s.eng.WALStats()
	snap.WALBytes = s.eng.WALSize()
	snap.BufferResident = s.eng.Pager().Resident()
	snap.ChecksumFailures = s.eng.Pager().CorruptPages()
	s.mu.Lock()
	snap.Sessions = len(s.sessions)
	s.mu.Unlock()
	return snap
}

// SetSlowThreshold changes the slow-query log threshold at runtime for the
// whole server (0 disables the log). Clients reach it through the wire
// protocol's set op ("slow_ms"); elephantd sets the initial value from its
// -slow flag.
func (s *Server) SetSlowThreshold(d time.Duration) { s.metrics.setSlowThreshold(d) }

// SlowThreshold returns the current slow-query log threshold.
func (s *Server) SlowThreshold() time.Duration { return s.metrics.getSlowThreshold() }

// LogWorkloadTo mirrors every workload-log record to a JSONL file (appending
// to an existing log). elephantd points this at <data>/workload.jsonl when
// running durable; ReadWorkloadLog decodes the file back, tolerating a torn
// final line.
func (s *Server) LogWorkloadTo(path string) error { return s.workload.persistTo(path) }

// Workload returns up to limit most-recent workload-log records, oldest
// first (limit <= 0 returns the whole ring).
func (s *Server) Workload(limit int) []WorkloadRecord { return s.workload.recent(limit) }

// CloseWorkloadLog flushes and closes the workload JSONL file, if one was
// opened. The in-memory ring keeps recording.
func (s *Server) CloseWorkloadLog() error { return s.workload.close() }

// Session is one client's state: execution knobs, prepared statements and
// counters. A Session is not safe for concurrent use by multiple goroutines;
// open one session per goroutine (they are cheap and share everything that
// matters through the server).
type Session struct {
	srv *Server
	id  int64

	// parallelism is this session's per-query worker request (defaults to
	// the server's DefaultSessionParallelism).
	parallelism int
	// timeout bounds each query (admission wait + execution); 0 = none.
	timeout time.Duration

	prepared map[string]*engine.Prepared
	queries  int64
	closed   bool
}

// ID returns the session's server-unique id.
func (ss *Session) ID() int64 { return ss.id }

// SetParallelism sets the worker count this session's queries request from
// the core budget (0 restores the server's session default).
func (ss *Session) SetParallelism(n int) {
	if n <= 0 {
		n = ss.srv.opts.DefaultSessionParallelism
	}
	ss.parallelism = n
}

// SetTimeout sets the per-query timeout (0 disables; the server default
// applies only until the first SetTimeout call).
func (ss *Session) SetTimeout(d time.Duration) { ss.timeout = d }

// Queries returns how many queries the session has executed.
func (ss *Session) Queries() int64 { return ss.queries }

// Close releases the session. Idempotent.
func (ss *Session) Close() {
	if ss.closed {
		return
	}
	ss.closed = true
	ss.srv.mu.Lock()
	delete(ss.srv.sessions, ss.id)
	ss.srv.mu.Unlock()
}

// Query executes one SELECT with admission control, the session's
// parallelism and timeout, and metrics accounting.
func (ss *Session) Query(sqlText string) (*engine.Result, error) {
	return ss.QueryCtx(context.Background(), sqlText)
}

// QueryCtx is Query with caller-supplied cancellation (the session timeout,
// when set, still applies on top).
func (ss *Session) QueryCtx(ctx context.Context, sqlText string) (*engine.Result, error) {
	return ss.run(ctx, sqlText, func(opts engine.QueryOptions) (*engine.Result, error) {
		return ss.srv.eng.QueryWith(opts, sqlText)
	})
}

// Prepare parses a SELECT once and registers it under name; repeated
// ExecPrepared calls then lease compiled plans from the shared plan cache,
// skipping lex/parse/plan entirely on a warm cache.
func (ss *Session) Prepare(name, sqlText string) error {
	if ss.closed {
		return ErrServerClosed
	}
	p, err := ss.srv.eng.Prepare(sqlText)
	if err != nil {
		return err
	}
	ss.prepared[name] = p
	return nil
}

// ExecPrepared executes a statement previously registered with Prepare.
func (ss *Session) ExecPrepared(name string) (*engine.Result, error) {
	return ss.ExecPreparedCtx(context.Background(), name)
}

// ExecPreparedCtx is ExecPrepared with caller-supplied cancellation.
func (ss *Session) ExecPreparedCtx(ctx context.Context, name string) (*engine.Result, error) {
	p, ok := ss.prepared[name]
	if !ok {
		return nil, fmt.Errorf("server: no prepared statement %q", name)
	}
	return ss.run(ctx, p.Text, func(opts engine.QueryOptions) (*engine.Result, error) {
		return ss.srv.eng.QueryPrepared(opts, p)
	})
}

// Execute runs any statement. SELECTs go through the session query path
// (admission, plan cache); DDL/DML statements bypass admission (they
// serialize on the engine's writer lock instead — they are rare, and
// queueing them behind reader-token availability could deadlock a full
// queue of readers waiting on a writer). Classification peeks at the first
// token instead of parsing, so an ad-hoc SELECT still reaches the engine
// unparsed and a plan-cache hit skips lexing and parsing entirely.
func (ss *Session) Execute(sqlText string) (*engine.Result, error) {
	if startsWithSelect(sqlText) {
		return ss.Query(sqlText)
	}
	srv := ss.srv
	srv.mu.Lock()
	if srv.closed || ss.closed {
		srv.mu.Unlock()
		return nil, ErrServerClosed
	}
	srv.inflight.Add(1)
	srv.mu.Unlock()
	defer srv.inflight.Done()
	srv.inFlightN.Add(1)
	defer srv.inFlightN.Add(-1)
	start := time.Now()
	res, err := srv.eng.Execute(sqlText)
	if err != nil {
		srv.metrics.observeError()
		return nil, err
	}
	wall := time.Since(start)
	ss.queries++
	srv.metrics.observe(ss.id, sqlText, res, wall, 0)
	srv.observeLatency(wall)
	srv.workload.append(newWorkloadRecord(ss.id, sqlText, res, wall, 0))
	return res, nil
}

// startsWithSelect reports whether the statement's first token is the
// keyword SELECT, skipping leading whitespace and "--" line comments the
// way the lexer does.
func startsWithSelect(sqlText string) bool {
	i := 0
	for i < len(sqlText) {
		switch c := sqlText[i]; {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < len(sqlText) && sqlText[i+1] == '-':
			for i < len(sqlText) && sqlText[i] != '\n' {
				i++
			}
		default:
			const kw = "select"
			if len(sqlText)-i < len(kw) {
				return false
			}
			for j := 0; j < len(kw); j++ {
				c := sqlText[i+j]
				if c >= 'A' && c <= 'Z' {
					c += 'a' - 'A'
				}
				if c != kw[j] {
					return false
				}
			}
			// Word boundary: "selective" is an identifier, not the keyword.
			if rest := i + len(kw); rest < len(sqlText) {
				c := sqlText[rest]
				if c == '_' || (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
					return false
				}
			}
			return true
		}
	}
	return false
}

// run is the shared admission + execution + accounting path for SELECTs.
func (ss *Session) run(ctx context.Context, sqlText string, exec func(engine.QueryOptions) (*engine.Result, error)) (*engine.Result, error) {
	srv := ss.srv
	srv.mu.Lock()
	if srv.closed || ss.closed {
		srv.mu.Unlock()
		return nil, ErrServerClosed
	}
	srv.inflight.Add(1)
	srv.mu.Unlock()
	defer srv.inflight.Done()
	srv.inFlightN.Add(1)
	defer srv.inFlightN.Add(-1)

	if ctx == nil {
		ctx = context.Background()
	}
	if ss.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, ss.timeout)
		defer cancel()
	}

	start := time.Now()
	granted, err := srv.adm.acquire(ctx, ss.parallelism)
	if err != nil {
		if errors.Is(err, ErrQueueFull) {
			srv.metrics.observeRejected()
		} else {
			srv.metrics.observeCanceled()
		}
		return nil, err
	}
	defer srv.adm.release(granted)
	queue := time.Since(start)

	res, err := exec(engine.QueryOptions{Ctx: ctx, Parallelism: granted})
	if err != nil {
		if ctx.Err() != nil {
			srv.metrics.observeCanceled()
		} else {
			srv.metrics.observeError()
		}
		return nil, err
	}
	wall := time.Since(start)
	ss.queries++
	srv.metrics.observe(ss.id, sqlText, res, wall, queue)
	srv.observeLatency(wall)
	srv.workload.append(newWorkloadRecord(ss.id, sqlText, res, wall, queue))
	return res, nil
}
