package server

import (
	"context"
	"errors"
	"sync"
)

// ErrQueueFull is returned when a query arrives while the admission queue is
// at capacity: the server sheds load instead of buffering unboundedly.
var ErrQueueFull = errors.New("server: admission queue full")

// admission divides the machine's core budget across concurrent queries. A
// query asks for the worker count its plan will use (its Parallelism) and
// blocks until that many tokens are free, so N concurrent queries running
// P-worker plans never oversubscribe the budget: total granted tokens never
// exceed it. Waiters queue FIFO — a wide query at the head does not starve
// behind a stream of narrow ones, and narrow ones do not leapfrog it — and
// a waiter whose context fires (client timeout, cancellation, shutdown)
// leaves the queue immediately.
type admission struct {
	mu       sync.Mutex
	budget   int
	avail    int
	queue    []*waiter
	maxQueue int

	running int
	queued  int
	waits   int64 // queries that had to queue before being granted
}

type waiter struct {
	tokens  int
	granted bool
	ready   chan struct{}
}

func newAdmission(budget, maxQueue int) *admission {
	if budget < 1 {
		budget = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{budget: budget, avail: budget, maxQueue: maxQueue}
}

// acquire obtains tokens worker tokens (clamped to [1, budget]), waiting in
// FIFO order when the budget is exhausted. It returns the granted count —
// the parallelism the query must run with — or ErrQueueFull / the context's
// error.
func (a *admission) acquire(ctx context.Context, tokens int) (int, error) {
	if tokens < 1 {
		tokens = 1
	}
	if tokens > a.budget {
		tokens = a.budget
	}
	a.mu.Lock()
	if len(a.queue) == 0 && a.avail >= tokens {
		a.avail -= tokens
		a.running++
		a.mu.Unlock()
		return tokens, nil
	}
	if len(a.queue) >= a.maxQueue {
		a.mu.Unlock()
		return 0, ErrQueueFull
	}
	w := &waiter{tokens: tokens, ready: make(chan struct{})}
	a.queue = append(a.queue, w)
	a.queued++
	a.waits++
	a.mu.Unlock()

	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case <-w.ready:
		a.mu.Lock()
		a.queued--
		a.running++
		a.mu.Unlock()
		return tokens, nil
	case <-done:
		a.mu.Lock()
		if w.granted {
			// The grant raced the cancellation: hand the tokens back.
			a.avail += w.tokens
			a.grantLocked()
		} else {
			for i, q := range a.queue {
				if q == w {
					a.queue = append(a.queue[:i], a.queue[i+1:]...)
					break
				}
			}
		}
		a.queued--
		a.mu.Unlock()
		return 0, ctx.Err()
	}
}

// release returns a query's tokens and wakes eligible waiters.
func (a *admission) release(tokens int) {
	a.mu.Lock()
	a.avail += tokens
	a.running--
	a.grantLocked()
	a.mu.Unlock()
}

// grantLocked grants queued waiters in FIFO order while tokens suffice.
// Caller holds a.mu.
func (a *admission) grantLocked() {
	for len(a.queue) > 0 && a.queue[0].tokens <= a.avail {
		w := a.queue[0]
		a.queue = a.queue[1:]
		a.avail -= w.tokens
		w.granted = true
		close(w.ready)
	}
}

// load reports the current number of running and queued queries.
func (a *admission) load() (running, queued int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.running, a.queued
}

// waitCount reports how many queries ever had to queue for admission.
func (a *admission) waitCount() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.waits
}
