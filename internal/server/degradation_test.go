package server

import (
	"sync"
	"testing"

	"oldelephant/internal/engine"
	"oldelephant/internal/storage/faultfs"
)

// TestServerDegradesGracefullyOnFsyncFailure: an injected fsync failure
// mid-INSERT fails exactly that statement. Other sessions keep serving
// queries throughout, the metrics record the failure, and the engine accepts
// writes again once the device recovers — no restart, no poisoned state.
func TestServerDegradesGracefullyOnFsyncFailure(t *testing.T) {
	fs := faultfs.New(7)
	eng, err := engine.Open(engine.Options{TupleOverhead: -1, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng, Options{})
	defer srv.Close()

	writer, err := srv.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()
	reader, err := srv.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()

	for _, stmt := range []string{
		"CREATE TABLE accounts (id INT, balance INT, PRIMARY KEY (id))",
		"INSERT INTO accounts VALUES (1, 100), (2, 200)",
	} {
		if _, err := writer.Execute(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}

	// Readers hammer the table across the failure window; every query must
	// succeed and see consistent data (either 2 or — later — 3 rows, never a
	// torn statement).
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			res, err := reader.Query("SELECT COUNT(*) FROM accounts")
			if err != nil {
				t.Errorf("concurrent SELECT failed during degraded write: %v", err)
				return
			}
			if n := res.Rows[0][0].Int(); n != 2 && n != 3 {
				t.Errorf("reader saw %d rows, want 2 or 3", n)
				return
			}
		}
	}()

	before := srv.Metrics().Errors
	fs.FailNextSyncs(1)
	if _, err := writer.Execute("INSERT INTO accounts VALUES (3, 300)"); err == nil {
		t.Fatal("INSERT during injected fsync failure should error")
	}

	// The failed statement is invisible and only that statement failed.
	res, err := writer.Query("SELECT COUNT(*) FROM accounts")
	if err != nil {
		t.Fatalf("SELECT after failed INSERT: %v", err)
	}
	if n := res.Rows[0][0].Int(); n != 2 {
		t.Fatalf("failed INSERT left %d rows, want 2", n)
	}
	if got := srv.Metrics().Errors; got != before+1 {
		t.Errorf("metrics.Errors = %d, want %d", got, before+1)
	}

	// The device recovers; the next write goes through and is durable.
	if _, err := writer.Execute("INSERT INTO accounts VALUES (3, 300)"); err != nil {
		t.Fatalf("INSERT after device recovery: %v", err)
	}
	close(stop)
	wg.Wait()

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	e2, err := engine.Open(engine.Options{TupleOverhead: -1, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	res2, err := e2.Query("SELECT id FROM accounts ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rows) != 3 || res2.Rows[2][0].Int() != 3 {
		t.Fatalf("restart sees %d rows, want [1 2 3]", len(res2.Rows))
	}
}
