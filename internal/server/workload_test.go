package server

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestWorkloadJSONLRoundTrip proves the on-disk format: records appended by a
// serving server decode back identically through ReadWorkloadLog.
func TestWorkloadJSONLRoundTrip(t *testing.T) {
	srv := newTestServer(t, 500, Options{})
	defer srv.Close()
	path := filepath.Join(t.TempDir(), "workload.jsonl")
	if err := srv.LogWorkloadTo(path); err != nil {
		t.Fatal(err)
	}
	sess, err := srv.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	stmts := []string{
		"SELECT COUNT(*) FROM items",
		"SELECT grp, SUM(amount) FROM items GROUP BY grp",
		"SELECT COUNT(*) FROM items WHERE id < 100",
		"EXPLAIN ANALYZE SELECT grp, COUNT(*) FROM items WHERE amount > 50 GROUP BY grp",
	}
	for _, q := range stmts {
		if _, err := sess.Execute(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	if err := srv.CloseWorkloadLog(); err != nil {
		t.Fatal(err)
	}

	inMem := srv.Workload(0)
	onDisk, err := ReadWorkloadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(onDisk) != len(stmts) || len(inMem) != len(stmts) {
		t.Fatalf("got %d on-disk / %d in-memory records, want %d", len(onDisk), len(inMem), len(stmts))
	}
	// The decoded records must be byte-identical to what the ring holds.
	if !reflect.DeepEqual(onDisk, inMem) {
		t.Fatalf("round-trip mismatch:\n disk: %+v\n ring: %+v", onDisk, inMem)
	}
	for i, rec := range onDisk {
		if rec.V != WorkloadRecordVersion {
			t.Errorf("record %d version = %d", i, rec.V)
		}
		if rec.SQL != stmts[i] {
			t.Errorf("record %d SQL = %q, want %q", i, rec.SQL, stmts[i])
		}
		if rec.Fingerprint == "" || rec.TSMicros == 0 {
			t.Errorf("record %d missing fingerprint/timestamp: %+v", i, rec)
		}
	}
	// Statements that differ only in case and whitespace must share a
	// fingerprint — that is what lets the advisor group re-submissions of the
	// same statement shape.
	if _, err := sess.Execute("select  COUNT(*)\nFROM Items   WHERE id < 100"); err != nil {
		t.Fatal(err)
	}
	recs := srv.Workload(0)
	last := recs[len(recs)-1]
	if last.Fingerprint != onDisk[2].Fingerprint {
		t.Errorf("case/whitespace variants fingerprint differently:\n%q\n%q", last.Fingerprint, onDisk[2].Fingerprint)
	}
	if last.SQL == onDisk[2].SQL {
		t.Error("test is degenerate: SQL texts are identical")
	}
	// The traced statement recorded its trace summary and rows-in.
	traced := onDisk[3]
	if traced.Trace == "" || traced.RowsIn == 0 {
		t.Errorf("EXPLAIN ANALYZE record missing trace facts: %+v", traced)
	}
	if !strings.Contains(traced.Trace, "SeqScan") {
		t.Errorf("trace summary lacks scan operator: %q", traced.Trace)
	}
}

// TestWorkloadTornTailTolerated proves crash-tolerance of the reader: a log
// whose final line was torn mid-write decodes every complete record and
// silently drops the tail.
func TestWorkloadTornTailTolerated(t *testing.T) {
	srv := newTestServer(t, 100, Options{})
	defer srv.Close()
	path := filepath.Join(t.TempDir(), "workload.jsonl")
	if err := srv.LogWorkloadTo(path); err != nil {
		t.Fatal(err)
	}
	sess, err := srv.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	for i := 0; i < 3; i++ {
		if _, err := sess.Execute("SELECT COUNT(*) FROM items"); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.CloseWorkloadLog(); err != nil {
		t.Fatal(err)
	}

	// Tear the final line: drop the last 20 bytes, leaving invalid JSON.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-20], 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadWorkloadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("torn log decoded %d records, want 2", len(recs))
	}

	// Unknown-version records are skipped, not fatal, and do not hide later
	// known-version lines.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	lines := []string{
		`{"v":1,"ts_us":1,"session":1,"sql":"SELECT 1","fingerprint":"f","wall_us":5,"queue_us":0,"rows_out":1,"io":{"page_reads":0,"seq_reads":0,"rand_reads":0,"cache_hits":0,"page_writes":0}}`,
		`{"v":99,"ts_us":2,"session":1,"sql":"FUTURE","fingerprint":"f","wall_us":5,"queue_us":0,"rows_out":1,"io":{"page_reads":0,"seq_reads":0,"rand_reads":0,"cache_hits":0,"page_writes":0}}`,
		`{"v":1,"ts_us":3,"session":1,"sql":"SELECT 2","fingerprint":"f","wall_us":5,"queue_us":0,"rows_out":1,"io":{"page_reads":0,"seq_reads":0,"rand_reads":0,"cache_hits":0,"page_writes":0}}`,
	}
	if _, err := f.WriteString(strings.Join(lines, "\n") + "\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	recs, err = ReadWorkloadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].SQL != "SELECT 1" || recs[1].SQL != "SELECT 2" {
		t.Fatalf("version skip broke: %+v", recs)
	}
}

// TestWorkloadRingBounds proves the in-memory ring drops oldest records once
// full and that recent(limit) returns the newest records oldest-first.
func TestWorkloadRingBounds(t *testing.T) {
	l := newWorkloadLog(4)
	for i := 0; i < 10; i++ {
		l.append(WorkloadRecord{V: WorkloadRecordVersion, TSMicros: int64(i)})
	}
	if l.count() != 10 {
		t.Fatalf("count = %d, want 10", l.count())
	}
	recs := l.recent(0)
	if len(recs) != 4 {
		t.Fatalf("ring holds %d, want 4", len(recs))
	}
	for i, rec := range recs {
		if want := int64(6 + i); rec.TSMicros != want {
			t.Fatalf("recent[%d].ts = %d, want %d", i, rec.TSMicros, want)
		}
	}
	recs = l.recent(2)
	if len(recs) != 2 || recs[0].TSMicros != 8 || recs[1].TSMicros != 9 {
		t.Fatalf("recent(2) = %+v", recs)
	}
}
