package btree

import (
	"fmt"
	"sync"
	"testing"

	"oldelephant/internal/storage"
)

// TestConcurrentLeafPagesAndScans pins the read-path thread-safety the
// serving layer relies on: concurrent goroutines racing to fill the
// memoized leaf-page cache (an atomic pointer; this test caught the original
// unsynchronized write under -race), scanning, seeking and walking leaf
// ranges of one shared tree.
func TestConcurrentLeafPagesAndScans(t *testing.T) {
	tree := New(storage.NewPager(0), 0)
	const n = 5000
	i := 0
	err := tree.BulkLoad(func() ([]byte, []byte, bool) {
		if i >= n {
			return nil, nil, false
		}
		key := []byte(fmt.Sprintf("key%06d", i))
		val := []byte(fmt.Sprintf("val%06d", i))
		i++
		return key, val, true
	}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	allLeaves, err := tree.LeafPages()
	if err != nil {
		t.Fatal(err)
	}
	wantLeaves := len(allLeaves)
	if wantLeaves < 2 {
		t.Fatalf("tree has %d leaves; need several for a meaningful test", wantLeaves)
	}
	// Invalidate so the goroutines race to refill the memo.
	if err := tree.Insert([]byte("key999999"), []byte("v")); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				leaves, err := tree.LeafPages()
				if err != nil {
					errs <- err
					return
				}
				if len(leaves) == 0 {
					errs <- fmt.Errorf("LeafPages returned empty")
					return
				}
				lo := []byte(fmt.Sprintf("key%06d", g*500))
				hi := []byte(fmt.Sprintf("key%06d", g*500+200))
				rng, err := tree.LeafRange(lo, hi, true)
				if err != nil {
					errs <- err
					return
				}
				count := 0
				it := tree.Seek(lo, hi, true)
				for it.Next() {
					count++
				}
				if count != 201 {
					errs <- fmt.Errorf("seek [%s,%s] returned %d keys, want 201", lo, hi, count)
					return
				}
				if len(rng) == 0 {
					errs <- fmt.Errorf("LeafRange empty for a non-empty seek")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSeekLeavesReproducesSeek: partitioning a seek's leaf range and
// concatenating SeekLeaves iterators reproduces the serial Seek exactly —
// the contract the catalog's seek morsels are built on.
func TestSeekLeavesReproducesSeek(t *testing.T) {
	tree := New(storage.NewPager(0), 0)
	const n = 3000
	i := 0
	err := tree.BulkLoad(func() ([]byte, []byte, bool) {
		if i >= n {
			return nil, nil, false
		}
		// Duplicate keys every 3rd entry exercise the duplicate-run paths.
		key := []byte(fmt.Sprintf("k%05d", (i/3)*3))
		val := []byte(fmt.Sprintf("v%05d", i))
		i++
		return key, val, true
	}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name        string
		start, stop string
		stopIncl    bool
	}{
		{"interior", "k00300", "k01500", true},
		{"interior-exclusive-stop", "k00300", "k01500", false},
		{"open-start", "", "k00900", true},
		{"open-stop", "k02400", "", false},
		{"full", "", "", false},
		{"equality", "k00600", "k00600", true},
		{"empty", "k00301", "k00302", true},
		{"past-end", "k99990", "", false},
	}
	for _, tc := range cases {
		var start, stop []byte
		if tc.start != "" {
			start = []byte(tc.start)
		}
		if tc.stop != "" {
			stop = []byte(tc.stop)
		}
		var want []string
		it := tree.Seek(start, stop, tc.stopIncl)
		for it.Next() {
			want = append(want, string(it.Key())+"="+string(it.Value()))
		}
		leaves, err := tree.LeafRange(start, stop, tc.stopIncl)
		if err != nil {
			t.Fatal(err)
		}
		for _, per := range []int{1, 2, 5, len(leaves) + 1} {
			if per < 1 {
				per = 1
			}
			var got []string
			for i := 0; i < len(leaves); i += per {
				count := per
				if i+count > len(leaves) {
					count = len(leaves) - i
				}
				var startKey []byte
				if i == 0 {
					startKey = start
				}
				mit := tree.SeekLeaves(leaves[i], count, startKey, stop, tc.stopIncl)
				for mit.Next() {
					got = append(got, string(mit.Key())+"="+string(mit.Value()))
				}
			}
			if len(got) != len(want) {
				t.Errorf("%s per=%d: got %d entries, want %d", tc.name, per, len(got), len(want))
				continue
			}
			for j := range got {
				if got[j] != want[j] {
					t.Errorf("%s per=%d: entry %d = %s, want %s", tc.name, per, j, got[j], want[j])
					break
				}
			}
		}
	}
}
